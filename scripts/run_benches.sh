#!/usr/bin/env bash
# Regenerates the checked-in BENCH_p*.json perf-bench results at the repo
# root: builds the tree, then runs every google-benchmark binary
# (bench/bench_p*) with --benchmark_format=json.
#
# Each bench runs with GELC_METRICS=1 and GELC_METRICS_OUT pointed at a
# temp file; the obs exit exporter dumps the whole run's metrics snapshot
# there (single-line JSON, see src/obs/snapshot.h), which is spliced into
# the regenerated BENCH file as a top-level "gelc_metrics" key alongside
# google-benchmark's own "context"/"benchmarks". A "gelc_context" key
# records the git SHA (with a -dirty suffix when the tree has local
# edits) and the resolved SIMD tier, so diffs across the BENCH trajectory
# are attributable to a commit and an instruction set.
#
# After regenerating a BENCH file, the previously checked-in version (git
# HEAD) is compared with `gelc_stats --diff` — informational by default,
# because bench iteration counts scale with min_time and machine load;
# export GELC_BENCH_DIFF_STRICT=1 to fail the run on a deterministic
# counter regression past 5%. The parallel.* scheduling counters are
# always excluded (they track the pool schedule, not the workload).
#
# Usage: scripts/run_benches.sh [min_time] [filter-regex] [repetitions]
#   min_time      --benchmark_min_time per bench (bare seconds; the
#                 bundled benchmark version rejects an 's' suffix).
#                 Default 0.05 — enough for stable medians on the sizes
#                 the benches sweep without multi-hour runs.
#   filter-regex  only regenerate BENCH files for bench names matching
#                 this shell glob against the binary name, e.g. 'p8*'.
#   repetitions   when > 1, run each benchmark this many times and record
#                 only the mean/median/stddev aggregates in the JSON —
#                 use for comparison benches (e.g. p9's batched vs
#                 per-graph ratio) where a single run on a loaded box is
#                 too noisy to check in. Default 1 (raw single runs).
set -euo pipefail

cd "$(dirname "$0")/.."
min_time="${1:-0.05}"
filter="${2:-p*}"
reps="${3:-1}"
rep_flags=()
if [ "$reps" -gt 1 ]; then
  rep_flags=(--benchmark_repetitions="$reps"
             --benchmark_report_aggregates_only=true)
fi

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null

git_sha="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet HEAD 2>/dev/null; then
  git_sha="${git_sha}-dirty"
fi
simd_tier="$(./build/tools/gelc_stats --simd-tier)"

for bin in build/bench/bench_p*; do
  name="${bin##*/bench_}"                  # e.g. p8_spmm
  short="${name%%_*}"                      # e.g. p8
  case "$name" in
    ${filter}) ;;
    *) continue ;;
  esac
  echo "== bench_${name} -> BENCH_${short}.json" >&2
  snap="$(mktemp)"
  raw="$(mktemp)"
  GELC_METRICS=1 GELC_METRICS_OUT="$snap" \
    "$bin" --benchmark_format=json --benchmark_min_time="$min_time" \
    ${rep_flags[@]+"${rep_flags[@]}"} \
    > "$raw"
  # The benchmark JSON opens with a bare '{' on its first line; splice
  # the single-line snapshot and the provenance block in as the first
  # top-level keys.
  old="$(mktemp)"
  git show "HEAD:BENCH_${short}.json" > "$old" 2>/dev/null || : > "$old"
  {
    echo "{"
    printf '  "gelc_context": {"git_sha": "%s", "simd_tier": "%s"},\n' \
      "$git_sha" "$simd_tier"
    printf '  "gelc_metrics": %s,\n' "$(cat "$snap")"
    tail -n +2 "$raw"
  } > "BENCH_${short}.json"
  # Compare against the checked-in trajectory point. Informational unless
  # GELC_BENCH_DIFF_STRICT=1: counters scale with bench iteration counts,
  # which vary with min_time and machine load.
  if [ -s "$old" ]; then
    if ! ./build/tools/gelc_stats --diff "$old" "BENCH_${short}.json" \
        --threshold 0.05 --ignore parallel. >&2; then
      if [ "${GELC_BENCH_DIFF_STRICT:-0}" = "1" ]; then
        echo "run_benches.sh: BENCH_${short}.json regressed vs HEAD" >&2
        rm -f "$snap" "$raw" "$old"
        exit 1
      fi
      echo "run_benches.sh: note: BENCH_${short}.json counters grew vs" \
        "HEAD (informational; set GELC_BENCH_DIFF_STRICT=1 to fail)" >&2
    fi
  fi
  rm -f "$snap" "$raw" "$old"
done
