#!/usr/bin/env bash
# Regenerates the checked-in BENCH_p*.json perf-bench results at the repo
# root: builds the tree, then runs every google-benchmark binary
# (bench/bench_p*) with --benchmark_format=json.
#
# Usage: scripts/run_benches.sh [min_time] [filter-regex]
#   min_time      --benchmark_min_time per bench (bare seconds; the
#                 bundled benchmark version rejects an 's' suffix).
#                 Default 0.05 — enough for stable medians on the sizes
#                 the benches sweep without multi-hour runs.
#   filter-regex  only regenerate BENCH files for bench names matching
#                 this shell glob against the binary name, e.g. 'p8*'.
set -euo pipefail

cd "$(dirname "$0")/.."
min_time="${1:-0.05}"
filter="${2:-p*}"

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null

for bin in build/bench/bench_p*; do
  name="${bin##*/bench_}"                  # e.g. p8_spmm
  short="${name%%_*}"                      # e.g. p8
  case "$name" in
    ${filter}) ;;
    *) continue ;;
  esac
  echo "== bench_${name} -> BENCH_${short}.json" >&2
  "$bin" --benchmark_format=json --benchmark_min_time="$min_time" \
    > "BENCH_${short}.json"
done
