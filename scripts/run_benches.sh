#!/usr/bin/env bash
# Regenerates the checked-in BENCH_p*.json perf-bench results at the repo
# root: builds the tree, then runs every google-benchmark binary
# (bench/bench_p*) with --benchmark_format=json.
#
# Each bench runs with GELC_METRICS=1 and GELC_METRICS_OUT pointed at a
# temp file; the obs exit exporter dumps the whole run's metrics snapshot
# there (single-line JSON, see src/obs/snapshot.h), which is spliced into
# the regenerated BENCH file as a top-level "gelc_metrics" key alongside
# google-benchmark's own "context"/"benchmarks".
#
# Usage: scripts/run_benches.sh [min_time] [filter-regex] [repetitions]
#   min_time      --benchmark_min_time per bench (bare seconds; the
#                 bundled benchmark version rejects an 's' suffix).
#                 Default 0.05 — enough for stable medians on the sizes
#                 the benches sweep without multi-hour runs.
#   filter-regex  only regenerate BENCH files for bench names matching
#                 this shell glob against the binary name, e.g. 'p8*'.
#   repetitions   when > 1, run each benchmark this many times and record
#                 only the mean/median/stddev aggregates in the JSON —
#                 use for comparison benches (e.g. p9's batched vs
#                 per-graph ratio) where a single run on a loaded box is
#                 too noisy to check in. Default 1 (raw single runs).
set -euo pipefail

cd "$(dirname "$0")/.."
min_time="${1:-0.05}"
filter="${2:-p*}"
reps="${3:-1}"
rep_flags=()
if [ "$reps" -gt 1 ]; then
  rep_flags=(--benchmark_repetitions="$reps"
             --benchmark_report_aggregates_only=true)
fi

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null

for bin in build/bench/bench_p*; do
  name="${bin##*/bench_}"                  # e.g. p8_spmm
  short="${name%%_*}"                      # e.g. p8
  case "$name" in
    ${filter}) ;;
    *) continue ;;
  esac
  echo "== bench_${name} -> BENCH_${short}.json" >&2
  snap="$(mktemp)"
  raw="$(mktemp)"
  GELC_METRICS=1 GELC_METRICS_OUT="$snap" \
    "$bin" --benchmark_format=json --benchmark_min_time="$min_time" \
    ${rep_flags[@]+"${rep_flags[@]}"} \
    > "$raw"
  # The benchmark JSON opens with a bare '{' on its first line; splice
  # the single-line snapshot in as the first top-level key.
  {
    echo "{"
    printf '  "gelc_metrics": %s,\n' "$(cat "$snap")"
    tail -n +2 "$raw"
  } > "BENCH_${short}.json"
  rm -f "$snap" "$raw"
done
