#!/usr/bin/env bash
# The pre-PR gate: everything that must be green before a PR goes up.
#
#   1. static analysis     — gelc_lint over src/tests/bench/examples/tools
#   2. warning-clean build — -Wall -Wextra -Werror (GELC_WERROR is ON by
#                            default; this run would catch a local opt-out)
#   3. full ctest          — the tier-1 suite, including the gelc_lint and
#                            thread-variant (GELC_NUM_THREADS=1/4) tests
#   4. sanitizer ctest     — ASAN+UBSAN build, full suite again
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip step 4 (the sanitizer rebuild) for quick iteration;
#           the full run is still required before the PR.
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== [1/4] build (with -Werror) =="
cmake -B build -S . -DGELC_WERROR=ON >/dev/null
cmake --build build -j >/dev/null

echo "== [2/4] gelc_lint =="
./build/tools/gelc_lint src tests bench examples tools

echo "== [3/4] ctest =="
(cd build && ctest --output-on-failure -j)

if [[ "$fast" == "1" ]]; then
  echo "== [4/4] SKIPPED (--fast): ASAN/UBSAN ctest =="
  exit 0
fi

echo "== [4/4] ASAN/UBSAN ctest =="
cmake -B build-ubsan -S . -DGELC_ENABLE_ASAN=ON -DGELC_ENABLE_UBSAN=ON \
  >/dev/null
cmake --build build-ubsan -j >/dev/null
(cd build-ubsan && ctest --output-on-failure -j)

echo "check.sh: all gates green"
