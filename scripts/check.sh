#!/usr/bin/env bash
# The pre-PR gate: everything that must be green before a PR goes up.
# Steps, in the order they actually run:
#
#   1. warning-clean build — -Wall -Wextra -Werror (GELC_WERROR is ON by
#                            default; this run would catch a local opt-out)
#   2. static analysis     — gelc_lint over src/tests/bench/examples/tools:
#                            the per-file rule catalogue plus the
#                            whole-program passes (include-graph layering
#                            and cycles, parallel-region race detector)
#   3. full ctest          — the tier-1 suite, including the gelc_lint /
#                            gelc_lint_wholeprogram gates, thread-variant
#                            (GELC_NUM_THREADS=1/4) runs, and the
#                            GELC_SIMD=0/fast simd_test variants
#   4. two-plane gate      — (a) deterministic-plane snapshots must be
#                            byte-identical at GELC_NUM_THREADS=1 vs =4
#                            with GELC_TIMINGS=1 (gelc_stats
#                            --deterministic strips the timing plane and
#                            the parallel.* scheduling metrics, which
#                            describe the pool schedule and legitimately
#                            vary); (b) the gelc_stats --diff regression
#                            gate self-test: an injected counter increase
#                            must exit nonzero, equal snapshots zero
#   5. forced-scalar ctest — the whole suite again with GELC_SIMD=0
#                            exported, so every differential/bit-identity
#                            test also certifies the scalar fallback tier
#                            a binary lands on when cpuid lacks AVX2/FMA
#   6. sanitizer ctest     — ASAN+UBSAN build, full suite again (this is
#                            the run that chases the SIMD kernels' raw
#                            pointer arithmetic, vector tails, and the
#                            aligned-allocator new/delete pairing in
#                            simd_test)
#   7. TSAN ctest          — TSAN build of only the pool-worker-heavy
#                            binaries (obs_test, parallel_test, plan_test,
#                            fuzz_test, simd_test, stream_test): the obs
#                            metrics shards / trace ring buffers /
#                            latency-histogram shards and the fused
#                            plan-execution kernels are written from pool
#                            workers, so their merge-on-read and
#                            disjoint-row-shard paths get a dedicated
#                            dynamic race check on top of gelc_lint's
#                            static one (plan_test also carries the
#                            compile/fuzz differential suites; stream_test
#                            drives the delta-SpMM and incremental-
#                            refinement signature passes from the pool)
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip steps 6 and 7 (the sanitizer rebuilds) for quick
#           iteration; the full run is still required before the PR.
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== [1/7] build (with -Werror) =="
cmake -B build -S . -DGELC_WERROR=ON >/dev/null
cmake --build build -j >/dev/null

echo "== [2/7] gelc_lint =="
./build/tools/gelc_lint src tests bench examples tools

echo "== [3/7] ctest =="
(cd build && ctest --output-on-failure -j)

echo "== [4/7] two-plane gate (snapshot byte-identity + diff self-test) =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
# (a) With the timing plane ON, the deterministic plane must still be
# byte-identical across thread counts.
GELC_TIMINGS=1 GELC_NUM_THREADS=1 \
  ./build/tools/gelc_stats --deterministic all >"$tmpdir/det_t1.json"
GELC_TIMINGS=1 GELC_NUM_THREADS=4 \
  ./build/tools/gelc_stats --deterministic all >"$tmpdir/det_t4.json"
cmp "$tmpdir/det_t1.json" "$tmpdir/det_t4.json" || {
  echo "check.sh: deterministic snapshots differ across thread counts" >&2
  exit 1
}
# (a') The streaming series specifically: the stream workload writes the
# stream.* / graph.delta.* / spmm.delta.* / wl.cr.inc.* metrics from
# replay batches, delta-SpMM reads, and incremental refinement — all of
# which promise thread-count invariance even with timings on. ("all"
# above already includes the stream workload; this isolates a streaming
# regression by name.)
GELC_TIMINGS=1 GELC_NUM_THREADS=1 \
  ./build/tools/gelc_stats --deterministic stream >"$tmpdir/stream_t1.json"
GELC_TIMINGS=1 GELC_NUM_THREADS=4 \
  ./build/tools/gelc_stats --deterministic stream >"$tmpdir/stream_t4.json"
cmp "$tmpdir/stream_t1.json" "$tmpdir/stream_t4.json" || {
  echo "check.sh: stream.* snapshots differ across thread counts" >&2
  exit 1
}
# (b) The regression gate must trip on an injected counter increase and
# stay quiet on identical snapshots.
printf '{"counters": {"x.calls": 100}, "gauges": {}, "histograms": {}}\n' \
  >"$tmpdir/diff_old.json"
printf '{"counters": {"x.calls": 150}, "gauges": {}, "histograms": {}}\n' \
  >"$tmpdir/diff_new.json"
if ./build/tools/gelc_stats --diff "$tmpdir/diff_old.json" \
    "$tmpdir/diff_new.json" --threshold 0.1 >/dev/null; then
  echo "check.sh: --diff failed to flag an injected counter regression" >&2
  exit 1
fi
./build/tools/gelc_stats --diff "$tmpdir/diff_old.json" \
  "$tmpdir/diff_old.json" >/dev/null || {
  echo "check.sh: --diff flagged equal snapshots" >&2
  exit 1
}

echo "== [5/7] ctest with GELC_SIMD=0 (forced scalar tier) =="
(cd build && GELC_SIMD=0 ctest --output-on-failure -j)

if [[ "$fast" == "1" ]]; then
  echo "== [6/7] SKIPPED (--fast): ASAN/UBSAN ctest =="
  echo "== [7/7] SKIPPED (--fast): TSAN ctest =="
  exit 0
fi

echo "== [6/7] ASAN/UBSAN ctest =="
cmake -B build-ubsan -S . -DGELC_ENABLE_ASAN=ON -DGELC_ENABLE_UBSAN=ON \
  >/dev/null
cmake --build build-ubsan -j >/dev/null
(cd build-ubsan && ctest --output-on-failure -j)

echo "== [7/7] TSAN ctest =="
cmake -B build-tsan -S . -DGELC_ENABLE_TSAN=ON >/dev/null
cmake --build build-tsan -j --target obs_test parallel_test plan_test \
  fuzz_test simd_test stream_test >/dev/null
(cd build-tsan && ctest --output-on-failure \
  -R '^(obs_test|parallel_test|plan_test|fuzz_test|simd_test|stream_test)')

echo "check.sh: all gates green"
