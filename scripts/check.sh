#!/usr/bin/env bash
# The pre-PR gate: everything that must be green before a PR goes up.
# Steps, in the order they actually run:
#
#   1. warning-clean build — -Wall -Wextra -Werror (GELC_WERROR is ON by
#                            default; this run would catch a local opt-out)
#   2. static analysis     — gelc_lint over src/tests/bench/examples/tools:
#                            the per-file rule catalogue plus the
#                            whole-program passes (include-graph layering
#                            and cycles, parallel-region race detector)
#   3. full ctest          — the tier-1 suite, including the gelc_lint /
#                            gelc_lint_wholeprogram gates, thread-variant
#                            (GELC_NUM_THREADS=1/4) runs, and the
#                            GELC_SIMD=0/fast simd_test variants
#   4. forced-scalar ctest — the whole suite again with GELC_SIMD=0
#                            exported, so every differential/bit-identity
#                            test also certifies the scalar fallback tier
#                            a binary lands on when cpuid lacks AVX2/FMA
#   5. sanitizer ctest     — ASAN+UBSAN build, full suite again (this is
#                            the run that chases the SIMD kernels' raw
#                            pointer arithmetic, vector tails, and the
#                            aligned-allocator new/delete pairing in
#                            simd_test)
#   6. TSAN ctest          — TSAN build of only the pool-worker-heavy
#                            binaries (obs_test, parallel_test, plan_test,
#                            fuzz_test, simd_test): the obs metrics shards
#                            / trace ring buffers and the fused
#                            plan-execution kernels are written from pool
#                            workers, so their merge-on-read and
#                            disjoint-row-shard paths get a dedicated
#                            dynamic race check on top of gelc_lint's
#                            static one (plan_test also carries the
#                            compile/fuzz differential suites)
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip steps 5 and 6 (the sanitizer rebuilds) for quick
#           iteration; the full run is still required before the PR.
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== [1/6] build (with -Werror) =="
cmake -B build -S . -DGELC_WERROR=ON >/dev/null
cmake --build build -j >/dev/null

echo "== [2/6] gelc_lint =="
./build/tools/gelc_lint src tests bench examples tools

echo "== [3/6] ctest =="
(cd build && ctest --output-on-failure -j)

echo "== [4/6] ctest with GELC_SIMD=0 (forced scalar tier) =="
(cd build && GELC_SIMD=0 ctest --output-on-failure -j)

if [[ "$fast" == "1" ]]; then
  echo "== [5/6] SKIPPED (--fast): ASAN/UBSAN ctest =="
  echo "== [6/6] SKIPPED (--fast): TSAN ctest =="
  exit 0
fi

echo "== [5/6] ASAN/UBSAN ctest =="
cmake -B build-ubsan -S . -DGELC_ENABLE_ASAN=ON -DGELC_ENABLE_UBSAN=ON \
  >/dev/null
cmake --build build-ubsan -j >/dev/null
(cd build-ubsan && ctest --output-on-failure -j)

echo "== [6/6] TSAN ctest =="
cmake -B build-tsan -S . -DGELC_ENABLE_TSAN=ON >/dev/null
cmake --build build-tsan -j --target obs_test parallel_test plan_test \
  fuzz_test simd_test >/dev/null
(cd build-tsan && ctest --output-on-failure \
  -R '^(obs_test|parallel_test|plan_test|fuzz_test|simd_test)')

echo "check.sh: all gates green"
