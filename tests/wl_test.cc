// Tests for color refinement and folklore k-WL (slides 50, 65).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "base/rng.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "wl/color_refinement.h"
#include "wl/kwl.h"

namespace gelc {
namespace {

TEST(CrTest, RegularGraphCollapsesToOneColor) {
  Graph c = CycleGraph(7);
  EXPECT_EQ(CrPartitionSize(c), 1u);
}

TEST(CrTest, PathDiscriminatesByDistanceToEnds) {
  // P5 vertices: 0-1-2-3-4. Stable classes: {0,4}, {1,3}, {2}.
  Graph p = PathGraph(5);
  CrColoring c = RunColorRefinement({&p});
  EXPECT_EQ(c.stable[0][0], c.stable[0][4]);
  EXPECT_EQ(c.stable[0][1], c.stable[0][3]);
  EXPECT_NE(c.stable[0][0], c.stable[0][1]);
  EXPECT_NE(c.stable[0][1], c.stable[0][2]);
  EXPECT_EQ(CrPartitionSize(p), 3u);
}

TEST(CrTest, InitialLabelsRespected) {
  Graph a = CycleGraph(4);
  Graph b = CycleGraph(4);
  b.mutable_features().At(0, 0) = 5.0;
  EXPECT_FALSE(CrEquivalentGraphs(a, b));
}

TEST(CrTest, C6VsTwoTrianglesEquivalent) {
  auto [c6, two_c3] = Cr_HardPair();
  EXPECT_TRUE(CrEquivalentGraphs(c6, two_c3));
  // ... although they are not isomorphic.
  EXPECT_FALSE(*AreIsomorphic(c6, two_c3));
}

TEST(CrTest, SrgPairEquivalent) {
  auto [shrikhande, rook] = Srg16Pair();
  EXPECT_TRUE(CrEquivalentGraphs(shrikhande, rook));
}

TEST(CrTest, DistinguishesDifferentDegreeSequences) {
  EXPECT_FALSE(CrEquivalentGraphs(PathGraph(4), StarGraph(3)));
  EXPECT_FALSE(CrEquivalentGraphs(CycleGraph(6), PathGraph(6)));
}

TEST(CrTest, VertexLevelEquivalence) {
  Graph p = PathGraph(5);
  EXPECT_TRUE(CrEquivalentVertices(p, 0, p, 4));
  EXPECT_FALSE(CrEquivalentVertices(p, 0, p, 2));
  // Endpoints of same-length paths in different graphs match.
  Graph q = PathGraph(5);
  EXPECT_TRUE(CrEquivalentVertices(p, 0, q, 4));
}

TEST(CrTest, InvariantUnderPermutation) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = RandomGnp(12, 0.3, &rng);
    Graph h = g.Permuted(rng.Permutation(12)).value();
    EXPECT_TRUE(CrEquivalentGraphs(g, h));
  }
}

TEST(CrTest, HistoryRefines) {
  Graph p = PathGraph(6);
  CrColoring c = RunColorRefinement({&p});
  // The number of distinct colors is non-decreasing over rounds.
  size_t prev = 0;
  for (const auto& round : c.history) {
    std::set<uint64_t> distinct(round[0].begin(), round[0].end());
    EXPECT_GE(distinct.size(), prev);
    prev = distinct.size();
  }
  EXPECT_GE(c.rounds, 1u);
}

TEST(CrTest, MaxRoundsBoundsWork) {
  Graph p = PathGraph(9);
  CrColoring one = RunColorRefinement({&p}, /*max_rounds=*/1);
  EXPECT_EQ(one.rounds, 1u);
  // After one round colors encode degree only: 2 classes.
  std::set<uint64_t> distinct(one.stable[0].begin(), one.stable[0].end());
  EXPECT_EQ(distinct.size(), 2u);
}

TEST(KwlTest, InvalidKRejected) {
  Graph g = PathGraph(3);
  EXPECT_FALSE(RunKwl({&g}, 0).ok());
  EXPECT_FALSE(RunKwl({&g}, 5).ok());
}

TEST(KwlTest, KOneMatchesColorRefinement) {
  auto [c6, two_c3] = Cr_HardPair();
  Result<bool> r = KwlEquivalentGraphs(c6, two_c3, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  Result<bool> r2 = KwlEquivalentGraphs(PathGraph(4), StarGraph(3), 1);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

TEST(KwlTest, TwoWlSeparatesC6FromTwoTriangles) {
  auto [c6, two_c3] = Cr_HardPair();
  Result<bool> r = KwlEquivalentGraphs(c6, two_c3, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(KwlTest, TwoWlBlindOnSrgPair) {
  auto [shrikhande, rook] = Srg16Pair();
  Result<bool> r = KwlEquivalentGraphs(shrikhande, rook, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r) << "folklore 2-WL must not separate srg(16,6,2,2) graphs";
}

TEST(KwlTest, ThreeWlSeparatesSrgPair) {
  auto [shrikhande, rook] = Srg16Pair();
  Result<bool> r = KwlEquivalentGraphs(shrikhande, rook, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r) << "folklore 3-WL must separate Shrikhande from Rook";
}

TEST(KwlTest, MinimalSeparatingKMatchesHierarchy) {
  auto [c6, two_c3] = Cr_HardPair();
  Result<size_t> k1 = MinimalSeparatingK(c6, two_c3, 3);
  ASSERT_TRUE(k1.ok());
  EXPECT_EQ(*k1, 2u);

  auto [shrikhande, rook] = Srg16Pair();
  Result<size_t> k2 = MinimalSeparatingK(shrikhande, rook, 3);
  ASSERT_TRUE(k2.ok());
  EXPECT_EQ(*k2, 3u);

  // Isomorphic graphs are never separated.
  Rng rng(5);
  Graph g = RandomGnp(8, 0.4, &rng);
  Graph h = g.Permuted(rng.Permutation(8)).value();
  Result<size_t> k3 = MinimalSeparatingK(g, h, 3);
  ASSERT_TRUE(k3.ok());
  EXPECT_EQ(*k3, 0u);
}

TEST(KwlTest, KwlInvariantUnderPermutation) {
  Rng rng(7);
  Graph g = RandomGnp(7, 0.4, &rng);
  Graph h = g.Permuted(rng.Permutation(7)).value();
  for (size_t k : {2u, 3u}) {
    Result<bool> r = KwlEquivalentGraphs(g, h, k);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(*r) << "k=" << k;
  }
}

TEST(KwlTest, RefinementMonotoneInK) {
  // Whenever (k)-WL separates a pair, (k+1)-WL must too.
  Rng rng(9);
  for (int trial = 0; trial < 6; ++trial) {
    Graph a = RandomGnp(7, 0.35, &rng);
    Graph b = RandomGnp(7, 0.35, &rng);
    bool sep1 = !*KwlEquivalentGraphs(a, b, 1);
    bool sep2 = !*KwlEquivalentGraphs(a, b, 2);
    bool sep3 = !*KwlEquivalentGraphs(a, b, 3);
    if (sep1) {
      EXPECT_TRUE(sep2);
    }
    if (sep2) {
      EXPECT_TRUE(sep3);
    }
  }
}

TEST(KwlTest, TupleColorLookup) {
  Graph p = PathGraph(4);
  Result<KwlColoring> c = RunKwl({&p}, 2);
  ASSERT_TRUE(c.ok());
  // Tuple (0, 1) is an edge; (0, 2) is not: different atomic types survive
  // refinement.
  uint64_t edge_color = c->TupleColor(0, {0, 1}, 4);
  uint64_t non_edge_color = c->TupleColor(0, {0, 2}, 4);
  EXPECT_NE(edge_color, non_edge_color);
  // Symmetric positions get symmetric colors: (0,1) vs (3,2).
  EXPECT_EQ(c->TupleColor(0, {0, 1}, 4), c->TupleColor(0, {3, 2}, 4));
}

TEST(KwlTest, TableSizeGuard) {
  Graph big = Graph::Unlabeled(200);
  EXPECT_EQ(RunKwl({&big}, 3).status().code(), StatusCode::kOutOfRange);
}

TEST(KwlTest, CfiCyclePairSeparatedAtTwo) {
  // CFI over a cycle: 1-WL blind (all degrees 2 within each part type),
  // 2-WL separates (connectivity-like information).
  Result<std::pair<Graph, Graph>> pair = CfiPair(CycleGraph(5));
  ASSERT_TRUE(pair.ok());
  Result<bool> r1 = KwlEquivalentGraphs(pair->first, pair->second, 1);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  Result<bool> r2 = KwlEquivalentGraphs(pair->first, pair->second, 2);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

}  // namespace
}  // namespace gelc
