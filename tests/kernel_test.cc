// Tests for the WL subtree kernel and kernel ridge classification
// (slide 17's "graph kernel methods" hypothesis class).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "graph/generators.h"
#include "wl/kernel.h"

namespace gelc {
namespace {

TEST(WlKernelTest, SymmetricPositiveDiagonal) {
  Rng rng(1);
  Graph a = RandomGnp(8, 0.4, &rng);
  Graph b = RandomGnp(8, 0.4, &rng);
  Graph c = CycleGraph(8);
  Matrix k = *WlSubtreeKernelMatrix({&a, &b, &c}, 3);
  EXPECT_EQ(k.rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GT(k.At(i, i), 0.0);
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ(k.At(i, j), k.At(j, i));
  }
}

TEST(WlKernelTest, IsomorphicGraphsHaveEqualRows) {
  Rng rng(2);
  Graph g = RandomGnp(9, 0.4, &rng);
  Graph h = g.Permuted(rng.Permutation(9)).value();
  Graph other = RandomGnp(9, 0.4, &rng);
  Matrix k = *WlSubtreeKernelMatrix({&g, &h, &other}, -1);
  EXPECT_EQ(k.At(0, 0), k.At(1, 1));
  EXPECT_EQ(k.At(0, 2), k.At(1, 2));
  EXPECT_EQ(k.At(0, 0), k.At(0, 1));  // self-similarity == cross-similarity
}

TEST(WlKernelTest, CrEquivalentPairIndistinguishable) {
  // The kernel feature map is exactly the CR color histogram sequence:
  // on a CR-equivalent pair the rows coincide (the kernel is stuck at the
  // same rung of the ladder as MPNNs).
  auto [c6, two_c3] = Cr_HardPair();
  Graph probe = PathGraph(6);
  Matrix k = *WlSubtreeKernelMatrix({&c6, &two_c3, &probe}, -1);
  EXPECT_EQ(k.At(0, 0), k.At(1, 1));
  EXPECT_EQ(k.At(0, 1), k.At(0, 0));
  EXPECT_EQ(k.At(0, 2), k.At(1, 2));
}

TEST(WlKernelTest, MoreRoundsRefine) {
  // K at round 0 only sees label counts; deeper rounds add structure.
  Graph p = PathGraph(6);
  Graph c = CycleGraph(6);
  Matrix k0 = *WlSubtreeKernelMatrix({&p, &c}, 0);
  // Same size, same (uniform) labels: round-0 features identical.
  EXPECT_EQ(k0.At(0, 0), k0.At(0, 1));
  Matrix k2 = *WlSubtreeKernelMatrix({&p, &c}, 2);
  // Round >= 1 separates by degree histogram.
  EXPECT_NE(k2.At(0, 0), k2.At(0, 1));
}

TEST(KernelRidgeTest, Validation) {
  Matrix k(3, 3);
  EXPECT_FALSE(KernelRidgePredict(Matrix(2, 3), {0, 1}, 1, 1.0).ok());
  EXPECT_FALSE(KernelRidgePredict(k, {0, 1}, 1, 1.0).ok());     // label size
  EXPECT_FALSE(KernelRidgePredict(k, {0, 1, 0}, 0, 1.0).ok());  // no train
  EXPECT_FALSE(KernelRidgePredict(k, {0, 1, 0}, 5, 1.0).ok());
}

TEST(NormalizeKernelTest, UnitDiagonalAndZeroHandling) {
  Matrix k = {{4.0, 2.0, 0.0}, {2.0, 9.0, 0.0}, {0.0, 0.0, 0.0}};
  Matrix n = NormalizeKernel(k);
  EXPECT_DOUBLE_EQ(n.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(n.At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(n.At(0, 1), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(n.At(2, 2), 0.0);  // zero diagonal -> zero row
  EXPECT_DOUBLE_EQ(n.At(0, 2), 0.0);
}

TEST(KernelRidgeTest, LearnsMoleculesViaWlKernel) {
  // Kernel methods as a hypothesis class (slide 17): classify the
  // synthetic molecule dataset with the (normalized) WL kernel + ridge.
  Rng rng(3);
  GraphDataset ds = SyntheticMolecules(200, &rng);
  std::vector<const Graph*> ptrs;
  for (const Graph& g : ds.graphs) ptrs.push_back(&g);
  Matrix k = NormalizeKernel(*WlSubtreeKernelMatrix(ptrs, 3));
  size_t train = 150;
  std::vector<size_t> pred =
      *KernelRidgePredict(k, ds.labels, train, /*lambda=*/0.01);
  size_t test_hits = 0;
  for (size_t i = train; i < ds.graphs.size(); ++i)
    if (pred[i] == ds.labels[i]) ++test_hits;
  double acc = static_cast<double>(test_hits) /
               static_cast<double>(ds.graphs.size() - train);
  EXPECT_GT(acc, 0.75) << "WL-kernel ridge should solve ring detection";
}

}  // namespace
}  // namespace gelc
