// Unit tests for autodiff: gradients checked against finite differences,
// plus optimizer behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autodiff/optimizer.h"
#include "autodiff/tape.h"
#include "base/rng.h"

namespace gelc {
namespace {

// Checks d(loss)/d(param) against central finite differences for a scalar
// loss builder. The builder must rebuild the whole forward pass from the
// parameter's current value.
void CheckGradient(Parameter* p,
                   const std::function<double()>& loss_value,
                   const std::function<void()>& backward,
                   double tol = 1e-5) {
  p->ZeroGrad();
  backward();
  Matrix analytic = p->grad;
  const double h = 1e-6;
  for (size_t r = 0; r < p->value.rows(); ++r) {
    for (size_t c = 0; c < p->value.cols(); ++c) {
      double orig = p->value.At(r, c);
      p->value.At(r, c) = orig + h;
      double up = loss_value();
      p->value.At(r, c) = orig - h;
      double down = loss_value();
      p->value.At(r, c) = orig;
      double fd = (up - down) / (2 * h);
      EXPECT_NEAR(analytic.At(r, c), fd, tol)
          << "at (" << r << "," << c << ")";
    }
  }
}

TEST(TapeTest, ForwardValuesMatchMatrixOps) {
  Tape tape;
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  ValueId ia = tape.Input(a);
  ValueId ib = tape.Input(b);
  EXPECT_EQ(tape.value(tape.Add(ia, ib)), a + b);
  EXPECT_EQ(tape.value(tape.Sub(ia, ib)), a - b);
  EXPECT_EQ(tape.value(tape.MatMul(ia, ib)), a.MatMul(b));
  EXPECT_EQ(tape.value(tape.Hadamard(ia, ib)), a.Hadamard(b));
  EXPECT_EQ(tape.value(tape.Scale(ia, 3.0)), a * 3.0);
  EXPECT_EQ(tape.value(tape.ColSums(ia)), a.ColSums());
  EXPECT_EQ(tape.value(tape.ConcatCols(ia, ib)), a.ConcatCols(b));
}

TEST(TapeTest, MseGradientMatMul) {
  Rng rng(11);
  Parameter w(Matrix::RandomGaussian(3, 2, 0.5, &rng));
  Matrix x = Matrix::RandomGaussian(4, 3, 1.0, &rng);
  Matrix target = Matrix::RandomGaussian(4, 2, 1.0, &rng);

  auto loss_value = [&]() {
    Tape t;
    ValueId pred = t.MatMul(t.Input(x), t.Param(&w));
    return t.value(t.Mse(pred, target)).At(0, 0);
  };
  auto backward = [&]() {
    Tape t;
    ValueId pred = t.MatMul(t.Input(x), t.Param(&w));
    t.Backward(t.Mse(pred, target));
  };
  CheckGradient(&w, loss_value, backward);
}

TEST(TapeTest, GradThroughActivationAndBias) {
  Rng rng(13);
  Parameter w(Matrix::RandomGaussian(3, 3, 0.5, &rng));
  Parameter b(Matrix::RandomGaussian(1, 3, 0.5, &rng));
  Matrix x = Matrix::RandomGaussian(5, 3, 1.0, &rng);
  Matrix target = Matrix::RandomGaussian(5, 3, 1.0, &rng);

  auto build = [&](Tape* t) {
    ValueId h = t->AddRowBroadcast(t->MatMul(t->Input(x), t->Param(&w)),
                                   t->Param(&b));
    return t->Mse(t->Act(Activation::kTanh, h), target);
  };
  auto loss_value = [&]() {
    Tape t;
    return t.value(build(&t)).At(0, 0);
  };
  for (Parameter* p : {&w, &b}) {
    p->ZeroGrad();
  }
  auto backward = [&]() {
    Tape t;
    t.Backward(build(&t));
  };
  CheckGradient(&w, loss_value, backward);
  CheckGradient(&b, loss_value, backward);
}

TEST(TapeTest, GradThroughHadamardScaleConcat) {
  Rng rng(17);
  Parameter w(Matrix::RandomGaussian(2, 2, 0.5, &rng));
  Matrix x = Matrix::RandomGaussian(3, 2, 1.0, &rng);
  Matrix target = Matrix::RandomGaussian(3, 4, 1.0, &rng);

  auto build = [&](Tape* t) {
    ValueId xa = t->Input(x);
    ValueId h = t->MatMul(xa, t->Param(&w));
    ValueId had = t->Hadamard(h, xa);
    ValueId sc = t->Scale(h, -1.5);
    return t->Mse(t->ConcatCols(had, sc), target);
  };
  CheckGradient(
      &w,
      [&]() {
        Tape t;
        return t.value(build(&t)).At(0, 0);
      },
      [&]() {
        Tape t;
        t.Backward(build(&t));
      });
}

TEST(TapeTest, GradThroughColSumsAndGather) {
  Rng rng(19);
  Parameter w(Matrix::RandomGaussian(2, 3, 0.5, &rng));
  Matrix x = Matrix::RandomGaussian(6, 2, 1.0, &rng);
  Matrix target = Matrix::RandomGaussian(2, 3, 1.0, &rng);
  std::vector<size_t> rows = {1, 4};

  auto build = [&](Tape* t) {
    ValueId h = t->MatMul(t->Input(x), t->Param(&w));
    ValueId g = t->GatherRows(h, rows);
    return t->Mse(g, target);
  };
  CheckGradient(
      &w,
      [&]() {
        Tape t;
        return t.value(build(&t)).At(0, 0);
      },
      [&]() {
        Tape t;
        t.Backward(build(&t));
      });
}

TEST(TapeTest, GradThroughColMax) {
  // Input values chosen so the argmax is unique and stable under the
  // finite-difference probe.
  Parameter w(Matrix({{2.0, -1.0}, {0.5, 3.0}}));
  Matrix x = {{1, 0}, {0, 1}, {2, 2}};
  Matrix target = {{0.0, 0.0}};

  auto build = [&](Tape* t) {
    ValueId h = t->MatMul(t->Input(x), t->Param(&w));
    return t->Mse(t->ColMax(h), target);
  };
  CheckGradient(
      &w,
      [&]() {
        Tape t;
        return t.value(build(&t)).At(0, 0);
      },
      [&]() {
        Tape t;
        t.Backward(build(&t));
      });
}

TEST(TapeTest, SoftmaxCrossEntropyGradient) {
  Rng rng(23);
  Parameter w(Matrix::RandomGaussian(3, 4, 0.5, &rng));
  Matrix x = Matrix::RandomGaussian(5, 3, 1.0, &rng);
  std::vector<size_t> labels = {0, 3, 1, 2, 0};

  auto build = [&](Tape* t) {
    ValueId logits = t->MatMul(t->Input(x), t->Param(&w));
    return t->SoftmaxCrossEntropy(logits, labels);
  };
  CheckGradient(
      &w,
      [&]() {
        Tape t;
        return t.value(build(&t)).At(0, 0);
      },
      [&]() {
        Tape t;
        t.Backward(build(&t));
      });
}

TEST(TapeTest, SoftmaxCrossEntropyValueMatchesManual) {
  Tape tape;
  Matrix logits = {{0.0, 0.0}};
  ValueId l = tape.Input(logits);
  ValueId loss = tape.SoftmaxCrossEntropy(l, {0});
  EXPECT_NEAR(tape.value(loss).At(0, 0), std::log(2.0), 1e-12);
}

TEST(TapeTest, GradientAccumulatesForSharedParam) {
  Parameter w(Matrix({{1.0}}));
  Tape tape;
  ValueId p1 = tape.Param(&w);
  ValueId p2 = tape.Param(&w);
  // loss = (w + w)^2-ish via Mse against 0: pred = w + w = 2, loss = 4.
  ValueId sum = tape.Add(p1, p2);
  ValueId loss = tape.Mse(sum, Matrix({{0.0}}));
  w.ZeroGrad();
  tape.Backward(loss);
  // d/dw (2w)^2 = 8w = 8.
  EXPECT_NEAR(w.grad.At(0, 0), 8.0, 1e-12);
}

TEST(TapeTest, SegmentOpsForwardMatchPerBlockColumnOps) {
  Rng rng(37);
  Matrix x = Matrix::RandomGaussian(6, 3, 1.0, &rng);
  // Four segments, the second empty.
  std::vector<size_t> offsets = {0, 2, 2, 5, 6};
  Tape t;
  ValueId ix = t.Input(x);
  Matrix sum = t.value(t.SegmentSum(ix, offsets));
  Matrix mean = t.value(t.SegmentMean(ix, offsets));
  Matrix mx = t.value(t.SegmentMax(ix, offsets));
  ASSERT_EQ(sum.rows(), 4u);
  for (size_t s = 0; s < 4; ++s) {
    size_t rows = offsets[s + 1] - offsets[s];
    if (rows == 0) {
      // Empty segments pool to zero rows, max included.
      EXPECT_EQ(sum.Row(s), Matrix(1, 3));
      EXPECT_EQ(mean.Row(s), Matrix(1, 3));
      EXPECT_EQ(mx.Row(s), Matrix(1, 3));
      continue;
    }
    Matrix block(rows, 3);
    for (size_t r = 0; r < rows; ++r)
      for (size_t c = 0; c < 3; ++c)
        block.At(r, c) = x.At(offsets[s] + r, c);
    // Bit-for-bit the whole-matrix column reductions of the block alone.
    EXPECT_EQ(sum.Row(s), block.ColSums());
    EXPECT_EQ(mean.Row(s), block.ColMeans());
    EXPECT_EQ(mx.Row(s), block.ColMax());
  }
}

TEST(TapeTest, GradThroughSegmentSumAndMean) {
  Rng rng(41);
  Parameter w(Matrix::RandomGaussian(3, 2, 0.5, &rng));
  Matrix x = Matrix::RandomGaussian(6, 3, 1.0, &rng);
  std::vector<size_t> offsets = {0, 2, 2, 5, 6};  // empty middle segment
  Matrix target = Matrix::RandomGaussian(4, 2, 1.0, &rng);
  for (bool mean : {false, true}) {
    auto build = [&](Tape* t) {
      ValueId h = t->MatMul(t->Input(x), t->Param(&w));
      ValueId pooled =
          mean ? t->SegmentMean(h, offsets) : t->SegmentSum(h, offsets);
      return t->Mse(pooled, target);
    };
    CheckGradient(
        &w,
        [&]() {
          Tape t;
          return t.value(build(&t)).At(0, 0);
        },
        [&]() {
          Tape t;
          t.Backward(build(&t));
        });
  }
}

TEST(TapeTest, GradThroughSegmentMax) {
  // Values chosen so each segment's argmaxes are unique and stable under
  // the finite-difference probe (cf. GradThroughColMax).
  Parameter w(Matrix({{2.0, -1.0}, {0.5, 3.0}}));
  Matrix x = {{1, 0}, {0, 1}, {2, 2}, {3, 0}, {0, 2}};
  std::vector<size_t> offsets = {0, 3, 5};
  Matrix target(2, 2);

  auto build = [&](Tape* t) {
    ValueId h = t->MatMul(t->Input(x), t->Param(&w));
    return t->Mse(t->SegmentMax(h, offsets), target);
  };
  CheckGradient(
      &w,
      [&]() {
        Tape t;
        return t.value(build(&t)).At(0, 0);
      },
      [&]() {
        Tape t;
        t.Backward(build(&t));
      });
}

TEST(TapeTest, SegmentMaxTieRoutesGradientToFirstArgmax) {
  // Each segment holds an exact two-way tie per column; the subgradient
  // convention routes all of it to the first argmax row.
  Parameter w(Matrix({{1.0, 3.0}, {1.0, 3.0}, {2.0, 5.0}, {2.0, 5.0}}));
  std::vector<size_t> offsets = {0, 2, 4};
  Tape t;
  ValueId mx = t.SegmentMax(t.Param(&w), offsets);
  w.ZeroGrad();
  t.Backward(t.Mse(mx, Matrix(2, 2)));
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_NE(w.grad.At(0, c), 0.0) << "col " << c;
    EXPECT_EQ(w.grad.At(1, c), 0.0) << "col " << c;
    EXPECT_NE(w.grad.At(2, c), 0.0) << "col " << c;
    EXPECT_EQ(w.grad.At(3, c), 0.0) << "col " << c;
  }
}

TEST(TapeTest, SegmentedMatMulAndBiasMatchPlainOps) {
  Rng rng(43);
  Parameter w(Matrix::RandomGaussian(3, 2, 0.5, &rng));
  Parameter b(Matrix::RandomGaussian(1, 2, 0.5, &rng));
  Matrix x = Matrix::RandomGaussian(6, 3, 1.0, &rng);
  std::vector<size_t> offsets = {0, 2, 2, 5, 6};
  Matrix target = Matrix::RandomGaussian(6, 2, 1.0, &rng);

  auto build = [&](Tape* t, bool segmented) {
    ValueId ix = t->Input(x);
    ValueId h = segmented ? t->MatMulSegments(ix, t->Param(&w), offsets)
                          : t->MatMul(ix, t->Param(&w));
    ValueId out = segmented
                      ? t->AddRowBroadcastSegments(h, t->Param(&b), offsets)
                      : t->AddRowBroadcast(h, t->Param(&b));
    return t->Mse(out, target);
  };
  // Forward values are bitwise those of the plain ops.
  {
    Tape plain, seg;
    EXPECT_EQ(plain.value(build(&plain, false)),
              seg.value(build(&seg, true)));
  }
  for (Parameter* p : {&w, &b}) {
    CheckGradient(
        p,
        [&]() {
          Tape t;
          return t.value(build(&t, true)).At(0, 0);
        },
        [&]() {
          Tape t;
          t.Backward(build(&t, true));
        });
  }
  // The segmented backward computes the same real-valued gradients, just
  // accumulated per segment; numerically they track the plain ops.
  auto grads_of = [&](bool segmented) {
    w.ZeroGrad();
    b.ZeroGrad();
    Tape t;
    t.Backward(build(&t, segmented));
    return std::pair<Matrix, Matrix>(w.grad, b.grad);
  };
  auto [gw_seg, gb_seg] = grads_of(true);
  auto [gw_plain, gb_plain] = grads_of(false);
  EXPECT_TRUE(gw_seg.AllClose(gw_plain, 1e-12));
  EXPECT_TRUE(gb_seg.AllClose(gb_plain, 1e-12));
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Parameter w(Matrix({{5.0}}));
  Sgd opt(0.1);
  opt.Register(&w);
  for (int i = 0; i < 200; ++i) {
    Tape t;
    ValueId loss = t.Mse(t.Param(&w), Matrix({{2.0}}));
    opt.ZeroGrad();
    t.Backward(loss);
    opt.Step();
  }
  EXPECT_NEAR(w.value.At(0, 0), 2.0, 1e-6);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Parameter plain(Matrix({{5.0}}));
  Parameter heavy(Matrix({{5.0}}));
  Sgd opt_plain(0.01);
  Sgd opt_heavy(0.01, 0.9);
  opt_plain.Register(&plain);
  opt_heavy.Register(&heavy);
  for (int i = 0; i < 50; ++i) {
    for (auto [opt, p] : {std::pair<Sgd*, Parameter*>{&opt_plain, &plain},
                          {&opt_heavy, &heavy}}) {
      Tape t;
      ValueId loss = t.Mse(t.Param(p), Matrix({{0.0}}));
      opt->ZeroGrad();
      t.Backward(loss);
      opt->Step();
    }
  }
  EXPECT_LT(std::fabs(heavy.value.At(0, 0)),
            std::fabs(plain.value.At(0, 0)));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Parameter w(Matrix({{-3.0, 7.0}}));
  Adam opt(0.05);
  opt.Register(&w);
  Matrix target = {{1.0, -2.0}};
  for (int i = 0; i < 2000; ++i) {
    Tape t;
    ValueId loss = t.Mse(t.Param(&w), target);
    opt.ZeroGrad();
    t.Backward(loss);
    opt.Step();
  }
  EXPECT_TRUE(w.value.AllClose(target, 1e-3));
}

TEST(TapeTest, LinearRegressionEndToEnd) {
  // Recover y = x * [2, -1]^T + 0.5 from noiseless data.
  Rng rng(31);
  Matrix x = Matrix::RandomGaussian(64, 2, 1.0, &rng);
  Matrix true_w = {{2.0}, {-1.0}};
  Matrix y = x.MatMul(true_w).AddRowBroadcast(Matrix({{0.5}}));

  Parameter w(Matrix::RandomGaussian(2, 1, 0.1, &rng));
  Parameter b(Matrix(1, 1));
  Adam opt(0.05);
  opt.Register(&w);
  opt.Register(&b);
  for (int i = 0; i < 800; ++i) {
    Tape t;
    ValueId pred = t.AddRowBroadcast(t.MatMul(t.Input(x), t.Param(&w)),
                                     t.Param(&b));
    ValueId loss = t.Mse(pred, y);
    opt.ZeroGrad();
    t.Backward(loss);
    opt.Step();
  }
  EXPECT_TRUE(w.value.AllClose(true_w, 1e-3));
  EXPECT_NEAR(b.value.At(0, 0), 0.5, 1e-3);
}

}  // namespace
}  // namespace gelc
