// Tests for the snapshot diff library (src/obs/stats_diff): the JSON
// parser over the snapshot grammar, BENCH-wrapper unwrapping, regression
// detection with thresholds and ignore prefixes, and malformed-input
// rejection — the gate scripts/check.sh relies on (ISSUE 9).
#include "obs/stats_diff.h"

#include <string>

#include <gtest/gtest.h>

namespace gelc {
namespace {

obs::ParsedSnapshot MustParse(const std::string& json) {
  obs::ParsedSnapshot snap;
  Status s = obs::ParseSnapshotJson(json, &snap);
  EXPECT_TRUE(s.ok()) << s.message();
  return snap;
}

TEST(JsonParserTest, ParsesScalarsArraysAndObjects) {
  obs::JsonValue v;
  ASSERT_TRUE(obs::ParseJson("  {\"a\": [1, -2.5, true, null, \"x\"]} ", &v)
                  .ok());
  ASSERT_EQ(v.kind, obs::JsonValue::Kind::kObject);
  const obs::JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 5u);
  EXPECT_TRUE(a->array[0].is_int);
  EXPECT_EQ(a->array[0].int_value, 1);
  EXPECT_FALSE(a->array[1].is_int);
  EXPECT_EQ(a->array[1].number_value, -2.5);
  EXPECT_EQ(a->array[2].kind, obs::JsonValue::Kind::kBool);
  EXPECT_TRUE(a->array[2].bool_value);
  EXPECT_EQ(a->array[3].kind, obs::JsonValue::Kind::kNull);
  EXPECT_EQ(a->array[4].string_value, "x");
}

TEST(JsonParserTest, UnescapesStringEscapes) {
  obs::JsonValue v;
  ASSERT_TRUE(obs::ParseJson("\"a\\\"b\\\\c\\n\\u0041\"", &v).ok());
  EXPECT_EQ(v.string_value, "a\"b\\c\nA");
}

TEST(JsonParserTest, LargeCounterValuesKeepIntegerExactness) {
  obs::JsonValue v;
  // 2^53 + 1 is not representable as a double; is_int must preserve it.
  ASSERT_TRUE(obs::ParseJson("9007199254740993", &v).ok());
  ASSERT_TRUE(v.is_int);
  EXPECT_EQ(v.int_value, 9007199254740993LL);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  obs::JsonValue v;
  EXPECT_FALSE(obs::ParseJson("", &v).ok());
  EXPECT_FALSE(obs::ParseJson("{", &v).ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\": }", &v).ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\": 1} trailing", &v).ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\" 1}", &v).ok());
  EXPECT_FALSE(obs::ParseJson("\"unterminated", &v).ok());
  EXPECT_FALSE(obs::ParseJson("\"bad \\u00zz escape\"", &v).ok());
}

TEST(ParseSnapshotTest, ReadsAllFourSections) {
  obs::ParsedSnapshot snap = MustParse(
      "{\"counters\": {\"x.calls\": 3}, \"gauges\": {\"g\": 1.5}, "
      "\"histograms\": {\"h\": {\"bounds\": [1], \"counts\": [1, 0], "
      "\"total\": 1, \"sum\": 1}}, "
      "\"timings\": {\"t\": {\"count\": 2, \"sum_ns\": 10, \"p50_ns\": 4, "
      "\"p90_ns\": 5, \"p99_ns\": 5}}}");
  EXPECT_EQ(snap.counters.at("x.calls"), 3);
  EXPECT_EQ(snap.gauges.at("g"), 1.5);
  ASSERT_EQ(snap.histograms.count("h"), 1u);
  ASSERT_EQ(snap.timings.count("t"), 1u);
  EXPECT_EQ(snap.timings.at("t").Find("count")->int_value, 2);
}

TEST(ParseSnapshotTest, UnwrapsBenchWrapper) {
  obs::ParsedSnapshot snap = MustParse(
      "{\"gelc_metrics\": {\"counters\": {\"spmm.calls\": 7}, "
      "\"gauges\": {}, \"histograms\": {}}, "
      "\"benchmarks\": [{\"name\": \"BM_SpMM\", \"real_time\": 1.0}]}");
  EXPECT_EQ(snap.counters.at("spmm.calls"), 7);
}

TEST(ParseSnapshotTest, RejectsNonObjectAndBadWrapper) {
  obs::ParsedSnapshot snap;
  EXPECT_FALSE(obs::ParseSnapshotJson("[1, 2]", &snap).ok());
  EXPECT_FALSE(
      obs::ParseSnapshotJson("{\"gelc_metrics\": 5}", &snap).ok());
}

TEST(DiffTest, InjectedCounterRegressionExitsNonzeroPath) {
  // The acceptance-criteria case: a counter grew past the threshold, the
  // report names it, and the regression list is non-empty (gelc_stats
  // --diff maps that to a nonzero exit).
  obs::ParsedSnapshot old_snap =
      MustParse("{\"counters\": {\"matmul.flops\": 1000, \"spmm.calls\": 4}}");
  obs::ParsedSnapshot new_snap =
      MustParse("{\"counters\": {\"matmul.flops\": 1500, \"spmm.calls\": 4}}");
  obs::DiffOptions options;
  options.threshold = 0.1;
  obs::DiffReport report = obs::DiffSnapshots(old_snap, new_snap, options);
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0], "matmul.flops");
  EXPECT_NE(report.text.find("REGRESSION"), std::string::npos);
}

TEST(DiffTest, EqualSnapshotsAndWithinThresholdAreClean) {
  obs::ParsedSnapshot snap =
      MustParse("{\"counters\": {\"matmul.flops\": 1000}}");
  obs::DiffReport same = obs::DiffSnapshots(snap, snap, {});
  EXPECT_TRUE(same.regressions.empty());
  // +50% under a 0.6 threshold: reported as a delta, not a regression.
  obs::ParsedSnapshot grown =
      MustParse("{\"counters\": {\"matmul.flops\": 1500}}");
  obs::DiffOptions loose;
  loose.threshold = 0.6;
  EXPECT_TRUE(obs::DiffSnapshots(snap, grown, loose).regressions.empty());
}

TEST(DiffTest, DecreasesNewAndVanishedCountersNeverGate) {
  obs::ParsedSnapshot old_snap =
      MustParse("{\"counters\": {\"a\": 100, \"gone\": 5}}");
  obs::ParsedSnapshot new_snap =
      MustParse("{\"counters\": {\"a\": 50, \"fresh\": 9}}");
  obs::DiffReport report = obs::DiffSnapshots(old_snap, new_snap, {});
  EXPECT_TRUE(report.regressions.empty());
  EXPECT_NE(report.text.find("+ fresh"), std::string::npos);
  EXPECT_NE(report.text.find("- gone"), std::string::npos);
}

TEST(DiffTest, IgnorePrefixesExcludeFromGateAndReport) {
  obs::ParsedSnapshot old_snap = MustParse(
      "{\"counters\": {\"parallel.tasks_scheduled\": 3, \"x\": 1}}");
  obs::ParsedSnapshot new_snap = MustParse(
      "{\"counters\": {\"parallel.tasks_scheduled\": 30, \"x\": 1}}");
  obs::DiffOptions options;
  options.ignore = {"parallel."};
  obs::DiffReport report = obs::DiffSnapshots(old_snap, new_snap, options);
  EXPECT_TRUE(report.regressions.empty());
  EXPECT_EQ(report.text.find("parallel.tasks_scheduled"), std::string::npos);
}

TEST(DiffTest, TimingsArePrintedButNeverGated) {
  obs::ParsedSnapshot old_snap = MustParse(
      "{\"counters\": {}, \"timings\": {\"plan_exec\": {\"count\": 5, "
      "\"sum_ns\": 100, \"p50_ns\": 10, \"p90_ns\": 20, \"p99_ns\": 20}}}");
  obs::ParsedSnapshot new_snap = MustParse(
      "{\"counters\": {}, \"timings\": {\"plan_exec\": {\"count\": 5, "
      "\"sum_ns\": 900, \"p50_ns\": 90, \"p90_ns\": 180, "
      "\"p99_ns\": 180}}}");
  obs::DiffReport report = obs::DiffSnapshots(old_snap, new_snap, {});
  EXPECT_TRUE(report.regressions.empty());  // a 9x p50 blowup never gates
  EXPECT_NE(report.text.find("plan_exec"), std::string::npos);
}

TEST(DiffTest, ReportIsDeterministic) {
  obs::ParsedSnapshot a = MustParse("{\"counters\": {\"m\": 2, \"a\": 1}}");
  obs::ParsedSnapshot b = MustParse("{\"counters\": {\"a\": 1, \"m\": 3}}");
  obs::DiffReport r1 = obs::DiffSnapshots(a, b, {});
  obs::DiffReport r2 = obs::DiffSnapshots(a, b, {});
  EXPECT_EQ(r1.text, r2.text);
  // Sorted by name: "a" reported before "m".
  EXPECT_LT(r1.text.find("a: 1"), r1.text.find("m: 2"));
}

}  // namespace
}  // namespace gelc
