// Tests for src/lint: the lexer, each rule of the catalogue firing on a
// crafted snippet, NOLINT suppression, the cross-file harvests, the
// whole-program passes (include-graph layering/cycles and the
// parallel-region race detector), and the report shapes. Violation
// snippets live in string literals, so gelc_lint's self-run over tests/
// does not trip on its own fixtures.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "lint/layers.h"
#include "lint/lexer.h"
#include "lint/linter.h"
#include "lint/rules.h"

namespace gelc {
namespace lint {
namespace {

// --- Lexer ----------------------------------------------------------------

std::vector<std::string> TokenTexts(const LexResult& lex) {
  std::vector<std::string> out;
  out.reserve(lex.tokens.size());
  for (const Token& t : lex.tokens) out.push_back(t.text);
  return out;
}

TEST(LexerTest, IdentifiersNumbersPunct) {
  LexResult lex = Lex("int x = a1 + 0x1f; y->z::w;");
  EXPECT_EQ(TokenTexts(lex),
            (std::vector<std::string>{"int", "x", "=", "a1", "+", "0x1f", ";",
                                      "y", "->", "z", "::", "w", ";"}));
}

TEST(LexerTest, LineAndBlockCommentsProduceNoTokens) {
  LexResult lex = Lex("a // rest of line new delete\nb /* new\ndelete */ c");
  EXPECT_EQ(TokenTexts(lex), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(lex.tokens[1].line, 2);
  EXPECT_EQ(lex.tokens[2].line, 3);  // block comment advanced the line count
}

TEST(LexerTest, StringAndCharLiteralsAreOpaque) {
  // Banned tokens inside literals must not leak into the token stream.
  LexResult lex = Lex("f(\"new delete \\\" std::mutex\", 'x', '\\'');");
  ASSERT_EQ(lex.tokens.size(), 9u);
  EXPECT_EQ(lex.tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(lex.tokens[2].text, "\"new delete \\\" std::mutex\"");
  EXPECT_EQ(lex.tokens[4].kind, TokenKind::kChar);
  EXPECT_EQ(lex.tokens[6].text, "'\\''");
}

TEST(LexerTest, RawStringsWithDelimiters) {
  LexResult lex = Lex("auto s = R\"x(rand( \")\" std::thread)x\"; k");
  ASSERT_GE(lex.tokens.size(), 5u);
  EXPECT_EQ(lex.tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(lex.tokens[3].text, "R\"x(rand( \")\" std::thread)x\"");
  EXPECT_EQ(lex.tokens[5].text, "k");
}

TEST(LexerTest, PreprocessorLinesAreSkippedIncludingContinuations) {
  LexResult lex = Lex(
      "#include <thread>\n"
      "#define BAD(x) new x \\\n"
      "    delete x\n"
      "real;");
  EXPECT_EQ(TokenTexts(lex), (std::vector<std::string>{"real", ";"}));
  EXPECT_EQ(lex.tokens[0].line, 4);
}

TEST(LexerTest, NolintBareAndWithRules) {
  LexResult lex = Lex(
      "a; // NOLINT\n"
      "b; // NOLINT(raw-thread, banned-alloc)\n"
      "c; /* NOLINT(nondeterminism) */\n"
      "d;\n");
  ASSERT_TRUE(lex.nolint.count(1));
  EXPECT_TRUE(lex.nolint.at(1).empty());  // bare: suppress everything
  ASSERT_TRUE(lex.nolint.count(2));
  EXPECT_EQ(lex.nolint.at(2).size(), 2u);
  EXPECT_TRUE(lex.nolint.at(2).count("raw-thread"));
  EXPECT_TRUE(lex.nolint.at(2).count("banned-alloc"));
  ASSERT_TRUE(lex.nolint.count(3));
  EXPECT_TRUE(lex.nolint.at(3).count("nondeterminism"));
  EXPECT_FALSE(lex.nolint.count(4));
}

TEST(LexerTest, NolintNextLine) {
  LexResult lex = Lex(
      "// NOLINTNEXTLINE(banned-alloc)\n"
      "int* p = new int;\n");
  EXPECT_FALSE(lex.nolint.count(1));
  ASSERT_TRUE(lex.nolint.count(2));
  EXPECT_TRUE(lex.nolint.at(2).count("banned-alloc"));
}

TEST(LexerTest, NolintNextLineBindsToNextTokenBearingLine) {
  // Blank lines and further comments between the marker and the code do
  // not swallow the suppression.
  LexResult lex = Lex(
      "// NOLINTNEXTLINE(banned-alloc)\n"
      "\n"
      "// rationale continues here\n"
      "int* p = new int;\n");
  EXPECT_FALSE(lex.nolint.count(2));
  EXPECT_FALSE(lex.nolint.count(3));
  ASSERT_TRUE(lex.nolint.count(4));
  EXPECT_TRUE(lex.nolint.at(4).count("banned-alloc"));
}

TEST(LexerTest, NolintNextLineAtEndOfFileSuppressesNothing) {
  LexResult lex = Lex("int x;\n// NOLINTNEXTLINE\n");
  EXPECT_TRUE(lex.nolint.empty());
}

TEST(LexerTest, HarvestsIncludeDirectives) {
  LexResult lex = Lex(
      "#include \"lint/lexer.h\"\n"
      "#include <vector>\n"
      "  #include \"base/status.h\"  // trailing comment\n"
      "#define NOT_AN_INCLUDE \"x.h\"\n");
  ASSERT_EQ(lex.includes.size(), 3u);
  EXPECT_EQ(lex.includes[0].path, "lint/lexer.h");
  EXPECT_FALSE(lex.includes[0].angled);
  EXPECT_EQ(lex.includes[0].line, 1);
  EXPECT_EQ(lex.includes[1].path, "vector");
  EXPECT_TRUE(lex.includes[1].angled);
  EXPECT_EQ(lex.includes[2].path, "base/status.h");
  EXPECT_EQ(lex.includes[2].line, 3);
}

// --- Rule firing ----------------------------------------------------------

std::vector<Diagnostic> RunOn(const std::string& path,
                              const std::string& source,
                              StatusFunctionSet status_fns = {}) {
  return LintSource(path, source, status_fns);
}

std::vector<std::string> RulesOf(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  for (const Diagnostic& d : diags) out.push_back(d.rule);
  return out;
}

TEST(RulesTest, RawThreadFiresOutsideParallel) {
  auto diags = RunOn("src/wl/kwl.cc", "std::thread t(f); std::mutex mu;");
  EXPECT_EQ(RulesOf(diags),
            (std::vector<std::string>{"raw-thread", "raw-thread"}));
}

TEST(RulesTest, RawThreadExemptInBaseParallel) {
  EXPECT_TRUE(RunOn("src/base/parallel.cc", "std::thread t(f);").empty());
  EXPECT_TRUE(RunOn("src/base/parallel.h", "std::mutex mu;").empty());
  // ...but a file merely *named* parallel elsewhere is not exempt.
  EXPECT_FALSE(RunOn("src/gnn/parallel.cc", "std::thread t(f);").empty());
}

TEST(RulesTest, RawThreadExemptUnderObs) {
  EXPECT_TRUE(RunOn("src/obs/metrics.cc", "std::mutex mu;").empty());
  EXPECT_TRUE(RunOn("src/obs/trace.cc", "std::mutex mu;").empty());
  // The obs *tests* are not exempt — only the library directory is.
  EXPECT_FALSE(RunOn("tests/obs_test.cc", "std::mutex mu;").empty());
}

TEST(RulesTest, AdhocTimingFiresOutsideObsAndBench) {
  auto diags = RunOn(
      "src/wl/kwl.cc",
      "auto t0 = std::chrono::steady_clock::now();\n"
      "auto t1 = std::chrono::high_resolution_clock::now();\n"
      "auto t2 = std::chrono::system_clock::now();");
  EXPECT_EQ(RulesOf(diags),
            (std::vector<std::string>{"adhoc-timing", "adhoc-timing",
                                      "adhoc-timing"}));
  // Namespace aliases don't dodge the rule: the bare identifier matches.
  EXPECT_EQ(RunOn("src/a.cc",
                  "namespace ch = std::chrono; auto t = "
                  "ch::steady_clock::now();")
                .size(),
            1u);
}

TEST(RulesTest, AdhocTimingExemptInClockTUsBenchAndNolint) {
  EXPECT_TRUE(
      RunOn("src/obs/trace.cc", "std::chrono::steady_clock::now();").empty());
  EXPECT_TRUE(
      RunOn("src/obs/timing.cc", "std::chrono::steady_clock::now();").empty());
  EXPECT_TRUE(
      RunOn("bench/bench_e12.cc", "std::chrono::steady_clock::now();")
          .empty());
  EXPECT_TRUE(RunOn("src/a.cc",
                    "auto t = std::chrono::steady_clock::now();  "
                    "// NOLINT(adhoc-timing)")
                  .empty());
}

TEST(RulesTest, AdhocTimingFiresInRestOfObs) {
  // Only the two clock-owning TUs are exempt; a stopwatch anywhere else
  // in src/obs (the deterministic plane) violates the doctrine.
  EXPECT_EQ(RunOn("src/obs/metrics.cc",
                  "auto t = std::chrono::steady_clock::now();")
                .size(),
            1u);
  EXPECT_EQ(RunOn("src/obs/snapshot.cc",
                  "auto t = std::chrono::system_clock::now();")
                .size(),
            1u);
  // The headers are deterministic-plane surface too.
  EXPECT_EQ(RunOn("src/obs/timing.h",
                  "auto t = std::chrono::steady_clock::now();")
                .size(),
            1u);
}

TEST(RulesTest, NondeterminismRandSrandTimeRandomDevice) {
  auto diags = RunOn("src/a.cc",
                     "int a = rand(); srand(7); std::random_device rd; "
                     "auto t0 = time(nullptr); auto t1 = time(NULL);");
  EXPECT_EQ(diags.size(), 5u);
  for (const auto& d : diags) EXPECT_EQ(d.rule, "nondeterminism");
}

TEST(RulesTest, NondeterminismArglessMt19937) {
  EXPECT_EQ(RunOn("src/a.cc", "std::mt19937 gen;").size(), 1u);
  EXPECT_EQ(RunOn("src/a.cc", "std::mt19937 gen{};").size(), 1u);
  EXPECT_EQ(RunOn("src/a.cc", "auto g = std::mt19937();").size(), 1u);
  EXPECT_EQ(RunOn("src/a.cc", "std::mt19937_64 gen;").size(), 1u);
  // Explicitly seeded engines are fine.
  EXPECT_TRUE(RunOn("src/a.cc", "std::mt19937 gen(seed);").empty());
  EXPECT_TRUE(RunOn("src/a.cc", "std::mt19937 gen{42};").empty());
}

TEST(RulesTest, NondeterminismExemptInRngHeader) {
  EXPECT_TRUE(RunOn("src/base/rng.h", "std::random_device rd;").empty());
}

TEST(RulesTest, NondeterminismNotFooledByMembersNamedRand) {
  EXPECT_TRUE(RunOn("src/a.cc", "double x = dist.rand();").empty());
  EXPECT_TRUE(RunOn("src/a.cc", "obj->time(nullptr);").empty());
}

TEST(RulesTest, BannedAllocNewDelete) {
  auto diags = RunOn("src/a.cc", "int* p = new int[3]; delete[] p;");
  EXPECT_EQ(RulesOf(diags),
            (std::vector<std::string>{"banned-alloc", "banned-alloc"}));
}

TEST(RulesTest, BannedAllocAllowsDeletedFunctionsAndPlacement) {
  EXPECT_TRUE(RunOn("src/a.h", "Foo(const Foo&) = delete;").empty());
  EXPECT_TRUE(RunOn("src/a.cc", "new (buf) Foo(1);").empty());
  EXPECT_TRUE(
      RunOn("src/a.h", "void* operator new(std::size_t);").empty());
}

TEST(RulesTest, IntrinsicsFireOutsideTensorSimd) {
  auto diags = RunOn("src/gnn/mpnn.cc",
                     "__m256d acc = _mm256_loadu_pd(p);\n"
                     "acc = _mm256_add_pd(acc, acc);");
  EXPECT_EQ(RulesOf(diags),
            (std::vector<std::string>{"intrinsics-outside-tensor",
                                      "intrinsics-outside-tensor",
                                      "intrinsics-outside-tensor"}));
  // SSE and AVX-512 spellings are covered too, including a tensor/ file
  // that is not part of the simd family.
  EXPECT_EQ(RunOn("src/tensor/matrix.cc", "__m128 v; _mm_prefetch(p, 0);")
                .size(),
            2u);
  EXPECT_EQ(RunOn("src/core/plan_exec.cc", "__m512d z = _mm512_setzero_pd();")
                .size(),
            2u);
}

TEST(RulesTest, IntrinsicsExemptInTensorSimdFamily) {
  EXPECT_TRUE(
      RunOn("src/tensor/simd_avx2.cc", "__m256d v = _mm256_set1_pd(1.0);")
          .empty());
  EXPECT_TRUE(RunOn("src/tensor/simd.cc", "_mm_prefetch(p, 0);").empty());
  EXPECT_TRUE(RunOn("src/tensor/simd.h", "__m256d v;").empty());
  // A simd-prefixed file outside tensor/ is not exempt.
  EXPECT_FALSE(RunOn("src/base/simd_util.h", "__m256d v;").empty());
}

TEST(RulesTest, IntrinsicsNotFooledByLookalikes) {
  // Ordinary identifiers that merely start with _m or mention simd.
  EXPECT_TRUE(
      RunOn("src/a.cc", "int _max = 3; auto simd_mode = GetSimdMode();")
          .empty());
  // Preprocessor lines are skipped by the lexer, so a include-guard-style
  // macro mentioning __m256 in a comment or #define doesn't fire.
  EXPECT_TRUE(RunOn("src/a.cc", "#define HAS__m256 1\n// __m256d docs\n")
                  .empty());
}

TEST(RulesTest, IncludeHygieneOnlyInHeaders) {
  EXPECT_EQ(RunOn("src/a.h", "using namespace std;").size(), 1u);
  EXPECT_EQ(RunOn("src/a.h", "using namespace std;")[0].rule,
            "include-hygiene");
  EXPECT_TRUE(RunOn("src/a.cc", "using namespace std;").empty());
  // `using std::swap;` is fine even in headers.
  EXPECT_TRUE(RunOn("src/a.h", "using std::swap;").empty());
}

TEST(RulesTest, DenseAdjacencyOnlyUnderGnn) {
  const std::string src = "Matrix a = g.AdjacencyMatrix();";
  ASSERT_EQ(RunOn("src/gnn/mpnn.cc", src).size(), 1u);
  EXPECT_EQ(RunOn("src/gnn/mpnn.cc", src)[0].rule,
            "dense-adjacency-in-hot-path");
  EXPECT_EQ(RunOn("src/gnn/gat.h",
                  "Matrix m = g.MeanAdjacencyMatrix();").size(),
            1u);
  // The same call outside src/gnn is the sanctioned dense path.
  EXPECT_TRUE(RunOn("src/hom/hom_count.cc", src).empty());
}

TEST(RulesTest, InterpreterInHotPathOnlyUnderGnn) {
  const std::string src = "Evaluator ev(g); Matrix m = *ev.EvalVertex(e);";
  ASSERT_EQ(RunOn("src/gnn/mpnn.cc", src).size(), 1u);
  EXPECT_EQ(RunOn("src/gnn/mpnn.cc", src)[0].rule,
            "interpreter-in-hot-path");
  // The interpreter is fine everywhere else: it is the semantics oracle
  // in core/ and the differential reference in tests/.
  EXPECT_TRUE(RunOn("src/core/plan_compile.cc", src).empty());
  EXPECT_TRUE(RunOn("tests/plan_test.cc", src).empty());
}

TEST(RulesTest, CsrRebuildInStreamPathOnlyInUpdateLog) {
  const std::string src = "const CsrGraph& c = g.Csr(); c.adjacency();";
  ASSERT_EQ(RunOn("src/graph/update_log.cc", src).size(), 1u);
  EXPECT_EQ(RunOn("src/graph/update_log.cc", src)[0].rule,
            "csr-rebuild-in-stream-path");
  EXPECT_EQ(RunOn("src/graph/update_log.h",
                  "Matrix a = g.AdjacencyMatrix();")[0]
                .rule,
            "csr-rebuild-in-stream-path");
  EXPECT_EQ(RunOn("src/graph/update_log.cc",
                  "Matrix m = g.MeanAdjacencyMatrix();")
                .size(),
            1u);
  // The same calls anywhere else — including the rest of graph/ and the
  // stream tests/tools, where the compaction path is the subject under
  // test — are the sanctioned snapshot API.
  EXPECT_TRUE(RunOn("src/graph/graph.cc", src).empty());
  EXPECT_TRUE(RunOn("tests/stream_test.cc", src).empty());
  EXPECT_TRUE(RunOn("tools/gelc_stream.cc", src).empty());
  // A mention without a call (e.g. in a comment-adjacent identifier
  // position such as `Csr` in a doc string) only fires when followed by
  // an argument list.
  EXPECT_TRUE(
      RunOn("src/graph/update_log.cc", "int Csr = 0; Csr += 1;").empty());
  // NOLINT waives it like every other rule.
  EXPECT_TRUE(RunOn("src/graph/update_log.cc",
                    "g.Csr();  // NOLINT(csr-rebuild-in-stream-path)")
                  .empty());
}

TEST(RulesTest, SegmentIndexingOnlyUnderGnn) {
  const std::string ids = "size_t s = batch.segment_ids()[v];";
  const std::string offs = "size_t lo = batch.vertex_offsets()[i + 1];";
  ASSERT_EQ(RunOn("src/gnn/trainable.cc", ids).size(), 1u);
  EXPECT_EQ(RunOn("src/gnn/trainable.cc", ids)[0].rule,
            "segment-boundary-indexing");
  EXPECT_EQ(RunOn("src/gnn/mpnn.cc", offs).size(), 1u);
  // GraphBatch itself (and tests/tools) may index its backing vectors.
  EXPECT_TRUE(RunOn("src/graph/batch.cc", ids).empty());
  EXPECT_TRUE(RunOn("tests/batch_test.cc", offs).empty());
}

TEST(RulesTest, SegmentIndexingAllowsAccessorsAndPassThrough) {
  // Passing the offsets vector whole to a segment op is the sanctioned
  // pattern; only `()[` — a raw element read — crosses a boundary.
  EXPECT_TRUE(
      RunOn("src/gnn/trainable.cc",
            "ValueId p = tape->SegmentSum(z, batch.vertex_offsets());")
          .empty());
  EXPECT_TRUE(RunOn("src/gnn/trainable.cc",
                    "size_t lo = batch.graph_offset(i);")
                  .empty());
  // NOLINT waives it like any other rule.
  EXPECT_TRUE(RunOn("src/gnn/trainable.cc",
                    "size_t s = batch.segment_ids()[v];  "
                    "// NOLINT(segment-boundary-indexing)")
                  .empty());
}

TEST(RulesTest, UncheckedStatusBareCallStatement) {
  StatusFunctionSet fns = {"AddEdge"};
  auto diags = RunOn("src/a.cc", "void f(Graph& g) { g.AddEdge(0, 1); }",
                     fns);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unchecked-status");
}

TEST(RulesTest, UncheckedStatusVoidCast) {
  StatusFunctionSet fns = {"AddEdge"};
  auto diags =
      RunOn("src/a.cc", "void f(Graph& g) { (void)g.AddEdge(0, 1); }", fns);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unchecked-status");
}

TEST(RulesTest, UncheckedStatusNotFiredWhenHandled) {
  StatusFunctionSet fns = {"AddEdge", "RelationGraph"};
  const char* ok_sources[] = {
      "Status s = g.AddEdge(0, 1);",
      "if (!g.AddEdge(0, 1).ok()) return;",
      "return g.AddEdge(0, 1);",
      "GELC_RETURN_NOT_OK(g.AddEdge(0, 1));",
      "EXPECT_TRUE(g.AddEdge(0, 1).ok());",
      "g.AddEdge(0, 1).IgnoreError();",
      "GELC_CHECK_OK(g.AddEdge(0, 1));",
      "auto r = a.RelationGraph(0);",
  };
  for (const char* src : ok_sources) {
    EXPECT_TRUE(RunOn("src/a.cc", src, fns).empty()) << src;
  }
}

TEST(RulesTest, UncheckedStatusSkipsMacroHeadedBuilderChains) {
  // Expr::Apply returns Result<ExprPtr>, but google-benchmark's
  // `BENCHMARK(f)->Apply(config);` is a registration builder, not a
  // discard. Macro-shaped statement heads are exempt.
  StatusFunctionSet fns = {"Apply"};
  EXPECT_TRUE(
      RunOn("bench/b.cc", "BENCHMARK(BM_X)->Apply(cfg);", fns).empty());
  // The same chain off a normal identifier still fires.
  EXPECT_EQ(RunOn("src/a.cc", "maker(x)->Apply(cfg);", fns).size(), 1u);
}

TEST(RulesTest, UncheckedStatusInsideLambdaBody) {
  StatusFunctionSet fns = {"AddEdge"};
  auto diags = RunOn("src/a.cc",
                     "auto fn = [&] { g.AddEdge(0, 1); return 3; };", fns);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unchecked-status");
}

// --- Status-function harvesting -------------------------------------------

TEST(HarvestTest, CollectsStatusAndResultDeclarations) {
  LexResult lex = Lex(
      "Status AddEdge(VertexId u, VertexId v);\n"
      "Result<Graph> Permuted(const std::vector<size_t>& perm) const;\n"
      "Status RelationalGraph::AddRelEdge(size_t r) { return Status::OK(); }\n"
      "Result<std::vector<int>> Nested();\n"
      "bool ok() const;\n"
      "Status status() const;\n");
  StatusFunctionSet set;
  CollectStatusFunctionsFromTokens(lex.tokens, &set);
  EXPECT_TRUE(set.count("AddEdge"));
  EXPECT_TRUE(set.count("Permuted"));
  EXPECT_TRUE(set.count("AddRelEdge"));
  EXPECT_TRUE(set.count("Nested"));
  EXPECT_TRUE(set.count("status"));
  EXPECT_FALSE(set.count("ok"));
}

TEST(HarvestTest, CollectsTemplateQualifiedDefinitions) {
  LexResult lex = Lex(
      "Status Builder<T>::Finish(int x) { return Status::OK(); }\n"
      "Result<int> Cache<K, V>::Lookup(const K& k);\n"
      "Status a < b;\n");  // comparison, not a declarator
  StatusFunctionSet set;
  CollectStatusFunctionsFromTokens(lex.tokens, &set);
  EXPECT_TRUE(set.count("Finish"));
  EXPECT_TRUE(set.count("Lookup"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(HarvestTest, CollectsGuardedByAnnotations) {
  LexResult lex = Lex(
      "std::set<int> seen GELC_GUARDED_BY(mu);\n"
      "int plain = 0;\n");
  std::unordered_map<std::string, std::string> map;
  CollectGuardedByFromTokens(lex.tokens, &map);
  ASSERT_TRUE(map.count("seen"));
  EXPECT_EQ(map.at("seen"), "mu");
  EXPECT_EQ(map.size(), 1u);
}

TEST(HarvestTest, CollectsAtomicDeclarations) {
  LexResult lex = Lex(
      "std::atomic<int> calls{0};\n"
      "std::atomic<std::pair<int, int>> pair_box;\n"
      "atomic_thread_fence(order);\n");
  std::unordered_set<std::string> vars;
  CollectAtomicVarsFromTokens(lex.tokens, &vars);
  EXPECT_TRUE(vars.count("calls"));
  EXPECT_TRUE(vars.count("pair_box"));
  EXPECT_EQ(vars.size(), 2u);
}

// --- Parallel-region race detector ----------------------------------------

TEST(RaceTest, FlagsUnguardedByRefWrite) {
  auto diags = RunOn("src/a.cc",
                     "void f() {\n"
                     "  double acc = 0.0;\n"
                     "  ParallelFor(0, n, 1, [&](size_t b, size_t e) {\n"
                     "    for (size_t i = b; i < e; ++i) acc += 1.0;\n"
                     "  });\n"
                     "}\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "parallel-region-race");
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_NE(diags[0].message.find("'acc'"), std::string::npos);
}

TEST(RaceTest, AcceptsShardIndexedWrites) {
  // Subscripts and call arguments naming a loop variable (or any body
  // local) make the write disjoint per index.
  EXPECT_TRUE(RunOn("src/a.cc",
                    "void f(std::vector<double>& out, Matrix& k) {\n"
                    "  ParallelFor(0, n, 1, [&](size_t b, size_t e) {\n"
                    "    for (size_t i = b; i < e; ++i) {\n"
                    "      out[i] = 1.0;\n"
                    "      k.At(i, 0) = 2.0;\n"
                    "    }\n"
                    "  });\n"
                    "}\n")
                  .empty());
}

TEST(RaceTest, AcceptsAtomicWrites) {
  EXPECT_TRUE(RunOn("src/a.cc",
                    "void f() {\n"
                    "  std::atomic<long> sum{0};\n"
                    "  std::atomic<int> calls{0};\n"
                    "  ParallelFor(0, n, 1, [&](size_t b, size_t e) {\n"
                    "    long local = 0;\n"
                    "    sum.fetch_add(local);\n"
                    "    ++calls;\n"
                    "  });\n"
                    "}\n")
                  .empty());
}

TEST(RaceTest, GuardedByAcceptedOnlyWithLockInRegion) {
  const std::string decl =
      "std::mutex mu;  // NOLINT(raw-thread)\n"
      "std::set<int> seen GELC_GUARDED_BY(mu);\n";
  EXPECT_TRUE(
      RunOn("src/a.cc",
            decl +
                "void f() {\n"
                "  ParallelFor(0, n, 1, [&](size_t b, size_t e) {\n"
                "    std::lock_guard<std::mutex> lock(mu);  "
                "// NOLINT(raw-thread)\n"
                "    seen.insert(0);\n"
                "  });\n"
                "}\n")
          .empty());
  auto bad = RunOn("src/a.cc",
                   decl +
                       "void f() {\n"
                       "  ParallelFor(0, n, 1, [&](size_t b, size_t e) {\n"
                       "    seen.insert(0);\n"
                       "  });\n"
                       "}\n");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].rule, "parallel-region-race");
  EXPECT_NE(bad[0].message.find("without locking"), std::string::npos);
}

TEST(RaceTest, ResolvesNamedLambdaArguments) {
  auto diags = RunOn("src/a.cc",
                     "void f() {\n"
                     "  double acc = 0.0;\n"
                     "  auto body = [&](size_t b, size_t e) { acc += 1.0; };\n"
                     "  ParallelFor(0, n, 1, body);\n"
                     "}\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "parallel-region-race");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(RaceTest, ByValueCapturesAreNotFlagged) {
  EXPECT_TRUE(RunOn("src/a.cc",
                    "void f() {\n"
                    "  int snapshot = 3;\n"
                    "  int shadow = 4;\n"
                    "  ParallelFor(0, n, 1,\n"
                    "              [=](size_t b, size_t e) mutable {\n"
                    "                snapshot += 1;\n"
                    "              });\n"
                    "  ParallelFor(0, n, 1, [&, shadow](size_t b,\n"
                    "                                   size_t e) mutable {\n"
                    "    shadow += 1;\n"
                    "  });\n"
                    "}\n")
                  .empty());
}

TEST(RaceTest, NolintSuppressesRaceFindings) {
  EXPECT_TRUE(RunOn("src/a.cc",
                    "void f() {\n"
                    "  double acc = 0.0;\n"
                    "  ParallelFor(0, n, 1, [&](size_t b, size_t e) {\n"
                    "    acc += 1.0;  // NOLINT(parallel-region-race)\n"
                    "  });\n"
                    "}\n")
                  .empty());
}

// --- Whole-program pipeline -----------------------------------------------

TEST(ProgramTest, CrossFileStatusHarvest) {
  std::vector<SourceFile> files = {
      {"src/graph/graph.h", "Status AddEdge(VertexId u, VertexId v);\n"},
      {"src/a.cc", "void f(Graph& g) { g.AddEdge(0, 1); }\n"},
  };
  auto diags = LintProgram(files);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unchecked-status");
  EXPECT_EQ(diags[0].file, "src/a.cc");
}

TEST(ProgramTest, LayeringViolationFlagged) {
  std::vector<SourceFile> files = {
      {"src/base/low.h", "#include \"tensor/high.h\"\n"},
      {"src/tensor/high.h", "\n"},
  };
  auto diags = LintProgram(files);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "include-layering");
  EXPECT_EQ(diags[0].file, "src/base/low.h");
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_NE(diags[0].message.find("base/low.h -> tensor/high.h"),
            std::string::npos);
}

TEST(ProgramTest, IncludeCycleFlagged) {
  std::vector<SourceFile> files = {
      {"src/graph/a.h", "#include \"graph/b.h\"\n"},
      {"src/graph/b.h", "#include \"graph/a.h\"\n"},
  };
  auto diags = LintProgram(files);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "include-cycle");
  EXPECT_NE(
      diags[0].message.find("graph/a.h -> graph/b.h -> graph/a.h"),
      std::string::npos);
}

TEST(ProgramTest, SameRankAndDownwardIncludesAllowed) {
  // wl and hom share a rank; graph sits below both; system headers and
  // unresolved quoted includes are ignored.
  std::vector<SourceFile> files = {
      {"src/wl/kernel.h",
       "#include <vector>\n"
       "#include \"hom/count.h\"\n"
       "#include \"graph/graph.h\"\n"
       "#include \"not/in/the/set.h\"\n"},
      {"src/hom/count.h", "\n"},
      {"src/graph/graph.h", "\n"},
  };
  EXPECT_TRUE(LintProgram(files).empty());
}

TEST(ProgramTest, NolintSuppressesLayeringFinding) {
  std::vector<SourceFile> files = {
      {"src/base/low.h",
       "#include \"tensor/high.h\"  // NOLINT(include-layering)\n"},
      {"src/tensor/high.h", "\n"},
  };
  EXPECT_TRUE(LintProgram(files).empty());
}

TEST(ProgramTest, RuleFilterKeepsOnlyNamedRules) {
  std::vector<SourceFile> files = {
      {"src/base/low.h", "#include \"tensor/high.h\"\n"},
      {"src/tensor/high.h", "int* p = new int;\n"},
  };
  EXPECT_EQ(LintProgram(files).size(), 2u);
  LintOptions opts;
  opts.rules = {"include-layering"};
  auto diags = LintProgram(files, opts);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "include-layering");
}

TEST(ProgramTest, ReportIdenticalAtAnyThreadCount) {
  // The lint report must be byte-identical however the harvest and
  // per-file passes are sharded — same contract as the numeric kernels.
  std::vector<SourceFile> files;
  for (int i = 0; i < 12; ++i) {
    files.push_back(SourceFile{
        "src/f" + std::to_string(i) + ".cc",
        "int* p" + std::to_string(i) + " = new int;\n"});
  }
  files.push_back(SourceFile{"src/base/low.h",
                             "#include \"tensor/high.h\"\n"});
  files.push_back(SourceFile{"src/tensor/high.h", "\n"});
  std::string serial, parallel;
  {
    SetParallelThreadCount(1);
    serial = FormatText(LintProgram(files));
  }
  {
    SetParallelThreadCount(4);
    parallel = FormatText(LintProgram(files));
  }
  SetParallelThreadCount(0);
  EXPECT_NE(serial.find("13 findings"), std::string::npos);
  EXPECT_EQ(serial, parallel);
}

// --- Layer table ----------------------------------------------------------

TEST(LayersTest, RanksFollowTheDeclaredOrder) {
  std::string module;
  EXPECT_EQ(LayerRank("src/base/status.h", &module), 0);
  EXPECT_EQ(module, "base");
  EXPECT_LT(LayerRank("src/obs/metrics.h", &module),
            LayerRank("src/tensor/matrix.h", &module));
  EXPECT_LT(LayerRank("src/gnn/mpnn.cc", &module),
            LayerRank("src/core/plan.h", &module));
  // wl and hom share a rank; all app-tier directories share the top one.
  EXPECT_EQ(LayerRank("src/wl/kwl.cc", &module),
            LayerRank("src/hom/hom_count.cc", &module));
  EXPECT_EQ(LayerRank("tests/lint_test.cc", &module),
            LayerRank("tools/gelc_lint.cc", &module));
  EXPECT_GT(LayerRank("tests/lint_test.cc", &module),
            LayerRank("src/separation/separation.h", &module));
  // Files outside the layered tree are exempt.
  EXPECT_EQ(LayerRank("README.md", &module), -1);
}

TEST(LayersTest, EveryGroupModuleRoundTrips) {
  for (const auto& group : LayerGroups()) {
    for (const std::string& m : group) {
      std::string module;
      int rank = LayerRank("src/" + m + "/file.h", &module);
      EXPECT_GE(rank, 0) << m;
      EXPECT_EQ(module, m);
    }
  }
  EXPECT_NE(LayerOrderDescription().find("base < obs"), std::string::npos);
}

// --- NOLINT suppression ---------------------------------------------------

TEST(SuppressionTest, BareNolintSuppressesEverythingOnTheLine) {
  auto diags =
      RunOn("src/a.cc", "int* p = new int; // NOLINT\nint* q = new int;");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 2);
}

TEST(SuppressionTest, RuleListSuppressesOnlyNamedRules) {
  // Line violates both banned-alloc and raw-thread; only one is waived.
  auto diags = RunOn(
      "src/a.cc",
      "auto* t = new std::thread(f); // NOLINT(banned-alloc)\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "raw-thread");
  // Naming both waives both.
  EXPECT_TRUE(
      RunOn("src/a.cc",
            "auto* t = new std::thread(f); // NOLINT(banned-alloc, "
            "raw-thread)\n")
          .empty());
}

TEST(SuppressionTest, NolintNextLineSuppressesFollowingLine) {
  EXPECT_TRUE(RunOn("src/a.cc",
                    "// NOLINTNEXTLINE(banned-alloc): private ctor\n"
                    "int* p = new int;\n")
                  .empty());
}

TEST(SuppressionTest, UnknownRuleNameSuppressesNothing) {
  auto diags = RunOn("src/a.cc", "int* p = new int; // NOLINT(other-rule)");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "banned-alloc");
}

TEST(SuppressionTest, NolintNextLineAboveMultiLineStatement) {
  // The marker reaches the line the statement starts on; a finding
  // anchored to a continuation line needs its own inline NOLINT.
  EXPECT_TRUE(RunOn("src/a.cc",
                    "// NOLINTNEXTLINE(banned-alloc)\n"
                    "int* p = new int(\n"
                    "    3);\n")
                  .empty());
  auto diags = RunOn("src/a.cc",
                     "// NOLINTNEXTLINE(banned-alloc)\n"
                     "int* p =\n"
                     "    new int;\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(SuppressionTest, MultiRuleListWithAndWithoutSpaces) {
  EXPECT_TRUE(RunOn("src/a.cc",
                    "auto* t = new std::thread(f); "
                    "// NOLINT(banned-alloc,raw-thread)\n")
                  .empty());
  EXPECT_TRUE(RunOn("src/a.cc",
                    "auto* t = new std::thread(f); "
                    "// NOLINT( banned-alloc , raw-thread )\n")
                  .empty());
}

TEST(SuppressionTest, SuppressionCoexistsWithRealFindings) {
  // Waiving one line must not eat findings elsewhere in the same file.
  auto diags = RunOn("src/a.cc",
                     "int* a = new int;  // NOLINT(banned-alloc)\n"
                     "int* b = new int;\n"
                     "std::mutex mu;  // NOLINT(raw-thread)\n"
                     "int* c = new int;\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_EQ(diags[1].line, 4);
  EXPECT_EQ(diags[0].rule, "banned-alloc");
  EXPECT_EQ(diags[1].rule, "banned-alloc");
}

// --- Reports --------------------------------------------------------------

TEST(ReportTest, TextFormat) {
  auto diags = RunOn("src/a.cc", "int* p = new int;");
  std::string text = FormatText(diags);
  EXPECT_NE(text.find("src/a.cc:1: [banned-alloc]"), std::string::npos);
  EXPECT_NE(text.find("1 finding\n"), std::string::npos);
  EXPECT_EQ(FormatText({}), "gelc_lint: clean\n");
}

TEST(ReportTest, JsonShape) {
  auto diags = RunOn("src/a.cc", "int* p = new int;\nint* q = new int;");
  ASSERT_EQ(diags.size(), 2u);
  std::string json = FormatJson(diags);
  EXPECT_EQ(json.find("{\"findings\": ["), 0u);
  EXPECT_NE(json.find("\"file\": \"src/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"banned-alloc\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2}"), std::string::npos);
}

TEST(ReportTest, JsonEscapesSpecialCharacters) {
  std::vector<Diagnostic> diags = {
      {"src/we\"ird.cc", 3, "banned-alloc", "line1\nline2\ttab"}};
  std::string json = FormatJson(diags);
  EXPECT_NE(json.find("we\\\"ird"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\ttab"), std::string::npos);
}

TEST(ReportTest, JsonByRuleSummary) {
  auto diags = RunOn("src/a.cc",
                     "int* p = new int;\n"
                     "std::mutex mu;\n"
                     "int* q = new int;\n");
  ASSERT_EQ(diags.size(), 3u);
  std::string json = FormatJson(diags);
  EXPECT_NE(
      json.find("\"by_rule\": {\"banned-alloc\": 2, \"raw-thread\": 1}"),
      std::string::npos);
  EXPECT_NE(json.find("\"count\": 3}"), std::string::npos);
  EXPECT_NE(FormatJson({}).find("\"by_rule\": {}"), std::string::npos);
}

TEST(ReportTest, AllRuleNamesListedOnce) {
  const auto& names = AllRuleNames();
  EXPECT_EQ(names.size(), 14u);
  for (const char* expected :
       {"unchecked-status", "dense-adjacency-in-hot-path",
        "interpreter-in-hot-path", "csr-rebuild-in-stream-path",
        "segment-boundary-indexing", "raw-thread", "adhoc-timing",
        "nondeterminism", "banned-alloc", "intrinsics-outside-tensor",
        "include-hygiene", "parallel-region-race", "include-layering",
        "include-cycle"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

}  // namespace
}  // namespace lint
}  // namespace gelc
