// Tests for the GNN library: GNN-101, MPNN variants, invariance (slide 11),
// aggregation behaviour, and ERM training (slides 16-20).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "gnn/gnn101.h"
#include "gnn/mlp.h"
#include "gnn/mpnn.h"
#include "gnn/trainable.h"
#include "graph/generators.h"

namespace gelc {
namespace {

TEST(MlpTest, EmptyIsIdentity) {
  Mlp mlp;
  Matrix x = {{1, 2}, {3, 4}};
  EXPECT_EQ(mlp.Forward(x), x);
}

TEST(MlpTest, SingleLayerMatchesManual) {
  MlpLayer l;
  l.w = Matrix({{1, 0}, {0, 2}});
  l.b = Matrix({{1, -1}});
  l.act = Activation::kReLU;
  Mlp mlp({l});
  Matrix x = {{1, 1}};
  EXPECT_EQ(mlp.Forward(x), Matrix({{2, 1}}));
  Matrix y = {{-5, 0}};
  EXPECT_EQ(mlp.Forward(y), Matrix({{0, 0}}));
}

TEST(MlpTest, RandomShapes) {
  Rng rng(1);
  Result<Mlp> mlp = Mlp::Random({3, 8, 2}, Activation::kReLU,
                                Activation::kIdentity, 0.5, &rng);
  ASSERT_TRUE(mlp.ok());
  EXPECT_EQ(mlp->in_dim(), 3u);
  EXPECT_EQ(mlp->out_dim(), 2u);
  Matrix out = mlp->Forward(Matrix(5, 3, 1.0));
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(out.cols(), 2u);
  EXPECT_FALSE(Mlp::Random({3}, Activation::kReLU, Activation::kIdentity,
                           0.5, &rng)
                   .ok());
}

TEST(Gnn101Test, HandWeightsComputeDegree) {
  // One layer, identity activation, w1 = 0, w2 = 1 on 1-dim all-ones
  // features: output = degree.
  Gnn101Layer l;
  l.w1 = Matrix({{0.0}});
  l.w2 = Matrix({{1.0}});
  l.b = Matrix({{0.0}});
  l.act = Activation::kIdentity;
  Gnn101Model model({l});
  Graph star = StarGraph(3);
  Matrix f = *model.VertexEmbeddings(star);
  EXPECT_EQ(f.At(0, 0), 3.0);  // hub
  for (size_t v = 1; v <= 3; ++v) EXPECT_EQ(f.At(v, 0), 1.0);
}

TEST(Gnn101Test, TwoLayersPropagateTwoHops) {
  // Same degree layer twice: second layer sums neighbor degrees.
  Gnn101Layer l;
  l.w1 = Matrix({{0.0}});
  l.w2 = Matrix({{1.0}});
  l.b = Matrix({{0.0}});
  l.act = Activation::kIdentity;
  Gnn101Model model({l, l});
  Graph p = PathGraph(4);  // degrees 1,2,2,1
  Matrix f = *model.VertexEmbeddings(p);
  EXPECT_EQ(f.At(0, 0), 2.0);      // neighbor degrees of 0: {2}
  EXPECT_EQ(f.At(1, 0), 3.0);      // {1, 2}
}

TEST(Gnn101Test, FeatureDimValidated) {
  Rng rng(2);
  Gnn101Model model = *Gnn101Model::Random({3, 4}, Activation::kReLU, 0.5,
                                           &rng);
  Graph g = Graph::Unlabeled(4);  // feature dim 1 != 3
  EXPECT_FALSE(model.VertexEmbeddings(g).ok());
}

TEST(Gnn101Test, ReadoutRequiresConfiguration) {
  Gnn101Layer l;
  l.w1 = Matrix({{1.0}});
  l.w2 = Matrix({{1.0}});
  l.b = Matrix({{0.0}});
  Gnn101Model model({l});
  EXPECT_FALSE(model.GraphEmbedding(PathGraph(3)).ok());
}

TEST(Gnn101Test, InvarianceUnderPermutation) {
  Rng rng(3);
  Gnn101Model model =
      *Gnn101Model::Random({1, 8, 8}, Activation::kTanh, 0.7, &rng);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = RandomGnp(10, 0.35, &rng);
    std::vector<size_t> perm = rng.Permutation(10);
    Graph h = g.Permuted(perm).value();
    Matrix fg = *model.VertexEmbeddings(g);
    Matrix fh = *model.VertexEmbeddings(h);
    for (size_t v = 0; v < 10; ++v)
      EXPECT_TRUE(fg.Row(v).AllClose(fh.Row(perm[v]), 1e-9));
    Matrix eg = *model.GraphEmbedding(g);
    Matrix eh = *model.GraphEmbedding(h);
    EXPECT_TRUE(eg.AllClose(eh, 1e-9));
  }
}

TEST(AggregateTest, SumMeanMaxKnownValues) {
  Graph p = PathGraph(3);
  Matrix f = {{1, 10}, {2, 20}, {4, 40}};
  Matrix sum = AggregateNeighbors(p, f, Aggregation::kSum);
  EXPECT_EQ(sum.Row(0), Matrix({{2, 20}}));
  EXPECT_EQ(sum.Row(1), Matrix({{5, 50}}));
  Matrix mean = AggregateNeighbors(p, f, Aggregation::kMean);
  EXPECT_EQ(mean.Row(1), Matrix({{2.5, 25}}));
  Matrix mx = AggregateNeighbors(p, f, Aggregation::kMax);
  EXPECT_EQ(mx.Row(1), Matrix({{4, 40}}));
}

TEST(AggregateTest, IsolatedVertexAggregatesToZero) {
  Graph g = Graph::Unlabeled(2);  // no edges
  Matrix f = {{3, -1}, {5, 2}};
  for (Aggregation agg :
       {Aggregation::kSum, Aggregation::kMean, Aggregation::kMax}) {
    Matrix out = AggregateNeighbors(g, f, agg);
    EXPECT_EQ(out, Matrix(2, 2)) << AggregationName(agg);
  }
}

TEST(AggregateTest, PoolVariants) {
  Matrix f = {{1, -5}, {3, 7}};
  EXPECT_EQ(PoolVertices(f, Aggregation::kSum), Matrix({{4, 2}}));
  EXPECT_EQ(PoolVertices(f, Aggregation::kMean), Matrix({{2, 1}}));
  EXPECT_EQ(PoolVertices(f, Aggregation::kMax), Matrix({{3, 7}}));
}

class MpnnInvarianceTest
    : public ::testing::TestWithParam<Aggregation> {};

TEST_P(MpnnInvarianceTest, GraphEmbeddingInvariant) {
  Rng rng(5);
  MpnnModel model = *MpnnModel::Random({1, 6, 6}, GetParam(), 0.7, &rng);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = RandomGnp(9, 0.4, &rng);
    Graph h = g.Permuted(rng.Permutation(9)).value();
    Matrix eg = *model.GraphEmbedding(g);
    Matrix eh = *model.GraphEmbedding(h);
    EXPECT_TRUE(eg.AllClose(eh, 1e-9)) << AggregationName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllAggregations, MpnnInvarianceTest,
                         ::testing::Values(Aggregation::kSum,
                                           Aggregation::kMean,
                                           Aggregation::kMax));

TEST(GinTest, InvarianceAndShape) {
  Rng rng(7);
  GinModel model = *GinModel::Random({1, 5, 5}, 0.7, &rng);
  Graph g = RandomGnp(8, 0.4, &rng);
  Graph h = g.Permuted(rng.Permutation(8)).value();
  EXPECT_TRUE((*model.GraphEmbedding(g)).AllClose(*model.GraphEmbedding(h),
                                                  1e-9));
  EXPECT_EQ((*model.VertexEmbeddings(g)).cols(), 5u);
}

TEST(GcnTest, InvarianceUnderPermutation) {
  Rng rng(8);
  GcnModel model = *GcnModel::Random({1, 6}, 0.7, &rng);
  Graph g = RandomGnp(8, 0.4, &rng);
  std::vector<size_t> perm = rng.Permutation(8);
  Graph h = g.Permuted(perm).value();
  Matrix fg = *model.VertexEmbeddings(g);
  Matrix fh = *model.VertexEmbeddings(h);
  for (size_t v = 0; v < 8; ++v)
    EXPECT_TRUE(fg.Row(v).AllClose(fh.Row(perm[v]), 1e-9));
}

TEST(GraphSageTest, InvarianceUnderPermutation) {
  Rng rng(9);
  GraphSageModel model = *GraphSageModel::Random({1, 6}, 0.7, &rng);
  Graph g = RandomGnp(8, 0.4, &rng);
  std::vector<size_t> perm = rng.Permutation(8);
  Graph h = g.Permuted(perm).value();
  Matrix fg = *model.VertexEmbeddings(g);
  Matrix fh = *model.VertexEmbeddings(h);
  for (size_t v = 0; v < 8; ++v)
    EXPECT_TRUE(fg.Row(v).AllClose(fh.Row(perm[v]), 1e-9));
}

TEST(MpnnModelTest, SumSeparatesWhatMeanCannot) {
  // K_{1,2} star vs K_{1,3} star with constant features: mean-aggregation
  // vertex embeddings of hubs coincide in the first layer, sum separates
  // by degree. Graph-level: mean-MPNN cannot distinguish a graph from its
  // "doubled" disjoint self-union; sum can.
  Graph c3 = CycleGraph(3);
  Graph c3c3 = *Graph::DisjointUnion(CycleGraph(3), CycleGraph(3));
  Rng rng(11);
  bool sum_separates = false;
  for (int i = 0; i < 10; ++i) {
    MpnnModel sum_model =
        *MpnnModel::Random({1, 5, 5}, Aggregation::kSum, 0.8, &rng);
    Matrix a = *sum_model.GraphEmbedding(c3);
    Matrix b = *sum_model.GraphEmbedding(c3c3);
    if (a.MaxAbsDiff(b) > 1e-6) sum_separates = true;
  }
  EXPECT_TRUE(sum_separates);
}

TEST(TrainableTest, ConfigValidation) {
  TrainableGnn::Config bad;
  bad.widths = {3};
  EXPECT_FALSE(TrainableGnn::Create(bad).ok());
  bad.widths = {3, 4};
  bad.num_outputs = 0;
  EXPECT_FALSE(TrainableGnn::Create(bad).ok());
}

TEST(TrainableTest, NodeClassifierLearnsCommunities) {
  Rng rng(21);
  NodeDataset ds = SyntheticCitations(80, 2, 0.2, &rng);
  TrainOptions opt;
  opt.epochs = 120;
  opt.learning_rate = 0.02;
  opt.hidden_widths = {8};
  Result<TrainReport> report = TrainNodeClassifier(ds, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->train_accuracy, 0.9);
  EXPECT_GT(report->test_accuracy, 0.8);
  // Loss decreased.
  EXPECT_LT(report->loss_history.back(), report->loss_history.front());
}

TEST(TrainableTest, GraphClassifierLearnsMolecules) {
  Rng rng(23);
  GraphDataset ds = SyntheticMolecules(60, &rng);
  TrainOptions opt;
  opt.epochs = 120;
  opt.learning_rate = 0.02;
  opt.hidden_widths = {8, 8};
  Result<TrainReport> report = TrainGraphClassifier(ds, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->train_accuracy, 0.85);
  EXPECT_GT(report->test_accuracy, 0.7);
}

TEST(TrainableTest, LinkPredictorBeatsChance) {
  Rng rng(25);
  LinkDataset ds = SyntheticSocialLinks(200, &rng);
  TrainOptions opt;
  opt.epochs = 100;
  opt.learning_rate = 0.02;
  opt.hidden_widths = {8};
  Result<TrainReport> report = TrainLinkPredictor(ds, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->train_accuracy, 0.7);
  EXPECT_GT(report->test_accuracy, 0.6);
}

}  // namespace
}  // namespace gelc
