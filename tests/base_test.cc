// Unit tests for base: Status/Result, hashing/interning, Rng.
#include <gtest/gtest.h>

#include <set>

#include "base/hash.h"
#include "base/rng.h"
#include "base/status.h"

namespace gelc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad dim");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kIOError,
        StatusCode::kArithmeticOverflow}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GELC_ASSIGN_OR_RETURN(int h, Half(x));
  GELC_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(HashTest, Fnv1aIsStable) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("\0", 1));
}

TEST(HashTest, CombineOrderSensitive) {
  uint64_t a = HashCombine(HashCombine(0, 1), 2);
  uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(InternerTest, AssignsDenseIdsFirstSeenOrder) {
  Interner in;
  EXPECT_EQ(in.Intern("x"), 0u);
  EXPECT_EQ(in.Intern("y"), 1u);
  EXPECT_EQ(in.Intern("x"), 0u);
  EXPECT_EQ(in.size(), 2u);
}

TEST(InternerTest, WordsDistinguishOrderAndContent) {
  Interner in;
  uint64_t a = in.InternWords({1, 2, 3});
  uint64_t b = in.InternWords({3, 2, 1});
  uint64_t c = in.InternWords({1, 2, 3});
  EXPECT_NE(a, b);
  EXPECT_EQ(a, c);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, BoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t x = rng.NextBounded(13);
    EXPECT_LT(x, 13u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(42);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(5);
  std::vector<size_t> p = rng.Permutation(50);
  std::set<size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, ForkIndependent) {
  Rng a(9);
  Rng b = a.Fork();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

}  // namespace
}  // namespace gelc
