// Differential tests for the streaming layer (DESIGN.md §12): delta-CSR
// maintenance, update-log replay, and incremental color refinement are
// each pinned against their from-scratch counterparts with *exact*
// equality — the same bit-for-bit contract the batch/plan/simd suites
// use. The headline suite replays ≥200 random interleavings of inserts,
// deletes, compactions, and reads, and after every batch checks
//
//   * SpMMDelta over the uncompacted delta view == SpMM over a CSR
//     rebuilt from scratch (byte-equal doubles),
//   * Csr() compaction == a fresh CsrGraph(g) — all three operators'
//     vectors compare equal element-for-element,
//   * IncrementalColorRefiner == a fresh RunColorRefinement: same
//     vertex partition and same round count,
//   * tape SparseMatMul gradients through the mutated graph's views ==
//     gradients through a never-mutated graph with the same edges.
//
// Registered with GELC_NUM_THREADS=1 and =4 ctest variants (and run
// under TSAN by scripts/check.sh), so the determinism contract of the
// parallel signature/SpMM passes is exercised at both ends.
#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "autodiff/tape.h"
#include "base/rng.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/update_log.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"
#include "wl/color_refinement.h"
#include "wl/incremental.h"

namespace gelc {
namespace {

constexpr size_t kFeatureDim = 2;

// Random labelled graph with one-hot features, same recipe as
// fuzz_test.cc so failures cross-reference.
Graph RandomLabelledGraph(Rng* rng, size_t max_n, bool directed) {
  size_t n = 2 + rng->NextBounded(max_n - 1);
  Graph g(n, kFeatureDim, directed);
  for (size_t v = 0; v < n; ++v)
    g.SetOneHotFeature(static_cast<VertexId>(v),
                       rng->NextBounded(kFeatureDim));
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = directed ? 0 : u + 1; v < n; ++v) {
      if (u == v) continue;
      if (rng->NextBernoulli(0.3)) {
        g.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v))
            .IgnoreError();
      }
    }
  }
  return g;
}

// Rebuilds g's current structure into a brand-new Graph that has never
// been mutated after construction — the from-scratch baseline.
Graph RebuildFromScratch(const Graph& g) {
  Graph fresh(g.num_vertices(), g.feature_dim(), g.directed());
  fresh.mutable_features() = g.features();
  for (size_t u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.Neighbors(static_cast<VertexId>(u))) {
      if (!g.directed() && v < u) continue;
      EXPECT_TRUE(fresh.AddEdge(static_cast<VertexId>(u), v).ok());
    }
  }
  return fresh;
}

// Canonical form of a coloring: ids renumbered by first occurrence, so
// two colorings compare equal iff they induce the same partition.
std::vector<uint64_t> NormalizePartition(const std::vector<uint64_t>& c) {
  std::map<uint64_t, uint64_t> remap;
  std::vector<uint64_t> out;
  out.reserve(c.size());
  for (uint64_t id : c) {
    auto it = remap.emplace(id, remap.size()).first;
    out.push_back(it->second);
  }
  return out;
}

void ExpectSameCsr(const CsrMatrix& a, const CsrMatrix& b) {
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.cols, b.cols);
  EXPECT_EQ(a.row_offsets, b.row_offsets);
  EXPECT_EQ(a.col_indices, b.col_indices);
  EXPECT_EQ(a.values, b.values);
}

void ExpectBitEqual(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j)
      ASSERT_EQ(a.At(i, j), b.At(i, j)) << "at (" << i << "," << j << ")";
}

// ---------------------------------------------------------------------------
// Headline differential fuzz: random interleavings of inserts, deletes,
// compactions, and reads; every observable view stays exactly equal to a
// from-scratch rebuild after every batch.

class StreamDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamDifferentialFuzz, AllViewsMatchFromScratchAfterEveryBatch) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 16987);
  const bool directed = (seed % 2) == 1;
  Graph g = RandomLabelledGraph(&rng, 14, directed);

  // Vary the compaction regime across seeds: eager (tiny threshold),
  // auto, and effectively-never, so every interleaving class is covered.
  switch (seed % 3) {
    case 0:
      g.set_csr_compaction_threshold(3);
      break;
    case 1:
      g.set_csr_compaction_threshold(0);  // auto: max(256, nnz/4)
      break;
    default:
      g.set_csr_compaction_threshold(1u << 20);
      break;
  }

  // Warm the CSR base so mutations go through the delta path.
  (void)g.Csr();
  IncrementalColorRefiner refiner(
      &g, IncrementalColorRefiner::Options{/*fallback_dirty_fraction=*/
                                           (seed % 5 == 0) ? 0.05 : 1.0});

  Rng oprng(seed * 40961 + 7);
  UpdateLog log = GenerateUpdateLog(g, /*num_ops=*/40,
                                    /*delete_fraction=*/0.4, &oprng);
  ReplayOptions options;
  options.batch_size = 1 + seed % 9;

  Rng readrng(seed * 28657 + 3);
  const Matrix dense =
      Matrix::RandomUniform(g.num_vertices(), 4, -1.0, 1.0, &readrng);

  size_t batches = 0;
  auto check_batch = [&](const ReplayBatch& batch) {
    ++batches;
    Graph fresh = RebuildFromScratch(g);

    // (1) Delta-merged SpMM against the from-scratch operator, without
    // compacting (the delta views must not fold the pending edits).
    const size_t pending_before = g.csr_pending_delta();
    DeltaCsrView adj = g.AdjacencyDeltaView();
    ExpectBitEqual(SpMMDelta(*adj.base, adj.delta, dense),
                   SpMM(fresh.Csr().adjacency(), dense));
    DeltaCsrView tr = g.TransposeDeltaView();
    ExpectBitEqual(SpMMDelta(*tr.base, tr.delta, dense),
                   SpMM(fresh.Csr().transpose(), dense));
    EXPECT_EQ(g.csr_pending_delta(), pending_before);

    // (2) Incremental refinement against a from-scratch run: same
    // partition, same round count (ids may differ).
    refiner.Update(batch.touched);
    CrColoring cr = RunColorRefinement({&g});
    EXPECT_EQ(NormalizePartition(refiner.colors()),
              NormalizePartition(cr.stable[0]));
    EXPECT_EQ(refiner.rounds(), cr.rounds);

    // (3) Every third batch, force a read-compaction and compare all
    // three operators of the compacted snapshot with a fresh build.
    if (batches % 3 == 0) {
      const CsrGraph& compacted = g.Csr();
      EXPECT_EQ(g.csr_pending_delta(), 0u);
      const CsrGraph& rebuilt = fresh.Csr();
      ExpectSameCsr(compacted.adjacency(), rebuilt.adjacency());
      ExpectSameCsr(compacted.transpose(), rebuilt.transpose());
      ExpectSameCsr(compacted.normalized(), rebuilt.normalized());
      compacted.CheckFreshFor(g);  // snapshot is current by construction
    }
    return Status::OK();
  };
  GELC_CHECK_OK(ReplayUpdateLog(log, &g, options, check_batch));
  EXPECT_GT(batches, 0u);

  // (4) Tape SparseMatMul gradients through the mutated graph's final
  // snapshot are bit-identical to the never-mutated rebuild's.
  Graph fresh = RebuildFromScratch(g);
  const CsrGraph& mutated_csr = g.Csr();
  const CsrGraph& fresh_csr = fresh.Csr();
  Matrix grad_mutated;
  Matrix grad_fresh;
  for (int which = 0; which < 2; ++which) {
    const CsrGraph& csr = which == 0 ? mutated_csr : fresh_csr;
    Rng wseed(seed * 7919 + 11);
    Parameter w(Matrix::RandomUniform(4, 3, -1.0, 1.0, &wseed));
    Tape tape;
    ValueId x = tape.Input(dense);
    ValueId agg = tape.SparseMatMul(&csr.adjacency(), &csr.transpose(), x);
    ValueId h = tape.MatMul(agg, tape.Param(&w));
    ValueId loss = tape.Mse(h, Matrix(g.num_vertices(), 3));
    tape.Backward(loss);
    (which == 0 ? grad_mutated : grad_fresh) = w.grad;
  }
  ExpectBitEqual(grad_mutated, grad_fresh);
}

// 200 interleavings: even seeds undirected, odd directed; three
// compaction regimes; batch sizes 1..9; every fifth seed runs the
// refiner with an aggressive fallback threshold.
INSTANTIATE_TEST_SUITE_P(Seeds, StreamDifferentialFuzz,
                         ::testing::Range<uint64_t>(1, 201));

// ---------------------------------------------------------------------------
// Delta-CSR unit coverage.

TEST(DeltaCsr, ViewIsExactBeforeAnyMutation) {
  Rng rng(5);
  Graph g = RandomLabelledGraph(&rng, 10, /*directed=*/false);
  (void)g.Csr();
  DeltaCsrView view = g.AdjacencyDeltaView();
  ASSERT_NE(view.base, nullptr);
  EXPECT_EQ(view.delta, nullptr);  // base is exact, no pending edits
  EXPECT_EQ(g.csr_pending_delta(), 0u);
}

TEST(DeltaCsr, MutationsAccumulateInDeltaThenCompactAtRead) {
  Graph g(6, 1, /*directed=*/false);
  g.set_csr_compaction_threshold(1u << 20);  // never auto-compact
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  (void)g.Csr();
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  ASSERT_TRUE(g.RemoveEdge(0, 1).ok());
  // Three mutations on an undirected graph = six pending arc edits.
  EXPECT_EQ(g.csr_pending_delta(), 6u);
  DeltaCsrView view = g.AdjacencyDeltaView();
  ASSERT_NE(view.delta, nullptr);
  EXPECT_TRUE(view.delta->RowDirty(1));
  EXPECT_FALSE(view.delta->RowDirty(5));
  // Read-compaction folds everything and the delta drains.
  const CsrGraph& csr = g.Csr();
  EXPECT_EQ(g.csr_pending_delta(), 0u);
  EXPECT_EQ(csr.adjacency().nnz(), 2 * g.num_edges());
  ExpectSameCsr(csr.adjacency(), RebuildFromScratch(g).Csr().adjacency());
}

TEST(DeltaCsr, InsertThenDeleteCancelsToEmptyDelta) {
  Graph g(4, 1);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  (void)g.Csr();
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.RemoveEdge(2, 3).ok());  // cancels the pending insert
  EXPECT_EQ(g.csr_pending_delta(), 0u);
  ASSERT_TRUE(g.RemoveEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());  // cancels the pending remove
  EXPECT_EQ(g.csr_pending_delta(), 0u);
  EXPECT_EQ(g.AdjacencyDeltaView().delta, nullptr);
}

TEST(DeltaCsr, ThresholdTriggersAutoCompaction) {
  obs::ResetMetricsForTest();
  Graph g(64, 1, /*directed=*/true);
  g.set_csr_compaction_threshold(4);
  (void)g.Csr();
  for (VertexId v = 1; v < 8; ++v) ASSERT_TRUE(g.AddEdge(0, v).ok());
  // Threshold 4 means pending can never exceed 4 after a mutation.
  EXPECT_LE(g.csr_pending_delta(), 4u);
  obs::StatsSnapshot snap = obs::Snapshot();
  uint64_t compactions = 0;
  for (const auto& c : snap.counters)
    if (c.name == "graph.delta.compactions") compactions = c.value;
  EXPECT_GE(compactions, 1u);
}

TEST(DeltaCsr, DirectedTransposeViewTracksInDelta) {
  Graph g(5, 1, /*directed=*/true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  (void)g.Csr();
  g.set_csr_compaction_threshold(1u << 20);
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  DeltaCsrView tr = g.TransposeDeltaView();
  ASSERT_NE(tr.delta, nullptr);
  EXPECT_TRUE(tr.delta->RowDirty(3));   // arc 2->3 dirties transpose row 3
  EXPECT_FALSE(tr.delta->RowDirty(2));
  const CsrGraph& csr = g.Csr();
  ExpectSameCsr(csr.transpose(), RebuildFromScratch(g).Csr().transpose());
}

TEST(DeltaCsr, RemoveEdgeStatuses) {
  Graph g(3, 1);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.RemoveEdge(0, 7).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.RemoveEdge(1, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.RemoveEdge(0, 2).code(), StatusCode::kNotFound);
  EXPECT_TRUE(g.RemoveEdge(1, 0).ok());  // undirected: either orientation
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.RemoveEdge(0, 1).code(), StatusCode::kNotFound);
}

TEST(DeltaCsr, MutationEpochCountsEverySuccessfulMutation) {
  Graph g(4, 1);
  EXPECT_EQ(g.mutation_epoch(), 0u);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  EXPECT_EQ(g.mutation_epoch(), 2u);
  EXPECT_FALSE(g.AddEdge(0, 1).ok());  // duplicate: no epoch bump
  EXPECT_FALSE(g.RemoveEdge(0, 3).ok());
  EXPECT_EQ(g.mutation_epoch(), 2u);
  ASSERT_TRUE(g.RemoveEdge(0, 1).ok());
  EXPECT_EQ(g.mutation_epoch(), 3u);
}

// A CSR reference hoisted across a mutation is stale; the freshness
// check names it in debug builds (regression for the trainer paths,
// which CheckFreshFor their hoisted snapshots).
TEST(DeltaCsrDeathTest, StaleHoistedViewIsDetected) {
  Graph g(4, 1);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  const CsrGraph& hoisted = g.Csr();
  hoisted.CheckFreshFor(g);  // fresh: same epoch
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  EXPECT_DEBUG_DEATH(hoisted.CheckFreshFor(g), "epoch");
}

TEST(DeltaCsr, CopiedGraphCarriesPendingEditsIndependently) {
  Graph g(6, 1);
  g.set_csr_compaction_threshold(1u << 20);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  (void)g.Csr();
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  Graph copy = g;  // shares the immutable base, copies the delta
  ASSERT_TRUE(copy.AddEdge(4, 5).ok());
  EXPECT_FALSE(g.HasEdge(4, 5));
  ExpectSameCsr(copy.Csr().adjacency(),
                RebuildFromScratch(copy).Csr().adjacency());
  ExpectSameCsr(g.Csr().adjacency(),
                RebuildFromScratch(g).Csr().adjacency());
}

// ---------------------------------------------------------------------------
// SpMMDelta unit coverage.

TEST(SpMMDeltaTest, NullAndEmptyDeltaMatchPlainSpMM) {
  Rng rng(23);
  Graph g = RandomLabelledGraph(&rng, 12, false);
  const CsrMatrix& a = g.Csr().adjacency();
  Matrix b = Matrix::RandomUniform(g.num_vertices(), 5, -1.0, 1.0, &rng);
  ExpectBitEqual(SpMMDelta(a, nullptr, b), SpMM(a, b));
  CsrDeltaRows empty;
  empty.Resize(a.rows);
  ExpectBitEqual(SpMMDelta(a, &empty, b), SpMM(a, b));
}

TEST(SpMMDeltaTest, MatchesMergedMatrixBitForBit) {
  Rng rng(29);
  Graph g = RandomLabelledGraph(&rng, 16, true);
  g.set_csr_compaction_threshold(1u << 20);
  (void)g.Csr();
  UpdateLog log = GenerateUpdateLog(g, 25, 0.3, &rng);
  GELC_CHECK_OK(ReplayUpdateLog(log, &g));
  DeltaCsrView view = g.AdjacencyDeltaView();
  ASSERT_NE(view.delta, nullptr);
  CsrMatrix merged = MergeDeltaRows(*view.base, *view.delta);
  Matrix b = Matrix::RandomUniform(g.num_vertices(), 7, -1.0, 1.0, &rng);
  ExpectBitEqual(SpMMDelta(*view.base, view.delta, b), SpMM(merged, b));
}

TEST(SpMMDeltaTest, MergeDeltaRowAppliesAddsAndRemoves) {
  Graph g(5, 1);
  g.set_csr_compaction_threshold(1u << 20);
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 4).ok());
  (void)g.Csr();
  ASSERT_TRUE(g.RemoveEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  DeltaCsrView view = g.AdjacencyDeltaView();
  std::vector<uint32_t> row;
  MergeDeltaRow(*view.base, *view.delta, 1, &row);
  EXPECT_EQ(row, (std::vector<uint32_t>{3, 4}));
}

// ---------------------------------------------------------------------------
// Update-log unit coverage (the fuzz round-trip lives in fuzz_test.cc).

TEST(UpdateLogTest, WriterBytesEqualSerializeAndReaderRoundTrips) {
  UpdateLog log;
  log.num_vertices = 9;
  log.directed = true;
  log.ops = {{EdgeOpKind::kInsert, 0, 5},
             {EdgeOpKind::kInsert, 5, 3},
             {EdgeOpKind::kDelete, 0, 5}};
  std::ostringstream out;
  {
    UpdateLogWriter writer(&out, log.num_vertices, log.directed);
    for (const EdgeOp& op : log.ops) writer.Append(op);
    EXPECT_EQ(writer.ops_written(), 3u);
  }
  EXPECT_EQ(out.str(), SerializeUpdateLog(log));
  Result<UpdateLog> parsed = ParseUpdateLog(out.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_vertices, log.num_vertices);
  EXPECT_EQ(parsed->directed, log.directed);
  EXPECT_EQ(parsed->ops, log.ops);
}

TEST(UpdateLogTest, ParseRejectsMalformedLogs) {
  EXPECT_FALSE(ParseUpdateLog("").ok());
  EXPECT_FALSE(ParseUpdateLog("wrongmagic 4 0\n").ok());
  EXPECT_FALSE(ParseUpdateLog("uplog 4 0\nx 0 1\n").ok());   // bad op kind
  EXPECT_FALSE(ParseUpdateLog("uplog 4 0\ni 0 9\n").ok());   // out of range
  EXPECT_FALSE(ParseUpdateLog("uplog 4 0\ni 2 2\n").ok());   // self-loop
  EXPECT_TRUE(ParseUpdateLog("uplog 4 0\n").ok());           // empty log ok
}

TEST(UpdateLogTest, GeneratedOpsAlwaysApplyCleanly) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (bool directed : {false, true}) {
      Rng rng(seed * 101);
      Graph g = RandomLabelledGraph(&rng, 12, directed);
      UpdateLog log = GenerateUpdateLog(g, 60, 0.5, &rng);
      EXPECT_EQ(log.ops.size(), 60u);
      GELC_CHECK_OK(ReplayUpdateLog(log, &g));  // every op must succeed
    }
  }
}

TEST(UpdateLogTest, ReplayBatchesAreSizedAndTouchedIsSortedUnique) {
  Rng rng(77);
  Graph g = RandomLabelledGraph(&rng, 10, false);
  UpdateLog log = GenerateUpdateLog(g, 23, 0.3, &rng);
  ReplayOptions options;
  options.batch_size = 5;
  size_t total_ops = 0;
  size_t batches = 0;
  GELC_CHECK_OK(ReplayUpdateLog(log, &g, options, [&](const ReplayBatch& b) {
    EXPECT_EQ(b.index, batches);
    ++batches;
    total_ops += b.ops.size();
    EXPECT_LE(b.ops.size(), 5u);
    EXPECT_TRUE(std::is_sorted(b.touched.begin(), b.touched.end()));
    EXPECT_EQ(std::adjacent_find(b.touched.begin(), b.touched.end()),
              b.touched.end());
    for (const EdgeOp& op : b.ops) {
      EXPECT_TRUE(std::binary_search(b.touched.begin(), b.touched.end(),
                                     op.u));
      EXPECT_TRUE(std::binary_search(b.touched.begin(), b.touched.end(),
                                     op.v));
    }
    return Status::OK();
  }));
  EXPECT_EQ(total_ops, log.ops.size());
  EXPECT_EQ(batches, (log.ops.size() + 4) / 5);
}

TEST(UpdateLogTest, ReplayRejectsMismatchedGraph) {
  UpdateLog log;
  log.num_vertices = 4;
  log.directed = false;
  Graph wrong_n(5, 1);
  EXPECT_EQ(ReplayUpdateLog(log, &wrong_n).code(),
            StatusCode::kInvalidArgument);
  Graph wrong_dir(4, 1, /*directed=*/true);
  EXPECT_EQ(ReplayUpdateLog(log, &wrong_dir).code(),
            StatusCode::kInvalidArgument);
}

TEST(UpdateLogTest, CallbackErrorAbortsReplay) {
  Rng rng(31);
  Graph g = RandomLabelledGraph(&rng, 8, false);
  UpdateLog log = GenerateUpdateLog(g, 20, 0.0, &rng);
  ReplayOptions options;
  options.batch_size = 4;
  size_t seen = 0;
  Status s = ReplayUpdateLog(log, &g, options, [&](const ReplayBatch&) {
    return ++seen == 2 ? Status::Internal("stop here") : Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(seen, 2u);
}

// ---------------------------------------------------------------------------
// Incremental refiner unit coverage (the partition contract itself is
// pinned by the differential fuzz above).

TEST(IncrementalRefinerTest, MatchesFromScratchOnConstruction) {
  Rng rng(41);
  Graph g = RandomLabelledGraph(&rng, 20, false);
  IncrementalColorRefiner refiner(&g);
  CrColoring cr = RunColorRefinement({&g});
  EXPECT_EQ(NormalizePartition(refiner.colors()),
            NormalizePartition(cr.stable[0]));
  EXPECT_EQ(refiner.rounds(), cr.rounds);
  EXPECT_EQ(refiner.last_recolored(), 0u);
}

TEST(IncrementalRefinerTest, EmptyBatchIsANoOp) {
  Rng rng(43);
  Graph g = RandomLabelledGraph(&rng, 10, false);
  IncrementalColorRefiner refiner(&g);
  size_t rounds = refiner.rounds();
  refiner.Update({});
  EXPECT_EQ(refiner.last_recolored(), 0u);
  EXPECT_FALSE(refiner.last_was_fallback());
  EXPECT_EQ(refiner.rounds(), rounds);
}

TEST(IncrementalRefinerTest, TinyFallbackFractionForcesRefresh) {
  Rng rng(47);
  Graph g = RandomLabelledGraph(&rng, 16, false);
  IncrementalColorRefiner refiner(
      &g, IncrementalColorRefiner::Options{/*fallback_dirty_fraction=*/0.0});
  VertexId u = 0;
  VertexId v = 1;
  Status s = g.HasEdge(u, v) ? g.RemoveEdge(u, v) : g.AddEdge(u, v);
  GELC_CHECK_OK(s);
  refiner.Update({u, v});
  EXPECT_TRUE(refiner.last_was_fallback());
  CrColoring cr = RunColorRefinement({&g});
  EXPECT_EQ(NormalizePartition(refiner.colors()),
            NormalizePartition(cr.stable[0]));
}

TEST(IncrementalRefinerTest, DirectedUpdateTracksInNeighborFrontier) {
  // A directed path 0->1->2->3->4: inserting 4->0 closes the cycle and
  // changes colors far from the endpoints only through the frontier.
  Graph g(5, 1, /*directed=*/true);
  for (VertexId v = 0; v + 1 < 5; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1).ok());
  for (VertexId v = 0; v < 5; ++v) g.SetOneHotFeature(v, 0);
  IncrementalColorRefiner refiner(&g);
  ASSERT_TRUE(g.AddEdge(4, 0).ok());
  refiner.Update({4, 0});
  CrColoring cr = RunColorRefinement({&g});
  EXPECT_EQ(NormalizePartition(refiner.colors()),
            NormalizePartition(cr.stable[0]));
  EXPECT_EQ(refiner.rounds(), cr.rounds);
  // The cycle is vertex-transitive with uniform labels: one class.
  EXPECT_EQ(refiner.partition_size(), 1u);
}

TEST(IncrementalRefinerTest, PartitionSurvivesLongInterleavedSequence) {
  Rng rng(53);
  Graph g = RandomLabelledGraph(&rng, 18, true);
  IncrementalColorRefiner refiner(&g);
  UpdateLog log = GenerateUpdateLog(g, 80, 0.45, &rng);
  ReplayOptions options;
  options.batch_size = 3;
  GELC_CHECK_OK(ReplayUpdateLog(log, &g, options, [&](const ReplayBatch& b) {
    refiner.Update(b.touched);
    return Status::OK();
  }));
  CrColoring cr = RunColorRefinement({&g});
  EXPECT_EQ(NormalizePartition(refiner.colors()),
            NormalizePartition(cr.stable[0]));
  EXPECT_EQ(refiner.rounds(), cr.rounds);
  std::vector<uint64_t> distinct = cr.stable[0];
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  EXPECT_EQ(refiner.partition_size(), distinct.size());
}

}  // namespace
}  // namespace gelc
