// Tests for the GEL text syntax: parsing, validation errors, round trips
// through Expr::ToString, and semantic equality of round-tripped
// expressions (a property suite over randomly generated expressions).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/eval.h"
#include "core/parser.h"
#include "graph/generators.h"

namespace gelc {
namespace {

TEST(ParserTest, Atoms) {
  ExprPtr lab = *ParseExpr("lab2(x1)");
  EXPECT_EQ(lab->kind(), Expr::Kind::kLabel);
  EXPECT_EQ(lab->label_index(), 2u);
  EXPECT_EQ(lab->free_vars(), VarBit(1));

  ExprPtr edge = *ParseExpr("E(x0, x1)");
  EXPECT_EQ(edge->kind(), Expr::Kind::kEdge);

  ExprPtr eq = *ParseExpr("1[x0=x1]");
  EXPECT_EQ(eq->kind(), Expr::Kind::kCompare);
  EXPECT_EQ(eq->cmp_op(), CmpOp::kEq);
  ExprPtr ne = *ParseExpr("1[x0!=x2]");
  EXPECT_EQ(ne->cmp_op(), CmpOp::kNeq);
}

TEST(ParserTest, Constants) {
  ExprPtr c = *ParseExpr("[1, -2.5, 3e2]");
  EXPECT_EQ(c->dim(), 3u);
  EXPECT_EQ(c->constant()[1], -2.5);
  EXPECT_EQ(c->constant()[2], 300.0);
}

TEST(ParserTest, FunctionApplications) {
  ExprPtr e = *ParseExpr("relu(add(lab0(x0), [1]))");
  EXPECT_EQ(e->kind(), Expr::Kind::kApply);
  EXPECT_EQ(e->dim(), 1u);
  ExprPtr cat = *ParseExpr("concat(lab0(x0), lab1(x0), [2, 3])");
  EXPECT_EQ(cat->dim(), 4u);
  ExprPtr sc = *ParseExpr("scale[2.5](lab0(x0))");
  EXPECT_EQ(sc->fn()->name, "scale[2.5]");
  ExprPtr pr = *ParseExpr("project[1,2]([5, 6, 7])");
  EXPECT_EQ(pr->dim(), 2u);
}

TEST(ParserTest, Aggregates) {
  ExprPtr deg = *ParseExpr("agg[sum]_{x1}([1] | E(x0,x1))");
  EXPECT_EQ(deg->kind(), Expr::Kind::kAggregate);
  EXPECT_EQ(deg->bound_vars(), VarBit(1));
  EXPECT_NE(deg->guard(), nullptr);

  ExprPtr global = *ParseExpr("agg[mean]_{x0}(lab0(x0))");
  EXPECT_EQ(global->free_vars(), 0u);
  EXPECT_EQ(global->guard(), nullptr);

  ExprPtr multi = *ParseExpr(
      "agg[count]_{x1,x2}([1] | mul(E(x0,x1), E(x1,x2)))");
  EXPECT_EQ(multi->bound_vars(), VarBit(1) | VarBit(2));
}

TEST(ParserTest, SemanticsMatchHandBuiltExpressions) {
  Graph star = StarGraph(4);
  Evaluator eval(star);
  Matrix deg = *eval.EvalVertex(*ParseExpr("agg[sum]_{x1}([1] | E(x0,x1))"));
  EXPECT_EQ(deg.At(0, 0), 4.0);
  EXPECT_EQ(deg.At(1, 0), 1.0);

  std::vector<double> n =
      *eval.EvalClosed(*ParseExpr("agg[sum]_{x0}([1])"));
  EXPECT_EQ(n[0], 5.0);
}

TEST(ParserTest, WhitespaceInsensitive) {
  ExprPtr a = *ParseExpr("agg[sum]_{x1}([1]|E(x0,x1))");
  ExprPtr b = *ParseExpr("  agg [ sum ] _ { x1 } ( [ 1 ] | E( x0 , x1 ) ) ");
  EXPECT_EQ(a->ToString(), b->ToString());
}

struct ParserErrorCase {
  const char* text;
  const char* why;
};

class ParserErrorTest : public ::testing::TestWithParam<ParserErrorCase> {};

TEST_P(ParserErrorTest, Rejected) {
  Result<ExprPtr> r = ParseExpr(GetParam().text);
  EXPECT_FALSE(r.ok()) << GetParam().why << " — parsed: "
                       << (r.ok() ? (*r)->ToString() : "");
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        ParserErrorCase{"", "empty input"},
        ParserErrorCase{"E(x0)", "edge arity"},
        ParserErrorCase{"E(x0, x0)", "edge needs distinct vars"},
        ParserErrorCase{"lab(x0)", "label without index"},
        ParserErrorCase{"lab0(y0)", "not a variable"},
        ParserErrorCase{"lab0(x99)", "variable out of range"},
        ParserErrorCase{"add(lab0(x0))", "add arity"},
        ParserErrorCase{"add(lab0(x0), [1, 2])", "add dim mismatch"},
        ParserErrorCase{"frobnicate(lab0(x0))", "unknown function"},
        ParserErrorCase{"agg[median]_{x1}([1])", "unknown aggregator"},
        ParserErrorCase{"agg[sum]_{}([1])", "empty binder"},
        ParserErrorCase{"agg[sum]_{x1}([1]", "unclosed paren"},
        ParserErrorCase{"[1, 2] extra", "trailing input"},
        ParserErrorCase{"scale(lab0(x0))", "scale without parameter"},
        ParserErrorCase{"1[x0<x1]", "bad comparison operator"},
        ParserErrorCase{"[]", "empty constant"}));

// Random-expression round-trip property: generate, print, reparse,
// compare semantics on a labelled graph.
class RoundTripTest : public ::testing::TestWithParam<uint64_t> {};

ExprPtr RandomParseableExpr(Rng* rng, size_t depth, size_t dim) {
  if (depth == 0) {
    switch (rng->NextBounded(3)) {
      case 0:
        if (dim == 1) return *Expr::Label(rng->NextBounded(2), 0);
        [[fallthrough]];
      case 1: {
        std::vector<double> v(dim);
        for (double& x : v) x = rng->NextUniform(-2, 2);
        return *Expr::Constant(std::move(v));
      }
      default: {
        if (dim == 1) {
          // deg-like aggregate.
          return *Expr::Aggregate(theta::Sum(1), VarBit(1),
                                  *Expr::Constant({1.0}),
                                  *Expr::Edge(0, 1));
        }
        std::vector<double> v(dim, 1.0);
        return *Expr::Constant(std::move(v));
      }
    }
  }
  switch (rng->NextBounded(4)) {
    case 0:
      return *Expr::Apply(
          omega::ActivationFn(Activation::kReLU, dim),
          {RandomParseableExpr(rng, depth - 1, dim)});
    case 1:
      return *Expr::Apply(omega::Add(dim),
                          {RandomParseableExpr(rng, depth - 1, dim),
                           RandomParseableExpr(rng, depth - 1, dim)});
    case 2:
      return *Expr::Apply(omega::Scale(rng->NextUniform(-2, 2), dim),
                          {RandomParseableExpr(rng, depth - 1, dim)});
    default:
      return *Expr::Apply(omega::Multiply(dim),
                          {RandomParseableExpr(rng, depth - 1, dim),
                           RandomParseableExpr(rng, depth - 1, dim)});
  }
}

TEST_P(RoundTripTest, PrintParseSemanticEquality) {
  Rng rng(GetParam() * 40503);
  ExprPtr original = RandomParseableExpr(&rng, 1 + rng.NextBounded(3), 1);
  std::string text = original->ToString();
  Result<ExprPtr> reparsed = ParseExpr(text);
  ASSERT_TRUE(reparsed.ok()) << text << " -> " << reparsed.status();
  EXPECT_EQ((*reparsed)->ToString(), text);

  Graph g(6, 2);
  Rng grng(GetParam());
  for (size_t u = 0; u < 6; ++u) {
    for (size_t v = u + 1; v < 6; ++v) {
      if (grng.NextBernoulli(0.4)) {
        ASSERT_TRUE(g.AddEdge(static_cast<VertexId>(u),
                              static_cast<VertexId>(v))
                        .ok());
      }
    }
    g.SetOneHotFeature(static_cast<VertexId>(u), grng.NextBounded(2));
  }
  Evaluator eval(g);
  EvalTable a = *eval.Eval(original);
  EvalTable b = *eval.Eval(*reparsed);
  ASSERT_EQ(a.data.size(), b.data.size());
  for (size_t i = 0; i < a.data.size(); ++i)
    EXPECT_NEAR(a.data[i], b.data[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace gelc
