// Tests for the dense solver and ridge regression.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "tensor/linalg.h"

namespace gelc {
namespace {

TEST(SolveTest, KnownSystem) {
  Matrix a = {{2, 1}, {1, 3}};
  Matrix b = {{5}, {10}};
  Matrix x = *SolveLinearSystem(a, b);
  EXPECT_NEAR(x.At(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x.At(1, 0), 3.0, 1e-12);
}

TEST(SolveTest, IdentityGivesRhs) {
  Matrix b = {{1, 2}, {3, 4}, {5, 6}};
  Matrix x = *SolveLinearSystem(Matrix::Identity(3), b);
  EXPECT_TRUE(x.AllClose(b, 1e-12));
}

TEST(SolveTest, RandomSystemsRoundTrip) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    size_t n = 2 + rng.NextBounded(8);
    Matrix a = Matrix::RandomGaussian(n, n, 1.0, &rng);
    for (size_t i = 0; i < n; ++i) a.At(i, i) += 3.0;  // well-conditioned
    Matrix x_true = Matrix::RandomGaussian(n, 2, 1.0, &rng);
    Matrix b = a.MatMul(x_true);
    Matrix x = *SolveLinearSystem(a, b);
    EXPECT_TRUE(x.AllClose(x_true, 1e-8));
  }
}

TEST(SolveTest, PivotingHandlesZeroDiagonal) {
  Matrix a = {{0, 1}, {1, 0}};
  Matrix b = {{2}, {3}};
  Matrix x = *SolveLinearSystem(a, b);
  EXPECT_NEAR(x.At(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(x.At(1, 0), 2.0, 1e-12);
}

TEST(SolveTest, SingularRejected) {
  Matrix a = {{1, 2}, {2, 4}};
  Matrix b = {{1}, {2}};
  EXPECT_FALSE(SolveLinearSystem(a, b).ok());
}

TEST(SolveTest, ShapeValidation) {
  EXPECT_FALSE(SolveLinearSystem(Matrix(2, 3), Matrix(2, 1)).ok());
  EXPECT_FALSE(SolveLinearSystem(Matrix::Identity(2), Matrix(3, 1)).ok());
}

TEST(RidgeTest, RecoversLinearModel) {
  Rng rng(23);
  Matrix x = Matrix::RandomGaussian(100, 4, 1.0, &rng);
  Matrix w_true = {{1.0}, {-2.0}, {0.5}, {3.0}};
  Matrix y = x.MatMul(w_true);
  Matrix w = *RidgeRegression(x, y, 1e-8);
  EXPECT_TRUE(w.AllClose(w_true, 1e-4));
}

TEST(RidgeTest, RegularizationShrinks) {
  Rng rng(29);
  Matrix x = Matrix::RandomGaussian(30, 3, 1.0, &rng);
  Matrix y = Matrix::RandomGaussian(30, 1, 1.0, &rng);
  Matrix w_small = *RidgeRegression(x, y, 1e-6);
  Matrix w_big = *RidgeRegression(x, y, 1e4);
  EXPECT_LT(w_big.FrobeniusNorm(), w_small.FrobeniusNorm());
}

TEST(RidgeTest, Validation) {
  EXPECT_FALSE(RidgeRegression(Matrix(3, 2), Matrix(4, 1), 1.0).ok());
  EXPECT_FALSE(RidgeRegression(Matrix(3, 2), Matrix(3, 1), 0.0).ok());
}

}  // namespace
}  // namespace gelc
