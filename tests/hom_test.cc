// Tests for tree enumeration and homomorphism counting, including the
// Dell-Grohe-Rattan property (slide 27): CR-equivalence coincides with
// equal tree-hom profiles.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "graph/generators.h"
#include "hom/hom_count.h"
#include "hom/trees.h"
#include "wl/color_refinement.h"

namespace gelc {
namespace {

TEST(TreesTest, CanonicalFormInvariantUnderRelabeling) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Graph t = RandomTree(9, &rng);
    Graph s = t.Permuted(rng.Permutation(9)).value();
    EXPECT_EQ(*TreeCanonicalForm(t), *TreeCanonicalForm(s));
  }
}

TEST(TreesTest, CanonicalFormSeparatesPathFromStar) {
  EXPECT_NE(*TreeCanonicalForm(PathGraph(4)),
            *TreeCanonicalForm(StarGraph(3)));
}

TEST(TreesTest, NonTreesRejected) {
  EXPECT_FALSE(TreeCanonicalForm(CycleGraph(4)).ok());
  EXPECT_FALSE(TreeCanonicalForm(Graph::Unlabeled(2)).ok());  // disconnected
  EXPECT_FALSE(TreeCanonicalForm(Graph::Unlabeled(0)).ok());
}

TEST(TreesTest, PruferRoundTripsAreTrees) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 3 + rng.NextBounded(7);
    std::vector<size_t> seq(n - 2);
    for (size_t& x : seq) x = rng.NextBounded(n);
    Result<Graph> t = TreeFromPrufer(seq, n);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t->num_edges(), n - 1);
    EXPECT_EQ(t->ConnectedComponents().size(), 1u);
  }
}

TEST(TreesTest, PruferValidation) {
  EXPECT_FALSE(TreeFromPrufer({}, 1).ok());
  EXPECT_FALSE(TreeFromPrufer({0}, 2).ok());   // wrong length
  EXPECT_FALSE(TreeFromPrufer({5}, 3).ok());   // out of range
}

// Known counts of non-isomorphic trees on n vertices: 1,1,1,2,3,6,11,23,47.
struct TreeCountCase {
  size_t max_n;
  size_t cumulative;
};

class TreeCountTest : public ::testing::TestWithParam<TreeCountCase> {};

TEST_P(TreeCountTest, MatchesOeisA000055Cumulative) {
  Result<std::vector<Graph>> trees = AllTreesUpTo(GetParam().max_n);
  ASSERT_TRUE(trees.ok());
  EXPECT_EQ(trees->size(), GetParam().cumulative);
}

INSTANTIATE_TEST_SUITE_P(
    Counts, TreeCountTest,
    ::testing::Values(TreeCountCase{1, 1}, TreeCountCase{2, 2},
                      TreeCountCase{3, 3}, TreeCountCase{4, 5},
                      TreeCountCase{5, 8}, TreeCountCase{6, 14},
                      TreeCountCase{7, 25}, TreeCountCase{8, 48}));

TEST(TreesTest, EnumerationBoundsChecked) {
  EXPECT_FALSE(AllTreesUpTo(0).ok());
  EXPECT_FALSE(AllTreesUpTo(10).ok());
}

TEST(HomTest, SingleVertexCountsVertices) {
  Graph k1 = Graph::Unlabeled(1);
  EXPECT_EQ(*CountTreeHomomorphisms(k1, CycleGraph(5)), 5);
}

TEST(HomTest, EdgeCountsArcs) {
  // hom(K2, G) = number of arcs = 2m for undirected G.
  Graph k2 = PathGraph(2);
  EXPECT_EQ(*CountTreeHomomorphisms(k2, CycleGraph(5)), 10);
  EXPECT_EQ(*CountTreeHomomorphisms(k2, CompleteGraph(4)), 12);
}

TEST(HomTest, PathIntoCompleteGraph) {
  // hom(P3, K_n) = n(n-1)^2 walks of length 2.
  Graph p3 = PathGraph(3);
  EXPECT_EQ(*CountTreeHomomorphisms(p3, CompleteGraph(4)), 4 * 3 * 3);
  EXPECT_EQ(*CountTreeHomomorphisms(p3, CompleteGraph(5)), 5 * 4 * 4);
}

TEST(HomTest, PathHomsAreWalkCounts) {
  // hom(P_{k+1}, G) = number of walks of length k = sum of A^k entries.
  Rng rng(3);
  Graph g = RandomGnp(8, 0.4, &rng);
  Matrix a = g.AdjacencyMatrix();
  Matrix power = Matrix::Identity(8);
  for (size_t k = 1; k <= 4; ++k) {
    power = power.MatMul(a);
    Graph path = PathGraph(k + 1);
    EXPECT_EQ(*CountTreeHomomorphisms(path, g),
              static_cast<int64_t>(power.Sum()))
        << "walks of length " << k;
  }
}

TEST(HomTest, StarIntoStar) {
  // hom(S3, S3): center->center: 3^3 = 27; center->leaf: each leaf of the
  // pattern must map to the hub: 1 each, 3 choices of center image... full
  // count = 27 + 3*1 = 30.
  Graph s3 = StarGraph(3);
  EXPECT_EQ(*CountTreeHomomorphisms(s3, s3), 30);
}

TEST(HomTest, RootedCountsSumToTotal) {
  Rng rng(4);
  Graph g = RandomGnp(9, 0.4, &rng);
  Graph t = RandomTree(5, &rng);
  int64_t total = *CountTreeHomomorphisms(t, g);
  std::vector<int64_t> rooted = *CountRootedTreeHomomorphisms(t, 0, g);
  int64_t sum = 0;
  for (int64_t x : rooted) sum += x;
  EXPECT_EQ(sum, total);
}

TEST(HomTest, RootChoiceDoesNotChangeTotal) {
  Rng rng(5);
  Graph g = RandomGnp(8, 0.5, &rng);
  Graph t = RandomTree(6, &rng);
  int64_t reference = 0;
  for (VertexId r = 0; r < t.num_vertices(); ++r) {
    std::vector<int64_t> rooted = *CountRootedTreeHomomorphisms(t, r, g);
    int64_t sum = 0;
    for (int64_t x : rooted) sum += x;
    if (r == 0) {
      reference = sum;
    } else {
      EXPECT_EQ(sum, reference) << "root " << r;
    }
  }
}

TEST(HomTest, RejectsNonTreePatterns) {
  EXPECT_FALSE(CountTreeHomomorphisms(CycleGraph(3), PathGraph(4)).ok());
  EXPECT_FALSE(
      CountRootedTreeHomomorphisms(PathGraph(3), 7, PathGraph(4)).ok());
}

TEST(HomTest, IsolatedTargetGivesZeroForEdges) {
  Graph isolated = Graph::Unlabeled(4);
  EXPECT_EQ(*CountTreeHomomorphisms(PathGraph(2), isolated), 0);
  EXPECT_EQ(*CountTreeHomomorphisms(Graph::Unlabeled(1), isolated), 4);
}

TEST(HomTest, ProfileInvariantUnderIsomorphism) {
  Rng rng(6);
  std::vector<Graph> trees = *AllTreesUpTo(6);
  Graph g = RandomGnp(9, 0.4, &rng);
  Graph h = g.Permuted(rng.Permutation(9)).value();
  EXPECT_EQ(*TreeHomProfile(g, trees), *TreeHomProfile(h, trees));
}

// The Dell-Grohe-Rattan theorem, sampled: CR-equivalent graphs have equal
// tree-hom profiles, CR-separated graphs differ on some small tree.
TEST(HomTest, DgrOnCrHardPair) {
  auto [c6, two_c3] = Cr_HardPair();
  std::vector<Graph> trees = *AllTreesUpTo(7);
  // CR-equivalent -> equal profiles over ALL trees (here: all up to 7).
  EXPECT_EQ(*TreeHomProfile(c6, trees), *TreeHomProfile(two_c3, trees));
}

class DgrRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DgrRandomTest, ProfilesAgreeWithCrVerdict) {
  Rng rng(GetParam() * 7919);
  Graph a = RandomGnp(7, 0.4, &rng);
  Graph b = RandomGnp(7, 0.4, &rng);
  std::vector<Graph> trees = *AllTreesUpTo(6);
  bool cr_equiv = CrEquivalentGraphs(a, b);
  bool profiles_equal = *TreeHomProfile(a, trees) == *TreeHomProfile(b, trees);
  if (cr_equiv) {
    // Forward direction of DGR holds for every tree, in particular these.
    EXPECT_TRUE(profiles_equal);
  }
  if (profiles_equal) {
    // Small-graph contrapositive: on 7-vertex graphs, trees up to 6
    // vertices suffice to witness CR differences.
    EXPECT_TRUE(cr_equiv);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DgrRandomTest,
                         ::testing::Range<uint64_t>(1, 16));

TEST(HomTest, OverflowSurfacesAsError) {
  // A star pattern into a dense graph overflows int64 quickly: star with 8
  // leaves into K_30 gives 30 * 29^8 ≈ 1.5e13 per root — fine; push
  // further with a deep star into a large complete graph via repeated
  // squaring of degrees. Use a path of 8 into K_60: 60 * 59^7 ≈ 1.1e14 ok;
  // to overflow use star_8 into K_200: 200 * 199^8 ≈ 5e18 > int64 max.
  Graph star8 = StarGraph(8);
  Graph k200 = CompleteGraph(200);
  Result<int64_t> r = CountTreeHomomorphisms(star8, k200);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kArithmeticOverflow);
}

}  // namespace
}  // namespace gelc
