// Tests pinning down the WL-variant conventions (DESIGN.md) and the
// cycle-homomorphism counts: oblivious vs folklore k-WL relationships and
// trace-based hom(C_k, ·).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "graph/generators.h"
#include "hom/hom_count.h"
#include "wl/color_refinement.h"
#include "wl/kwl.h"

namespace gelc {
namespace {

TEST(ObliviousKwlTest, ValidatesK) {
  Graph g = PathGraph(3);
  EXPECT_FALSE(RunObliviousKwl({&g}, 0).ok());
  EXPECT_FALSE(RunObliviousKwl({&g}, 5).ok());
}

TEST(ObliviousKwlTest, ObliviousTwoEquivalentToColorRefinement) {
  // The folklore convention shift: oblivious 2-WL ≡ CR ≡ folklore 1-WL.
  struct PairCase {
    Graph a, b;
  };
  std::vector<PairCase> cases;
  {
    auto [c6, two_c3] = Cr_HardPair();
    cases.push_back({std::move(c6), std::move(two_c3)});
  }
  cases.push_back({PathGraph(4), StarGraph(3)});
  cases.push_back({CycleGraph(5), CycleGraph(6)});
  {
    auto [shr, rook] = Srg16Pair();
    cases.push_back({std::move(shr), std::move(rook)});
  }
  for (const PairCase& c : cases) {
    bool cr = CrEquivalentGraphs(c.a, c.b);
    Result<bool> obl2 = ObliviousKwlEquivalentGraphs(c.a, c.b, 2);
    ASSERT_TRUE(obl2.ok());
    EXPECT_EQ(cr, *obl2);
  }
}

TEST(ObliviousKwlTest, ObliviousThreeMatchesFolkloreTwo) {
  // Oblivious (k+1)-WL ≡ folklore k-WL, sampled at k = 2.
  auto [c6, two_c3] = Cr_HardPair();
  EXPECT_EQ(*KwlEquivalentGraphs(c6, two_c3, 2),
            *ObliviousKwlEquivalentGraphs(c6, two_c3, 3));
  auto [shr, rook] = Srg16Pair();
  EXPECT_EQ(*KwlEquivalentGraphs(shr, rook, 2),
            *ObliviousKwlEquivalentGraphs(shr, rook, 3));
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    Graph a = RandomGnp(7, 0.4, &rng);
    Graph b = RandomGnp(7, 0.4, &rng);
    EXPECT_EQ(*KwlEquivalentGraphs(a, b, 2),
              *ObliviousKwlEquivalentGraphs(a, b, 3));
  }
}

TEST(ObliviousKwlTest, ObliviousWeakerThanFolkloreAtSameK) {
  // At the same k, oblivious k-WL is never stronger than folklore k-WL.
  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    Graph a = RandomGnp(6, 0.4, &rng);
    Graph b = RandomGnp(6, 0.4, &rng);
    for (size_t k : {2u, 3u}) {
      bool folklore_equiv = *KwlEquivalentGraphs(a, b, k);
      bool oblivious_equiv = *ObliviousKwlEquivalentGraphs(a, b, k);
      if (folklore_equiv) {
        EXPECT_TRUE(oblivious_equiv) << "k=" << k;
      }
    }
  }
}

TEST(ObliviousKwlTest, InvariantUnderPermutation) {
  Rng rng(7);
  Graph g = RandomGnp(6, 0.4, &rng);
  Graph h = g.Permuted(rng.Permutation(6)).value();
  for (size_t k : {2u, 3u}) {
    EXPECT_TRUE(*ObliviousKwlEquivalentGraphs(g, h, k)) << k;
  }
}

TEST(CycleHomTest, KnownValues) {
  // hom(C_3, K4) = closed 3-walks = 4 * 3 * 2.
  EXPECT_EQ(*CountCycleHomomorphisms(3, CompleteGraph(4)), 24);
  // Triangle-free graphs have no closed 3-walks.
  EXPECT_EQ(*CountCycleHomomorphisms(3, CycleGraph(6)), 0);
  EXPECT_EQ(*CountCycleHomomorphisms(3, PetersenGraph()), 0);
  // Two triangles: 2 triangles x 3 starts x 2 directions.
  Graph two_c3 = *Graph::DisjointUnion(CycleGraph(3), CycleGraph(3));
  EXPECT_EQ(*CountCycleHomomorphisms(3, two_c3), 12);
  EXPECT_FALSE(CountCycleHomomorphisms(2, CompleteGraph(3)).ok());
}

TEST(CycleHomTest, MatchesAdjacencyPowerTrace) {
  Rng rng(11);
  Graph g = RandomGnp(9, 0.4, &rng);
  Matrix a = g.AdjacencyMatrix();
  Matrix power = Matrix::Identity(9);
  for (size_t k = 1; k <= 7; ++k) {
    power = power.MatMul(a);
    if (k < 3) continue;
    double trace = 0;
    for (size_t i = 0; i < 9; ++i) trace += power.At(i, i);
    EXPECT_EQ(*CountCycleHomomorphisms(k, g), static_cast<int64_t>(trace));
  }
}

TEST(CycleHomTest, SeparatesCrHardPairAsTwoWlPredicts) {
  // C6 vs 2xC3: 2-WL separates; the cycle profile witnesses it while the
  // tree profile (CR level) cannot.
  auto [c6, two_c3] = Cr_HardPair();
  std::vector<int64_t> pa = *CycleHomProfile(c6, 8);
  std::vector<int64_t> pb = *CycleHomProfile(two_c3, 8);
  EXPECT_NE(pa, pb);
  EXPECT_EQ(pa[0], 0);   // no triangles in C6
  EXPECT_EQ(pb[0], 12);  // 12 triangle homs in 2xC3
}

TEST(CycleHomTest, CospectralSrgPairHasEqualProfiles) {
  // Strongly regular graphs with equal parameters are cospectral, hence
  // share all closed-walk counts — consistent with 2-WL blindness.
  auto [shrikhande, rook] = Srg16Pair();
  EXPECT_EQ(*CycleHomProfile(shrikhande, 10), *CycleHomProfile(rook, 10));
}

TEST(CycleHomTest, ProfileInvariantUnderPermutation) {
  Rng rng(13);
  Graph g = RandomGnp(8, 0.5, &rng);
  Graph h = g.Permuted(rng.Permutation(8)).value();
  EXPECT_EQ(*CycleHomProfile(g, 7), *CycleHomProfile(h, 7));
}

TEST(CycleHomTest, OverflowSurfaces) {
  Graph k40 = CompleteGraph(40);
  // trace(A^40) on K40 is astronomically large.
  Result<int64_t> r = CountCycleHomomorphisms(40, k40);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kArithmeticOverflow);
}

}  // namespace
}  // namespace gelc
