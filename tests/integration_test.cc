// Cross-module integration tests: small-scale versions of the paper's
// headline claims, wiring WL, hom counting, GNNs, logic and the GEL
// language together.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/analysis.h"
#include "core/compile_gnn.h"
#include "core/eval.h"
#include "core/normal_form.h"
#include "gnn/gnn101.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "hom/hom_count.h"
#include "hom/trees.h"
#include "logic/gml.h"
#include "logic/gml_to_gnn.h"
#include "separation/oracles.h"
#include "wl/color_refinement.h"
#include "wl/kwl.h"

namespace gelc {
namespace {

// Slide 26: ρ(GNN101) = ρ(CR), sampled over random graph pairs. A random
// GNN separating a pair implies CR separates it (no false positives), and
// on CR-separated pairs random tanh GNNs separate with overwhelming
// probability at these sizes.
class Gnn101EqualsCrTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Gnn101EqualsCrTest, SampledEquality) {
  Rng rng(GetParam() * 2713);
  Graph a = RandomGnp(7, 0.4, &rng);
  Graph b = RandomGnp(7, 0.4, &rng);
  bool cr = CrEquivalentGraphs(a, b);
  OraclePtr probe = MakeGnn101ProbeOracle(12, {8, 8}, 1e-6,
                                          GetParam() * 17);
  bool gnn = *probe->Equivalent(a, b);
  EXPECT_EQ(cr, gnn);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Gnn101EqualsCrTest,
                         ::testing::Range<uint64_t>(1, 15));

// Slide 27 pipeline: CR verdicts, tree-hom verdicts and GNN verdicts all
// coincide on the classic hard pair.
TEST(IntegrationTest, ThreeCharacterizationsAgree) {
  auto [c6, two_c3] = Cr_HardPair();
  OraclePtr cr = MakeCrOracle();
  OraclePtr hom = MakeTreeHomOracle(7);
  OraclePtr gnn = MakeGnn101ProbeOracle(15, {8, 8}, 1e-6, 5);
  OraclePtr iso = MakeIsomorphismOracle();
  EXPECT_TRUE(*cr->Equivalent(c6, two_c3));
  EXPECT_TRUE(*hom->Equivalent(c6, two_c3));
  EXPECT_TRUE(*gnn->Equivalent(c6, two_c3));
  EXPECT_FALSE(*iso->Equivalent(c6, two_c3));
}

// Slide 66 (finite slice): a GEL^3 expression suite separates pairs that
// 2-WL separates while GEL^2-style MPNN probes cannot.
TEST(IntegrationTest, Gel3SeparatesBeyondMpnn) {
  auto [c6, two_c3] = Cr_HardPair();
  ExprPtr tri_guard = *Expr::Apply(
      omega::Multiply(1),
      {*Expr::Apply(omega::Multiply(1), {*Expr::Edge(0, 1),
                                         *Expr::Edge(1, 2)}),
       *Expr::Edge(2, 0)});
  ExprPtr triangles =
      *Expr::Aggregate(theta::Sum(1), VarBit(0) | VarBit(1) | VarBit(2),
                       *Expr::Constant({1.0}), tri_guard);
  EXPECT_EQ(VariableWidth(triangles), 3u);
  OraclePtr gel3 = MakeGelSuiteOracle({triangles}, 1e-9, "GEL3");
  OraclePtr mpnn = MakeGnn101ProbeOracle(15, {8, 8}, 1e-6, 11);
  EXPECT_FALSE(*gel3->Equivalent(c6, two_c3));
  EXPECT_TRUE(*mpnn->Equivalent(c6, two_c3));
  // And 2-WL (slide 66: ρ(2-WL) = ρ(GEL^3)) also separates the pair.
  EXPECT_FALSE(*MakeKwlOracle(2)->Equivalent(c6, two_c3));
}

// GML -> GNN -> GEL round trip: compile a formula to GNN weights, compile
// those weights to a GEL expression, and check all three semantics agree.
TEST(IntegrationTest, LogicToGnnToGelRoundTrip) {
  Rng rng(29);
  constexpr size_t kLabels = 2;
  GmlPtr formula = GmlFormula::AtLeast(
      2, GmlFormula::Or(GmlFormula::Label(0),
                        GmlFormula::AtLeast(1, GmlFormula::Label(1))));
  CompiledGmlGnn compiled = *CompileGmlToGnn(formula, kLabels);
  ExprPtr expr = *CompileGnn101ToGel(compiled.model);
  EXPECT_TRUE(IsMpnnFragment(expr));

  for (int trial = 0; trial < 5; ++trial) {
    size_t n = 6 + rng.NextBounded(6);
    Graph g(n, kLabels);
    for (size_t u = 0; u < n; ++u) {
      for (size_t v = u + 1; v < n; ++v)
        if (rng.NextBernoulli(0.3)) {
            ASSERT_TRUE(g.AddEdge(static_cast<VertexId>(u),
            static_cast<VertexId>(v))
            .ok());
        }
      g.SetOneHotFeature(static_cast<VertexId>(u), rng.NextBounded(kLabels));
    }
    std::vector<bool> truth = *EvaluateGml(formula, g);
    Matrix network = *compiled.model.VertexEmbeddings(g);
    Evaluator eval(g);
    Matrix expression = *eval.EvalVertex(expr);
    for (size_t v = 0; v < n; ++v) {
      double net = network.At(v, compiled.output_coordinate);
      double exp = expression.At(v, compiled.output_coordinate);
      EXPECT_EQ(net == 1.0, truth[v]);
      EXPECT_NEAR(net, exp, 1e-12);
    }
  }
}

// Invariance (slide 11) across every embedding family in one sweep.
class InvarianceSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvarianceSweepTest, AllEmbeddingsInvariant) {
  Rng rng(GetParam() * 523);
  size_t n = 8;
  Graph g = RandomGnp(n, 0.4, &rng);
  std::vector<size_t> perm = rng.Permutation(n);
  Graph h = g.Permuted(perm).value();

  // CR signatures.
  CrColoring cr = RunColorRefinement({&g, &h});
  EXPECT_EQ(cr.GraphSignature(0), cr.GraphSignature(1));
  // 2-WL signatures.
  KwlColoring kwl = *RunKwl({&g, &h}, 2);
  EXPECT_EQ(kwl.GraphSignature(0), kwl.GraphSignature(1));
  // Tree hom profiles.
  std::vector<Graph> trees = *AllTreesUpTo(5);
  EXPECT_EQ(*TreeHomProfile(g, trees), *TreeHomProfile(h, trees));
  // Random GNN graph embedding.
  Gnn101Model model =
      *Gnn101Model::Random({1, 6, 6}, Activation::kSigmoid, 0.7, &rng);
  EXPECT_TRUE(
      (*model.GraphEmbedding(g)).AllClose(*model.GraphEmbedding(h), 1e-9));
  // Compiled GEL expression (closed).
  ExprPtr closed = *CompileGnn101GraphToGel(model);
  Evaluator evg(g);
  Evaluator evh(h);
  std::vector<double> vg = *evg.EvalClosed(closed);
  std::vector<double> vh = *evh.EvalClosed(closed);
  for (size_t j = 0; j < vg.size(); ++j) EXPECT_NEAR(vg[j], vh[j], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvarianceSweepTest,
                         ::testing::Range<uint64_t>(1, 9));

// The CFI pair over a cycle behaves per theory end to end: non-isomorphic,
// CR-blind, 2-WL-separated, and GNN probes stay blind too.
TEST(IntegrationTest, CfiPipelineConsistent) {
  Result<std::pair<Graph, Graph>> pair = CfiPair(CycleGraph(5));
  ASSERT_TRUE(pair.ok());
  const Graph& a = pair->first;
  const Graph& b = pair->second;
  EXPECT_FALSE(*AreIsomorphic(a, b));
  EXPECT_TRUE(CrEquivalentGraphs(a, b));
  EXPECT_FALSE(*KwlEquivalentGraphs(a, b, 2));
  OraclePtr probe = MakeGnn101ProbeOracle(10, {6, 6}, 1e-6, 3);
  EXPECT_TRUE(*probe->Equivalent(a, b));
}

// Normal-form pipeline on a trained-like model: normalize the compiled
// expression of a random 3-layer GNN and check exact agreement.
TEST(IntegrationTest, NormalFormOfDeepModel) {
  Rng rng(31);
  Gnn101Model model =
      *Gnn101Model::Random({1, 5, 5, 5}, Activation::kReLU, 0.5, &rng);
  ExprPtr expr = *CompileGnn101ToGel(model);
  NormalFormProgram program = *NormalFormProgram::Normalize(expr);
  EXPECT_EQ(program.num_layers(), 3u);
  Graph g = PetersenGraph();
  EXPECT_TRUE((*model.VertexEmbeddings(g)).AllClose(*program.Run(g), 1e-9));
}

}  // namespace
}  // namespace gelc
