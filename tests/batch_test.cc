// Differential tests for batched graph execution (graph/batch.h plus the
// segment tape ops): everything the batched path computes — logits, loss,
// parameter gradients, and a whole SGD step — must be bit-identical, per
// member graph, to the single-graph path, at every thread count. See
// DESIGN.md "Batched execution" for why bit-identity (not just closeness)
// is the contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "autodiff/optimizer.h"
#include "autodiff/tape.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "gnn/mpnn.h"
#include "gnn/trainable.h"
#include "graph/batch.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace gelc {
namespace {

std::vector<const Graph*> Pointers(const std::vector<Graph>& graphs) {
  std::vector<const Graph*> ptrs;
  for (const Graph& g : graphs) ptrs.push_back(&g);
  return ptrs;
}

// A deliberately mixed batch: path, cycle, a single isolated vertex
// (empty adjacency block), and a random graph.
std::vector<Graph> MixedGraphs() {
  Rng rng(31);
  std::vector<Graph> graphs;
  graphs.push_back(PathGraph(4));
  graphs.push_back(CycleGraph(5));
  graphs.push_back(Graph::Unlabeled(1));
  graphs.push_back(RandomGnp(7, 0.4, &rng));
  return graphs;
}

std::unique_ptr<TrainableGnn> MakeGnn() {
  TrainableGnn::Config config;
  config.widths = {1, 8, 8};
  config.seed = 42;
  Result<std::unique_ptr<TrainableGnn>> created = TrainableGnn::Create(config);
  GELC_CHECK_OK(created);
  return std::move(*created);
}

TEST(GraphBatchTest, PackingLayout) {
  std::vector<Graph> graphs = MixedGraphs();
  Result<GraphBatch> batch = GraphBatch::Create(Pointers(graphs));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_graphs(), 4u);
  EXPECT_EQ(batch->num_vertices(), 17u);
  EXPECT_EQ(batch->feature_dim(), 1u);
  std::vector<size_t> expected_offsets = {0, 4, 9, 10, 17};
  EXPECT_EQ(batch->vertex_offsets(), expected_offsets);
  // segment_ids() is the inverse map of vertex_offsets().
  for (size_t v = 0; v < batch->num_vertices(); ++v) {
    size_t s = batch->segment_of(v);
    EXPECT_GE(v, batch->graph_offset(s));
    EXPECT_LT(v, batch->graph_offset(s) + batch->graph_size(s));
  }
  // Features are the row concatenation; Slice recovers every block.
  size_t arcs = 0;
  for (size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ(batch->Slice(batch->features(), i), graphs[i].features());
    EXPECT_EQ(batch->graph_size(i), graphs[i].num_vertices());
    arcs += graphs[i].num_arcs();
  }
  EXPECT_EQ(batch->num_arcs(), arcs);
}

TEST(GraphBatchTest, AdjacencyMatchesFoldedDisjointUnion) {
  std::vector<Graph> graphs = MixedGraphs();
  Result<GraphBatch> batch = GraphBatch::Create(Pointers(graphs));
  ASSERT_TRUE(batch.ok());
  Graph acc = graphs[0];
  for (size_t i = 1; i < graphs.size(); ++i)
    acc = *Graph::DisjointUnion(acc, graphs[i]);
  const CsrMatrix& a = batch->adjacency();
  const CsrMatrix& b = acc.Csr().adjacency();
  EXPECT_EQ(a.row_offsets, b.row_offsets);
  EXPECT_EQ(a.col_indices, b.col_indices);
  EXPECT_EQ(a.values, b.values);
}

TEST(GraphBatchTest, DirectedBatchBuildsRealTranspose) {
  Graph a = Graph::Unlabeled(3, /*directed=*/true);
  GELC_CHECK_OK(a.AddEdge(0, 1));
  GELC_CHECK_OK(a.AddEdge(2, 1));
  Graph b = Graph::Unlabeled(2, /*directed=*/true);
  GELC_CHECK_OK(b.AddEdge(1, 0));
  Result<GraphBatch> batch = GraphBatch::Create({&a, &b});
  ASSERT_TRUE(batch.ok());
  Graph u = *Graph::DisjointUnion(a, b);
  const CsrMatrix& t = batch->transpose();
  const CsrMatrix& expected = u.Csr().transpose();
  EXPECT_EQ(t.row_offsets, expected.row_offsets);
  EXPECT_EQ(t.col_indices, expected.col_indices);
}

TEST(GraphBatchTest, CreateValidation) {
  Graph p = PathGraph(3);
  EXPECT_FALSE(GraphBatch::Create({}).ok());
  EXPECT_FALSE(GraphBatch::Create({&p, nullptr}).ok());
  Graph wide(2, 3);  // feature dim 3 != 1
  EXPECT_FALSE(GraphBatch::Create({&p, &wide}).ok());
  Graph directed = Graph::Unlabeled(2, /*directed=*/true);
  EXPECT_FALSE(GraphBatch::Create({&p, &directed}).ok());
}

TEST(GraphBatchTest, PackRecordsMetrics) {
  std::vector<Graph> graphs = MixedGraphs();
  uint64_t packs = obs::ReadCounter("batch.packs");
  uint64_t graphs_before = obs::ReadCounter("batch.graphs");
  uint64_t vertices = obs::ReadCounter("batch.vertices");
  Result<GraphBatch> batch = GraphBatch::Create(Pointers(graphs));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(obs::ReadCounter("batch.packs") - packs, 1u);
  EXPECT_EQ(obs::ReadCounter("batch.graphs") - graphs_before,
            batch->num_graphs());
  EXPECT_EQ(obs::ReadCounter("batch.vertices") - vertices,
            batch->num_vertices());
}

// The acceptance criterion of the batched-execution PR: batched logits,
// loss, gradients, and one SGD step are bit-identical to running each
// graph on its own tape, at thread counts 1 and 4.
TEST(BatchDifferentialTest, LogitsLossAndSgdStepBitIdentical) {
  std::vector<Graph> graphs = MixedGraphs();
  std::vector<size_t> labels = {0, 1, 0, 1};
  const size_t k = graphs.size();
  Result<GraphBatch> batch = GraphBatch::Create(Pointers(graphs));
  ASSERT_TRUE(batch.ok());
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SetParallelThreadCount(threads);
    std::unique_ptr<TrainableGnn> batched = MakeGnn();
    std::unique_ptr<TrainableGnn> reference = MakeGnn();  // same seed

    // Batched side: one tape, one backward pass, one SGD step.
    Sgd opt_b(0.05);
    for (Parameter* p : batched->Parameters()) opt_b.Register(p);
    opt_b.ZeroGrad();
    Tape tape;
    ValueId logits = batched->GraphLogits(&tape, *batch);
    ValueId loss = tape.SoftmaxCrossEntropy(logits, labels);
    tape.Backward(loss);
    const Matrix& batched_logits = tape.value(logits);
    double batched_loss = tape.value(loss).At(0, 0);

    // Reference side: one tape per graph. Scaling each per-graph loss by
    // fl(1/k) before Backward reproduces the batched mean's backward
    // scale exactly, and the segment-grouped batched ops accumulate
    // parameter gradients in the same association as this loop.
    Sgd opt_r(0.05);
    for (Parameter* p : reference->Parameters()) opt_r.Register(p);
    opt_r.ZeroGrad();
    double loss_sum = 0.0;
    for (size_t i = 0; i < k; ++i) {
      Tape t;
      ValueId li = reference->GraphLogits(&t, graphs[i]);
      ValueId xent = t.SoftmaxCrossEntropy(li, {labels[i]});
      t.Backward(t.Scale(xent, 1.0 / static_cast<double>(k)));
      EXPECT_EQ(batched_logits.Row(i), t.value(li))
          << "graph " << i << " at " << threads << " threads";
      loss_sum += t.value(xent).At(0, 0);
    }
    // Same ascending sum-then-divide chain as the batched cross entropy.
    EXPECT_EQ(batched_loss, loss_sum / static_cast<double>(k)) << threads;

    std::vector<Parameter*> pb = batched->Parameters();
    std::vector<Parameter*> pr = reference->Parameters();
    ASSERT_EQ(pb.size(), pr.size());
    for (size_t j = 0; j < pb.size(); ++j)
      EXPECT_EQ(pb[j]->grad, pr[j]->grad)
          << "grad of param " << j << " at " << threads << " threads";
    opt_b.Step();
    opt_r.Step();
    for (size_t j = 0; j < pb.size(); ++j)
      EXPECT_EQ(pb[j]->value, pr[j]->value)
          << "param " << j << " after step at " << threads << " threads";
  }
  SetParallelThreadCount(0);
}

// Identical bits regardless of how ParallelFor shards the segment ops.
TEST(BatchDifferentialTest, ThreadCountInvariance) {
  std::vector<Graph> graphs = MixedGraphs();
  std::vector<size_t> labels = {1, 0, 1, 0};
  Result<GraphBatch> batch = GraphBatch::Create(Pointers(graphs));
  ASSERT_TRUE(batch.ok());
  Matrix logits_at[2];
  std::vector<Matrix> grads_at[2];
  const size_t counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    SetParallelThreadCount(counts[run]);
    std::unique_ptr<TrainableGnn> model = MakeGnn();
    Tape tape;
    ValueId logits = model->GraphLogits(&tape, *batch);
    tape.Backward(tape.SoftmaxCrossEntropy(logits, labels));
    logits_at[run] = tape.value(logits);
    for (Parameter* p : model->Parameters()) grads_at[run].push_back(p->grad);
  }
  SetParallelThreadCount(0);
  EXPECT_EQ(logits_at[0], logits_at[1]);
  ASSERT_EQ(grads_at[0].size(), grads_at[1].size());
  for (size_t j = 0; j < grads_at[0].size(); ++j)
    EXPECT_EQ(grads_at[0][j], grads_at[1][j]) << "param " << j;
}

class MpnnBatchTest : public ::testing::TestWithParam<Aggregation> {};

TEST_P(MpnnBatchTest, BatchedEmbeddingsBitIdentical) {
  Rng rng(17);
  MpnnModel model = *MpnnModel::Random({1, 6, 6}, GetParam(), 0.7, &rng);
  std::vector<Graph> graphs = MixedGraphs();
  Result<GraphBatch> batch = GraphBatch::Create(Pointers(graphs));
  ASSERT_TRUE(batch.ok());
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SetParallelThreadCount(threads);
    Result<Matrix> vertex = model.VertexEmbeddings(*batch);
    Result<Matrix> readout = model.GraphEmbeddings(*batch);
    ASSERT_TRUE(vertex.ok());
    ASSERT_TRUE(readout.ok());
    EXPECT_EQ(readout->rows(), graphs.size());
    for (size_t i = 0; i < graphs.size(); ++i) {
      EXPECT_EQ(batch->Slice(*vertex, i), *model.VertexEmbeddings(graphs[i]))
          << AggregationName(GetParam()) << " block " << i;
      EXPECT_EQ(readout->Row(i), *model.GraphEmbedding(graphs[i]))
          << AggregationName(GetParam()) << " readout " << i;
    }
  }
  SetParallelThreadCount(0);
}

INSTANTIATE_TEST_SUITE_P(AllAggregations, MpnnBatchTest,
                         ::testing::Values(Aggregation::kSum,
                                           Aggregation::kMean,
                                           Aggregation::kMax));

TEST(TrainBatchTest, ExplicitFullBatchMatchesDefault) {
  Rng rng(23);
  GraphDataset ds = SyntheticMolecules(20, &rng);
  TrainOptions opt;
  opt.epochs = 15;
  opt.learning_rate = 0.02;
  opt.hidden_widths = {8};
  Result<TrainReport> by_default = TrainGraphClassifier(ds, opt);
  opt.batch_size = 14;  // == train split at train_fraction 0.7
  Result<TrainReport> explicit_full = TrainGraphClassifier(ds, opt);
  ASSERT_TRUE(by_default.ok());
  ASSERT_TRUE(explicit_full.ok());
  EXPECT_EQ(by_default->loss_history, explicit_full->loss_history);
  EXPECT_EQ(by_default->train_accuracy, explicit_full->train_accuracy);
  EXPECT_EQ(by_default->test_accuracy, explicit_full->test_accuracy);
}

TEST(TrainBatchTest, LossHistoryThreadInvariant) {
  Rng rng(23);
  GraphDataset ds = SyntheticMolecules(16, &rng);
  TrainOptions opt;
  opt.epochs = 10;
  opt.learning_rate = 0.02;
  opt.hidden_widths = {8};
  SetParallelThreadCount(1);
  Result<TrainReport> serial = TrainGraphClassifier(ds, opt);
  SetParallelThreadCount(4);
  Result<TrainReport> pooled = TrainGraphClassifier(ds, opt);
  SetParallelThreadCount(0);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(pooled.ok());
  EXPECT_EQ(serial->loss_history, pooled->loss_history);
  EXPECT_EQ(serial->train_accuracy, pooled->train_accuracy);
  EXPECT_EQ(serial->test_accuracy, pooled->test_accuracy);
}

TEST(TrainBatchTest, MinibatchesStillLearn) {
  Rng rng(29);
  GraphDataset ds = SyntheticMolecules(24, &rng);
  TrainOptions opt;
  opt.epochs = 40;
  opt.learning_rate = 0.02;
  opt.hidden_widths = {8};
  opt.batch_size = 4;
  Result<TrainReport> report = TrainGraphClassifier(ds, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->loss_history.back(), report->loss_history.front());
}

}  // namespace
}  // namespace gelc
