// Tests for expression rewriting: capture-avoiding substitution and
// variable minimization (slide 70's "find the minimal k").
#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/analysis.h"
#include "core/eval.h"
#include "core/parser.h"
#include "core/rewrite.h"
#include "graph/generators.h"

namespace gelc {
namespace {

// Evaluates both expressions on a few random labelled graphs and expects
// identical tables (up to the shared variable indexing of free vars).
void ExpectSemanticallyEqual(const ExprPtr& a, const ExprPtr& b,
                             uint64_t seed) {
  ASSERT_EQ(a->free_vars(), b->free_vars());
  ASSERT_EQ(a->dim(), b->dim());
  Rng rng(seed);
  for (int trial = 0; trial < 3; ++trial) {
    size_t n = 5 + rng.NextBounded(4);
    Graph g(n, 2);
    for (size_t u = 0; u < n; ++u) {
      for (size_t v = u + 1; v < n; ++v)
        if (rng.NextBernoulli(0.4)) {
            ASSERT_TRUE(g.AddEdge(static_cast<VertexId>(u),
            static_cast<VertexId>(v))
            .ok());
        }
      g.SetOneHotFeature(static_cast<VertexId>(u), rng.NextBounded(2));
    }
    Evaluator eval(g);
    EvalTable ta = *eval.Eval(a);
    EvalTable tb = *eval.Eval(b);
    ASSERT_EQ(ta.data.size(), tb.data.size());
    for (size_t i = 0; i < ta.data.size(); ++i)
      EXPECT_NEAR(ta.data[i], tb.data[i], 1e-12);
  }
}

TEST(SubstituteTest, RenamesAtoms) {
  ExprPtr e = *ParseExpr("mul(E(x0,x2), lab1(x2))");
  ExprPtr r = *SubstituteVariable(e, 2, 1);
  EXPECT_EQ(r->ToString(), "mul(E(x0,x1), lab1(x1))");
}

TEST(SubstituteTest, NoOccurrenceIsIdentity) {
  ExprPtr e = *ParseExpr("lab0(x0)");
  ExprPtr r = *SubstituteVariable(e, 3, 1);
  EXPECT_EQ(r.get(), e.get());
}

TEST(SubstituteTest, RejectsCollision) {
  ExprPtr e = *ParseExpr("E(x0,x1)");
  EXPECT_FALSE(SubstituteVariable(e, 0, 1).ok());
}

TEST(SubstituteTest, RejectsBoundVariable) {
  ExprPtr e = *ParseExpr("agg[sum]_{x1}([1] | E(x0,x1))");
  EXPECT_FALSE(SubstituteVariable(e, 1, 3).ok());
  // Substituting the free variable is fine.
  ExprPtr r = *SubstituteVariable(e, 0, 3);
  EXPECT_EQ(r->free_vars(), VarBit(3));
}

TEST(MinimizeTest, TwoHopBecomesWidthTwoMpnn) {
  // The paper's motivating case: nested aggregation naively written with
  // three variables is really a 2-variable (MPNN) query.
  ExprPtr e = *ParseExpr(
      "agg[sum]_{x1}(agg[sum]_{x2}([1] | E(x1,x2)) | E(x0,x1))");
  EXPECT_EQ(VariableWidth(e), 3u);
  EXPECT_FALSE(IsMpnnFragment(e));

  ExprPtr m = *MinimizeVariables(e);
  EXPECT_EQ(VariableWidth(m), 2u);
  EXPECT_TRUE(IsMpnnFragment(m)) << m->ToString();
  ExpectSemanticallyEqual(e, m, 7);
}

TEST(MinimizeTest, TriangleStaysWidthThree) {
  // Triangle counting genuinely needs 3 variables; minimization must not
  // (and cannot) collapse it.
  ExprPtr e = *ParseExpr(
      "agg[sum]_{x1,x2}([1] | mul(mul(E(x0,x1), E(x1,x2)), E(x2,x0)))");
  ExprPtr m = *MinimizeVariables(e);
  EXPECT_EQ(VariableWidth(m), 3u);
  ExpectSemanticallyEqual(e, m, 11);
}

TEST(MinimizeTest, DeepChainCollapsesToTwo) {
  // A 4-hop chain written with 5 distinct variables collapses to 2.
  ExprPtr e = *ParseExpr(
      "agg[sum]_{x1}(agg[sum]_{x2}(agg[sum]_{x3}(agg[sum]_{x4}("
      "[1] | E(x3,x4)) | E(x2,x3)) | E(x1,x2)) | E(x0,x1))");
  EXPECT_EQ(VariableWidth(e), 5u);
  ExprPtr m = *MinimizeVariables(e);
  EXPECT_EQ(VariableWidth(m), 2u);
  EXPECT_TRUE(IsMpnnFragment(m));
  ExpectSemanticallyEqual(e, m, 13);
}

TEST(MinimizeTest, IdempotentOnMinimalExpressions) {
  for (const char* text :
       {"agg[sum]_{x1}([1] | E(x0,x1))", "lab0(x0)",
        "agg[sum]_{x0}(lab0(x0))"}) {
    ExprPtr e = *ParseExpr(text);
    ExprPtr m = *MinimizeVariables(e);
    EXPECT_EQ(m->ToString(), e->ToString()) << text;
  }
}

TEST(MinimizeTest, GlobalReadoutOverWideVariable) {
  // Readout bound to x5 becomes x0.
  ExprPtr e = *ParseExpr("agg[sum]_{x5}(lab0(x5))");
  ExprPtr m = *MinimizeVariables(e);
  EXPECT_EQ(m->ToString(), "agg[sum]_{x0}(lab0(x0))");
}

TEST(MinimizeTest, PreservesFreeVariables) {
  // Free variables are an interface; only binders are renamed.
  ExprPtr e = *ParseExpr("agg[sum]_{x3}(lab0(x3) | E(x2,x3))");
  ExprPtr m = *MinimizeVariables(e);
  EXPECT_EQ(m->free_vars(), VarBit(2));
  EXPECT_EQ(VariableWidth(m), 2u);
  ExpectSemanticallyEqual(e, m, 17);
}

class MinimizeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

// Random nested aggregations with wasteful variable naming: minimization
// must preserve semantics and never increase width.
TEST_P(MinimizeFuzzTest, SoundAndNonIncreasing) {
  Rng rng(GetParam() * 7103);
  // Build a chain of aggregations with random depth using distinct vars.
  size_t depth = 1 + rng.NextBounded(4);
  ExprPtr body = *Expr::Constant({1.0});
  for (size_t d = depth; d >= 1; --d) {
    Var outer = static_cast<Var>(d - 1);
    Var inner = static_cast<Var>(d);
    ThetaPtr agg = rng.NextBounded(2) ? theta::Sum(1) : theta::Mean(1);
    body = *Expr::Aggregate(agg, VarBit(inner), body,
                            *Expr::Edge(outer, inner));
  }
  ExprPtr m = *MinimizeVariables(body);
  EXPECT_LE(VariableWidth(m), VariableWidth(body));
  EXPECT_EQ(VariableWidth(m), std::min<size_t>(VariableWidth(body), 2));
  ExpectSemanticallyEqual(body, m, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace gelc
