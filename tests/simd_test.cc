// Tests for the SIMD kernel tier (tensor/simd.h): tier resolution, the
// bit-exactness contract between the scalar and AVX2 tiers at both ends
// of the thread range, the tolerance contract of the opt-in FMA tier,
// and the dispatch observability counters.
#include "tensor/simd.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "base/aligned.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "obs/metrics.h"
#include "tensor/fused.h"
#include "tensor/matrix.h"
#include "tensor/segment.h"
#include "tensor/sparse.h"

namespace gelc {
namespace {

using simd::Tier;

// Restores the GELC_SIMD / cpuid default resolution on scope exit, so a
// test that pins tiers never leaks its override into later tests.
struct ScopedTier {
  explicit ScopedTier(Tier t) { simd::SetTier(t); }
  ~ScopedTier() { simd::ResetTier(); }
};

struct ScopedThreads {
  explicit ScopedThreads(size_t n) { SetParallelThreadCount(n); }
  ~ScopedThreads() { SetParallelThreadCount(0); }
};

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  return Matrix::RandomUniform(rows, cols, -1.0, 1.0, &rng);
}

// A CSR matrix with ~`density` nonzeros per slot; `weighted` keeps the
// sampled values, otherwise the structure carries implicit 1.0 weights.
CsrMatrix RandomCsr(size_t rows, size_t cols, double density, bool weighted,
                    uint64_t seed) {
  Rng rng(seed);
  Matrix dense(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (rng.NextUniform(0.0, 1.0) < density) {
        dense.At(i, j) = rng.NextUniform(-2.0, 2.0);
      }
    }
  }
  CsrMatrix csr = CsrMatrix::FromDense(dense);
  if (!weighted) csr.values.clear();
  return csr;
}

// ---------------------------------------------------------------------------
// Tier resolution.
// ---------------------------------------------------------------------------

TEST(SimdTierTest, EnvValueParsing) {
  EXPECT_EQ(simd::TierFromEnvValue("0", true), Tier::kScalar);
  EXPECT_EQ(simd::TierFromEnvValue("scalar", true), Tier::kScalar);
  EXPECT_EQ(simd::TierFromEnvValue("fast", true), Tier::kFast);
  EXPECT_EQ(simd::TierFromEnvValue(nullptr, true), Tier::kAvx2);
  EXPECT_EQ(simd::TierFromEnvValue("1", true), Tier::kAvx2);
  EXPECT_EQ(simd::TierFromEnvValue("avx2", true), Tier::kAvx2);
  // Without hardware support everything except the explicit scalar
  // override degrades to scalar.
  EXPECT_EQ(simd::TierFromEnvValue(nullptr, false), Tier::kScalar);
  EXPECT_EQ(simd::TierFromEnvValue("fast", false), Tier::kScalar);
  EXPECT_EQ(simd::TierFromEnvValue("0", false), Tier::kScalar);
}

// The ctest entries simd_test_forced_scalar (GELC_SIMD=0) and
// simd_test_fast (GELC_SIMD=fast) re-run this binary under those env
// values; this test pins that the process-wide resolution honored them.
TEST(SimdTierTest, ActiveTierMatchesEnvResolution) {
  simd::ResetTier();
  EXPECT_EQ(simd::ActiveTier(),
            simd::TierFromEnvValue(std::getenv("GELC_SIMD"),
                                   simd::CpuHasAvx2Fma()));
}

TEST(SimdTierTest, SetTierInstallsOrDegrades) {
  ScopedTier guard(Tier::kScalar);
  EXPECT_EQ(simd::ActiveTier(), Tier::kScalar);
  const Tier got = simd::SetTier(Tier::kAvx2);
  if (simd::CpuHasAvx2Fma()) {
    EXPECT_EQ(got, Tier::kAvx2);
    EXPECT_EQ(simd::SetTier(Tier::kFast), Tier::kFast);
  } else {
    EXPECT_EQ(got, Tier::kScalar);
    EXPECT_EQ(simd::SetTier(Tier::kFast), Tier::kScalar);
  }
  EXPECT_EQ(simd::TierName(Tier::kScalar), std::string("scalar"));
  EXPECT_EQ(simd::TierName(Tier::kAvx2), std::string("avx2"));
  EXPECT_EQ(simd::TierName(Tier::kFast), std::string("fast"));
}

// ---------------------------------------------------------------------------
// Bit-exactness: the default AVX2 tier must reproduce the scalar tier's
// bits everywhere, at both ends of the thread range, including shapes
// that exercise every vector tail (dims not multiples of 4 or 8) and the
// sub-vector-width edge (d < 4).
// ---------------------------------------------------------------------------

struct Shape {
  size_t m, k, n;
};

class SimdBitExactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::CpuHasAvx2Fma()) {
      GTEST_SKIP() << "no AVX2/FMA hardware; vector tiers unavailable";
    }
  }
};

TEST_F(SimdBitExactTest, MatMulScalarVsAvx2) {
  const Shape shapes[] = {{1, 1, 1},    {3, 2, 5},     {7, 5, 3},
                          {4, 8, 8},    {33, 17, 9},   {64, 64, 64},
                          {65, 31, 43}, {129, 65, 130}, {300, 150, 200}};
  for (const Shape& s : shapes) {
    Matrix a = RandomMatrix(s.m, s.k, 101 + s.m);
    Matrix b = RandomMatrix(s.k, s.n, 202 + s.n);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      ScopedThreads scoped_threads(threads);
      Matrix scalar, avx2;
      {
        ScopedTier tier(Tier::kScalar);
        scalar = a.MatMul(b);
      }
      {
        ScopedTier tier(Tier::kAvx2);
        avx2 = a.MatMul(b);
      }
      EXPECT_TRUE(scalar == avx2)
          << s.m << "x" << s.k << "x" << s.n << " threads=" << threads
          << " maxdiff=" << scalar.MaxAbsDiff(avx2);
    }
  }
}

TEST_F(SimdBitExactTest, SpMMScalarVsAvx2WeightedAndNot) {
  // d sweeps the tails: sub-vector (1..3), one vector (4), odd (5, 7),
  // the 8-wide main loop (8, 16), and 8-plus-tails (11, 13).
  for (size_t d : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 11u, 13u, 16u}) {
    for (bool weighted : {false, true}) {
      CsrMatrix a = RandomCsr(120, 90, 0.15, weighted, 7 + d);
      Matrix b = RandomMatrix(90, d, 31 + d);
      for (size_t threads : {size_t{1}, size_t{4}}) {
        ScopedThreads scoped_threads(threads);
        Matrix scalar, avx2;
        {
          ScopedTier tier(Tier::kScalar);
          scalar = SpMM(a, b);
        }
        {
          ScopedTier tier(Tier::kAvx2);
          avx2 = SpMM(a, b);
        }
        EXPECT_TRUE(scalar == avx2)
            << "d=" << d << " weighted=" << weighted
            << " threads=" << threads;
      }
    }
  }
}

TEST_F(SimdBitExactTest, NeighborAggregateScalarVsAvx2) {
  for (size_t d : {3u, 8u, 13u}) {
    CsrMatrix csr = RandomCsr(80, 80, 0.1, true, 17 + d);
    CsrMatrix unweighted = csr;
    unweighted.values.clear();
    Matrix values = RandomMatrix(80, d, 29 + d);
    for (FusedAgg agg :
         {FusedAgg::kSum, FusedAgg::kMean, FusedAgg::kMax, FusedAgg::kCount}) {
      // Max aggregation over weighted CSR ignores weights; use both
      // structures to cover the weighted and unweighted sum paths.
      for (const CsrMatrix* a : {&csr, &unweighted}) {
        Matrix scalar, avx2;
        {
          ScopedTier tier(Tier::kScalar);
          NeighborAggregateInto(*a, values, agg, false, false, &scalar);
        }
        {
          ScopedTier tier(Tier::kAvx2);
          NeighborAggregateInto(*a, values, agg, false, false, &avx2);
        }
        EXPECT_TRUE(scalar == avx2)
            << "d=" << d << " agg=" << static_cast<int>(agg)
            << " weighted=" << a->weighted();
      }
    }
  }
}

TEST_F(SimdBitExactTest, FusedLayerAndGinCombineScalarVsAvx2) {
  const size_t n = 60;
  for (size_t d : {5u, 16u}) {
    const size_t out_dim = d + 3;  // not a multiple of 4
    CsrMatrix csr = RandomCsr(n, n, 0.12, false, 41 + d);
    Matrix values = RandomMatrix(n, d, 43 + d);
    Matrix w_self = RandomMatrix(d, out_dim, 47 + d);
    Matrix w_agg = RandomMatrix(d, out_dim, 53 + d);
    Matrix bias = RandomMatrix(1, out_dim, 59 + d);
    std::vector<FusedLayerArg> args(2);
    args[0].values = &values;
    args[0].w = &w_self;
    args[1].values = &values;
    args[1].w = &w_agg;
    args[1].csr = &csr;
    args[1].agg = FusedAgg::kMean;
    Matrix scalar_layer, avx2_layer, scalar_gin, avx2_gin;
    {
      ScopedTier tier(Tier::kScalar);
      FusedLayerInto(n, args, &bias, Activation::kReLU, &scalar_layer);
      FusedGinCombineInto(csr, values, 1.25, &scalar_gin);
    }
    {
      ScopedTier tier(Tier::kAvx2);
      FusedLayerInto(n, args, &bias, Activation::kReLU, &avx2_layer);
      FusedGinCombineInto(csr, values, 1.25, &avx2_gin);
    }
    EXPECT_TRUE(scalar_layer == avx2_layer) << "d=" << d;
    EXPECT_TRUE(scalar_gin == avx2_gin) << "d=" << d;
  }
}

TEST_F(SimdBitExactTest, SegmentOpsScalarVsAvx2) {
  for (size_t d : {3u, 8u, 11u}) {
    Matrix f = RandomMatrix(50, d, 61 + d);
    // Offsets with empty, singleton, and long segments.
    std::vector<size_t> offsets = {0, 0, 1, 5, 5, 20, 50};
    for (size_t threads : {size_t{1}, size_t{4}}) {
      ScopedThreads scoped_threads(threads);
      Matrix ssum, smean, smax, vsum, vmean, vmax;
      std::vector<size_t> sarg, varg;
      {
        ScopedTier tier(Tier::kScalar);
        ssum = SegmentSum(f, offsets);
        smean = SegmentMean(f, offsets);
        smax = SegmentMax(f, offsets, &sarg);
      }
      {
        ScopedTier tier(Tier::kAvx2);
        vsum = SegmentSum(f, offsets);
        vmean = SegmentMean(f, offsets);
        vmax = SegmentMax(f, offsets, &varg);
      }
      EXPECT_TRUE(ssum == vsum) << "d=" << d << " threads=" << threads;
      EXPECT_TRUE(smean == vmean) << "d=" << d << " threads=" << threads;
      EXPECT_TRUE(smax == vmax) << "d=" << d << " threads=" << threads;
      EXPECT_EQ(sarg, varg) << "d=" << d << " threads=" << threads;
    }
  }
}

// Max semantics corner: signed zeros and the keep-acc-on-tie convention
// must match std::max in the vector tier (naive _mm256_max_pd would not).
TEST_F(SimdBitExactTest, MaxRowSignedZeroAndTies) {
  AlignedVector acc_s = {-0.0, 0.0, 1.0, -1.0, -0.0, 0.0, 2.0, -2.0, 5.0};
  AlignedVector x = {0.0, -0.0, 1.0, 1.0, -0.0, 0.0, -2.0, 2.0, 5.0};
  AlignedVector acc_v = acc_s;
  {
    ScopedTier tier(Tier::kScalar);
    simd::MaxRow(acc_s.data(), x.data(), acc_s.size());
  }
  {
    ScopedTier tier(Tier::kAvx2);
    simd::MaxRow(acc_v.data(), x.data(), acc_v.size());
  }
  for (size_t j = 0; j < acc_s.size(); ++j) {
    // Compare bits: 0.0 vs -0.0 compare equal under ==, so check sign too.
    EXPECT_EQ(acc_s[j], acc_v[j]) << "j=" << j;
    EXPECT_EQ(std::signbit(acc_s[j]), std::signbit(acc_v[j])) << "j=" << j;
  }
}

// The 64-byte-aligned storage contract the kernels DCHECK.
TEST(SimdAlignmentTest, MatrixStorageIsVectorAligned) {
  for (size_t cols : {1u, 3u, 7u, 64u}) {
    Matrix m = RandomMatrix(5, cols, 71 + cols);
    EXPECT_TRUE(IsVectorAligned(m.data().data())) << "cols=" << cols;
  }
  AlignedVector v(13);
  EXPECT_TRUE(IsVectorAligned(v.data()));
}

// ---------------------------------------------------------------------------
// Fast tier: FMA is allowed to change bits but not results — the
// differential tolerance mirrors the PR 5 batched/differential layer.
// ---------------------------------------------------------------------------

TEST_F(SimdBitExactTest, FastTierWithinTolerance) {
  Matrix a = RandomMatrix(120, 80, 301);
  Matrix b = RandomMatrix(80, 96, 302);
  CsrMatrix csr = RandomCsr(120, 120, 0.15, true, 303);
  Matrix scalar_mm, fast_mm, scalar_sp, fast_sp;
  {
    ScopedTier tier(Tier::kScalar);
    scalar_mm = a.MatMul(b);
    scalar_sp = SpMM(csr, scalar_mm);
  }
  {
    ScopedTier tier(Tier::kFast);
    fast_mm = a.MatMul(b);
    fast_sp = SpMM(csr, scalar_mm);
  }
  // |entries| are O(1) with k <= 120 accumulation steps; 1e-12 absolute
  // leaves two orders of magnitude over the worst observed FMA drift
  // while still catching any real kernel bug.
  EXPECT_TRUE(scalar_mm.AllClose(fast_mm, 1e-12));
  EXPECT_TRUE(scalar_sp.AllClose(fast_sp, 1e-12));
}

// ---------------------------------------------------------------------------
// Observability: kernel entry points record which tier served them.
// ---------------------------------------------------------------------------

TEST(SimdObsTest, DispatchCountersAdvancePerTier) {
  Matrix a = RandomMatrix(16, 16, 401);
  Matrix b = RandomMatrix(16, 16, 402);
  {
    ScopedTier tier(Tier::kScalar);
    const uint64_t before = obs::ReadCounter("simd.scalar_dispatches");
    (void)a.MatMul(b);
    EXPECT_EQ(obs::ReadCounter("simd.scalar_dispatches"), before + 1);
  }
  if (simd::CpuHasAvx2Fma()) {
    ScopedTier tier(Tier::kAvx2);
    const uint64_t before = obs::ReadCounter("simd.avx2_dispatches");
    (void)a.MatMul(b);
    (void)SpMM(RandomCsr(16, 16, 0.3, false, 403), b);
    EXPECT_EQ(obs::ReadCounter("simd.avx2_dispatches"), before + 2);
  }
}

}  // namespace
}  // namespace gelc
