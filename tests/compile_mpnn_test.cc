// Tests for the zoo -> GEL compilers beyond GNN-101: general MPNNs (all
// three aggregations) and GraphSAGE (slide 48: "existing architectures
// can be easily cast as MPNN(Ω,Θ) expressions").
#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/analysis.h"
#include "core/compile_gnn.h"
#include "core/eval.h"
#include "core/normal_form.h"
#include "graph/generators.h"

namespace gelc {
namespace {

Graph RandomLabelled(size_t n, size_t dim, Rng* rng) {
  Graph g(n, dim);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v)
      if (rng->NextBernoulli(0.4)) {
          EXPECT_TRUE(g.AddEdge(static_cast<VertexId>(u),
          static_cast<VertexId>(v))
          .ok());
      }
    g.SetOneHotFeature(static_cast<VertexId>(u), rng->NextBounded(dim));
  }
  return g;
}

class MpnnCompileTest : public ::testing::TestWithParam<Aggregation> {};

TEST_P(MpnnCompileTest, ExpressionMatchesNetwork) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  MpnnModel model = *MpnnModel::Random({2, 4, 4}, GetParam(), 0.6, &rng);
  ExprPtr vertex_expr = *CompileMpnnToGel(model);
  EXPECT_TRUE(IsMpnnFragment(vertex_expr));
  EXPECT_EQ(Analyze(vertex_expr).width, 2u);

  ExprPtr graph_expr = *CompileMpnnGraphToGel(model);
  EXPECT_EQ(graph_expr->free_vars(), 0u);

  for (int trial = 0; trial < 3; ++trial) {
    Graph g = RandomLabelled(6 + rng.NextBounded(5), 2, &rng);
    Matrix network = *model.VertexEmbeddings(g);
    Evaluator eval(g);
    Matrix expression = *eval.EvalVertex(vertex_expr);
    EXPECT_TRUE(network.AllClose(expression, 1e-9))
        << AggregationName(GetParam());

    Matrix graph_net = *model.GraphEmbedding(g);
    std::vector<double> graph_expr_val = *eval.EvalClosed(graph_expr);
    for (size_t j = 0; j < graph_expr_val.size(); ++j)
      EXPECT_NEAR(graph_expr_val[j], graph_net.At(0, j), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAggregations, MpnnCompileTest,
                         ::testing::Values(Aggregation::kSum,
                                           Aggregation::kMean,
                                           Aggregation::kMax));

TEST(MpnnCompileTest, NormalFormOfCompiledMeanMpnn) {
  Rng rng(41);
  MpnnModel model =
      *MpnnModel::Random({2, 3, 3}, Aggregation::kMean, 0.6, &rng);
  ExprPtr expr = *CompileMpnnToGel(model);
  NormalFormProgram program = *NormalFormProgram::Normalize(expr);
  EXPECT_EQ(program.num_layers(), 2u);
  Graph g = RandomLabelled(8, 2, &rng);
  EXPECT_TRUE((*model.VertexEmbeddings(g)).AllClose(*program.Run(g), 1e-9));
}

TEST(MpnnCompileTest, GraphReadoutRequiresReadout) {
  MpnnLayer layer;
  layer.agg = Aggregation::kSum;
  MlpLayer ml;
  ml.w = Matrix::Identity(2);
  ml.b = Matrix(1, 2);
  layer.update = Mlp({ml});
  MpnnModel model({layer});
  EXPECT_FALSE(CompileMpnnGraphToGel(model).ok());
}

TEST(GraphSageCompileTest, ExpressionMatchesNetwork) {
  Rng rng(43);
  GraphSageModel model = *GraphSageModel::Random({2, 4, 4}, 0.6, &rng);
  ExprPtr expr = *CompileGraphSageToGel(model);
  EXPECT_TRUE(IsMpnnFragment(expr));
  for (int trial = 0; trial < 3; ++trial) {
    Graph g = RandomLabelled(7, 2, &rng);
    Matrix network = *model.VertexEmbeddings(g);
    Evaluator eval(g);
    Matrix expression = *eval.EvalVertex(expr);
    EXPECT_TRUE(network.AllClose(expression, 1e-9));
  }
}

TEST(GraphSageCompileTest, CertifiedBoundIsColorRefinement) {
  // The whole point of slide 35: casting GraphSAGE into the language
  // mechanically certifies its CR upper bound.
  Rng rng(47);
  GraphSageModel model = *GraphSageModel::Random({1, 4}, 0.6, &rng);
  ExprPtr expr = *CompileGraphSageToGel(model);
  ExprAnalysis a = Analyze(expr);
  EXPECT_TRUE(a.is_mpnn_fragment);
  EXPECT_NE(a.separation_bound.find("color refinement"), std::string::npos);
}

}  // namespace
}  // namespace gelc
