// Tests for the GEL(Ω,Θ) evaluator: semantics of every node kind, guards,
// memoization, and invariance of evaluated embeddings (slide 11).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/eval.h"
#include "core/rewrite.h"
#include "graph/generators.h"

namespace gelc {
namespace {

// Degree expression: agg[sum]_{x1}(1 | E(x0,x1)).
ExprPtr DegreeExpr() {
  return *Expr::Aggregate(theta::Sum(1), VarBit(1), *Expr::Constant({1.0}),
                          *Expr::Edge(0, 1));
}

// Triangle-count-at-vertex expression (width 3):
// agg[sum]_{x1,x2}(1 | E(x0,x1)*E(x1,x2)*E(x2,x0)).
ExprPtr TriangleExpr() {
  ExprPtr g = *Expr::Apply(
      omega::Multiply(1),
      {*Expr::Apply(omega::Multiply(1), {*Expr::Edge(0, 1),
                                         *Expr::Edge(1, 2)}),
       *Expr::Edge(2, 0)});
  return *Expr::Aggregate(theta::Sum(1), VarBit(1) | VarBit(2),
                          *Expr::Constant({1.0}), g);
}

TEST(EvalTest, LabelReadsFeatures) {
  Graph g(3, 2);
  g.SetOneHotFeature(0, 1);
  g.SetOneHotFeature(1, 0);
  g.SetOneHotFeature(2, 1);
  Evaluator eval(g);
  Matrix lab1 = *eval.EvalVertex(*Expr::Label(1, 0));
  EXPECT_EQ(lab1, Matrix({{1}, {0}, {1}}));
  // Out-of-range label index errors.
  EXPECT_FALSE(eval.EvalVertex(*Expr::Label(5, 0)).ok());
}

TEST(EvalTest, EdgeTableMatchesAdjacency) {
  Graph g = PathGraph(3);
  Evaluator eval(g);
  EvalTable t = *eval.Eval(*Expr::Edge(0, 1));
  for (VertexId u = 0; u < 3; ++u)
    for (VertexId v = 0; v < 3; ++v)
      EXPECT_EQ(t.data[u * 3 + v] == 1.0, g.HasEdge(u, v));
}

TEST(EvalTest, EdgeTableRespectsVariableOrder) {
  // E(x1, x0): table layout is ascending by variable, so entry (a, b)
  // corresponds to x0 = a, x1 = b, i.e. edge b -> a.
  Graph g(2, 1, /*directed=*/true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  Evaluator eval(g);
  EvalTable t = *eval.Eval(*Expr::Edge(1, 0));
  EXPECT_EQ(t.data[0 * 2 + 1], 0.0);  // x0=0, x1=1: edge 1->0? no
  EXPECT_EQ(t.data[1 * 2 + 0], 1.0);  // x0=1, x1=0: edge 0->1? yes
}

TEST(EvalTest, CompareTable) {
  Graph g = Graph::Unlabeled(3);
  Evaluator eval(g);
  EvalTable eq = *eval.Eval(*Expr::Compare(0, 1, CmpOp::kEq));
  EvalTable ne = *eval.Eval(*Expr::Compare(0, 1, CmpOp::kNeq));
  for (size_t a = 0; a < 3; ++a)
    for (size_t b = 0; b < 3; ++b) {
      EXPECT_EQ(eq.data[a * 3 + b], a == b ? 1.0 : 0.0);
      EXPECT_EQ(ne.data[a * 3 + b], a != b ? 1.0 : 0.0);
    }
}

TEST(EvalTest, ConstantClosed) {
  Graph g = PathGraph(2);
  Evaluator eval(g);
  std::vector<double> v = *eval.EvalClosed(*Expr::Constant({2.5, -1.0}));
  EXPECT_EQ(v, (std::vector<double>{2.5, -1.0}));
}

TEST(EvalTest, DegreeExpression) {
  Graph star = StarGraph(4);
  Evaluator eval(star);
  Matrix deg = *eval.EvalVertex(DegreeExpr());
  EXPECT_EQ(deg.At(0, 0), 4.0);
  for (size_t v = 1; v <= 4; ++v) EXPECT_EQ(deg.At(v, 0), 1.0);
}

TEST(EvalTest, TriangleExpressionCounts) {
  Evaluator eval_k4(CompleteGraph(4));
  Matrix t = *eval_k4.EvalVertex(TriangleExpr());
  // Each vertex of K4 lies on 3 triangles; ordered (x1,x2) pairs double it.
  EXPECT_EQ(t.At(0, 0), 6.0);
  Evaluator eval_c5(CycleGraph(5));
  Matrix t5 = *eval_c5.EvalVertex(TriangleExpr());
  EXPECT_EQ(t5.At(0, 0), 0.0);
}

TEST(EvalTest, MeanAndMaxAggregates) {
  // Star with labelled leaves: hub aggregates leaf labels.
  Graph g(4, 1);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  g.mutable_features().At(1, 0) = 3.0;
  g.mutable_features().At(2, 0) = 6.0;
  g.mutable_features().At(3, 0) = -3.0;
  ExprPtr val = *Expr::Label(0, 1);
  ExprPtr guard = *Expr::Edge(0, 1);
  Evaluator eval(g);
  Matrix mean = *eval.EvalVertex(
      *Expr::Aggregate(theta::Mean(1), VarBit(1), val, guard));
  Matrix mx = *eval.EvalVertex(
      *Expr::Aggregate(theta::Max(1), VarBit(1), val, guard));
  EXPECT_EQ(mean.At(0, 0), 2.0);
  EXPECT_EQ(mx.At(0, 0), 6.0);
  // Leaves see only the hub (label 0).
  EXPECT_EQ(mean.At(1, 0), 0.0);
  EXPECT_EQ(mx.At(1, 0), 0.0);
}

TEST(EvalTest, CountAggregateIgnoresValues) {
  Graph g = CycleGraph(5);
  Evaluator eval(g);
  ExprPtr cnt = *Expr::Aggregate(theta::Count(1), VarBit(1),
                                 *Expr::Label(0, 1), *Expr::Edge(0, 1));
  Matrix c = *eval.EvalVertex(cnt);
  for (size_t v = 0; v < 5; ++v) EXPECT_EQ(c.At(v, 0), 2.0);
}

TEST(EvalTest, GuardZeroMeansExcluded) {
  // Guard lab0(x1): aggregate only over vertices with label 1.
  Graph g(3, 1);
  g.mutable_features().At(0, 0) = 0.0;
  g.mutable_features().At(1, 0) = 1.0;
  g.mutable_features().At(2, 0) = 1.0;
  ExprPtr agg = *Expr::Aggregate(theta::Count(1), VarBit(1),
                                 *Expr::Constant({1.0}),
                                 *Expr::Label(0, 1));
  Evaluator eval(g);
  std::vector<double> v = *eval.EvalClosed(agg);
  EXPECT_EQ(v[0], 2.0);
}

TEST(EvalTest, GlobalAggregationClosed) {
  Graph g = PathGraph(4);
  Evaluator eval(g);
  ExprPtr total_degree = *Expr::Aggregate(theta::Sum(1), VarBit(0),
                                          DegreeExpr(), nullptr);
  std::vector<double> v = *eval.EvalClosed(total_degree);
  EXPECT_EQ(v[0], 6.0);  // 2m = 6
}

TEST(EvalTest, NestedAggregation) {
  // Sum over neighbors of their degrees: the 2-hop walk count.
  Graph p = PathGraph(4);
  // deg(x1) needs its own variable naming: deg of x1 = agg_{x0}(1|E(x1,x0)).
  ExprPtr deg_x1 = *Expr::Aggregate(theta::Sum(1), VarBit(2),
                                    *Expr::Constant({1.0}),
                                    *Expr::Edge(1, 2));
  ExprPtr two_hop = *Expr::Aggregate(theta::Sum(1), VarBit(1), deg_x1,
                                     *Expr::Edge(0, 1));
  Evaluator eval(p);
  Matrix w = *eval.EvalVertex(two_hop);
  EXPECT_EQ(w.At(0, 0), 2.0);
  EXPECT_EQ(w.At(1, 0), 3.0);
}

TEST(EvalTest, ApplyComposesWithAggregation) {
  Graph g = CycleGraph(4);
  ExprPtr deg = DegreeExpr();
  ExprPtr squared = *Expr::Apply(omega::Multiply(1), {deg, deg});
  Evaluator eval(g);
  Matrix v = *eval.EvalVertex(squared);
  EXPECT_EQ(v.At(0, 0), 4.0);
}

TEST(EvalTest, MemoizationReusesTables) {
  Graph g = CompleteGraph(6);
  ExprPtr deg = DegreeExpr();
  // Shared subtree: both children of the Apply point to the same node.
  ExprPtr squared = *Expr::Apply(omega::Multiply(1), {deg, deg});
  Evaluator memo(g);
  Evaluator no_memo(g, Evaluator::Options{/*memoize=*/false, 50'000'000});
  EXPECT_EQ((*memo.EvalVertex(squared)), (*no_memo.EvalVertex(squared)));
}

TEST(EvalTest, MemoIsStructuralNotPointerBased) {
  Graph g = CompleteGraph(6);
  // Two independently built (pointer-distinct) copies of the degree
  // expression: the structural-hash memo key makes the second Eval a pure
  // cache hit, adding no entries.
  ExprPtr a = DegreeExpr();
  ExprPtr b = DegreeExpr();
  ASSERT_NE(a.get(), b.get());
  Evaluator eval(g);
  Matrix va = *eval.EvalVertex(a);
  size_t entries = eval.memo_size();
  Matrix vb = *eval.EvalVertex(b);
  EXPECT_EQ(eval.memo_size(), entries);
  EXPECT_EQ(va, vb);
}

TEST(EvalTest, MemoIsAlphaInsensitiveAfterMinimization) {
  Graph g = CompleteGraph(6);
  // Binder-renamed variants minimize to the same canonical form, so they
  // share one memo entry per node.
  ExprPtr a = *Expr::Aggregate(theta::Sum(1), VarBit(1),
                               *Expr::Constant({1.0}), *Expr::Edge(0, 1));
  ExprPtr b = *Expr::Aggregate(theta::Sum(1), VarBit(3),
                               *Expr::Constant({1.0}), *Expr::Edge(0, 3));
  Evaluator eval(g);
  Matrix va = *eval.EvalVertex(*MinimizeVariables(a));
  size_t entries = eval.memo_size();
  Matrix vb = *eval.EvalVertex(*MinimizeVariables(b));
  EXPECT_EQ(eval.memo_size(), entries);
  EXPECT_EQ(va, vb);
}

TEST(EvalTest, BudgetGuardsAgainstHugeTables) {
  Graph g = Graph::Unlabeled(50);
  // A 4-variable conjunction forces an n^4 table.
  ExprPtr e01 = *Expr::Edge(0, 1);
  ExprPtr e23 = *Expr::Edge(2, 3);
  ExprPtr both = *Expr::Apply(omega::Multiply(1), {e01, e23});
  Evaluator eval(g, Evaluator::Options{true, /*max_table_entries=*/1000});
  EXPECT_EQ(eval.Eval(both).status().code(), StatusCode::kOutOfRange);
}

TEST(EvalTest, EvalClosedRejectsOpenExpression) {
  Graph g = PathGraph(3);
  Evaluator eval(g);
  EXPECT_FALSE(eval.EvalClosed(DegreeExpr()).ok());
  EXPECT_FALSE(eval.EvalVertex(*Expr::Edge(0, 1)).ok());
}

TEST(EvalTest, TwoVertexEmbeddingTable) {
  // Link-style 2-vertex embedding: common-neighbor count of (x0, x1).
  ExprPtr common =
      *Expr::Aggregate(theta::Sum(1), VarBit(2), *Expr::Constant({1.0}),
                       *Expr::Apply(omega::Multiply(1),
                                    {*Expr::Edge(0, 2), *Expr::Edge(1, 2)}));
  Graph g = CompleteGraph(4);
  Evaluator eval(g);
  EvalTable t = *eval.Eval(common);
  EXPECT_EQ(VarSetSize(t.vars), 2u);
  // In K4 any ordered pair (u, v), u != v, has 2 common neighbors;
  // (u, u) has 3 ("common" with itself).
  EXPECT_EQ(t.data[0 * 4 + 1], 2.0);
  EXPECT_EQ(t.data[0 * 4 + 0], 3.0);
}

TEST(EvalTest, InvarianceOfGelEmbeddings) {
  Rng rng(77);
  ExprPtr tri = TriangleExpr();
  ExprPtr closed = *Expr::Aggregate(theta::Sum(1), VarBit(0), tri, nullptr);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = RandomGnp(8, 0.45, &rng);
    std::vector<size_t> perm = rng.Permutation(8);
    Graph h = g.Permuted(perm).value();
    Evaluator eg(g);
    Evaluator eh(h);
    // Closed (graph-level) value is identical.
    EXPECT_EQ((*eg.EvalClosed(closed))[0], (*eh.EvalClosed(closed))[0]);
    // Vertex-level values transport along the permutation.
    Matrix vg = *eg.EvalVertex(tri);
    Matrix vh = *eh.EvalVertex(tri);
    for (size_t v = 0; v < 8; ++v)
      EXPECT_EQ(vg.At(v, 0), vh.At(perm[v], 0));
  }
}

}  // namespace
}  // namespace gelc
