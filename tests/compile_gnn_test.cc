// Tests for the GNN -> GEL compiler (slide 35's recipe): the compiled
// expression evaluates exactly like the network and lands in the MPNN
// fragment, certifying the color-refinement bound.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/analysis.h"
#include "core/compile_gnn.h"
#include "core/eval.h"
#include "graph/generators.h"

namespace gelc {
namespace {

TEST(CompileGnnTest, HandWeightsDegreeNetwork) {
  Gnn101Layer l;
  l.w1 = Matrix({{0.0}});
  l.w2 = Matrix({{1.0}});
  l.b = Matrix({{0.0}});
  l.act = Activation::kIdentity;
  Gnn101Model model({l});
  ExprPtr expr = *CompileGnn101ToGel(model);
  EXPECT_TRUE(IsMpnnFragment(expr));
  Graph star = StarGraph(5);
  Evaluator eval(star);
  Matrix out = *eval.EvalVertex(expr);
  EXPECT_EQ(out.At(0, 0), 5.0);
  EXPECT_EQ(out.At(1, 0), 1.0);
}

class CompileAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompileAgreementTest, ExpressionMatchesNetworkOnRandomGraphs) {
  Rng rng(GetParam() * 65537);
  size_t layers = 1 + rng.NextBounded(3);
  std::vector<size_t> widths = {2};
  for (size_t i = 0; i < layers; ++i) widths.push_back(3 + rng.NextBounded(3));
  Gnn101Model model =
      *Gnn101Model::Random(widths, Activation::kReLU, 0.7, &rng);
  ExprPtr expr = *CompileGnn101ToGel(model);

  ExprAnalysis a = Analyze(expr);
  EXPECT_TRUE(a.is_mpnn_fragment);
  EXPECT_EQ(a.width, 2u);
  EXPECT_EQ(a.aggregation_depth, layers);

  // Random labelled graph with 2-dim features.
  size_t n = 6 + rng.NextBounded(6);
  Graph g(n, 2);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v)
      if (rng.NextBernoulli(0.35)) {
          ASSERT_TRUE(g.AddEdge(static_cast<VertexId>(u),
          static_cast<VertexId>(v))
          .ok());
      }
    g.SetOneHotFeature(static_cast<VertexId>(u), rng.NextBounded(2));
  }
  Matrix network = *model.VertexEmbeddings(g);
  Evaluator eval(g);
  Matrix expression = *eval.EvalVertex(expr);
  EXPECT_TRUE(network.AllClose(expression, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompileAgreementTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(CompileGnnTest, GraphReadoutMatchesNetwork) {
  Rng rng(99);
  Gnn101Model model =
      *Gnn101Model::Random({1, 4, 4}, Activation::kTanh, 0.6, &rng);
  ExprPtr expr = *CompileGnn101GraphToGel(model);
  EXPECT_EQ(expr->free_vars(), 0u);
  EXPECT_TRUE(IsMpnnFragment(expr));
  Graph g = RandomGnp(9, 0.4, &rng);
  Matrix network = *model.GraphEmbedding(g);
  Evaluator eval(g);
  std::vector<double> expression = *eval.EvalClosed(expr);
  ASSERT_EQ(expression.size(), network.cols());
  for (size_t j = 0; j < expression.size(); ++j)
    EXPECT_NEAR(expression[j], network.At(0, j), 1e-9);
}

TEST(CompileGnnTest, GraphReadoutRequiresReadout) {
  Gnn101Layer l;
  l.w1 = Matrix({{1.0}});
  l.w2 = Matrix({{1.0}});
  l.b = Matrix({{0.0}});
  Gnn101Model model({l});
  EXPECT_FALSE(CompileGnn101GraphToGel(model).ok());
}

TEST(CompileGnnTest, GinCompilesAndAgrees) {
  Rng rng(123);
  GinModel model = *GinModel::Random({2, 4}, 0.6, &rng);
  ExprPtr expr = *CompileGinToGel(model);
  EXPECT_TRUE(IsMpnnFragment(expr));

  Graph g(7, 2);
  for (size_t u = 0; u < 7; ++u) {
    for (size_t v = u + 1; v < 7; ++v)
      if (rng.NextBernoulli(0.4)) {
          ASSERT_TRUE(g.AddEdge(static_cast<VertexId>(u),
          static_cast<VertexId>(v))
          .ok());
      }
    g.SetOneHotFeature(static_cast<VertexId>(u), rng.NextBounded(2));
  }
  Matrix network = *model.VertexEmbeddings(g);
  Evaluator eval(g);
  Matrix expression = *eval.EvalVertex(expr);
  EXPECT_TRUE(network.AllClose(expression, 1e-9));
}

TEST(CompileGnnTest, CompiledExpressionSharesLayerSubtrees) {
  // The (t, variable) memo keeps the DAG linear in the number of layers:
  // both the self and the neighbor branch of layer t reference the SAME
  // node for layer t-1 of each variable.
  Rng rng(7);
  Gnn101Model model =
      *Gnn101Model::Random({1, 3, 3, 3}, Activation::kReLU, 0.5, &rng);
  ExprPtr expr = *CompileGnn101ToGel(model);
  // Tree size counts every occurrence; a naive non-shared build would be
  // exponential in layers (> 2^3 * base). The DAG keeps distinct nodes
  // small, but TreeSize still unfolds shares — sanity-check it is finite
  // and the expression evaluates in milliseconds thanks to memoized
  // evaluation.
  Graph g = CycleGraph(6);
  Evaluator eval(g);
  Matrix a = *eval.EvalVertex(expr);
  Matrix b = *model.VertexEmbeddings(g);
  EXPECT_TRUE(a.AllClose(b, 1e-9));
}

}  // namespace
}  // namespace gelc
