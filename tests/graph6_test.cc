// Tests for the graph6 codec.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "graph/generators.h"
#include "graph/graph6.h"
#include "graph/isomorphism.h"

namespace gelc {
namespace {

TEST(Graph6Test, KnownEncodings) {
  // Canonical examples from the nauty documentation / folklore:
  // K4 on 4 vertices is "C~", the empty graph on 5 vertices is "D??".
  Result<Graph> k4 = ParseGraph6("C~");
  ASSERT_TRUE(k4.ok());
  EXPECT_EQ(k4->num_vertices(), 4u);
  EXPECT_EQ(k4->num_edges(), 6u);

  Result<Graph> e5 = ParseGraph6("D??");
  ASSERT_TRUE(e5.ok());
  EXPECT_EQ(e5->num_vertices(), 5u);
  EXPECT_EQ(e5->num_edges(), 0u);

  // P4 (path on 4 vertices, edges 01-12-23) encodes as "Ch".
  Result<Graph> p4 = ParseGraph6("Ch");
  ASSERT_TRUE(p4.ok());
  EXPECT_EQ(p4->num_edges(), 3u);
  EXPECT_TRUE(*AreIsomorphic(*p4, PathGraph(4)));
}

TEST(Graph6Test, EncodeKnownGraphs) {
  EXPECT_EQ(*ToGraph6(CompleteGraph(4)), "C~");
  EXPECT_EQ(*ToGraph6(Graph::Unlabeled(5)), "D??");
}

TEST(Graph6Test, RoundTripRandomGraphs) {
  Rng rng(5);
  for (int trial = 0; trial < 12; ++trial) {
    size_t n = 1 + rng.NextBounded(30);
    Graph g = RandomGnp(n, 0.3, &rng);
    std::string encoded = *ToGraph6(g);
    Graph back = *ParseGraph6(encoded);
    ASSERT_EQ(back.num_vertices(), n);
    ASSERT_EQ(back.num_edges(), g.num_edges());
    for (size_t u = 0; u < n; ++u)
      EXPECT_EQ(back.Neighbors(static_cast<VertexId>(u)),
                g.Neighbors(static_cast<VertexId>(u)));
  }
}

TEST(Graph6Test, LongFormForLargeGraphs) {
  Graph g = CycleGraph(100);
  std::string encoded = *ToGraph6(g);
  EXPECT_EQ(encoded[0], '~');
  Graph back = *ParseGraph6(encoded);
  EXPECT_EQ(back.num_vertices(), 100u);
  EXPECT_EQ(back.num_edges(), 100u);
}

TEST(Graph6Test, Validation) {
  EXPECT_FALSE(ParseGraph6("").ok());
  EXPECT_FALSE(ParseGraph6("C").ok());         // truncated bit data
  EXPECT_FALSE(ParseGraph6("C~~~~").ok());     // excess data
  EXPECT_FALSE(ParseGraph6(std::string(1, '\x1f')).ok());  // bad byte
  Graph d(3, 1, /*directed=*/true);
  EXPECT_FALSE(ToGraph6(d).ok());
}

TEST(Graph6Test, PetersenRoundTripPreservesIsomorphismClass) {
  Graph p = PetersenGraph();
  Graph back = *ParseGraph6(*ToGraph6(p));
  EXPECT_TRUE(*AreIsomorphic(p, back));
}

}  // namespace
}  // namespace gelc
