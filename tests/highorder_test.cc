// Tests for higher-order and symmetry-breaking architectures (slides 63,
// 71): 2-FGNN (folklore 2-WL power), ID-aware GNNs (strictly above CR),
// and GAT (still CR-bounded).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "gnn/fgnn.h"
#include "gnn/gat.h"
#include "gnn/subgraph.h"
#include "graph/generators.h"
#include "separation/oracles.h"

namespace gelc {
namespace {

TEST(Fgnn2Test, ShapesAndValidation) {
  Rng rng(1);
  Result<Fgnn2Model> model = Fgnn2Model::Random({1, 4}, 0.5, &rng);
  ASSERT_TRUE(model.ok());
  Graph g = CycleGraph(5);
  Matrix pairs = *model->PairEmbeddings(g);
  EXPECT_EQ(pairs.rows(), 25u);
  EXPECT_EQ(pairs.cols(), 4u);
  Matrix e = *model->GraphEmbedding(g);
  EXPECT_EQ(e.rows(), 1u);
  EXPECT_FALSE(Fgnn2Model::Random({1}, 0.5, &rng).ok());
  // Wrong feature dimension rejected.
  Graph wrong(3, 2);
  EXPECT_FALSE(model->GraphEmbedding(wrong).ok());
}

TEST(Fgnn2Test, InvarianceUnderPermutation) {
  Rng rng(2);
  Fgnn2Model model = *Fgnn2Model::Random({1, 4, 4}, 0.6, &rng);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = RandomGnp(7, 0.4, &rng);
    Graph h = g.Permuted(rng.Permutation(7)).value();
    EXPECT_TRUE((*model.GraphEmbedding(g))
                    .AllClose(*model.GraphEmbedding(h), 1e-9));
  }
}

TEST(Fgnn2Test, SeparatesC6FromTwoTriangles) {
  // The pair CR (and hence every MPNN) is blind on; 2-FGNN separates it,
  // matching its folklore-2-WL power.
  auto [c6, two_c3] = Cr_HardPair();
  OraclePtr probe = MakeFgnn2ProbeOracle(8, {6, 6}, 1e-6, 17);
  EXPECT_FALSE(*probe->Equivalent(c6, two_c3));
}

TEST(Fgnn2Test, BlindOnSrgPair) {
  // Folklore 2-WL cannot separate srg(16,6,2,2) graphs; neither may any
  // 2-FGNN.
  auto [shrikhande, rook] = Srg16Pair();
  OraclePtr probe = MakeFgnn2ProbeOracle(6, {5, 5}, 1e-6, 17);
  EXPECT_TRUE(*probe->Equivalent(shrikhande, rook));
}

TEST(Fgnn2Test, SeparatesWhatCrSeparates) {
  OraclePtr probe = MakeFgnn2ProbeOracle(8, {6}, 1e-6, 19);
  EXPECT_FALSE(*probe->Equivalent(PathGraph(4), StarGraph(3)));
  EXPECT_FALSE(*probe->Equivalent(CycleGraph(5), CycleGraph(6)));
}

TEST(IdGnnTest, ShapesAndValidation) {
  Rng rng(3);
  Result<IdGnnModel> model =
      IdGnnModel::Random({1, 5}, Activation::kTanh, 0.5, &rng);
  ASSERT_TRUE(model.ok());
  Graph g = CycleGraph(4);
  Matrix f = *model->VertexEmbeddings(g);
  EXPECT_EQ(f.rows(), 4u);
  EXPECT_EQ(f.cols(), 5u);
  Graph wrong(3, 2);
  EXPECT_FALSE(model->VertexEmbeddings(wrong).ok());
}

TEST(IdGnnTest, InvarianceUnderPermutation) {
  Rng rng(4);
  IdGnnModel model =
      *IdGnnModel::Random({1, 5, 5}, Activation::kTanh, 0.6, &rng);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = RandomGnp(7, 0.4, &rng);
    std::vector<size_t> perm = rng.Permutation(7);
    Graph h = g.Permuted(perm).value();
    Matrix fg = *model.VertexEmbeddings(g);
    Matrix fh = *model.VertexEmbeddings(h);
    for (size_t v = 0; v < 7; ++v)
      EXPECT_TRUE(fg.Row(v).AllClose(fh.Row(perm[v]), 1e-9));
  }
}

TEST(IdGnnTest, SeparatesC6FromTwoTriangles) {
  // Identity marking lets the network notice the 3-cycle returning to the
  // marked vertex — strictly beyond ρ(CR) (slide 71).
  auto [c6, two_c3] = Cr_HardPair();
  OraclePtr probe = MakeIdGnnProbeOracle(8, {6, 6, 6}, 1e-6, 23);
  EXPECT_FALSE(*probe->Equivalent(c6, two_c3));
}

TEST(IdGnnTest, PlainGnnStaysBlindWhereIdGnnSees) {
  auto [c6, two_c3] = Cr_HardPair();
  OraclePtr plain = MakeGnn101ProbeOracle(8, {6, 6, 6}, 1e-6, 23);
  OraclePtr id = MakeIdGnnProbeOracle(8, {6, 6, 6}, 1e-6, 23);
  EXPECT_TRUE(*plain->Equivalent(c6, two_c3));
  EXPECT_FALSE(*id->Equivalent(c6, two_c3));
}

TEST(GatTest, ShapesAndValidation) {
  Rng rng(5);
  Result<GatModel> model = GatModel::Random({2, 6, 4}, 0.5, &rng);
  ASSERT_TRUE(model.ok());
  Graph g(5, 2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  Matrix f = *model->VertexEmbeddings(g);
  EXPECT_EQ(f.rows(), 5u);
  EXPECT_EQ(f.cols(), 4u);
  EXPECT_FALSE(GatModel::Random({2}, 0.5, &rng).ok());
  EXPECT_FALSE(model->VertexEmbeddings(Graph::Unlabeled(3)).ok());
}

TEST(GatTest, AttentionWeightsFormConvexCombination) {
  // With a single layer, identity activation and uniform features, the
  // output of a vertex is a convex combination of its neighbors' z-rows —
  // bounded by the max row.
  Rng rng(6);
  GatModel model = *GatModel::Random({1, 3}, 0.7, &rng);
  Graph g = StarGraph(4);
  Matrix f = *model.VertexEmbeddings(g);
  EXPECT_EQ(f.rows(), 5u);
  // Leaves all have the same single neighbor (the hub): identical rows.
  for (size_t v = 2; v <= 4; ++v)
    EXPECT_TRUE(f.Row(1).AllClose(f.Row(v), 1e-12));
}

TEST(GatTest, InvarianceUnderPermutation) {
  Rng rng(7);
  GatModel model = *GatModel::Random({1, 5, 5}, 0.6, &rng);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = RandomGnp(8, 0.4, &rng);
    Graph h = g.Permuted(rng.Permutation(8)).value();
    EXPECT_TRUE((*model.GraphEmbedding(g))
                    .AllClose(*model.GraphEmbedding(h), 1e-9));
  }
}

TEST(GatTest, CrBoundedOnHardPair) {
  // GAT aggregates by weighted mean: on the CR-equivalent pair every
  // vertex's neighborhood looks identical, so GAT embeddings coincide —
  // the paper's point that attention does not escape MPNN(Ω,Θ).
  auto [c6, two_c3] = Cr_HardPair();
  Rng rng(8);
  for (int trial = 0; trial < 6; ++trial) {
    GatModel model = *GatModel::Random({1, 5, 5}, 0.8, &rng);
    Matrix a = *model.GraphEmbedding(c6);
    Matrix b = *model.GraphEmbedding(two_c3);
    EXPECT_TRUE(a.AllClose(b, 1e-9)) << "trial " << trial;
  }
}

TEST(GatTest, SeparatesLabelledNeighborhoods) {
  // Different leaf-label multisets around the hub are visible to the
  // attention mean.
  Graph s1(3, 2);
  ASSERT_TRUE(s1.AddEdge(0, 1).ok());
  ASSERT_TRUE(s1.AddEdge(0, 2).ok());
  s1.SetOneHotFeature(0, 0);
  s1.SetOneHotFeature(1, 0);
  s1.SetOneHotFeature(2, 1);
  Graph s2 = s1;
  s2.SetOneHotFeature(1, 1);  // both leaves labelled B now
  Rng rng(9);
  bool separated = false;
  for (int trial = 0; trial < 8 && !separated; ++trial) {
    GatModel model = *GatModel::Random({2, 4}, 0.8, &rng);
    separated = (*model.GraphEmbedding(s1))
                    .MaxAbsDiff(*model.GraphEmbedding(s2)) > 1e-6;
  }
  EXPECT_TRUE(separated);
}

}  // namespace
}  // namespace gelc
