// Tests for the exact isomorphism oracle — the paper's "strongest
// separation power" baseline (slide 25).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"

namespace gelc {
namespace {

TEST(IsoTest, IdenticalGraphsAreIsomorphic) {
  Graph g = PetersenGraph();
  Result<bool> r = AreIsomorphic(g, g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(IsoTest, DifferentSizesAreNot) {
  Result<bool> r = AreIsomorphic(PathGraph(3), PathGraph(4));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(IsoTest, SameDegreeSequenceDifferentStructure) {
  // C6 vs 2xC3: both 2-regular on 6 vertices, not isomorphic.
  auto [c6, two_c3] = Cr_HardPair();
  Result<bool> r = AreIsomorphic(c6, two_c3);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(IsoTest, Srg16PairNotIsomorphic) {
  auto [shrikhande, rook] = Srg16Pair();
  Result<bool> r = AreIsomorphic(shrikhande, rook);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(IsoTest, SmallCfiPairNotIsomorphic) {
  Result<std::pair<Graph, Graph>> pair = CfiPair(CycleGraph(4));
  ASSERT_TRUE(pair.ok());
  Result<bool> r = AreIsomorphic(pair->first, pair->second);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(IsoTest, FeatureMismatchBlocksIsomorphism) {
  Graph a = PathGraph(2);
  Graph b = PathGraph(2);
  b.mutable_features().At(0, 0) = 2.0;
  Result<bool> r = AreIsomorphic(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(IsoTest, FeaturePermutationRespected) {
  // Path a-b with labels (1, 2) vs path with labels (2, 1): isomorphic via
  // the flip.
  Graph a = PathGraph(2);
  a.mutable_features().At(0, 0) = 1.0;
  a.mutable_features().At(1, 0) = 2.0;
  Graph b = PathGraph(2);
  b.mutable_features().At(0, 0) = 2.0;
  b.mutable_features().At(1, 0) = 1.0;
  Result<std::optional<std::vector<size_t>>> iso = FindIsomorphism(a, b);
  ASSERT_TRUE(iso.ok());
  ASSERT_TRUE(iso->has_value());
  EXPECT_EQ((**iso)[0], 1u);
  EXPECT_EQ((**iso)[1], 0u);
}

TEST(IsoTest, FoundMappingIsAValidIsomorphism) {
  Rng rng(5);
  Graph g = RandomGnp(14, 0.35, &rng);
  std::vector<size_t> perm = rng.Permutation(14);
  Graph h = g.Permuted(perm).value();
  Result<std::optional<std::vector<size_t>>> iso = FindIsomorphism(g, h);
  ASSERT_TRUE(iso.ok());
  ASSERT_TRUE(iso->has_value());
  const std::vector<size_t>& map = **iso;
  for (size_t u = 0; u < 14; ++u) {
    for (size_t v = 0; v < 14; ++v) {
      EXPECT_EQ(g.HasEdge(static_cast<VertexId>(u), static_cast<VertexId>(v)),
                h.HasEdge(static_cast<VertexId>(map[u]),
                          static_cast<VertexId>(map[v])));
    }
  }
}

class RandomPermutationIsoTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPermutationIsoTest, PermutedGraphAlwaysIsomorphic) {
  Rng rng(GetParam());
  size_t n = 8 + rng.NextBounded(10);
  Graph g = RandomGnp(n, 0.3, &rng);
  for (size_t v = 0; v < n; ++v)
    g.mutable_features().At(v, 0) = static_cast<double>(rng.NextBounded(3));
  Graph h = g.Permuted(rng.Permutation(n)).value();
  Result<bool> r = AreIsomorphic(g, h);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPermutationIsoTest,
                         ::testing::Range<uint64_t>(1, 13));

class RandomNonIsoTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomNonIsoTest, EdgeRemovalBreaksIsomorphism) {
  Rng rng(GetParam() * 977);
  size_t n = 10;
  Graph g = RandomGnp(n, 0.4, &rng);
  if (g.num_edges() == 0) GTEST_SKIP();
  // Remove one edge by rebuilding without it.
  size_t skip = rng.NextBounded(g.num_edges());
  Graph h = Graph::Unlabeled(n);
  size_t seen = 0;
  for (size_t u = 0; u < n; ++u) {
    for (VertexId v : g.Neighbors(static_cast<VertexId>(u))) {
      if (v < u) continue;
      if (seen++ == skip) continue;
      ASSERT_TRUE(h.AddEdge(static_cast<VertexId>(u), v).ok());
    }
  }
  Result<bool> r = AreIsomorphic(g, h);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);  // different edge counts
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNonIsoTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(IsoTest, BudgetExhaustionSurfacesAsError) {
  // A CFI pair over a denser base forces deep search; with a tiny budget
  // the search must fail loudly rather than report a wrong verdict.
  Result<std::pair<Graph, Graph>> pair = CfiPair(CompleteGraph(4));
  ASSERT_TRUE(pair.ok());
  Result<bool> r = AreIsomorphic(pair->first, pair->second, /*max_steps=*/5);
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  } else {
    // If pruning resolved it within budget, the verdict must be "no".
    EXPECT_FALSE(*r);
  }
}

TEST(IsoTest, DirectedOrientationMatters) {
  Graph a(2, 1, /*directed=*/true);
  ASSERT_TRUE(a.AddEdge(0, 1).ok());
  Graph b(2, 1, /*directed=*/true);
  ASSERT_TRUE(b.AddEdge(1, 0).ok());
  // a and b are isomorphic as digraphs (relabel 0<->1).
  Result<bool> r = AreIsomorphic(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);

  // But a 2-path oriented out of the center vs into the center is not.
  Graph out_star(3, 1, true);
  ASSERT_TRUE(out_star.AddEdge(0, 1).ok());
  ASSERT_TRUE(out_star.AddEdge(0, 2).ok());
  Graph mixed(3, 1, true);
  ASSERT_TRUE(mixed.AddEdge(0, 1).ok());
  ASSERT_TRUE(mixed.AddEdge(2, 0).ok());
  Result<bool> r2 = AreIsomorphic(out_star, mixed);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

}  // namespace
}  // namespace gelc
