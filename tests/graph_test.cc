// Unit tests for the graph substrate: Graph, IO, generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "base/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/isomorphism.h"

namespace gelc {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(GraphTest, UndirectedEdgeIsSymmetric) {
  Graph g = Graph::Unlabeled(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(GraphTest, DirectedEdgeIsOneWay) {
  Graph g(3, 1, /*directed=*/true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.InDegree(1), 1u);
  EXPECT_EQ(g.OutDegree(0), 1u);
}

TEST(GraphTest, RejectsSelfLoopsAndDuplicates) {
  Graph g = Graph::Unlabeled(3);
  EXPECT_EQ(g.AddEdge(1, 1).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddEdge(1, 0).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddEdge(0, 9).code(), StatusCode::kOutOfRange);
}

TEST(GraphTest, NeighborsSorted) {
  Graph g = Graph::Unlabeled(5);
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 4).ok());
  EXPECT_EQ(g.Neighbors(0), (std::vector<VertexId>{1, 3, 4}));
}

TEST(GraphTest, OneHotFeatures) {
  Graph g(2, 3);
  g.SetOneHotFeature(0, 2);
  EXPECT_EQ(g.Feature(0), Matrix({{0, 0, 1}}));
  g.SetOneHotFeature(0, 0);
  EXPECT_EQ(g.Feature(0), Matrix({{1, 0, 0}}));
}

TEST(GraphTest, AdjacencyMatrixMatchesEdges) {
  Graph g = CycleGraph(4);
  Matrix a = g.AdjacencyMatrix();
  for (size_t u = 0; u < 4; ++u)
    for (size_t v = 0; v < 4; ++v)
      EXPECT_EQ(a.At(u, v) == 1.0,
                g.HasEdge(static_cast<VertexId>(u),
                          static_cast<VertexId>(v)));
}

TEST(GraphTest, MeanAdjacencyRowsSumToOne) {
  Graph g = StarGraph(4);
  Matrix a = g.MeanAdjacencyMatrix();
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    double s = 0;
    for (size_t u = 0; u < g.num_vertices(); ++u) s += a.At(v, u);
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(GraphTest, PermutedPreservesStructure) {
  Rng rng(1);
  Graph g = RandomGnp(12, 0.3, &rng);
  for (size_t v = 0; v < g.num_vertices(); ++v)
    g.mutable_features().At(v, 0) = static_cast<double>(v % 3);
  std::vector<size_t> perm = rng.Permutation(12);
  Result<Graph> h = g.Permuted(perm);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_edges(), g.num_edges());
  for (size_t u = 0; u < 12; ++u) {
    EXPECT_EQ(h->features().At(perm[u], 0), g.features().At(u, 0));
    for (size_t v = 0; v < 12; ++v) {
      EXPECT_EQ(g.HasEdge(static_cast<VertexId>(u), static_cast<VertexId>(v)),
                h->HasEdge(static_cast<VertexId>(perm[u]),
                           static_cast<VertexId>(perm[v])));
    }
  }
}

TEST(GraphTest, PermutedRejectsBadPermutation) {
  Graph g = Graph::Unlabeled(3);
  EXPECT_FALSE(g.Permuted({0, 1}).ok());
  EXPECT_FALSE(g.Permuted({0, 1, 1}).ok());
  EXPECT_FALSE(g.Permuted({0, 1, 5}).ok());
}

TEST(GraphTest, DisjointUnionCounts) {
  Result<Graph> u = Graph::DisjointUnion(CycleGraph(3), PathGraph(4));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->num_vertices(), 7u);
  EXPECT_EQ(u->num_edges(), 6u);
  EXPECT_EQ(u->ConnectedComponents().size(), 2u);
  // No cross edges.
  for (VertexId a = 0; a < 3; ++a)
    for (VertexId b = 3; b < 7; ++b) EXPECT_FALSE(u->HasEdge(a, b));
}

TEST(GraphTest, DisjointUnionRejectsMismatch) {
  Graph a(2, 1);
  Graph b(2, 2);
  EXPECT_FALSE(Graph::DisjointUnion(a, b).ok());
}

TEST(GraphTest, ConnectedComponentsOfPath) {
  EXPECT_EQ(PathGraph(5).ConnectedComponents().size(), 1u);
  EXPECT_EQ(Graph::Unlabeled(4).ConnectedComponents().size(), 4u);
}

TEST(GraphTest, DegreeSequence) {
  EXPECT_EQ(StarGraph(3).DegreeSequence(), (std::vector<size_t>{1, 1, 1, 3}));
  EXPECT_EQ(CycleGraph(5).DegreeSequence(),
            (std::vector<size_t>(5, 2)));
}

// --- generators ---

TEST(GeneratorsTest, PathCycleCompleteCounts) {
  EXPECT_EQ(PathGraph(6).num_edges(), 5u);
  EXPECT_EQ(CycleGraph(6).num_edges(), 6u);
  EXPECT_EQ(CompleteGraph(6).num_edges(), 15u);
  EXPECT_EQ(CompleteBipartite(3, 4).num_edges(), 12u);
  EXPECT_EQ(GridGraph(3, 4).num_edges(), 17u);
}

TEST(GeneratorsTest, PetersenIsThreeRegularGirthFive) {
  Graph p = PetersenGraph();
  EXPECT_EQ(p.num_vertices(), 10u);
  EXPECT_EQ(p.num_edges(), 15u);
  EXPECT_EQ(p.DegreeSequence(), std::vector<size_t>(10, 3));
  // No triangles or 4-cycles: count closed walks via adjacency powers.
  Matrix a = p.AdjacencyMatrix();
  Matrix a3 = a.MatMul(a).MatMul(a);
  for (size_t v = 0; v < 10; ++v) EXPECT_EQ(a3.At(v, v), 0.0);
}

TEST(GeneratorsTest, HypercubeStructure) {
  Result<Graph> q3 = HypercubeGraph(3);
  ASSERT_TRUE(q3.ok());
  EXPECT_EQ(q3->num_vertices(), 8u);
  EXPECT_EQ(q3->num_edges(), 12u);
  EXPECT_EQ(q3->DegreeSequence(), std::vector<size_t>(8, 3));
  // Bipartite: no odd closed walks.
  Matrix a = q3->AdjacencyMatrix();
  Matrix a3 = a.MatMul(a).MatMul(a);
  for (size_t v = 0; v < 8; ++v) EXPECT_EQ(a3.At(v, v), 0.0);
  EXPECT_FALSE(HypercubeGraph(0).ok());
  EXPECT_FALSE(HypercubeGraph(17).ok());
}

TEST(GeneratorsTest, KneserFiveTwoIsPetersen) {
  Result<Graph> k52 = KneserGraph(5, 2);
  ASSERT_TRUE(k52.ok());
  EXPECT_EQ(k52->num_vertices(), 10u);
  EXPECT_EQ(k52->num_edges(), 15u);
  Result<bool> iso = AreIsomorphic(*k52, PetersenGraph());
  ASSERT_TRUE(iso.ok());
  EXPECT_TRUE(*iso);
  EXPECT_FALSE(KneserGraph(3, 2).ok());  // n < 2k
  EXPECT_FALSE(KneserGraph(4, 0).ok());
}

TEST(GeneratorsTest, CirculantDegrees) {
  Result<Graph> c = CirculantGraph(8, {1, 2});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->DegreeSequence(), std::vector<size_t>(8, 4));
  EXPECT_FALSE(CirculantGraph(8, {0}).ok());
  EXPECT_FALSE(CirculantGraph(8, {9}).ok());
}

TEST(GeneratorsTest, Srg16PairParameters) {
  auto [shrikhande, rook] = Srg16Pair();
  for (const Graph* g : {&shrikhande, &rook}) {
    EXPECT_EQ(g->num_vertices(), 16u);
    EXPECT_EQ(g->num_edges(), 48u);
    EXPECT_EQ(g->DegreeSequence(), std::vector<size_t>(16, 6));
    // srg(16,6,2,2): every pair of adjacent vertices has exactly 2 common
    // neighbors, every non-adjacent pair also exactly 2.
    Matrix a = g->AdjacencyMatrix();
    Matrix a2 = a.MatMul(a);
    for (size_t u = 0; u < 16; ++u) {
      for (size_t v = 0; v < 16; ++v) {
        if (u == v) continue;
        EXPECT_EQ(a2.At(u, v), 2.0) << "common neighbors of " << u << "," << v;
      }
    }
  }
}

TEST(GeneratorsTest, RandomGnpEdgeDensity) {
  Rng rng(42);
  Graph g = RandomGnp(60, 0.2, &rng);
  double max_edges = 60.0 * 59.0 / 2.0;
  double density = static_cast<double>(g.num_edges()) / max_edges;
  EXPECT_NEAR(density, 0.2, 0.05);
}

TEST(GeneratorsTest, RandomTreeIsTree) {
  Rng rng(7);
  for (size_t n : {2u, 5u, 17u, 40u}) {
    Graph t = RandomTree(n, &rng);
    EXPECT_EQ(t.num_edges(), n - 1);
    EXPECT_EQ(t.ConnectedComponents().size(), 1u);
  }
}

TEST(GeneratorsTest, RandomRegularDegrees) {
  Rng rng(11);
  Result<Graph> g = RandomRegular(16, 3, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->DegreeSequence(), std::vector<size_t>(16, 3));
  EXPECT_FALSE(RandomRegular(5, 3, &rng).ok());  // odd n*d
  EXPECT_FALSE(RandomRegular(4, 4, &rng).ok());  // d >= n
}

TEST(GeneratorsTest, SbmBlocksBalanced) {
  Rng rng(13);
  SbmGraph sbm = RandomSbm(40, 4, 0.5, 0.05, &rng);
  std::vector<size_t> counts(4, 0);
  for (size_t b : sbm.blocks) ++counts[b];
  for (size_t c : counts) EXPECT_EQ(c, 10u);
}

TEST(GeneratorsTest, CfiPairShapes) {
  Graph base = CycleGraph(4);
  Result<std::pair<Graph, Graph>> pair = CfiPair(base);
  ASSERT_TRUE(pair.ok());
  const Graph& untwisted = pair->first;
  const Graph& twisted = pair->second;
  // Cycle base: 2 even subsets per degree-2 vertex, 2 vertices per edge.
  EXPECT_EQ(untwisted.num_vertices(), 2 * 4 + 2 * 4);
  EXPECT_EQ(twisted.num_vertices(), untwisted.num_vertices());
  EXPECT_EQ(untwisted.num_edges(), twisted.num_edges());
  EXPECT_EQ(untwisted.DegreeSequence(), twisted.DegreeSequence());
}

TEST(GeneratorsTest, CfiOfCycleIsTwoCyclesVsOneCycle) {
  // Classic fact: the untwisted CFI companion of C_n is disconnected (two
  // n-cycle-like sheets), the twisted one is a single component.
  Result<std::pair<Graph, Graph>> pair = CfiPair(CycleGraph(5));
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->first.ConnectedComponents().size(), 2u);
  EXPECT_EQ(pair->second.ConnectedComponents().size(), 1u);
}

TEST(GeneratorsTest, CfiRejectsBadBases) {
  EXPECT_FALSE(CfiPair(Graph::Unlabeled(3)).ok());  // no edges/disconnected
  Graph directed(3, 1, /*directed=*/true);
  EXPECT_FALSE(CfiPair(directed).ok());
}

TEST(GeneratorsTest, MoleculesHaveBothClassesAndRings) {
  Rng rng(17);
  GraphDataset ds = SyntheticMolecules(20, &rng);
  ASSERT_EQ(ds.graphs.size(), 20u);
  size_t positives = 0;
  for (size_t i = 0; i < ds.graphs.size(); ++i) {
    if (ds.labels[i] == 1) {
      ++positives;
      // Positive molecules contain a cycle: m >= n.
      EXPECT_GE(ds.graphs[i].num_edges(), ds.graphs[i].num_vertices());
    } else {
      // Negatives are trees.
      EXPECT_EQ(ds.graphs[i].num_edges(), ds.graphs[i].num_vertices() - 1);
    }
  }
  EXPECT_EQ(positives, 10u);
}

TEST(GeneratorsTest, CitationsSplitsPartitionVertices) {
  Rng rng(19);
  NodeDataset ds = SyntheticCitations(60, 3, 0.1, &rng);
  EXPECT_EQ(ds.graph.num_vertices(), 60u);
  std::set<size_t> all(ds.train_nodes.begin(), ds.train_nodes.end());
  all.insert(ds.test_nodes.begin(), ds.test_nodes.end());
  EXPECT_EQ(all.size(), 60u);
  EXPECT_EQ(ds.train_nodes.size() + ds.test_nodes.size(), 60u);
}

TEST(GeneratorsTest, LinkDatasetPositivesAreRealHeldOutEdges) {
  Rng rng(23);
  LinkDataset ds = SyntheticSocialLinks(50, &rng);
  EXPECT_FALSE(ds.train_pairs.empty());
  EXPECT_EQ(ds.train_pairs.size(), ds.train_labels.size());
  EXPECT_EQ(ds.test_pairs.size(), ds.test_labels.size());
  // Held-out positive pairs must not appear in the observed graph.
  for (size_t i = 0; i < ds.train_pairs.size(); ++i) {
    if (ds.train_labels[i] == 1) {
      EXPECT_FALSE(
          ds.graph.HasEdge(ds.train_pairs[i].first, ds.train_pairs[i].second));
    }
  }
}

// --- IO ---

TEST(IoTest, RoundTrip) {
  Rng rng(29);
  Graph g = RandomGnp(10, 0.4, &rng);
  g.mutable_features().At(3, 0) = 0.25;
  Result<Graph> back = ParseGraphText(SerializeGraphText(g));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_vertices(), g.num_vertices());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  EXPECT_EQ(back->features(), g.features());
  for (size_t u = 0; u < 10; ++u)
    EXPECT_EQ(back->Neighbors(static_cast<VertexId>(u)),
              g.Neighbors(static_cast<VertexId>(u)));
}

TEST(IoTest, ParsesCommentsAndBlankLines) {
  Result<Graph> g = ParseGraphText(
      "# a triangle\n"
      "graph 3 1 0\n"
      "\n"
      "v 0 1.0\n"
      "e 0 1  # first edge\n"
      "e 1 2\n"
      "e 0 2\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_EQ(g->features().At(0, 0), 1.0);
}

TEST(IoTest, ErrorsCarryLineNumbers) {
  Result<Graph> g = ParseGraphText("graph 2 1 0\ne 0 5\n");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
  EXPECT_FALSE(ParseGraphText("e 0 1\n").ok());       // edge before header
  EXPECT_FALSE(ParseGraphText("graph 2 1 0\nx\n").ok());  // unknown record
  EXPECT_FALSE(ParseGraphText("").ok());              // no header
}

TEST(IoTest, DirectedRoundTrip) {
  Graph g(3, 1, /*directed=*/true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 0).ok());
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  Result<Graph> back = ParseGraphText(SerializeGraphText(g));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->directed());
  EXPECT_EQ(back->num_arcs(), 3u);
  EXPECT_TRUE(back->HasEdge(2, 0));
  EXPECT_FALSE(back->HasEdge(0, 2));
}

TEST(IoTest, DotOutputMentionsAllEdges) {
  Graph g = PathGraph(3);
  std::string dot = g.ToDot("p3");
  EXPECT_NE(dot.find("graph p3"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
}

}  // namespace
}  // namespace gelc
