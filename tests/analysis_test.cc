// Tests for static analysis: variable width (GEL^k classification) and the
// MPNN-fragment checker (slides 35, 62).
#include <gtest/gtest.h>

#include "core/analysis.h"

namespace gelc {
namespace {

ExprPtr DegreeExpr() {
  return *Expr::Aggregate(theta::Sum(1), VarBit(1), *Expr::Constant({1.0}),
                          *Expr::Edge(0, 1));
}

TEST(AnalysisTest, WidthOfAtoms) {
  EXPECT_EQ(VariableWidth(*Expr::Label(0, 0)), 1u);
  EXPECT_EQ(VariableWidth(*Expr::Edge(0, 1)), 2u);
  EXPECT_EQ(VariableWidth(*Expr::Constant({1.0})), 0u);
  EXPECT_EQ(VariableWidth(nullptr), 0u);
}

TEST(AnalysisTest, WidthCountsBoundVariables) {
  ExprPtr deg = DegreeExpr();
  EXPECT_EQ(VariableWidth(deg), 2u);
  // Width-3 triangle guard.
  ExprPtr g = *Expr::Apply(
      omega::Multiply(1),
      {*Expr::Apply(omega::Multiply(1), {*Expr::Edge(0, 1),
                                         *Expr::Edge(1, 2)}),
       *Expr::Edge(2, 0)});
  ExprPtr tri = *Expr::Aggregate(theta::Sum(1), VarBit(1) | VarBit(2),
                                 *Expr::Constant({1.0}), g);
  EXPECT_EQ(VariableWidth(tri), 3u);
}

TEST(AnalysisTest, DegreeIsMpnnFragment) {
  EXPECT_TRUE(CheckMpnnFragment(DegreeExpr()).ok());
}

TEST(AnalysisTest, ReadoutIsMpnnFragment) {
  ExprPtr readout =
      *Expr::Aggregate(theta::Sum(1), VarBit(0), DegreeExpr(), nullptr);
  EXPECT_TRUE(CheckMpnnFragment(readout).ok());
}

TEST(AnalysisTest, ThirdVariableBreaksFragment) {
  ExprPtr deg_x1 = *Expr::Aggregate(theta::Sum(1), VarBit(2),
                                    *Expr::Constant({1.0}),
                                    *Expr::Edge(1, 2));
  ExprPtr two_hop = *Expr::Aggregate(theta::Sum(1), VarBit(1), deg_x1,
                                     *Expr::Edge(0, 1));
  Status s = CheckMpnnFragment(two_hop);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("x2"), std::string::npos);
}

TEST(AnalysisTest, UnguardedEdgeAtomBreaksFragment) {
  // An edge atom used as a value, not a guard.
  ExprPtr raw_edge = *Expr::Aggregate(theta::Sum(1), VarBit(1),
                                      *Expr::Edge(0, 1), nullptr);
  Status s = CheckMpnnFragment(raw_edge);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("edge atom"), std::string::npos);
}

TEST(AnalysisTest, EqualityAtomBreaksFragment) {
  ExprPtr eq = *Expr::Compare(0, 1, CmpOp::kNeq);
  ExprPtr agg = *Expr::Aggregate(theta::Sum(1), VarBit(1),
                                 *Expr::Constant({1.0}), eq);
  EXPECT_FALSE(CheckMpnnFragment(agg).ok());
}

TEST(AnalysisTest, NonEdgeGuardBreaksFragment) {
  // Guard that is a function application, not a bare edge atom.
  ExprPtr guard = *Expr::Apply(omega::Multiply(1),
                               {*Expr::Edge(0, 1), *Expr::Edge(0, 1)});
  ExprPtr agg = *Expr::Aggregate(theta::Sum(1), VarBit(1),
                                 *Expr::Constant({1.0}), guard);
  EXPECT_FALSE(CheckMpnnFragment(agg).ok());
}

TEST(AnalysisTest, MultiVariableBindingBreaksFragment) {
  ExprPtr guard = *Expr::Edge(0, 1);
  // Aggregate binding both x0 and x1 at once.
  ExprPtr agg = *Expr::Aggregate(theta::Sum(1), VarBit(0) | VarBit(1),
                                 *Expr::Constant({1.0}), guard);
  EXPECT_FALSE(CheckMpnnFragment(agg).ok());
}

TEST(AnalysisTest, GlobalAggregateOverForeignVariableBreaksFragment) {
  // Global aggregate of lab(x0) binding x1: value mentions a variable it
  // does not bind.
  ExprPtr agg = *Expr::Aggregate(theta::Sum(1), VarBit(1),
                                 *Expr::Label(0, 0), nullptr);
  EXPECT_FALSE(CheckMpnnFragment(agg).ok());
}

TEST(AnalysisTest, AnalyzeSummary) {
  ExprAnalysis a = Analyze(DegreeExpr());
  EXPECT_EQ(a.dim, 1u);
  EXPECT_EQ(a.width, 2u);
  EXPECT_EQ(a.aggregation_depth, 1u);
  EXPECT_TRUE(a.is_mpnn_fragment);
  EXPECT_NE(a.separation_bound.find("color refinement"), std::string::npos);

  ExprPtr g3 = *Expr::Apply(
      omega::Multiply(1),
      {*Expr::Apply(omega::Multiply(1), {*Expr::Edge(0, 1),
                                         *Expr::Edge(1, 2)}),
       *Expr::Edge(2, 0)});
  ExprPtr tri = *Expr::Aggregate(theta::Sum(1), VarBit(1) | VarBit(2),
                                 *Expr::Constant({1.0}), g3);
  ExprAnalysis a3 = Analyze(tri);
  EXPECT_FALSE(a3.is_mpnn_fragment);
  EXPECT_EQ(a3.separation_bound, "2-WL");
}

TEST(AnalysisTest, NullAnalyzeIsEmpty) {
  ExprAnalysis a = Analyze(nullptr);
  EXPECT_EQ(a.dim, 0u);
  EXPECT_EQ(a.width, 0u);
}

}  // namespace
}  // namespace gelc
