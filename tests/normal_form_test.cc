// Tests for the layered normal form (slide 55): normalized programs agree
// exactly with direct expression evaluation.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/compile_gnn.h"
#include "core/eval.h"
#include "core/normal_form.h"
#include "graph/generators.h"

namespace gelc {
namespace {

ExprPtr DegreeExpr() {
  return *Expr::Aggregate(theta::Sum(1), VarBit(1), *Expr::Constant({1.0}),
                          *Expr::Edge(0, 1));
}

TEST(NormalFormTest, RejectsNonFragmentExpressions) {
  ExprPtr g3 = *Expr::Apply(
      omega::Multiply(1),
      {*Expr::Apply(omega::Multiply(1), {*Expr::Edge(0, 1),
                                         *Expr::Edge(1, 2)}),
       *Expr::Edge(2, 0)});
  ExprPtr tri = *Expr::Aggregate(theta::Sum(1), VarBit(1) | VarBit(2),
                                 *Expr::Constant({1.0}), g3);
  EXPECT_FALSE(NormalFormProgram::Normalize(tri).ok());
}

TEST(NormalFormTest, DegreeSingleLayer) {
  Result<NormalFormProgram> p = NormalFormProgram::Normalize(DegreeExpr());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_layers(), 1u);
  EXPECT_EQ(p->num_aggregates(), 1u);
  Graph star = StarGraph(3);
  Matrix out = *p->Run(star);
  EXPECT_EQ(out.At(0, 0), 3.0);
  EXPECT_EQ(out.At(1, 0), 1.0);
}

TEST(NormalFormTest, InterleavedFunctionsAndAggregates) {
  // relu(deg(x0) - 2) + deg(x0), free-form shape mixing Apply around and
  // after aggregation.
  ExprPtr deg = DegreeExpr();
  ExprPtr lin = *Expr::Apply(
      *omega::Linear({1}, Matrix({{1.0}}), Matrix({{-2.0}})), {deg});
  ExprPtr relu = *Expr::Apply(omega::ActivationFn(Activation::kReLU, 1),
                              {lin});
  ExprPtr total = *Expr::Apply(omega::Add(1), {relu, deg});
  Result<NormalFormProgram> p = NormalFormProgram::Normalize(total);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_layers(), 1u);

  Graph g = StarGraph(4);
  Evaluator eval(g);
  Matrix direct = *eval.EvalVertex(total);
  Matrix layered = *p->Run(g);
  EXPECT_TRUE(direct.AllClose(layered, 1e-12));
}

TEST(NormalFormTest, NestedAggregatesBecomeLayers) {
  // Two rounds: sum over neighbors of (sum over their neighbors of 1).
  ExprPtr inner = *Expr::Aggregate(theta::Sum(1), VarBit(0),
                                   *Expr::Constant({1.0}),
                                   *Expr::Edge(1, 0));
  ExprPtr outer = *Expr::Aggregate(theta::Sum(1), VarBit(1), inner,
                                   *Expr::Edge(0, 1));
  Result<NormalFormProgram> p = NormalFormProgram::Normalize(outer);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_layers(), 2u);
  EXPECT_EQ(p->num_aggregates(), 2u);

  Graph g = PathGraph(4);
  Evaluator eval(g);
  EXPECT_TRUE((*eval.EvalVertex(outer)).AllClose(*p->Run(g), 1e-12));
  EXPECT_NE(p->Describe().find("layer 2"), std::string::npos);
}

TEST(NormalFormTest, GlobalReadoutIsFinalStage) {
  ExprPtr readout = *Expr::Aggregate(theta::Sum(1), VarBit(0), DegreeExpr(),
                                     nullptr);
  Result<NormalFormProgram> p = NormalFormProgram::Normalize(readout);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_layers(), 2u);
  Graph g = CycleGraph(5);
  Matrix out = *p->Run(g);
  EXPECT_EQ(out.rows(), 1u);
  EXPECT_EQ(out.At(0, 0), 10.0);  // 2m
  Evaluator eval(g);
  EXPECT_EQ((*eval.EvalClosed(readout))[0], 10.0);
}

TEST(NormalFormTest, MeanAndMaxAggregatesSupported) {
  for (const ThetaPtr& t : {theta::Mean(1), theta::Max(1)}) {
    ExprPtr agg = *Expr::Aggregate(t, VarBit(1), *Expr::Label(0, 1),
                                   *Expr::Edge(0, 1));
    Result<NormalFormProgram> p = NormalFormProgram::Normalize(agg);
    ASSERT_TRUE(p.ok());
    Rng rng(3);
    Graph g = RandomGnp(8, 0.4, &rng);
    for (size_t v = 0; v < 8; ++v)
      g.mutable_features().At(v, 0) = static_cast<double>(v);
    Evaluator eval(g);
    EXPECT_TRUE((*eval.EvalVertex(agg)).AllClose(*p->Run(g), 1e-12))
        << t->name;
  }
}

// Property test: compiled GNN-101 expressions are MPNN-fragment, and their
// normal form agrees with direct evaluation and with the network itself.
class NormalFormGnnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NormalFormGnnTest, NormalizedCompiledGnnMatchesNetwork) {
  Rng rng(GetParam() * 31337);
  Gnn101Model model =
      *Gnn101Model::Random({1, 4, 4}, Activation::kTanh, 0.6, &rng);
  ExprPtr expr = *CompileGnn101ToGel(model);
  Result<NormalFormProgram> p = NormalFormProgram::Normalize(expr);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_layers(), model.num_layers());

  Graph g = RandomGnp(7 + rng.NextBounded(4), 0.4, &rng);
  Matrix network = *model.VertexEmbeddings(g);
  Matrix layered = *p->Run(g);
  Evaluator eval(g);
  Matrix direct = *eval.EvalVertex(expr);
  EXPECT_TRUE(network.AllClose(layered, 1e-9));
  EXPECT_TRUE(network.AllClose(direct, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalFormGnnTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace gelc
