// Tests for the parallel execution layer (base/parallel.h) and the
// determinism contract of the hot paths wired into it: identical bits for
// any thread count.
#include "base/parallel.h"

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"
#include "graph/generators.h"
#include "tensor/matrix.h"
#include "wl/color_refinement.h"
#include "wl/kernel.h"
#include "wl/kwl.h"

namespace gelc {
namespace {

// Forces a thread count for one scope, restoring the env/hardware default
// on exit.
struct ScopedThreads {
  explicit ScopedThreads(size_t n) { SetParallelThreadCount(n); }
  ~ScopedThreads() { SetParallelThreadCount(0); }
};

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ScopedThreads threads(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, 7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyAndSingletonRanges) {
  ScopedThreads threads(4);
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  ParallelFor(5, 6, 1, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 5u);
    EXPECT_EQ(end, 6u);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, PoolIsReusedAcrossCalls) {
  ScopedThreads threads(4);
  // The pool's own test observes worker identities directly; this is the
  // one sanctioned consumer of raw thread primitives outside base/parallel.
  std::mutex mu;  // NOLINT(raw-thread)
  std::set<std::thread::id> worker_ids GELC_GUARDED_BY(mu);  // NOLINT(raw-thread)
  for (int rep = 0; rep < 50; ++rep) {
    std::atomic<long> sum{0};
    ParallelFor(0, 400, 1, [&](size_t begin, size_t end) {
      long local = 0;
      for (size_t i = begin; i < end; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
      if (InParallelWorker()) {
        std::lock_guard<std::mutex> lock(mu);  // NOLINT(raw-thread)
        worker_ids.insert(std::this_thread::get_id());
      }
    });
    EXPECT_EQ(sum.load(), 400L * 399L / 2);
  }
  // 50 invocations at 4 threads reuse the same (at most 3) pool workers
  // rather than spawning threads per call.
  EXPECT_LE(worker_ids.size(), 3u);
}

TEST(ParallelForTest, PropagatesShardException) {
  ScopedThreads threads(4);
  EXPECT_THROW(ParallelFor(0, 100, 1,
                           [](size_t begin, size_t) {
                             if (begin >= 50) {
                               throw std::runtime_error("shard boom");
                             }
                           }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> count{0};
  ParallelFor(0, 64, 1, [&](size_t begin, size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelForTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ScopedThreads threads(4);
  std::atomic<long> total{0};
  ParallelFor(0, 8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // An inner loop invoked from a pool worker must not wait on the
      // pool's own queue; it runs inline as one call covering the range.
      bool on_worker = InParallelWorker();
      std::atomic<long> inner{0};
      std::atomic<int> inner_calls{0};
      ParallelFor(0, 100, 1, [&](size_t b, size_t e) {
        inner_calls.fetch_add(1);
        long local = 0;
        for (size_t x = b; x < e; ++x) local += static_cast<long>(x);
        inner.fetch_add(local);
      });
      if (on_worker) {
        EXPECT_EQ(inner_calls.load(), 1);
      }
      total.fetch_add(inner.load());
    }
  });
  EXPECT_EQ(total.load(), 8L * (100L * 99L / 2));
}

TEST(ParallelMapTest, ResultsInIndexOrder) {
  ScopedThreads threads(4);
  std::vector<size_t> squares = ParallelMap(
      257, 3, [](size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 257u);
  for (size_t i = 0; i < squares.size(); ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelConfigTest, OverrideAndRestore) {
  SetParallelThreadCount(3);
  EXPECT_EQ(ParallelThreadCount(), 3u);
  SetParallelThreadCount(0);
  EXPECT_GE(ParallelThreadCount(), 1u);
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  return Matrix::RandomUniform(rows, cols, -1.0, 1.0, &rng);
}

TEST(MatMulParallelTest, BitIdenticalAcrossThreadCounts) {
  Matrix a = RandomMatrix(300, 150, 1);
  Matrix b = RandomMatrix(150, 200, 2);
  Matrix serial, parallel;
  {
    ScopedThreads threads(1);
    serial = a.MatMul(b);
  }
  {
    ScopedThreads threads(4);
    parallel = a.MatMul(b);
  }
  EXPECT_TRUE(serial == parallel);
}

TEST(MatMulIntoTest, MatchesMatMulAndReusesStorage) {
  Matrix a = RandomMatrix(40, 30, 3);
  Matrix b = RandomMatrix(30, 20, 4);
  Matrix out;
  a.MatMulInto(b, &out);
  EXPECT_TRUE(out == a.MatMul(b));
  // A second product of the same shape reuses the buffer in place.
  const double* storage = out.data().data();
  Matrix c = RandomMatrix(40, 30, 5);
  c.MatMulInto(b, &out);
  EXPECT_EQ(out.data().data(), storage);
  EXPECT_TRUE(out == c.MatMul(b));
  // Shape changes reshape the output.
  Matrix d = RandomMatrix(7, 40, 6);
  d.MatMulInto(a, &out);
  EXPECT_EQ(out.rows(), 7u);
  EXPECT_EQ(out.cols(), 30u);
  EXPECT_TRUE(out == d.MatMul(a));
}

std::vector<const Graph*> Pointers(const std::vector<Graph>& graphs) {
  std::vector<const Graph*> out;
  for (const Graph& g : graphs) out.push_back(&g);
  return out;
}

std::vector<Graph> DeterminismGraphs() {
  Rng rng(11);
  std::vector<Graph> graphs;
  graphs.push_back(PetersenGraph());
  graphs.push_back(CycleGraph(9));
  graphs.push_back(PathGraph(17));
  for (int i = 0; i < 6; ++i) graphs.push_back(RandomGnp(40, 0.15, &rng));
  return graphs;
}

TEST(WlDeterminismTest, ColorRefinementStableColorsThreadInvariant) {
  std::vector<Graph> graphs = DeterminismGraphs();
  CrColoring serial, parallel;
  {
    ScopedThreads threads(1);
    serial = RunColorRefinement(Pointers(graphs));
  }
  {
    ScopedThreads threads(4);
    parallel = RunColorRefinement(Pointers(graphs));
  }
  EXPECT_EQ(serial.rounds, parallel.rounds);
  EXPECT_EQ(serial.stable, parallel.stable);
  EXPECT_EQ(serial.history, parallel.history);
}

TEST(WlDeterminismTest, KwlStableColorsThreadInvariant) {
  auto [shr, rook] = Srg16Pair();
  for (size_t k = 2; k <= 3; ++k) {
    KwlColoring serial, parallel;
    {
      ScopedThreads threads(1);
      auto result = RunKwl({&shr, &rook}, k);
      ASSERT_TRUE(result.ok());
      serial = std::move(*result);
    }
    {
      ScopedThreads threads(4);
      auto result = RunKwl({&shr, &rook}, k);
      ASSERT_TRUE(result.ok());
      parallel = std::move(*result);
    }
    EXPECT_EQ(serial.rounds, parallel.rounds) << "k=" << k;
    EXPECT_EQ(serial.stable, parallel.stable) << "k=" << k;
  }
}

TEST(WlDeterminismTest, ObliviousKwlStableColorsThreadInvariant) {
  Graph a = CycleGraph(6);
  Graph b = CycleGraph(7);
  KwlColoring serial, parallel;
  {
    ScopedThreads threads(1);
    auto result = RunObliviousKwl({&a, &b}, 2);
    ASSERT_TRUE(result.ok());
    serial = std::move(*result);
  }
  {
    ScopedThreads threads(4);
    auto result = RunObliviousKwl({&a, &b}, 2);
    ASSERT_TRUE(result.ok());
    parallel = std::move(*result);
  }
  EXPECT_EQ(serial.rounds, parallel.rounds);
  EXPECT_EQ(serial.stable, parallel.stable);
}

TEST(WlDeterminismTest, SubtreeKernelMatrixThreadInvariant) {
  Rng rng(23);
  std::vector<Graph> graphs;
  for (int i = 0; i < 24; ++i) graphs.push_back(RandomGnp(24, 0.2, &rng));
  Matrix serial, parallel;
  {
    ScopedThreads threads(1);
    auto result = WlSubtreeKernelMatrix(Pointers(graphs), 3);
    ASSERT_TRUE(result.ok());
    serial = std::move(*result);
  }
  {
    ScopedThreads threads(4);
    auto result = WlSubtreeKernelMatrix(Pointers(graphs), 3);
    ASSERT_TRUE(result.ok());
    parallel = std::move(*result);
  }
  // Bit-for-bit: the Gram entries are doubles compared exactly.
  EXPECT_TRUE(serial == parallel);
}

}  // namespace
}  // namespace gelc
