// Tests for the GEL query compiler (core/plan_compile.h), the plan IR
// (core/plan.h) and the fused executor (core/plan_exec.h):
//   - golden plan dumps witnessing CSE, guard pushdown and the opt-in
//     aggregation reorder;
//   - differential fuzz: compiled plans are bit-identical to
//     Evaluator::Eval at forced thread counts 1 and 4;
//   - the bit-identity triangle: plan == interpreter == hand-written
//     GNN forward for GNN-101, GIN, MPNN and (via direct model lowering)
//     GCN;
//   - the structural plan cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "base/parallel.h"
#include "base/rng.h"
#include "core/compile_gnn.h"
#include "core/eval.h"
#include "core/plan.h"
#include "core/plan_compile.h"
#include "core/plan_exec.h"
#include "gnn/gnn101.h"
#include "gnn/mpnn.h"
#include "graph/generators.h"

namespace gelc {
namespace {

constexpr size_t kFeatureDim = 3;

Graph RandomFeatureGraph(Rng* rng, size_t max_n = 9) {
  size_t n = 3 + rng->NextBounded(max_n - 2);
  bool directed = rng->NextBernoulli(0.3);
  Graph g(n, kFeatureDim, directed);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = 0; v < n; ++v) {
      if (u == v || (!directed && v < u)) continue;
      if (rng->NextBernoulli(0.3)) {
        EXPECT_TRUE(g.AddEdge(static_cast<VertexId>(u),
                              static_cast<VertexId>(v))
                        .ok());
      }
    }
  }
  for (size_t v = 0; v < n; ++v) {
    for (size_t j = 0; j < kFeatureDim; ++j) {
      g.mutable_features().At(v, j) = rng->NextUniform(-1, 1);
    }
  }
  return g;
}

// Random well-typed expression inside the plannable fragment: free
// variables a subset of {var}, output dimension `dim`.
ExprPtr RandomPlanExpr(Rng* rng, Var var, size_t depth, size_t dim) {
  if (depth == 0) {
    if (dim == 1 && rng->NextBounded(2) == 0) {
      return *Expr::Label(rng->NextBounded(kFeatureDim), var);
    }
    std::vector<double> c(dim);
    for (double& x : c) x = rng->NextUniform(-1, 1);
    return *Expr::Constant(std::move(c));
  }
  switch (rng->NextBounded(8)) {
    case 0: {
      Activation acts[] = {Activation::kReLU, Activation::kTanh,
                           Activation::kSigmoid};
      return *Expr::Apply(omega::ActivationFn(acts[rng->NextBounded(3)], dim),
                          {RandomPlanExpr(rng, var, depth - 1, dim)});
    }
    case 1:
      return *Expr::Apply(omega::Add(dim),
                          {RandomPlanExpr(rng, var, depth - 1, dim),
                           RandomPlanExpr(rng, var, depth - 1, dim)});
    case 2:
      return *Expr::Apply(omega::Multiply(dim),
                          {RandomPlanExpr(rng, var, depth - 1, dim),
                           RandomPlanExpr(rng, var, depth - 1, dim)});
    case 3:
      return *Expr::Apply(omega::Scale(rng->NextUniform(-2, 2), dim),
                          {RandomPlanExpr(rng, var, depth - 1, dim)});
    case 4: {
      size_t arity = 1 + rng->NextBounded(2);
      std::vector<size_t> dims;
      std::vector<ExprPtr> children;
      size_t total = 0;
      for (size_t i = 0; i < arity; ++i) {
        size_t d = 1 + rng->NextBounded(3);
        dims.push_back(d);
        total += d;
        children.push_back(RandomPlanExpr(rng, var, depth - 1, d));
      }
      return *Expr::Apply(
          *omega::Linear(dims, Matrix::RandomGaussian(total, dim, 0.5, rng),
                         Matrix::RandomGaussian(1, dim, 0.5, rng)),
          std::move(children));
    }
    case 5: {
      size_t wide = dim + 1 + rng->NextBounded(2);
      size_t begin = rng->NextBounded(wide - dim + 1);
      return *Expr::Apply(*omega::Project(wide, begin, dim),
                          {RandomPlanExpr(rng, var, depth - 1, wide)});
    }
    case 6: {
      size_t in = 1 + rng->NextBounded(3);
      size_t hidden = 1 + rng->NextBounded(3);
      std::vector<MlpLayer> layers;
      layers.push_back({Matrix::RandomGaussian(in, hidden, 0.5, rng),
                        Matrix::RandomGaussian(1, hidden, 0.5, rng),
                        Activation::kReLU});
      layers.push_back({Matrix::RandomGaussian(hidden, dim, 0.5, rng),
                        Matrix::RandomGaussian(1, dim, 0.5, rng),
                        Activation::kIdentity});
      return *Expr::Apply(
          *omega::FromMlp({in}, Mlp(std::move(layers))),
          {RandomPlanExpr(rng, var, depth - 1, in)});
    }
    default: {
      Var bound = var == 0 ? 1 : 0;
      ExprPtr guard = rng->NextBounded(2) ? *Expr::Edge(var, bound)
                                          : *Expr::Edge(bound, var);
      size_t flavor = rng->NextBounded(4);
      if (flavor == 3 && dim == 1) {
        // Guarded count (degree-flavored); the value is ignored.
        size_t vd = 1 + rng->NextBounded(2);
        return *Expr::Aggregate(theta::Count(vd), VarBit(bound),
                                RandomPlanExpr(rng, bound, depth - 1, vd),
                                std::move(guard));
      }
      ThetaPtr agg = flavor == 2   ? theta::Max(dim)
                     : flavor == 1 ? theta::Mean(dim)
                                   : theta::Sum(dim);
      // Value over the bound variable (neighbor gather), the outer
      // variable (source gather) or closed (broadcast gather).
      size_t gather = rng->NextBounded(3);
      ExprPtr value;
      if (gather == 0) {
        value = RandomPlanExpr(rng, bound, depth - 1, dim);
      } else if (gather == 1) {
        value = RandomPlanExpr(rng, var, depth - 1, dim);
      } else {
        std::vector<double> c(dim);
        for (double& x : c) x = rng->NextUniform(-1, 1);
        value = *Expr::Constant(std::move(c));
      }
      return *Expr::Aggregate(std::move(agg), VarBit(bound),
                              std::move(value), std::move(guard));
    }
  }
}

ExprPtr DegreeExpr(Var outer, Var bound) {
  return *Expr::Aggregate(theta::Sum(1), VarBit(bound),
                          *Expr::Constant({1.0}),
                          *Expr::Edge(outer, bound));
}

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a.At(i, j), b.At(i, j))
          << what << " differs at (" << i << "," << j << ")";
    }
  }
}

// -- Golden plan dumps -------------------------------------------------------

TEST(PlanDumpTest, DegreeGuardPushesDownToOutTraversal) {
  CompileStats stats;
  PlanPtr plan = *CompileToPlan(DegreeExpr(0, 1), PlanOptions{}, &stats);
  EXPECT_EQ(plan->ToString(),
            "%0 = const [1] : global[1]\n"
            "%1 = neighbor_agg sum out broadcast %0 : vertex[1]\n"
            "result: %1\n");
  EXPECT_EQ(stats.guard_pushdowns, 1u);
}

TEST(PlanDumpTest, ReversedGuardUsesInTraversal) {
  // E(x1, x0) with x1 bound: x1 ranges over in-neighbors of x0.
  ExprPtr e = *Expr::Aggregate(theta::Sum(1), VarBit(1),
                               *Expr::Constant({1.0}), *Expr::Edge(1, 0));
  PlanPtr plan = *CompileToPlan(e);
  EXPECT_EQ(plan->ToString(),
            "%0 = const [1] : global[1]\n"
            "%1 = neighbor_agg sum in broadcast %0 : vertex[1]\n"
            "result: %1\n");
}

TEST(PlanDumpTest, StructurallyIdenticalSubtreesShareOneSlot) {
  // Two independently built (pointer-distinct) degree aggregates: value
  // numbering collapses them to one neighbor_agg (CSE).
  ExprPtr e = *Expr::Apply(omega::Add(1), {DegreeExpr(0, 1), DegreeExpr(0, 1)});
  CompileStats stats;
  PlanPtr plan = *CompileToPlan(e, PlanOptions{}, &stats);
  EXPECT_EQ(plan->ToString(),
            "%0 = const [1] : global[1]\n"
            "%1 = neighbor_agg sum out broadcast %0 : vertex[1]\n"
            "%2 = add %1 %1 : vertex[1]\n"
            "result: %2\n");
  EXPECT_GE(stats.cse_hits, 2u);  // the const and the whole aggregate
}

TEST(PlanDumpTest, CseIsStructuralNotAlphaSensitive) {
  // Same aggregate with different binder names: binder minimization
  // canonicalizes both to the same plan ops.
  ExprPtr e = *Expr::Apply(omega::Add(1), {DegreeExpr(0, 1), DegreeExpr(0, 2)});
  CompileStats stats;
  PlanPtr plan = *CompileToPlan(e, PlanOptions{}, &stats);
  EXPECT_EQ(plan->ops.size(), 3u);
  EXPECT_GE(stats.cse_hits, 2u);
}

TEST(PlanDumpTest, ReassociationReordersAggregateAndLinear) {
  // agg_sum(linear_nobias_{1->3}(lab0(x1)) | E(x0,x1)).
  ExprPtr lin = *Expr::Apply(
      *omega::Linear({1}, Matrix({{0.5, -1.0, 2.0}}), Matrix(1, 3)),
      {*Expr::Label(0, 1)});
  ExprPtr e = *Expr::Aggregate(theta::Sum(3), VarBit(1), lin,
                               *Expr::Edge(0, 1));

  CompileStats off_stats;
  PlanPtr off = *CompileToPlan(e, PlanOptions{}, &off_stats);
  EXPECT_EQ(off->ToString(),
            "%0 = load_labels cols=[0] : vertex[1]\n"
            "%1 = fused_layer [%0*w[1x3]] +bias : vertex[3]\n"
            "%2 = neighbor_agg sum out neighbor %1 : vertex[3]\n"
            "result: %2\n");
  EXPECT_EQ(off_stats.reassociations, 0u);

  PlanOptions reassoc;
  reassoc.reassociate = true;
  CompileStats on_stats;
  PlanPtr on = *CompileToPlan(e, reassoc, &on_stats);
  // The reorder swaps the aggregate ahead of the linear map, and the
  // absorption pass then fuses the pair into one CSR pass: aggregate
  // first ("agg(...)%0"), then the 1x3 map — the opposite order of the
  // default plan above.
  EXPECT_EQ(on->ToString(),
            "%0 = load_labels cols=[0] : vertex[1]\n"
            "%1 = fused_layer [agg(sum,out,neighbor)%0*w[1x3]] +bias"
            " : vertex[3]\n"
            "result: %1\n");
  EXPECT_EQ(on_stats.reassociations, 1u);

  // The reorder is exact in real arithmetic: results agree to tolerance.
  Rng rng(11);
  Graph g = RandomFeatureGraph(&rng);
  Matrix a = *ExecutePlan(*off, g);
  Matrix b = *ExecutePlan(*on, g);
  ASSERT_EQ(a.rows(), b.rows());
  for (size_t v = 0; v < a.rows(); ++v) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a.At(v, j), b.At(v, j), 1e-12);
    }
  }
}

TEST(PlanCompileTest, RejectsPairTablesAndOddGuards) {
  // An edge atom used as a value is a pair table: not plannable.
  ExprPtr edge = *Expr::Edge(0, 1);
  EXPECT_FALSE(CompileToPlan(edge).ok());
  // Non-edge guard: falls back to the interpreter.
  ExprPtr guarded = *Expr::Aggregate(
      theta::Count(1), VarBit(1), *Expr::Constant({1.0}),
      *Expr::Apply(omega::Multiply(1),
                   {*Expr::Edge(0, 1), *Expr::Compare(0, 1, CmpOp::kNeq)}));
  EXPECT_FALSE(CompileToPlan(guarded).ok());
  // Two free variables: not a vertex table.
  ExprPtr two = *Expr::Apply(omega::Add(1),
                             {*Expr::Label(0, 0), *Expr::Label(0, 1)});
  EXPECT_FALSE(CompileToPlan(two).ok());
}

// -- Fusion witnesses --------------------------------------------------------

TEST(PlanFusionTest, Gnn101LayerAbsorbsAggregateAndActivation) {
  Rng rng(7);
  Gnn101Model model =
      *Gnn101Model::Random({kFeatureDim, 4, 4}, Activation::kReLU, 0.5, &rng);
  CompileStats stats;
  PlanPtr plan =
      *CompileToPlan(*CompileGnn101ToGel(model), PlanOptions{}, &stats);
  EXPECT_GE(stats.aggregate_absorptions, 2u);  // one per layer
  EXPECT_GE(stats.activation_fusions, 2u);
  std::string dump = plan->ToString();
  EXPECT_NE(dump.find("agg(sum,out,neighbor)"), std::string::npos) << dump;
  EXPECT_NE(dump.find("act=relu"), std::string::npos) << dump;
  // No standalone aggregation or activation ops survive.
  EXPECT_EQ(dump.find("neighbor_agg"), std::string::npos) << dump;
  EXPECT_EQ(dump.find("activation"), std::string::npos) << dump;
}

TEST(PlanFusionTest, GinCombineFusesScaleAddAndAggregate) {
  Rng rng(8);
  GinModel model = *GinModel::Random({kFeatureDim, 4, 4}, 0.5, &rng);
  CompileStats stats;
  PlanPtr plan =
      *CompileToPlan(*CompileGinToGel(model), PlanOptions{}, &stats);
  EXPECT_GE(stats.gin_fusions, 2u);
  EXPECT_NE(plan->ToString().find("gin_combine"), std::string::npos)
      << plan->ToString();
}

TEST(PlanFusionTest, ReadoutFusesPoolIntoFinalMap) {
  Rng rng(9);
  Gnn101Model model =
      *Gnn101Model::Random({kFeatureDim, 4, 4}, Activation::kReLU, 0.5, &rng);
  CompileStats stats;
  PlanPtr plan =
      *CompileToPlan(*CompileGnn101GraphToGel(model), PlanOptions{}, &stats);
  EXPECT_GE(stats.readout_fusions, 1u);
  EXPECT_NE(plan->ToString().find("pool_readout"), std::string::npos)
      << plan->ToString();
}

TEST(PlanFusionTest, LabelLoadsCoalesceIntoOneCopy) {
  Rng rng(10);
  Gnn101Model model =
      *Gnn101Model::Random({kFeatureDim, 4}, Activation::kReLU, 0.5, &rng);
  CompileStats stats;
  PlanPtr plan =
      *CompileToPlan(*CompileGnn101ToGel(model), PlanOptions{}, &stats);
  EXPECT_GE(stats.label_coalesces, 1u);
  EXPECT_NE(plan->ToString().find("load_labels cols=[0,1,2]"),
            std::string::npos)
      << plan->ToString();
}

// -- The bit-identity triangle ----------------------------------------------

TEST(PlanBitIdentityTest, Gnn101PlanInterpreterAndHandForwardAgree) {
  Rng rng(21);
  Gnn101Model model =
      *Gnn101Model::Random({kFeatureDim, 5, 4}, Activation::kReLU, 0.5, &rng);
  Graph g = RandomFeatureGraph(&rng);
  Matrix hand = *model.VertexEmbeddings(g);

  ExprPtr gel = *CompileGnn101ToGel(model);
  Evaluator ev(g);
  Matrix interp = *ev.EvalVertex(gel);
  ExpectBitEqual(hand, interp, "hand vs interpreter");

  Matrix plan_out = *ExecutePlan(**CompileToPlan(gel), g);
  ExpectBitEqual(hand, plan_out, "hand vs plan");

  // Graph embedding: the closed readout expression, all three paths.
  Matrix ghand = *model.GraphEmbedding(g);
  ExprPtr closed = *CompileGnn101GraphToGel(model);
  std::vector<double> ivec = *ev.EvalClosed(closed);
  Matrix gplan = *ExecutePlan(**CompileToPlan(closed), g);
  ASSERT_EQ(ivec.size(), ghand.cols());
  ASSERT_EQ(gplan.cols(), ghand.cols());
  for (size_t j = 0; j < ivec.size(); ++j) {
    EXPECT_EQ(ghand.At(0, j), ivec[j]) << "readout " << j;
    EXPECT_EQ(ghand.At(0, j), gplan.At(0, j)) << "readout " << j;
  }
}

TEST(PlanBitIdentityTest, GinPlanInterpreterAndHandForwardAgree) {
  Rng rng(22);
  GinModel model = *GinModel::Random({kFeatureDim, 4, 4}, 0.5, &rng);
  Graph g = RandomFeatureGraph(&rng);
  Matrix hand = *model.VertexEmbeddings(g);
  ExprPtr gel = *CompileGinToGel(model);
  Evaluator ev(g);
  ExpectBitEqual(hand, *ev.EvalVertex(gel), "hand vs interpreter");
  ExpectBitEqual(hand, *ExecutePlan(**CompileToPlan(gel), g),
                 "hand vs plan");
}

TEST(PlanBitIdentityTest, MpnnPlanInterpreterAndHandForwardAgree) {
  Rng rng(23);
  MpnnModel model =
      *MpnnModel::Random({kFeatureDim, 4, 4}, Aggregation::kMean, 0.5, &rng);
  Graph g = RandomFeatureGraph(&rng);
  Matrix hand = *model.VertexEmbeddings(g);
  ExprPtr gel = *CompileMpnnToGel(model);
  Evaluator ev(g);
  ExpectBitEqual(hand, *ev.EvalVertex(gel), "hand vs interpreter");
  ExpectBitEqual(hand, *ExecutePlan(**CompileToPlan(gel), g),
                 "hand vs plan");
}

TEST(PlanBitIdentityTest, GcnDirectLoweringMatchesHandForward) {
  Rng rng(24);
  GcnModel model = *GcnModel::Random({kFeatureDim, 4, 3}, 0.5, &rng);
  Graph g = RandomFeatureGraph(&rng);
  Matrix hand = *model.VertexEmbeddings(g);
  PlanPtr plan = *CompileGcnToPlan(model);
  ExpectBitEqual(hand, *ExecutePlan(*plan, g), "hand vs plan");
  EXPECT_NE(plan->ToString().find("agg(sum,norm,neighbor)"),
            std::string::npos)
      << plan->ToString();
}

// -- Differential fuzz -------------------------------------------------------

class PlanDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanDifferentialFuzz, PlanBitIdenticalToInterpreterAtAnyThreadCount) {
  Rng rng(GetParam() * 92821 + 5);
  size_t dim = 1 + rng.NextBounded(3);
  ExprPtr e = RandomPlanExpr(&rng, 0, 1 + rng.NextBounded(3), dim);
  Graph g = RandomFeatureGraph(&rng);
  Evaluator ev(g);
  Result<PlanPtr> plan = CompileToPlan(e);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString() << "\n"
                         << e->ToString();

  SetParallelThreadCount(1);
  Matrix serial = *ExecutePlan(**plan, g);
  SetParallelThreadCount(4);
  Matrix parallel = *ExecutePlan(**plan, g);
  SetParallelThreadCount(0);
  ExpectBitEqual(serial, parallel, e->ToString().c_str());

  if (e->free_vars() == 0) {
    std::vector<double> ivec = *ev.EvalClosed(e);
    ASSERT_EQ(serial.rows(), 1u);
    ASSERT_EQ(serial.cols(), ivec.size());
    for (size_t j = 0; j < ivec.size(); ++j) {
      EXPECT_EQ(serial.At(0, j), ivec[j]) << e->ToString();
    }
  } else {
    Matrix interp = *ev.EvalVertex(e);
    ExpectBitEqual(interp, serial, e->ToString().c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanDifferentialFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{40}));

// -- Escape hatches and edge cases ------------------------------------------

TEST(PlanExecTest, OpaqueOmegaAndThetaStillExecuteBitEqual) {
  // A hand-rolled clamp function and a sum-of-squares aggregate, neither
  // known to the optimizer: the plan runs them through the original
  // closures and still matches the interpreter exactly.
  auto clamp = std::make_shared<OmegaFn>();
  clamp->name = "clamp";
  clamp->arg_dims = {1};
  clamp->out_dim = 1;
  clamp->fn = [](const std::vector<const double*>& args, double* out) {
    out[0] = std::min(1.0, std::max(-1.0, args[0][0]));
  };
  auto sqsum = std::make_shared<ThetaAgg>();
  sqsum->name = "sqsum";
  sqsum->in_dim = 1;
  sqsum->out_dim = 1;
  sqsum->init = [](double* acc) { acc[0] = 0.0; };
  sqsum->accumulate = [](double* acc, const double* x) {
    acc[0] += x[0] * x[0];
  };
  sqsum->finalize = [](double*, size_t) {};

  ExprPtr e = *Expr::Apply(
      OmegaPtr(clamp),
      {*Expr::Aggregate(ThetaPtr(sqsum), VarBit(1), *Expr::Label(0, 1),
                        *Expr::Edge(0, 1))});
  Rng rng(31);
  Graph g = RandomFeatureGraph(&rng);
  Evaluator ev(g);
  Matrix interp = *ev.EvalVertex(e);
  Matrix plan_out = *ExecutePlan(**CompileToPlan(e), g);
  ExpectBitEqual(interp, plan_out, "opaque ops");
}

TEST(PlanExecTest, EmptyGraphAndIsolatedVertices) {
  ExprPtr deg = DegreeExpr(0, 1);
  Graph empty(0, kFeatureDim);
  Matrix m = *ExecutePlan(**CompileToPlan(deg), empty);
  EXPECT_EQ(m.rows(), 0u);
  // Max over an empty neighborhood finalizes to zero, like theta::Max.
  ExprPtr mx = *Expr::Aggregate(theta::Max(1), VarBit(1),
                                *Expr::Label(0, 1), *Expr::Edge(0, 1));
  Graph isolated(3, kFeatureDim);  // no edges at all
  for (size_t v = 0; v < 3; ++v) {
    isolated.mutable_features().At(v, 0) = -5.0;
  }
  Evaluator ev(isolated);
  Matrix interp = *ev.EvalVertex(mx);
  Matrix plan_out = *ExecutePlan(**CompileToPlan(mx), isolated);
  ExpectBitEqual(interp, plan_out, "isolated max");
  EXPECT_EQ(plan_out.At(0, 0), 0.0);
}

TEST(PlanExecTest, LabelIndexValidatedAtExecution) {
  ExprPtr e = *Expr::Label(2, 0);
  PlanPtr plan = *CompileToPlan(e);
  Graph narrow(3, 1);  // feature dim 1 < label index 2
  EXPECT_FALSE(ExecutePlan(*plan, narrow).ok());
}

// -- Plan cache --------------------------------------------------------------

TEST(PlanCacheTest, AlphaEquivalentQueriesShareOnePlan) {
  PlanCache cache;
  // Same query with different binder names: one compilation, one entry.
  PlanPtr a = *cache.GetOrCompile(DegreeExpr(0, 1));
  PlanPtr b = *cache.GetOrCompile(DegreeExpr(0, 2));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // A structurally different query compiles separately.
  ExprPtr other = *Expr::Aggregate(theta::Mean(1), VarBit(1),
                                   *Expr::Constant({1.0}),
                                   *Expr::Edge(0, 1));
  PlanPtr c = *cache.GetOrCompile(other);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PlanCacheTest, NonPlannableExpressionsPropagateAndAreNotCached) {
  PlanCache cache;
  ExprPtr edge = *Expr::Edge(0, 1);
  EXPECT_FALSE(cache.GetOrCompile(edge).ok());
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace gelc
