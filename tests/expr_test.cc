// Tests for GEL(Ω,Θ) expression construction and validation.
#include <gtest/gtest.h>

#include "core/expr.h"

namespace gelc {
namespace {

TEST(VarSetTest, Basics) {
  VarSet s = VarBit(0) | VarBit(3);
  EXPECT_TRUE(VarSetContains(s, 0));
  EXPECT_FALSE(VarSetContains(s, 1));
  EXPECT_EQ(VarSetSize(s), 2u);
  EXPECT_EQ(VarSetList(s), (std::vector<Var>{0, 3}));
  EXPECT_EQ(VarSetToString(s), "x0,x3");
}

TEST(ExprTest, LabelAtom) {
  Result<ExprPtr> e = Expr::Label(2, 1);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), Expr::Kind::kLabel);
  EXPECT_EQ((*e)->dim(), 1u);
  EXPECT_EQ((*e)->free_vars(), VarBit(1));
  EXPECT_EQ((*e)->ToString(), "lab2(x1)");
  EXPECT_FALSE(Expr::Label(0, kMaxVariables).ok());
}

TEST(ExprTest, EdgeAtom) {
  Result<ExprPtr> e = Expr::Edge(0, 1);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->free_vars(), VarBit(0) | VarBit(1));
  EXPECT_FALSE(Expr::Edge(1, 1).ok());
  EXPECT_FALSE(Expr::Edge(0, 99).ok());
}

TEST(ExprTest, CompareAtom) {
  Result<ExprPtr> e = Expr::Compare(0, 2, CmpOp::kNeq);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "1[x0!=x2]");
  EXPECT_FALSE(Expr::Compare(3, 3, CmpOp::kEq).ok());
}

TEST(ExprTest, ConstantDimension) {
  Result<ExprPtr> e = Expr::Constant({1.0, 2.0, 3.0});
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->dim(), 3u);
  EXPECT_EQ((*e)->free_vars(), 0u);
  EXPECT_FALSE(Expr::Constant({}).ok());
}

TEST(ExprTest, ApplyChecksArityAndDims) {
  ExprPtr a = *Expr::Label(0, 0);
  ExprPtr b = *Expr::Label(1, 1);
  OmegaPtr add = omega::Add(1);
  Result<ExprPtr> good = Expr::Apply(add, {a, b});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ((*good)->dim(), 1u);
  EXPECT_EQ((*good)->free_vars(), VarBit(0) | VarBit(1));

  EXPECT_FALSE(Expr::Apply(add, {a}).ok());          // arity
  ExprPtr c2 = *Expr::Constant({1.0, 2.0});
  EXPECT_FALSE(Expr::Apply(add, {a, c2}).ok());      // dim mismatch
  EXPECT_FALSE(Expr::Apply(nullptr, {a, b}).ok());   // null fn
  EXPECT_FALSE(Expr::Apply(add, {a, nullptr}).ok()); // null child
}

TEST(ExprTest, AggregateBindingAndFreeVars) {
  ExprPtr val = *Expr::Label(0, 1);
  ExprPtr guard = *Expr::Edge(0, 1);
  Result<ExprPtr> agg = Expr::Aggregate(theta::Sum(1), VarBit(1), val, guard);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ((*agg)->free_vars(), VarBit(0));
  EXPECT_EQ((*agg)->all_vars(), VarBit(0) | VarBit(1));
  EXPECT_EQ((*agg)->bound_vars(), VarBit(1));
  EXPECT_EQ((*agg)->AggregationDepth(), 1u);
}

TEST(ExprTest, AggregateValidation) {
  ExprPtr val = *Expr::Label(0, 1);
  EXPECT_FALSE(Expr::Aggregate(nullptr, VarBit(1), val, nullptr).ok());
  EXPECT_FALSE(Expr::Aggregate(theta::Sum(1), 0, val, nullptr).ok());
  EXPECT_FALSE(Expr::Aggregate(theta::Sum(1), VarBit(1), nullptr,
                               nullptr).ok());
  // Dim mismatch: sum over R^2 fed a 1-dim value.
  EXPECT_FALSE(Expr::Aggregate(theta::Sum(2), VarBit(1), val, nullptr).ok());
}

TEST(ExprTest, GlobalAggregateClosesExpression) {
  ExprPtr val = *Expr::Label(0, 0);
  Result<ExprPtr> agg = Expr::Aggregate(theta::Sum(1), VarBit(0), val,
                                        nullptr);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ((*agg)->free_vars(), 0u);
  EXPECT_EQ((*agg)->guard(), nullptr);
}

TEST(ExprTest, NestedAggregationDepth) {
  ExprPtr inner = *Expr::Aggregate(theta::Sum(1), VarBit(1),
                                   *Expr::Label(0, 1), *Expr::Edge(0, 1));
  ExprPtr outer = *Expr::Aggregate(theta::Sum(1), VarBit(0), inner, nullptr);
  EXPECT_EQ(outer->AggregationDepth(), 2u);
  EXPECT_EQ(outer->free_vars(), 0u);
}

TEST(ExprTest, TreeSizeCountsGuard) {
  ExprPtr e = *Expr::Aggregate(theta::Sum(1), VarBit(1),
                               *Expr::Constant({1.0}), *Expr::Edge(0, 1));
  EXPECT_EQ(e->TreeSize(), 3u);  // agg + const + guard
}

TEST(ExprTest, ToStringAggregate) {
  ExprPtr e = *Expr::Aggregate(theta::Mean(1), VarBit(1),
                               *Expr::Label(0, 1), *Expr::Edge(0, 1));
  EXPECT_EQ(e->ToString(), "agg[mean]_{x1}(lab0(x1) | E(x0,x1))");
}

TEST(OmegaTest, ConcatDims) {
  OmegaPtr c = omega::Concat({2, 3});
  EXPECT_EQ(c->out_dim, 5u);
  EXPECT_EQ(c->total_in_dim(), 5u);
  double a[] = {1, 2};
  double b[] = {3, 4, 5};
  double out[5];
  c->fn({a, b}, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[4], 5);
}

TEST(OmegaTest, LinearValidatesShapes) {
  EXPECT_FALSE(omega::Linear({2}, Matrix(3, 2), Matrix(1, 2)).ok());
  EXPECT_FALSE(omega::Linear({2}, Matrix(2, 2), Matrix(1, 3)).ok());
  Result<OmegaPtr> lin =
      omega::Linear({1, 1}, Matrix({{2.0}, {3.0}}), Matrix({{1.0}}));
  ASSERT_TRUE(lin.ok());
  double a = 10, b = 100;
  double out;
  (*lin)->fn({&a, &b}, &out);
  EXPECT_EQ(out, 2 * 10 + 3 * 100 + 1);
}

TEST(OmegaTest, ProjectValidatesRange) {
  EXPECT_FALSE(omega::Project(3, 2, 2).ok());
  EXPECT_FALSE(omega::Project(3, 0, 0).ok());
  Result<OmegaPtr> p = omega::Project(3, 1, 2);
  ASSERT_TRUE(p.ok());
  double in[] = {7, 8, 9};
  double out[2];
  (*p)->fn({in}, out);
  EXPECT_EQ(out[0], 8);
  EXPECT_EQ(out[1], 9);
}

TEST(ThetaTest, AggregateSemantics) {
  auto run = [](const ThetaPtr& t, const std::vector<std::vector<double>>& bag) {
    std::vector<double> acc(t->out_dim);
    t->init(acc.data());
    for (const auto& x : bag) t->accumulate(acc.data(), x.data());
    t->finalize(acc.data(), bag.size());
    return acc;
  };
  std::vector<std::vector<double>> bag = {{1, 5}, {3, -2}, {2, 0}};
  EXPECT_EQ(run(theta::Sum(2), bag), (std::vector<double>{6, 3}));
  EXPECT_EQ(run(theta::Mean(2), bag), (std::vector<double>{2, 1}));
  EXPECT_EQ(run(theta::Max(2), bag), (std::vector<double>{3, 5}));
  EXPECT_EQ(run(theta::Count(2), bag), (std::vector<double>{3}));
  // Empty bags.
  EXPECT_EQ(run(theta::Sum(2), {}), (std::vector<double>{0, 0}));
  EXPECT_EQ(run(theta::Mean(2), {}), (std::vector<double>{0, 0}));
  EXPECT_EQ(run(theta::Max(2), {}), (std::vector<double>{0, 0}));
  EXPECT_EQ(run(theta::Count(2), {}), (std::vector<double>{0}));
}

}  // namespace
}  // namespace gelc
