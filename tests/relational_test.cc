// Tests for multi-relational graphs, relational color refinement and
// relational GNNs (slide 74: "Weisfeiler and Leman Go Relational").
#include <gtest/gtest.h>

#include "base/rng.h"
#include "graph/relational.h"
#include "wl/color_refinement.h"

namespace gelc {
namespace {

// Two 2-relation graphs on a 4-cycle skeleton that collapse to the same
// union graph (C4) but color the edges differently:
//   A: relation 0 = {01, 23}, relation 1 = {12, 30}  (alternating)
//   B: relation 0 = {01, 12}, relation 1 = {23, 30}  (two adjacent each)
std::pair<RelationalGraph, RelationalGraph> AlternatingVsAdjacent() {
  RelationalGraph a(4, 2, 1);
  EXPECT_TRUE(a.AddEdge(0, 0, 1).ok());
  EXPECT_TRUE(a.AddEdge(0, 2, 3).ok());
  EXPECT_TRUE(a.AddEdge(1, 1, 2).ok());
  EXPECT_TRUE(a.AddEdge(1, 3, 0).ok());
  RelationalGraph b(4, 2, 1);
  EXPECT_TRUE(b.AddEdge(0, 0, 1).ok());
  EXPECT_TRUE(b.AddEdge(0, 1, 2).ok());
  EXPECT_TRUE(b.AddEdge(1, 2, 3).ok());
  EXPECT_TRUE(b.AddEdge(1, 3, 0).ok());
  for (VertexId v = 0; v < 4; ++v) {
    a.SetOneHotFeature(v, 0);
    b.SetOneHotFeature(v, 0);
  }
  return {std::move(a), std::move(b)};
}

TEST(RelationalGraphTest, EdgeApiAndValidation) {
  RelationalGraph g(3, 2, 1);
  ASSERT_TRUE(g.AddEdge(0, 0, 1).ok());
  EXPECT_TRUE(g.HasEdge(0, 0, 1));
  EXPECT_TRUE(g.HasEdge(0, 1, 0));
  EXPECT_FALSE(g.HasEdge(1, 0, 1));  // other relation untouched
  EXPECT_EQ(g.AddEdge(0, 0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddEdge(5, 0, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddEdge(0, 0, 9).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddEdge(0, 1, 1).code(), StatusCode::kInvalidArgument);
  // The same vertex pair may appear in several relations.
  ASSERT_TRUE(g.AddEdge(1, 0, 1).ok());
  EXPECT_TRUE(g.HasEdge(1, 0, 1));
}

TEST(RelationalGraphTest, CollapseAndProject) {
  auto [a, b] = AlternatingVsAdjacent();
  Graph ua = a.CollapseRelations();
  EXPECT_EQ(ua.num_edges(), 4u);   // the C4 skeleton
  Graph r0 = *a.RelationGraph(0);
  EXPECT_EQ(r0.num_edges(), 2u);
  EXPECT_TRUE(r0.HasEdge(0, 1));
  EXPECT_FALSE(r0.HasEdge(1, 2));
  EXPECT_FALSE(a.RelationGraph(7).ok());
  (void)b;
}

TEST(RelationalCrTest, SeparatesWhatCollapsedCrCannot) {
  // The headline phenomenon of slide 74's reference: relation types carry
  // information the collapsed graph loses.
  auto [a, b] = AlternatingVsAdjacent();
  // Collapsed graphs are both plain C4: CR-equivalent.
  EXPECT_TRUE(CrEquivalentGraphs(a.CollapseRelations(),
                                 b.CollapseRelations()));
  // Relational CR tells them apart (vertex 1 of B has two relation-0
  // neighbors, no vertex of A does).
  EXPECT_FALSE(RelationalCrEquivalent(a, b));
}

TEST(RelationalCrTest, InvariantUnderPermutation) {
  Rng rng(3);
  auto [a, b] = AlternatingVsAdjacent();
  for (int trial = 0; trial < 5; ++trial) {
    RelationalGraph pa = *a.Permuted(rng.Permutation(4));
    EXPECT_TRUE(RelationalCrEquivalent(a, pa));
    EXPECT_FALSE(RelationalCrEquivalent(b, pa));
  }
}

TEST(RelationalCrTest, SingleRelationMatchesPlainCr) {
  // With one relation, relational CR degenerates to plain CR.
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    size_t n = 6 + rng.NextBounded(4);
    RelationalGraph rg(n, 1, 1);
    Graph g(n, 1);
    for (size_t u = 0; u < n; ++u) {
      for (size_t v = u + 1; v < n; ++v) {
        if (rng.NextBernoulli(0.4)) {
          ASSERT_TRUE(rg.AddEdge(0, static_cast<VertexId>(u),
                                 static_cast<VertexId>(v))
                          .ok());
          ASSERT_TRUE(g.AddEdge(static_cast<VertexId>(u),
                                static_cast<VertexId>(v))
                          .ok());
        }
      }
      rg.SetOneHotFeature(static_cast<VertexId>(u), 0);
      g.SetOneHotFeature(static_cast<VertexId>(u), 0);
    }
    RelationalCrColoring rc = RunRelationalColorRefinement({&rg});
    CrColoring c = RunColorRefinement({&g});
    // Same partition (colors are interned separately; compare pairwise).
    for (size_t x = 0; x < n; ++x)
      for (size_t y = x + 1; y < n; ++y)
        EXPECT_EQ(rc.stable[0][x] == rc.stable[0][y],
                  c.stable[0][x] == c.stable[0][y]);
  }
}

TEST(RelationalGnnTest, ShapesAndValidation) {
  Rng rng(7);
  Result<RelationalGnn> model = RelationalGnn::Random(
      {1, 5}, 2, Activation::kTanh, 0.5, &rng);
  ASSERT_TRUE(model.ok());
  auto [a, b] = AlternatingVsAdjacent();
  Matrix f = *model->VertexEmbeddings(a);
  EXPECT_EQ(f.rows(), 4u);
  EXPECT_EQ(f.cols(), 5u);
  // Relation-count mismatch.
  RelationalGraph three(4, 3, 1);
  EXPECT_FALSE(model->VertexEmbeddings(three).ok());
  EXPECT_FALSE(
      RelationalGnn::Random({1}, 2, Activation::kTanh, 0.5, &rng).ok());
  EXPECT_FALSE(
      RelationalGnn::Random({1, 4}, 0, Activation::kTanh, 0.5, &rng).ok());
  (void)b;
}

TEST(RelationalGnnTest, InvarianceUnderPermutation) {
  Rng rng(9);
  RelationalGnn model =
      *RelationalGnn::Random({1, 5, 5}, 2, Activation::kTanh, 0.6, &rng);
  auto [a, b] = AlternatingVsAdjacent();
  for (int trial = 0; trial < 4; ++trial) {
    RelationalGraph pa = *a.Permuted(rng.Permutation(4));
    EXPECT_TRUE(
        (*model.GraphEmbedding(a)).AllClose(*model.GraphEmbedding(pa), 1e-9));
  }
  (void)b;
}

TEST(RelationalGnnTest, SeparatesRelationStructure) {
  // Random relational GNNs separate A from B although their collapsed
  // graphs are CR-equivalent — the relational rung sits above plain CR.
  auto [a, b] = AlternatingVsAdjacent();
  Rng rng(11);
  bool separated = false;
  for (int trial = 0; trial < 10 && !separated; ++trial) {
    RelationalGnn model =
        *RelationalGnn::Random({1, 5, 5}, 2, Activation::kTanh, 0.8, &rng);
    separated = (*model.GraphEmbedding(a))
                    .MaxAbsDiff(*model.GraphEmbedding(b)) > 1e-6;
  }
  EXPECT_TRUE(separated);
}

TEST(RelationalGnnTest, BoundedByRelationalCr) {
  // Conversely, relational-CR-equivalent graphs get identical relational
  // GNN embeddings: permuted copies are the canonical example.
  Rng rng(13);
  auto [a, b] = AlternatingVsAdjacent();
  RelationalGraph pa = *a.Permuted(rng.Permutation(4));
  ASSERT_TRUE(RelationalCrEquivalent(a, pa));
  for (int trial = 0; trial < 5; ++trial) {
    RelationalGnn model =
        *RelationalGnn::Random({1, 6, 6}, 2, Activation::kTanh, 0.8, &rng);
    EXPECT_TRUE(
        (*model.GraphEmbedding(a)).AllClose(*model.GraphEmbedding(pa),
                                            1e-9));
  }
  (void)b;
}

}  // namespace
}  // namespace gelc
