// Tests for the sparse execution path: CsrMatrix/SpMM (tensor/sparse.h),
// the cached CsrGraph view (graph/csr.h, Graph::Csr()), the SparseMatMul
// tape op, and the CSR-backed GNN hot paths. The contract under test:
// SpMM is bit-identical to the dense product for any thread count, and no
// GNN forward/backward ever materializes a dense n x n adjacency.
#include "tensor/sparse.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autodiff/tape.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "gnn/gnn101.h"
#include "gnn/mpnn.h"
#include "gnn/trainable.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "obs/config.h"
#include "obs/snapshot.h"

namespace gelc {
namespace {

struct ScopedThreads {
  explicit ScopedThreads(size_t n) { SetParallelThreadCount(n); }
  ~ScopedThreads() { SetParallelThreadCount(0); }
};

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  return Matrix::RandomUniform(rows, cols, -1.0, 1.0, &rng);
}

TEST(CsrMatrixTest, FromDenseToDenseRoundTrip) {
  Matrix m = {{0.0, 2.0, 0.0}, {1.0, 0.0, -3.0}, {0.0, 0.0, 0.0}};
  CsrMatrix csr = CsrMatrix::FromDense(m);
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_TRUE(csr.weighted());
  EXPECT_TRUE(csr.ToDense() == m);
}

TEST(CsrMatrixTest, TransposedMatchesDenseTranspose) {
  Matrix m = RandomMatrix(7, 5, 3).Map([](double x) {
    return x > 0.4 ? x : 0.0;
  });
  CsrMatrix csr = CsrMatrix::FromDense(m);
  EXPECT_TRUE(csr.Transposed().ToDense() == m.Transposed());
}

TEST(CsrGraphTest, MatchesAdjacencyListsOnEmptyAndIsolated) {
  Graph empty;
  EXPECT_EQ(empty.Csr().adjacency().rows, 0u);
  EXPECT_EQ(empty.Csr().adjacency().row_offsets.size(), 1u);

  // 4 vertices, one edge, two isolated vertices.
  Graph g(4, 1);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  const CsrMatrix& a = g.Csr().adjacency();
  EXPECT_EQ(a.nnz(), 2u);  // undirected: both arcs
  EXPECT_EQ(a.row_offsets[1] - a.row_offsets[0], 1u);
  EXPECT_EQ(a.row_offsets[2] - a.row_offsets[1], 0u);  // isolated
  EXPECT_EQ(a.row_offsets[4] - a.row_offsets[3], 0u);  // isolated
  // Isolated vertices still get their self-loop in the GCN operator,
  // with D̃ = 1 so the value is exactly 1.
  const CsrMatrix& norm = g.Csr().normalized();
  EXPECT_EQ(norm.row_offsets[2] - norm.row_offsets[1], 1u);
  EXPECT_EQ(norm.values[norm.row_offsets[1]], 1.0);
}

TEST(CsrGraphTest, DirectedTransposeIsInAdjacency) {
  Graph g(3, 1, /*directed=*/true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 1).ok());
  Matrix a = g.Csr().adjacency().ToDense();
  Matrix at = g.Csr().transpose().ToDense();
  EXPECT_TRUE(at == a.Transposed());
}

TEST(CsrGraphTest, NormalizedMatchesDenseGcnFormula) {
  Rng rng(5);
  Graph g = RandomGnp(30, 0.2, &rng);
  size_t n = g.num_vertices();
  // The dense reference: Ã = A + I, entry (v,u) / sqrt(D̃_vv D̃_uu).
  Matrix a = g.AdjacencyMatrix();
  for (size_t v = 0; v < n; ++v) a.At(v, v) += 1.0;
  std::vector<double> dinv(n);
  for (size_t v = 0; v < n; ++v) {
    double deg = 0.0;
    for (size_t u = 0; u < n; ++u) deg += a.At(v, u);
    dinv[v] = 1.0 / std::sqrt(deg);
  }
  for (size_t v = 0; v < n; ++v)
    for (size_t u = 0; u < n; ++u) a.At(v, u) *= dinv[v] * dinv[u];
  EXPECT_TRUE(g.Csr().normalized().ToDense() == a);
}

TEST(CsrGraphTest, CacheInvalidatedByMutation) {
  Graph g(5, 1);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  const CsrGraph* before = &g.Csr();
  EXPECT_EQ(&g.Csr(), before);  // cached: same snapshot on repeated calls
  EXPECT_EQ(g.Csr().adjacency().nnz(), 2u);
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  EXPECT_EQ(g.Csr().adjacency().nnz(), 4u);  // rebuilt with the new edge
  EXPECT_TRUE(g.Csr().adjacency().ToDense() == g.AdjacencyMatrix());
}

TEST(SpMMTest, BitIdenticalToDenseOnRandomGraphsAnyThreadCount) {
  Rng rng(11);
  // Large enough that the parallel path engages (nnz * d >= 2^16).
  for (size_t n : {40, 200}) {
    Graph g = RandomGnp(n, 0.15, &rng);
    CsrMatrix a = g.Csr().adjacency();
    Matrix dense = g.AdjacencyMatrix();
    Matrix f = RandomMatrix(n, 32, n);
    Matrix expected, serial, parallel;
    {
      ScopedThreads threads(1);
      expected = dense.MatMul(f);
      serial = SpMM(a, f);
    }
    {
      ScopedThreads threads(4);
      parallel = SpMM(a, f);
    }
    EXPECT_TRUE(serial == expected) << "n=" << n;
    EXPECT_TRUE(parallel == expected) << "n=" << n;
  }
}

TEST(SpMMTest, WeightedAndSelfLoopsBitIdenticalToDense) {
  // A CSR with self-loops and weights (the GCN operator shape).
  Rng rng(13);
  Graph g = RandomGnp(120, 0.1, &rng);
  const CsrMatrix& norm = g.Csr().normalized();
  Matrix dense = norm.ToDense();
  Matrix f = RandomMatrix(120, 48, 7);
  Matrix serial, parallel;
  {
    ScopedThreads threads(1);
    serial = SpMM(norm, f);
  }
  {
    ScopedThreads threads(4);
    parallel = SpMM(norm, f);
  }
  EXPECT_TRUE(serial == dense.MatMul(f));
  EXPECT_TRUE(serial == parallel);
}

TEST(SpMMTest, IntoReusesStorage) {
  Rng rng(17);
  Graph g = RandomGnp(30, 0.2, &rng);
  const CsrMatrix& a = g.Csr().adjacency();
  Matrix f = RandomMatrix(30, 8, 1);
  Matrix out;
  SpMMInto(a, f, &out);
  EXPECT_TRUE(out == SpMM(a, f));
  const double* storage = out.data().data();
  Matrix f2 = RandomMatrix(30, 8, 2);
  SpMMInto(a, f2, &out);
  EXPECT_EQ(out.data().data(), storage);
  EXPECT_TRUE(out == SpMM(a, f2));
}

TEST(AggregateNeighborsTest, ThreadInvariantAndMatchesSpMM) {
  Rng rng(19);
  Graph g = RandomGnp(150, 0.12, &rng);
  Matrix f = RandomMatrix(150, 24, 3);
  for (Aggregation agg :
       {Aggregation::kSum, Aggregation::kMean, Aggregation::kMax}) {
    Matrix serial, parallel;
    {
      ScopedThreads threads(1);
      serial = AggregateNeighbors(g, f, agg);
    }
    {
      ScopedThreads threads(4);
      parallel = AggregateNeighbors(g, f, agg);
    }
    EXPECT_TRUE(serial == parallel) << AggregationName(agg);
  }
  EXPECT_TRUE(AggregateNeighbors(g, f, Aggregation::kSum) ==
              SpMM(g.Csr().adjacency(), f));
}

// Central finite differences against the analytic SparseMatMul backward.
void CheckSparseMatMulGradient(const Graph& g, uint64_t seed) {
  size_t n = g.num_vertices();
  size_t d = 3;
  const CsrGraph& csr = g.Csr();
  Rng rng(seed);
  Parameter x(Matrix::RandomGaussian(n, d, 0.5, &rng));
  Matrix target = Matrix::RandomGaussian(n, d, 0.5, &rng);

  auto loss_at = [&](const Matrix& value) {
    Tape tape;
    Parameter probe(value);
    ValueId y = tape.SparseMatMul(&csr.adjacency(), &csr.transpose(),
                                  tape.Param(&probe));
    ValueId loss = tape.Mse(y, target);
    return tape.value(loss).At(0, 0);
  };

  Tape tape;
  ValueId y = tape.SparseMatMul(&csr.adjacency(), &csr.transpose(),
                                tape.Param(&x));
  ValueId loss = tape.Mse(y, target);
  x.ZeroGrad();
  tape.Backward(loss);

  const double eps = 1e-6;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      Matrix plus = x.value, minus = x.value;
      plus.At(i, j) += eps;
      minus.At(i, j) -= eps;
      double fd = (loss_at(plus) - loss_at(minus)) / (2.0 * eps);
      EXPECT_NEAR(x.grad.At(i, j), fd, 1e-5)
          << "entry (" << i << ", " << j << ")";
    }
  }
}

TEST(SparseMatMulTapeTest, GradientMatchesFiniteDifferencesUndirected) {
  Rng rng(23);
  CheckSparseMatMulGradient(RandomGnp(12, 0.3, &rng), 29);
}

TEST(SparseMatMulTapeTest, GradientMatchesFiniteDifferencesDirected) {
  // Directed: backward genuinely needs the transpose CSR (Aᵀ ≠ A).
  Graph g(8, 1, /*directed=*/true);
  Rng rng(31);
  for (size_t u = 0; u < 8; ++u)
    for (size_t v = 0; v < 8; ++v)
      if (u != v && rng.NextUniform(0.0, 1.0) < 0.3) {
        ASSERT_TRUE(g.AddEdge(static_cast<VertexId>(u),
                              static_cast<VertexId>(v)).ok());
      }
  CheckSparseMatMulGradient(g, 37);
}

TEST(SparseMatMulTapeTest, ForwardMatchesDenseMatMulOnTape) {
  Rng rng(41);
  Graph g = RandomGnp(25, 0.2, &rng);
  const CsrGraph& csr = g.Csr();
  Matrix f = RandomMatrix(25, 6, 43);
  Tape tape;
  ValueId b = tape.Input(f);
  ValueId sparse = tape.SparseMatMul(&csr.adjacency(), &csr.transpose(), b);
  ValueId dense = tape.MatMul(tape.Input(g.AdjacencyMatrix()), b);
  EXPECT_TRUE(tape.value(sparse) == tape.value(dense));
}

// Reads the process-wide dense-build counter through the snapshot API —
// the same path gelc_stats uses, and the authoritative location of the
// counter since it moved off the Graph instance into the obs registry.
uint64_t DenseBuildsFromSnapshot() {
  for (const auto& c : obs::Snapshot().counters) {
    if (c.name == "graph.dense_adjacency_builds") return c.value;
  }
  return 0;
}

// The headline guarantee: none of the rewired forward/backward paths
// materializes a dense n x n adjacency. The counter is process-global
// (other tests in this binary may have built dense matrices), so the
// assertions are deltas around this test body, read via obs::Snapshot().
TEST(DenseFreeHotPathTest, ForwardAndTrainingNeverDensifyAdjacency) {
  obs::SetMetricsEnabled(true);  // counters must record for delta reads
  Rng rng(47);
  Graph g = RandomGnp(40, 0.15, &rng);
  const uint64_t before = DenseBuildsFromSnapshot();
  EXPECT_EQ(g.dense_adjacency_builds(), before);  // accessor delegates

  ASSERT_TRUE(
      Gnn101Model::Random({1, 8, 8}, Activation::kReLU, 0.5, &rng)
          ->VertexEmbeddings(g)
          .ok());
  ASSERT_TRUE(MpnnModel::Random({1, 8, 8}, Aggregation::kMean, 0.5, &rng)
                  ->VertexEmbeddings(g)
                  .ok());
  ASSERT_TRUE(GinModel::Random({1, 8, 8}, 0.5, &rng)->VertexEmbeddings(g).ok());
  ASSERT_TRUE(GcnModel::Random({1, 8, 8}, 0.5, &rng)->VertexEmbeddings(g).ok());
  ASSERT_TRUE(
      GraphSageModel::Random({1, 8, 8}, 0.5, &rng)->VertexEmbeddings(g).ok());

  TrainableGnn::Config cfg;
  cfg.widths = {1, 8};
  auto model = TrainableGnn::Create(cfg).value();
  Tape tape;
  ValueId logits = model->GraphLogits(&tape, g);
  ValueId loss = tape.SoftmaxCrossEntropy(logits, {0});
  tape.Backward(loss);

  EXPECT_EQ(DenseBuildsFromSnapshot(), before);
  // ...while the dense API still works (and is counted) for callers that
  // genuinely need the dense operator.
  g.AdjacencyMatrix();
  EXPECT_EQ(DenseBuildsFromSnapshot(), before + 1);
  obs::ResetEnabledFromEnv();
}

// Reads any counter through the snapshot API (cf. DenseBuildsFromSnapshot).
uint64_t CounterFromSnapshot(const char* name) {
  for (const auto& c : obs::Snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// The trainers hoist Graph::Csr() once before their epoch loops, so a
// whole training run costs exactly one cache lookup (a hit, after the
// prewarm below) and zero rebuilds — not one lookup per epoch.
TEST(CsrCacheTest, TrainersQueryTheCsrCacheOncePerRun) {
  obs::SetMetricsEnabled(true);
  Rng rng(53);
  TrainOptions opt;
  opt.epochs = 5;
  opt.hidden_widths = {4};
  {
    NodeDataset ds = SyntheticCitations(30, 2, 0.2, &rng);
    ds.graph.Csr();  // prewarm: the one legitimate miss happens here
    const uint64_t hits = CounterFromSnapshot("graph.csr_cache.hits");
    const uint64_t misses = CounterFromSnapshot("graph.csr_cache.misses");
    ASSERT_TRUE(TrainNodeClassifier(ds, opt).ok());
    EXPECT_EQ(CounterFromSnapshot("graph.csr_cache.hits") - hits, 1u);
    EXPECT_EQ(CounterFromSnapshot("graph.csr_cache.misses") - misses, 0u);
  }
  {
    LinkDataset ds = SyntheticSocialLinks(60, &rng);
    ds.graph.Csr();  // prewarm
    const uint64_t hits = CounterFromSnapshot("graph.csr_cache.hits");
    const uint64_t misses = CounterFromSnapshot("graph.csr_cache.misses");
    ASSERT_TRUE(TrainLinkPredictor(ds, opt).ok());
    EXPECT_EQ(CounterFromSnapshot("graph.csr_cache.hits") - hits, 1u);
    EXPECT_EQ(CounterFromSnapshot("graph.csr_cache.misses") - misses, 0u);
  }
  obs::ResetEnabledFromEnv();
}

}  // namespace
}  // namespace gelc
