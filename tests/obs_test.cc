// Tests for the observability library (src/obs): sharded counter
// correctness under the pool, gauge/histogram semantics, snapshot JSON
// (including a byte-exact golden), scoped span nesting and the summary
// tree's exclusive-time math, and the disabled-mode no-op contract.
//
// The registry is process-global, so every test either uses metric names
// unique to itself or resets the registry first; the pool workers spawned
// by ParallelFor are the "N threads" of the concurrency tests.
#include "obs/metrics.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "obs/config.h"
#include "obs/snapshot.h"
#include "obs/timing.h"
#include "obs/trace.h"

namespace gelc {
namespace {

struct ScopedThreads {
  explicit ScopedThreads(size_t n) { SetParallelThreadCount(n); }
  ~ScopedThreads() { SetParallelThreadCount(0); }
};

// Forces metrics on for the test body, restoring the env-derived flags
// after (the suite must pass under any GELC_METRICS setting).
struct ScopedMetricsOn {
  ScopedMetricsOn() { obs::SetMetricsEnabled(true); }
  ~ScopedMetricsOn() { obs::ResetEnabledFromEnv(); }
};

// Forces the timing plane on for the test body, then zeroes it and
// restores the env-derived flags — so later tests (in particular the
// byte-exact snapshot goldens) never see a stray timings section.
struct ScopedTimingsOn {
  ScopedTimingsOn() { obs::SetTimingsEnabled(true); }
  ~ScopedTimingsOn() {
    obs::ResetTimingsForTest();
    obs::ResetEnabledFromEnv();
  }
};

TEST(CounterTest, ConcurrentAddsMergeExactly) {
  ScopedMetricsOn metrics_on;
  ScopedThreads threads(4);
  obs::Counter* c = obs::GetCounter("test.counter.concurrent");
  const uint64_t before = c->Read();
  constexpr size_t kPerShardAdds = 50000;
  // Four shards hammer the same counter; thread-local sharding means the
  // merged total is exact, not approximate.
  ParallelFor(0, 4 * kPerShardAdds, kPerShardAdds,
              [c](size_t b, size_t e) {
                for (size_t i = b; i < e; ++i) c->Increment();
              });
  EXPECT_EQ(c->Read(), before + 4 * kPerShardAdds);
}

TEST(CounterTest, HandleIsStableAndNamed) {
  obs::Counter* a = obs::GetCounter("test.counter.stable");
  obs::Counter* b = obs::GetCounter("test.counter.stable");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name(), "test.counter.stable");
}

TEST(CounterTest, ReadCounterByNameAndUnknownIsZero) {
  ScopedMetricsOn metrics_on;
  obs::GetCounter("test.counter.byname")->Add(5);
  EXPECT_GE(obs::ReadCounter("test.counter.byname"), 5u);
  EXPECT_EQ(obs::ReadCounter("test.counter.never_registered"), 0u);
}

TEST(GaugeTest, SetReadAndEverSet) {
  ScopedMetricsOn metrics_on;
  obs::Gauge* g = obs::GetGauge("test.gauge.basic");
  EXPECT_FALSE(g->ever_set());
  g->Set(2.5);
  EXPECT_TRUE(g->ever_set());
  EXPECT_EQ(g->Read(), 2.5);
  g->Set(-1.0);  // last write wins
  EXPECT_EQ(g->Read(), -1.0);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  ScopedMetricsOn metrics_on;
  obs::Histogram* h = obs::GetHistogram("test.hist.edges", {1, 2, 4});
  // Bucket i counts v <= bounds[i]: 0,1 -> [<=1]; 2 -> (1,2]; 3,4 -> (2,4];
  // 5 overflows.
  for (int64_t v : {0, 1, 2, 3, 4, 5}) h->Observe(v);
  std::vector<uint64_t> counts = h->Counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);  // overflow bucket
  EXPECT_EQ(h->TotalCount(), 6u);
  EXPECT_EQ(h->Sum(), 15);
  EXPECT_EQ(h->bounds(), (std::vector<int64_t>{1, 2, 4}));
}

TEST(HistogramTest, SameNameReturnsSameHistogram) {
  obs::Histogram* a = obs::GetHistogram("test.hist.dup", {1, 2});
  obs::Histogram* b = obs::GetHistogram("test.hist.dup", {7, 8, 9});
  EXPECT_EQ(a, b);  // original bounds win
  EXPECT_EQ(a->bounds(), (std::vector<int64_t>{1, 2}));
}

TEST(DisabledModeTest, RecordsAreNoOps) {
  obs::SetMetricsEnabled(false);
  obs::Counter* c = obs::GetCounter("test.disabled.counter");
  obs::Gauge* g = obs::GetGauge("test.disabled.gauge");
  obs::Histogram* h = obs::GetHistogram("test.disabled.hist", {10});
  const uint64_t c_before = c->Read();
  c->Add(100);
  g->Set(3.0);
  h->Observe(5);
  EXPECT_EQ(c->Read(), c_before);
  EXPECT_FALSE(g->ever_set());
  EXPECT_EQ(h->TotalCount(), 0u);
  obs::ResetEnabledFromEnv();
}

TEST(DisabledModeTest, SpansAreNoOps) {
  obs::SetTraceEnabled(false);
  const size_t before = obs::TraceEventCount();
  {
    GELC_TRACE_SPAN("test.disabled.span", {{"x", 1}});
  }
  EXPECT_EQ(obs::TraceEventCount(), before);
  obs::ResetEnabledFromEnv();
}

TEST(TraceTest, ScopedSpanRecordsNameArgsAndNesting) {
  obs::ResetTraceForTest();
  obs::SetTraceEnabled(true);
  {
    GELC_TRACE_SPAN("test.outer", {{"x", 7}});
    { GELC_TRACE_SPAN("test.inner"); }
  }
  obs::SetTraceEnabled(false);
  EXPECT_EQ(obs::TraceEventCount(), 2u);
  std::string json = obs::TraceJson();
  EXPECT_NE(json.find("\"name\": \"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"x\": 7}"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // The summary reconstructs nesting from depths: inner indents under
  // outer.
  std::string summary = obs::TraceSummaryText();
  EXPECT_NE(summary.find("test.outer"), std::string::npos);
  EXPECT_NE(summary.find("  test.inner"), std::string::npos);
  obs::ResetTraceForTest();
}

TEST(TraceTest, SetArgAttachesAndOverwrites) {
  obs::ResetTraceForTest();
  obs::SetTraceEnabled(true);
  {
    obs::ScopedSpan span("test.setarg", {{"colors", 0}});
    span.SetArg("colors", 42);       // overwrite by key
    span.SetArg("extra", 9);         // append
  }
  obs::SetTraceEnabled(false);
  std::string json = obs::TraceJson();
  EXPECT_NE(json.find("\"colors\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"extra\": 9"), std::string::npos);
  EXPECT_EQ(json.find("\"colors\": 0"), std::string::npos);
  obs::ResetTraceForTest();
}

TEST(TraceTest, SummaryExclusiveTimeSubtractsDirectChildren) {
  obs::ResetTraceForTest();
  // Synthetic events with exact nanosecond durations (RecordSpan is the
  // layer under ScopedSpan, so the math is tested deterministically).
  // Ring buffers record in end order: children complete first.
  obs::internal::RecordSpan("child", 1'000'000, 3'000'000, 1, nullptr, 0);
  obs::internal::RecordSpan("root", 0, 5'000'000, 0, nullptr, 0);
  std::string summary = obs::TraceSummaryText();
  // root: inclusive 5ms, exclusive 5-2=3ms. child: 2ms both.
  EXPECT_NE(summary.find("5.000"), std::string::npos);
  EXPECT_NE(summary.find("3.000"), std::string::npos);
  EXPECT_NE(summary.find("2.000"), std::string::npos);
  EXPECT_NE(summary.find("  child"), std::string::npos);
  obs::ResetTraceForTest();
}

TEST(TraceTest, SummarySiblingsDoNotNestUnderEachOther) {
  obs::ResetTraceForTest();
  obs::internal::RecordSpan("first", 0, 1'000'000, 0, nullptr, 0);
  obs::internal::RecordSpan("second", 2'000'000, 3'000'000, 0, nullptr, 0);
  std::string summary = obs::TraceSummaryText();
  EXPECT_NE(summary.find("first"), std::string::npos);
  EXPECT_NE(summary.find("second"), std::string::npos);
  EXPECT_EQ(summary.find("  second"), std::string::npos);  // not indented
  obs::ResetTraceForTest();
}

TEST(SnapshotTest, OmitsUntouchedMetrics) {
  ScopedMetricsOn metrics_on;
  obs::ResetMetricsForTest();
  obs::GetCounter("test.snapshot.zero");          // registered, never added
  obs::GetGauge("test.snapshot.unset");           // registered, never set
  obs::GetHistogram("test.snapshot.empty", {1});  // registered, no samples
  EXPECT_EQ(obs::SnapshotJson(),
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}");
}

TEST(SnapshotTest, JsonGoldenByteExact) {
  ScopedMetricsOn metrics_on;
  obs::ResetMetricsForTest();
  obs::GetCounter("golden.b")->Add(3);
  obs::GetCounter("golden.a")->Add(1);  // name-sorted, not insertion order
  obs::GetGauge("golden.g")->Set(1.5);
  obs::Histogram* h = obs::GetHistogram("golden.h", {1, 2});
  h->Observe(2);
  h->Observe(40);
  EXPECT_EQ(
      obs::SnapshotJson(),
      "{\"counters\": {\"golden.a\": 1, \"golden.b\": 3}, "
      "\"gauges\": {\"golden.g\": 1.5}, "
      "\"histograms\": {\"golden.h\": {\"bounds\": [1, 2], "
      "\"counts\": [0, 1, 1], \"total\": 2, \"sum\": 42}}}");
}

TEST(SnapshotTest, StructViewMatchesRecords) {
  ScopedMetricsOn metrics_on;
  obs::ResetMetricsForTest();
  obs::GetCounter("test.struct.c")->Add(7);
  obs::GetGauge("test.struct.g")->Set(0.25);
  obs::StatsSnapshot snap = obs::Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "test.struct.c");
  EXPECT_EQ(snap.counters[0].value, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "test.struct.g");
  EXPECT_EQ(snap.gauges[0].value, 0.25);
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(InstrumentationTest, ParallelForCountsCallsAndShards) {
  ScopedMetricsOn metrics_on;
  ScopedThreads threads(4);
  const uint64_t calls = obs::ReadCounter("parallel.calls");
  const uint64_t scheduled = obs::ReadCounter("parallel.tasks_scheduled");
  ParallelFor(0, 4000, 1, [](size_t, size_t) {});
  EXPECT_EQ(obs::ReadCounter("parallel.calls"), calls + 1);
  // 4 shards -> 3 tasks handed to the pool (shard 0 runs inline).
  EXPECT_EQ(obs::ReadCounter("parallel.tasks_scheduled"), scheduled + 3);
}

TEST(InstrumentationTest, SerialParallelForCountsAsSerial) {
  ScopedMetricsOn metrics_on;
  ScopedThreads threads(1);
  const uint64_t serial = obs::ReadCounter("parallel.serial_calls");
  ParallelFor(0, 100, 1, [](size_t, size_t) {});
  EXPECT_EQ(obs::ReadCounter("parallel.serial_calls"), serial + 1);
}

// --------------------------------------------------------------------------
// Deterministic-plane histogram edge behavior (ISSUE 9 satellite).
// --------------------------------------------------------------------------

TEST(HistogramTest, UnderflowOverflowAndExactBoundLandings) {
  ScopedMetricsOn metrics_on;
  obs::Histogram* h =
      obs::GetHistogram("test.hist.extreme_edges", {0, 10, 100});
  // Negative and zero both land in the first bucket (v <= 0).
  h->Observe(-5);
  h->Observe(0);
  // Exact bounds land in their own bucket (inclusive upper edge)...
  h->Observe(10);
  h->Observe(100);
  // ...and one past the last bound overflows, as does INT64_MAX.
  h->Observe(101);
  h->Observe(std::numeric_limits<int64_t>::max());
  std::vector<uint64_t> counts = h->Counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h->TotalCount(), 6u);
}

// --------------------------------------------------------------------------
// Snapshot JSON escaping (ISSUE 9 satellite). A hand-built snapshot keeps
// the process-global registry clean of weird names.
// --------------------------------------------------------------------------

TEST(SnapshotTest, JsonEscapesQuotesAndBackslashesInNames) {
  obs::StatsSnapshot snap;
  snap.counters.push_back({"evil\"name", 1});
  snap.counters.push_back({"back\\slash", 2});
  snap.gauges.push_back({"tab\there", 0.5});
  EXPECT_EQ(obs::SnapshotJson(snap),
            "{\"counters\": {\"evil\\\"name\": 1, \"back\\\\slash\": 2}, "
            "\"gauges\": {\"tab\\there\": 0.5}, \"histograms\": {}}");
}

TEST(SnapshotTest, TimingsKeyOmittedWhenEmptyAndEscaped) {
  obs::StatsSnapshot snap;
  EXPECT_EQ(obs::SnapshotJson(snap),
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}");
  obs::LatencySample t;
  t.name = "timer\"q";
  t.count = 2;
  t.sum_ns = 10;
  t.p50_ns = 4.0;
  t.p90_ns = 5.0;
  t.p99_ns = 5.0;
  snap.timings.push_back(t);
  EXPECT_EQ(obs::SnapshotJson(snap),
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}, "
            "\"timings\": {\"timer\\\"q\": {\"count\": 2, \"sum_ns\": 10, "
            "\"p50_ns\": 4, \"p90_ns\": 5, \"p99_ns\": 5}}}");
}

// --------------------------------------------------------------------------
// Timing plane (ISSUE 9 tentpole): latency histogram bucket geometry,
// quantiles, sharded concurrency, the scoped-timer macro, and the
// two-plane separation contract.
// --------------------------------------------------------------------------

TEST(LatencyHistogramTest, BucketGeometry) {
  const std::vector<int64_t>& bounds = obs::LatencyHistogram::BucketBounds();
  ASSERT_FALSE(bounds.empty());
  // Strictly ascending, starting 1,2,3,4,5,... ending at 2^36 ns.
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_EQ(bounds[0], 1);
  EXPECT_EQ(bounds.back(), int64_t{1} << 36);
  EXPECT_EQ(obs::LatencyHistogram::NumBuckets(), bounds.size() + 1);
  // Log-spaced: relative step stays <= 25% past the exact range.
  for (size_t i = 4; i < bounds.size(); ++i) {
    EXPECT_LE(bounds[i] - bounds[i - 1], (bounds[i - 1] + 3) / 4)
        << "bucket " << i;
  }
}

TEST(LatencyHistogramTest, BucketIndexEdges) {
  using LH = obs::LatencyHistogram;
  const std::vector<int64_t>& bounds = LH::BucketBounds();
  // Underflow: negatives and 0 share the first bucket with 1.
  EXPECT_EQ(LH::BucketIndex(-7), 0u);
  EXPECT_EQ(LH::BucketIndex(0), 0u);
  EXPECT_EQ(LH::BucketIndex(1), 0u);
  // Exact bound lands in its own bucket; one past moves up.
  EXPECT_EQ(LH::BucketIndex(4), 3u);
  EXPECT_EQ(LH::BucketIndex(5), 4u);
  // 9 is between bounds 8 and 10.
  EXPECT_EQ(bounds[7], 8);
  EXPECT_EQ(bounds[8], 10);
  EXPECT_EQ(LH::BucketIndex(9), 8u);
  // The last bound is inclusive; past it is the overflow bucket.
  EXPECT_EQ(LH::BucketIndex(bounds.back()), bounds.size() - 1);
  EXPECT_EQ(LH::BucketIndex(bounds.back() + 1), bounds.size());
  EXPECT_EQ(LH::BucketIndex(std::numeric_limits<int64_t>::max()),
            bounds.size());
}

TEST(LatencyHistogramTest, QuantileInterpolatesWithinLandingBucket) {
  using LH = obs::LatencyHistogram;
  std::vector<uint64_t> counts(LH::NumBuckets(), 0);
  EXPECT_EQ(LH::QuantileNs(counts, 0.5), 0.0);  // empty
  // All mass in the (8, 10] bucket: every quantile stays inside it.
  counts[LH::BucketIndex(9)] = 100;
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    double v = LH::QuantileNs(counts, q);
    EXPECT_GT(v, 8.0) << q;
    EXPECT_LE(v, 10.0) << q;
  }
  // Mass split across two buckets: the median falls in the first, the
  // p99 in the second.
  std::vector<uint64_t> split(LH::NumBuckets(), 0);
  split[LH::BucketIndex(2)] = 60;
  split[LH::BucketIndex(100)] = 40;
  EXPECT_LE(LH::QuantileNs(split, 0.5), 2.0);
  // 100 lands in the (96, 112] bucket; the p99 interpolates inside it.
  double p99 = LH::QuantileNs(split, 0.99);
  EXPECT_GT(p99, 96.0);
  EXPECT_LE(p99, 112.0);
  // Overflow-only mass reports the last bound (no upper edge to lerp to).
  std::vector<uint64_t> over(LH::NumBuckets(), 0);
  over[LH::NumBuckets() - 1] = 10;
  EXPECT_EQ(LH::QuantileNs(over, 0.5),
            static_cast<double>(LH::BucketBounds().back()));
}

TEST(LatencyHistogramTest, DisabledObserveIsANoOp) {
  obs::SetTimingsEnabled(false);
  obs::LatencyHistogram* h = obs::GetLatencyHistogram("test.lat.disabled");
  h->Observe(100);
  EXPECT_EQ(h->TotalCount(), 0u);
  EXPECT_EQ(h->SumNs(), 0);
  obs::ResetEnabledFromEnv();
}

TEST(LatencyHistogramTest, ObserveRecordsAndNegativeClampsSum) {
  ScopedTimingsOn timings_on;
  obs::LatencyHistogram* h = obs::GetLatencyHistogram("test.lat.basic");
  h->Observe(9);
  h->Observe(9);
  h->Observe(-3);  // lands in bucket 0; the sum clamps the negative to 0
  EXPECT_EQ(h->TotalCount(), 3u);
  EXPECT_EQ(h->SumNs(), 18);
  std::vector<uint64_t> counts = h->Counts();
  EXPECT_EQ(counts[obs::LatencyHistogram::BucketIndex(9)], 2u);
  EXPECT_EQ(counts[0], 1u);
  h->Reset();
  EXPECT_EQ(h->TotalCount(), 0u);
  EXPECT_EQ(h->SumNs(), 0);
}

TEST(LatencyHistogramTest, ShardedObservesMergeExactlyUnderPool) {
  ScopedTimingsOn timings_on;
  ScopedThreads threads(4);
  obs::LatencyHistogram* h = obs::GetLatencyHistogram("test.lat.sharded");
  constexpr size_t kPerShard = 20000;
  ParallelFor(0, 4 * kPerShard, kPerShard, [h](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) h->Observe(static_cast<int64_t>(i % 64));
  });
  EXPECT_EQ(h->TotalCount(), 4 * kPerShard);
}

TEST(ScopedTimerTest, MacroRecordsOneObservationPerScope) {
  ScopedTimingsOn timings_on;
  obs::LatencyHistogram* h = obs::GetLatencyHistogram("test.lat.scoped");
  const uint64_t before = h->TotalCount();
  for (int i = 0; i < 3; ++i) {
    GELC_OBS_TIME("test.lat.scoped");
  }
  EXPECT_EQ(h->TotalCount(), before + 3);
  EXPECT_GE(h->SumNs(), 0);
}

TEST(TimingSnapshotTest, CarriesPercentilesAndSummarizes) {
  ScopedTimingsOn timings_on;
  obs::ResetTimingsForTest();
  obs::LatencyHistogram* h = obs::GetLatencyHistogram("phasea.step");
  for (int i = 0; i < 100; ++i) h->Observe(9);
  std::vector<obs::LatencySample> samples = obs::TimingSnapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "phasea.step");
  EXPECT_EQ(samples[0].count, 100u);
  EXPECT_EQ(samples[0].sum_ns, 900);
  EXPECT_GT(samples[0].p50_ns, 8.0);
  EXPECT_LE(samples[0].p99_ns, 10.0);
  EXPECT_GE(obs::TimingObservationCount(), 100u);
  // The summary mentions the series and its phase rollup.
  std::string summary = obs::TimingSummaryText();
  EXPECT_NE(summary.find("phasea.step"), std::string::npos);
  EXPECT_NE(summary.find("phase rollup:"), std::string::npos);
  EXPECT_NE(summary.find("  phasea"), std::string::npos);
}

TEST(TimingSnapshotTest, TwoPlaneSeparationIsByteExact) {
  ScopedMetricsOn metrics_on;
  // The same deterministic work with timings ON vs OFF: the snapshot's
  // deterministic sections must not change by a byte. Compare by
  // clearing the timings vector of the "on" snapshot, which is exactly
  // what `gelc_stats --deterministic` does.
  auto run_work = [] {
    obs::ResetMetricsForTest();
    obs::GetCounter("test.plane.calls")->Add(41);
    obs::GetHistogram("test.plane.h", {2, 8})->Observe(5);
  };
  obs::SetTimingsEnabled(false);
  run_work();
  const std::string off_json = obs::SnapshotJson();
  {
    ScopedTimingsOn timings_on;
    run_work();
    {
      GELC_OBS_TIME("test.plane.timer");
    }
    obs::StatsSnapshot on_snap = obs::Snapshot();
    EXPECT_FALSE(on_snap.timings.empty());
    // With timings present the JSON differs (a timings key appears)...
    EXPECT_NE(obs::SnapshotJson(on_snap), off_json);
    // ...and stripping the timing plane restores byte equality.
    on_snap.timings.clear();
    EXPECT_EQ(obs::SnapshotJson(on_snap), off_json);
  }
  obs::ResetEnabledFromEnv();
}

}  // namespace
}  // namespace gelc
