// Tests for the observability library (src/obs): sharded counter
// correctness under the pool, gauge/histogram semantics, snapshot JSON
// (including a byte-exact golden), scoped span nesting and the summary
// tree's exclusive-time math, and the disabled-mode no-op contract.
//
// The registry is process-global, so every test either uses metric names
// unique to itself or resets the registry first; the pool workers spawned
// by ParallelFor are the "N threads" of the concurrency tests.
#include "obs/metrics.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "obs/config.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace gelc {
namespace {

struct ScopedThreads {
  explicit ScopedThreads(size_t n) { SetParallelThreadCount(n); }
  ~ScopedThreads() { SetParallelThreadCount(0); }
};

// Forces metrics on for the test body, restoring the env-derived flags
// after (the suite must pass under any GELC_METRICS setting).
struct ScopedMetricsOn {
  ScopedMetricsOn() { obs::SetMetricsEnabled(true); }
  ~ScopedMetricsOn() { obs::ResetEnabledFromEnv(); }
};

TEST(CounterTest, ConcurrentAddsMergeExactly) {
  ScopedMetricsOn metrics_on;
  ScopedThreads threads(4);
  obs::Counter* c = obs::GetCounter("test.counter.concurrent");
  const uint64_t before = c->Read();
  constexpr size_t kPerShardAdds = 50000;
  // Four shards hammer the same counter; thread-local sharding means the
  // merged total is exact, not approximate.
  ParallelFor(0, 4 * kPerShardAdds, kPerShardAdds,
              [c](size_t b, size_t e) {
                for (size_t i = b; i < e; ++i) c->Increment();
              });
  EXPECT_EQ(c->Read(), before + 4 * kPerShardAdds);
}

TEST(CounterTest, HandleIsStableAndNamed) {
  obs::Counter* a = obs::GetCounter("test.counter.stable");
  obs::Counter* b = obs::GetCounter("test.counter.stable");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name(), "test.counter.stable");
}

TEST(CounterTest, ReadCounterByNameAndUnknownIsZero) {
  ScopedMetricsOn metrics_on;
  obs::GetCounter("test.counter.byname")->Add(5);
  EXPECT_GE(obs::ReadCounter("test.counter.byname"), 5u);
  EXPECT_EQ(obs::ReadCounter("test.counter.never_registered"), 0u);
}

TEST(GaugeTest, SetReadAndEverSet) {
  ScopedMetricsOn metrics_on;
  obs::Gauge* g = obs::GetGauge("test.gauge.basic");
  EXPECT_FALSE(g->ever_set());
  g->Set(2.5);
  EXPECT_TRUE(g->ever_set());
  EXPECT_EQ(g->Read(), 2.5);
  g->Set(-1.0);  // last write wins
  EXPECT_EQ(g->Read(), -1.0);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  ScopedMetricsOn metrics_on;
  obs::Histogram* h = obs::GetHistogram("test.hist.edges", {1, 2, 4});
  // Bucket i counts v <= bounds[i]: 0,1 -> [<=1]; 2 -> (1,2]; 3,4 -> (2,4];
  // 5 overflows.
  for (int64_t v : {0, 1, 2, 3, 4, 5}) h->Observe(v);
  std::vector<uint64_t> counts = h->Counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);  // overflow bucket
  EXPECT_EQ(h->TotalCount(), 6u);
  EXPECT_EQ(h->Sum(), 15);
  EXPECT_EQ(h->bounds(), (std::vector<int64_t>{1, 2, 4}));
}

TEST(HistogramTest, SameNameReturnsSameHistogram) {
  obs::Histogram* a = obs::GetHistogram("test.hist.dup", {1, 2});
  obs::Histogram* b = obs::GetHistogram("test.hist.dup", {7, 8, 9});
  EXPECT_EQ(a, b);  // original bounds win
  EXPECT_EQ(a->bounds(), (std::vector<int64_t>{1, 2}));
}

TEST(DisabledModeTest, RecordsAreNoOps) {
  obs::SetMetricsEnabled(false);
  obs::Counter* c = obs::GetCounter("test.disabled.counter");
  obs::Gauge* g = obs::GetGauge("test.disabled.gauge");
  obs::Histogram* h = obs::GetHistogram("test.disabled.hist", {10});
  const uint64_t c_before = c->Read();
  c->Add(100);
  g->Set(3.0);
  h->Observe(5);
  EXPECT_EQ(c->Read(), c_before);
  EXPECT_FALSE(g->ever_set());
  EXPECT_EQ(h->TotalCount(), 0u);
  obs::ResetEnabledFromEnv();
}

TEST(DisabledModeTest, SpansAreNoOps) {
  obs::SetTraceEnabled(false);
  const size_t before = obs::TraceEventCount();
  {
    GELC_TRACE_SPAN("test.disabled.span", {{"x", 1}});
  }
  EXPECT_EQ(obs::TraceEventCount(), before);
  obs::ResetEnabledFromEnv();
}

TEST(TraceTest, ScopedSpanRecordsNameArgsAndNesting) {
  obs::ResetTraceForTest();
  obs::SetTraceEnabled(true);
  {
    GELC_TRACE_SPAN("test.outer", {{"x", 7}});
    { GELC_TRACE_SPAN("test.inner"); }
  }
  obs::SetTraceEnabled(false);
  EXPECT_EQ(obs::TraceEventCount(), 2u);
  std::string json = obs::TraceJson();
  EXPECT_NE(json.find("\"name\": \"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"x\": 7}"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // The summary reconstructs nesting from depths: inner indents under
  // outer.
  std::string summary = obs::TraceSummaryText();
  EXPECT_NE(summary.find("test.outer"), std::string::npos);
  EXPECT_NE(summary.find("  test.inner"), std::string::npos);
  obs::ResetTraceForTest();
}

TEST(TraceTest, SetArgAttachesAndOverwrites) {
  obs::ResetTraceForTest();
  obs::SetTraceEnabled(true);
  {
    obs::ScopedSpan span("test.setarg", {{"colors", 0}});
    span.SetArg("colors", 42);       // overwrite by key
    span.SetArg("extra", 9);         // append
  }
  obs::SetTraceEnabled(false);
  std::string json = obs::TraceJson();
  EXPECT_NE(json.find("\"colors\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"extra\": 9"), std::string::npos);
  EXPECT_EQ(json.find("\"colors\": 0"), std::string::npos);
  obs::ResetTraceForTest();
}

TEST(TraceTest, SummaryExclusiveTimeSubtractsDirectChildren) {
  obs::ResetTraceForTest();
  // Synthetic events with exact nanosecond durations (RecordSpan is the
  // layer under ScopedSpan, so the math is tested deterministically).
  // Ring buffers record in end order: children complete first.
  obs::internal::RecordSpan("child", 1'000'000, 3'000'000, 1, nullptr, 0);
  obs::internal::RecordSpan("root", 0, 5'000'000, 0, nullptr, 0);
  std::string summary = obs::TraceSummaryText();
  // root: inclusive 5ms, exclusive 5-2=3ms. child: 2ms both.
  EXPECT_NE(summary.find("5.000"), std::string::npos);
  EXPECT_NE(summary.find("3.000"), std::string::npos);
  EXPECT_NE(summary.find("2.000"), std::string::npos);
  EXPECT_NE(summary.find("  child"), std::string::npos);
  obs::ResetTraceForTest();
}

TEST(TraceTest, SummarySiblingsDoNotNestUnderEachOther) {
  obs::ResetTraceForTest();
  obs::internal::RecordSpan("first", 0, 1'000'000, 0, nullptr, 0);
  obs::internal::RecordSpan("second", 2'000'000, 3'000'000, 0, nullptr, 0);
  std::string summary = obs::TraceSummaryText();
  EXPECT_NE(summary.find("first"), std::string::npos);
  EXPECT_NE(summary.find("second"), std::string::npos);
  EXPECT_EQ(summary.find("  second"), std::string::npos);  // not indented
  obs::ResetTraceForTest();
}

TEST(SnapshotTest, OmitsUntouchedMetrics) {
  ScopedMetricsOn metrics_on;
  obs::ResetMetricsForTest();
  obs::GetCounter("test.snapshot.zero");          // registered, never added
  obs::GetGauge("test.snapshot.unset");           // registered, never set
  obs::GetHistogram("test.snapshot.empty", {1});  // registered, no samples
  EXPECT_EQ(obs::SnapshotJson(),
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}");
}

TEST(SnapshotTest, JsonGoldenByteExact) {
  ScopedMetricsOn metrics_on;
  obs::ResetMetricsForTest();
  obs::GetCounter("golden.b")->Add(3);
  obs::GetCounter("golden.a")->Add(1);  // name-sorted, not insertion order
  obs::GetGauge("golden.g")->Set(1.5);
  obs::Histogram* h = obs::GetHistogram("golden.h", {1, 2});
  h->Observe(2);
  h->Observe(40);
  EXPECT_EQ(
      obs::SnapshotJson(),
      "{\"counters\": {\"golden.a\": 1, \"golden.b\": 3}, "
      "\"gauges\": {\"golden.g\": 1.5}, "
      "\"histograms\": {\"golden.h\": {\"bounds\": [1, 2], "
      "\"counts\": [0, 1, 1], \"total\": 2, \"sum\": 42}}}");
}

TEST(SnapshotTest, StructViewMatchesRecords) {
  ScopedMetricsOn metrics_on;
  obs::ResetMetricsForTest();
  obs::GetCounter("test.struct.c")->Add(7);
  obs::GetGauge("test.struct.g")->Set(0.25);
  obs::StatsSnapshot snap = obs::Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "test.struct.c");
  EXPECT_EQ(snap.counters[0].value, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "test.struct.g");
  EXPECT_EQ(snap.gauges[0].value, 0.25);
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(InstrumentationTest, ParallelForCountsCallsAndShards) {
  ScopedMetricsOn metrics_on;
  ScopedThreads threads(4);
  const uint64_t calls = obs::ReadCounter("parallel.calls");
  const uint64_t scheduled = obs::ReadCounter("parallel.tasks_scheduled");
  ParallelFor(0, 4000, 1, [](size_t, size_t) {});
  EXPECT_EQ(obs::ReadCounter("parallel.calls"), calls + 1);
  // 4 shards -> 3 tasks handed to the pool (shard 0 runs inline).
  EXPECT_EQ(obs::ReadCounter("parallel.tasks_scheduled"), scheduled + 3);
}

TEST(InstrumentationTest, SerialParallelForCountsAsSerial) {
  ScopedMetricsOn metrics_on;
  ScopedThreads threads(1);
  const uint64_t serial = obs::ReadCounter("parallel.serial_calls");
  ParallelFor(0, 100, 1, [](size_t, size_t) {});
  EXPECT_EQ(obs::ReadCounter("parallel.serial_calls"), serial + 1);
}

}  // namespace
}  // namespace gelc
