// Property-based fuzzing across modules:
//   - random GEL expressions are invariant under graph isomorphism;
//   - random MPNN-fragment expressions agree with their normal form;
//   - evaluator memoization never changes results;
//   - minimization never changes semantics or increases width;
//   - random tape programs match finite-difference gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/tape.h"
#include "base/rng.h"
#include "core/analysis.h"
#include "core/eval.h"
#include "core/normal_form.h"
#include "core/rewrite.h"
#include "graph/batch.h"
#include "graph/generators.h"
#include "graph/update_log.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "wl/color_refinement.h"

namespace gelc {
namespace {

constexpr size_t kFeatureDim = 2;

Graph RandomLabelledGraph(Rng* rng, size_t max_n = 8) {
  size_t n = 4 + rng->NextBounded(max_n - 3);
  Graph g(n, kFeatureDim);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v)
      if (rng->NextBernoulli(0.4)) {
          EXPECT_TRUE(g.AddEdge(static_cast<VertexId>(u),
          static_cast<VertexId>(v))
          .ok());
      }
    g.SetOneHotFeature(static_cast<VertexId>(u),
                       rng->NextBounded(kFeatureDim));
  }
  return g;
}

// Random GEL expression with one free variable `free_var`, up to `depth`
// levels of structure and up to 3 total variables.
ExprPtr RandomVertexExpr(Rng* rng, Var free_var, size_t depth) {
  if (depth == 0) {
    switch (rng->NextBounded(3)) {
      case 0:
        return *Expr::Label(rng->NextBounded(kFeatureDim), free_var);
      case 1:
        return *Expr::Constant({rng->NextUniform(-1, 1)});
      default: {
        // Degree-flavoured aggregate over a fresh variable.
        Var bound = (free_var + 1) % 3;
        return *Expr::Aggregate(theta::Sum(1), VarBit(bound),
                                *Expr::Constant({1.0}),
                                *Expr::Edge(free_var, bound));
      }
    }
  }
  switch (rng->NextBounded(5)) {
    case 0:
      return *Expr::Apply(omega::ActivationFn(Activation::kTanh, 1),
                          {RandomVertexExpr(rng, free_var, depth - 1)});
    case 1:
      return *Expr::Apply(omega::Add(1),
                          {RandomVertexExpr(rng, free_var, depth - 1),
                           RandomVertexExpr(rng, free_var, depth - 1)});
    case 2:
      return *Expr::Apply(omega::Multiply(1),
                          {RandomVertexExpr(rng, free_var, depth - 1),
                           RandomVertexExpr(rng, free_var, depth - 1)});
    case 3: {
      // Neighborhood aggregate of a subexpression of the bound variable.
      Var bound = (free_var + 1) % 3;
      ThetaPtr agg = rng->NextBounded(2) ? theta::Sum(1) : theta::Mean(1);
      return *Expr::Aggregate(agg, VarBit(bound),
                              RandomVertexExpr(rng, bound, depth - 1),
                              *Expr::Edge(free_var, bound));
    }
    default: {
      // Guarded count with an equality-constrained two-variable guard.
      Var bound = (free_var + 2) % 3;
      ExprPtr guard = *Expr::Apply(
          omega::Multiply(1),
          {*Expr::Edge(free_var, bound),
           *Expr::Compare(free_var, bound, CmpOp::kNeq)});
      return *Expr::Aggregate(theta::Count(1), VarBit(bound),
                              *Expr::Constant({1.0}), std::move(guard));
    }
  }
}

class GelInvarianceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GelInvarianceFuzz, ExpressionInvariantUnderIsomorphism) {
  Rng rng(GetParam() * 15013);
  ExprPtr e = RandomVertexExpr(&rng, 0, 1 + rng.NextBounded(3));
  if (e->free_vars() != VarBit(0)) {
    // Constant-only draws may have no free variables; still fine to test.
    if (e->free_vars() != 0) GTEST_SKIP();
  }
  Graph g = RandomLabelledGraph(&rng);
  std::vector<size_t> perm = rng.Permutation(g.num_vertices());
  Graph h = g.Permuted(perm).value();
  Evaluator eg(g);
  Evaluator eh(h);
  if (e->free_vars() == 0) {
    std::vector<double> vg = *eg.EvalClosed(e);
    std::vector<double> vh = *eh.EvalClosed(e);
    for (size_t j = 0; j < vg.size(); ++j) EXPECT_NEAR(vg[j], vh[j], 1e-9);
    return;
  }
  Matrix vg = *eg.EvalVertex(e);
  Matrix vh = *eh.EvalVertex(e);
  for (size_t v = 0; v < g.num_vertices(); ++v)
    for (size_t j = 0; j < vg.cols(); ++j)
      EXPECT_NEAR(vg.At(v, j), vh.At(perm[v], j), 1e-9)
          << e->ToString() << " at vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GelInvarianceFuzz,
                         ::testing::Range<uint64_t>(1, 31));

class MemoFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemoFuzz, MemoizationDoesNotChangeResults) {
  Rng rng(GetParam() * 77023);
  ExprPtr e = RandomVertexExpr(&rng, 0, 1 + rng.NextBounded(3));
  Graph g = RandomLabelledGraph(&rng);
  Evaluator memo(g);
  Evaluator plain(g, Evaluator::Options{false, 50'000'000});
  EvalTable a = *memo.Eval(e);
  EvalTable b = *plain.Eval(e);
  ASSERT_EQ(a.data.size(), b.data.size());
  for (size_t i = 0; i < a.data.size(); ++i)
    EXPECT_DOUBLE_EQ(a.data[i], b.data[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoFuzz, ::testing::Range<uint64_t>(1, 13));

// Random MPNN-fragment expressions (strictly 2 variables, guarded):
// normal form must agree with direct evaluation.
ExprPtr RandomFragmentExpr(Rng* rng, Var v, size_t depth) {
  if (depth == 0) {
    if (rng->NextBounded(2)) {
      return *Expr::Label(rng->NextBounded(kFeatureDim), v);
    }
    return *Expr::Constant({rng->NextUniform(-1, 1)});
  }
  switch (rng->NextBounded(4)) {
    case 0:
      return *Expr::Apply(omega::ActivationFn(Activation::kReLU, 1),
                          {RandomFragmentExpr(rng, v, depth - 1)});
    case 1:
      return *Expr::Apply(omega::Add(1),
                          {RandomFragmentExpr(rng, v, depth - 1),
                           RandomFragmentExpr(rng, v, depth - 1)});
    default: {
      Var other = v == 0 ? 1 : 0;
      ThetaPtr agg;
      switch (rng->NextBounded(3)) {
        case 0:
          agg = theta::Sum(1);
          break;
        case 1:
          agg = theta::Mean(1);
          break;
        default:
          agg = theta::Max(1);
          break;
      }
      return *Expr::Aggregate(agg, VarBit(other),
                              RandomFragmentExpr(rng, other, depth - 1),
                              *Expr::Edge(v, other));
    }
  }
}

class NormalFormFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NormalFormFuzz, FragmentNormalFormAgrees) {
  Rng rng(GetParam() * 90001);
  ExprPtr e = RandomFragmentExpr(&rng, 0, 2 + rng.NextBounded(2));
  ASSERT_TRUE(CheckMpnnFragment(e).ok()) << e->ToString();
  Result<NormalFormProgram> p = NormalFormProgram::Normalize(e);
  ASSERT_TRUE(p.ok());
  Graph g = RandomLabelledGraph(&rng);
  Evaluator eval(g);
  if (e->free_vars() == 0) GTEST_SKIP();
  Matrix direct = *eval.EvalVertex(e);
  Matrix layered = *p->Run(g);
  EXPECT_TRUE(direct.AllClose(layered, 1e-10)) << e->ToString();

  // Minimization is a no-op semantically.
  ExprPtr m = *MinimizeVariables(e);
  EXPECT_LE(VariableWidth(m), VariableWidth(e));
  Matrix minimized = *eval.EvalVertex(m);
  EXPECT_TRUE(direct.AllClose(minimized, 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalFormFuzz,
                         ::testing::Range<uint64_t>(1, 25));

// Random tape programs vs finite differences.
class TapeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TapeFuzz, RandomProgramGradientsMatchFiniteDifference) {
  Rng rng(GetParam() * 31013);
  size_t rows = 2 + rng.NextBounded(3);
  size_t cols = 2 + rng.NextBounded(3);
  Parameter p(Matrix::RandomGaussian(rows, cols, 0.5, &rng));
  Matrix x = Matrix::RandomGaussian(cols, rows, 0.7, &rng);
  Matrix target = Matrix::RandomGaussian(rows, rows, 0.7, &rng);
  int plan = static_cast<int>(rng.NextBounded(4));

  auto build = [&](Tape* t) -> ValueId {
    ValueId w = t->Param(&p);
    ValueId h = t->MatMul(w, t->Input(x));  // rows x rows
    switch (plan) {
      case 0:
        h = t->Act(Activation::kTanh, h);
        break;
      case 1:
        h = t->Hadamard(h, h);
        break;
      case 2:
        h = t->Add(t->Act(Activation::kSigmoid, h), h);
        break;
      default:
        h = t->Scale(h, -0.7);
        break;
    }
    return t->Mse(h, target);
  };

  p.ZeroGrad();
  {
    Tape t;
    t.Backward(build(&t));
  }
  Matrix analytic = p.grad;
  const double eps = 1e-6;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      double orig = p.value.At(r, c);
      p.value.At(r, c) = orig + eps;
      Tape up;
      double fu = up.value(build(&up)).At(0, 0);
      p.value.At(r, c) = orig - eps;
      Tape down;
      double fd = down.value(build(&down)).At(0, 0);
      p.value.At(r, c) = orig;
      EXPECT_NEAR(analytic.At(r, c), (fu - fd) / (2 * eps), 1e-4)
          << "plan " << plan;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TapeFuzz, ::testing::Range<uint64_t>(1, 17));

// Random batches: packing must round-trip offsets/slices, reproduce the
// folded disjoint union's CSR bit for bit, and leave WL colors of every
// block exactly what the member graph gets standalone.
class GraphBatchFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphBatchFuzz, PackingRoundTripsAndPreservesWlColors) {
  Rng rng(GetParam() * 52501);
  size_t k = 1 + rng.NextBounded(6);
  size_t d = rng.NextBounded(3);  // 0 is a legal (empty) feature dim
  std::vector<Graph> graphs;
  for (size_t i = 0; i < k; ++i) {
    size_t n = 1 + rng.NextBounded(7);  // includes single-vertex graphs
    Graph g(n, d);
    for (size_t u = 0; u < n; ++u) {
      for (size_t v = u + 1; v < n; ++v)
        if (rng.NextBernoulli(0.35)) {
          EXPECT_TRUE(g.AddEdge(static_cast<VertexId>(u),
                                static_cast<VertexId>(v))
                          .ok());
        }
      if (d > 0)
        g.SetOneHotFeature(static_cast<VertexId>(u), rng.NextBounded(d));
    }
    graphs.push_back(std::move(g));
  }
  std::vector<const Graph*> ptrs;
  for (const Graph& g : graphs) ptrs.push_back(&g);
  Result<GraphBatch> batch = GraphBatch::Create(ptrs);
  ASSERT_TRUE(batch.ok());

  // Vertex-offset / segment-id / slice round trip.
  ASSERT_EQ(batch->num_graphs(), k);
  size_t total = 0;
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(batch->graph_offset(i), total);
    EXPECT_EQ(batch->graph_size(i), graphs[i].num_vertices());
    for (size_t v = 0; v < graphs[i].num_vertices(); ++v)
      EXPECT_EQ(batch->segment_of(total + v), i);
    EXPECT_EQ(batch->Slice(batch->features(), i), graphs[i].features());
    total += graphs[i].num_vertices();
  }
  EXPECT_EQ(batch->num_vertices(), total);

  // The packed adjacency is the folded disjoint union's CSR, bit for bit.
  Graph acc = graphs[0];
  for (size_t i = 1; i < k; ++i) acc = *Graph::DisjointUnion(acc, graphs[i]);
  const CsrMatrix& a = batch->adjacency();
  const CsrMatrix& b = acc.Csr().adjacency();
  EXPECT_EQ(a.row_offsets, b.row_offsets);
  EXPECT_EQ(a.col_indices, b.col_indices);

  // Joint color refinement: every batch block stabilizes to exactly the
  // colors its member graph gets standalone — message passing (and hence
  // WL) never crosses a block boundary.
  for (size_t i = 0; i < k; ++i) {
    CrColoring joint = RunColorRefinement({&acc, &graphs[i]});
    for (size_t v = 0; v < graphs[i].num_vertices(); ++v)
      EXPECT_EQ(joint.stable[0][batch->graph_offset(i) + v],
                joint.stable[1][v])
          << "graph " << i << " vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphBatchFuzz,
                         ::testing::Range<uint64_t>(1, 21));

// --------------------------------------------------------------------------

class UpdateLogFuzz : public ::testing::TestWithParam<uint64_t> {};

// Captures the deterministic metrics plane left behind by one replay of
// `log` onto a copy of `base`: registry reset, replay, snapshot with the
// schedule-dependent parallel.* metrics stripped — the same invariant
// subset `gelc_stats --deterministic` serializes.
std::string DeterministicReplayFingerprint(const Graph& base,
                                           const UpdateLog& log) {
  obs::SetMetricsEnabled(true);
  obs::ResetMetricsForTest();
  Graph g = base;
  (void)g.Csr();  // mutations take the delta path, as a streamer would
  ReplayOptions options;
  options.batch_size = 5;
  GELC_CHECK_OK(ReplayUpdateLog(log, &g, options, [&](const ReplayBatch&) {
    return Status::OK();
  }));
  obs::StatsSnapshot snap = obs::Snapshot();
  auto is_schedule = [](const std::string& name) {
    return name.rfind("parallel.", 0) == 0;
  };
  std::erase_if(snap.counters,
                [&](const auto& c) { return is_schedule(c.name); });
  std::erase_if(snap.gauges,
                [&](const auto& s) { return is_schedule(s.name); });
  std::erase_if(snap.histograms,
                [&](const auto& h) { return is_schedule(h.name); });
  snap.timings.clear();
  return obs::SnapshotJson(snap);
}

TEST_P(UpdateLogFuzz, SerializeParseReplayRoundTrips) {
  Rng rng(GetParam() * 19687);
  const bool directed = (GetParam() % 2) == 0;
  Graph base(6 + rng.NextBounded(8), kFeatureDim, directed);
  for (size_t v = 0; v < base.num_vertices(); ++v)
    base.SetOneHotFeature(static_cast<VertexId>(v),
                          rng.NextBounded(kFeatureDim));
  for (size_t u = 0; u < base.num_vertices(); ++u)
    for (size_t v = u + 1; v < base.num_vertices(); ++v)
      if (rng.NextBernoulli(0.25)) {
        EXPECT_TRUE(base.AddEdge(static_cast<VertexId>(u),
                                 static_cast<VertexId>(v))
                        .ok());
      }
  UpdateLog log = GenerateUpdateLog(base, 50, 0.35, &rng);

  // Text round trip is exact: serialize → parse yields the same ops, and
  // re-serializing reproduces the same bytes.
  std::string text = SerializeUpdateLog(log);
  Result<UpdateLog> parsed = ParseUpdateLog(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_vertices, log.num_vertices);
  EXPECT_EQ(parsed->directed, log.directed);
  EXPECT_EQ(parsed->ops, log.ops);
  EXPECT_EQ(SerializeUpdateLog(*parsed), text);

  // Replaying the parsed log reproduces the same final graph as the
  // original...
  Graph from_original = base;
  Graph from_parsed = base;
  GELC_CHECK_OK(ReplayUpdateLog(log, &from_original));
  GELC_CHECK_OK(ReplayUpdateLog(*parsed, &from_parsed));
  EXPECT_EQ(from_original.ToString(), from_parsed.ToString());
  EXPECT_EQ(from_original.num_arcs(), from_parsed.num_arcs());

  // ...and the same deterministic metrics fingerprint, byte for byte —
  // the `gelc_stats --deterministic` contract for the stream.* series.
  EXPECT_EQ(DeterministicReplayFingerprint(base, log),
            DeterministicReplayFingerprint(base, *parsed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateLogFuzz,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace gelc
