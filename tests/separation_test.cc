// Tests for separation-power oracles and the refinement order of slide 25:
// ρ(iso) ⊆ ρ(k-WL) ⊆ ... ⊆ ρ(CR), with GNN probes matching CR.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "graph/generators.h"
#include "separation/oracles.h"

namespace gelc {
namespace {

TEST(OracleTest, CrOracleOnKnownPairs) {
  OraclePtr cr = MakeCrOracle();
  auto [c6, two_c3] = Cr_HardPair();
  EXPECT_TRUE(*cr->Equivalent(c6, two_c3));
  EXPECT_FALSE(*cr->Equivalent(PathGraph(4), StarGraph(3)));
}

TEST(OracleTest, KwlOracleHierarchy) {
  auto [c6, two_c3] = Cr_HardPair();
  EXPECT_TRUE(*MakeKwlOracle(1)->Equivalent(c6, two_c3));
  EXPECT_FALSE(*MakeKwlOracle(2)->Equivalent(c6, two_c3));
}

TEST(OracleTest, IsoOracleGroundTruth) {
  OraclePtr iso = MakeIsomorphismOracle();
  auto [c6, two_c3] = Cr_HardPair();
  EXPECT_FALSE(*iso->Equivalent(c6, two_c3));
  Rng rng(3);
  Graph g = RandomGnp(10, 0.4, &rng);
  Graph h = g.Permuted(rng.Permutation(10)).value();
  EXPECT_TRUE(*iso->Equivalent(g, h));
}

TEST(OracleTest, TreeHomOracleTracksCr) {
  OraclePtr hom = MakeTreeHomOracle(6);
  auto [c6, two_c3] = Cr_HardPair();
  EXPECT_TRUE(*hom->Equivalent(c6, two_c3));
  EXPECT_FALSE(*hom->Equivalent(PathGraph(4), StarGraph(3)));
}

TEST(OracleTest, GnnProbeSeparatesWhatCrSeparates) {
  OraclePtr probe = MakeGnn101ProbeOracle(10, {6, 6}, 1e-6, 42);
  EXPECT_FALSE(*probe->Equivalent(PathGraph(4), StarGraph(3)));
  EXPECT_FALSE(*probe->Equivalent(CycleGraph(5), CycleGraph(6)));
}

TEST(OracleTest, GnnProbeBlindOnCrEquivalentPairs) {
  OraclePtr probe = MakeGnn101ProbeOracle(20, {8, 8}, 1e-6, 42);
  auto [c6, two_c3] = Cr_HardPair();
  EXPECT_TRUE(*probe->Equivalent(c6, two_c3))
      << "GNN101 must not separate CR-equivalent graphs (slide 26)";
  auto [shrikhande, rook] = Srg16Pair();
  EXPECT_TRUE(*probe->Equivalent(shrikhande, rook));
}

TEST(OracleTest, MpnnProbeAggregations) {
  // Sum probes separate C3 from C3+C3 (different vertex counts); mean/max
  // probes cannot: every vertex looks locally identical and pooling by
  // mean/max of identical rows coincides.
  Graph c3 = CycleGraph(3);
  Graph c3c3 = *Graph::DisjointUnion(CycleGraph(3), CycleGraph(3));
  OraclePtr sum = MakeMpnnProbeOracle(10, {6, 6}, 0, 1e-6, 7);
  OraclePtr mean = MakeMpnnProbeOracle(10, {6, 6}, 1, 1e-6, 7);
  OraclePtr max = MakeMpnnProbeOracle(10, {6, 6}, 2, 1e-6, 7);
  EXPECT_FALSE(*sum->Equivalent(c3, c3c3));
  EXPECT_TRUE(*mean->Equivalent(c3, c3c3));
  EXPECT_TRUE(*max->Equivalent(c3, c3c3));
}

TEST(OracleTest, GelSuiteOracle) {
  // Triangle-count suite separates C6 from 2xC3; degree suite does not.
  ExprPtr tri_guard = *Expr::Apply(
      omega::Multiply(1),
      {*Expr::Apply(omega::Multiply(1), {*Expr::Edge(0, 1),
                                         *Expr::Edge(1, 2)}),
       *Expr::Edge(2, 0)});
  ExprPtr triangles =
      *Expr::Aggregate(theta::Sum(1), VarBit(0) | VarBit(1) | VarBit(2),
                       *Expr::Constant({1.0}), tri_guard);
  ExprPtr deg = *Expr::Aggregate(theta::Sum(1), VarBit(1),
                                 *Expr::Constant({1.0}), *Expr::Edge(0, 1));
  ExprPtr total_deg = *Expr::Aggregate(theta::Sum(1), VarBit(0), deg,
                                       nullptr);

  auto [c6, two_c3] = Cr_HardPair();
  OraclePtr tri_suite = MakeGelSuiteOracle({triangles}, 1e-9, "GEL3-tri");
  OraclePtr deg_suite = MakeGelSuiteOracle({total_deg}, 1e-9, "GEL2-deg");
  EXPECT_FALSE(*tri_suite->Equivalent(c6, two_c3));
  EXPECT_TRUE(*deg_suite->Equivalent(c6, two_c3));
}

TEST(OracleTest, ComparePairCollectsVerdicts) {
  auto [c6, two_c3] = Cr_HardPair();
  OraclePtr cr = MakeCrOracle();
  OraclePtr k2 = MakeKwlOracle(2);
  PairVerdicts v = ComparePair("C6 vs 2xC3", c6, two_c3,
                               {cr.get(), k2.get()});
  ASSERT_EQ(v.verdicts.size(), 2u);
  EXPECT_EQ(v.verdicts[0], "equiv");
  EXPECT_EQ(v.verdicts[1], "separated");
  std::string table = FormatVerdictTable({v});
  EXPECT_NE(table.find("C6 vs 2xC3"), std::string::npos);
  EXPECT_NE(table.find("2-WL"), std::string::npos);
}

TEST(OracleTest, ErrorsReportedInline) {
  // k-WL on a too-large graph errors; the comparison harness must not
  // crash but record the error.
  Graph big1 = Graph::Unlabeled(300);
  Graph big2 = Graph::Unlabeled(300);
  OraclePtr k3 = MakeKwlOracle(3);
  PairVerdicts v = ComparePair("big", big1, big2, {k3.get()});
  EXPECT_EQ(v.verdicts[0].rfind("error:", 0), 0u);
}

// Refinement property over random pairs: iso-equivalent => k-WL equivalent
// => CR equivalent (slide 65 chain, sampled).
class RefinementChainTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RefinementChainTest, ChainHolds) {
  Rng rng(GetParam() * 131);
  Graph a = RandomGnp(8, 0.4, &rng);
  Graph b = rng.NextBernoulli(0.5)
                ? a.Permuted(rng.Permutation(8)).value()
                : RandomGnp(8, 0.4, &rng);
  bool iso = *MakeIsomorphismOracle()->Equivalent(a, b);
  bool wl3 = *MakeKwlOracle(3)->Equivalent(a, b);
  bool wl2 = *MakeKwlOracle(2)->Equivalent(a, b);
  bool cr = *MakeCrOracle()->Equivalent(a, b);
  if (iso) {
    EXPECT_TRUE(wl3);
  }
  if (wl3) {
    EXPECT_TRUE(wl2);
  }
  if (wl2) {
    EXPECT_TRUE(cr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinementChainTest,
                         ::testing::Range<uint64_t>(1, 15));

}  // namespace
}  // namespace gelc
