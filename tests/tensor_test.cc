// Unit tests for tensor: Matrix operations and activations.
#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace gelc {
namespace {

TEST(MatrixTest, InitializerListShape) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.At(1, 2), 6.0);
}

TEST(MatrixTest, IdentityMultiplication) {
  Matrix m = {{1, 2}, {3, 4}};
  EXPECT_EQ(m.MatMul(Matrix::Identity(2)), m);
  EXPECT_EQ(Matrix::Identity(2).MatMul(m), m);
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c, Matrix({{19, 22}, {43, 50}}));
}

TEST(MatrixTest, MatMulRectangular) {
  Matrix a = {{1, 0, 2}};       // 1x3
  Matrix b = {{1}, {5}, {-1}};  // 3x1
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c.rows(), 1u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_EQ(c.At(0, 0), -1.0);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(1);
  Matrix m = Matrix::RandomGaussian(3, 5, 1.0, &rng);
  EXPECT_EQ(m.Transposed().Transposed(), m);
}

TEST(MatrixTest, TransposeCommutesWithMatMul) {
  Rng rng(2);
  Matrix a = Matrix::RandomGaussian(3, 4, 1.0, &rng);
  Matrix b = Matrix::RandomGaussian(4, 2, 1.0, &rng);
  // (AB)^T == B^T A^T
  EXPECT_TRUE(a.MatMul(b).Transposed().AllClose(
      b.Transposed().MatMul(a.Transposed()), 1e-12));
}

TEST(MatrixTest, ArithmeticOps) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{10, 20}, {30, 40}};
  EXPECT_EQ(a + b, Matrix({{11, 22}, {33, 44}}));
  EXPECT_EQ(b - a, Matrix({{9, 18}, {27, 36}}));
  EXPECT_EQ(a * 2.0, Matrix({{2, 4}, {6, 8}}));
  EXPECT_EQ(a.Hadamard(b), Matrix({{10, 40}, {90, 160}}));
}

TEST(MatrixTest, RowBroadcast) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix bias = {{10, 100}};
  EXPECT_EQ(a.AddRowBroadcast(bias), Matrix({{11, 102}, {13, 104}}));
}

TEST(MatrixTest, Reductions) {
  Matrix a = {{1, 2}, {3, 4}, {-1, 10}};
  EXPECT_EQ(a.Sum(), 19.0);
  EXPECT_EQ(a.ColSums(), Matrix({{3, 16}}));
  EXPECT_TRUE(a.ColMeans().AllClose(Matrix({{1.0, 16.0 / 3.0}})));
  EXPECT_EQ(a.ColMax(), Matrix({{3, 10}}));
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix a = {{3, 4}};
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, IsZero) {
  EXPECT_TRUE(Matrix(3, 2).IsZero());
  EXPECT_TRUE(Matrix().IsZero());
  EXPECT_TRUE(Matrix({{0.0, -0.0}}).IsZero());
  EXPECT_FALSE(Matrix({{0.0, 1e-300}}).IsZero());
  Matrix m(4, 4);
  m.At(3, 3) = -2.5;
  EXPECT_FALSE(m.IsZero());
  // Subnormals count as nonzero even though their squares underflow.
  EXPECT_FALSE(Matrix({{5e-324}}).IsZero());
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a = {{1, 2}};
  Matrix b = {{1.5, -1}};
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 3.0);
}

TEST(MatrixTest, ConcatCols) {
  Matrix a = {{1}, {2}};
  Matrix b = {{3, 4}, {5, 6}};
  EXPECT_EQ(a.ConcatCols(b), Matrix({{1, 3, 4}, {2, 5, 6}}));
}

TEST(MatrixTest, RowAccessAndSet) {
  Matrix a = {{1, 2}, {3, 4}};
  EXPECT_EQ(a.Row(1), Matrix({{3, 4}}));
  a.SetRow(0, Matrix({{9, 8}}));
  EXPECT_EQ(a, Matrix({{9, 8}, {3, 4}}));
}

TEST(MatrixTest, MapApplies) {
  Matrix a = {{-1, 4}};
  Matrix sq = a.Map([](double x) { return x * x; });
  EXPECT_EQ(sq, Matrix({{1, 16}}));
}

TEST(MatrixTest, RandomUniformInRange) {
  Rng rng(3);
  Matrix m = Matrix::RandomUniform(10, 10, -2.0, 3.0, &rng);
  for (double x : m.data()) {
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(MatrixTest, ToStringRendering) {
  Matrix a = {{1, 2}, {3, 4}};
  EXPECT_EQ(a.ToString(), "[[1, 2], [3, 4]]");
}

struct ActivationCase {
  Activation act;
  double in;
  double expected;
};

class ActivationParamTest : public ::testing::TestWithParam<ActivationCase> {};

TEST_P(ActivationParamTest, Value) {
  const ActivationCase& c = GetParam();
  EXPECT_NEAR(ApplyActivation(c.act, c.in), c.expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Activations, ActivationParamTest,
    ::testing::Values(
        ActivationCase{Activation::kReLU, -1.0, 0.0},
        ActivationCase{Activation::kReLU, 2.5, 2.5},
        ActivationCase{Activation::kIdentity, -3.0, -3.0},
        ActivationCase{Activation::kSign, -0.5, -1.0},
        ActivationCase{Activation::kSign, 0.0, 0.0},
        ActivationCase{Activation::kSign, 7.0, 1.0},
        ActivationCase{Activation::kSigmoid, 0.0, 0.5},
        ActivationCase{Activation::kTanh, 0.0, 0.0},
        ActivationCase{Activation::kClippedReLU, -1.0, 0.0},
        ActivationCase{Activation::kClippedReLU, 0.5, 0.5},
        ActivationCase{Activation::kClippedReLU, 3.0, 1.0}));

class ActivationGradTest : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradTest, MatchesFiniteDifference) {
  Activation act = GetParam();
  const double h = 1e-6;
  // Avoid the kink points of the piecewise activations.
  for (double x : {-1.7, -0.42, 0.33, 0.77, 1.9}) {
    double fd = (ApplyActivation(act, x + h) - ApplyActivation(act, x - h)) /
                (2 * h);
    EXPECT_NEAR(ActivationGrad(act, x), fd, 1e-5)
        << ActivationName(act) << " at " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllActivations, ActivationGradTest,
    ::testing::Values(Activation::kIdentity, Activation::kReLU,
                      Activation::kSigmoid, Activation::kTanh,
                      Activation::kClippedReLU));

TEST(ActivationTest, ParseRoundTrips) {
  for (Activation a :
       {Activation::kIdentity, Activation::kReLU, Activation::kSigmoid,
        Activation::kTanh, Activation::kSign, Activation::kClippedReLU}) {
    Result<Activation> parsed = ParseActivation(ActivationName(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(ParseActivation("swish").ok());
}

TEST(SoftmaxTest, RowsSumToOne) {
  Matrix logits = {{1, 2, 3}, {-100, 0, 100}};
  Matrix p = RowSoftmax(logits);
  for (size_t i = 0; i < p.rows(); ++i) {
    double s = 0;
    for (size_t j = 0; j < p.cols(); ++j) {
      s += p.At(i, j);
      EXPECT_GE(p.At(i, j), 0.0);
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(SoftmaxTest, StableAtExtremeLogits) {
  Matrix logits = {{1000, 1001, 999}};
  Matrix p = RowSoftmax(logits);
  EXPECT_FALSE(std::isnan(p.At(0, 0)));
  EXPECT_GT(p.At(0, 1), p.At(0, 0));
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Matrix logits = {{0.3, -1.2, 2.0}};
  Matrix lp = RowLogSoftmax(logits);
  Matrix p = RowSoftmax(logits);
  for (size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(lp.At(0, j), std::log(p.At(0, j)), 1e-12);
}

TEST(ArgmaxTest, PicksFirstMaximum) {
  Matrix m = {{1, 3, 3}, {5, 2, 1}};
  std::vector<size_t> a = RowArgmax(m);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[1], 0u);
}

}  // namespace
}  // namespace gelc
