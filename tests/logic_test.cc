// Tests for graded modal logic and its compilation to GNN-101 weights
// (slide 54, Barceló et al.).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "graph/generators.h"
#include "logic/gml.h"
#include "logic/gml_to_gnn.h"

namespace gelc {
namespace {

// A labelled test graph: path 0-1-2-3 with labels A,B,A,B (2-dim one-hot).
Graph LabelledPath() {
  Graph g(4, 2);
  for (VertexId v = 0; v < 3; ++v) {
    Status s = g.AddEdge(v, v + 1);
    EXPECT_TRUE(s.ok());
  }
  g.SetOneHotFeature(0, 0);
  g.SetOneHotFeature(1, 1);
  g.SetOneHotFeature(2, 0);
  g.SetOneHotFeature(3, 1);
  return g;
}

TEST(GmlTest, TrueHoldsEverywhere) {
  Graph g = LabelledPath();
  std::vector<bool> v = *EvaluateGml(GmlFormula::True(), g);
  EXPECT_EQ(v, std::vector<bool>(4, true));
}

TEST(GmlTest, LabelAtom) {
  Graph g = LabelledPath();
  std::vector<bool> a = *EvaluateGml(GmlFormula::Label(0), g);
  EXPECT_EQ(a, (std::vector<bool>{true, false, true, false}));
}

TEST(GmlTest, BooleanConnectives) {
  Graph g = LabelledPath();
  GmlPtr la = GmlFormula::Label(0);
  GmlPtr lb = GmlFormula::Label(1);
  EXPECT_EQ(*EvaluateGml(GmlFormula::Not(la), g),
            (std::vector<bool>{false, true, false, true}));
  EXPECT_EQ(*EvaluateGml(GmlFormula::And(la, lb), g),
            (std::vector<bool>{false, false, false, false}));
  EXPECT_EQ(*EvaluateGml(GmlFormula::Or(la, lb), g),
            (std::vector<bool>{true, true, true, true}));
}

TEST(GmlTest, GradedDiamondCountsNeighbors) {
  Graph g = LabelledPath();
  // "at least 2 neighbors with label A": only vertices 1 and... vertex 1
  // has neighbors {0, 2} both A; vertex 3 has neighbor {2} A only.
  GmlPtr f = GmlFormula::AtLeast(2, GmlFormula::Label(0));
  EXPECT_EQ(*EvaluateGml(f, g),
            (std::vector<bool>{false, true, false, false}));
  // "at least 1 neighbor with label B": vertices 0 and 2 (neighbor 1/3).
  GmlPtr f1 = GmlFormula::AtLeast(1, GmlFormula::Label(1));
  EXPECT_EQ(*EvaluateGml(f1, g),
            (std::vector<bool>{true, false, true, false}));
}

TEST(GmlTest, NestedModality) {
  Graph g = LabelledPath();
  // ◇≥1 ◇≥2 lab_A: a neighbor having >=2 A-neighbors, i.e. a neighbor of
  // vertex 1: vertices 0 and 2.
  GmlPtr f = GmlFormula::AtLeast(
      1, GmlFormula::AtLeast(2, GmlFormula::Label(0)));
  EXPECT_EQ(*EvaluateGml(f, g),
            (std::vector<bool>{true, false, true, false}));
}

TEST(GmlTest, LabelIndexValidation) {
  Graph g = LabelledPath();
  EXPECT_FALSE(EvaluateGml(GmlFormula::Label(5), g).ok());
}

TEST(GmlTest, HeightAndDim) {
  GmlPtr f = GmlFormula::AtLeast(
      1, GmlFormula::And(GmlFormula::Label(0),
                         GmlFormula::Not(GmlFormula::Label(1))));
  EXPECT_EQ(f->Height(), 4u);
  EXPECT_EQ(f->MinFeatureDim(), 2u);
}

TEST(GmlTest, ToStringRendering) {
  GmlPtr f = GmlFormula::AtLeast(2, GmlFormula::Or(GmlFormula::Label(0),
                                                   GmlFormula::True()));
  EXPECT_EQ(f->ToString(), "<>2 (lab_0 | true)");
}

TEST(GmlToGnnTest, SingleLabelFormula) {
  Graph g = LabelledPath();
  Result<CompiledGmlGnn> compiled = CompileGmlToGnn(GmlFormula::Label(1), 2);
  ASSERT_TRUE(compiled.ok());
  Matrix f = *compiled->model.VertexEmbeddings(g);
  std::vector<bool> truth = *EvaluateGml(GmlFormula::Label(1), g);
  for (size_t v = 0; v < 4; ++v)
    EXPECT_EQ(f.At(v, compiled->output_coordinate) == 1.0, truth[v]);
}

TEST(GmlToGnnTest, DiamondFormula) {
  Graph g = LabelledPath();
  GmlPtr formula = GmlFormula::AtLeast(2, GmlFormula::Label(0));
  Result<CompiledGmlGnn> compiled = CompileGmlToGnn(formula, 2);
  ASSERT_TRUE(compiled.ok());
  Matrix f = *compiled->model.VertexEmbeddings(g);
  std::vector<bool> truth = *EvaluateGml(formula, g);
  for (size_t v = 0; v < 4; ++v)
    EXPECT_EQ(f.At(v, compiled->output_coordinate) == 1.0, truth[v]) << v;
}

TEST(GmlToGnnTest, SharedSubformulasCompileOnce) {
  GmlPtr la = GmlFormula::Label(0);
  GmlPtr f = GmlFormula::And(la, la);
  Result<CompiledGmlGnn> compiled = CompileGmlToGnn(f, 2);
  ASSERT_TRUE(compiled.ok());
  Graph g = LabelledPath();
  Matrix out = *compiled->model.VertexEmbeddings(g);
  for (size_t v = 0; v < 4; ++v)
    EXPECT_EQ(out.At(v, compiled->output_coordinate),
              g.features().At(v, 0));
}

TEST(GmlToGnnTest, ValidatesFeatureDim) {
  EXPECT_FALSE(CompileGmlToGnn(GmlFormula::Label(3), 2).ok());
  EXPECT_FALSE(CompileGmlToGnn(nullptr, 2).ok());
}

// Property test: on random labelled graphs, the compiled GNN agrees with
// the model checker on random formulas — the constructive half of
// "MPNNs express all of graded modal logic" (slide 54).
class GmlGnnAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GmlGnnAgreementTest, CompiledGnnMatchesModelChecker) {
  Rng rng(GetParam() * 104729);
  constexpr size_t kLabels = 3;
  // Random labelled graph.
  size_t n = 6 + rng.NextBounded(8);
  Graph g = RandomGnp(n, 0.3, &rng);
  Graph labelled(n, kLabels);
  for (size_t u = 0; u < n; ++u) {
    for (VertexId v : g.Neighbors(static_cast<VertexId>(u))) {
      if (v < u) continue;
      ASSERT_TRUE(labelled.AddEdge(static_cast<VertexId>(u), v).ok());
    }
    labelled.SetOneHotFeature(static_cast<VertexId>(u),
                              rng.NextBounded(kLabels));
  }
  for (int trial = 0; trial < 5; ++trial) {
    GmlPtr formula =
        GmlFormula::Random(2 + rng.NextBounded(4), kLabels, 3, &rng);
    Result<CompiledGmlGnn> compiled = CompileGmlToGnn(formula, kLabels);
    ASSERT_TRUE(compiled.ok());
    Matrix f = *compiled->model.VertexEmbeddings(labelled);
    std::vector<bool> truth = *EvaluateGml(formula, labelled);
    for (size_t v = 0; v < n; ++v) {
      EXPECT_EQ(f.At(v, compiled->output_coordinate) == 1.0, truth[v])
          << "formula " << formula->ToString() << " at vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GmlGnnAgreementTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace gelc
