// Compilation of graded modal logic into GNN-101 weights.
//
// Slide 54: "MPNN(Ω,Θ) can express any unary query expressible in graded
// modal logic. GNNs 101 already suffice for this." This module realizes
// that direction constructively (following Barceló et al., ICLR 2020):
// each subformula gets a feature coordinate, each layer computes the
// subformulas of the next height with the truncated-ReLU arithmetization
//   ¬x = 1 - x,  x ∧ y = clip(x + y - 1),  x ∨ y = clip(x + y),
//   ◇≥n φ = clip(Σ_{u ∈ N(v)} x_φ(u) - n + 1).
//
// Requirement: graph features are 0/1 valued (one-hot label encodings), so
// the clipped-ReLU carries them through layers unchanged.
#ifndef GELC_LOGIC_GML_TO_GNN_H_
#define GELC_LOGIC_GML_TO_GNN_H_

#include "base/status.h"
#include "gnn/gnn101.h"
#include "logic/gml.h"

namespace gelc {

/// A GNN-101 model computing a GML query, plus the coordinate of the
/// output feature holding the query's 0/1 truth value per vertex.
struct CompiledGmlGnn {
  Gnn101Model model;
  size_t output_coordinate;
};

/// Compiles `formula` into GNN-101 weights for graphs of the given feature
/// dimension. The resulting model satisfies, for every graph g with 0/1
/// features and every vertex v:
///   VertexEmbeddings(g)(v, output_coordinate) == 1.0 iff (g, v) ⊨ formula.
Result<CompiledGmlGnn> CompileGmlToGnn(const GmlPtr& formula,
                                       size_t feature_dim);

}  // namespace gelc

#endif  // GELC_LOGIC_GML_TO_GNN_H_
