// Graded modal logic (GML) over vertex-labelled graphs.
//
// Slide 54 (Barceló et al., ICLR 2020): MPNN(Ω,Θ) can express exactly the
// unary first-order queries expressible in graded modal logic:
//
//   φ ::= ⊤ | lab_j | ¬φ | φ ∧ φ | φ ∨ φ | ◇_{≥n} φ
//
// where lab_j holds at v iff the j-th label component of v is >= 0.5
// (one-hot alphabets), and ◇_{≥n} φ holds at v iff at least n neighbors of
// v satisfy φ.
#ifndef GELC_LOGIC_GML_H_
#define GELC_LOGIC_GML_H_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "graph/graph.h"

namespace gelc {

class GmlFormula;
using GmlPtr = std::shared_ptr<const GmlFormula>;

/// An immutable GML formula node. Build via the static factories.
class GmlFormula {
 public:
  enum class Kind { kTrue, kLabel, kNot, kAnd, kOr, kAtLeast };

  static GmlPtr True();
  /// lab_j: the j-th label component is set.
  static GmlPtr Label(size_t j);
  static GmlPtr Not(GmlPtr f);
  static GmlPtr And(GmlPtr a, GmlPtr b);
  static GmlPtr Or(GmlPtr a, GmlPtr b);
  /// ◇_{≥n} φ: at least n neighbors satisfy φ (n >= 1).
  static GmlPtr AtLeast(size_t n, GmlPtr f);

  Kind kind() const { return kind_; }
  size_t label_index() const { return label_index_; }
  size_t count() const { return count_; }
  const GmlPtr& left() const { return left_; }
  const GmlPtr& right() const { return right_; }

  /// Modal/boolean nesting height; ⊤ and lab_j have height 1.
  size_t Height() const;
  /// Maximum label index referenced plus one (0 if no labels appear).
  size_t MinFeatureDim() const;
  /// Textual rendering, e.g. "(lab_0 ∧ ◇≥2 ¬lab_1)".
  std::string ToString() const;

  /// Samples a random formula of the given height over `num_labels` label
  /// predicates; grades are drawn from [1, max_grade].
  static GmlPtr Random(size_t height, size_t num_labels, size_t max_grade,
                       Rng* rng);

 private:
  GmlFormula(Kind kind, size_t label_index, size_t count, GmlPtr left,
             GmlPtr right)
      : kind_(kind),
        label_index_(label_index),
        count_(count),
        left_(std::move(left)),
        right_(std::move(right)) {}

  Kind kind_;
  size_t label_index_;
  size_t count_;
  GmlPtr left_;
  GmlPtr right_;
};

/// Model checking: result[v] = true iff (g, v) ⊨ f. Errors if the formula
/// references a label index beyond g's feature dimension.
Result<std::vector<bool>> EvaluateGml(const GmlPtr& f, const Graph& g);

}  // namespace gelc

#endif  // GELC_LOGIC_GML_H_
