#include "logic/gml_to_gnn.h"

#include <map>
#include <string>
#include <vector>

#include "base/logging.h"

namespace gelc {

namespace {

// Deduplicated post-order catalogue of subformulas.
struct Catalogue {
  std::vector<GmlPtr> formulas;              // index -> subformula
  std::map<std::string, size_t> index_of;    // canonical text -> index
};

size_t Collect(const GmlPtr& f, Catalogue* cat) {
  std::string key = f->ToString();
  auto it = cat->index_of.find(key);
  if (it != cat->index_of.end()) return it->second;
  if (f->left() != nullptr) Collect(f->left(), cat);
  if (f->right() != nullptr) Collect(f->right(), cat);
  size_t idx = cat->formulas.size();
  cat->formulas.push_back(f);
  cat->index_of.emplace(std::move(key), idx);
  return idx;
}

}  // namespace

Result<CompiledGmlGnn> CompileGmlToGnn(const GmlPtr& formula,
                                       size_t feature_dim) {
  if (formula == nullptr) return Status::InvalidArgument("null formula");
  if (formula->MinFeatureDim() > feature_dim) {
    return Status::InvalidArgument(
        "formula references label index beyond feature_dim");
  }
  Catalogue cat;
  size_t root = Collect(formula, &cat);
  size_t s = cat.formulas.size();
  size_t total = feature_dim + s;  // label coords, then subformula coords

  auto column_of = [&](const GmlPtr& f) {
    auto it = cat.index_of.find(f->ToString());
    GELC_CHECK(it != cat.index_of.end());
    return feature_dim + it->second;
  };

  size_t num_layers = formula->Height();
  std::vector<Gnn101Layer> layers;
  for (size_t t = 1; t <= num_layers; ++t) {
    Gnn101Layer layer;
    size_t in_dim = (t == 1) ? feature_dim : total;
    layer.w1 = Matrix(in_dim, total);
    layer.w2 = Matrix(in_dim, total);
    layer.b = Matrix(1, total);
    layer.act = Activation::kClippedReLU;
    // Carry input labels forward (0/1 values are fixed by clip).
    for (size_t j = 0; j < feature_dim; ++j) layer.w1.At(j, j) = 1.0;
    for (size_t i = 0; i < s; ++i) {
      const GmlPtr& f = cat.formulas[i];
      size_t h = f->Height();
      size_t col = feature_dim + i;
      if (h < t && t > 1) {
        // Already computed: carry forward.
        layer.w1.At(col, col) = 1.0;
        continue;
      }
      if (h != t) continue;  // computed in a later layer
      switch (f->kind()) {
        case GmlFormula::Kind::kTrue:
          layer.b.At(0, col) = 1.0;
          break;
        case GmlFormula::Kind::kLabel:
          layer.w1.At(f->label_index(), col) = 1.0;
          break;
        case GmlFormula::Kind::kNot:
          layer.w1.At(column_of(f->left()), col) = -1.0;
          layer.b.At(0, col) = 1.0;
          break;
        case GmlFormula::Kind::kAnd:
          layer.w1.At(column_of(f->left()), col) += 1.0;
          layer.w1.At(column_of(f->right()), col) += 1.0;
          layer.b.At(0, col) = -1.0;
          break;
        case GmlFormula::Kind::kOr:
          layer.w1.At(column_of(f->left()), col) += 1.0;
          layer.w1.At(column_of(f->right()), col) += 1.0;
          break;
        case GmlFormula::Kind::kAtLeast:
          layer.w2.At(column_of(f->left()), col) = 1.0;
          layer.b.At(0, col) = -(static_cast<double>(f->count()) - 1.0);
          break;
      }
    }
    layers.push_back(std::move(layer));
  }
  CompiledGmlGnn out{Gnn101Model(std::move(layers)), feature_dim + root};
  return out;
}

}  // namespace gelc
