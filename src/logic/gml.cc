#include "logic/gml.h"

#include <algorithm>

#include "base/logging.h"

namespace gelc {

GmlPtr GmlFormula::True() {
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into GmlPtr
  return GmlPtr(new GmlFormula(Kind::kTrue, 0, 0, nullptr, nullptr));
}

GmlPtr GmlFormula::Label(size_t j) {
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into GmlPtr
  return GmlPtr(new GmlFormula(Kind::kLabel, j, 0, nullptr, nullptr));
}

GmlPtr GmlFormula::Not(GmlPtr f) {
  GELC_CHECK(f != nullptr);
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into GmlPtr
  return GmlPtr(new GmlFormula(Kind::kNot, 0, 0, std::move(f), nullptr));
}

GmlPtr GmlFormula::And(GmlPtr a, GmlPtr b) {
  GELC_CHECK(a != nullptr && b != nullptr);
  return GmlPtr(
      // NOLINTNEXTLINE(banned-alloc): private ctor, goes into GmlPtr
      new GmlFormula(Kind::kAnd, 0, 0, std::move(a), std::move(b)));
}

GmlPtr GmlFormula::Or(GmlPtr a, GmlPtr b) {
  GELC_CHECK(a != nullptr && b != nullptr);
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into GmlPtr
  return GmlPtr(new GmlFormula(Kind::kOr, 0, 0, std::move(a), std::move(b)));
}

GmlPtr GmlFormula::AtLeast(size_t n, GmlPtr f) {
  GELC_CHECK(n >= 1);
  GELC_CHECK(f != nullptr);
  return GmlPtr(
      // NOLINTNEXTLINE(banned-alloc): private ctor, goes into GmlPtr
      new GmlFormula(Kind::kAtLeast, 0, n, std::move(f), nullptr));
}

size_t GmlFormula::Height() const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kLabel:
      return 1;
    case Kind::kNot:
    case Kind::kAtLeast:
      return 1 + left_->Height();
    case Kind::kAnd:
    case Kind::kOr:
      return 1 + std::max(left_->Height(), right_->Height());
  }
  return 1;
}

size_t GmlFormula::MinFeatureDim() const {
  switch (kind_) {
    case Kind::kTrue:
      return 0;
    case Kind::kLabel:
      return label_index_ + 1;
    case Kind::kNot:
    case Kind::kAtLeast:
      return left_->MinFeatureDim();
    case Kind::kAnd:
    case Kind::kOr:
      return std::max(left_->MinFeatureDim(), right_->MinFeatureDim());
  }
  return 0;
}

std::string GmlFormula::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kLabel:
      return "lab_" + std::to_string(label_index_);
    case Kind::kNot:
      return "!" + left_->ToString();
    case Kind::kAnd:
      return "(" + left_->ToString() + " & " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " | " + right_->ToString() + ")";
    case Kind::kAtLeast:
      return "<>" + std::to_string(count_) + " " + left_->ToString();
  }
  return "?";
}

GmlPtr GmlFormula::Random(size_t height, size_t num_labels, size_t max_grade,
                          Rng* rng) {
  GELC_CHECK(height >= 1 && num_labels >= 1 && max_grade >= 1);
  if (height == 1) {
    if (rng->NextBounded(4) == 0) return True();
    return Label(rng->NextBounded(num_labels));
  }
  switch (rng->NextBounded(4)) {
    case 0:
      return Not(Random(height - 1, num_labels, max_grade, rng));
    case 1:
      return And(Random(height - 1, num_labels, max_grade, rng),
                 Random(1 + rng->NextBounded(height - 1), num_labels,
                        max_grade, rng));
    case 2:
      return Or(Random(height - 1, num_labels, max_grade, rng),
                Random(1 + rng->NextBounded(height - 1), num_labels,
                       max_grade, rng));
    default:
      return AtLeast(1 + rng->NextBounded(max_grade),
                     Random(height - 1, num_labels, max_grade, rng));
  }
}

Result<std::vector<bool>> EvaluateGml(const GmlPtr& f, const Graph& g) {
  if (f == nullptr) return Status::InvalidArgument("null formula");
  if (f->MinFeatureDim() > g.feature_dim()) {
    return Status::InvalidArgument(
        "formula references label index beyond graph feature dim");
  }
  size_t n = g.num_vertices();
  switch (f->kind()) {
    case GmlFormula::Kind::kTrue:
      return std::vector<bool>(n, true);
    case GmlFormula::Kind::kLabel: {
      std::vector<bool> out(n);
      for (size_t v = 0; v < n; ++v)
        out[v] = g.features().At(v, f->label_index()) >= 0.5;
      return out;
    }
    case GmlFormula::Kind::kNot: {
      GELC_ASSIGN_OR_RETURN(std::vector<bool> a, EvaluateGml(f->left(), g));
      for (size_t v = 0; v < n; ++v) a[v] = !a[v];
      return a;
    }
    case GmlFormula::Kind::kAnd:
    case GmlFormula::Kind::kOr: {
      GELC_ASSIGN_OR_RETURN(std::vector<bool> a, EvaluateGml(f->left(), g));
      GELC_ASSIGN_OR_RETURN(std::vector<bool> b, EvaluateGml(f->right(), g));
      bool is_and = f->kind() == GmlFormula::Kind::kAnd;
      for (size_t v = 0; v < n; ++v)
        a[v] = is_and ? (a[v] && b[v]) : (a[v] || b[v]);
      return a;
    }
    case GmlFormula::Kind::kAtLeast: {
      GELC_ASSIGN_OR_RETURN(std::vector<bool> a, EvaluateGml(f->left(), g));
      std::vector<bool> out(n);
      for (size_t v = 0; v < n; ++v) {
        size_t hits = 0;
        for (VertexId u : g.Neighbors(static_cast<VertexId>(v)))
          if (a[u]) ++hits;
        out[v] = hits >= f->count();
      }
      return out;
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace gelc
