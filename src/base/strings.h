// Small string helpers shared across the library.
#ifndef GELC_BASE_STRINGS_H_
#define GELC_BASE_STRINGS_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace gelc {

/// Formats a double with enough digits to round-trip exactly through
/// strtod (shortest form up to 17 significant digits).
inline std::string FormatDouble(double x) {
  char buf[40];
  // %.17g always round-trips; try shorter forms first for readability.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, x);
    if (std::strtod(buf, nullptr) == x) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through,
/// so valid UTF-8 stays valid UTF-8).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace gelc

#endif  // GELC_BASE_STRINGS_H_
