// Small string helpers shared across the library.
#ifndef GELC_BASE_STRINGS_H_
#define GELC_BASE_STRINGS_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace gelc {

/// Formats a double with enough digits to round-trip exactly through
/// strtod (shortest form up to 17 significant digits).
inline std::string FormatDouble(double x) {
  char buf[40];
  // %.17g always round-trips; try shorter forms first for readability.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, x);
    if (std::strtod(buf, nullptr) == x) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

}  // namespace gelc

#endif  // GELC_BASE_STRINGS_H_
