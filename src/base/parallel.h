// Data-parallel loops over a lazily-initialized global thread pool.
//
// This is the execution substrate for the hot paths (MatMul, color
// refinement, k-WL recoloring, kernel Gram matrices). The design contract,
// spelled out in DESIGN.md ("Threading model"):
//
//  - Thread count comes from GELC_NUM_THREADS (>= 1) if set, otherwise
//    std::thread::hardware_concurrency(); GELC_NUM_THREADS=1 forces every
//    ParallelFor onto the calling thread (the serial path).
//  - Shard boundaries are a pure function of (range, grain, thread count),
//    and every wired-in algorithm writes disjoint output slots per index,
//    so results are bit-identical for any thread count.
//  - Exceptions thrown inside shards are captured and the first one is
//    rethrown on the calling thread after all shards finish.
//  - ParallelFor called from inside a pool worker runs inline (serial):
//    nesting can never deadlock on the pool's own queue.
#ifndef GELC_BASE_PARALLEL_H_
#define GELC_BASE_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace gelc {

/// Number of threads ParallelFor fans out across (>= 1). Reads the
/// GELC_NUM_THREADS override first, then hardware concurrency.
size_t ParallelThreadCount();

/// Overrides the thread count at runtime (benchmarks sweep 1/2/4/8 with
/// this). Passing 0 restores the GELC_NUM_THREADS / hardware default.
void SetParallelThreadCount(size_t n);

/// True while the calling thread is a pool worker executing a shard.
bool InParallelWorker();

/// Invokes fn(shard_begin, shard_end) over a disjoint cover of
/// [begin, end), with at most ParallelThreadCount() shards of at least
/// `grain` indices each (the final shard may be smaller). Shard 0 runs on
/// the calling thread; the rest run on the global pool. Blocks until all
/// shards finish; rethrows the first shard exception.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Evaluates fn(i) for i in [0, n) in parallel and returns the results in
/// index order (deterministic regardless of shard schedule).
template <typename Fn>
auto ParallelMap(size_t n, size_t grain, Fn&& fn)
    -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> out(n);
  ParallelFor(0, n, grain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

}  // namespace gelc

#endif  // GELC_BASE_PARALLEL_H_
