#include "base/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

// The pool instruments itself with counters and trace spans, which lives
// one layer up. This is the single sanctioned base -> obs edge: obs is
// header-only from base's perspective and keeping the instrumentation
// here beats pushing a callback seam through every parallel call site.
#include "obs/metrics.h"  // NOLINT(include-layering)
#include "obs/timing.h"   // NOLINT(include-layering)
#include "obs/trace.h"    // NOLINT(include-layering)

namespace gelc {

namespace {

thread_local bool tls_in_worker = false;

// Global work-queue pool. Workers are spawned lazily (first parallel call)
// and grown on demand, never shrunk; the Meyers singleton joins them at
// process exit, by which point ParallelFor guarantees the queue is empty.
class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool pool;
    return pool;
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Grows the pool to at least n workers.
  void EnsureWorkers(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    while (workers_.size() < n) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  size_t num_workers() {
    std::lock_guard<std::mutex> lock(mu_);
    return workers_.size();
  }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  ThreadPool() = default;

  void WorkerLoop() {
    tls_in_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

size_t DefaultThreadCount() {
  if (const char* env = std::getenv("GELC_NUM_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

std::atomic<size_t> g_thread_override{0};

}  // namespace

size_t ParallelThreadCount() {
  size_t forced = g_thread_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  static const size_t kDefault = DefaultThreadCount();
  return kDefault;
}

void SetParallelThreadCount(size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

bool InParallelWorker() { return tls_in_worker; }

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t n = end - begin;
  const size_t threads = ParallelThreadCount();
  const size_t shards = std::min(threads, (n + grain - 1) / grain);
  static obs::Counter* calls = obs::GetCounter("parallel.calls");
  calls->Increment();
  // Serial path: one thread configured, range below the grain, or already
  // inside a pool worker (a nested wait on the pool could deadlock).
  if (shards <= 1 || tls_in_worker) {
    static obs::Counter* serial = obs::GetCounter("parallel.serial_calls");
    serial->Increment();
    fn(begin, end);
    return;
  }

  // Deterministic scheduling facts only: tasks handed to the pool and the
  // shard fan-out per call. Observed queue depth would be racy and vary
  // run to run, so it stays out of the registry.
  static obs::Counter* scheduled = obs::GetCounter("parallel.tasks_scheduled");
  scheduled->Add(shards - 1);
  static obs::Histogram* shard_hist = obs::GetHistogram(
      "parallel.shards_per_call", {1, 2, 4, 8, 16, 32, 64});
  shard_hist->Observe(static_cast<int64_t>(shards));
  GELC_TRACE_SPAN("parallel.for", {{"n", n}, {"shards", shards}});
  GELC_OBS_TIME("parallel.for");

  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(shards - 1);

  struct SharedState {
    std::mutex mu;
    std::condition_variable done;
    size_t pending;
    std::exception_ptr error;
  } state;
  state.pending = shards - 1;

  // Deterministic even split: the first n % shards shards get one extra
  // index. Shard 0 runs on the calling thread after the rest are queued.
  const size_t chunk = n / shards;
  const size_t rem = n % shards;
  std::vector<std::pair<size_t, size_t>> bounds(shards);
  size_t next = begin;
  for (size_t s = 0; s < shards; ++s) {
    size_t len = chunk + (s < rem ? 1 : 0);
    bounds[s] = {next, next + len};
    next += len;
  }

  for (size_t s = 1; s < shards; ++s) {
    const size_t b = bounds[s].first;
    const size_t e = bounds[s].second;
    pool.Submit([&state, &fn, b, e, s] {
      // Span and timer live in an inner scope so their destructors (which
      // record the observations) run before the completion signal below:
      // once pending hits 0 the caller may return and tear down state the
      // next snapshot depends on, so nothing observable may trail it.
      {
        GELC_TRACE_SPAN("parallel.shard", {{"shard", s}, {"len", e - b}});
        GELC_OBS_TIME("parallel.shard");
        try {
          fn(b, e);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state.mu);
          if (!state.error) state.error = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.pending == 0) state.done.notify_one();
    });
  }
  try {
    GELC_TRACE_SPAN("parallel.shard",
                    {{"shard", 0}, {"len", bounds[0].second - bounds[0].first}});
    GELC_OBS_TIME("parallel.shard");
    fn(bounds[0].first, bounds[0].second);
  } catch (...) {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.error) state.error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done.wait(lock, [&state] { return state.pending == 0; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace gelc
