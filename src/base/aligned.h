// Over-aligned storage for the tensor substrate.
//
// The SIMD kernel tier (tensor/simd.h) reads matrix storage with 256-bit
// vector loads. Hardware handles unaligned vector loads, but aligned,
// cache-line-resident buffers keep every load inside one line and make
// the aligned-path DCHECKs in the kernels meaningful, so Matrix (and any
// other vector-consumed buffer) allocates through this allocator at
// 64-byte (cache line) alignment.
#ifndef GELC_BASE_ALIGNED_H_
#define GELC_BASE_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace gelc {

/// Cache-line alignment used for all vector-kernel-visible buffers.
inline constexpr size_t kVectorAlignment = 64;

/// A minimal std::allocator drop-in that over-aligns every allocation.
/// Stateless: all instances compare equal, so containers can move/swap
/// storage freely.
template <typename T, size_t Alignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Alignment>&) const noexcept {
    return false;
  }
};

/// The double buffer type backing Matrix and the kernels' scratch rows:
/// a std::vector whose data() is always 64-byte aligned.
using AlignedVector =
    std::vector<double, AlignedAllocator<double, kVectorAlignment>>;

/// True when `p` sits on a kVectorAlignment boundary (DCHECK helper for
/// the SIMD kernels).
inline bool IsVectorAligned(const void* p) {
  return (reinterpret_cast<uintptr_t>(p) % kVectorAlignment) == 0;
}

}  // namespace gelc

#endif  // GELC_BASE_ALIGNED_H_
