// Hashing utilities: 64-bit FNV-1a, hash combining, and an interning table
// that maps arbitrary byte signatures to small dense canonical ids.
//
// Canonical ids are the backbone of the WL implementations: two vertices
// (possibly in different graphs) receive the same color id iff their
// refinement signatures are identical, which makes colorings directly
// comparable across graphs.
#ifndef GELC_BASE_HASH_H_
#define GELC_BASE_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gelc {

/// 64-bit FNV-1a over a byte range.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

/// Boost-style hash combining with 64-bit golden-ratio mixing.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

/// Hashes a vector of u64 values order-sensitively.
inline uint64_t HashU64Span(const uint64_t* data, size_t n) {
  uint64_t h = 0x2545F4914F6CDD1DULL;
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, data[i]);
  return h;
}

/// Serializes u64 words to bytes (the encoding Interner::InternWords
/// uses). Signature bytes can be built in parallel shards and interned in
/// a deterministic second pass; the bytes are identical to interning the
/// word vectors directly.
inline std::string EncodeWords(const uint64_t* data, size_t n) {
  std::string buf(n * sizeof(uint64_t), '\0');
  if (n > 0) std::memcpy(buf.data(), data, buf.size());
  return buf;
}

inline std::string EncodeWords(const std::vector<uint64_t>& words) {
  return EncodeWords(words.data(), words.size());
}

/// Maps byte-string signatures to dense canonical ids 0,1,2,...
///
/// Ids are assigned in first-seen order; interning the same signature again
/// returns the previously assigned id. A single Interner shared between two
/// graphs yields colorings that can be compared by id equality.
class Interner {
 public:
  Interner() = default;

  /// Returns the canonical id for `signature`, assigning a fresh one if new.
  uint64_t Intern(std::string_view signature) {
    auto it = table_.find(std::string(signature));
    if (it != table_.end()) return it->second;
    uint64_t id = table_.size();
    table_.emplace(std::string(signature), id);
    return id;
  }

  /// Interns a sequence of u64 words (serialized little-endian).
  uint64_t InternWords(const std::vector<uint64_t>& words) {
    return Intern(EncodeWords(words));
  }

  /// Number of distinct signatures seen so far.
  size_t size() const { return table_.size(); }

 private:
  std::unordered_map<std::string, uint64_t> table_;
};

}  // namespace gelc

#endif  // GELC_BASE_HASH_H_
