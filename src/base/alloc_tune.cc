#include "base/alloc_tune.h"

#include <cstdlib>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace gelc {

void TuneAllocForTensorChurn() {
#if defined(__GLIBC__)
  static const bool tuned = [] {
    if (std::getenv("GELC_NO_MALLOC_TUNE") != nullptr) return false;
    // An explicit operator override wins; glibc read it at startup.
    if (std::getenv("MALLOC_MMAP_THRESHOLD_") != nullptr) return false;
    // 64 MiB: far above any single tape matrix, far below dataset scale.
    // Setting the threshold also disables glibc's dynamic adjustment,
    // which otherwise re-learns the churn size one munmap at a time.
    mallopt(M_MMAP_THRESHOLD, 64 << 20);
    mallopt(M_TRIM_THRESHOLD, 64 << 20);
    return true;
  }();
  (void)tuned;
#endif
}

}  // namespace gelc
