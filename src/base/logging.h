// Minimal assertion / logging macros used across the library.
//
// GELC_CHECK is for programmer errors (violated invariants) and aborts;
// recoverable conditions use Status/Result instead (see base/status.h).
#ifndef GELC_BASE_LOGGING_H_
#define GELC_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace gelc {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "GELC_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace gelc

#define GELC_CHECK(cond)                                    \
  do {                                                      \
    if (!(cond)) ::gelc::CheckFailed(#cond, __FILE__, __LINE__); \
  } while (false)

#define GELC_DCHECK(cond) GELC_CHECK(cond)

#endif  // GELC_BASE_LOGGING_H_
