// Minimal assertion / logging macros used across the library.
//
// GELC_CHECK is for programmer errors (violated invariants) and aborts in
// every build mode; recoverable conditions use Status/Result instead (see
// base/status.h).
//
// GELC_DCHECK* are debug-only: active when NDEBUG is not defined (Debug
// builds), compiled out entirely in Release/RelWithDebInfo so hot-path
// bounds checks (Matrix::At, CSR row indexing, Graph neighbor access)
// cost nothing in optimized builds — bench_p8 pins this at ~zero. The
// binary comparison forms (GELC_DCHECK_LT and friends) print both
// operands' source spellings on failure.
#ifndef GELC_BASE_LOGGING_H_
#define GELC_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace gelc {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "GELC_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace gelc

#define GELC_CHECK(cond)                                    \
  do {                                                      \
    if (!(cond)) ::gelc::CheckFailed(#cond, __FILE__, __LINE__); \
  } while (false)

#define GELC_CHECK_BINARY_(a, op, b) GELC_CHECK((a)op(b))

#define GELC_CHECK_EQ(a, b) GELC_CHECK_BINARY_(a, ==, b)
#define GELC_CHECK_NE(a, b) GELC_CHECK_BINARY_(a, !=, b)
#define GELC_CHECK_LT(a, b) GELC_CHECK_BINARY_(a, <, b)
#define GELC_CHECK_LE(a, b) GELC_CHECK_BINARY_(a, <=, b)
#define GELC_CHECK_GT(a, b) GELC_CHECK_BINARY_(a, >, b)
#define GELC_CHECK_GE(a, b) GELC_CHECK_BINARY_(a, >=, b)

#ifndef NDEBUG

#define GELC_DCHECK(cond) GELC_CHECK(cond)
#define GELC_DCHECK_EQ(a, b) GELC_CHECK_EQ(a, b)
#define GELC_DCHECK_NE(a, b) GELC_CHECK_NE(a, b)
#define GELC_DCHECK_LT(a, b) GELC_CHECK_LT(a, b)
#define GELC_DCHECK_LE(a, b) GELC_CHECK_LE(a, b)
#define GELC_DCHECK_GT(a, b) GELC_CHECK_GT(a, b)
#define GELC_DCHECK_GE(a, b) GELC_CHECK_GE(a, b)

#else  // NDEBUG

// Compiled out: the condition is parsed (so it cannot bit-rot) but never
// evaluated — no side effects, no branches, no codegen.
#define GELC_DCHECK_NOOP_(cond)     \
  do {                              \
    if (false) {                    \
      (void)(cond);                 \
    }                               \
  } while (false)

#define GELC_DCHECK(cond) GELC_DCHECK_NOOP_(cond)
#define GELC_DCHECK_EQ(a, b) GELC_DCHECK_NOOP_((a) == (b))
#define GELC_DCHECK_NE(a, b) GELC_DCHECK_NOOP_((a) != (b))
#define GELC_DCHECK_LT(a, b) GELC_DCHECK_NOOP_((a) < (b))
#define GELC_DCHECK_LE(a, b) GELC_DCHECK_NOOP_((a) <= (b))
#define GELC_DCHECK_GT(a, b) GELC_DCHECK_NOOP_((a) > (b))
#define GELC_DCHECK_GE(a, b) GELC_DCHECK_NOOP_((a) >= (b))

#endif  // NDEBUG

// Declares that a variable may only be written under the named mutex.
// Purely an annotation: it expands to nothing and imposes no runtime
// cost. gelc_lint's parallel-region-race pass reads it — a write to an
// annotated variable inside a ParallelFor/ParallelMap lambda is accepted
// only when the region also takes a lock naming `mu` (a lock_guard /
// scoped_lock / unique_lock on it, or an explicit mu.lock()). Annotate
// at the declaration:
//
//   std::mutex mu;
//   std::vector<int> shared GELC_GUARDED_BY(mu);
#define GELC_GUARDED_BY(mu)

#endif  // GELC_BASE_LOGGING_H_
