// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (graph generators, weight
// initialization, training shuffles, separation-power sampling) draw from an
// explicitly seeded Rng so that experiments reproduce bit-for-bit.
#ifndef GELC_BASE_RNG_H_
#define GELC_BASE_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace gelc {

/// SplitMix64: tiny, fast, statistically solid 64-bit generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1, u2;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    u2 = NextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  /// Bernoulli with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<size_t> Permutation(size_t n) {
    std::vector<size_t> p(n);
    for (size_t i = 0; i < n; ++i) p[i] = i;
    Shuffle(&p);
    return p;
  }

  /// Derives an independent child generator (for parallel components).
  Rng Fork() { return Rng(NextU64()); }

 private:
  uint64_t state_;
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace gelc

#endif  // GELC_BASE_RNG_H_
