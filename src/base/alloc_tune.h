// Process-wide allocator tuning for tensor-churn workloads.
//
// Training builds and destroys one Tape per (mini)batch per epoch, and a
// batched tape's node matrices run to hundreds of kilobytes — past
// glibc's default 128 KiB mmap threshold. Left alone, every such matrix
// is a fresh mmap at Push time and a munmap at tape destruction, so each
// epoch page-faults its whole working set back in from zero pages
// (measured: ~2.7k minor faults per epoch, ~3x on the batched forward
// pass; kernel time that no user-space profile shows). Raising the
// mmap/trim thresholds once keeps those blocks on the recycled heap.
#ifndef GELC_BASE_ALLOC_TUNE_H_
#define GELC_BASE_ALLOC_TUNE_H_

namespace gelc {

/// Raises the malloc mmap/trim thresholds so large, frequently recycled
/// tensor blocks stay on the heap instead of churning through
/// mmap/munmap. Idempotent and cheap after the first call; callers on
/// churn-heavy paths (Tape, GraphBatch) invoke it from their entry
/// points. No-op on non-glibc platforms, when the operator has tuned
/// malloc via MALLOC_MMAP_THRESHOLD_ themselves, or when
/// GELC_NO_MALLOC_TUNE is set.
void TuneAllocForTensorChurn();

}  // namespace gelc

#endif  // GELC_BASE_ALLOC_TUNE_H_
