// Status and Result<T>: error handling without exceptions, in the style of
// Apache Arrow / RocksDB. Every fallible public API in this project returns
// either a Status (no payload) or a Result<T> (payload or error).
#ifndef GELC_BASE_STATUS_H_
#define GELC_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

#include "base/logging.h"

namespace gelc {

/// Machine-readable category of an error carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIOError,
  kArithmeticOverflow,
};

/// Returns a human-readable name for a StatusCode ("OK", "Invalid argument"...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
///
/// The class is [[nodiscard]]: every function returning a Status (or a
/// Result<T>) is implicitly nodiscard, so silently dropping an error is a
/// compile error under -Werror and a gelc_lint `unchecked-status`
/// finding. Deliberate discards call IgnoreError() and say why.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ArithmeticOverflow(std::string msg) {
    return Status(StatusCode::kArithmeticOverflow, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Explicitly abandons this status. The only sanctioned way to discard
  /// an error: the call site documents that the failure mode is benign
  /// (pair it with a comment saying why), instead of a (void) cast that
  /// reads like an accident.
  void IgnoreError() const {}

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value of type T or an error Status. Analogous to arrow::Result.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK Status (error).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; OK() when this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

  /// Explicitly abandons this result (value and error alike); see
  /// Status::IgnoreError().
  void IgnoreError() const {}

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status from an expression returning Status.
#define GELC_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::gelc::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Evaluates an expression returning Result<T>; assigns the value to `lhs`
/// or propagates the error Status.
#define GELC_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                               \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value()

#define GELC_CONCAT_INNER(a, b) a##b
#define GELC_CONCAT(a, b) GELC_CONCAT_INNER(a, b)

#define GELC_ASSIGN_OR_RETURN(lhs, rexpr) \
  GELC_ASSIGN_OR_RETURN_IMPL(GELC_CONCAT(_res_, __LINE__), lhs, rexpr)

namespace internal {
/// Uniform error extraction for GELC_CHECK_OK over both Status and
/// Result<T>.
inline const Status& AsStatus(const Status& s) { return s; }
template <typename T>
Status AsStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

/// Aborts if `expr` (a Status or Result<T>) is not OK. For contexts where
/// failure is a programmer error — test fixtures, benches building known-
/// good inputs — never for validating external input.
#define GELC_CHECK_OK(expr)                                               \
  do {                                                                    \
    const auto& _st_ok = (expr);                                          \
    if (!_st_ok.ok()) {                                                   \
      ::gelc::CheckFailed(                                                \
          ::gelc::internal::AsStatus(_st_ok).ToString().c_str(),          \
          __FILE__, __LINE__);                                            \
    }                                                                     \
  } while (false)

}  // namespace gelc

#endif  // GELC_BASE_STATUS_H_
