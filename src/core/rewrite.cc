#include "core/rewrite.h"

#include <map>

#include "base/logging.h"

namespace gelc {

Result<ExprPtr> SubstituteVariable(const ExprPtr& e, Var from, Var to) {
  if (e == nullptr) return Status::InvalidArgument("null expression");
  if (from == to) return e;
  if (!VarSetContains(e->all_vars(), from)) return e;  // nothing to do
  if (VarSetContains(e->all_vars(), to)) {
    return Status::InvalidArgument(
        "substitution target variable already occurs in expression");
  }
  switch (e->kind()) {
    case Expr::Kind::kConst:
      return e;
    case Expr::Kind::kLabel:
      return Expr::Label(e->label_index(), to);
    case Expr::Kind::kEdge: {
      Var a = e->var_a() == from ? to : e->var_a();
      Var b = e->var_b() == from ? to : e->var_b();
      return Expr::Edge(a, b);
    }
    case Expr::Kind::kCompare: {
      Var a = e->var_a() == from ? to : e->var_a();
      Var b = e->var_b() == from ? to : e->var_b();
      return Expr::Compare(a, b, e->cmp_op());
    }
    case Expr::Kind::kApply: {
      std::vector<ExprPtr> children;
      for (const ExprPtr& c : e->children()) {
        GELC_ASSIGN_OR_RETURN(ExprPtr nc, SubstituteVariable(c, from, to));
        children.push_back(std::move(nc));
      }
      return Expr::Apply(e->fn(), std::move(children));
    }
    case Expr::Kind::kAggregate: {
      if (VarSetContains(e->bound_vars(), from)) {
        return Status::InvalidArgument(
            "substituted variable is bound inside the expression");
      }
      GELC_ASSIGN_OR_RETURN(ExprPtr value,
                            SubstituteVariable(e->value(), from, to));
      ExprPtr guard;
      if (e->guard() != nullptr) {
        GELC_ASSIGN_OR_RETURN(guard,
                              SubstituteVariable(e->guard(), from, to));
      }
      return Expr::Aggregate(e->agg(), e->bound_vars(), std::move(value),
                             std::move(guard));
    }
  }
  return Status::Internal("unreachable");
}

namespace {

// Scope-aware top-down renamer. `env[old] = new` covers every variable
// free in `e`; binders pick the smallest index clashing with no *new*
// name of a variable free in their scope — outer names not referenced
// inside may be reused, which is what lets arbitrarily deep
// message-passing chains alternate between two variables.
Result<ExprPtr> RebuildRenamed(const ExprPtr& e,
                               const std::map<Var, Var>& env) {
  auto renamed = [&env](Var v) {
    auto it = env.find(v);
    GELC_CHECK(it != env.end());
    return it->second;
  };
  switch (e->kind()) {
    case Expr::Kind::kConst:
      return e;
    case Expr::Kind::kLabel:
      return Expr::Label(e->label_index(), renamed(e->var_a()));
    case Expr::Kind::kEdge:
      return Expr::Edge(renamed(e->var_a()), renamed(e->var_b()));
    case Expr::Kind::kCompare:
      return Expr::Compare(renamed(e->var_a()), renamed(e->var_b()),
                           e->cmp_op());
    case Expr::Kind::kApply: {
      std::vector<ExprPtr> children;
      for (const ExprPtr& c : e->children()) {
        GELC_ASSIGN_OR_RETURN(ExprPtr nc, RebuildRenamed(c, env));
        children.push_back(std::move(nc));
      }
      return Expr::Apply(e->fn(), std::move(children));
    }
    case Expr::Kind::kAggregate: {
      VarSet inner_free = e->value()->free_vars();
      if (e->guard() != nullptr) inner_free |= e->guard()->free_vars();
      VarSet outer_free = inner_free & ~e->bound_vars();
      // New names already claimed inside this scope.
      VarSet taken = 0;
      for (Var v : VarSetList(outer_free)) taken |= VarBit(renamed(v));
      std::map<Var, Var> inner_env = env;
      VarSet new_bound = 0;
      for (Var b : VarSetList(e->bound_vars())) {
        Var pick = 0;
        while (pick < kMaxVariables && VarSetContains(taken, pick)) ++pick;
        if (pick >= kMaxVariables) {
          return Status::Internal("variable budget exhausted in renaming");
        }
        taken |= VarBit(pick);
        new_bound |= VarBit(pick);
        inner_env[b] = pick;
      }
      GELC_ASSIGN_OR_RETURN(ExprPtr value,
                            RebuildRenamed(e->value(), inner_env));
      ExprPtr guard;
      if (e->guard() != nullptr) {
        GELC_ASSIGN_OR_RETURN(guard, RebuildRenamed(e->guard(), inner_env));
      }
      return Expr::Aggregate(e->agg(), new_bound, std::move(value),
                             std::move(guard));
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<ExprPtr> MinimizeVariables(const ExprPtr& e) {
  if (e == nullptr) return Status::InvalidArgument("null expression");
  // Free variables are the expression's interface and keep their names.
  std::map<Var, Var> env;
  for (Var v : VarSetList(e->free_vars())) env[v] = v;
  return RebuildRenamed(e, env);
}

}  // namespace gelc
