#include "core/expr.h"

#include <algorithm>
#include <sstream>

#include "base/logging.h"
#include "base/strings.h"

namespace gelc {

std::vector<Var> VarSetList(VarSet s) {
  std::vector<Var> out;
  for (Var v = 0; v < kMaxVariables; ++v)
    if (VarSetContains(s, v)) out.push_back(v);
  return out;
}

std::string VarSetToString(VarSet s) {
  std::ostringstream os;
  bool first = true;
  for (Var v : VarSetList(s)) {
    if (!first) os << ",";
    os << "x" << v;
    first = false;
  }
  return os.str();
}

Result<ExprPtr> Expr::Label(size_t label_index, Var v) {
  if (v >= kMaxVariables) {
    return Status::OutOfRange("variable index out of range");
  }
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into shared_ptr
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLabel;
  e->dim_ = 1;
  e->free_ = e->all_ = VarBit(v);
  e->label_index_ = label_index;
  e->var_a_ = v;
  return ExprPtr(e);
}

Result<ExprPtr> Expr::Edge(Var a, Var b) {
  if (a >= kMaxVariables || b >= kMaxVariables) {
    return Status::OutOfRange("variable index out of range");
  }
  if (a == b) {
    return Status::InvalidArgument("edge atom needs two distinct variables");
  }
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into shared_ptr
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kEdge;
  e->dim_ = 1;
  e->free_ = e->all_ = VarBit(a) | VarBit(b);
  e->var_a_ = a;
  e->var_b_ = b;
  return ExprPtr(e);
}

Result<ExprPtr> Expr::Compare(Var a, Var b, CmpOp op) {
  if (a >= kMaxVariables || b >= kMaxVariables) {
    return Status::OutOfRange("variable index out of range");
  }
  if (a == b) {
    return Status::InvalidArgument(
        "comparison atom needs two distinct variables");
  }
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into shared_ptr
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kCompare;
  e->dim_ = 1;
  e->free_ = e->all_ = VarBit(a) | VarBit(b);
  e->var_a_ = a;
  e->var_b_ = b;
  e->cmp_op_ = op;
  return ExprPtr(e);
}

Result<ExprPtr> Expr::Constant(std::vector<double> value) {
  if (value.empty()) {
    return Status::InvalidArgument("constant must have dimension >= 1");
  }
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into shared_ptr
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConst;
  e->dim_ = value.size();
  e->constant_ = std::move(value);
  return ExprPtr(e);
}

Result<ExprPtr> Expr::Apply(OmegaPtr fn, std::vector<ExprPtr> children) {
  if (fn == nullptr) return Status::InvalidArgument("null Ω function");
  if (children.size() != fn->arity()) {
    return Status::InvalidArgument(
        "Apply: " + fn->name + " expects " + std::to_string(fn->arity()) +
        " arguments, got " + std::to_string(children.size()));
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (children[i] == nullptr) {
      return Status::InvalidArgument("Apply: null child");
    }
    if (children[i]->dim() != fn->arg_dims[i]) {
      return Status::InvalidArgument(
          "Apply: " + fn->name + " argument " + std::to_string(i) +
          " has dimension " + std::to_string(children[i]->dim()) +
          ", expected " + std::to_string(fn->arg_dims[i]));
    }
  }
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into shared_ptr
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kApply;
  e->dim_ = fn->out_dim;
  for (const ExprPtr& c : children) {
    e->free_ |= c->free_vars();
    e->all_ |= c->all_vars();
  }
  e->fn_ = std::move(fn);
  e->children_ = std::move(children);
  return ExprPtr(e);
}

Result<ExprPtr> Expr::Aggregate(ThetaPtr agg, VarSet bound, ExprPtr value,
                                ExprPtr guard) {
  if (agg == nullptr) return Status::InvalidArgument("null Θ aggregate");
  if (value == nullptr) return Status::InvalidArgument("null value");
  if (bound == 0) {
    return Status::InvalidArgument("aggregate must bind at least one variable");
  }
  if (bound >> kMaxVariables) {
    return Status::OutOfRange("bound variable index out of range");
  }
  if (value->dim() != agg->in_dim) {
    return Status::InvalidArgument(
        "Aggregate: value dimension " + std::to_string(value->dim()) +
        " does not match " + agg->name + " input dimension " +
        std::to_string(agg->in_dim));
  }
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into shared_ptr
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kAggregate;
  e->dim_ = agg->out_dim;
  VarSet inner_free = value->free_vars();
  VarSet inner_all = value->all_vars();
  if (guard != nullptr) {
    inner_free |= guard->free_vars();
    inner_all |= guard->all_vars();
  }
  e->free_ = inner_free & ~bound;
  e->all_ = inner_all | bound;
  e->agg_ = std::move(agg);
  e->bound_ = bound;
  e->children_.push_back(std::move(value));
  e->guard_ = std::move(guard);
  return ExprPtr(e);
}

size_t Expr::TreeSize() const {
  size_t s = 1;
  for (const ExprPtr& c : children_) s += c->TreeSize();
  if (guard_ != nullptr) s += guard_->TreeSize();
  return s;
}

size_t Expr::AggregationDepth() const {
  size_t child_max = 0;
  for (const ExprPtr& c : children_)
    child_max = std::max(child_max, c->AggregationDepth());
  if (guard_ != nullptr)
    child_max = std::max(child_max, guard_->AggregationDepth());
  return child_max + (kind_ == Kind::kAggregate ? 1 : 0);
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kLabel:
      os << "lab" << label_index_ << "(x" << var_a_ << ")";
      break;
    case Kind::kEdge:
      os << "E(x" << var_a_ << ",x" << var_b_ << ")";
      break;
    case Kind::kCompare:
      os << "1[x" << var_a_ << (cmp_op_ == CmpOp::kEq ? "=" : "!=") << "x"
         << var_b_ << "]";
      break;
    case Kind::kConst: {
      os << "[";
      for (size_t i = 0; i < constant_.size(); ++i) {
        if (i) os << ",";
        os << FormatDouble(constant_[i]);
      }
      os << "]";
      break;
    }
    case Kind::kApply: {
      os << fn_->name << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) os << ", ";
        os << children_[i]->ToString();
      }
      os << ")";
      break;
    }
    case Kind::kAggregate: {
      os << "agg[" << agg_->name << "]_{" << VarSetToString(bound_) << "}("
         << children_[0]->ToString();
      if (guard_ != nullptr) os << " | " << guard_->ToString();
      os << ")";
      break;
    }
  }
  return os.str();
}

}  // namespace gelc
