#include "core/expr.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "base/hash.h"
#include "base/logging.h"
#include "base/strings.h"

namespace gelc {

std::vector<Var> VarSetList(VarSet s) {
  std::vector<Var> out;
  for (Var v = 0; v < kMaxVariables; ++v)
    if (VarSetContains(s, v)) out.push_back(v);
  return out;
}

std::string VarSetToString(VarSet s) {
  std::ostringstream os;
  bool first = true;
  for (Var v : VarSetList(s)) {
    if (!first) os << ",";
    os << "x" << v;
    first = false;
  }
  return os.str();
}

Result<ExprPtr> Expr::Label(size_t label_index, Var v) {
  if (v >= kMaxVariables) {
    return Status::OutOfRange("variable index out of range");
  }
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into shared_ptr
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLabel;
  e->dim_ = 1;
  e->free_ = e->all_ = VarBit(v);
  e->label_index_ = label_index;
  e->var_a_ = v;
  return ExprPtr(e);
}

Result<ExprPtr> Expr::Edge(Var a, Var b) {
  if (a >= kMaxVariables || b >= kMaxVariables) {
    return Status::OutOfRange("variable index out of range");
  }
  if (a == b) {
    return Status::InvalidArgument("edge atom needs two distinct variables");
  }
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into shared_ptr
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kEdge;
  e->dim_ = 1;
  e->free_ = e->all_ = VarBit(a) | VarBit(b);
  e->var_a_ = a;
  e->var_b_ = b;
  return ExprPtr(e);
}

Result<ExprPtr> Expr::Compare(Var a, Var b, CmpOp op) {
  if (a >= kMaxVariables || b >= kMaxVariables) {
    return Status::OutOfRange("variable index out of range");
  }
  if (a == b) {
    return Status::InvalidArgument(
        "comparison atom needs two distinct variables");
  }
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into shared_ptr
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kCompare;
  e->dim_ = 1;
  e->free_ = e->all_ = VarBit(a) | VarBit(b);
  e->var_a_ = a;
  e->var_b_ = b;
  e->cmp_op_ = op;
  return ExprPtr(e);
}

Result<ExprPtr> Expr::Constant(std::vector<double> value) {
  if (value.empty()) {
    return Status::InvalidArgument("constant must have dimension >= 1");
  }
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into shared_ptr
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConst;
  e->dim_ = value.size();
  e->constant_ = std::move(value);
  return ExprPtr(e);
}

Result<ExprPtr> Expr::Apply(OmegaPtr fn, std::vector<ExprPtr> children) {
  if (fn == nullptr) return Status::InvalidArgument("null Ω function");
  if (children.size() != fn->arity()) {
    return Status::InvalidArgument(
        "Apply: " + fn->name + " expects " + std::to_string(fn->arity()) +
        " arguments, got " + std::to_string(children.size()));
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (children[i] == nullptr) {
      return Status::InvalidArgument("Apply: null child");
    }
    if (children[i]->dim() != fn->arg_dims[i]) {
      return Status::InvalidArgument(
          "Apply: " + fn->name + " argument " + std::to_string(i) +
          " has dimension " + std::to_string(children[i]->dim()) +
          ", expected " + std::to_string(fn->arg_dims[i]));
    }
  }
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into shared_ptr
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kApply;
  e->dim_ = fn->out_dim;
  for (const ExprPtr& c : children) {
    e->free_ |= c->free_vars();
    e->all_ |= c->all_vars();
  }
  e->fn_ = std::move(fn);
  e->children_ = std::move(children);
  return ExprPtr(e);
}

Result<ExprPtr> Expr::Aggregate(ThetaPtr agg, VarSet bound, ExprPtr value,
                                ExprPtr guard) {
  if (agg == nullptr) return Status::InvalidArgument("null Θ aggregate");
  if (value == nullptr) return Status::InvalidArgument("null value");
  if (bound == 0) {
    return Status::InvalidArgument("aggregate must bind at least one variable");
  }
  if (bound >> kMaxVariables) {
    return Status::OutOfRange("bound variable index out of range");
  }
  if (value->dim() != agg->in_dim) {
    return Status::InvalidArgument(
        "Aggregate: value dimension " + std::to_string(value->dim()) +
        " does not match " + agg->name + " input dimension " +
        std::to_string(agg->in_dim));
  }
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into shared_ptr
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kAggregate;
  e->dim_ = agg->out_dim;
  VarSet inner_free = value->free_vars();
  VarSet inner_all = value->all_vars();
  if (guard != nullptr) {
    inner_free |= guard->free_vars();
    inner_all |= guard->all_vars();
  }
  e->free_ = inner_free & ~bound;
  e->all_ = inner_all | bound;
  e->agg_ = std::move(agg);
  e->bound_ = bound;
  e->children_.push_back(std::move(value));
  e->guard_ = std::move(guard);
  return ExprPtr(e);
}

size_t Expr::TreeSize() const {
  size_t s = 1;
  for (const ExprPtr& c : children_) s += c->TreeSize();
  if (guard_ != nullptr) s += guard_->TreeSize();
  return s;
}

size_t Expr::AggregationDepth() const {
  size_t child_max = 0;
  for (const ExprPtr& c : children_)
    child_max = std::max(child_max, c->AggregationDepth());
  if (guard_ != nullptr)
    child_max = std::max(child_max, guard_->AggregationDepth());
  return child_max + (kind_ == Kind::kAggregate ? 1 : 0);
}

namespace {

// Templated over the container: called with both std::vector<double>
// (expression constants) and Matrix's AlignedVector storage.
template <typename DoubleVec>
uint64_t HashDoubles(uint64_t seed, const DoubleVec& v) {
  seed = HashCombine(seed, v.size());
  return HashCombine(seed, Fnv1a64(v.data(), v.size() * sizeof(double)));
}

uint64_t HashMatrix(uint64_t seed, const Matrix& m) {
  seed = HashCombine(seed, m.rows());
  seed = HashCombine(seed, m.cols());
  return HashDoubles(seed, m.data());
}

// Exact byte equality, matching what the hashes above see: -0.0 and 0.0
// (or two NaNs) in corresponding slots compare unequal, which only costs
// a conservative cache miss.
template <typename DoubleVec>
bool SameDoubles(const DoubleVec& a, const DoubleVec& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool SameMatrix(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         SameDoubles(a.data(), b.data());
}

}  // namespace

uint64_t OmegaStructuralHash(const OmegaFn& fn) {
  uint64_t h = Fnv1a64("omega");
  h = HashCombine(h, static_cast<uint64_t>(fn.kind));
  h = HashCombine(h, Fnv1a64(fn.name));
  h = HashCombine(h, fn.out_dim);
  for (size_t d : fn.arg_dims) h = HashCombine(h, d);
  switch (fn.kind) {
    case OmegaFn::Kind::kOpaque:
      // No structured parameters to hash: fall back to closure identity.
      h = HashCombine(h, reinterpret_cast<uintptr_t>(&fn));
      break;
    case OmegaFn::Kind::kLinear:
      h = HashMatrix(h, *fn.weight);
      h = HashMatrix(h, *fn.bias);
      break;
    case OmegaFn::Kind::kMlp:
      for (const MlpLayer& l : fn.mlp->layers()) {
        h = HashMatrix(h, l.w);
        h = HashMatrix(h, l.b);
        h = HashCombine(h, static_cast<uint64_t>(l.act));
      }
      break;
    case OmegaFn::Kind::kActivation:
      h = HashCombine(h, static_cast<uint64_t>(fn.act));
      break;
    case OmegaFn::Kind::kScale: {
      uint64_t bits = 0;
      std::memcpy(&bits, &fn.scale, sizeof(bits));
      h = HashCombine(h, bits);
      break;
    }
    case OmegaFn::Kind::kProject:
      h = HashCombine(h, fn.project_begin);
      h = HashCombine(h, fn.project_len);
      break;
    case OmegaFn::Kind::kConcat:
    case OmegaFn::Kind::kAdd:
    case OmegaFn::Kind::kMultiply:
      break;  // fully determined by kind + dims
  }
  return h;
}

bool OmegaStructurallyEqual(const OmegaFn& a, const OmegaFn& b) {
  if (&a == &b) return true;
  if (a.kind != b.kind || a.name != b.name || a.out_dim != b.out_dim ||
      a.arg_dims != b.arg_dims) {
    return false;
  }
  switch (a.kind) {
    case OmegaFn::Kind::kOpaque:
      return false;  // distinct closures: identity already checked above
    case OmegaFn::Kind::kLinear:
      return SameMatrix(*a.weight, *b.weight) && SameMatrix(*a.bias, *b.bias);
    case OmegaFn::Kind::kMlp: {
      const auto& la = a.mlp->layers();
      const auto& lb = b.mlp->layers();
      if (la.size() != lb.size()) return false;
      for (size_t i = 0; i < la.size(); ++i) {
        if (la[i].act != lb[i].act || !SameMatrix(la[i].w, lb[i].w) ||
            !SameMatrix(la[i].b, lb[i].b)) {
          return false;
        }
      }
      return true;
    }
    case OmegaFn::Kind::kActivation:
      return a.act == b.act;
    case OmegaFn::Kind::kScale:
      return std::memcmp(&a.scale, &b.scale, sizeof(double)) == 0;
    case OmegaFn::Kind::kProject:
      return a.project_begin == b.project_begin &&
             a.project_len == b.project_len;
    case OmegaFn::Kind::kConcat:
    case OmegaFn::Kind::kAdd:
    case OmegaFn::Kind::kMultiply:
      return true;
  }
  return false;
}

uint64_t ThetaStructuralHash(const ThetaAgg& agg) {
  uint64_t h = Fnv1a64("theta");
  h = HashCombine(h, static_cast<uint64_t>(agg.kind));
  h = HashCombine(h, Fnv1a64(agg.name));
  h = HashCombine(h, agg.in_dim);
  h = HashCombine(h, agg.out_dim);
  if (agg.kind == ThetaAgg::Kind::kOpaque) {
    h = HashCombine(h, reinterpret_cast<uintptr_t>(&agg));
  }
  return h;
}

bool ThetaStructurallyEqual(const ThetaAgg& a, const ThetaAgg& b) {
  if (&a == &b) return true;
  if (a.kind == ThetaAgg::Kind::kOpaque) return false;
  return a.kind == b.kind && a.name == b.name && a.in_dim == b.in_dim &&
         a.out_dim == b.out_dim;
}

uint64_t Expr::StructuralHash() const {
  uint64_t cached = hash_cache_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  uint64_t h = Fnv1a64("expr");
  h = HashCombine(h, static_cast<uint64_t>(kind_));
  h = HashCombine(h, dim_);
  switch (kind_) {
    case Kind::kLabel:
      h = HashCombine(h, label_index_);
      h = HashCombine(h, var_a_);
      break;
    case Kind::kEdge:
      h = HashCombine(h, var_a_);
      h = HashCombine(h, var_b_);
      break;
    case Kind::kCompare:
      h = HashCombine(h, var_a_);
      h = HashCombine(h, var_b_);
      h = HashCombine(h, static_cast<uint64_t>(cmp_op_));
      break;
    case Kind::kConst:
      h = HashDoubles(h, constant_);
      break;
    case Kind::kApply:
      h = HashCombine(h, OmegaStructuralHash(*fn_));
      for (const ExprPtr& c : children_)
        h = HashCombine(h, c->StructuralHash());
      break;
    case Kind::kAggregate:
      h = HashCombine(h, ThetaStructuralHash(*agg_));
      h = HashCombine(h, bound_);
      h = HashCombine(h, children_[0]->StructuralHash());
      h = HashCombine(h, guard_ != nullptr ? guard_->StructuralHash()
                                           : uint64_t{0x9d});
      break;
  }
  if (h == 0) h = 1;  // keep 0 as the "not computed" sentinel
  hash_cache_.store(h, std::memory_order_relaxed);
  return h;
}

bool StructurallyEqual(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->StructuralHash() != b->StructuralHash()) return false;
  if (a->kind() != b->kind() || a->dim() != b->dim()) return false;
  switch (a->kind()) {
    case Expr::Kind::kLabel:
      return a->label_index() == b->label_index() && a->var_a() == b->var_a();
    case Expr::Kind::kEdge:
      return a->var_a() == b->var_a() && a->var_b() == b->var_b();
    case Expr::Kind::kCompare:
      return a->var_a() == b->var_a() && a->var_b() == b->var_b() &&
             a->cmp_op() == b->cmp_op();
    case Expr::Kind::kConst:
      return SameDoubles(a->constant(), b->constant());
    case Expr::Kind::kApply: {
      if (!OmegaStructurallyEqual(*a->fn(), *b->fn())) return false;
      if (a->children().size() != b->children().size()) return false;
      for (size_t i = 0; i < a->children().size(); ++i) {
        if (!StructurallyEqual(a->children()[i], b->children()[i]))
          return false;
      }
      return true;
    }
    case Expr::Kind::kAggregate:
      return ThetaStructurallyEqual(*a->agg(), *b->agg()) &&
             a->bound_vars() == b->bound_vars() &&
             StructurallyEqual(a->value(), b->value()) &&
             StructurallyEqual(a->guard(), b->guard());
  }
  return false;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kLabel:
      os << "lab" << label_index_ << "(x" << var_a_ << ")";
      break;
    case Kind::kEdge:
      os << "E(x" << var_a_ << ",x" << var_b_ << ")";
      break;
    case Kind::kCompare:
      os << "1[x" << var_a_ << (cmp_op_ == CmpOp::kEq ? "=" : "!=") << "x"
         << var_b_ << "]";
      break;
    case Kind::kConst: {
      os << "[";
      for (size_t i = 0; i < constant_.size(); ++i) {
        if (i) os << ",";
        os << FormatDouble(constant_[i]);
      }
      os << "]";
      break;
    }
    case Kind::kApply: {
      os << fn_->name << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) os << ", ";
        os << children_[i]->ToString();
      }
      os << ")";
      break;
    }
    case Kind::kAggregate: {
      os << "agg[" << agg_->name << "]_{" << VarSetToString(bound_) << "}("
         << children_[0]->ToString();
      if (guard_ != nullptr) os << " | " << guard_->ToString();
      os << ")";
      break;
    }
  }
  return os.str();
}

}  // namespace gelc
