// Expression rewriting: variable minimization (slide 70's open problem
// #4, "finding the minimal k in GEL^k(Ω,Θ) needed for your method — the
// lower k the better the [expressiveness] upper bound").
//
// Bound variables are scoped: an aggregate's binder may reuse any index
// not free in its body. MinimizeVariables renames binders bottom-up and
// greedily, which often reduces the variable width — e.g. the two-hop
// expression
//
//   agg[sum]_{x1}( agg[sum]_{x2}( 1 | E(x1,x2) ) | E(x0,x1) )      width 3
//
// rewrites to
//
//   agg[sum]_{x1}( agg[sum]_{x0}( 1 | E(x1,x0) ) | E(x0,x1) )      width 2
//
// certifying (via CheckMpnnFragment) that the method is a plain MPNN and
// therefore bounded by color refinement. Greedy renaming is a sound upper
// bound: the result is always semantically equal (tests verify this by
// evaluation) and its width never increases.
#ifndef GELC_CORE_REWRITE_H_
#define GELC_CORE_REWRITE_H_

#include "base/status.h"
#include "core/expr.h"

namespace gelc {

/// Capture-avoiding substitution of variable `from` by `to` in `e`.
/// `from` must not be bound anywhere in `e`, and `to` must not occur in
/// `e` at all (free or bound); violations return InvalidArgument.
Result<ExprPtr> SubstituteVariable(const ExprPtr& e, Var from, Var to);

/// Greedily renames every aggregate's bound variables, bottom-up, to the
/// smallest indices not occurring in the (already-minimized) body. The
/// result is semantically equal to `e`; its variable width is at most the
/// original.
Result<ExprPtr> MinimizeVariables(const ExprPtr& e);

}  // namespace gelc

#endif  // GELC_CORE_REWRITE_H_
