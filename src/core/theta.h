// The aggregation collection Θ of MPNN(Ω,Θ) / GEL(Ω,Θ): functions from
// bags of vectors in R^{d_in} to R^{d_out} (slides 45, 61).
//
// Aggregates are exposed through an incremental interface (init /
// accumulate / finalize) so the evaluator never materializes bags. The
// paper's fine-grained analysis of aggregate choice (slide 69: "some might
// say all you need is sum") is exercised by bench_e8.
#ifndef GELC_CORE_THETA_H_
#define GELC_CORE_THETA_H_

#include <functional>
#include <memory>
#include <string>

#include "base/status.h"

namespace gelc {

/// An aggregate θ : bags of R^{in_dim} -> R^{out_dim}.
///
/// `kind` tags the builtin aggregates so the plan compiler
/// (core/plan_compile.h) can emit fused CSR kernels; kOpaque aggregates
/// still execute through the incremental closures.
struct ThetaAgg {
  enum class Kind { kOpaque, kSum, kMean, kMax, kCount };

  std::string name;
  Kind kind = Kind::kOpaque;
  size_t in_dim = 0;
  size_t out_dim = 0;
  /// Initializes the out_dim accumulator.
  std::function<void(double* acc)> init;
  /// Folds one bag element (in_dim doubles) into the accumulator.
  std::function<void(double* acc, const double* x)> accumulate;
  /// Finishes: receives the bag size (0 for empty bags).
  std::function<void(double* acc, size_t count)> finalize;
};

using ThetaPtr = std::shared_ptr<const ThetaAgg>;

namespace theta {

/// Componentwise sum; empty bag -> zero vector.
ThetaPtr Sum(size_t d);
/// Componentwise mean; empty bag -> zero vector.
ThetaPtr Mean(size_t d);
/// Componentwise max; empty bag -> zero vector (by convention).
ThetaPtr Max(size_t d);
/// Bag cardinality (in_dim = d, out_dim = 1).
ThetaPtr Count(size_t d);

}  // namespace theta

}  // namespace gelc

#endif  // GELC_CORE_THETA_H_
