// The compiled-plan IR: a GEL expression lowered to a flat SSA-like
// sequence of typed tensor ops over vertex tables (core/plan_compile.h
// builds it, core/plan_exec.h runs it).
//
// Each op produces one value slot, either a per-vertex table (n x dim) or
// a global row (1 x dim); ops reference earlier slots by index, so a plan
// is a DAG in topological order and structurally identical subexpressions
// share one slot (the compiler value-numbers emissions — CSE).
//
// The IR is deliberately tiny: a handful of structured ops the optimizer
// understands and can fuse (kFusedLayer / kGinCombine / kPoolReadout are
// the fused forms executed by tensor/fused.h in one CSR-row pass), plus
// opaque escape hatches (kPointwise, opaque-theta aggregation) that run
// the original Ω/Θ closures row by row, so any lowerable expression
// executes — optimization never changes which expressions compile.
//
// Determinism contract: every op writes disjoint output rows per shard
// and pins its accumulation order to the unfused reference kernels, so a
// plan produces bit-identical results to Evaluator::Eval at any thread
// count (tests/plan_test.cc enforces this differentially).
#ifndef GELC_CORE_PLAN_H_
#define GELC_CORE_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/omega.h"
#include "core/theta.h"
#include "gnn/mlp.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace gelc {

/// Which CSR operator of the graph an aggregation traverses. Edge guards
/// compile to a traversal direction instead of an n x n guard table —
/// the guard-pushdown rewrite: E(o, b) binds b over out-neighbors of o
/// (kOut); E(b, o) over in-neighbors (kIn). kNorm is the weighted GCN
/// operator D̃^{-1/2}(A+I)D̃^{-1/2}, used by model lowerings only.
enum class PlanCsr : uint8_t { kOut, kIn, kNorm };

/// Which row of the value table each bag element reads during an
/// aggregation at vertex v, mirroring the interpreter's fold:
///   kNeighbor  — the neighbor u's row (value depends on the bound var)
///   kSource    — v's own row, once per neighbor (value depends only on
///                the outer var)
///   kBroadcast — row 0 of a global table, once per neighbor (closed
///                value)
enum class PlanGather : uint8_t { kNeighbor, kSource, kBroadcast };

enum class PlanOpKind : uint8_t {
  kLoadLabels,   // copy feature columns `label_cols` -> vertex[len]
  kConstant,     // materialize `constant` -> global[d]
  kConcat,       // concatenate input rows
  kProject,      // components [project_begin, project_begin+project_len)
  kScale,        // scale * x, entrywise
  kAdd,          // x + y, entrywise
  kMul,          // x * y, entrywise (Hadamard)
  kActivation,   // act(x), entrywise
  kPointwise,    // opaque Ω closure applied row by row (escape hatch)
  kMlp,          // MLP over the concatenated input rows
  kNeighborAgg,  // θ over each vertex's csr row -> vertex[agg out dim]
  kPool,         // θ over all n rows (global aggregation) -> global
  kFusedLayer,   // act(Σ_i arg_i(v) W_i + b), aggregations inlined
  kGinCombine,   // scale * x(v) + Σ_{u in N(v)} x(u), one CSR pass
  kPoolReadout,  // act(pool(x) W + b), pool fused with the readout map
};

/// Value type of a slot: a per-vertex table (n rows) or a global row.
struct PlanType {
  bool per_vertex = false;
  uint32_t dim = 0;

  bool operator==(const PlanType& o) const {
    return per_vertex == o.per_vertex && dim == o.dim;
  }
};

/// One argument of a kFusedLayer: a value slot feeding a weight slice,
/// optionally aggregated over a CSR row first (so the layer consumes the
/// neighborhood without materializing the n x d aggregate).
struct PlanLayerArg {
  uint32_t input = 0;
  std::shared_ptr<const Matrix> w;  // d_arg x out_dim slice
  bool aggregated = false;
  ThetaAgg::Kind agg = ThetaAgg::Kind::kSum;
  PlanCsr csr = PlanCsr::kOut;
  PlanGather gather = PlanGather::kNeighbor;
};

/// One IR op. A tagged union kept flat (only the fields its kind names
/// are meaningful) so plans stay trivially copyable and dumpable.
struct PlanOp {
  PlanOpKind kind = PlanOpKind::kConstant;
  PlanType type;
  std::vector<uint32_t> inputs;

  std::vector<size_t> label_cols;        // kLoadLabels
  std::vector<double> constant;          // kConstant
  size_t project_begin = 0;              // kProject
  size_t project_len = 0;                // kProject
  double scale = 1.0;                    // kScale, kGinCombine
  Activation act = Activation::kIdentity;  // kActivation, fused ops
  OmegaPtr fn;                           // kPointwise
  ThetaPtr theta;                        // kNeighborAgg, kPool (closures)
  ThetaAgg::Kind agg = ThetaAgg::Kind::kSum;  // structured θ kind
  PlanCsr csr = PlanCsr::kOut;           // kNeighborAgg, kGinCombine
  PlanGather gather = PlanGather::kNeighbor;  // kNeighborAgg, kPool
  std::shared_ptr<const Mlp> mlp;        // kMlp
  std::vector<PlanLayerArg> args;        // kFusedLayer
  std::shared_ptr<const Matrix> weight;  // kPoolReadout
  std::shared_ptr<const Matrix> bias;    // kFusedLayer, kPoolReadout
};

const char* PlanOpKindName(PlanOpKind kind);
const char* PlanCsrName(PlanCsr csr);
const char* PlanGatherName(PlanGather gather);

/// A compiled plan: ops in topological order; slot `result` is the value
/// of the whole expression (an n x d matrix for a vertex embedding, a
/// 1 x d row for a closed expression).
struct Plan {
  std::vector<PlanOp> ops;
  uint32_t result = 0;
  /// Dimension of the result value.
  size_t result_dim() const { return ops[result].type.dim; }
  /// True when the result is a per-vertex table.
  bool per_vertex() const { return ops[result].type.per_vertex; }

  /// Stable multi-line dump ("%i = op ... : vertex[d]") used by the
  /// golden plan tests and the gelc_plan CLI.
  std::string ToString() const;
};

using PlanPtr = std::shared_ptr<const Plan>;

/// Calls fn(slot) for every input slot `op` reads, including fused-layer
/// argument slots (the traversal DCE and use-counting must agree on).
template <typename Fn>
void ForEachInput(const PlanOp& op, Fn&& fn) {
  for (uint32_t s : op.inputs) fn(s);
  for (const PlanLayerArg& a : op.args) fn(a.input);
}

}  // namespace gelc

#endif  // GELC_CORE_PLAN_H_
