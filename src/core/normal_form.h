// Layered normal form for MPNN(Ω,Θ) expressions (slide 55).
//
// A free-form MPNN expression may interleave function application and
// aggregation arbitrarily; classical MPNN implementations compute instead
// in layers
//
//   ϕ^(t)(x1) := F^(t)( ϕ^(t-1)(x1), agg_θ^(t) x2 ( ϕ^(t-1)(x2) | E(x1,x2) ) )
//
// ("important for implementation purposes!"). This module realizes the
// normal-form theorem operationally: Normalize() schedules every aggregate
// node of a fragment-checked expression into a stage equal to its
// aggregation-nesting depth; stage t is one synchronous message-passing
// round computing all depth-t aggregates from the stored outputs of
// earlier rounds, and the pointwise function structure between aggregates
// becomes the layer update F^(t). Evaluating the program is equivalent to
// evaluating the original expression (verified by tests and bench_e6) but
// costs O(L * (n + m)) table entries instead of re-walking the tree.
#ifndef GELC_CORE_NORMAL_FORM_H_
#define GELC_CORE_NORMAL_FORM_H_

#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/eval.h"
#include "core/expr.h"
#include "graph/graph.h"

namespace gelc {

/// An MPNN expression compiled to synchronous message-passing layers.
class NormalFormProgram {
 public:
  /// Compiles `e`, which must pass CheckMpnnFragment.
  static Result<NormalFormProgram> Normalize(const ExprPtr& e);

  /// Evaluates the program on g. The result matches Evaluator::Eval of the
  /// original expression: an n x d matrix for one free variable, a 1 x d
  /// matrix for a closed expression.
  Result<Matrix> Run(const Graph& g) const;

  /// Number of message-passing layers (= aggregation nesting depth).
  size_t num_layers() const { return stages_.size(); }
  /// Total aggregate nodes scheduled.
  size_t num_aggregates() const;
  /// One line per layer listing the aggregates it computes.
  std::string Describe() const;

 private:
  NormalFormProgram() = default;

  ExprPtr root_;
  /// stages_[t] = aggregate nodes computed in layer t+1 (by DAG identity).
  std::vector<std::vector<const Expr*>> stages_;
};

}  // namespace gelc

#endif  // GELC_CORE_NORMAL_FORM_H_
