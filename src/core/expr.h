// Expressions of the graph embedding language GEL(Ω,Θ) — the paper's core
// contribution (slides 42-47, 57-63).
//
// Grammar (over variables x_0, x_1, ..., x_{kMaxVariables-1}):
//
//   atomic    ϕ ::= Lab_j(x_i)                       (dimension 1)
//                 | E(x_i, x_j)                      (dimension 1)
//                 | 1[x_i op x_j],  op ∈ {=, ≠}      (dimension 1)
//                 | c  for c ∈ R^d                   (dimension d)
//   function  ϕ ::= F(ϕ_1, ..., ϕ_l)   for F ∈ Ω
//   aggregate ϕ ::= agg_θ y (ϕ_value | ϕ_guard)      for θ ∈ Θ
//
// Free variables and dimensions follow the paper: fv(F(ϕ_1..ϕ_l)) is the
// union of the children's; agg binds the tuple y, removing it from the
// free set; the guard is optional (global aggregation, slide 46).
//
// The guarded two-variable fragment in which every aggregate binds one
// variable guarded by an edge atom is exactly MPNN(Ω,Θ) (slide 62:
// "GGEL2 = MPNN"); see core/analysis.h for the fragment checker.
//
// Expressions are immutable DAG nodes built by validating factories that
// return Result — dimension or variable errors surface as Status, never
// as exceptions.
#ifndef GELC_CORE_EXPR_H_
#define GELC_CORE_EXPR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/omega.h"
#include "core/theta.h"

namespace gelc {

/// Variables are small indices; a VarSet is a bitmask over them.
using Var = uint32_t;
using VarSet = uint32_t;
constexpr Var kMaxVariables = 16;

inline VarSet VarBit(Var v) { return VarSet{1} << v; }
inline bool VarSetContains(VarSet s, Var v) { return (s >> v) & 1u; }
inline size_t VarSetSize(VarSet s) {
  return static_cast<size_t>(__builtin_popcount(s));
}
/// Ascending list of the variables in s.
std::vector<Var> VarSetList(VarSet s);
/// "x0,x2" style rendering.
std::string VarSetToString(VarSet s);

/// Comparison operator of equality atoms.
enum class CmpOp { kEq, kNeq };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable GEL(Ω,Θ) expression node.
class Expr : public std::enable_shared_from_this<Expr> {
 public:
  enum class Kind { kLabel, kEdge, kCompare, kConst, kApply, kAggregate };

  // -- Factories (validating) ----------------------------------------------

  /// Lab_j(x_v): the j-th label component of the vertex bound to x_v.
  static Result<ExprPtr> Label(size_t label_index, Var v);
  /// E(x_a, x_b): 1 if there is an arc from x_a's vertex to x_b's.
  static Result<ExprPtr> Edge(Var a, Var b);
  /// 1[x_a op x_b].
  static Result<ExprPtr> Compare(Var a, Var b, CmpOp op);
  /// A constant vector (no free variables).
  static Result<ExprPtr> Constant(std::vector<double> value);
  /// F(children...): dimensions must match F's signature.
  static Result<ExprPtr> Apply(OmegaPtr fn, std::vector<ExprPtr> children);
  /// agg_θ bound (value | guard): `guard` may be nullptr (aggregate over
  /// all assignments of the bound tuple). value's dimension must equal
  /// θ.in_dim; `bound` must be non-empty.
  static Result<ExprPtr> Aggregate(ThetaPtr agg, VarSet bound, ExprPtr value,
                                   ExprPtr guard);

  // -- Accessors ------------------------------------------------------------

  Kind kind() const { return kind_; }
  /// Output dimension d: the embedding maps into R^d.
  size_t dim() const { return dim_; }
  /// Free variables; the expression denotes a |fv|-vertex embedding.
  VarSet free_vars() const { return free_; }
  /// All variables appearing (free or bound) anywhere in the expression;
  /// popcount of this is the GEL^k width (slide 62).
  VarSet all_vars() const { return all_; }

  size_t label_index() const { return label_index_; }
  Var var_a() const { return var_a_; }
  Var var_b() const { return var_b_; }
  CmpOp cmp_op() const { return cmp_op_; }
  const std::vector<double>& constant() const { return constant_; }
  const OmegaPtr& fn() const { return fn_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ThetaPtr& agg() const { return agg_; }
  VarSet bound_vars() const { return bound_; }
  const ExprPtr& value() const { return children_[0]; }
  /// Guard of an aggregate; nullptr for global aggregation.
  const ExprPtr& guard() const { return guard_; }

  /// Number of nodes in the expression tree (shared nodes counted once
  /// per occurrence).
  size_t TreeSize() const;
  /// Maximum nesting depth of aggregate nodes (0 = aggregation-free).
  size_t AggregationDepth() const;
  /// Textual rendering, e.g. "agg[sum]_{x1}(lab0(x1) | E(x0,x1))".
  std::string ToString() const;

  /// Canonical structural hash: equal for any two structurally identical
  /// trees regardless of node identity, covering kinds, variables,
  /// dimensions, constants, and Ω/Θ parameters (weight bytes included, so
  /// two `linear` nodes with different weights never collide by name).
  /// Cached on the node, so amortized O(1) per shared subtree. Both the
  /// Evaluator memo and the plan cache key on this hash, with
  /// StructurallyEqual as the collision check.
  uint64_t StructuralHash() const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kConst;
  size_t dim_ = 0;
  VarSet free_ = 0;
  VarSet all_ = 0;

  size_t label_index_ = 0;
  Var var_a_ = 0;
  Var var_b_ = 0;
  CmpOp cmp_op_ = CmpOp::kEq;
  std::vector<double> constant_;
  OmegaPtr fn_;
  std::vector<ExprPtr> children_;  // Apply args; [0] = aggregate value
  ThetaPtr agg_;
  VarSet bound_ = 0;
  ExprPtr guard_;

  // StructuralHash cache; 0 = not yet computed (computed hashes are
  // remapped away from 0). Relaxed atomics: concurrent recomputation is
  // benign because the value is a pure function of the immutable node.
  mutable std::atomic<uint64_t> hash_cache_{0};
};

/// Canonical hash of F ∈ Ω: kind, signature, and parameters (weight and
/// bias bytes, activation, scale constant, projection range, MLP layers).
/// kOpaque functions hash by closure identity — stable within a process,
/// which is all the in-memory caches need.
uint64_t OmegaStructuralHash(const OmegaFn& fn);
/// Structural equality of Ω functions: parameter bytes compared exactly;
/// kOpaque functions compare by identity.
bool OmegaStructurallyEqual(const OmegaFn& a, const OmegaFn& b);

/// Canonical hash of θ ∈ Θ (kind + dims; kOpaque by identity).
uint64_t ThetaStructuralHash(const ThetaAgg& agg);
bool ThetaStructurallyEqual(const ThetaAgg& a, const ThetaAgg& b);

/// Deep structural equality of expressions — the collision check backing
/// StructuralHash-keyed caches. O(min tree size); shared-node fast path.
bool StructurallyEqual(const ExprPtr& a, const ExprPtr& b);

}  // namespace gelc

#endif  // GELC_CORE_EXPR_H_
