#include "core/analysis.h"

namespace gelc {

size_t VariableWidth(const ExprPtr& e) {
  if (e == nullptr) return 0;
  return VarSetSize(e->all_vars());
}

namespace {

// Recursive fragment check. `in_guard_position` is true when `e` is the
// guard child of an aggregate (where edge atoms are permitted).
Status CheckMpnnRec(const ExprPtr& e, bool in_guard_position) {
  if (e == nullptr) return Status::InvalidArgument("null expression");
  if (e->all_vars() & ~(VarBit(0) | VarBit(1))) {
    return Status::FailedPrecondition(
        "uses variables beyond x0, x1: " + VarSetToString(e->all_vars()));
  }
  switch (e->kind()) {
    case Expr::Kind::kLabel:
    case Expr::Kind::kConst:
      return Status::OK();
    case Expr::Kind::kEdge:
      if (!in_guard_position) {
        return Status::FailedPrecondition(
            "edge atom outside an aggregate guard: " + e->ToString());
      }
      return Status::OK();
    case Expr::Kind::kCompare:
      return Status::FailedPrecondition(
          "equality atoms are not part of MPNN(Ω,Θ): " + e->ToString());
    case Expr::Kind::kApply: {
      for (const ExprPtr& c : e->children()) {
        GELC_RETURN_NOT_OK(CheckMpnnRec(c, /*in_guard_position=*/false));
      }
      return Status::OK();
    }
    case Expr::Kind::kAggregate: {
      if (VarSetSize(e->bound_vars()) != 1) {
        return Status::FailedPrecondition(
            "aggregate binds more than one variable: " + e->ToString());
      }
      Var bound = VarSetList(e->bound_vars())[0];
      GELC_RETURN_NOT_OK(CheckMpnnRec(e->value(),
                                      /*in_guard_position=*/false));
      if (e->guard() == nullptr) {
        // Global aggregation: the value may only mention the bound
        // variable (the readout of slide 46).
        if (e->value()->free_vars() & ~VarBit(bound)) {
          return Status::FailedPrecondition(
              "global aggregate whose value mentions a free variable: " +
              e->ToString());
        }
        return Status::OK();
      }
      // Guarded aggregation: guard must be exactly E(free, bound) or
      // E(bound, free).
      const ExprPtr& guard = e->guard();
      if (guard->kind() != Expr::Kind::kEdge) {
        return Status::FailedPrecondition(
            "aggregate guard is not an edge atom: " + e->ToString());
      }
      if (!VarSetContains(guard->free_vars(), bound)) {
        return Status::FailedPrecondition(
            "aggregate guard does not mention the bound variable: " +
            e->ToString());
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status CheckMpnnFragment(const ExprPtr& e) {
  return CheckMpnnRec(e, /*in_guard_position=*/false);
}

ExprAnalysis Analyze(const ExprPtr& e) {
  ExprAnalysis a;
  if (e == nullptr) return a;
  a.dim = e->dim();
  a.free_vars = e->free_vars();
  a.width = VariableWidth(e);
  a.aggregation_depth = e->AggregationDepth();
  a.tree_size = e->TreeSize();
  a.is_mpnn_fragment = IsMpnnFragment(e);
  if (a.is_mpnn_fragment) {
    a.separation_bound = "color refinement (= 1-WL)";
  } else if (a.width >= 2) {
    a.separation_bound = std::to_string(a.width - 1) + "-WL";
  } else {
    a.separation_bound = "trivial (single-vertex local)";
  }
  return a;
}

}  // namespace gelc
