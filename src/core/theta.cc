#include "core/theta.h"

#include <algorithm>
#include <limits>

namespace gelc {
namespace theta {

ThetaPtr Sum(size_t d) {
  auto t = std::make_shared<ThetaAgg>();
  t->name = "sum";
  t->kind = ThetaAgg::Kind::kSum;
  t->in_dim = d;
  t->out_dim = d;
  t->init = [d](double* acc) { std::fill(acc, acc + d, 0.0); };
  t->accumulate = [d](double* acc, const double* x) {
    for (size_t j = 0; j < d; ++j) acc[j] += x[j];
  };
  t->finalize = [](double*, size_t) {};
  return t;
}

ThetaPtr Mean(size_t d) {
  auto t = std::make_shared<ThetaAgg>();
  t->name = "mean";
  t->kind = ThetaAgg::Kind::kMean;
  t->in_dim = d;
  t->out_dim = d;
  t->init = [d](double* acc) { std::fill(acc, acc + d, 0.0); };
  t->accumulate = [d](double* acc, const double* x) {
    for (size_t j = 0; j < d; ++j) acc[j] += x[j];
  };
  t->finalize = [d](double* acc, size_t count) {
    if (count == 0) return;
    for (size_t j = 0; j < d; ++j) acc[j] /= static_cast<double>(count);
  };
  return t;
}

ThetaPtr Max(size_t d) {
  auto t = std::make_shared<ThetaAgg>();
  t->name = "max";
  t->kind = ThetaAgg::Kind::kMax;
  t->in_dim = d;
  t->out_dim = d;
  t->init = [d](double* acc) {
    std::fill(acc, acc + d, -std::numeric_limits<double>::infinity());
  };
  t->accumulate = [d](double* acc, const double* x) {
    for (size_t j = 0; j < d; ++j) acc[j] = std::max(acc[j], x[j]);
  };
  t->finalize = [d](double* acc, size_t count) {
    if (count == 0) std::fill(acc, acc + d, 0.0);
  };
  return t;
}

ThetaPtr Count(size_t d) {
  auto t = std::make_shared<ThetaAgg>();
  t->name = "count";
  t->kind = ThetaAgg::Kind::kCount;
  t->in_dim = d;
  t->out_dim = 1;
  t->init = [](double* acc) { acc[0] = 0.0; };
  t->accumulate = [](double* acc, const double*) { acc[0] += 1.0; };
  t->finalize = [](double*, size_t) {};
  return t;
}

}  // namespace theta
}  // namespace gelc
