#include "core/omega.h"

#include <cstring>

#include "base/logging.h"
#include "base/strings.h"

namespace gelc {
namespace omega {

OmegaPtr Concat(const std::vector<size_t>& arg_dims) {
  auto f = std::make_shared<OmegaFn>();
  f->name = "concat";
  f->kind = OmegaFn::Kind::kConcat;
  f->arg_dims = arg_dims;
  f->out_dim = f->total_in_dim();
  std::vector<size_t> dims = arg_dims;
  f->fn = [dims](const std::vector<const double*>& args, double* out) {
    size_t off = 0;
    for (size_t i = 0; i < dims.size(); ++i) {
      std::memcpy(out + off, args[i], dims[i] * sizeof(double));
      off += dims[i];
    }
  };
  return f;
}

Result<OmegaPtr> Linear(const std::vector<size_t>& arg_dims, Matrix w,
                        Matrix b) {
  size_t in = 0;
  for (size_t d : arg_dims) in += d;
  if (w.rows() != in) {
    return Status::InvalidArgument("Linear: W rows != total input dim");
  }
  if (b.rows() != 1 || b.cols() != w.cols()) {
    return Status::InvalidArgument("Linear: bias shape mismatch");
  }
  auto f = std::make_shared<OmegaFn>();
  f->name = "linear";
  f->kind = OmegaFn::Kind::kLinear;
  f->arg_dims = arg_dims;
  f->out_dim = w.cols();
  std::vector<size_t> dims = arg_dims;
  auto wp = std::make_shared<Matrix>(std::move(w));
  auto bp = std::make_shared<Matrix>(std::move(b));
  f->weight = wp;
  f->bias = bp;
  // Per-argument partial sums, combined left to right with the bias added
  // last: (x_1 W_1) + (x_2 W_2) + ... + b, each partial accumulated in
  // ascending component order from 0 with no zero-skip. This is the exact
  // grouping of the per-argument MatMul + AddRowBroadcast sequence used by
  // the hand-written GNN forwards and the compiled-plan executor, so all
  // three paths produce identical bits.
  f->fn = [dims, wp, bp](const std::vector<const double*>& args,
                         double* out) {
    size_t out_dim = wp->cols();
    std::vector<double> partial(out_dim);
    for (size_t j = 0; j < out_dim; ++j) out[j] = 0.0;
    size_t row = 0;
    for (size_t i = 0; i < dims.size(); ++i) {
      double* acc = i == 0 ? out : partial.data();
      for (size_t j = 0; j < out_dim; ++j) acc[j] = 0.0;
      for (size_t c = 0; c < dims[i]; ++c, ++row) {
        double x = args[i][c];
        for (size_t j = 0; j < out_dim; ++j) acc[j] += x * wp->At(row, j);
      }
      if (i != 0) {
        for (size_t j = 0; j < out_dim; ++j) out[j] += partial[j];
      }
    }
    for (size_t j = 0; j < out_dim; ++j) out[j] += bp->At(0, j);
  };
  return OmegaPtr(f);
}

OmegaPtr ActivationFn(Activation act, size_t d) {
  auto f = std::make_shared<OmegaFn>();
  f->name = ActivationName(act);
  f->kind = OmegaFn::Kind::kActivation;
  f->act = act;
  f->arg_dims = {d};
  f->out_dim = d;
  f->fn = [act, d](const std::vector<const double*>& args, double* out) {
    for (size_t j = 0; j < d; ++j) out[j] = ApplyActivation(act, args[0][j]);
  };
  return f;
}

OmegaPtr Add(size_t d) {
  auto f = std::make_shared<OmegaFn>();
  f->name = "add";
  f->kind = OmegaFn::Kind::kAdd;
  f->arg_dims = {d, d};
  f->out_dim = d;
  f->fn = [d](const std::vector<const double*>& args, double* out) {
    for (size_t j = 0; j < d; ++j) out[j] = args[0][j] + args[1][j];
  };
  return f;
}

OmegaPtr Multiply(size_t d) {
  auto f = std::make_shared<OmegaFn>();
  f->name = "mul";
  f->kind = OmegaFn::Kind::kMultiply;
  f->arg_dims = {d, d};
  f->out_dim = d;
  f->fn = [d](const std::vector<const double*>& args, double* out) {
    for (size_t j = 0; j < d; ++j) out[j] = args[0][j] * args[1][j];
  };
  return f;
}

OmegaPtr Scale(double c, size_t d) {
  auto f = std::make_shared<OmegaFn>();
  // The parameter is part of the name so expressions round-trip through
  // the text syntax (core/parser.h).
  f->name = "scale[" + FormatDouble(c) + "]";
  f->kind = OmegaFn::Kind::kScale;
  f->scale = c;
  f->arg_dims = {d};
  f->out_dim = d;
  f->fn = [c, d](const std::vector<const double*>& args, double* out) {
    for (size_t j = 0; j < d; ++j) out[j] = c * args[0][j];
  };
  return f;
}

Result<OmegaPtr> FromMlp(const std::vector<size_t>& arg_dims, Mlp mlp) {
  size_t in = 0;
  for (size_t d : arg_dims) in += d;
  if (mlp.empty() || mlp.in_dim() != in) {
    return Status::InvalidArgument("FromMlp: MLP input dim mismatch");
  }
  auto f = std::make_shared<OmegaFn>();
  f->name = "mlp";
  f->kind = OmegaFn::Kind::kMlp;
  f->arg_dims = arg_dims;
  f->out_dim = mlp.out_dim();
  std::vector<size_t> dims = arg_dims;
  auto mp = std::make_shared<Mlp>(std::move(mlp));
  f->mlp = mp;
  f->fn = [dims, mp, in](const std::vector<const double*>& args,
                         double* out) {
    Matrix x(1, in);
    size_t off = 0;
    for (size_t i = 0; i < dims.size(); ++i)
      for (size_t c = 0; c < dims[i]; ++c) x.At(0, off++) = args[i][c];
    Matrix y = mp->Forward(x);
    for (size_t j = 0; j < y.cols(); ++j) out[j] = y.At(0, j);
  };
  return OmegaPtr(f);
}

Result<OmegaPtr> Project(size_t d, size_t begin, size_t len) {
  if (begin + len > d || len == 0) {
    return Status::OutOfRange("Project: component range out of range");
  }
  auto f = std::make_shared<OmegaFn>();
  f->name = "project[" + std::to_string(begin) + "," + std::to_string(len) +
            "]";
  f->kind = OmegaFn::Kind::kProject;
  f->project_begin = begin;
  f->project_len = len;
  f->arg_dims = {d};
  f->out_dim = len;
  f->fn = [begin, len](const std::vector<const double*>& args, double* out) {
    std::memcpy(out, args[0] + begin, len * sizeof(double));
  };
  return OmegaPtr(f);
}

}  // namespace omega
}  // namespace gelc
