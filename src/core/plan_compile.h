// Compiling GEL expressions to plans (core/plan.h).
//
// CompileToPlan lowers a normalized expression into the plan IR and runs
// the algebraic optimizer:
//
//   1. MinimizeVariables (core/rewrite.h) canonicalizes binder names —
//      plans and cache keys are shared across alpha-equivalent queries.
//   2. Lowering value-numbers every emitted op (CSE): structurally
//      identical subexpressions — across layers of an unrolled GNN, say —
//      collapse to one slot even when the Expr DAG does not share nodes.
//   3. Edge guards compile to a CSR traversal direction instead of an
//      n x n guard table (guard pushdown into aggregation).
//   4. Rewrite passes fuse the layer pipeline: label coalescing,
//      activation fusion, aggregate absorption into linear layers (one
//      CSR-row pass, no n x d aggregate temporary), GIN combine fusion,
//      pool+readout fusion, then dead-code elimination.
//
// Lowering is partial by design: expressions outside the plannable
// fragment (pair tables, multi-variable binders, non-edge guards, opaque
// guards) return Unimplemented and the caller falls back to
// Evaluator::Eval. Whenever compilation succeeds, executing the plan is
// bit-identical to the interpreter at any thread count — except under
// PlanOptions::reassociate, which explicitly trades bit-identity for
// fewer flops (see below).
#ifndef GELC_CORE_PLAN_COMPILE_H_
#define GELC_CORE_PLAN_COMPILE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "core/expr.h"
#include "core/plan.h"
#include "gnn/mpnn.h"

namespace gelc {

struct PlanOptions {
  /// Run the rewrite passes. Off = straight lowering (still CSE'd), used
  /// by the golden tests to witness each rewrite's effect.
  bool optimize = true;
  /// Reorder agg_sum/mean(linear_nobias(x)) into linear(agg(x)) when the
  /// input dimension is smaller than the output dimension (aggregate in
  /// the cheap dimension). Mathematically exact but floating-point
  /// reassociating, so OFF by default to preserve the bit-identity
  /// contract; results agree with the interpreter up to tolerance.
  bool reassociate = false;

  bool operator==(const PlanOptions& o) const {
    return optimize == o.optimize && reassociate == o.reassociate;
  }
};

/// What the compiler did, for tests and the gelc_plan CLI.
struct CompileStats {
  size_t ops_before_opt = 0;
  size_t ops_after_opt = 0;
  size_t cse_hits = 0;         // emissions deduplicated by value numbering
  size_t guard_pushdowns = 0;  // edge guards turned into CSR traversals
  size_t reassociations = 0;   // aggregation/linear reorders (opt-in)
  size_t label_coalesces = 0;
  size_t activation_fusions = 0;
  size_t aggregate_absorptions = 0;
  size_t gin_fusions = 0;
  size_t readout_fusions = 0;
};

/// Compiles `e` (closed or single-free-variable) into a plan.
/// Unimplemented if `e` is outside the plannable fragment.
Result<PlanPtr> CompileToPlan(const ExprPtr& e, const PlanOptions& options,
                              CompileStats* stats);
Result<PlanPtr> CompileToPlan(const ExprPtr& e);

/// Direct model lowering for GCN, whose normalized propagation operator
/// D̃^{-1/2}(A+I)D̃^{-1/2} is weighted and therefore not expressible as a
/// GEL edge guard: one fused layer per GCN layer over PlanCsr::kNorm.
/// Bit-identical to GcnModel::VertexEmbeddings.
Result<PlanPtr> CompileGcnToPlan(const GcnModel& model);

/// A keyed plan cache: structurally identical queries (after binder
/// minimization) compile once. Caller-owned and intentionally not
/// thread-safe — share per pipeline stage, not across threads (the
/// repo-wide mutex ban outside base/parallel and obs is deliberate).
class PlanCache {
 public:
  explicit PlanCache(PlanOptions options = {});

  /// Returns the cached plan for any expression structurally equal to
  /// `e` modulo binder renaming, compiling on first sight. Propagates
  /// Unimplemented for non-plannable expressions (not cached).
  Result<PlanPtr> GetOrCompile(const ExprPtr& e);

  size_t size() const { return entries_; }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  PlanOptions options_;
  // StructuralHash of the minimized expression -> bucket of
  // (minimized expression, plan); StructurallyEqual resolves collisions.
  std::unordered_map<uint64_t, std::vector<std::pair<ExprPtr, PlanPtr>>>
      cache_;
  size_t entries_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace gelc

#endif  // GELC_CORE_PLAN_COMPILE_H_
