// The function collection Ω of the embedding languages MPNN(Ω,Θ) and
// GEL(Ω,Θ) (slides 44 and 60): typed functions R^{d_1+...+d_l} -> R^d that
// expressions may apply pointwise to subexpression values.
//
// The paper's theorems quantify over choices of Ω — e.g. "Ω contains
// concatenation, linear combinations and non-linear activation functions"
// (slide 52), or "Ω is mlp-closed" (slide 53). The factories below provide
// exactly those building blocks.
#ifndef GELC_CORE_OMEGA_H_
#define GELC_CORE_OMEGA_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "gnn/mlp.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace gelc {

/// A typed function F : R^{d_1} x ... x R^{d_l} -> R^d from Ω.
///
/// `fn` receives one pointer per argument (arg i points at d_i doubles)
/// and writes out_dim doubles to `out`.
///
/// Besides the opaque closure, every factory below tags its Kind and
/// parameters. The plan compiler (core/plan_compile.h) reads the
/// structured form to emit vectorized/fused tensor ops and to hash
/// parameters canonically; kOpaque functions still execute, row by row,
/// through `fn`.
struct OmegaFn {
  enum class Kind {
    kOpaque,
    kConcat,
    kLinear,
    kActivation,
    kAdd,
    kMultiply,
    kScale,
    kMlp,
    kProject,
  };

  std::string name;
  std::vector<size_t> arg_dims;
  size_t out_dim = 0;
  std::function<void(const std::vector<const double*>& args, double* out)> fn;

  Kind kind = Kind::kOpaque;
  std::shared_ptr<const Matrix> weight;  // kLinear: W ((Σ arg_dims) x out)
  std::shared_ptr<const Matrix> bias;    // kLinear: b (1 x out)
  std::shared_ptr<const Mlp> mlp;        // kMlp
  Activation act = Activation::kIdentity;  // kActivation
  double scale = 1.0;                      // kScale
  size_t project_begin = 0;                // kProject
  size_t project_len = 0;                  // kProject

  size_t arity() const { return arg_dims.size(); }
  size_t total_in_dim() const {
    size_t s = 0;
    for (size_t d : arg_dims) s += d;
    return s;
  }
};

using OmegaPtr = std::shared_ptr<const OmegaFn>;

namespace omega {

/// Concatenation (d_1, ..., d_l) -> d_1 + ... + d_l.
OmegaPtr Concat(const std::vector<size_t>& arg_dims);

/// Linear map on the concatenated arguments: x -> x W + b, with
/// W in R^{(Σ arg_dims) x out} and b in R^{1 x out}.
Result<OmegaPtr> Linear(const std::vector<size_t>& arg_dims, Matrix w,
                        Matrix b);

/// Entrywise activation σ on a single argument of dimension d.
OmegaPtr ActivationFn(Activation act, size_t d);

/// Entrywise sum of two d-dimensional arguments.
OmegaPtr Add(size_t d);

/// Entrywise (Hadamard) product of two d-dimensional arguments.
OmegaPtr Multiply(size_t d);

/// Scalar multiple x -> c * x of one d-dimensional argument.
OmegaPtr Scale(double c, size_t d);

/// An MLP applied to the concatenated arguments (slide 53: mlp-closure).
Result<OmegaPtr> FromMlp(const std::vector<size_t>& arg_dims, Mlp mlp);

/// Projection of a single d-dimensional argument onto components
/// [begin, begin + len).
Result<OmegaPtr> Project(size_t d, size_t begin, size_t len);

}  // namespace omega

}  // namespace gelc

#endif  // GELC_CORE_OMEGA_H_
