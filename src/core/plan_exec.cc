#include "core/plan_exec.h"

#include <cstring>
#include <vector>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "obs/trace.h"
#include "tensor/fused.h"
#include "tensor/simd.h"

namespace gelc {

namespace {

const CsrMatrix& CsrOf(const Graph& g, PlanCsr which) {
  switch (which) {
    case PlanCsr::kOut:
      return g.Csr().adjacency();
    case PlanCsr::kIn:
      return g.Csr().transpose();
    case PlanCsr::kNorm:
      return g.Csr().normalized();
  }
  return g.Csr().adjacency();
}

FusedAgg FusedAggOf(ThetaAgg::Kind kind) {
  switch (kind) {
    case ThetaAgg::Kind::kSum:
      return FusedAgg::kSum;
    case ThetaAgg::Kind::kMean:
      return FusedAgg::kMean;
    case ThetaAgg::Kind::kMax:
      return FusedAgg::kMax;
    case ThetaAgg::Kind::kCount:
      return FusedAgg::kCount;
    case ThetaAgg::Kind::kOpaque:
      break;
  }
  GELC_CHECK(false && "opaque aggregation has no fused kernel");
  return FusedAgg::kSum;
}

// Row pointer of a slot for logical row r (global slots broadcast row 0).
inline const double* RowOf(const Matrix& m, bool per_vertex, size_t r) {
  return m.data().data() + (per_vertex ? r : 0) * m.cols();
}

// Opaque θ: run the closures exactly as the interpreter does — init, one
// accumulate per included assignment (= per CSR entry), finalize with the
// included count.
void OpaqueNeighborAgg(const CsrMatrix& csr, const Matrix& values,
                       const ThetaAgg& theta, PlanGather gather,
                       Matrix* out) {
  const size_t d_in = theta.in_dim;
  for (size_t v = 0; v < csr.rows; ++v) {
    double* acc = out->mutable_data().data() + v * out->cols();
    theta.init(acc);
    const size_t begin = csr.row_offsets[v];
    const size_t end = csr.row_offsets[v + 1];
    for (size_t k = begin; k < end; ++k) {
      size_t row = gather == PlanGather::kBroadcast ? 0
                   : gather == PlanGather::kSource  ? v
                                                    : csr.col_indices[k];
      theta.accumulate(acc, values.data().data() + row * d_in);
    }
    theta.finalize(acc, end - begin);
  }
}

}  // namespace

Result<Matrix> ExecutePlan(const Plan& plan, const Graph& g) {
  if (plan.ops.empty() || plan.result >= plan.ops.size()) {
    return Status::InvalidArgument("empty or malformed plan");
  }
  const size_t n = g.num_vertices();
  static obs::Counter* execs = obs::GetCounter("plan.exec_calls");
  static obs::Counter* fused = obs::GetCounter("plan.fused_dispatch");
  execs->Increment();
  GELC_TRACE_SPAN("plan_exec", {{"ops", plan.ops.size()}, {"n", n}});
  GELC_OBS_TIME("plan_exec");

  std::vector<Matrix> slots(plan.ops.size());
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    const PlanOp& op = plan.ops[i];
    const size_t rows = op.type.per_vertex ? n : 1;
    const size_t dim = op.type.dim;
    switch (op.kind) {
      case PlanOpKind::kLoadLabels: {
        for (size_t c : op.label_cols) {
          if (c >= g.feature_dim()) {
            return Status::InvalidArgument(
                "label index exceeds graph feature dimension");
          }
        }
        Matrix out(n, op.label_cols.size());
        for (size_t v = 0; v < n; ++v) {
          for (size_t j = 0; j < op.label_cols.size(); ++j) {
            out.At(v, j) = g.features().At(v, op.label_cols[j]);
          }
        }
        slots[i] = std::move(out);
        break;
      }
      case PlanOpKind::kConstant: {
        Matrix out(1, op.constant.size());
        std::copy(op.constant.begin(), op.constant.end(),
                  out.mutable_data().begin());
        slots[i] = std::move(out);
        break;
      }
      case PlanOpKind::kConcat: {
        Matrix out(rows, dim);
        for (size_t r = 0; r < rows; ++r) {
          double* orow = out.mutable_data().data() + r * dim;
          size_t off = 0;
          for (uint32_t s : op.inputs) {
            const Matrix& in = slots[s];
            const double* irow =
                RowOf(in, plan.ops[s].type.per_vertex, r);
            std::memcpy(orow + off, irow, in.cols() * sizeof(double));
            off += in.cols();
          }
        }
        slots[i] = std::move(out);
        break;
      }
      case PlanOpKind::kProject: {
        const Matrix& in = slots[op.inputs[0]];
        Matrix out(rows, dim);
        for (size_t r = 0; r < rows; ++r) {
          std::memcpy(out.mutable_data().data() + r * dim,
                      RowOf(in, plan.ops[op.inputs[0]].type.per_vertex, r) +
                          op.project_begin,
                      op.project_len * sizeof(double));
        }
        slots[i] = std::move(out);
        break;
      }
      case PlanOpKind::kScale: {
        const Matrix& in = slots[op.inputs[0]];
        Matrix out(rows, dim);
        simd::ScaleRowCopy(out.mutable_data().data(), in.data().data(),
                           op.scale, out.data().size());
        slots[i] = std::move(out);
        break;
      }
      case PlanOpKind::kAdd:
      case PlanOpKind::kMul: {
        const Matrix& a = slots[op.inputs[0]];
        const Matrix& b = slots[op.inputs[1]];
        const bool apv = plan.ops[op.inputs[0]].type.per_vertex;
        const bool bpv = plan.ops[op.inputs[1]].type.per_vertex;
        Matrix out(rows, dim);
        for (size_t r = 0; r < rows; ++r) {
          const double* arow = RowOf(a, apv, r);
          const double* brow = RowOf(b, bpv, r);
          double* orow = out.mutable_data().data() + r * dim;
          if (op.kind == PlanOpKind::kAdd) {
            simd::AddRowsTo(orow, arow, brow, dim);
          } else {
            simd::MulRowsTo(orow, arow, brow, dim);
          }
        }
        slots[i] = std::move(out);
        break;
      }
      case PlanOpKind::kActivation: {
        const Matrix& in = slots[op.inputs[0]];
        Matrix out(rows, dim);
        for (size_t k = 0; k < out.data().size(); ++k) {
          out.mutable_data()[k] = ApplyActivation(op.act, in.data()[k]);
        }
        slots[i] = std::move(out);
        break;
      }
      case PlanOpKind::kPointwise: {
        Matrix out(rows, dim);
        std::vector<const double*> args(op.inputs.size());
        for (size_t r = 0; r < rows; ++r) {
          for (size_t k = 0; k < op.inputs.size(); ++k) {
            args[k] = RowOf(slots[op.inputs[k]],
                            plan.ops[op.inputs[k]].type.per_vertex, r);
          }
          op.fn->fn(args, out.mutable_data().data() + r * dim);
        }
        slots[i] = std::move(out);
        break;
      }
      case PlanOpKind::kMlp: {
        size_t in_dim = 0;
        for (uint32_t s : op.inputs) in_dim += slots[s].cols();
        Matrix x(rows, in_dim);
        for (size_t r = 0; r < rows; ++r) {
          double* xrow = x.mutable_data().data() + r * in_dim;
          size_t off = 0;
          for (uint32_t s : op.inputs) {
            const Matrix& in = slots[s];
            std::memcpy(xrow + off,
                        RowOf(in, plan.ops[s].type.per_vertex, r),
                        in.cols() * sizeof(double));
            off += in.cols();
          }
        }
        slots[i] = op.mlp->Forward(x);
        break;
      }
      case PlanOpKind::kNeighborAgg: {
        const Matrix& values = slots[op.inputs[0]];
        const CsrMatrix& csr = CsrOf(g, op.csr);
        Matrix out(n, dim);
        if (op.agg == ThetaAgg::Kind::kOpaque) {
          OpaqueNeighborAgg(csr, values, *op.theta, op.gather, &out);
        } else {
          NeighborAggregateInto(csr, values, FusedAggOf(op.agg),
                                op.gather == PlanGather::kBroadcast,
                                op.gather == PlanGather::kSource, &out);
        }
        slots[i] = std::move(out);
        break;
      }
      case PlanOpKind::kPool: {
        const Matrix& values = slots[op.inputs[0]];
        const bool broadcast = op.gather == PlanGather::kBroadcast;
        if (op.agg == ThetaAgg::Kind::kOpaque) {
          Matrix out(1, dim);
          // The interpreter returns the zero table without touching θ
          // when the graph is empty; match that exactly.
          if (n > 0) {
            double* acc = out.mutable_data().data();
            op.theta->init(acc);
            for (size_t v = 0; v < n; ++v) {
              op.theta->accumulate(
                  acc, values.data().data() +
                           (broadcast ? 0 : v) * values.cols());
            }
            op.theta->finalize(acc, n);
          }
          slots[i] = std::move(out);
        } else {
          slots[i] = PoolRows(values, FusedAggOf(op.agg), n, broadcast);
        }
        break;
      }
      case PlanOpKind::kFusedLayer: {
        fused->Increment();
        std::vector<FusedLayerArg> args;
        args.reserve(op.args.size());
        for (const PlanLayerArg& a : op.args) {
          FusedLayerArg fa;
          fa.values = &slots[a.input];
          fa.w = a.w.get();
          if (a.aggregated) {
            fa.csr = &CsrOf(g, a.csr);
            fa.agg = FusedAggOf(a.agg);
            fa.broadcast = a.gather == PlanGather::kBroadcast;
            fa.gather_source = a.gather == PlanGather::kSource;
          } else {
            fa.broadcast = !plan.ops[a.input].type.per_vertex;
          }
          args.push_back(fa);
        }
        Matrix out(rows, dim);
        FusedLayerInto(rows, args, op.bias.get(), op.act, &out);
        slots[i] = std::move(out);
        break;
      }
      case PlanOpKind::kGinCombine: {
        fused->Increment();
        Matrix out(n, dim);
        FusedGinCombineInto(CsrOf(g, op.csr), slots[op.inputs[0]], op.scale,
                            &out);
        slots[i] = std::move(out);
        break;
      }
      case PlanOpKind::kPoolReadout: {
        fused->Increment();
        const Matrix& values = slots[op.inputs[0]];
        Matrix pooled = PoolRows(values, FusedAggOf(op.agg), n,
                                 op.gather == PlanGather::kBroadcast);
        FusedLayerArg fa;
        fa.values = &pooled;
        fa.w = op.weight.get();
        Matrix out(1, dim);
        FusedLayerInto(1, {fa}, op.bias.get(), op.act, &out);
        slots[i] = std::move(out);
        break;
      }
    }
  }
  return std::move(slots[plan.result]);
}

}  // namespace gelc
