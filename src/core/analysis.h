// Static analysis of GEL(Ω,Θ) expressions.
//
// The central classification of the paper: an expression using k distinct
// variables lives in GEL^k(Ω,Θ), and ρ(k-WL) = ρ(GEL^{k+1}) (slide 66);
// the guarded two-variable fragment GGEL^2 — every aggregate binds one
// variable, guarded by an edge atom linking it to the free variable — is
// exactly MPNN(Ω,Θ) (slide 62), whose separation power is color
// refinement (slides 51-52). "A new embedding method just needs to be cast
// in the embedding language to know a bound on its expressive power"
// (slide 35): these analyses implement that recipe mechanically.
#ifndef GELC_CORE_ANALYSIS_H_
#define GELC_CORE_ANALYSIS_H_

#include <string>

#include "base/status.h"
#include "core/expr.h"

namespace gelc {

/// The GEL^k width: number of distinct variables (free or bound) used.
size_t VariableWidth(const ExprPtr& e);

/// Per-expression summary used by reports and the gel_playground example.
struct ExprAnalysis {
  size_t dim = 0;
  VarSet free_vars = 0;
  size_t width = 0;             // GEL^k membership: smallest such k
  size_t aggregation_depth = 0; // rounds of message passing, if guarded
  size_t tree_size = 0;
  bool is_mpnn_fragment = false;
  /// Upper bound on separation power implied by the width (slide 66):
  /// "(width-1)-WL" for width >= 2, "color refinement" for the guarded
  /// 2-variable fragment.
  std::string separation_bound;
};

ExprAnalysis Analyze(const ExprPtr& e);

/// Checks membership in the MPNN(Ω,Θ) fragment (slides 42-46):
///   - only variables x0 and x1 are used;
///   - every aggregate binds exactly one variable and is either
///     (a) guarded by exactly an edge atom connecting the bound variable
///         to the other variable (neighborhood aggregation, slide 45), or
///     (b) unguarded with the value's free variables contained in the
///         bound one (global aggregation / readout, slide 46);
///   - edge and equality atoms occur only as aggregate guards.
/// Returns OK or an explanatory error.
Status CheckMpnnFragment(const ExprPtr& e);

/// Convenience wrapper around CheckMpnnFragment.
inline bool IsMpnnFragment(const ExprPtr& e) {
  return CheckMpnnFragment(e).ok();
}

}  // namespace gelc

#endif  // GELC_CORE_ANALYSIS_H_
