#include "core/normal_form.h"

#include <sstream>

#include "base/logging.h"
#include "core/analysis.h"

namespace gelc {

namespace {

// Collects aggregate nodes by nesting depth (1-based stages).
void CollectAggregates(const Expr* e,
                       std::map<const Expr*, size_t>* depth_of) {
  for (const ExprPtr& c : e->children()) CollectAggregates(c.get(), depth_of);
  if (e->guard() != nullptr) CollectAggregates(e->guard().get(), depth_of);
  if (e->kind() == Expr::Kind::kAggregate &&
      depth_of->find(e) == depth_of->end()) {
    (*depth_of)[e] = e->AggregationDepth();  // own depth includes itself
  }
}

// Stored per-aggregate outputs during a run: one row per vertex for
// neighborhood aggregates (one free variable), a single row for global
// aggregates (closed).
using AggStore = std::map<const Expr*, Matrix>;

// Pointwise evaluation of a fragment expression under a (partial) variable
// assignment, reading aggregate values from the store.
void EvalPointwise(const Expr* e, const Graph& g,
                   const std::vector<VertexId>& assignment,
                   const AggStore& store, double* out) {
  switch (e->kind()) {
    case Expr::Kind::kLabel: {
      Var v = e->var_a();
      out[0] = g.features().At(assignment[v], e->label_index());
      return;
    }
    case Expr::Kind::kEdge:
      out[0] = g.HasEdge(assignment[e->var_a()], assignment[e->var_b()])
                   ? 1.0
                   : 0.0;
      return;
    case Expr::Kind::kCompare: {
      bool eq = assignment[e->var_a()] == assignment[e->var_b()];
      out[0] = (eq == (e->cmp_op() == CmpOp::kEq)) ? 1.0 : 0.0;
      return;
    }
    case Expr::Kind::kConst: {
      for (size_t j = 0; j < e->dim(); ++j) out[j] = e->constant()[j];
      return;
    }
    case Expr::Kind::kApply: {
      // Evaluate children into a contiguous scratch buffer.
      size_t total = 0;
      for (const ExprPtr& c : e->children()) total += c->dim();
      std::vector<double> scratch(total);
      std::vector<const double*> args;
      size_t off = 0;
      for (const ExprPtr& c : e->children()) {
        EvalPointwise(c.get(), g, assignment, store, scratch.data() + off);
        args.push_back(scratch.data() + off);
        off += c->dim();
      }
      e->fn()->fn(args, out);
      return;
    }
    case Expr::Kind::kAggregate: {
      auto it = store.find(e);
      GELC_CHECK(it != store.end() &&
                 "aggregate read before its layer ran");
      const Matrix& rows = it->second;
      VarSet free = e->free_vars();
      size_t row = 0;
      if (free != 0) {
        Var v = VarSetList(free)[0];
        row = assignment[v];
      }
      for (size_t j = 0; j < e->dim(); ++j) out[j] = rows.At(row, j);
      return;
    }
  }
}

// Computes one aggregate node for all vertices (or globally) into `store`.
void RunAggregate(const Expr* e, const Graph& g, AggStore* store) {
  size_t n = g.num_vertices();
  size_t d = e->dim();
  const ThetaAgg& theta = *e->agg();
  Var bound = VarSetList(e->bound_vars())[0];
  std::vector<VertexId> assignment(kMaxVariables, 0);
  std::vector<double> value(theta.in_dim);

  if (e->guard() == nullptr) {
    // Global aggregation: one row.
    Matrix acc_m(1, d);
    double* acc = &acc_m.mutable_data()[0];
    theta.init(acc);
    size_t count = 0;
    for (size_t w = 0; w < n; ++w) {
      assignment[bound] = static_cast<VertexId>(w);
      EvalPointwise(e->value().get(), g, assignment, *store, value.data());
      theta.accumulate(acc, value.data());
      ++count;
    }
    theta.finalize(acc, count);
    store->emplace(e, std::move(acc_m));
    return;
  }

  // Neighborhood aggregation guarded by E(a, b). Determine which guard
  // position holds the free variable.
  const Expr* guard = e->guard().get();
  Var free_var = guard->var_a() == bound ? guard->var_b() : guard->var_a();
  bool bound_is_target = guard->var_b() == bound;  // E(free, bound)
  Matrix rows(n, d);
  for (size_t v = 0; v < n; ++v) {
    assignment[free_var] = static_cast<VertexId>(v);
    double* acc = &rows.mutable_data()[v * d];
    theta.init(acc);
    size_t count = 0;
    const std::vector<VertexId>& nbrs =
        bound_is_target ? g.Neighbors(static_cast<VertexId>(v))
                        : g.InNeighbors(static_cast<VertexId>(v));
    for (VertexId u : nbrs) {
      assignment[bound] = u;
      EvalPointwise(e->value().get(), g, assignment, *store, value.data());
      theta.accumulate(acc, value.data());
      ++count;
    }
    theta.finalize(acc, count);
  }
  store->emplace(e, std::move(rows));
}

}  // namespace

Result<NormalFormProgram> NormalFormProgram::Normalize(const ExprPtr& e) {
  GELC_RETURN_NOT_OK(CheckMpnnFragment(e));
  NormalFormProgram p;
  p.root_ = e;
  std::map<const Expr*, size_t> depth_of;
  CollectAggregates(e.get(), &depth_of);
  size_t max_depth = 0;
  for (const auto& [node, depth] : depth_of)
    max_depth = std::max(max_depth, depth);
  p.stages_.resize(max_depth);
  for (const auto& [node, depth] : depth_of)
    p.stages_[depth - 1].push_back(node);
  return p;
}

Result<Matrix> NormalFormProgram::Run(const Graph& g) const {
  size_t free_count = VarSetSize(root_->free_vars());
  if (free_count > 1) {
    return Status::FailedPrecondition(
        "normal-form programs produce vertex or graph embeddings only");
  }
  AggStore store;
  for (const auto& stage : stages_) {
    for (const Expr* node : stage) RunAggregate(node, g, &store);
  }
  size_t d = root_->dim();
  if (free_count == 0) {
    Matrix out(1, d);
    std::vector<VertexId> assignment(kMaxVariables, 0);
    EvalPointwise(root_.get(), g, assignment, store, &out.mutable_data()[0]);
    return out;
  }
  Var v = VarSetList(root_->free_vars())[0];
  size_t n = g.num_vertices();
  Matrix out(n, d);
  std::vector<VertexId> assignment(kMaxVariables, 0);
  for (size_t w = 0; w < n; ++w) {
    assignment[v] = static_cast<VertexId>(w);
    EvalPointwise(root_.get(), g, assignment, store, &out.mutable_data()[w * d]);
  }
  return out;
}

size_t NormalFormProgram::num_aggregates() const {
  size_t total = 0;
  for (const auto& s : stages_) total += s.size();
  return total;
}

std::string NormalFormProgram::Describe() const {
  std::ostringstream os;
  for (size_t t = 0; t < stages_.size(); ++t) {
    os << "layer " << (t + 1) << ":";
    for (const Expr* node : stages_[t]) os << " " << node->ToString();
    os << "\n";
  }
  return os.str();
}

}  // namespace gelc
