// Executing compiled plans (core/plan.h) on a graph: a small bytecode
// VM over value slots. Structured ops dispatch to the fused kernels in
// tensor/fused.h (one CSR-row pass per fused layer); opaque ops run the
// original Ω/Θ closures row by row, so execution covers everything the
// compiler lowers.
//
// Contract: ExecutePlan(CompileToPlan(e), g) is bit-identical to
// Evaluator::Eval(e) at any thread count (tests/plan_test.cc), except
// under PlanOptions::reassociate which is tolerance-equal by design.
#ifndef GELC_CORE_PLAN_EXEC_H_
#define GELC_CORE_PLAN_EXEC_H_

#include "base/status.h"
#include "core/plan.h"
#include "graph/graph.h"
#include "tensor/matrix.h"

namespace gelc {

/// Runs the plan on `g`. Returns an n x d matrix for a per-vertex plan
/// (row v = the embedding of vertex v) or a 1 x d row for a closed plan.
Result<Matrix> ExecutePlan(const Plan& plan, const Graph& g);

}  // namespace gelc

#endif  // GELC_CORE_PLAN_EXEC_H_
