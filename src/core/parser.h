// Text syntax for GEL(Ω,Θ) expressions — the "query language" of the
// paper made concrete. The grammar matches Expr::ToString, so parseable
// expressions round-trip:
//
//   expr   := atom | const | apply | aggregate
//   atom   := 'lab' INT '(' var ')'               label component
//           | 'E' '(' var ',' var ')'             edge relation
//           | '1[' var ('=' | '!=') var ']'       equality indicator
//   const  := '[' NUM (',' NUM)* ']'
//   apply  := FN '(' expr (',' expr)* ')'
//   aggregate :=
//        'agg' '[' AGG ']' '_' '{' var (',' var)* '}'
//              '(' expr ('|' expr)? ')'
//   var    := 'x' INT
//   FN     := relu | sigmoid | tanh | sign | identity | clipped_relu
//           | add | mul | concat | scale[NUM] | project[INT,INT]
//   AGG    := sum | mean | max | count
//
// Dimensions are inferred bottom-up; functions requiring weight matrices
// (linear, mlp) have no text form and must be built through the API.
#ifndef GELC_CORE_PARSER_H_
#define GELC_CORE_PARSER_H_

#include <string>

#include "base/status.h"
#include "core/expr.h"

namespace gelc {

/// Parses the textual GEL syntax above. Errors carry the offending
/// position and token.
Result<ExprPtr> ParseExpr(const std::string& text);

}  // namespace gelc

#endif  // GELC_CORE_PARSER_H_
