#include "core/compile_gnn.h"

#include <functional>
#include <map>
#include <utility>

#include "base/logging.h"

namespace gelc {

namespace {

// Stacks [w1; w2] so that linear([self | agg]) = self*w1 + agg*w2.
Matrix StackRows(const Matrix& w1, const Matrix& w2) {
  GELC_CHECK(w1.cols() == w2.cols());
  Matrix out(w1.rows() + w2.rows(), w1.cols());
  for (size_t i = 0; i < w1.rows(); ++i)
    for (size_t j = 0; j < w1.cols(); ++j) out.At(i, j) = w1.At(i, j);
  for (size_t i = 0; i < w2.rows(); ++i)
    for (size_t j = 0; j < w2.cols(); ++j)
      out.At(w1.rows() + i, j) = w2.At(i, j);
  return out;
}

// Initial embedding ϕ^(0)(x_v): concatenation of all label atoms.
Result<ExprPtr> InputExpr(size_t input_dim, Var v) {
  std::vector<ExprPtr> labels;
  for (size_t j = 0; j < input_dim; ++j) {
    GELC_ASSIGN_OR_RETURN(ExprPtr l, Expr::Label(j, v));
    labels.push_back(std::move(l));
  }
  if (labels.size() == 1) return labels[0];
  OmegaPtr concat = omega::Concat(std::vector<size_t>(input_dim, 1));
  return Expr::Apply(std::move(concat), std::move(labels));
}

// Shared builder: layers expressed as self/agg weight pairs.
struct LinearLayerSpec {
  Matrix w1, w2, b;
  Activation act;
};

class LayerwiseCompiler {
 public:
  LayerwiseCompiler(size_t input_dim, std::vector<LinearLayerSpec> layers)
      : input_dim_(input_dim), layers_(std::move(layers)) {}

  // ϕ^(t) with free variable v; the aggregate binds the other variable.
  Result<ExprPtr> Build(size_t t, Var v) {
    auto key = std::make_pair(t, v);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    ExprPtr result;
    if (t == 0) {
      GELC_ASSIGN_OR_RETURN(result, InputExpr(input_dim_, v));
    } else {
      const LinearLayerSpec& spec = layers_[t - 1];
      Var other = (v == 0) ? 1 : 0;
      GELC_ASSIGN_OR_RETURN(ExprPtr self, Build(t - 1, v));
      GELC_ASSIGN_OR_RETURN(ExprPtr nbr, Build(t - 1, other));
      size_t d_in = self->dim();
      GELC_ASSIGN_OR_RETURN(ExprPtr guard, Expr::Edge(v, other));
      GELC_ASSIGN_OR_RETURN(
          ExprPtr agg, Expr::Aggregate(theta::Sum(d_in), VarBit(other),
                                       std::move(nbr), std::move(guard)));
      GELC_ASSIGN_OR_RETURN(
          OmegaPtr lin, omega::Linear({d_in, d_in}, StackRows(spec.w1,
                                                              spec.w2),
                                      spec.b));
      GELC_ASSIGN_OR_RETURN(
          ExprPtr pre, Expr::Apply(std::move(lin),
                                   {std::move(self), std::move(agg)}));
      GELC_ASSIGN_OR_RETURN(
          result, Expr::Apply(omega::ActivationFn(spec.act, spec.b.cols()),
                              {std::move(pre)}));
    }
    memo_.emplace(key, result);
    return result;
  }

 private:
  size_t input_dim_;
  std::vector<LinearLayerSpec> layers_;
  std::map<std::pair<size_t, Var>, ExprPtr> memo_;
};

}  // namespace

Result<ExprPtr> CompileGnn101ToGel(const Gnn101Model& model) {
  std::vector<LinearLayerSpec> specs;
  for (const Gnn101Layer& l : model.layers()) {
    specs.push_back({l.w1, l.w2, l.b, l.act});
  }
  LayerwiseCompiler compiler(model.input_dim(), std::move(specs));
  return compiler.Build(model.num_layers(), /*v=*/0);
}

Result<ExprPtr> CompileGnn101GraphToGel(const Gnn101Model& model) {
  if (!model.has_readout()) {
    return Status::FailedPrecondition("model has no readout");
  }
  GELC_ASSIGN_OR_RETURN(ExprPtr vertex, CompileGnn101ToGel(model));
  size_t d = vertex->dim();
  GELC_ASSIGN_OR_RETURN(
      ExprPtr pooled,
      Expr::Aggregate(theta::Sum(d), VarBit(0), std::move(vertex), nullptr));
  const Gnn101Readout& r = model.readout();
  GELC_ASSIGN_OR_RETURN(OmegaPtr lin, omega::Linear({d}, r.w, r.b));
  GELC_ASSIGN_OR_RETURN(ExprPtr lin_e,
                        Expr::Apply(std::move(lin), {std::move(pooled)}));
  return Expr::Apply(omega::ActivationFn(r.act, r.w.cols()),
                     {std::move(lin_e)});
}

namespace {

ThetaPtr ThetaFor(Aggregation agg, size_t d) {
  switch (agg) {
    case Aggregation::kSum:
      return theta::Sum(d);
    case Aggregation::kMean:
      return theta::Mean(d);
    case Aggregation::kMax:
      return theta::Max(d);
  }
  return theta::Sum(d);
}

// Generic layered compiler over a per-layer callback:
//   layer_fn(layer_index, self_expr, agg_expr) -> new expr.
// The aggregation binds the other variable guarded by E(v, other), with
// the layer's aggregate over the previous embedding of the neighbor.
class GenericLayerCompiler {
 public:
  using LayerFn = std::function<Result<ExprPtr>(size_t, ExprPtr, ExprPtr)>;

  GenericLayerCompiler(size_t input_dim, size_t num_layers,
                       std::function<ThetaPtr(size_t, size_t)> theta_fn,
                       LayerFn layer_fn)
      : input_dim_(input_dim),
        num_layers_(num_layers),
        theta_fn_(std::move(theta_fn)),
        layer_fn_(std::move(layer_fn)) {}

  Result<ExprPtr> Build(size_t t, Var v) {
    auto key = std::make_pair(t, v);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    ExprPtr result;
    if (t == 0) {
      GELC_ASSIGN_OR_RETURN(result, InputExpr(input_dim_, v));
    } else {
      Var other = (v == 0) ? 1 : 0;
      GELC_ASSIGN_OR_RETURN(ExprPtr self, Build(t - 1, v));
      GELC_ASSIGN_OR_RETURN(ExprPtr nbr, Build(t - 1, other));
      size_t d_in = self->dim();
      GELC_ASSIGN_OR_RETURN(ExprPtr guard, Expr::Edge(v, other));
      GELC_ASSIGN_OR_RETURN(
          ExprPtr agg,
          Expr::Aggregate(theta_fn_(t - 1, d_in), VarBit(other),
                          std::move(nbr), std::move(guard)));
      GELC_ASSIGN_OR_RETURN(result,
                            layer_fn_(t - 1, std::move(self),
                                      std::move(agg)));
    }
    memo_.emplace(key, result);
    return result;
  }

  Result<ExprPtr> BuildAll() { return Build(num_layers_, 0); }

 private:
  size_t input_dim_;
  size_t num_layers_;
  std::function<ThetaPtr(size_t, size_t)> theta_fn_;
  LayerFn layer_fn_;
  std::map<std::pair<size_t, Var>, ExprPtr> memo_;
};

}  // namespace

Result<ExprPtr> CompileMpnnToGel(const MpnnModel& model) {
  GenericLayerCompiler compiler(
      model.input_dim(), model.num_layers(),
      [&model](size_t layer, size_t d) {
        return ThetaFor(model.layers()[layer].agg, d);
      },
      [&model](size_t layer, ExprPtr self, ExprPtr agg) -> Result<ExprPtr> {
        size_t d_in = self->dim();
        GELC_ASSIGN_OR_RETURN(
            OmegaPtr mlp_fn,
            omega::FromMlp({d_in, d_in}, model.layers()[layer].update));
        return Expr::Apply(std::move(mlp_fn),
                           {std::move(self), std::move(agg)});
      });
  return compiler.BuildAll();
}

Result<ExprPtr> CompileMpnnGraphToGel(const MpnnModel& model) {
  if (!model.has_readout()) {
    return Status::FailedPrecondition("model has no readout");
  }
  GELC_ASSIGN_OR_RETURN(ExprPtr vertex, CompileMpnnToGel(model));
  size_t d = vertex->dim();
  const MpnnReadout& readout = *model.readout();
  GELC_ASSIGN_OR_RETURN(
      ExprPtr pooled,
      Expr::Aggregate(ThetaFor(readout.pool, d), VarBit(0),
                      std::move(vertex), nullptr));
  GELC_ASSIGN_OR_RETURN(OmegaPtr mlp_fn, omega::FromMlp({d}, readout.mlp));
  return Expr::Apply(std::move(mlp_fn), {std::move(pooled)});
}

Result<ExprPtr> CompileGraphSageToGel(const GraphSageModel& model) {
  size_t input_dim = model.layers().front().w.rows() / 2;
  GenericLayerCompiler compiler(
      input_dim, model.layers().size(),
      [](size_t, size_t d) { return theta::Mean(d); },
      [&model](size_t layer, ExprPtr self, ExprPtr agg) -> Result<ExprPtr> {
        const GraphSageModel::Layer& l = model.layers()[layer];
        size_t d_in = self->dim();
        GELC_ASSIGN_OR_RETURN(OmegaPtr lin,
                              omega::Linear({d_in, d_in}, l.w, l.b));
        GELC_ASSIGN_OR_RETURN(
            ExprPtr pre,
            Expr::Apply(std::move(lin), {std::move(self), std::move(agg)}));
        return Expr::Apply(omega::ActivationFn(l.act, l.w.cols()),
                           {std::move(pre)});
      });
  return compiler.BuildAll();
}

Result<ExprPtr> CompileGinToGel(const GinModel& model) {
  // Build recursively with a memo over (layer, variable), mirroring
  // LayerwiseCompiler but with the GIN combine (1+eps)*self + Σ nbr.
  struct GinCompiler {
    const GinModel& model;
    std::map<std::pair<size_t, Var>, ExprPtr> memo;

    Result<ExprPtr> Build(size_t t, Var v) {
      auto key = std::make_pair(t, v);
      auto it = memo.find(key);
      if (it != memo.end()) return it->second;
      ExprPtr result;
      if (t == 0) {
        GELC_ASSIGN_OR_RETURN(result, InputExpr(model.input_dim(), v));
      } else {
        const GinLayer& layer = model.layers()[t - 1];
        Var other = (v == 0) ? 1 : 0;
        GELC_ASSIGN_OR_RETURN(ExprPtr self, Build(t - 1, v));
        GELC_ASSIGN_OR_RETURN(ExprPtr nbr, Build(t - 1, other));
        size_t d_in = self->dim();
        GELC_ASSIGN_OR_RETURN(ExprPtr guard, Expr::Edge(v, other));
        GELC_ASSIGN_OR_RETURN(
            ExprPtr agg, Expr::Aggregate(theta::Sum(d_in), VarBit(other),
                                         std::move(nbr), std::move(guard)));
        GELC_ASSIGN_OR_RETURN(
            ExprPtr scaled,
            Expr::Apply(omega::Scale(1.0 + layer.eps, d_in),
                        {std::move(self)}));
        GELC_ASSIGN_OR_RETURN(
            ExprPtr combined,
            Expr::Apply(omega::Add(d_in), {std::move(scaled),
                                           std::move(agg)}));
        GELC_ASSIGN_OR_RETURN(OmegaPtr mlp_fn,
                              omega::FromMlp({d_in}, layer.mlp));
        GELC_ASSIGN_OR_RETURN(
            result, Expr::Apply(std::move(mlp_fn), {std::move(combined)}));
      }
      memo.emplace(key, result);
      return result;
    }
  };
  GinCompiler compiler{model, {}};
  return compiler.Build(model.layers().size(), /*v=*/0);
}

}  // namespace gelc
