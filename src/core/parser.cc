#include "core/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace gelc {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kSymbol, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;   // identifier text or symbol
  double number = 0;  // for kNumber
  size_t pos = 0;     // byte offset, for diagnostics
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c))) {
        size_t start = i;
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_')) {
          ++i;
        }
        // '_' immediately before '{' is the aggregate binder separator,
        // not part of the identifier ("agg[sum]_{x1}").
        std::string ident = text_.substr(start, i - start);
        if (!ident.empty() && ident.back() == '_' && i < text_.size() &&
            text_[i] == '{') {
          ident.pop_back();
          --i;
        }
        out.push_back({Token::Kind::kIdent, ident, 0, start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+' || c == '.') {
        char* end = nullptr;
        double value = std::strtod(text_.c_str() + i, &end);
        size_t consumed = end - (text_.c_str() + i);
        if (consumed == 0) {
          return Status::IOError("stray character '" + std::string(1, c) +
                                 "' at position " + std::to_string(i));
        }
        out.push_back({Token::Kind::kNumber,
                       text_.substr(i, consumed), value, i});
        i += consumed;
        continue;
      }
      if (c == '!' && i + 1 < text_.size() && text_[i + 1] == '=') {
        out.push_back({Token::Kind::kSymbol, "!=", 0, i});
        i += 2;
        continue;
      }
      static const std::string kSymbols = "()[]{},|=_";
      if (kSymbols.find(c) != std::string::npos) {
        out.push_back({Token::Kind::kSymbol, std::string(1, c), 0, i});
        ++i;
        continue;
      }
      return Status::IOError("unexpected character '" + std::string(1, c) +
                             "' at position " + std::to_string(i));
    }
    out.push_back({Token::Kind::kEnd, "", 0, text_.size()});
    return out;
  }

 private:
  const std::string& text_;
};

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    GELC_ASSIGN_OR_RETURN(ExprPtr e, ParseExprRule());
    if (!AtEnd()) {
      return Err("trailing input after expression");
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == Token::Kind::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool MatchSymbol(const std::string& s) {
    if (Peek().kind == Token::Kind::kSymbol && Peek().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& msg) const {
    return Status::IOError(msg + " at position " +
                           std::to_string(Peek().pos) + " (near '" +
                           Peek().text + "')");
  }

  Status ExpectSymbol(const std::string& s) {
    if (!MatchSymbol(s)) return Err("expected '" + s + "'");
    return Status::OK();
  }

  // var := 'x' INT — lexed as a single identifier like "x12".
  Result<Var> ParseVar() {
    if (Peek().kind != Token::Kind::kIdent || Peek().text.size() < 2 ||
        Peek().text[0] != 'x') {
      return Err("expected a variable like x0");
    }
    const std::string& t = Peek().text;
    for (size_t i = 1; i < t.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(t[i]))) {
        return Err("expected a variable like x0");
      }
    }
    unsigned long v = std::strtoul(t.c_str() + 1, nullptr, 10);
    if (v >= kMaxVariables) return Err("variable index out of range");
    Advance();
    return static_cast<Var>(v);
  }

  Result<double> ParseNumber() {
    if (Peek().kind != Token::Kind::kNumber) return Err("expected a number");
    return Advance().number;
  }

  Result<ExprPtr> ParseExprRule() {
    const Token& t = Peek();
    if (t.kind == Token::Kind::kSymbol && t.text == "[") {
      return ParseConst();
    }
    if (t.kind == Token::Kind::kNumber && t.text == "1" &&
        tokens_[pos_ + 1].kind == Token::Kind::kSymbol &&
        tokens_[pos_ + 1].text == "[") {
      return ParseCompare();
    }
    if (t.kind != Token::Kind::kIdent) {
      return Err("expected an expression");
    }
    if (t.text == "agg") return ParseAggregate();
    if (t.text == "E") return ParseEdge();
    if (t.text.rfind("lab", 0) == 0 && t.text.size() > 3) {
      return ParseLabel();
    }
    return ParseApply();
  }

  Result<ExprPtr> ParseConst() {
    GELC_RETURN_NOT_OK(ExpectSymbol("["));
    std::vector<double> values;
    do {
      GELC_ASSIGN_OR_RETURN(double v, ParseNumber());
      values.push_back(v);
    } while (MatchSymbol(","));
    GELC_RETURN_NOT_OK(ExpectSymbol("]"));
    return Expr::Constant(std::move(values));
  }

  Result<ExprPtr> ParseCompare() {
    Advance();  // the '1'
    GELC_RETURN_NOT_OK(ExpectSymbol("["));
    GELC_ASSIGN_OR_RETURN(Var a, ParseVar());
    CmpOp op;
    if (MatchSymbol("=")) {
      op = CmpOp::kEq;
    } else if (MatchSymbol("!=")) {
      op = CmpOp::kNeq;
    } else {
      return Err("expected '=' or '!='");
    }
    GELC_ASSIGN_OR_RETURN(Var b, ParseVar());
    GELC_RETURN_NOT_OK(ExpectSymbol("]"));
    return Expr::Compare(a, b, op);
  }

  Result<ExprPtr> ParseEdge() {
    Advance();  // 'E'
    GELC_RETURN_NOT_OK(ExpectSymbol("("));
    GELC_ASSIGN_OR_RETURN(Var a, ParseVar());
    GELC_RETURN_NOT_OK(ExpectSymbol(","));
    GELC_ASSIGN_OR_RETURN(Var b, ParseVar());
    GELC_RETURN_NOT_OK(ExpectSymbol(")"));
    return Expr::Edge(a, b);
  }

  Result<ExprPtr> ParseLabel() {
    const std::string& t = Peek().text;  // "lab<digits>"
    for (size_t i = 3; i < t.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(t[i]))) {
        return Err("malformed label atom");
      }
    }
    size_t index = std::strtoul(t.c_str() + 3, nullptr, 10);
    Advance();
    GELC_RETURN_NOT_OK(ExpectSymbol("("));
    GELC_ASSIGN_OR_RETURN(Var v, ParseVar());
    GELC_RETURN_NOT_OK(ExpectSymbol(")"));
    return Expr::Label(index, v);
  }

  Result<ExprPtr> ParseAggregate() {
    Advance();  // 'agg'
    GELC_RETURN_NOT_OK(ExpectSymbol("["));
    if (Peek().kind != Token::Kind::kIdent) return Err("expected aggregator");
    std::string agg_name = Advance().text;
    GELC_RETURN_NOT_OK(ExpectSymbol("]"));
    GELC_RETURN_NOT_OK(ExpectSymbol("_"));
    GELC_RETURN_NOT_OK(ExpectSymbol("{"));
    VarSet bound = 0;
    do {
      GELC_ASSIGN_OR_RETURN(Var v, ParseVar());
      bound |= VarBit(v);
    } while (MatchSymbol(","));
    GELC_RETURN_NOT_OK(ExpectSymbol("}"));
    GELC_RETURN_NOT_OK(ExpectSymbol("("));
    GELC_ASSIGN_OR_RETURN(ExprPtr value, ParseExprRule());
    ExprPtr guard;
    if (MatchSymbol("|")) {
      GELC_ASSIGN_OR_RETURN(guard, ParseExprRule());
    }
    GELC_RETURN_NOT_OK(ExpectSymbol(")"));

    size_t d = value->dim();
    ThetaPtr agg;
    if (agg_name == "sum") {
      agg = theta::Sum(d);
    } else if (agg_name == "mean") {
      agg = theta::Mean(d);
    } else if (agg_name == "max") {
      agg = theta::Max(d);
    } else if (agg_name == "count") {
      agg = theta::Count(d);
    } else {
      return Status::IOError("unknown aggregator '" + agg_name + "'");
    }
    return Expr::Aggregate(std::move(agg), bound, std::move(value),
                           std::move(guard));
  }

  Result<ExprPtr> ParseApply() {
    std::string name = Advance().text;
    // Bracketed parameters: scale[c], project[b,l].
    std::vector<double> params;
    if (MatchSymbol("[")) {
      do {
        GELC_ASSIGN_OR_RETURN(double v, ParseNumber());
        params.push_back(v);
      } while (MatchSymbol(","));
      GELC_RETURN_NOT_OK(ExpectSymbol("]"));
    }
    GELC_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<ExprPtr> args;
    do {
      GELC_ASSIGN_OR_RETURN(ExprPtr e, ParseExprRule());
      args.push_back(std::move(e));
    } while (MatchSymbol(","));
    GELC_RETURN_NOT_OK(ExpectSymbol(")"));

    auto arity_error = [&](size_t want) {
      return Status::IOError("'" + name + "' expects " +
                             std::to_string(want) + " argument(s), got " +
                             std::to_string(args.size()));
    };

    Result<Activation> act = ParseActivation(name);
    if (act.ok()) {
      if (args.size() != 1) return arity_error(1);
      // Evaluate the dimension before std::move(args) can be sequenced.
      OmegaPtr fn = omega::ActivationFn(*act, args[0]->dim());
      return Expr::Apply(std::move(fn), std::move(args));
    }
    if (name == "add" || name == "mul") {
      if (args.size() != 2) return arity_error(2);
      if (args[0]->dim() != args[1]->dim()) {
        return Status::IOError("'" + name + "' argument dimension mismatch");
      }
      OmegaPtr fn = name == "add" ? omega::Add(args[0]->dim())
                                  : omega::Multiply(args[0]->dim());
      return Expr::Apply(std::move(fn), std::move(args));
    }
    if (name == "concat") {
      std::vector<size_t> dims;
      for (const ExprPtr& a : args) dims.push_back(a->dim());
      return Expr::Apply(omega::Concat(dims), std::move(args));
    }
    if (name == "scale") {
      if (params.size() != 1) {
        return Status::IOError("scale needs one parameter: scale[c](...)");
      }
      if (args.size() != 1) return arity_error(1);
      OmegaPtr fn = omega::Scale(params[0], args[0]->dim());
      return Expr::Apply(std::move(fn), std::move(args));
    }
    if (name == "project") {
      if (params.size() != 2) {
        return Status::IOError(
            "project needs two parameters: project[begin,len](...)");
      }
      if (args.size() != 1) return arity_error(1);
      GELC_ASSIGN_OR_RETURN(
          OmegaPtr fn,
          omega::Project(args[0]->dim(), static_cast<size_t>(params[0]),
                         static_cast<size_t>(params[1])));
      return Expr::Apply(std::move(fn), std::move(args));
    }
    return Status::IOError("unknown function '" + name +
                           "' (linear/mlp have no text form)");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseExpr(const std::string& text) {
  Lexer lexer(text);
  GELC_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace gelc
