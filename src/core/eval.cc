#include "core/eval.h"

#include <algorithm>

#include "base/logging.h"
#include "obs/metrics.h"

namespace gelc {

namespace {

// Number of assignments n^{|vars|}, or 0 on overflow past `cap`.
size_t CountAssignments(size_t n, VarSet vars, size_t cap) {
  size_t total = 1;
  for (size_t i = 0; i < VarSetSize(vars); ++i) {
    if (n != 0 && total > cap / n) return 0;
    total *= n;
  }
  return total;
}

// Advances `assignment` (restricted to `vars`, treated as an odometer with
// the *last* listed variable fastest); returns false after the last one.
bool NextAssignment(const std::vector<Var>& vars, size_t n,
                    std::vector<VertexId>* assignment) {
  for (size_t i = vars.size(); i-- > 0;) {
    Var v = vars[i];
    if (static_cast<size_t>((*assignment)[v]) + 1 < n) {
      ++(*assignment)[v];
      return true;
    }
    (*assignment)[v] = 0;
  }
  return false;
}

bool AnyNonZero(const double* x, size_t d) {
  for (size_t j = 0; j < d; ++j)
    if (x[j] != 0.0) return true;
  return false;
}

}  // namespace

size_t EvalTable::FlatIndex(const std::vector<VertexId>& assignment) const {
  size_t idx = 0;
  for (Var v : VarSetList(vars)) {
    GELC_DCHECK(assignment[v] < n);
    idx = idx * n + assignment[v];
  }
  return idx;
}

const double* EvalTable::At(const std::vector<VertexId>& assignment) const {
  return data.data() + FlatIndex(assignment) * dim;
}

Evaluator::Evaluator(Graph g) : Evaluator(std::move(g), Options{}) {}

Evaluator::Evaluator(Graph g, Options options)
    : g_(std::move(g)), options_(options) {}

Result<EvalTable> Evaluator::Eval(const ExprPtr& e) {
  if (e == nullptr) return Status::InvalidArgument("null expression");
  uint64_t key = 0;
  if (options_.memoize) {
    static obs::Counter* hits = obs::GetCounter("eval.memo_hits");
    static obs::Counter* misses = obs::GetCounter("eval.memo_misses");
    key = e->StructuralHash();
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      for (const auto& [cached_expr, table] : it->second) {
        if (StructurallyEqual(cached_expr, e)) {
          hits->Increment();
          return table;
        }
      }
    }
    misses->Increment();
  }
  GELC_ASSIGN_OR_RETURN(EvalTable table, EvalUncached(e));
  if (options_.memoize) {
    memo_[key].emplace_back(e, table);
    ++memo_entries_;
  }
  return table;
}

Result<EvalTable> Evaluator::EvalUncached(const ExprPtr& e) {
  size_t n = g_.num_vertices();
  EvalTable out;
  out.vars = e->free_vars();
  out.n = n;
  out.dim = e->dim();
  size_t assignments = CountAssignments(n, out.vars,
                                        options_.max_table_entries);
  if (assignments == 0 ||
      assignments > options_.max_table_entries / std::max<size_t>(out.dim, 1)) {
    return Status::OutOfRange("embedding table exceeds evaluator budget");
  }
  out.data.assign(assignments * out.dim, 0.0);

  switch (e->kind()) {
    case Expr::Kind::kLabel: {
      if (e->label_index() >= g_.feature_dim()) {
        return Status::InvalidArgument(
            "label index exceeds graph feature dimension");
      }
      for (size_t v = 0; v < n; ++v)
        out.data[v] = g_.features().At(v, e->label_index());
      return out;
    }
    case Expr::Kind::kEdge: {
      // Ascending variable order determines the table layout; the first
      // listed variable is the slow index.
      bool a_first = e->var_a() < e->var_b();
      for (size_t x = 0; x < n; ++x) {
        for (size_t y = 0; y < n; ++y) {
          VertexId u = static_cast<VertexId>(a_first ? x : y);
          VertexId v = static_cast<VertexId>(a_first ? y : x);
          out.data[x * n + y] = g_.HasEdge(u, v) ? 1.0 : 0.0;
        }
      }
      return out;
    }
    case Expr::Kind::kCompare: {
      bool want_eq = e->cmp_op() == CmpOp::kEq;
      for (size_t x = 0; x < n; ++x)
        for (size_t y = 0; y < n; ++y)
          out.data[x * n + y] = ((x == y) == want_eq) ? 1.0 : 0.0;
      return out;
    }
    case Expr::Kind::kConst: {
      std::copy(e->constant().begin(), e->constant().end(), out.data.begin());
      return out;
    }
    case Expr::Kind::kApply: {
      std::vector<EvalTable> child_tables;
      child_tables.reserve(e->children().size());
      for (const ExprPtr& c : e->children()) {
        GELC_ASSIGN_OR_RETURN(EvalTable t, Eval(c));
        child_tables.push_back(std::move(t));
      }
      std::vector<Var> vars = VarSetList(out.vars);
      std::vector<VertexId> assignment(kMaxVariables, 0);
      std::vector<const double*> args(child_tables.size());
      size_t idx = 0;
      if (n == 0 && !vars.empty()) return out;
      do {
        for (size_t i = 0; i < child_tables.size(); ++i)
          args[i] = child_tables[i].At(assignment);
        e->fn()->fn(args, out.data.data() + idx * out.dim);
        ++idx;
      } while (NextAssignment(vars, n, &assignment));
      GELC_CHECK(idx == assignments);
      return out;
    }
    case Expr::Kind::kAggregate: {
      GELC_ASSIGN_OR_RETURN(EvalTable value, Eval(e->value()));
      EvalTable guard;
      bool has_guard = e->guard() != nullptr;
      if (has_guard) {
        GELC_ASSIGN_OR_RETURN(guard, Eval(e->guard()));
      }
      std::vector<Var> outer = VarSetList(out.vars);
      std::vector<Var> bound = VarSetList(e->bound_vars());
      std::vector<VertexId> assignment(kMaxVariables, 0);
      const ThetaAgg& theta = *e->agg();
      size_t idx = 0;
      if (n == 0) return out;
      // Iterate outer assignments; reset bound vars for each.
      std::vector<VertexId> outer_assignment(kMaxVariables, 0);
      do {
        for (Var v : bound) assignment[v] = 0;
        for (Var v : outer) assignment[v] = outer_assignment[v];
        double* acc = out.data.data() + idx * out.dim;
        theta.init(acc);
        size_t count = 0;
        do {
          bool include = true;
          if (has_guard) {
            include = AnyNonZero(guard.At(assignment), guard.dim);
          }
          if (include) {
            theta.accumulate(acc, value.At(assignment));
            ++count;
          }
        } while (NextAssignment(bound, n, &assignment));
        theta.finalize(acc, count);
        ++idx;
      } while (NextAssignment(outer, n, &outer_assignment));
      GELC_CHECK(idx == assignments);
      return out;
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<std::vector<double>> Evaluator::EvalClosed(const ExprPtr& e) {
  if (e != nullptr && e->free_vars() != 0) {
    return Status::InvalidArgument(
        "expression is not closed; free variables: " +
        VarSetToString(e->free_vars()));
  }
  GELC_ASSIGN_OR_RETURN(EvalTable t, Eval(e));
  return t.data;
}

Result<Matrix> Evaluator::EvalVertex(const ExprPtr& e) {
  if (e != nullptr && VarSetSize(e->free_vars()) != 1) {
    return Status::InvalidArgument(
        "expression is not a vertex embedding (needs exactly one free "
        "variable)");
  }
  GELC_ASSIGN_OR_RETURN(EvalTable t, Eval(e));
  size_t n = g_.num_vertices();
  Matrix out(n, t.dim);
  for (size_t v = 0; v < n; ++v)
    for (size_t j = 0; j < t.dim; ++j) out.At(v, j) = t.data[v * t.dim + j];
  return out;
}

}  // namespace gelc
