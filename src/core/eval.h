// Evaluation of GEL(Ω,Θ) expressions on a graph (the semantics ξ_ϕ of
// slides 42-46, 59-61).
//
// An expression with free variables {x_{i_1}, ..., x_{i_p}} denotes a
// p-vertex embedding ξ_ϕ : G -> (V^p -> R^d). On a fixed graph the
// evaluator materializes it as a table over all n^p assignments.
//
// Naive evaluation of a width-k expression costs O(n^k) per aggregate
// node; the evaluator memoizes subexpression tables by DAG-node identity
// (ablation: Options::memoize, measured by bench_p5).
#ifndef GELC_CORE_EVAL_H_
#define GELC_CORE_EVAL_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "core/expr.h"
#include "graph/graph.h"
#include "tensor/matrix.h"

namespace gelc {

/// A materialized embedding table: values for every assignment of `vars`.
struct EvalTable {
  /// Free variables of the producing expression (ascending bit order).
  VarSet vars = 0;
  /// Vertex count of the graph the table was computed on.
  size_t n = 0;
  /// Value dimension d.
  size_t dim = 0;
  /// Row-major values: assignment (v_1, ..., v_p) of the ascending
  /// variable list maps to flat index (v_1 * n + v_2) * n + ... * dim.
  std::vector<double> data;

  size_t num_assignments() const { return dim == 0 ? 0 : data.size() / dim; }
  /// Pointer to the d values for a full assignment (indexed by variable
  /// id; only entries for `vars` are read).
  const double* At(const std::vector<VertexId>& assignment) const;
  /// Flat index for an assignment.
  size_t FlatIndex(const std::vector<VertexId>& assignment) const;
};

/// Evaluates expressions on one graph, memoizing subexpression tables.
class Evaluator {
 public:
  struct Options {
    bool memoize = true;
    /// Refuses to materialize tables with more than this many entries.
    size_t max_table_entries = 50'000'000;
  };

  /// The evaluator owns a copy of the graph, so temporaries may be passed
  /// safely.
  explicit Evaluator(Graph g);
  Evaluator(Graph g, Options options);

  /// Evaluates ϕ, returning its table (memoized across calls).
  Result<EvalTable> Eval(const ExprPtr& e);

  /// Evaluates a closed expression (graph embedding, slide 46).
  Result<std::vector<double>> EvalClosed(const ExprPtr& e);
  /// Evaluates a 1-free-variable expression as an n x d matrix (vertex
  /// embedding).
  Result<Matrix> EvalVertex(const ExprPtr& e);

  const Graph& graph() const { return g_; }

  /// Number of distinct (up to structural equality) subexpressions
  /// memoized so far.
  size_t memo_size() const { return memo_entries_; }

 private:
  Result<EvalTable> EvalUncached(const ExprPtr& e);

  Graph g_;
  Options options_;
  // Keyed by Expr::StructuralHash with StructurallyEqual as the collision
  // check, so structurally identical subexpressions built through
  // different nodes share one table (pointer-identity keying missed
  // those). Bucket entries hold the ExprPtr both for the equality check
  // and to keep the node alive.
  std::unordered_map<uint64_t, std::vector<std::pair<ExprPtr, EvalTable>>>
      memo_;
  size_t memo_entries_ = 0;
};

}  // namespace gelc

#endif  // GELC_CORE_EVAL_H_
