// Casting GNN architectures as GEL(Ω,Θ) expressions — the paper's "plan of
// action" (slide 35): view embedding methods as queries in the embedding
// language, then read off their expressive-power bound from the language
// fragment they land in.
//
// A GNN-101 model (slide 13) compiles to the guarded 2-variable MPNN
// fragment; evaluating the expression coincides bit-for-bit with running
// the network (the Ω/Θ closures, the fused forward kernels and the plan
// executor all share one accumulation order — see tensor/fused.h), and
// Analyze() on the result reports the color-refinement bound of slides
// 26/51.
#ifndef GELC_CORE_COMPILE_GNN_H_
#define GELC_CORE_COMPILE_GNN_H_

#include "base/status.h"
#include "core/expr.h"
#include "gnn/gnn101.h"
#include "gnn/mpnn.h"

namespace gelc {

/// Compiles a GNN-101 model into a vertex-embedding expression with free
/// variable x0. Aggregations bind x1 guarded by E(x0, x1); layer t's
/// update becomes act(linear(concat(ϕ^{t-1}(x0), agg(ϕ^{t-1}(x1))))).
Result<ExprPtr> CompileGnn101ToGel(const Gnn101Model& model);

/// Compiles the model's readout (slide 14) on top of the vertex
/// expression: a closed graph-embedding expression. Errors if the model
/// has no readout.
Result<ExprPtr> CompileGnn101GraphToGel(const Gnn101Model& model);

/// Compiles a GIN model to a vertex expression with free variable x0:
/// h' = mlp((1 + eps) * h + Σ_{u ∈ N(v)} h_u).
Result<ExprPtr> CompileGinToGel(const GinModel& model);

/// Compiles a general MpnnModel (sum / mean / max aggregation) to a
/// vertex expression: h' = update_mlp(concat(h, agg_θ(h_u | E))).
/// Demonstrates slide 48: the zoo's layer definitions "translate
/// naturally into expressions in our language" for every θ ∈ Θ.
Result<ExprPtr> CompileMpnnToGel(const MpnnModel& model);

/// The MpnnModel's readout on top (pool + MLP): a closed expression.
/// Errors if the model has no readout.
Result<ExprPtr> CompileMpnnGraphToGel(const MpnnModel& model);

/// Compiles GraphSAGE (mean aggregator, linear update) to a vertex
/// expression.
Result<ExprPtr> CompileGraphSageToGel(const GraphSageModel& model);

}  // namespace gelc

#endif  // GELC_CORE_COMPILE_GNN_H_
