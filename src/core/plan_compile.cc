#include "core/plan_compile.h"

#include <algorithm>
#include <map>
#include <string>

#include "base/hash.h"
#include "base/logging.h"
#include "core/rewrite.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "obs/trace.h"

namespace gelc {

namespace {

// -- Content hashing for value numbering ------------------------------------

uint64_t HashMatrix(const Matrix* m) {
  if (m == nullptr) return 0;
  uint64_t h = Fnv1a64(m->data().data(), m->data().size() * sizeof(double));
  h = HashCombine(h, m->rows());
  return HashCombine(h, m->cols());
}

bool SameMatrix(const Matrix* a, const Matrix* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->rows() == b->rows() && a->cols() == b->cols() &&
         std::memcmp(a->data().data(), b->data().data(),
                     a->data().size() * sizeof(double)) == 0;
}

uint64_t HashMlp(const Mlp* m) {
  if (m == nullptr) return 0;
  uint64_t h = Fnv1a64("mlp");
  for (const MlpLayer& l : m->layers()) {
    h = HashCombine(h, HashMatrix(&l.w));
    h = HashCombine(h, HashMatrix(&l.b));
    h = HashCombine(h, static_cast<uint64_t>(l.act));
  }
  return h;
}

bool SameMlp(const Mlp* a, const Mlp* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->layers().size() != b->layers().size()) return false;
  for (size_t i = 0; i < a->layers().size(); ++i) {
    const MlpLayer& la = a->layers()[i];
    const MlpLayer& lb = b->layers()[i];
    if (la.act != lb.act || !SameMatrix(&la.w, &lb.w) ||
        !SameMatrix(&la.b, &lb.b)) {
      return false;
    }
  }
  return true;
}

uint64_t HashOp(const PlanOp& op) {
  uint64_t h = Fnv1a64("planop");
  h = HashCombine(h, static_cast<uint64_t>(op.kind));
  h = HashCombine(h, op.type.per_vertex ? 1 : 0);
  h = HashCombine(h, op.type.dim);
  for (uint32_t s : op.inputs) h = HashCombine(h, s);
  for (size_t c : op.label_cols) h = HashCombine(h, c);
  if (!op.constant.empty()) {
    h = HashCombine(h, Fnv1a64(op.constant.data(),
                               op.constant.size() * sizeof(double)));
  }
  h = HashCombine(h, op.project_begin);
  h = HashCombine(h, op.project_len);
  uint64_t scale_bits;
  std::memcpy(&scale_bits, &op.scale, sizeof(scale_bits));
  h = HashCombine(h, scale_bits);
  h = HashCombine(h, static_cast<uint64_t>(op.act));
  // Opaque closures dedupe by identity only; everything structured dedupes
  // by content (the same policy as Expr::StructuralHash).
  if (op.fn != nullptr) h = HashCombine(h, OmegaStructuralHash(*op.fn));
  if (op.theta != nullptr) h = HashCombine(h, ThetaStructuralHash(*op.theta));
  h = HashCombine(h, static_cast<uint64_t>(op.agg));
  h = HashCombine(h, static_cast<uint64_t>(op.csr));
  h = HashCombine(h, static_cast<uint64_t>(op.gather));
  h = HashCombine(h, HashMlp(op.mlp.get()));
  for (const PlanLayerArg& a : op.args) {
    h = HashCombine(h, a.input);
    h = HashCombine(h, HashMatrix(a.w.get()));
    h = HashCombine(h, a.aggregated ? 1 : 0);
    h = HashCombine(h, static_cast<uint64_t>(a.agg));
    h = HashCombine(h, static_cast<uint64_t>(a.csr));
    h = HashCombine(h, static_cast<uint64_t>(a.gather));
  }
  h = HashCombine(h, HashMatrix(op.weight.get()));
  return HashCombine(h, HashMatrix(op.bias.get()));
}

bool SameOp(const PlanOp& a, const PlanOp& b) {
  if (a.kind != b.kind || !(a.type == b.type) || a.inputs != b.inputs ||
      a.label_cols != b.label_cols || a.project_begin != b.project_begin ||
      a.project_len != b.project_len || a.act != b.act || a.agg != b.agg ||
      a.csr != b.csr || a.gather != b.gather) {
    return false;
  }
  if (a.constant.size() != b.constant.size() ||
      (!a.constant.empty() &&
       std::memcmp(a.constant.data(), b.constant.data(),
                   a.constant.size() * sizeof(double)) != 0)) {
    return false;
  }
  uint64_t sa, sb;
  std::memcpy(&sa, &a.scale, sizeof(sa));
  std::memcpy(&sb, &b.scale, sizeof(sb));
  if (sa != sb) return false;
  if ((a.fn == nullptr) != (b.fn == nullptr)) return false;
  if (a.fn != nullptr && !OmegaStructurallyEqual(*a.fn, *b.fn)) return false;
  if ((a.theta == nullptr) != (b.theta == nullptr)) return false;
  if (a.theta != nullptr && !ThetaStructurallyEqual(*a.theta, *b.theta)) {
    return false;
  }
  if (!SameMlp(a.mlp.get(), b.mlp.get())) return false;
  if (a.args.size() != b.args.size()) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    const PlanLayerArg& x = a.args[i];
    const PlanLayerArg& y = b.args[i];
    if (x.input != y.input || x.aggregated != y.aggregated ||
        x.agg != y.agg || x.csr != y.csr || x.gather != y.gather ||
        !SameMatrix(x.w.get(), y.w.get())) {
      return false;
    }
  }
  return SameMatrix(a.weight.get(), b.weight.get()) &&
         SameMatrix(a.bias.get(), b.bias.get());
}

// -- Lowering ----------------------------------------------------------------

Status NotLowerable(const ExprPtr& e, const std::string& why) {
  return Status::Unimplemented("plan: " + why + " in " + e->ToString());
}

class Lowering {
 public:
  Lowering(const PlanOptions& options, CompileStats* stats)
      : options_(options), stats_(stats) {}

  // Lowers `e`, whose free variables must be empty or exactly
  // {VarBit(var)}; returns the slot holding its value (per-vertex table
  // indexed by `var`, or a global row for closed subexpressions).
  Result<uint32_t> Lower(const ExprPtr& e, Var var) {
    VarSet free = e->free_vars();
    if (free != 0 && free != VarBit(var)) {
      return NotLowerable(
          e, "subexpression over more than one free variable");
    }
    // Closed subexpressions lower identically under any variable context.
    auto key = std::make_pair(e.get(), free == 0 ? -1 : static_cast<int>(var));
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    GELC_ASSIGN_OR_RETURN(uint32_t slot, LowerUncached(e, var));
    memo_.emplace(key, slot);
    return slot;
  }

  Plan Take(uint32_t result) {
    plan_.result = result;
    return std::move(plan_);
  }

 private:
  Result<uint32_t> LowerUncached(const ExprPtr& e, Var var) {
    switch (e->kind()) {
      case Expr::Kind::kLabel: {
        PlanOp op;
        op.kind = PlanOpKind::kLoadLabels;
        op.type = {true, 1};
        op.label_cols = {e->label_index()};
        return Emit(std::move(op));
      }
      case Expr::Kind::kEdge:
        return NotLowerable(e, "edge atom used as a value (pair table)");
      case Expr::Kind::kCompare:
        return NotLowerable(e, "comparison atom (pair table)");
      case Expr::Kind::kConst: {
        PlanOp op;
        op.kind = PlanOpKind::kConstant;
        op.type = {false, static_cast<uint32_t>(e->dim())};
        op.constant = e->constant();
        return Emit(std::move(op));
      }
      case Expr::Kind::kApply:
        return LowerApply(e, var);
      case Expr::Kind::kAggregate:
        return LowerAggregate(e, var);
    }
    return Status::Internal("unreachable expression kind");
  }

  Result<uint32_t> LowerApply(const ExprPtr& e, Var var) {
    std::vector<uint32_t> inputs;
    inputs.reserve(e->children().size());
    for (const ExprPtr& c : e->children()) {
      GELC_ASSIGN_OR_RETURN(uint32_t s, Lower(c, var));
      inputs.push_back(s);
    }
    const OmegaFn& fn = *e->fn();
    PlanOp op;
    op.type = {e->free_vars() != 0, static_cast<uint32_t>(e->dim())};
    op.inputs = std::move(inputs);
    switch (fn.kind) {
      case OmegaFn::Kind::kConcat:
        op.kind = PlanOpKind::kConcat;
        break;
      case OmegaFn::Kind::kLinear: {
        // One fused-layer argument per Ω argument, with the weight split
        // into per-argument row slices — the same per-argument partial-sum
        // grouping as the linear closure, so the bits match.
        op.kind = PlanOpKind::kFusedLayer;
        size_t row = 0;
        for (size_t i = 0; i < fn.arg_dims.size(); ++i) {
          PlanLayerArg arg;
          arg.input = op.inputs[i];
          Matrix slice(fn.arg_dims[i], fn.out_dim);
          for (size_t r = 0; r < fn.arg_dims[i]; ++r, ++row) {
            for (size_t j = 0; j < fn.out_dim; ++j) {
              slice.At(r, j) = fn.weight->At(row, j);
            }
          }
          arg.w = std::make_shared<const Matrix>(std::move(slice));
          op.args.push_back(std::move(arg));
        }
        op.inputs.clear();
        op.bias = fn.bias;
        break;
      }
      case OmegaFn::Kind::kActivation:
        op.kind = PlanOpKind::kActivation;
        op.act = fn.act;
        break;
      case OmegaFn::Kind::kAdd:
        op.kind = PlanOpKind::kAdd;
        break;
      case OmegaFn::Kind::kMultiply:
        op.kind = PlanOpKind::kMul;
        break;
      case OmegaFn::Kind::kScale:
        op.kind = PlanOpKind::kScale;
        op.scale = fn.scale;
        break;
      case OmegaFn::Kind::kMlp:
        op.kind = PlanOpKind::kMlp;
        op.mlp = fn.mlp;
        break;
      case OmegaFn::Kind::kProject:
        op.kind = PlanOpKind::kProject;
        op.project_begin = fn.project_begin;
        op.project_len = fn.project_len;
        break;
      case OmegaFn::Kind::kOpaque:
        op.kind = PlanOpKind::kPointwise;
        op.fn = e->fn();
        break;
    }
    return Emit(std::move(op));
  }

  Result<uint32_t> LowerAggregate(const ExprPtr& e, Var var) {
    if (VarSetSize(e->bound_vars()) != 1) {
      return NotLowerable(e, "multi-variable binder");
    }
    Var b = VarSetList(e->bound_vars())[0];
    const ThetaAgg& theta = *e->agg();
    const ExprPtr& value = e->value();

    if (e->guard() == nullptr) {
      // Global aggregation: every assignment of the bound variable is
      // included, so the count is n and the fold runs over all vertices.
      if (e->free_vars() != 0) {
        return NotLowerable(
            e, "unguarded aggregation with an outer free variable");
      }
      PlanOp op;
      op.kind = PlanOpKind::kPool;
      op.type = {false, static_cast<uint32_t>(theta.out_dim)};
      if (value->free_vars() == VarBit(b)) {
        GELC_ASSIGN_OR_RETURN(uint32_t s, Lower(value, b));
        op.inputs = {s};
        op.gather = PlanGather::kNeighbor;
      } else if (value->free_vars() == 0) {
        GELC_ASSIGN_OR_RETURN(uint32_t s, Lower(value, b));
        op.inputs = {s};
        op.gather = PlanGather::kBroadcast;
      } else {
        return NotLowerable(e, "aggregated value over a foreign variable");
      }
      op.agg = theta.kind;
      if (theta.kind == ThetaAgg::Kind::kOpaque) op.theta = e->agg();
      return Emit(std::move(op));
    }

    // Guarded aggregation: only edge guards compile (to a CSR traversal —
    // the guard pushdown; anything else falls back to the interpreter).
    const ExprPtr& guard = e->guard();
    if (guard->kind() != Expr::Kind::kEdge) {
      return NotLowerable(e, "non-edge guard");
    }
    Var p = guard->var_a();
    Var q = guard->var_b();
    if (p == q || (b != p && b != q)) {
      return NotLowerable(e, "guard does not relate the bound variable to "
                             "an outer variable");
    }
    Var o = b == p ? q : p;
    if (e->free_vars() != VarBit(o) || o != var) {
      return NotLowerable(e, "guard variable mismatch");
    }
    // E(o, b): b ranges over out-neighbors of o; E(b, o): in-neighbors.
    PlanCsr csr = b == q ? PlanCsr::kOut : PlanCsr::kIn;
    ++stats_->guard_pushdowns;

    PlanGather gather;
    Var value_var = b;
    if (value->free_vars() == VarBit(b)) {
      gather = PlanGather::kNeighbor;
    } else if (value->free_vars() == VarBit(o)) {
      gather = PlanGather::kSource;
      value_var = o;
    } else if (value->free_vars() == 0) {
      gather = PlanGather::kBroadcast;
    } else {
      return NotLowerable(e, "aggregated value over a pair of variables");
    }

    // Opt-in reorder: agg(linear_nobias(x)) -> linear(agg(x)) when the
    // aggregation distributes over the map (sum/mean, zero bias) and the
    // input side is narrower. Reassociates floating point, hence gated.
    if (options_.reassociate && gather == PlanGather::kNeighbor &&
        (theta.kind == ThetaAgg::Kind::kSum ||
         theta.kind == ThetaAgg::Kind::kMean) &&
        value->kind() == Expr::Kind::kApply &&
        value->fn()->kind == OmegaFn::Kind::kLinear &&
        value->children().size() == 1 && value->fn()->bias->IsZero() &&
        value->fn()->total_in_dim() < value->fn()->out_dim &&
        value->children()[0]->free_vars() == VarBit(b)) {
      GELC_ASSIGN_OR_RETURN(uint32_t x, Lower(value->children()[0], b));
      PlanOp agg_op;
      agg_op.kind = PlanOpKind::kNeighborAgg;
      agg_op.type = {true,
                     static_cast<uint32_t>(value->fn()->total_in_dim())};
      agg_op.inputs = {x};
      agg_op.agg = theta.kind;
      agg_op.csr = csr;
      agg_op.gather = PlanGather::kNeighbor;
      GELC_ASSIGN_OR_RETURN(uint32_t agg_slot, Emit(std::move(agg_op)));
      PlanOp lin;
      lin.kind = PlanOpKind::kFusedLayer;
      lin.type = {true, static_cast<uint32_t>(value->fn()->out_dim)};
      PlanLayerArg arg;
      arg.input = agg_slot;
      arg.w = value->fn()->weight;
      lin.args = {arg};
      lin.bias = value->fn()->bias;
      ++stats_->reassociations;
      return Emit(std::move(lin));
    }

    GELC_ASSIGN_OR_RETURN(uint32_t s, Lower(value, value_var));
    PlanOp op;
    op.kind = PlanOpKind::kNeighborAgg;
    op.type = {true, static_cast<uint32_t>(theta.out_dim)};
    op.inputs = {s};
    op.agg = theta.kind;
    if (theta.kind == ThetaAgg::Kind::kOpaque) op.theta = e->agg();
    op.csr = csr;
    op.gather = gather;
    return Emit(std::move(op));
  }

  // Appends the op, unless an identical op already exists (CSE).
  Result<uint32_t> Emit(PlanOp op) {
    if (plan_.ops.size() >= UINT32_MAX) {
      return Status::OutOfRange("plan too large");
    }
    uint64_t h = HashOp(op);
    auto it = values_.find(h);
    if (it != values_.end()) {
      for (uint32_t s : it->second) {
        if (SameOp(plan_.ops[s], op)) {
          ++stats_->cse_hits;
          return s;
        }
      }
    }
    uint32_t slot = static_cast<uint32_t>(plan_.ops.size());
    plan_.ops.push_back(std::move(op));
    values_[h].push_back(slot);
    return slot;
  }

  PlanOptions options_;
  CompileStats* stats_;
  Plan plan_;
  std::map<std::pair<const Expr*, int>, uint32_t> memo_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> values_;
};

// -- Rewrite passes ----------------------------------------------------------

std::vector<uint32_t> UseCounts(const Plan& plan) {
  std::vector<uint32_t> uses(plan.ops.size(), 0);
  for (const PlanOp& op : plan.ops) {
    ForEachInput(op, [&uses](uint32_t s) { ++uses[s]; });
  }
  ++uses[plan.result];
  return uses;
}

// concat of pure label loads -> one multi-column load (the label columns
// are copied either way, so the bits cannot change).
void CoalesceLabels(Plan* plan, CompileStats* stats) {
  for (PlanOp& op : plan->ops) {
    if (op.kind != PlanOpKind::kConcat || op.inputs.empty()) continue;
    bool all_labels = true;
    for (uint32_t s : op.inputs) {
      if (plan->ops[s].kind != PlanOpKind::kLoadLabels) all_labels = false;
    }
    if (!all_labels) continue;
    std::vector<size_t> cols;
    for (uint32_t s : op.inputs) {
      const std::vector<size_t>& in_cols = plan->ops[s].label_cols;
      cols.insert(cols.end(), in_cols.begin(), in_cols.end());
    }
    op.kind = PlanOpKind::kLoadLabels;
    op.inputs.clear();
    op.label_cols = std::move(cols);
    ++stats->label_coalesces;
  }
}

// act(fused_layer(...)) -> fused_layer(..., act) when the layer has no
// other users: the activation applies entrywise after the bias either
// way. The activation op is remapped onto the layer's slot.
void FuseActivation(Plan* plan, CompileStats* stats,
                    std::vector<uint32_t>* remap) {
  std::vector<uint32_t> uses = UseCounts(*plan);
  for (size_t i = 0; i < plan->ops.size(); ++i) {
    PlanOp& op = plan->ops[i];
    if (op.kind != PlanOpKind::kActivation) continue;
    uint32_t in = op.inputs[0];
    PlanOp& prev = plan->ops[in];
    if ((prev.kind != PlanOpKind::kFusedLayer &&
         prev.kind != PlanOpKind::kPoolReadout) ||
        prev.act != Activation::kIdentity || uses[in] != 1) {
      continue;
    }
    prev.act = op.act;
    (*remap)[i] = in;
    ++stats->activation_fusions;
  }
}

// fused_layer arguments that read a single-use structured neighbor_agg
// absorb the aggregation: the layer's kernel folds the CSR row into
// per-shard scratch exactly as the standalone aggregate would, then feeds
// the weight — same bits, one pass, no n x d temporary.
void AbsorbAggregates(Plan* plan, CompileStats* stats) {
  std::vector<uint32_t> uses = UseCounts(*plan);
  for (PlanOp& op : plan->ops) {
    if (op.kind != PlanOpKind::kFusedLayer) continue;
    for (PlanLayerArg& arg : op.args) {
      if (arg.aggregated) continue;
      const PlanOp& in = plan->ops[arg.input];
      if (in.kind != PlanOpKind::kNeighborAgg ||
          in.agg == ThetaAgg::Kind::kOpaque || uses[arg.input] != 1) {
        continue;
      }
      arg.aggregated = true;
      arg.agg = in.agg;
      arg.csr = in.csr;
      arg.gather = in.gather;
      arg.input = in.inputs[0];
      ++stats->aggregate_absorptions;
    }
  }
}

// add(scale(x, c), neighbor_agg(sum, x)) -> gin_combine(x, c): one CSR
// pass. scale computes c*x and the kernel x*c (IEEE multiplication
// commutes bitwise); the neighbor sum still folds into scratch before the
// final add, preserving the reference association.
void FuseGin(Plan* plan, CompileStats* stats) {
  std::vector<uint32_t> uses = UseCounts(*plan);
  for (PlanOp& op : plan->ops) {
    if (op.kind != PlanOpKind::kAdd) continue;
    const PlanOp& lhs = plan->ops[op.inputs[0]];
    const PlanOp& rhs = plan->ops[op.inputs[1]];
    if (lhs.kind != PlanOpKind::kScale ||
        rhs.kind != PlanOpKind::kNeighborAgg ||
        rhs.agg != ThetaAgg::Kind::kSum ||
        rhs.gather != PlanGather::kNeighbor ||
        rhs.csr == PlanCsr::kNorm ||
        lhs.inputs[0] != rhs.inputs[0] ||
        uses[op.inputs[0]] != 1 || uses[op.inputs[1]] != 1) {
      continue;
    }
    PlanOp fused;
    fused.kind = PlanOpKind::kGinCombine;
    fused.type = op.type;
    fused.inputs = {lhs.inputs[0]};
    fused.scale = lhs.scale;
    fused.csr = rhs.csr;
    op = std::move(fused);
    ++stats->gin_fusions;
  }
}

// fused_layer over a single-use global pool -> pool_readout: the pooled
// row is produced and consumed in one op (segment-pool fused with the
// readout map), with identical pool-then-fold bits.
void FusePoolReadout(Plan* plan, CompileStats* stats) {
  std::vector<uint32_t> uses = UseCounts(*plan);
  for (PlanOp& op : plan->ops) {
    if (op.kind != PlanOpKind::kFusedLayer || op.args.size() != 1 ||
        op.args[0].aggregated || op.type.per_vertex) {
      continue;
    }
    const PlanOp& in = plan->ops[op.args[0].input];
    if (in.kind != PlanOpKind::kPool || in.agg == ThetaAgg::Kind::kOpaque ||
        uses[op.args[0].input] != 1) {
      continue;
    }
    PlanOp fused;
    fused.kind = PlanOpKind::kPoolReadout;
    fused.type = op.type;
    fused.inputs = {in.inputs[0]};
    fused.agg = in.agg;
    fused.gather = in.gather;
    fused.weight = op.args[0].w;
    fused.bias = op.bias;
    fused.act = op.act;
    op = std::move(fused);
    ++stats->readout_fusions;
  }
}

// Drops ops unreachable from the result and renumbers the survivors.
void EliminateDeadOps(Plan* plan, const std::vector<uint32_t>& remap) {
  // Resolve the activation-fusion remap first so liveness follows it.
  auto resolve = [&remap](uint32_t s) {
    while (remap[s] != s) s = remap[s];
    return s;
  };
  for (PlanOp& op : plan->ops) {
    for (uint32_t& s : op.inputs) s = resolve(s);
    for (PlanLayerArg& a : op.args) a.input = resolve(a.input);
  }
  plan->result = resolve(plan->result);

  std::vector<bool> live(plan->ops.size(), false);
  std::vector<uint32_t> stack = {plan->result};
  while (!stack.empty()) {
    uint32_t s = stack.back();
    stack.pop_back();
    if (live[s]) continue;
    live[s] = true;
    ForEachInput(plan->ops[s], [&stack](uint32_t in) {
      stack.push_back(in);
    });
  }
  std::vector<uint32_t> new_slot(plan->ops.size(), 0);
  std::vector<PlanOp> kept;
  kept.reserve(plan->ops.size());
  for (size_t i = 0; i < plan->ops.size(); ++i) {
    if (!live[i]) continue;
    new_slot[i] = static_cast<uint32_t>(kept.size());
    kept.push_back(std::move(plan->ops[i]));
  }
  for (PlanOp& op : kept) {
    for (uint32_t& s : op.inputs) s = new_slot[s];
    for (PlanLayerArg& a : op.args) a.input = new_slot[a.input];
  }
  plan->ops = std::move(kept);
  plan->result = new_slot[plan->result];
}

void Optimize(Plan* plan, CompileStats* stats) {
  CoalesceLabels(plan, stats);
  std::vector<uint32_t> remap(plan->ops.size());
  for (size_t i = 0; i < remap.size(); ++i) {
    remap[i] = static_cast<uint32_t>(i);
  }
  FuseActivation(plan, stats, &remap);
  EliminateDeadOps(plan, remap);
  AbsorbAggregates(plan, stats);
  FuseGin(plan, stats);
  FusePoolReadout(plan, stats);
  std::vector<uint32_t> identity(plan->ops.size());
  for (size_t i = 0; i < identity.size(); ++i) {
    identity[i] = static_cast<uint32_t>(i);
  }
  EliminateDeadOps(plan, identity);
}

}  // namespace

Result<PlanPtr> CompileToPlan(const ExprPtr& e, const PlanOptions& options,
                              CompileStats* stats) {
  if (e == nullptr) return Status::InvalidArgument("null expression");
  if (VarSetSize(e->free_vars()) > 1) {
    return Status::Unimplemented(
        "plan: only closed or single-free-variable expressions compile");
  }
  CompileStats local;
  if (stats == nullptr) stats = &local;
  GELC_TRACE_SPAN("plan_compile", {{"tree_size", e->TreeSize()}});
  GELC_OBS_TIME("plan_compile");
  static obs::Counter* compiles = obs::GetCounter("plan.compile_calls");
  compiles->Increment();

  GELC_ASSIGN_OR_RETURN(ExprPtr minimized, MinimizeVariables(e));
  Var var = minimized->free_vars() == 0
                ? 0
                : VarSetList(minimized->free_vars())[0];
  Lowering lowering(options, stats);
  GELC_ASSIGN_OR_RETURN(uint32_t result, lowering.Lower(minimized, var));
  Plan plan = lowering.Take(result);
  stats->ops_before_opt = plan.ops.size();
  if (options.optimize) Optimize(&plan, stats);
  stats->ops_after_opt = plan.ops.size();
  static obs::Histogram* sizes =
      obs::GetHistogram("plan.ops", {1, 2, 4, 8, 16, 32, 64, 128});
  sizes->Observe(static_cast<int64_t>(plan.ops.size()));
  return std::make_shared<const Plan>(std::move(plan));
}

Result<PlanPtr> CompileToPlan(const ExprPtr& e) {
  return CompileToPlan(e, PlanOptions{}, nullptr);
}

Result<PlanPtr> CompileGcnToPlan(const GcnModel& model) {
  if (model.layers().empty()) {
    return Status::InvalidArgument("GCN model has no layers");
  }
  Plan plan;
  size_t in_dim = model.layers().front().w.rows();
  PlanOp load;
  load.kind = PlanOpKind::kLoadLabels;
  load.type = {true, static_cast<uint32_t>(in_dim)};
  for (size_t j = 0; j < in_dim; ++j) load.label_cols.push_back(j);
  plan.ops.push_back(std::move(load));
  uint32_t prev = 0;
  for (const GcnModel::Layer& layer : model.layers()) {
    if (layer.w.rows() != plan.ops[prev].type.dim) {
      return Status::InvalidArgument("GCN layer dimension mismatch");
    }
    PlanOp op;
    op.kind = PlanOpKind::kFusedLayer;
    op.type = {true, static_cast<uint32_t>(layer.w.cols())};
    PlanLayerArg arg;
    arg.input = prev;
    arg.w = std::make_shared<const Matrix>(layer.w);
    arg.aggregated = true;
    arg.agg = ThetaAgg::Kind::kSum;
    arg.csr = PlanCsr::kNorm;
    arg.gather = PlanGather::kNeighbor;
    op.args = {std::move(arg)};
    op.act = layer.act;
    plan.ops.push_back(std::move(op));
    prev = static_cast<uint32_t>(plan.ops.size() - 1);
  }
  plan.result = prev;
  return std::make_shared<const Plan>(std::move(plan));
}

PlanCache::PlanCache(PlanOptions options) : options_(options) {}

Result<PlanPtr> PlanCache::GetOrCompile(const ExprPtr& e) {
  if (e == nullptr) return Status::InvalidArgument("null expression");
  static obs::Counter* cache_hits = obs::GetCounter("plan.cache_hits");
  static obs::Counter* cache_misses = obs::GetCounter("plan.cache_misses");
  // Key on the binder-minimized form so alpha-equivalent queries share a
  // plan (width-minimization reuse).
  GELC_ASSIGN_OR_RETURN(ExprPtr minimized, MinimizeVariables(e));
  uint64_t key = minimized->StructuralHash();
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    for (const auto& [expr, plan] : it->second) {
      if (StructurallyEqual(expr, minimized)) {
        ++hits_;
        cache_hits->Increment();
        return plan;
      }
    }
  }
  ++misses_;
  cache_misses->Increment();
  GELC_ASSIGN_OR_RETURN(PlanPtr plan,
                        CompileToPlan(minimized, options_, nullptr));
  cache_[key].emplace_back(minimized, plan);
  ++entries_;
  return plan;
}

}  // namespace gelc
