#include "core/plan.h"

#include <sstream>

#include "base/strings.h"

namespace gelc {

namespace {

const char* AggKindName(ThetaAgg::Kind kind) {
  switch (kind) {
    case ThetaAgg::Kind::kOpaque:
      return "opaque";
    case ThetaAgg::Kind::kSum:
      return "sum";
    case ThetaAgg::Kind::kMean:
      return "mean";
    case ThetaAgg::Kind::kMax:
      return "max";
    case ThetaAgg::Kind::kCount:
      return "count";
  }
  return "?";
}

std::string ShapeString(const Matrix& m) {
  return "w[" + std::to_string(m.rows()) + "x" + std::to_string(m.cols()) +
         "]";
}

}  // namespace

const char* PlanOpKindName(PlanOpKind kind) {
  switch (kind) {
    case PlanOpKind::kLoadLabels:
      return "load_labels";
    case PlanOpKind::kConstant:
      return "const";
    case PlanOpKind::kConcat:
      return "concat";
    case PlanOpKind::kProject:
      return "project";
    case PlanOpKind::kScale:
      return "scale";
    case PlanOpKind::kAdd:
      return "add";
    case PlanOpKind::kMul:
      return "mul";
    case PlanOpKind::kActivation:
      return "activation";
    case PlanOpKind::kPointwise:
      return "pointwise";
    case PlanOpKind::kMlp:
      return "mlp";
    case PlanOpKind::kNeighborAgg:
      return "neighbor_agg";
    case PlanOpKind::kPool:
      return "pool";
    case PlanOpKind::kFusedLayer:
      return "fused_layer";
    case PlanOpKind::kGinCombine:
      return "gin_combine";
    case PlanOpKind::kPoolReadout:
      return "pool_readout";
  }
  return "?";
}

const char* PlanCsrName(PlanCsr csr) {
  switch (csr) {
    case PlanCsr::kOut:
      return "out";
    case PlanCsr::kIn:
      return "in";
    case PlanCsr::kNorm:
      return "norm";
  }
  return "?";
}

const char* PlanGatherName(PlanGather gather) {
  switch (gather) {
    case PlanGather::kNeighbor:
      return "neighbor";
    case PlanGather::kSource:
      return "source";
    case PlanGather::kBroadcast:
      return "broadcast";
  }
  return "?";
}

std::string Plan::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < ops.size(); ++i) {
    const PlanOp& op = ops[i];
    os << "%" << i << " = " << PlanOpKindName(op.kind);
    switch (op.kind) {
      case PlanOpKind::kLoadLabels: {
        os << " cols=[";
        for (size_t k = 0; k < op.label_cols.size(); ++k) {
          if (k != 0) os << ",";
          os << op.label_cols[k];
        }
        os << "]";
        break;
      }
      case PlanOpKind::kConstant: {
        if (op.constant.size() <= 4) {
          os << " [";
          for (size_t k = 0; k < op.constant.size(); ++k) {
            if (k != 0) os << ",";
            os << FormatDouble(op.constant[k]);
          }
          os << "]";
        } else {
          os << " [" << op.constant.size() << " values]";
        }
        break;
      }
      case PlanOpKind::kProject:
        os << " [" << op.project_begin << ","
           << op.project_begin + op.project_len << ") %" << op.inputs[0];
        break;
      case PlanOpKind::kScale:
        os << " " << FormatDouble(op.scale) << " %" << op.inputs[0];
        break;
      case PlanOpKind::kConcat:
      case PlanOpKind::kAdd:
      case PlanOpKind::kMul: {
        for (size_t k = 0; k < op.inputs.size(); ++k) {
          os << (k == 0 ? " %" : " %") << op.inputs[k];
        }
        break;
      }
      case PlanOpKind::kActivation:
        os << " " << ActivationName(op.act) << " %" << op.inputs[0];
        break;
      case PlanOpKind::kPointwise: {
        os << " " << op.fn->name;
        for (uint32_t s : op.inputs) os << " %" << s;
        break;
      }
      case PlanOpKind::kMlp: {
        os << "[" << op.mlp->in_dim() << "->" << op.mlp->out_dim() << "]";
        for (uint32_t s : op.inputs) os << " %" << s;
        break;
      }
      case PlanOpKind::kNeighborAgg:
        os << " " << AggKindName(op.agg) << " " << PlanCsrName(op.csr) << " "
           << PlanGatherName(op.gather) << " %" << op.inputs[0];
        break;
      case PlanOpKind::kPool:
        os << " " << AggKindName(op.agg)
           << (op.gather == PlanGather::kBroadcast ? " broadcast" : "")
           << " %" << op.inputs[0];
        break;
      case PlanOpKind::kFusedLayer: {
        os << " [";
        for (size_t k = 0; k < op.args.size(); ++k) {
          const PlanLayerArg& a = op.args[k];
          if (k != 0) os << ", ";
          if (a.aggregated) {
            os << "agg(" << AggKindName(a.agg) << "," << PlanCsrName(a.csr)
               << "," << PlanGatherName(a.gather) << ")";
          }
          os << "%" << a.input << "*" << ShapeString(*a.w);
        }
        os << "]";
        if (op.bias != nullptr) os << " +bias";
        if (op.act != Activation::kIdentity) {
          os << " act=" << ActivationName(op.act);
        }
        break;
      }
      case PlanOpKind::kGinCombine:
        os << " " << FormatDouble(op.scale) << " " << PlanCsrName(op.csr)
           << " %" << op.inputs[0];
        break;
      case PlanOpKind::kPoolReadout: {
        os << " " << AggKindName(op.agg) << " %" << op.inputs[0] << " "
           << ShapeString(*op.weight);
        if (op.bias != nullptr) os << " +bias";
        if (op.act != Activation::kIdentity) {
          os << " act=" << ActivationName(op.act);
        }
        break;
      }
    }
    os << " : " << (op.type.per_vertex ? "vertex[" : "global[")
       << op.type.dim << "]\n";
  }
  os << "result: %" << result << "\n";
  return os.str();
}

}  // namespace gelc
