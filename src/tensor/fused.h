// Fused CSR-row kernels for compiled GEL plans (core/plan_exec.h) and the
// hand-written GNN forwards.
//
// Each kernel walks every output row once, doing neighbor aggregation,
// the per-argument linear maps, the bias and the activation in a single
// pass — no n x d aggregate or concatenation temporaries. Accumulation
// orders are pinned to the unfused building blocks (SpMM, MatMul,
// AddRowBroadcast, ApplyActivation, and theta's init/accumulate/finalize
// closures), so fused and unfused paths produce identical bits, and rows
// are disjoint output slots under ParallelFor, so any thread count
// produces identical bits too.
#ifndef GELC_TENSOR_FUSED_H_
#define GELC_TENSOR_FUSED_H_

#include <vector>

#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"

namespace gelc {

/// Bag aggregation kinds with fused kernels; semantics (including empty
/// bags -> zeros and mean's divide-by-count) mirror core/theta.h
/// bit-for-bit.
enum class FusedAgg { kSum, kMean, kMax, kCount };

/// One argument of a fused layer: rows of `values` feed the weight slice
/// `w`, either directly (self argument) or after aggregation over the
/// matching `csr` row (neighbor argument).
struct FusedLayerArg {
  /// Vertex table (n x d_i), or a single row when `broadcast` is set.
  const Matrix* values = nullptr;
  /// d_agg x out_dim weight slice (d_agg = 1 for kCount, d_i otherwise).
  const Matrix* w = nullptr;
  /// Non-null: aggregate `values` rows over csr row v before the weight.
  const CsrMatrix* csr = nullptr;
  FusedAgg agg = FusedAgg::kSum;
  /// Read row 0 of `values` for every vertex (closed subexpression).
  bool broadcast = false;
  /// Aggregated arguments only: each bag element is row v itself rather
  /// than the neighbor's row (value independent of the bound variable),
  /// folded once per neighbor like the interpreter does.
  bool gather_source = false;
};

/// out = act( Σ_i partial_i + bias ): partial_i accumulates argument i's
/// (possibly aggregated) row through w_i in ascending component order
/// from 0; partials combine left to right; `bias` (nullable, 1 x out)
/// adds last; `act` applies entrywise. Identical bits to the
/// MatMul/SpMM/operator+/AddRowBroadcast/ApplyActivation composition and
/// to core/omega.h's `linear` closure. `n` is the output row count.
void FusedLayerInto(size_t n, const std::vector<FusedLayerArg>& args,
                    const Matrix* bias, Activation act, Matrix* out);

/// Neighbor aggregation matching theta bit-for-bit: row v of *out is
/// θ({row(u) : u in csr row v}) with sum/mean/max over d columns and
/// count producing n x 1 degrees. `broadcast` / `gather_source` select
/// the bag-element row as in FusedLayerArg.
void NeighborAggregateInto(const CsrMatrix& csr, const Matrix& values,
                           FusedAgg agg, bool broadcast, bool gather_source,
                           Matrix* out);

/// GIN combine fused with the neighbor sum, one CSR pass:
/// out[v] = c * values[v] + Σ_{u in csr row v} values[u]. Identical bits
/// to (values * c) + SpMM(csr, values).
void FusedGinCombineInto(const CsrMatrix& csr, const Matrix& values, double c,
                         Matrix* out);

/// Pools `count` rows into one: rows 0..count-1 of `values`, or row 0
/// repeated `count` times when `broadcast` is set. Fold order and
/// finalization match theta (sum/mean/max over columns in ascending row
/// order — the ColSums order — count -> 1 x 1). Serial: a single-row
/// reduction.
Matrix PoolRows(const Matrix& values, FusedAgg agg, size_t count,
                bool broadcast);

}  // namespace gelc

#endif  // GELC_TENSOR_FUSED_H_
