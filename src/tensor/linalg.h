// Small dense linear-algebra routines beyond Matrix's arithmetic:
// Gaussian-elimination solves and ridge-regularized least squares. Used by
// the approximation experiments (slides 29-31) to fit linear read-outs on
// random GNN features.
#ifndef GELC_TENSOR_LINALG_H_
#define GELC_TENSOR_LINALG_H_

#include "base/status.h"
#include "tensor/matrix.h"

namespace gelc {

/// Solves A X = B for X with partial-pivot Gaussian elimination.
/// A must be square (n x n) and non-singular; B is n x k.
Result<Matrix> SolveLinearSystem(Matrix a, Matrix b);

/// Ridge regression: returns W minimizing ||X W - Y||² + lambda ||W||².
/// X is m x d, Y is m x k; W is d x k. lambda > 0 keeps the normal
/// equations well-posed.
Result<Matrix> RidgeRegression(const Matrix& x, const Matrix& y,
                               double lambda);

}  // namespace gelc

#endif  // GELC_TENSOR_LINALG_H_
