// Dense row-major matrices and vectors over double.
//
// This is the numeric substrate of the GNN library (slide 13 of the paper:
// feature matrices F^(t) in R^{n x d}, weight matrices W in R^{d x d}).
// It is intentionally small: exactly the operations GNN inference and
// training need, implemented carefully rather than generally.
#ifndef GELC_TENSOR_MATRIX_H_
#define GELC_TENSOR_MATRIX_H_

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/aligned.h"
#include "base/logging.h"
#include "base/rng.h"
#include "base/status.h"

namespace gelc {

/// A dense row-major matrix of doubles.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// A rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Zero(size_t rows, size_t cols) { return Matrix(rows, cols); }
  static Matrix Identity(size_t n);
  /// Entries i.i.d. uniform in [lo, hi).
  static Matrix RandomUniform(size_t rows, size_t cols, double lo, double hi,
                              Rng* rng);
  /// Entries i.i.d. N(0, stddev^2).
  static Matrix RandomGaussian(size_t rows, size_t cols, double stddev,
                               Rng* rng);
  /// A 1 x n row vector from values.
  static Matrix RowVector(const std::vector<double>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    GELC_DCHECK_LT(r, rows_);
    GELC_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    GELC_DCHECK_LT(r, rows_);
    GELC_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  const AlignedVector& data() const { return data_; }
  AlignedVector& mutable_data() { return data_; }

  /// Returns row r as a 1 x cols matrix.
  Matrix Row(size_t r) const;
  /// Copies a 1 x cols matrix into row r.
  void SetRow(size_t r, const Matrix& row);

  /// Matrix product; dimension mismatch is a checked programmer error.
  /// Large products are row-partitioned across the global thread pool
  /// (see base/parallel.h); results are bit-identical to the serial path.
  Matrix MatMul(const Matrix& other) const;
  /// Matrix product computed into *out, reusing out's storage when the
  /// shape already matches (no allocation on repeated calls, e.g. inside
  /// training loops). `out` must not alias this or `other`.
  void MatMulInto(const Matrix& other, Matrix* out) const;
  /// Transpose.
  Matrix Transposed() const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  /// Elementwise (Hadamard) product.
  Matrix Hadamard(const Matrix& other) const;
  Matrix operator*(double s) const;
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  /// Adds a 1 x cols bias row to every row.
  Matrix AddRowBroadcast(const Matrix& bias) const;

  /// Applies f to every entry.
  Matrix Map(const std::function<double(double)>& f) const;

  /// Sum of all entries.
  double Sum() const;
  /// Column-wise sum as a 1 x cols matrix.
  Matrix ColSums() const;
  /// Column-wise mean as a 1 x cols matrix; zero rows yield zeros.
  Matrix ColMeans() const;
  /// Column-wise max as a 1 x cols matrix; requires rows() > 0.
  Matrix ColMax() const;
  /// Frobenius norm.
  double FrobeniusNorm() const;
  /// True if every entry is exactly zero (either sign). Early-exits on
  /// the first nonzero entry, so testing a live matrix is O(1) — unlike
  /// FrobeniusNorm() == 0.0, which always scans everything and reads
  /// all-subnormal matrices as zero (x*x underflows).
  bool IsZero() const;
  /// Max |a_ij - b_ij|; matrices must have equal shape.
  double MaxAbsDiff(const Matrix& other) const;

  /// Horizontal concatenation [this | other]; equal row counts required.
  Matrix ConcatCols(const Matrix& other) const;

  /// True if shapes and all entries are exactly equal.
  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  /// True if shapes match and entries agree within `tol`.
  bool AllClose(const Matrix& other, double tol = 1e-9) const;

  /// Compact textual form for diagnostics, e.g. "[[1, 2], [3, 4]]".
  std::string ToString() const;

 private:
  /// Shared matmul kernel; accumulates this * other into *out, which must
  /// already be zeroed and correctly shaped.
  void MatMulImpl(const Matrix& other, Matrix* out) const;

  size_t rows_;
  size_t cols_;
  // 64-byte aligned so the SIMD kernel tier (tensor/simd.h) can assume
  // cache-line-resident base pointers.
  AlignedVector data_;
};

inline Matrix operator*(double s, const Matrix& m) { return m * s; }

/// Row vectors are pervasive (per-vertex embeddings live in R^{1 x d}).
using RowVec = Matrix;

}  // namespace gelc

#endif  // GELC_TENSOR_MATRIX_H_
