#include "tensor/segment.h"

#include <algorithm>
#include <functional>

#include "base/logging.h"
#include "base/parallel.h"
#include "tensor/simd.h"

namespace gelc {

namespace {

// Reduction work (entries read) below which the kernels stay serial,
// mirroring the SpMM / MatMul / AggregateNeighbors thresholds.
constexpr size_t kSegmentSerialWork = size_t{1} << 16;
constexpr size_t kSegmentShardWork = size_t{1} << 15;

void CheckOffsets(const Matrix& f, const std::vector<size_t>& offsets) {
  GELC_CHECK(!offsets.empty());
  GELC_CHECK(offsets.front() == 0);
  GELC_CHECK(offsets.back() == f.rows());
  for (size_t s = 0; s + 1 < offsets.size(); ++s) {
    GELC_DCHECK_LE(offsets[s], offsets[s + 1]);
  }
}

// Runs fn(segment) over every segment, one segment per shard index, so
// each output row is owned by exactly one shard (bit-identical at any
// thread count).
void ForEachSegment(size_t num_segments, size_t total_work,
                    const std::function<void(size_t)>& fn) {
  auto range = [&fn](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) fn(s);
  };
  if (total_work < kSegmentSerialWork || num_segments == 0) {
    range(0, num_segments);
    return;
  }
  size_t per_segment = std::max<size_t>(1, total_work / num_segments);
  size_t grain = std::max<size_t>(1, kSegmentShardWork / per_segment);
  ParallelFor(0, num_segments, grain, range);
}

}  // namespace

Matrix SegmentSum(const Matrix& f, const std::vector<size_t>& offsets) {
  CheckOffsets(f, offsets);
  size_t k = offsets.size() - 1;
  size_t d = f.cols();
  Matrix out(k, d);
  const double* fdata = f.data().data();
  double* odata = out.mutable_data().data();
  simd::CountDispatch();
  ForEachSegment(k, f.rows() * std::max<size_t>(d, 1), [&](size_t s) {
    double* orow = odata + s * d;
    for (size_t i = offsets[s]; i < offsets[s + 1]; ++i) {
      simd::AddRow(orow, fdata + i * d, d);
    }
  });
  return out;
}

Matrix SegmentMean(const Matrix& f, const std::vector<size_t>& offsets) {
  CheckOffsets(f, offsets);
  size_t k = offsets.size() - 1;
  size_t d = f.cols();
  Matrix out(k, d);
  const double* fdata = f.data().data();
  double* odata = out.mutable_data().data();
  simd::CountDispatch();
  ForEachSegment(k, f.rows() * std::max<size_t>(d, 1), [&](size_t s) {
    size_t count = offsets[s + 1] - offsets[s];
    if (count == 0) return;
    double* orow = odata + s * d;
    for (size_t i = offsets[s]; i < offsets[s + 1]; ++i) {
      simd::AddRow(orow, fdata + i * d, d);
    }
    // Multiply by the reciprocal (not DivRow): this kernel has always
    // scaled by 1/count, and the differential tests pin those bits.
    simd::ScaleRow(orow, 1.0 / static_cast<double>(count), d);
  });
  return out;
}

Matrix SegmentMax(const Matrix& f, const std::vector<size_t>& offsets,
                  std::vector<size_t>* argmax_rows) {
  CheckOffsets(f, offsets);
  size_t k = offsets.size() - 1;
  size_t d = f.cols();
  Matrix out(k, d);
  if (argmax_rows != nullptr) argmax_rows->assign(k * d, f.rows());
  const double* fdata = f.data().data();
  double* odata = out.mutable_data().data();
  simd::CountDispatch();
  ForEachSegment(k, f.rows() * std::max<size_t>(d, 1), [&](size_t s) {
    size_t begin = offsets[s];
    size_t end = offsets[s + 1];
    if (begin == end) return;  // empty segment: zero row, sentinel argmax
    double* orow = odata + s * d;
    const double* first = fdata + begin * d;
    for (size_t j = 0; j < d; ++j) orow[j] = first[j];
    for (size_t i = begin + 1; i < end; ++i) {
      simd::MaxRow(orow, fdata + i * d, d);
    }
    if (argmax_rows != nullptr) {
      size_t* arow = argmax_rows->data() + s * d;
      for (size_t j = 0; j < d; ++j) arow[j] = begin;
      for (size_t i = begin + 1; i < end; ++i) {
        const double* frow = fdata + i * d;
        // Strict > keeps the first maximum, the same tie convention as
        // Tape::ColMax.
        for (size_t j = 0; j < d; ++j) {
          if (frow[j] > fdata[arow[j] * d + j]) arow[j] = i;
        }
      }
    }
  });
  return out;
}

}  // namespace gelc
