// SIMD tier resolution and the scalar reference kernels.
//
// This TU is compiled for the baseline ISA: the scalar kernels here are
// the bit-exactness oracle every vector tier is measured against, and
// they are byte-for-byte the loops that lived in matrix.cc / sparse.cc /
// fused.cc / segment.cc before the dispatch layer existed — moving them
// must not change a single rounding step.
#include "tensor/simd.h"

#include <cstdlib>
#include <cstring>

#include "base/aligned.h"
#include "base/logging.h"
#include "obs/metrics.h"
#include "tensor/simd_internal.h"

namespace gelc {
namespace simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar tier.
// ---------------------------------------------------------------------------

// The i-k-j product with the k-unroll-by-4 from Matrix::MatMulImpl: each
// output cell is read and written once per four k steps, but its
// additions still happen one at a time in ascending-k order (four
// sequential rounding steps through a register), so the bits match the
// plain i-k-j loop exactly. No skip-zero branch: sparse operands go
// through SpMM.
void MatMulRowsScalar(const double* a, const double* b, double* out,
                      size_t row_begin, size_t row_end, size_t inner,
                      size_t ocols) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const double* arow = a + i * inner;
    double* orow = out + i * ocols;
    size_t k = 0;
    for (; k + 4 <= inner; k += 4) {
      double a0 = arow[k];
      double a1 = arow[k + 1];
      double a2 = arow[k + 2];
      double a3 = arow[k + 3];
      const double* b0 = b + k * ocols;
      const double* b1 = b0 + ocols;
      const double* b2 = b1 + ocols;
      const double* b3 = b2 + ocols;
      for (size_t j = 0; j < ocols; ++j) {
        double t = orow[j];
        t += a0 * b0[j];
        t += a1 * b1[j];
        t += a2 * b2[j];
        t += a3 * b3[j];
        orow[j] = t;
      }
    }
    for (; k < inner; ++k) {
      double av = arow[k];
      const double* brow = b + k * ocols;
      for (size_t j = 0; j < ocols; ++j) orow[j] += av * brow[j];
    }
  }
}

// The CSR row walk from SpMMInto: nonzeros in ascending column order,
// one multiply-add (or add, unweighted) per (nonzero, column) pair.
void SpMMRowsScalar(const size_t* row_offsets, const uint32_t* col_indices,
                    const double* values, const double* b, double* out,
                    size_t row_begin, size_t row_end, size_t d) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double* orow = out + i * d;
    GELC_DCHECK_LE(row_offsets[i], row_offsets[i + 1]);
    for (size_t k = row_offsets[i]; k < row_offsets[i + 1]; ++k) {
      const double* brow = b + size_t{col_indices[k]} * d;
      if (values != nullptr) {
        const double w = values[k];
        for (size_t j = 0; j < d; ++j) orow[j] += w * brow[j];
      } else {
        for (size_t j = 0; j < d; ++j) orow[j] += brow[j];
      }
    }
  }
}

void AddRowScalar(double* acc, const double* x, size_t d) {
  for (size_t j = 0; j < d; ++j) acc[j] += x[j];
}

void AddScaledRowScalar(double* acc, const double* x, double w, size_t d) {
  for (size_t j = 0; j < d; ++j) acc[j] += w * x[j];
}

void MaxRowScalar(double* acc, const double* x, size_t d) {
  // (acc < x) ? x : acc — exactly std::max(acc, x).
  for (size_t j = 0; j < d; ++j) acc[j] = acc[j] < x[j] ? x[j] : acc[j];
}

void ScaleRowScalar(double* acc, double s, size_t d) {
  for (size_t j = 0; j < d; ++j) acc[j] *= s;
}

void DivRowScalar(double* acc, double s, size_t d) {
  for (size_t j = 0; j < d; ++j) acc[j] /= s;
}

void GinCombineRowScalar(double* out, const double* self, double c,
                         const double* agg, size_t d) {
  for (size_t j = 0; j < d; ++j) out[j] = self[j] * c + agg[j];
}

void LinearAccumScalar(double* acc, const double* x, const double* w,
                       size_t d, size_t out_dim) {
  for (size_t c = 0; c < d; ++c) {
    const double xc = x[c];
    const double* wrow = w + c * out_dim;
    for (size_t j = 0; j < out_dim; ++j) acc[j] += xc * wrow[j];
  }
}

void ScaleRowCopyScalar(double* out, const double* x, double s, size_t d) {
  for (size_t j = 0; j < d; ++j) out[j] = s * x[j];
}

void AddRowsToScalar(double* out, const double* a, const double* b,
                     size_t d) {
  for (size_t j = 0; j < d; ++j) out[j] = a[j] + b[j];
}

void MulRowsToScalar(double* out, const double* a, const double* b,
                     size_t d) {
  for (size_t j = 0; j < d; ++j) out[j] = a[j] * b[j];
}

constexpr internal::KernelTable kScalarTable = {
    MatMulRowsScalar, SpMMRowsScalar,     AddRowScalar,
    AddScaledRowScalar, MaxRowScalar,     ScaleRowScalar,
    DivRowScalar,      GinCombineRowScalar, LinearAccumScalar,
    ScaleRowCopyScalar, AddRowsToScalar,  MulRowsToScalar,
};

// ---------------------------------------------------------------------------
// Tier resolution and installation.
// ---------------------------------------------------------------------------

// The installed tier. Written only by Install() (static init, SetTier,
// ResetTier — all single-threaded by contract); read on every kernel
// dispatch decision.
Tier g_tier = Tier::kScalar;

const internal::KernelTable* TableFor(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return &kScalarTable;
    case Tier::kAvx2:
      return internal::Avx2Table();
    case Tier::kFast:
      return internal::FastTable();
  }
  return &kScalarTable;
}

// Binds every dispatch pointer to `tier`, degrading to scalar when the
// vector table is unavailable. Returns the tier actually installed.
Tier Install(Tier tier) {
  if (tier != Tier::kScalar &&
      (!CpuHasAvx2Fma() || TableFor(tier) == nullptr)) {
    tier = Tier::kScalar;
  }
  const internal::KernelTable* t = TableFor(tier);
  MatMulRows = t->matmul_rows;
  SpMMRows = t->spmm_rows;
  AddRow = t->add_row;
  AddScaledRow = t->add_scaled_row;
  MaxRow = t->max_row;
  ScaleRow = t->scale_row;
  DivRow = t->div_row;
  GinCombineRow = t->gin_combine_row;
  LinearAccum = t->linear_accum;
  ScaleRowCopy = t->scale_row_copy;
  AddRowsTo = t->add_rows_to;
  MulRowsTo = t->mul_rows_to;
  g_tier = tier;
  return tier;
}

// Resolve GELC_SIMD + cpuid once before main(). Any kernel call that
// races this (another TU's static initializer) sees the scalar defaults
// below, which are always correct.
const bool g_simd_resolved = [] {
  Install(TierFromEnvValue(std::getenv("GELC_SIMD"), CpuHasAvx2Fma()));
  return true;
}();

}  // namespace

// Constant-initialized to the scalar tier so calls during static init
// are well-defined even before g_simd_resolved runs.
void (*MatMulRows)(const double*, const double*, double*, size_t, size_t,
                   size_t, size_t) = MatMulRowsScalar;
void (*SpMMRows)(const size_t*, const uint32_t*, const double*,
                 const double*, double*, size_t, size_t,
                 size_t) = SpMMRowsScalar;
void (*AddRow)(double*, const double*, size_t) = AddRowScalar;
void (*AddScaledRow)(double*, const double*, double,
                     size_t) = AddScaledRowScalar;
void (*MaxRow)(double*, const double*, size_t) = MaxRowScalar;
void (*ScaleRow)(double*, double, size_t) = ScaleRowScalar;
void (*DivRow)(double*, double, size_t) = DivRowScalar;
void (*GinCombineRow)(double*, const double*, double, const double*,
                      size_t) = GinCombineRowScalar;
void (*LinearAccum)(double*, const double*, const double*, size_t,
                    size_t) = LinearAccumScalar;
void (*ScaleRowCopy)(double*, const double*, double,
                     size_t) = ScaleRowCopyScalar;
void (*AddRowsTo)(double*, const double*, const double*,
                  size_t) = AddRowsToScalar;
void (*MulRowsTo)(double*, const double*, const double*,
                  size_t) = MulRowsToScalar;

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool has = __builtin_cpu_supports("avx2") &&
                          __builtin_cpu_supports("fma");
  return has;
#else
  return false;
#endif
}

Tier ActiveTier() { return g_tier; }

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kFast:
      return "fast";
  }
  return "unknown";
}

Tier TierFromEnvValue(const char* value, bool hw_avx2_fma) {
  if (value != nullptr &&
      (std::strcmp(value, "0") == 0 || std::strcmp(value, "scalar") == 0)) {
    return Tier::kScalar;
  }
  if (!hw_avx2_fma) return Tier::kScalar;
  if (value != nullptr && std::strcmp(value, "fast") == 0) return Tier::kFast;
  return Tier::kAvx2;
}

Tier SetTier(Tier tier) { return Install(tier); }

void ResetTier() {
  Install(TierFromEnvValue(std::getenv("GELC_SIMD"), CpuHasAvx2Fma()));
}

void CountDispatch() {
  static obs::Counter* scalar = obs::GetCounter("simd.scalar_dispatches");
  static obs::Counter* avx2 = obs::GetCounter("simd.avx2_dispatches");
  static obs::Counter* fast = obs::GetCounter("simd.fast_dispatches");
  switch (g_tier) {
    case Tier::kScalar:
      scalar->Increment();
      return;
    case Tier::kAvx2:
      avx2->Increment();
      return;
    case Tier::kFast:
      fast->Increment();
      return;
  }
}

}  // namespace simd
}  // namespace gelc
