// Runtime-dispatched SIMD kernel tier for the dense/sparse substrate.
//
// Every hot inner loop under src/tensor funnels through the entry points
// declared here. Each entry point is a mutable function pointer bound
// once per process to one of three implementations (DESIGN.md §11):
//
//   kScalar  the reference loops, compiled without vector flags. Always
//            available; the bit-exactness oracle.
//   kAvx2    AVX2 vectorization of the same loops, arranged so every
//            output cell sees the exact same sequence of IEEE operations
//            as the scalar tier (multiply-then-add, ascending reduction
//            order, std::max blend semantics). Bit-identical to kScalar
//            at any thread count — this is the default on AVX2+FMA
//            hardware.
//   kFast    the kAvx2 structure with fused multiply-add. FMA rounds
//            once per madd instead of twice, so bits may differ from the
//            scalar tier (usually they are *more* accurate). Explicit
//            opt-in via GELC_SIMD=fast; validated by a tolerance-checked
//            differential test (tests/simd_test.cc), mirroring the PR 5
//            differential layer.
//
// Selection: GELC_SIMD=0|scalar forces kScalar; GELC_SIMD=fast requests
// kFast; unset / 1 / avx2 picks kAvx2. Vector tiers silently fall back
// to kScalar when cpuid lacks AVX2 or FMA, so a binary built here runs
// anywhere. The AVX2/FMA bodies live in simd_avx2.cc, the only TU built
// with -mavx2 -mfma (the intrinsics-outside-tensor lint rule keeps it
// that way); everything else, including this dispatch layer and the
// scalar tier, compiles for the baseline ISA.
#ifndef GELC_TENSOR_SIMD_H_
#define GELC_TENSOR_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace gelc {
namespace simd {

enum class Tier { kScalar, kAvx2, kFast };

/// True when cpuid reports both AVX2 and FMA.
bool CpuHasAvx2Fma();

/// The tier the kernels below currently dispatch to.
Tier ActiveTier();

/// "scalar" / "avx2" / "fast".
const char* TierName(Tier tier);

/// Parses a GELC_SIMD value against hardware capability: "0"/"scalar"
/// force kScalar, "fast" requests kFast, anything else (including
/// nullptr, the unset case) picks the default. Vector tiers degrade to
/// kScalar when `hw_avx2_fma` is false. Exposed for tests.
Tier TierFromEnvValue(const char* value, bool hw_avx2_fma);

/// Overrides the active tier (benchmarks sweep scalar/avx2/fast with
/// this; tests compare tiers in-process). Vector tiers degrade to
/// kScalar on non-AVX2 hardware; returns the tier actually installed.
/// Not thread-safe against concurrently executing kernels — call it
/// only between kernel invocations, like SetParallelThreadCount.
Tier SetTier(Tier tier);

/// Restores the GELC_SIMD / cpuid default resolution.
void ResetTier();

/// Increments the per-tier dispatch counter (simd.scalar_dispatches /
/// simd.avx2_dispatches / simd.fast_dispatches). The kernel wrappers in
/// matrix.cc, sparse.cc, fused.cc and segment.cc call this once per
/// kernel invocation, so the obs snapshot records how many kernel
/// dispatches each tier served.
void CountDispatch();

// ---------------------------------------------------------------------------
// Dispatched kernels. All pointers are bound at static initialization to
// the scalar tier and rebound by the resolver (or SetTier) before main();
// a call that races static init simply runs the scalar reference.
//
// Contract shared by every kernel: each output cell accumulates in the
// same ascending order as the reference loops in matrix.cc / sparse.cc /
// fused.cc / segment.cc, so kScalar and kAvx2 produce identical bits and
// rows remain disjoint output slots under ParallelFor.
// ---------------------------------------------------------------------------

/// Rows [row_begin, row_end) of out += a * b, where a is (rows x inner),
/// b is (inner x ocols), both row-major, and the out rows are already
/// zeroed. `a`, `b`, `out` are full-matrix base pointers (64-byte
/// aligned, see base/aligned.h). The vector tiers k-panel-block the
/// reduction and register-tile 4x8 output blocks; panel boundaries
/// load/store the exact partial sums, so the per-cell addition chain is
/// unchanged.
extern void (*MatMulRows)(const double* a, const double* b, double* out,
                          size_t row_begin, size_t row_end, size_t inner,
                          size_t ocols);

/// Rows [row_begin, row_end) of the CSR product out += csr * b with
/// `d = b.cols()`. `values` is null for an unweighted (all-1.0) matrix.
/// The out rows are already zeroed; `b` and `out` are full-matrix base
/// pointers. The vector tiers prefetch the b-row of a later column index
/// while accumulating the current one.
extern void (*SpMMRows)(const size_t* row_offsets,
                        const uint32_t* col_indices, const double* values,
                        const double* b, double* out, size_t row_begin,
                        size_t row_end, size_t d);

/// acc[j] += x[j] for j in [0, d).
extern void (*AddRow)(double* acc, const double* x, size_t d);

/// acc[j] += w * x[j] for j in [0, d).
extern void (*AddScaledRow)(double* acc, const double* x, double w,
                            size_t d);

/// acc[j] = std::max(acc[j], x[j]) for j in [0, d) — exact std::max
/// semantics (keep acc on ties, NaN in x, and the signed-zero cases), in
/// every tier.
extern void (*MaxRow)(double* acc, const double* x, size_t d);

/// acc[j] *= s for j in [0, d).
extern void (*ScaleRow)(double* acc, double s, size_t d);

/// acc[j] /= s for j in [0, d). Kept distinct from ScaleRow(1/s):
/// theta's mean finalization divides by the count, and IEEE division is
/// not a multiply by the reciprocal.
extern void (*DivRow)(double* acc, double s, size_t d);

/// out[j] = self[j] * c + agg[j] for j in [0, d) (the GIN combine).
extern void (*GinCombineRow)(double* out, const double* self, double c,
                             const double* agg, size_t d);

/// acc[j] += Σ_c x[c] * w[c * out_dim + j], c ascending from 0 — the
/// fused layer's per-argument weight fold (a 1-row matmul against the
/// d x out_dim weight slice).
extern void (*LinearAccum)(double* acc, const double* x, const double* w,
                           size_t d, size_t out_dim);

/// out[j] = s * x[j] for j in [0, d) (the plan executor's kScale).
extern void (*ScaleRowCopy)(double* out, const double* x, double s,
                            size_t d);

/// out[j] = a[j] + b[j] / out[j] = a[j] * b[j] (plan kAdd / kMul rows).
extern void (*AddRowsTo)(double* out, const double* a, const double* b,
                         size_t d);
extern void (*MulRowsTo)(double* out, const double* a, const double* b,
                         size_t d);

}  // namespace simd
}  // namespace gelc

#endif  // GELC_TENSOR_SIMD_H_
