// Segment reductions over contiguous row ranges of a dense matrix.
//
// These are the pooling kernels of batched graph execution (DESIGN.md
// "Batched execution"): a GraphBatch packs k graphs into one
// block-diagonal graph whose vertex rows are grouped by graph, and the
// per-graph readout is a reduction over each contiguous row segment.
// Segments are described by a vector of k+1 non-decreasing offsets —
// segment s covers rows [offsets[s], offsets[s+1]) — so empty segments
// (zero-vertex graphs) are representable and reduce to the zero row.
//
// Determinism contract: segment s of the output is computed by exactly
// one shard, accumulating its rows in ascending order from zero, so each
// output row carries the same bits as Matrix::ColSums / ColMeans /
// ColMax applied to that block alone, at any thread count.
#ifndef GELC_TENSOR_SEGMENT_H_
#define GELC_TENSOR_SEGMENT_H_

#include <cstddef>
#include <vector>

#include "tensor/matrix.h"

namespace gelc {

/// Per-segment column sums: k x d from n x d. `offsets` must have k+1
/// non-decreasing entries with offsets.front() == 0 and offsets.back()
/// == f.rows(). Empty segments yield zero rows.
Matrix SegmentSum(const Matrix& f, const std::vector<size_t>& offsets);

/// Per-segment column means (sum chain, then one multiply by 1/count,
/// matching Matrix::ColMeans bit-for-bit). Empty segments yield zeros.
Matrix SegmentMean(const Matrix& f, const std::vector<size_t>& offsets);

/// Per-segment column max; empty segments yield zero rows (the same
/// convention as PoolVertices / AggregateNeighbors). When `argmax_rows`
/// is non-null it is resized to k * f.cols() and entry s * cols + j
/// receives the absolute row index of the first maximum of column j in
/// segment s — or f.rows() as a sentinel for empty segments — which is
/// the subgradient convention the tape's backward pass routes by.
Matrix SegmentMax(const Matrix& f, const std::vector<size_t>& offsets,
                  std::vector<size_t>* argmax_rows = nullptr);

}  // namespace gelc

#endif  // GELC_TENSOR_SEGMENT_H_
