#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace gelc {

Matrix ApplyActivation(Activation act, const Matrix& m) {
  // Direct loop rather than Map(): the scalar overload inlines here and
  // the switch hoists out, where a std::function pays an indirect call
  // per element on the hottest entrywise pass in training. Same scalar
  // arithmetic, same bits.
  Matrix out = m;
  for (double& x : out.mutable_data()) x = ApplyActivation(act, x);
  return out;
}

const char* ActivationName(Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kReLU:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
    case Activation::kSign:
      return "sign";
    case Activation::kClippedReLU:
      return "clipped_relu";
  }
  return "unknown";
}

Result<Activation> ParseActivation(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kReLU;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sign") return Activation::kSign;
  if (name == "clipped_relu") return Activation::kClippedReLU;
  return Status::InvalidArgument("unknown activation: " + name);
}

Matrix RowSoftmax(const Matrix& logits) {
  Matrix out = logits;
  for (size_t i = 0; i < out.rows(); ++i) {
    double mx = out.At(i, 0);
    for (size_t j = 1; j < out.cols(); ++j) mx = std::max(mx, out.At(i, j));
    double sum = 0.0;
    for (size_t j = 0; j < out.cols(); ++j) {
      out.At(i, j) = std::exp(out.At(i, j) - mx);
      sum += out.At(i, j);
    }
    for (size_t j = 0; j < out.cols(); ++j) out.At(i, j) /= sum;
  }
  return out;
}

Matrix RowLogSoftmax(const Matrix& logits) {
  Matrix out = logits;
  for (size_t i = 0; i < out.rows(); ++i) {
    double mx = out.At(i, 0);
    for (size_t j = 1; j < out.cols(); ++j) mx = std::max(mx, out.At(i, j));
    double sum = 0.0;
    for (size_t j = 0; j < out.cols(); ++j)
      sum += std::exp(out.At(i, j) - mx);
    double lse = mx + std::log(sum);
    for (size_t j = 0; j < out.cols(); ++j) out.At(i, j) -= lse;
  }
  return out;
}

std::vector<size_t> RowArgmax(const Matrix& m) {
  std::vector<size_t> out(m.rows(), 0);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 1; j < m.cols(); ++j)
      if (m.At(i, j) > m.At(i, out[i])) out[i] = j;
  }
  return out;
}

}  // namespace gelc
