#include "tensor/sparse.h"

#include <algorithm>
#include <cstddef>

#include "base/logging.h"
#include "base/parallel.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "obs/trace.h"
#include "tensor/simd.h"

namespace gelc {

namespace {

// Madd count below which SpMM stays on the calling thread (same rationale
// and scale as the MatMul thresholds in matrix.cc: tiny products lose more
// to pool fan-out than they gain).
constexpr size_t kSpMMSerialWork = size_t{1} << 16;
// Target madds per shard when row-partitioning a parallel SpMM.
constexpr size_t kSpMMShardWork = size_t{1} << 15;

}  // namespace

CsrMatrix CsrMatrix::FromDense(const Matrix& m) {
  CsrMatrix out;
  out.rows = m.rows();
  out.cols = m.cols();
  out.row_offsets.reserve(m.rows() + 1);
  out.row_offsets.push_back(0);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      double x = m.At(i, j);
      if (x == 0.0) continue;
      out.col_indices.push_back(static_cast<uint32_t>(j));
      out.values.push_back(x);
    }
    out.row_offsets.push_back(out.col_indices.size());
  }
  return out;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    GELC_DCHECK_LE(row_offsets[i], row_offsets[i + 1]);
    for (size_t k = row_offsets[i]; k < row_offsets[i + 1]; ++k) {
      GELC_DCHECK_LT(col_indices[k], cols);
      out.At(i, col_indices[k]) = weighted() ? values[k] : 1.0;
    }
  }
  return out;
}

CsrMatrix CsrMatrix::Transposed() const {
  CsrMatrix out;
  out.rows = cols;
  out.cols = rows;
  // Counting sort by column: one pass to size the rows of the transpose,
  // one pass to scatter. Scanning rows in ascending order places each
  // transposed row's indices in ascending order automatically.
  std::vector<size_t> counts(cols, 0);
  for (uint32_t c : col_indices) {
    GELC_DCHECK_LT(c, cols);
    ++counts[c];
  }
  out.row_offsets.assign(cols + 1, 0);
  for (size_t i = 0; i < cols; ++i)
    out.row_offsets[i + 1] = out.row_offsets[i] + counts[i];
  out.col_indices.resize(nnz());
  if (weighted()) out.values.resize(nnz());
  std::vector<size_t> next(out.row_offsets.begin(), out.row_offsets.end() - 1);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t k = row_offsets[i]; k < row_offsets[i + 1]; ++k) {
      size_t slot = next[col_indices[k]]++;
      out.col_indices[slot] = static_cast<uint32_t>(i);
      if (weighted()) out.values[slot] = values[k];
    }
  }
  return out;
}

void SpMMInto(const CsrMatrix& a, const Matrix& b, Matrix* out) {
  GELC_CHECK(out != nullptr && out != &b);
  GELC_CHECK(a.cols == b.rows());
  GELC_CHECK(a.row_offsets.size() == a.rows + 1);
  const size_t d = b.cols();
  if (out->rows() == a.rows && out->cols() == d) {
    std::fill(out->mutable_data().begin(), out->mutable_data().end(), 0.0);
  } else {
    *out = Matrix(a.rows, d);
  }
#ifndef NDEBUG
  // Column bounds used to be checked inside the row loop; the dispatched
  // kernels (tensor/simd.h) take raw pointers, so validate up front.
  for (uint32_t c : a.col_indices) GELC_DCHECK_LT(c, a.cols);
#endif
  const double* bdata = b.data().data();
  double* odata = out->mutable_data().data();
  // The row walk is the dispatched SpMMRows kernel: ascending-index
  // accumulation per output row in every tier, with b-row prefetch in the
  // vector tiers.
  const size_t* offsets = a.row_offsets.data();
  const uint32_t* cols = a.col_indices.data();
  const double* vals = a.weighted() ? a.values.data() : nullptr;
  auto row_range = [offsets, cols, vals, bdata, odata, d](size_t row_begin,
                                                          size_t row_end) {
    simd::SpMMRows(offsets, cols, vals, bdata, odata, row_begin, row_end, d);
  };
  const size_t work = a.nnz() * std::max<size_t>(d, 1);
  static obs::Counter* calls = obs::GetCounter("spmm.calls");
  static obs::Counter* flops = obs::GetCounter("spmm.flops");
  static obs::Counter* out_rows = obs::GetCounter("spmm.rows");
  calls->Increment();
  flops->Add(2 * work);  // one multiply + one add per (nnz, j) pair
  out_rows->Add(a.rows);
  simd::CountDispatch();
  GELC_TRACE_SPAN("spmm", {{"rows", a.rows}, {"nnz", a.nnz()}, {"d", d}});
  GELC_OBS_TIME("spmm");
  if (work < kSpMMSerialWork || a.rows == 0) {
    static obs::Counter* serial = obs::GetCounter("spmm.serial_dispatch");
    serial->Increment();
    row_range(0, a.rows);
    return;
  }
  static obs::Counter* parallel = obs::GetCounter("spmm.parallel_dispatch");
  parallel->Increment();
  // Grain from the *average* row cost; a pure function of the CSR
  // structure, so shard boundaries (and hence scheduling) never depend on
  // the data. Rows are disjoint output slots, so any schedule produces
  // the same bits anyway.
  size_t row_work = std::max<size_t>(1, work / a.rows);
  size_t grain = std::max<size_t>(1, kSpMMShardWork / row_work);
  ParallelFor(0, a.rows, grain, row_range);
}

Matrix SpMM(const CsrMatrix& a, const Matrix& b) {
  Matrix out(a.rows, b.cols());
  SpMMInto(a, b, &out);
  return out;
}

void MergeDeltaRow(const CsrMatrix& base, const CsrDeltaRows& delta,
                   size_t v, std::vector<uint32_t>* out) {
  GELC_DCHECK_LT(v, base.rows);
  out->clear();
  const uint32_t* bc = base.col_indices.data() + base.row_offsets[v];
  const size_t bn = base.row_offsets[v + 1] - base.row_offsets[v];
  const std::vector<uint32_t>& rem = delta.remove[v];
  const std::vector<uint32_t>& add = delta.add[v];
  out->reserve(bn + add.size());
  // Three-way ascending merge: base minus removes, interleaved with adds
  // (adds are disjoint from the base row, so no tie-breaking is needed).
  size_t bi = 0, ri = 0, ai = 0;
  while (bi < bn || ai < add.size()) {
    if (bi < bn && ri < rem.size() && bc[bi] == rem[ri]) {
      ++bi;
      ++ri;
      continue;
    }
    if (ai == add.size() || (bi < bn && bc[bi] < add[ai])) {
      out->push_back(bc[bi++]);
    } else {
      out->push_back(add[ai++]);
    }
  }
  GELC_DCHECK_EQ(ri, rem.size());
}

CsrMatrix MergeDeltaRows(const CsrMatrix& base, const CsrDeltaRows& delta) {
  GELC_CHECK(!base.weighted());
  GELC_CHECK(delta.rows == base.rows);
  CsrMatrix out;
  out.rows = base.rows;
  out.cols = base.cols;
  out.row_offsets.reserve(base.rows + 1);
  out.row_offsets.push_back(0);
  out.col_indices.reserve(base.nnz() + delta.add_nnz - delta.remove_nnz);
  std::vector<uint32_t> row;
  for (size_t v = 0; v < base.rows; ++v) {
    if (delta.RowDirty(v)) {
      MergeDeltaRow(base, delta, v, &row);
      out.col_indices.insert(out.col_indices.end(), row.begin(), row.end());
    } else {
      out.col_indices.insert(
          out.col_indices.end(),
          base.col_indices.begin() + static_cast<ptrdiff_t>(
                                         base.row_offsets[v]),
          base.col_indices.begin() + static_cast<ptrdiff_t>(
                                         base.row_offsets[v + 1]));
    }
    out.row_offsets.push_back(out.col_indices.size());
  }
  return out;
}

void SpMMDeltaInto(const CsrMatrix& a, const CsrDeltaRows* delta,
                   const Matrix& b, Matrix* out) {
  if (delta == nullptr || delta->empty()) {
    SpMMInto(a, b, out);
    return;
  }
  GELC_CHECK(out != nullptr && out != &b);
  GELC_CHECK(!a.weighted());  // the delta protocol is binary-adjacency only
  GELC_CHECK(delta->rows == a.rows);
  GELC_CHECK(a.cols == b.rows());
  const size_t d = b.cols();
  if (out->rows() == a.rows && out->cols() == d) {
    std::fill(out->mutable_data().begin(), out->mutable_data().end(), 0.0);
  } else {
    *out = Matrix(a.rows, d);
  }
  const double* bdata = b.data().data();
  double* odata = out->mutable_data().data();
  const size_t* offsets = a.row_offsets.data();
  const uint32_t* cols = a.col_indices.data();
  // Rows are disjoint output slots; within a shard, clean-row runs hit the
  // base storage through the dispatched kernel and each dirty row is
  // merged into scratch and pushed through the same kernel as a one-row
  // CSR — so every output row sees the exact column sequence the
  // compacted matrix would present, in every tier.
  auto row_range = [offsets, cols, delta, &a, bdata, odata, d](
                       size_t row_begin, size_t row_end) {
    std::vector<uint32_t> scratch;
    size_t r = row_begin;
    while (r < row_end) {
      if (!delta->RowDirty(r)) {
        size_t run_end = r + 1;
        while (run_end < row_end && !delta->RowDirty(run_end)) ++run_end;
        simd::SpMMRows(offsets, cols, nullptr, bdata, odata, r, run_end, d);
        r = run_end;
      } else {
        MergeDeltaRow(a, *delta, r, &scratch);
        const size_t one_row[2] = {0, scratch.size()};
        simd::SpMMRows(one_row, scratch.data(), nullptr, bdata,
                       odata + r * d, 0, 1, d);
        ++r;
      }
    }
  };
  const size_t merged_nnz = a.nnz() + delta->add_nnz - delta->remove_nnz;
  const size_t work = merged_nnz * std::max<size_t>(d, 1);
  static obs::Counter* calls = obs::GetCounter("spmm.delta.calls");
  static obs::Counter* dirty = obs::GetCounter("spmm.delta.dirty_rows");
  static obs::Counter* flops = obs::GetCounter("spmm.flops");
  calls->Increment();
  flops->Add(2 * work);
  size_t dirty_rows = 0;
  for (size_t v = 0; v < a.rows; ++v) dirty_rows += delta->RowDirty(v) ? 1 : 0;
  dirty->Add(dirty_rows);
  simd::CountDispatch();
  GELC_TRACE_SPAN("spmm.delta",
                  {{"rows", a.rows}, {"dirty", dirty_rows}, {"d", d}});
  GELC_OBS_TIME("spmm.delta");
  if (work < kSpMMSerialWork || a.rows == 0) {
    row_range(0, a.rows);
    return;
  }
  size_t row_work = std::max<size_t>(1, work / a.rows);
  size_t grain = std::max<size_t>(1, kSpMMShardWork / row_work);
  ParallelFor(0, a.rows, grain, row_range);
}

Matrix SpMMDelta(const CsrMatrix& a, const CsrDeltaRows* delta,
                 const Matrix& b) {
  Matrix out(a.rows, b.cols());
  SpMMDeltaInto(a, delta, b, &out);
  return out;
}

}  // namespace gelc
