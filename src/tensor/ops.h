// Scalar activation functions and softmax-style matrix utilities.
//
// These are the nonlinearities σ the paper parameterizes GNN 101 over
// (slide 13: "ReLU, sigmoid, sign, ...") and the numerically stable
// softmax / log-softmax used by cross-entropy training.
#ifndef GELC_TENSOR_OPS_H_
#define GELC_TENSOR_OPS_H_

#include <string>

#include "base/status.h"
#include "tensor/matrix.h"

namespace gelc {

/// The nonlinear activation σ : R → R applied entrywise by a GNN layer.
enum class Activation {
  kIdentity,
  kReLU,
  kSigmoid,
  kTanh,
  kSign,
  /// Truncated ReLU min(max(x,0),1); handy for logic-to-GNN constructions.
  kClippedReLU,
};

/// Applies `act` to a scalar.
double ApplyActivation(Activation act, double x);

/// Derivative of `act` at x (subgradient 0 at kinks).
double ActivationGrad(Activation act, double x);

/// Applies `act` entrywise.
Matrix ApplyActivation(Activation act, const Matrix& m);

/// Human-readable name ("relu", "sigmoid", ...).
const char* ActivationName(Activation act);

/// Parses an activation name; inverse of ActivationName.
Result<Activation> ParseActivation(const std::string& name);

/// Row-wise numerically stable softmax.
Matrix RowSoftmax(const Matrix& logits);

/// Row-wise log-softmax.
Matrix RowLogSoftmax(const Matrix& logits);

/// Index of the max entry in each row.
std::vector<size_t> RowArgmax(const Matrix& m);

}  // namespace gelc

#endif  // GELC_TENSOR_OPS_H_
