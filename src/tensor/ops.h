// Scalar activation functions and softmax-style matrix utilities.
//
// These are the nonlinearities σ the paper parameterizes GNN 101 over
// (slide 13: "ReLU, sigmoid, sign, ...") and the numerically stable
// softmax / log-softmax used by cross-entropy training.
#ifndef GELC_TENSOR_OPS_H_
#define GELC_TENSOR_OPS_H_

#include <algorithm>
#include <cmath>
#include <string>

#include "base/status.h"
#include "tensor/matrix.h"

namespace gelc {

/// The nonlinear activation σ : R → R applied entrywise by a GNN layer.
enum class Activation {
  kIdentity,
  kReLU,
  kSigmoid,
  kTanh,
  kSign,
  /// Truncated ReLU min(max(x,0),1); handy for logic-to-GNN constructions.
  kClippedReLU,
};

/// Applies `act` to a scalar. Defined inline: the forward/backward
/// entrywise loops call this once per matrix element from other
/// translation units, and without LTO an out-of-line definition costs a
/// call + switch per element on the hottest passes in training.
inline double ApplyActivation(Activation act, double x) {
  switch (act) {
    case Activation::kIdentity:
      return x;
    case Activation::kReLU:
      return x > 0.0 ? x : 0.0;
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kSign:
      return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0);
    case Activation::kClippedReLU:
      return std::min(1.0, std::max(0.0, x));
  }
  return x;
}

/// Derivative of `act` at x (subgradient 0 at kinks). Inline for the
/// same reason as ApplyActivation.
inline double ActivationGrad(Activation act, double x) {
  switch (act) {
    case Activation::kIdentity:
      return 1.0;
    case Activation::kReLU:
      return x > 0.0 ? 1.0 : 0.0;
    case Activation::kSigmoid: {
      double s = 1.0 / (1.0 + std::exp(-x));
      return s * (1.0 - s);
    }
    case Activation::kTanh: {
      double t = std::tanh(x);
      return 1.0 - t * t;
    }
    case Activation::kSign:
      return 0.0;
    case Activation::kClippedReLU:
      return (x > 0.0 && x < 1.0) ? 1.0 : 0.0;
  }
  return 0.0;
}

/// Applies `act` entrywise.
Matrix ApplyActivation(Activation act, const Matrix& m);

/// Human-readable name ("relu", "sigmoid", ...).
const char* ActivationName(Activation act);

/// Parses an activation name; inverse of ActivationName.
Result<Activation> ParseActivation(const std::string& name);

/// Row-wise numerically stable softmax.
Matrix RowSoftmax(const Matrix& logits);

/// Row-wise log-softmax.
Matrix RowLogSoftmax(const Matrix& logits);

/// Index of the max entry in each row.
std::vector<size_t> RowArgmax(const Matrix& m);

}  // namespace gelc

#endif  // GELC_TENSOR_OPS_H_
