#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/parallel.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "obs/trace.h"
#include "tensor/simd.h"

namespace gelc {

namespace {

// Flop count below which MatMul stays on the calling thread: tiny
// GNN-layer products lose more to pool fan-out than they gain. The
// crossover moved when the vector tier landed: fan-out cost is fixed
// (wake + shard + join) while the AVX2 kernel retires ~4-6x the madds
// per cycle of the scalar one (BENCH_p7, 256-square single-thread:
// ~1.97 vs ~11.7 G madds/s), so a product must be that much larger
// before the same fan-out amortizes. The scalar constant keeps its
// PR 1 value (2^16, re-validated then); the vector tiers scale it by
// the measured throughput ratio, rounded to a power of two: 2^18.
constexpr size_t kMatMulSerialWorkScalar = size_t{1} << 16;
constexpr size_t kMatMulSerialWorkVector = size_t{1} << 18;
// Target flops per shard when row-partitioning a parallel MatMul.
constexpr size_t kMatMulShardWork = size_t{1} << 15;

size_t MatMulSerialWork() {
  return simd::ActiveTier() == simd::Tier::kScalar ? kMatMulSerialWorkScalar
                                                   : kMatMulSerialWorkVector;
}

}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  for (const auto& row : rows) {
    if (cols_ == 0) cols_ = row.size();
    GELC_CHECK(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
  if (rows_ == 0) cols_ = 0;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomUniform(size_t rows, size_t cols, double lo, double hi,
                             Rng* rng) {
  Matrix m(rows, cols);
  for (double& x : m.data_) x = rng->NextUniform(lo, hi);
  return m;
}

Matrix Matrix::RandomGaussian(size_t rows, size_t cols, double stddev,
                              Rng* rng) {
  Matrix m(rows, cols);
  for (double& x : m.data_) x = stddev * rng->NextGaussian();
  return m;
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  Matrix m(1, values.size());
  m.data_.assign(values.begin(), values.end());
  return m;
}

Matrix Matrix::Row(size_t r) const {
  GELC_CHECK(r < rows_);
  Matrix out(1, cols_);
  std::copy(data_.begin() + r * cols_, data_.begin() + (r + 1) * cols_,
            out.data_.begin());
  return out;
}

void Matrix::SetRow(size_t r, const Matrix& row) {
  GELC_CHECK(r < rows_ && row.rows() == 1 && row.cols() == cols_);
  std::copy(row.data_.begin(), row.data_.end(), data_.begin() + r * cols_);
}

void Matrix::MatMulImpl(const Matrix& other, Matrix* out) const {
  const size_t inner = cols_;
  const size_t ocols = other.cols_;
  // The inner loops live behind the simd dispatch layer (tensor/simd.h):
  // the installed tier picks scalar i-k-j, cache-blocked AVX2, or FMA
  // bodies, all accumulating each output cell in ascending-k order. Each
  // shard owns a contiguous row range of `out`, so any shard schedule
  // produces the same bits as the serial loop.
  const double* adata = data_.data();
  const double* bdata = other.data_.data();
  double* odata = out->data_.data();
  auto row_range = [adata, bdata, odata, inner, ocols](size_t row_begin,
                                                       size_t row_end) {
    simd::MatMulRows(adata, bdata, odata, row_begin, row_end, inner, ocols);
  };
  const size_t work = rows_ * inner * ocols;
  static obs::Counter* calls = obs::GetCounter("matmul.calls");
  static obs::Counter* flops = obs::GetCounter("matmul.flops");
  static obs::Counter* out_rows = obs::GetCounter("matmul.rows");
  calls->Increment();
  flops->Add(2 * work);  // one multiply + one add per (i, k, j) triple
  out_rows->Add(rows_);
  simd::CountDispatch();
  GELC_TRACE_SPAN("matmul", {{"rows", rows_}, {"inner", inner},
                             {"ocols", ocols}});
  GELC_OBS_TIME("matmul");
  if (work < MatMulSerialWork()) {
    static obs::Counter* serial = obs::GetCounter("matmul.serial_dispatch");
    serial->Increment();
    row_range(0, rows_);
    return;
  }
  static obs::Counter* parallel = obs::GetCounter("matmul.parallel_dispatch");
  parallel->Increment();
  size_t row_work = std::max<size_t>(1, inner * ocols);
  size_t grain = std::max<size_t>(1, kMatMulShardWork / row_work);
  ParallelFor(0, rows_, grain, row_range);
}

Matrix Matrix::MatMul(const Matrix& other) const {
  GELC_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  MatMulImpl(other, &out);
  return out;
}

void Matrix::MatMulInto(const Matrix& other, Matrix* out) const {
  GELC_CHECK(out != nullptr && out != this && out != &other);
  GELC_CHECK(cols_ == other.rows_);
  if (out->rows_ == rows_ && out->cols_ == other.cols_) {
    std::fill(out->data_.begin(), out->data_.end(), 0.0);
  } else {
    out->rows_ = rows_;
    out->cols_ = other.cols_;
    out->data_.assign(rows_ * other.cols_, 0.0);
  }
  MatMulImpl(other, out);
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  GELC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  GELC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  GELC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::AddRowBroadcast(const Matrix& bias) const {
  GELC_CHECK(bias.rows() == 1 && bias.cols() == cols_);
  Matrix out = *this;
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out.At(i, j) += bias.At(0, j);
  return out;
}

Matrix Matrix::Map(const std::function<double(double)>& f) const {
  Matrix out = *this;
  for (double& x : out.data_) x = f(x);
  return out;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

Matrix Matrix::ColSums() const {
  Matrix out(1, cols_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out.At(0, j) += At(i, j);
  return out;
}

Matrix Matrix::ColMeans() const {
  if (rows_ == 0) return Matrix(1, cols_);
  Matrix out = ColSums();
  out *= 1.0 / static_cast<double>(rows_);
  return out;
}

Matrix Matrix::ColMax() const {
  GELC_CHECK(rows_ > 0);
  Matrix out = Row(0);
  for (size_t i = 1; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j)
      out.At(0, j) = std::max(out.At(0, j), At(i, j));
  return out;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

bool Matrix::IsZero() const {
  for (double x : data_)
    if (x != 0.0) return false;
  return true;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  GELC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  return m;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  GELC_CHECK(rows_ == other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.At(i, j) = At(i, j);
    for (size_t j = 0; j < other.cols_; ++j)
      out.At(i, cols_ + j) = other.At(i, j);
  }
  return out;
}

bool Matrix::AllClose(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i)
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  return true;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < rows_; ++i) {
    if (i) os << ", ";
    os << "[";
    for (size_t j = 0; j < cols_; ++j) {
      if (j) os << ", ";
      os << At(i, j);
    }
    os << "]";
  }
  os << "]";
  return os.str();
}

}  // namespace gelc
