// AVX2/FMA kernel bodies — the only translation unit in the tree built
// with -mavx2 -mfma (and the only one allowed to touch immintrin.h; the
// intrinsics-outside-tensor lint rule enforces it).
//
// Two tables are exported:
//
//   Avx2Table()  multiply-then-add vectorization. Every output cell sees
//                one _mm256_mul_pd and one _mm256_add_pd per reduction
//                step, in the same ascending order as the scalar loops —
//                two roundings per step, exactly like `t += a * b` — so
//                this tier is bit-identical to the scalar tier. Loads
//                and stores of partial sums at block boundaries are
//                exact and change nothing.
//   FastTable()  the same structure with _mm256_fmadd_pd: one rounding
//                per step, so bits may differ (opt-in via
//                GELC_SIMD=fast; tolerance-checked in simd_test).
//
// Max reductions use compare+blend ((acc < x) ? x : acc) rather than
// _mm256_max_pd, which disagrees with std::max on signed zeros and NaN
// placement; the blend reproduces std::max exactly in every tier.
#include "tensor/simd_internal.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

#include "base/aligned.h"
#include "base/logging.h"

namespace gelc {
namespace simd {
namespace internal {
namespace {

// One reduction step: acc + x*y with two roundings (kAvx2, matches the
// scalar tier bit-for-bit) or one fused rounding (kFast).
template <bool kUseFma>
inline __m256d MulAdd(__m256d acc, __m256d x, __m256d y) {
  if constexpr (kUseFma) {
    return _mm256_fmadd_pd(x, y, acc);
  } else {
    return _mm256_add_pd(acc, _mm256_mul_pd(x, y));
  }
}

// std::max(acc, x) per lane: keep acc unless acc < x (ordered, quiet).
inline __m256d MaxBlend(__m256d acc, __m256d x) {
  return _mm256_blendv_pd(acc, x, _mm256_cmp_pd(acc, x, _CMP_LT_OQ));
}

// k-panel length for the dense product: a 256-step panel touches
// 256 x 8 doubles of B per register tile (16 KiB, L1-resident) while the
// C tile stays in registers. Panel boundaries load/store exact partial
// sums, so panel size never changes bits — only locality.
constexpr size_t kMatMulKPanel = 256;

// ---------------------------------------------------------------------------
// Dense MatMul: cache-blocked, register-tiled (4 rows x 8 columns).
// ---------------------------------------------------------------------------

template <bool kUseFma>
void MatMulRowsVec(const double* a, const double* b, double* out,
                   size_t row_begin, size_t row_end, size_t inner,
                   size_t ocols) {
  GELC_DCHECK(IsVectorAligned(a));
  GELC_DCHECK(IsVectorAligned(b));
  GELC_DCHECK(IsVectorAligned(out));
  for (size_t k0 = 0; k0 < inner; k0 += kMatMulKPanel) {
    const size_t k1 = std::min(k0 + kMatMulKPanel, inner);
    size_t i = row_begin;
    // 4-row micro-kernel: 8 accumulator registers (4 rows x 8 columns),
    // two B loads and four broadcasts per k step.
    for (; i + 4 <= row_end; i += 4) {
      const double* a0 = a + (i + 0) * inner;
      const double* a1 = a + (i + 1) * inner;
      const double* a2 = a + (i + 2) * inner;
      const double* a3 = a + (i + 3) * inner;
      double* o0 = out + (i + 0) * ocols;
      double* o1 = out + (i + 1) * ocols;
      double* o2 = out + (i + 2) * ocols;
      double* o3 = out + (i + 3) * ocols;
      size_t j = 0;
      for (; j + 8 <= ocols; j += 8) {
        __m256d c00 = _mm256_loadu_pd(o0 + j);
        __m256d c01 = _mm256_loadu_pd(o0 + j + 4);
        __m256d c10 = _mm256_loadu_pd(o1 + j);
        __m256d c11 = _mm256_loadu_pd(o1 + j + 4);
        __m256d c20 = _mm256_loadu_pd(o2 + j);
        __m256d c21 = _mm256_loadu_pd(o2 + j + 4);
        __m256d c30 = _mm256_loadu_pd(o3 + j);
        __m256d c31 = _mm256_loadu_pd(o3 + j + 4);
        for (size_t k = k0; k < k1; ++k) {
          const double* brow = b + k * ocols + j;
          const __m256d b0 = _mm256_loadu_pd(brow);
          const __m256d b1 = _mm256_loadu_pd(brow + 4);
          __m256d av = _mm256_set1_pd(a0[k]);
          c00 = MulAdd<kUseFma>(c00, av, b0);
          c01 = MulAdd<kUseFma>(c01, av, b1);
          av = _mm256_set1_pd(a1[k]);
          c10 = MulAdd<kUseFma>(c10, av, b0);
          c11 = MulAdd<kUseFma>(c11, av, b1);
          av = _mm256_set1_pd(a2[k]);
          c20 = MulAdd<kUseFma>(c20, av, b0);
          c21 = MulAdd<kUseFma>(c21, av, b1);
          av = _mm256_set1_pd(a3[k]);
          c30 = MulAdd<kUseFma>(c30, av, b0);
          c31 = MulAdd<kUseFma>(c31, av, b1);
        }
        _mm256_storeu_pd(o0 + j, c00);
        _mm256_storeu_pd(o0 + j + 4, c01);
        _mm256_storeu_pd(o1 + j, c10);
        _mm256_storeu_pd(o1 + j + 4, c11);
        _mm256_storeu_pd(o2 + j, c20);
        _mm256_storeu_pd(o2 + j + 4, c21);
        _mm256_storeu_pd(o3 + j, c30);
        _mm256_storeu_pd(o3 + j + 4, c31);
      }
      for (; j + 4 <= ocols; j += 4) {
        __m256d c0 = _mm256_loadu_pd(o0 + j);
        __m256d c1 = _mm256_loadu_pd(o1 + j);
        __m256d c2 = _mm256_loadu_pd(o2 + j);
        __m256d c3 = _mm256_loadu_pd(o3 + j);
        for (size_t k = k0; k < k1; ++k) {
          const __m256d bv = _mm256_loadu_pd(b + k * ocols + j);
          c0 = MulAdd<kUseFma>(c0, _mm256_set1_pd(a0[k]), bv);
          c1 = MulAdd<kUseFma>(c1, _mm256_set1_pd(a1[k]), bv);
          c2 = MulAdd<kUseFma>(c2, _mm256_set1_pd(a2[k]), bv);
          c3 = MulAdd<kUseFma>(c3, _mm256_set1_pd(a3[k]), bv);
        }
        _mm256_storeu_pd(o0 + j, c0);
        _mm256_storeu_pd(o1 + j, c1);
        _mm256_storeu_pd(o2 + j, c2);
        _mm256_storeu_pd(o3 + j, c3);
      }
      for (; j < ocols; ++j) {
        // Scalar column tail: the same two-rounding ascending-k chain.
        double t0 = o0[j], t1 = o1[j], t2 = o2[j], t3 = o3[j];
        for (size_t k = k0; k < k1; ++k) {
          const double bkj = b[k * ocols + j];
          t0 += a0[k] * bkj;
          t1 += a1[k] * bkj;
          t2 += a2[k] * bkj;
          t3 += a3[k] * bkj;
        }
        o0[j] = t0;
        o1[j] = t1;
        o2[j] = t2;
        o3[j] = t3;
      }
    }
    // Row tail: one row at a time, same column blocking.
    for (; i < row_end; ++i) {
      const double* arow = a + i * inner;
      double* orow = out + i * ocols;
      size_t j = 0;
      for (; j + 8 <= ocols; j += 8) {
        __m256d c0 = _mm256_loadu_pd(orow + j);
        __m256d c1 = _mm256_loadu_pd(orow + j + 4);
        for (size_t k = k0; k < k1; ++k) {
          const double* brow = b + k * ocols + j;
          const __m256d av = _mm256_set1_pd(arow[k]);
          c0 = MulAdd<kUseFma>(c0, av, _mm256_loadu_pd(brow));
          c1 = MulAdd<kUseFma>(c1, av, _mm256_loadu_pd(brow + 4));
        }
        _mm256_storeu_pd(orow + j, c0);
        _mm256_storeu_pd(orow + j + 4, c1);
      }
      for (; j + 4 <= ocols; j += 4) {
        __m256d c0 = _mm256_loadu_pd(orow + j);
        for (size_t k = k0; k < k1; ++k) {
          c0 = MulAdd<kUseFma>(c0, _mm256_set1_pd(arow[k]),
                               _mm256_loadu_pd(b + k * ocols + j));
        }
        _mm256_storeu_pd(orow + j, c0);
      }
      for (; j < ocols; ++j) {
        double t = orow[j];
        for (size_t k = k0; k < k1; ++k) t += arow[k] * b[k * ocols + j];
        orow[j] = t;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SpMM: row-blocked CSR walk with column-index prefetch.
// ---------------------------------------------------------------------------

// How many nonzeros ahead to prefetch the B row for. The gather pattern
// of b rows is the only irregular access; eight entries (~one row_offsets
// cache line of indices) hides most of the miss latency at d = 16..64
// without thrashing L1 on dense rows.
constexpr size_t kSpMMPrefetchAhead = 8;

template <bool kUseFma>
void SpMMRowsVec(const size_t* row_offsets, const uint32_t* col_indices,
                 const double* values, const double* b, double* out,
                 size_t row_begin, size_t row_end, size_t d) {
  GELC_DCHECK(IsVectorAligned(b));
  GELC_DCHECK(IsVectorAligned(out));
  for (size_t i = row_begin; i < row_end; ++i) {
    double* orow = out + i * d;
    const size_t begin = row_offsets[i];
    const size_t end = row_offsets[i + 1];
    GELC_DCHECK_LE(begin, end);
    for (size_t k = begin; k < end; ++k) {
      if (k + kSpMMPrefetchAhead < end) {
        _mm_prefetch(reinterpret_cast<const char*>(
                         b + size_t{col_indices[k + kSpMMPrefetchAhead]} * d),
                     _MM_HINT_T0);
      }
      const double* brow = b + size_t{col_indices[k]} * d;
      size_t j = 0;
      if (values != nullptr) {
        const double w = values[k];
        const __m256d wv = _mm256_set1_pd(w);
        for (; j + 8 <= d; j += 8) {
          _mm256_storeu_pd(orow + j,
                           MulAdd<kUseFma>(_mm256_loadu_pd(orow + j), wv,
                                           _mm256_loadu_pd(brow + j)));
          _mm256_storeu_pd(orow + j + 4,
                           MulAdd<kUseFma>(_mm256_loadu_pd(orow + j + 4), wv,
                                           _mm256_loadu_pd(brow + j + 4)));
        }
        for (; j + 4 <= d; j += 4) {
          _mm256_storeu_pd(orow + j,
                           MulAdd<kUseFma>(_mm256_loadu_pd(orow + j), wv,
                                           _mm256_loadu_pd(brow + j)));
        }
        for (; j < d; ++j) orow[j] += w * brow[j];
      } else {
        for (; j + 8 <= d; j += 8) {
          _mm256_storeu_pd(orow + j,
                           _mm256_add_pd(_mm256_loadu_pd(orow + j),
                                         _mm256_loadu_pd(brow + j)));
          _mm256_storeu_pd(orow + j + 4,
                           _mm256_add_pd(_mm256_loadu_pd(orow + j + 4),
                                         _mm256_loadu_pd(brow + j + 4)));
        }
        for (; j + 4 <= d; j += 4) {
          _mm256_storeu_pd(orow + j,
                           _mm256_add_pd(_mm256_loadu_pd(orow + j),
                                         _mm256_loadu_pd(brow + j)));
        }
        for (; j < d; ++j) orow[j] += brow[j];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Row primitives (fused / segment / plan-executor inner loops).
// ---------------------------------------------------------------------------

void AddRowVec(double* acc, const double* x, size_t d) {
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    _mm256_storeu_pd(
        acc + j, _mm256_add_pd(_mm256_loadu_pd(acc + j),
                               _mm256_loadu_pd(x + j)));
  }
  for (; j < d; ++j) acc[j] += x[j];
}

template <bool kUseFma>
void AddScaledRowVec(double* acc, const double* x, double w, size_t d) {
  const __m256d wv = _mm256_set1_pd(w);
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    _mm256_storeu_pd(acc + j, MulAdd<kUseFma>(_mm256_loadu_pd(acc + j), wv,
                                              _mm256_loadu_pd(x + j)));
  }
  for (; j < d; ++j) acc[j] += w * x[j];
}

void MaxRowVec(double* acc, const double* x, size_t d) {
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    _mm256_storeu_pd(acc + j, MaxBlend(_mm256_loadu_pd(acc + j),
                                       _mm256_loadu_pd(x + j)));
  }
  for (; j < d; ++j) acc[j] = acc[j] < x[j] ? x[j] : acc[j];
}

void ScaleRowVec(double* acc, double s, size_t d) {
  const __m256d sv = _mm256_set1_pd(s);
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    _mm256_storeu_pd(acc + j, _mm256_mul_pd(_mm256_loadu_pd(acc + j), sv));
  }
  for (; j < d; ++j) acc[j] *= s;
}

void DivRowVec(double* acc, double s, size_t d) {
  const __m256d sv = _mm256_set1_pd(s);
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    _mm256_storeu_pd(acc + j, _mm256_div_pd(_mm256_loadu_pd(acc + j), sv));
  }
  for (; j < d; ++j) acc[j] /= s;
}

template <bool kUseFma>
void GinCombineRowVec(double* out, const double* self, double c,
                      const double* agg, size_t d) {
  const __m256d cv = _mm256_set1_pd(c);
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    // self * c + agg: same two-rounding shape as the scalar expression
    // (one multiply, one add) in the default tier.
    _mm256_storeu_pd(out + j, MulAdd<kUseFma>(_mm256_loadu_pd(agg + j), cv,
                                              _mm256_loadu_pd(self + j)));
  }
  for (; j < d; ++j) out[j] = self[j] * c + agg[j];
}

template <bool kUseFma>
void LinearAccumVec(double* acc, const double* x, const double* w, size_t d,
                    size_t out_dim) {
  size_t j = 0;
  for (; j + 8 <= out_dim; j += 8) {
    __m256d c0 = _mm256_loadu_pd(acc + j);
    __m256d c1 = _mm256_loadu_pd(acc + j + 4);
    for (size_t c = 0; c < d; ++c) {
      const __m256d xv = _mm256_set1_pd(x[c]);
      const double* wrow = w + c * out_dim + j;
      c0 = MulAdd<kUseFma>(c0, xv, _mm256_loadu_pd(wrow));
      c1 = MulAdd<kUseFma>(c1, xv, _mm256_loadu_pd(wrow + 4));
    }
    _mm256_storeu_pd(acc + j, c0);
    _mm256_storeu_pd(acc + j + 4, c1);
  }
  for (; j + 4 <= out_dim; j += 4) {
    __m256d c0 = _mm256_loadu_pd(acc + j);
    for (size_t c = 0; c < d; ++c) {
      c0 = MulAdd<kUseFma>(c0, _mm256_set1_pd(x[c]),
                           _mm256_loadu_pd(w + c * out_dim + j));
    }
    _mm256_storeu_pd(acc + j, c0);
  }
  for (; j < out_dim; ++j) {
    double t = acc[j];
    for (size_t c = 0; c < d; ++c) t += x[c] * w[c * out_dim + j];
    acc[j] = t;
  }
}

void ScaleRowCopyVec(double* out, const double* x, double s, size_t d) {
  const __m256d sv = _mm256_set1_pd(s);
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    _mm256_storeu_pd(out + j, _mm256_mul_pd(sv, _mm256_loadu_pd(x + j)));
  }
  for (; j < d; ++j) out[j] = s * x[j];
}

void AddRowsToVec(double* out, const double* a, const double* b, size_t d) {
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    _mm256_storeu_pd(out + j, _mm256_add_pd(_mm256_loadu_pd(a + j),
                                            _mm256_loadu_pd(b + j)));
  }
  for (; j < d; ++j) out[j] = a[j] + b[j];
}

void MulRowsToVec(double* out, const double* a, const double* b, size_t d) {
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    _mm256_storeu_pd(out + j, _mm256_mul_pd(_mm256_loadu_pd(a + j),
                                            _mm256_loadu_pd(b + j)));
  }
  for (; j < d; ++j) out[j] = a[j] * b[j];
}

constexpr KernelTable kAvx2Table = {
    MatMulRowsVec<false>, SpMMRowsVec<false>,     AddRowVec,
    AddScaledRowVec<false>, MaxRowVec,            ScaleRowVec,
    DivRowVec,            GinCombineRowVec<false>, LinearAccumVec<false>,
    ScaleRowCopyVec,      AddRowsToVec,           MulRowsToVec,
};

constexpr KernelTable kFastTable = {
    MatMulRowsVec<true>,  SpMMRowsVec<true>,      AddRowVec,
    AddScaledRowVec<true>, MaxRowVec,             ScaleRowVec,
    DivRowVec,            GinCombineRowVec<true>, LinearAccumVec<true>,
    ScaleRowCopyVec,      AddRowsToVec,           MulRowsToVec,
};

}  // namespace

const KernelTable* Avx2Table() { return &kAvx2Table; }
const KernelTable* FastTable() { return &kFastTable; }

}  // namespace internal
}  // namespace simd
}  // namespace gelc

#else  // !(defined(__AVX2__) && defined(__FMA__))

namespace gelc {
namespace simd {
namespace internal {

// Built without AVX2/FMA support (non-x86 target or missing -mavx2
// -mfma): no vector tables; the dispatcher pins the scalar tier.
const KernelTable* Avx2Table() { return nullptr; }
const KernelTable* FastTable() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace gelc

#endif
