// Sparse matrices in compressed-sparse-row form and the SpMM kernel.
//
// The paper's MPNN(Ω,Θ) semantics only ever aggregates over each vertex's
// neighbor list, so the faithful implementation of A·F is a sparse product
// over the m arcs, not a dense n x n one: SpMM costs O((n+m)·d) where the
// dense path costs O(n²·d). CsrMatrix is the storage format; SpMM is the
// kernel. Graph-side construction (adjacency, transpose, GCN-normalized)
// lives in graph/csr.h; this header is graph-agnostic so autodiff can
// depend on it without a dependency cycle.
#ifndef GELC_TENSOR_SPARSE_H_
#define GELC_TENSOR_SPARSE_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace gelc {

/// A rows x cols sparse matrix in CSR form. `row_offsets` has rows+1
/// entries; row i's nonzeros are col_indices[row_offsets[i] ..
/// row_offsets[i+1]) with matching `values`. An empty `values` vector
/// means every stored entry is 1.0 (the unweighted-adjacency case), which
/// skips a multiply per nonzero in the kernel. Column indices within a
/// row must be strictly ascending: SpMM accumulates in index order, so a
/// sorted CSR reproduces the dense k-ascending loop bit-for-bit.
struct CsrMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<size_t> row_offsets;    // rows + 1 entries
  std::vector<uint32_t> col_indices;  // nnz entries, ascending per row
  std::vector<double> values;         // nnz entries, or empty (all 1.0)

  size_t nnz() const { return col_indices.size(); }
  bool weighted() const { return !values.empty(); }

  /// Builds from a dense matrix, keeping entries with x != 0.
  static CsrMatrix FromDense(const Matrix& m);
  /// Densifies (tests and diagnostics only; defeats the point otherwise).
  Matrix ToDense() const;
  /// The transpose, also in sorted CSR form.
  CsrMatrix Transposed() const;
};

/// Sparse-times-dense product a * b into a dense (a.rows x b.cols) matrix.
/// Row-partitioned across the global thread pool (base/parallel.h): each
/// output row is owned by exactly one shard and accumulated in column
/// order, so the result is bit-identical for any thread count and
/// bit-identical to the dense Matrix::MatMul of ToDense() against b.
Matrix SpMM(const CsrMatrix& a, const Matrix& b);

/// SpMM computed into *out, reusing out's storage when the shape already
/// matches (no allocation inside training loops). `out` must not alias b.
void SpMMInto(const CsrMatrix& a, const Matrix& b, Matrix* out);

}  // namespace gelc

#endif  // GELC_TENSOR_SPARSE_H_
