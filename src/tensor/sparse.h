// Sparse matrices in compressed-sparse-row form and the SpMM kernel.
//
// The paper's MPNN(Ω,Θ) semantics only ever aggregates over each vertex's
// neighbor list, so the faithful implementation of A·F is a sparse product
// over the m arcs, not a dense n x n one: SpMM costs O((n+m)·d) where the
// dense path costs O(n²·d). CsrMatrix is the storage format; SpMM is the
// kernel. Graph-side construction (adjacency, transpose, GCN-normalized)
// lives in graph/csr.h; this header is graph-agnostic so autodiff can
// depend on it without a dependency cycle.
#ifndef GELC_TENSOR_SPARSE_H_
#define GELC_TENSOR_SPARSE_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace gelc {

/// A rows x cols sparse matrix in CSR form. `row_offsets` has rows+1
/// entries; row i's nonzeros are col_indices[row_offsets[i] ..
/// row_offsets[i+1]) with matching `values`. An empty `values` vector
/// means every stored entry is 1.0 (the unweighted-adjacency case), which
/// skips a multiply per nonzero in the kernel. Column indices within a
/// row must be strictly ascending: SpMM accumulates in index order, so a
/// sorted CSR reproduces the dense k-ascending loop bit-for-bit.
struct CsrMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<size_t> row_offsets;    // rows + 1 entries
  std::vector<uint32_t> col_indices;  // nnz entries, ascending per row
  std::vector<double> values;         // nnz entries, or empty (all 1.0)

  size_t nnz() const { return col_indices.size(); }
  bool weighted() const { return !values.empty(); }

  /// Builds from a dense matrix, keeping entries with x != 0.
  static CsrMatrix FromDense(const Matrix& m);
  /// Densifies (tests and diagnostics only; defeats the point otherwise).
  Matrix ToDense() const;
  /// The transpose, also in sorted CSR form.
  CsrMatrix Transposed() const;
};

/// Sparse-times-dense product a * b into a dense (a.rows x b.cols) matrix.
/// Row-partitioned across the global thread pool (base/parallel.h): each
/// output row is owned by exactly one shard and accumulated in column
/// order, so the result is bit-identical for any thread count and
/// bit-identical to the dense Matrix::MatMul of ToDense() against b.
Matrix SpMM(const CsrMatrix& a, const Matrix& b);

/// SpMM computed into *out, reusing out's storage when the shape already
/// matches (no allocation inside training loops). `out` must not alias b.
void SpMMInto(const CsrMatrix& a, const Matrix& b, Matrix* out);

/// Per-row edits pending against an unweighted base CSR (the delta half
/// of the streaming delta-CSR, DESIGN.md §12). For each row v, `add[v]`
/// lists column indices to insert (ascending, disjoint from the base
/// row) and `remove[v]` lists columns to drop (ascending, each present
/// in the base row). Rows with both lists empty are *clean*: readers
/// iterate the base storage untouched, so a mostly-clean delta costs
/// nothing on the hot path.
struct CsrDeltaRows {
  size_t rows = 0;
  std::vector<std::vector<uint32_t>> add;
  std::vector<std::vector<uint32_t>> remove;
  size_t add_nnz = 0;
  size_t remove_nnz = 0;

  /// Total pending edits (inserts + deletes) awaiting compaction.
  size_t pending() const { return add_nnz + remove_nnz; }
  bool empty() const { return pending() == 0; }
  bool RowDirty(size_t v) const {
    return !add[v].empty() || !remove[v].empty();
  }
  /// Sizes the per-row edit lists for an n-row base (idempotent).
  void Resize(size_t n) {
    rows = n;
    add.resize(n);
    remove.resize(n);
  }
  void Clear() {
    for (auto& r : add) r.clear();
    for (auto& r : remove) r.clear();
    add_nnz = 0;
    remove_nnz = 0;
  }
};

/// Materializes row v of base+delta into *out (ascending column order):
/// the base row minus `remove[v]` merged with `add[v]`. Exactly the
/// column sequence a compacted CSR would store for that row.
void MergeDeltaRow(const CsrMatrix& base, const CsrDeltaRows& delta,
                   size_t v, std::vector<uint32_t>* out);

/// Compacts base+delta into a fresh sorted CSR. `base` must be
/// unweighted (the delta protocol has no per-edit values).
CsrMatrix MergeDeltaRows(const CsrMatrix& base, const CsrDeltaRows& delta);

/// SpMM over the *logical* matrix base+delta without compacting it:
/// clean row runs execute on the base storage via the dispatched kernel;
/// each dirty row is merged into a scratch buffer and pushed through the
/// same kernel. Bit-identical to SpMM(MergeDeltaRows(base, delta), b) at
/// any thread count and in every SIMD tier (including fast/FMA, which
/// sees the identical per-row column sequence). `delta` may be null or
/// empty, in which case this is exactly SpMMInto(base, b, out).
void SpMMDeltaInto(const CsrMatrix& base, const CsrDeltaRows* delta,
                   const Matrix& b, Matrix* out);
Matrix SpMMDelta(const CsrMatrix& base, const CsrDeltaRows* delta,
                 const Matrix& b);

}  // namespace gelc

#endif  // GELC_TENSOR_SPARSE_H_
