#include "tensor/fused.h"

#include <algorithm>
#include <limits>

#include "base/aligned.h"
#include "base/logging.h"
#include "base/parallel.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "obs/trace.h"
#include "tensor/simd.h"

namespace gelc {

namespace {

// Same serial/shard thresholds as MatMul and SpMM (matrix.cc, sparse.cc):
// flop count below which the fused pass stays on the calling thread, and
// the target flops per shard when it fans out.
constexpr size_t kFusedSerialWork = size_t{1} << 16;
constexpr size_t kFusedShardWork = size_t{1} << 15;

// Aggregates csr row v of `values` into acc (theta's init/accumulate/
// finalize fold over neighbors in ascending adjacency order — the same
// order theta sees, because the interpreter enumerates the bound vertex
// ascending and CSR column indices are ascending). acc has the aggregate's
// output dimension: 1 for kCount, values.cols() otherwise.
inline void AggregateRow(const CsrMatrix& csr, size_t v, const Matrix& values,
                         FusedAgg agg, bool broadcast, bool gather_source,
                         double* acc) {
  const size_t d = values.cols();
  const double* vdata = values.data().data();
  const size_t begin = csr.row_offsets[v];
  const size_t end = csr.row_offsets[v + 1];
  switch (agg) {
    case FusedAgg::kSum:
    case FusedAgg::kMean: {
      std::fill(acc, acc + d, 0.0);
      for (size_t k = begin; k < end; ++k) {
        size_t u = broadcast ? 0 : gather_source ? v : csr.col_indices[k];
        const double* x = vdata + u * d;
        if (csr.weighted()) {
          simd::AddScaledRow(acc, x, csr.values[k], d);
        } else {
          simd::AddRow(acc, x, d);
        }
      }
      if (agg == FusedAgg::kMean && end != begin) {
        // Divide by the count (not multiply by the reciprocal): theta's
        // mean finalization divides, and the bits differ.
        simd::DivRow(acc, static_cast<double>(end - begin), d);
      }
      return;
    }
    case FusedAgg::kMax: {
      std::fill(acc, acc + d, -std::numeric_limits<double>::infinity());
      for (size_t k = begin; k < end; ++k) {
        size_t u = broadcast ? 0 : gather_source ? v : csr.col_indices[k];
        simd::MaxRow(acc, vdata + u * d, d);
      }
      // Empty bags finalize to zeros, exactly like theta::Max.
      if (end == begin) std::fill(acc, acc + d, 0.0);
      return;
    }
    case FusedAgg::kCount: {
      acc[0] = 0.0;
      for (size_t k = begin; k < end; ++k) acc[0] += 1.0;
      return;
    }
  }
}

// Aggregate output dimension given the input value dimension.
inline size_t AggOutDim(FusedAgg agg, size_t d) {
  return agg == FusedAgg::kCount ? 1 : d;
}

}  // namespace

void FusedLayerInto(size_t n, const std::vector<FusedLayerArg>& args,
                    const Matrix* bias, Activation act, Matrix* out) {
  GELC_CHECK(out != nullptr && !args.empty());
  const size_t out_dim = args[0].w->cols();
  size_t scratch_dim = 0;
  size_t row_work = 0;
  for (const FusedLayerArg& a : args) {
    GELC_CHECK(a.values != nullptr && a.w != nullptr);
    GELC_CHECK(a.w->cols() == out_dim);
    if (a.csr == nullptr) {
      GELC_CHECK(a.w->rows() == a.values->cols());
    } else {
      GELC_CHECK(a.w->rows() == AggOutDim(a.agg, a.values->cols()));
      GELC_CHECK(a.csr->rows == n);
      scratch_dim = std::max(scratch_dim, a.w->rows());
      if (a.csr->rows > 0) {
        row_work += (a.csr->nnz() / a.csr->rows + 1) * a.values->cols();
      }
    }
    row_work += a.w->rows() * out_dim;
  }
  // Size check includes the data vector: a moved-from Matrix keeps stale
  // rows/cols over an empty buffer.
  if (out->rows() != n || out->cols() != out_dim ||
      out->data().size() != n * out_dim) {
    *out = Matrix(n, out_dim);
  }
  const double* bias_row = bias == nullptr ? nullptr : bias->data().data();
  if (bias != nullptr) GELC_CHECK(bias->cols() == out_dim);
  double* odata = out->mutable_data().data();

  auto row_range = [&args, bias_row, act, odata, out_dim, scratch_dim](
                       size_t row_begin, size_t row_end) {
    // Per-shard scratch: the aggregated input row and the per-argument
    // partial sum. Rows are disjoint output slots, so any shard schedule
    // produces the same bits.
    AlignedVector agg_row(scratch_dim);
    AlignedVector partial(out_dim);
    for (size_t v = row_begin; v < row_end; ++v) {
      double* orow = odata + v * out_dim;
      for (size_t j = 0; j < out_dim; ++j) orow[j] = 0.0;
      for (size_t i = 0; i < args.size(); ++i) {
        const FusedLayerArg& a = args[i];
        // The first argument accumulates straight into the (zeroed)
        // output row; later arguments fold into `partial` and add in one
        // left-to-right step, matching `p_0 + p_1 + ...` elementwise
        // addition and omega's linear closure bit-for-bit.
        double* acc = i == 0 ? orow : partial.data();
        if (i != 0) {
          for (size_t j = 0; j < out_dim; ++j) acc[j] = 0.0;
        }
        const double* x;
        if (a.csr != nullptr) {
          AggregateRow(*a.csr, v, *a.values, a.agg, a.broadcast,
                       a.gather_source, agg_row.data());
          x = agg_row.data();
        } else {
          x = a.values->data().data() +
              (a.broadcast ? 0 : v) * a.values->cols();
        }
        const size_t d = a.w->rows();
        // Ascending-component fold through the weight — the same addition
        // chain per output cell as MatMul's i-k-j loop.
        simd::LinearAccum(acc, x, a.w->data().data(), d, out_dim);
        if (i != 0) simd::AddRow(orow, partial.data(), out_dim);
      }
      if (bias_row != nullptr) simd::AddRow(orow, bias_row, out_dim);
      for (size_t j = 0; j < out_dim; ++j) {
        orow[j] = ApplyActivation(act, orow[j]);
      }
    }
  };

  static obs::Counter* calls = obs::GetCounter("fused.layer_calls");
  static obs::Counter* rows = obs::GetCounter("fused.layer_rows");
  calls->Increment();
  rows->Add(n);
  simd::CountDispatch();
  GELC_TRACE_SPAN("fused_layer", {{"rows", n},
                                  {"args", args.size()},
                                  {"out_dim", out_dim}});
  GELC_OBS_TIME("fused_layer");
  row_work = std::max<size_t>(row_work, 1);
  const size_t work = n * row_work;
  if (work < kFusedSerialWork || n == 0) {
    static obs::Counter* serial = obs::GetCounter("fused.serial_dispatch");
    serial->Increment();
    row_range(0, n);
    return;
  }
  static obs::Counter* parallel = obs::GetCounter("fused.parallel_dispatch");
  parallel->Increment();
  const size_t grain = std::max<size_t>(1, kFusedShardWork / row_work);
  ParallelFor(0, n, grain, row_range);
}

void NeighborAggregateInto(const CsrMatrix& csr, const Matrix& values,
                           FusedAgg agg, bool broadcast, bool gather_source,
                           Matrix* out) {
  GELC_CHECK(out != nullptr);
  const size_t n = csr.rows;
  const size_t d_out = AggOutDim(agg, values.cols());
  if (out->rows() != n || out->cols() != d_out ||
      out->data().size() != n * d_out) {
    *out = Matrix(n, d_out);
  }
  double* odata = out->mutable_data().data();
  auto row_range = [&csr, &values, agg, broadcast, gather_source, odata,
                    d_out](size_t row_begin, size_t row_end) {
    for (size_t v = row_begin; v < row_end; ++v) {
      AggregateRow(csr, v, values, agg, broadcast, gather_source,
                   odata + v * d_out);
    }
  };
  static obs::Counter* calls = obs::GetCounter("fused.neighbor_agg_calls");
  calls->Increment();
  simd::CountDispatch();
  const size_t row_work =
      std::max<size_t>(1, n == 0 ? 1 : (csr.nnz() / std::max<size_t>(n, 1) +
                                        1) * values.cols());
  const size_t work = n * row_work;
  if (work < kFusedSerialWork || n == 0) {
    row_range(0, n);
    return;
  }
  const size_t grain = std::max<size_t>(1, kFusedShardWork / row_work);
  ParallelFor(0, n, grain, row_range);
}

void FusedGinCombineInto(const CsrMatrix& csr, const Matrix& values, double c,
                         Matrix* out) {
  GELC_CHECK(out != nullptr && out != &values);
  GELC_CHECK(csr.rows == values.rows() && csr.cols == values.rows());
  const size_t n = csr.rows;
  const size_t d = values.cols();
  if (out->rows() != n || out->cols() != d ||
      out->data().size() != n * d) {
    *out = Matrix(n, d);
  }
  const double* vdata = values.data().data();
  double* odata = out->mutable_data().data();
  auto row_range = [&csr, vdata, odata, c, d](size_t row_begin,
                                              size_t row_end) {
    // The neighbor sum folds into scratch first (not into the output row):
    // (c*x) + (n_1 + n_2 + ...) is the reference association, and IEEE
    // addition is not associative.
    AlignedVector agg(d);
    for (size_t v = row_begin; v < row_end; ++v) {
      std::fill(agg.begin(), agg.end(), 0.0);
      for (size_t k = csr.row_offsets[v]; k < csr.row_offsets[v + 1]; ++k) {
        simd::AddRow(agg.data(), vdata + size_t{csr.col_indices[k]} * d, d);
      }
      simd::GinCombineRow(odata + v * d, vdata + v * d, c, agg.data(), d);
    }
  };
  static obs::Counter* calls = obs::GetCounter("fused.gin_combine_calls");
  calls->Increment();
  simd::CountDispatch();
  GELC_TRACE_SPAN("fused_gin_combine", {{"rows", n}, {"d", d}});
  GELC_OBS_TIME("fused_gin_combine");
  const size_t row_work =
      std::max<size_t>(1, (n == 0 ? 0 : csr.nnz() / n + 1) * d);
  const size_t work = n * row_work;
  if (work < kFusedSerialWork || n == 0) {
    row_range(0, n);
    return;
  }
  const size_t grain = std::max<size_t>(1, kFusedShardWork / row_work);
  ParallelFor(0, n, grain, row_range);
}

Matrix PoolRows(const Matrix& values, FusedAgg agg, size_t count,
                bool broadcast) {
  const size_t d = values.cols();
  const size_t d_out = AggOutDim(agg, d);
  Matrix out(1, d_out);
  double* acc = out.mutable_data().data();
  const double* vdata = values.data().data();
  switch (agg) {
    case FusedAgg::kSum:
    case FusedAgg::kMean: {
      for (size_t r = 0; r < count; ++r) {
        simd::AddRow(acc, vdata + (broadcast ? 0 : r) * d, d);
      }
      if (agg == FusedAgg::kMean && count != 0) {
        simd::DivRow(acc, static_cast<double>(count), d);
      }
      break;
    }
    case FusedAgg::kMax: {
      std::fill(acc, acc + d, -std::numeric_limits<double>::infinity());
      for (size_t r = 0; r < count; ++r) {
        simd::MaxRow(acc, vdata + (broadcast ? 0 : r) * d, d);
      }
      if (count == 0) std::fill(acc, acc + d, 0.0);
      break;
    }
    case FusedAgg::kCount: {
      acc[0] = 0.0;
      for (size_t r = 0; r < count; ++r) acc[0] += 1.0;
      break;
    }
  }
  return out;
}

}  // namespace gelc
