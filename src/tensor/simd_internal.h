// Internal glue between the SIMD dispatch layer (simd.cc) and the
// AVX2/FMA translation unit (simd_avx2.cc). Not for use outside
// src/tensor/simd*.
#ifndef GELC_TENSOR_SIMD_INTERNAL_H_
#define GELC_TENSOR_SIMD_INTERNAL_H_

#include <cstddef>
#include <cstdint>

namespace gelc {
namespace simd {
namespace internal {

/// One implementation of every dispatched kernel (see simd.h for the
/// per-kernel contracts).
struct KernelTable {
  void (*matmul_rows)(const double* a, const double* b, double* out,
                      size_t row_begin, size_t row_end, size_t inner,
                      size_t ocols);
  void (*spmm_rows)(const size_t* row_offsets, const uint32_t* col_indices,
                    const double* values, const double* b, double* out,
                    size_t row_begin, size_t row_end, size_t d);
  void (*add_row)(double* acc, const double* x, size_t d);
  void (*add_scaled_row)(double* acc, const double* x, double w, size_t d);
  void (*max_row)(double* acc, const double* x, size_t d);
  void (*scale_row)(double* acc, double s, size_t d);
  void (*div_row)(double* acc, double s, size_t d);
  void (*gin_combine_row)(double* out, const double* self, double c,
                          const double* agg, size_t d);
  void (*linear_accum)(double* acc, const double* x, const double* w,
                       size_t d, size_t out_dim);
  void (*scale_row_copy)(double* out, const double* x, double s, size_t d);
  void (*add_rows_to)(double* out, const double* a, const double* b,
                      size_t d);
  void (*mul_rows_to)(double* out, const double* a, const double* b,
                      size_t d);
};

/// The AVX2 (multiply-then-add, bit-identical to scalar) and FMA (fast)
/// tables, defined in simd_avx2.cc. Null when that TU was compiled
/// without AVX2/FMA support (non-x86 target or a compiler without
/// -mavx2): the dispatcher then pins the scalar tier.
const KernelTable* Avx2Table();
const KernelTable* FastTable();

}  // namespace internal
}  // namespace simd
}  // namespace gelc

#endif  // GELC_TENSOR_SIMD_INTERNAL_H_
