#include "tensor/linalg.h"

#include <cmath>

namespace gelc {

Result<Matrix> SolveLinearSystem(Matrix a, Matrix b) {
  size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("SolveLinearSystem: A must be square");
  }
  if (b.rows() != n) {
    return Status::InvalidArgument("SolveLinearSystem: B row mismatch");
  }
  size_t k = b.cols();
  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a.At(r, col)) > std::fabs(a.At(pivot, col))) pivot = r;
    }
    if (std::fabs(a.At(pivot, col)) < 1e-12) {
      return Status::InvalidArgument(
          "SolveLinearSystem: matrix is singular");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(a.At(col, j), a.At(pivot, j));
      for (size_t j = 0; j < k; ++j) std::swap(b.At(col, j), b.At(pivot, j));
    }
    double inv = 1.0 / a.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      double factor = a.At(r, col) * inv;
      if (factor == 0.0) continue;
      for (size_t j = col; j < n; ++j) a.At(r, j) -= factor * a.At(col, j);
      for (size_t j = 0; j < k; ++j) b.At(r, j) -= factor * b.At(col, j);
    }
  }
  // Back substitution.
  Matrix x(n, k);
  for (size_t row = n; row-- > 0;) {
    for (size_t j = 0; j < k; ++j) {
      double s = b.At(row, j);
      for (size_t c = row + 1; c < n; ++c) s -= a.At(row, c) * x.At(c, j);
      x.At(row, j) = s / a.At(row, row);
    }
  }
  return x;
}

Result<Matrix> RidgeRegression(const Matrix& x, const Matrix& y,
                               double lambda) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("RidgeRegression: row mismatch");
  }
  if (lambda <= 0.0) {
    return Status::InvalidArgument("RidgeRegression: lambda must be > 0");
  }
  Matrix xt = x.Transposed();
  Matrix gram = xt.MatMul(x);
  for (size_t i = 0; i < gram.rows(); ++i) gram.At(i, i) += lambda;
  return SolveLinearSystem(std::move(gram), xt.MatMul(y));
}

}  // namespace gelc
