#include "gnn/mlp.h"

#include <utility>

#include "base/logging.h"

namespace gelc {

Mlp::Mlp(std::vector<MlpLayer> layers) : layers_(std::move(layers)) {
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    GELC_CHECK(layers_[i].w.cols() == layers_[i + 1].w.rows());
  }
  for (const MlpLayer& l : layers_) {
    GELC_CHECK(l.b.rows() == 1 && l.b.cols() == l.w.cols());
  }
}

Result<Mlp> Mlp::Random(const std::vector<size_t>& dims, Activation hidden_act,
                        Activation out_act, double weight_scale, Rng* rng) {
  if (dims.size() < 2) {
    return Status::InvalidArgument("MLP needs at least in and out widths");
  }
  std::vector<MlpLayer> layers;
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    MlpLayer l;
    l.w = Matrix::RandomGaussian(dims[i], dims[i + 1], weight_scale, rng);
    l.b = Matrix::RandomGaussian(1, dims[i + 1], weight_scale, rng);
    l.act = (i + 2 == dims.size()) ? out_act : hidden_act;
    layers.push_back(std::move(l));
  }
  return Mlp(std::move(layers));
}

Matrix Mlp::Forward(const Matrix& x) const {
  if (layers_.empty()) return x;
  // Ping-pong between h and pre so each layer reuses the other buffer's
  // storage (MatMulInto) instead of allocating three temporaries; bias and
  // activation are applied in place, in the same order as
  // AddRowBroadcast-then-ApplyActivation.
  Matrix h = x;
  Matrix pre;
  for (const MlpLayer& l : layers_) {
    h.MatMulInto(l.w, &pre);
    for (size_t i = 0; i < pre.rows(); ++i)
      for (size_t j = 0; j < pre.cols(); ++j)
        pre.At(i, j) = ApplyActivation(l.act, pre.At(i, j) + l.b.At(0, j));
    std::swap(h, pre);
  }
  return h;
}

size_t Mlp::in_dim() const {
  GELC_CHECK(!layers_.empty());
  return layers_.front().w.rows();
}

size_t Mlp::out_dim() const {
  GELC_CHECK(!layers_.empty());
  return layers_.back().w.cols();
}

}  // namespace gelc
