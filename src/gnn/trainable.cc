#include "gnn/trainable.h"

#include <algorithm>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "obs/trace.h"

namespace gelc {

namespace {

// Shared per-epoch instrumentation for the three trainers: epoch count,
// a last-loss gauge, and (under tracing) one span per epoch.
void RecordEpoch(double loss) {
  static obs::Counter* epochs = obs::GetCounter("train.epochs");
  static obs::Gauge* loss_gauge = obs::GetGauge("train.loss");
  epochs->Increment();
  loss_gauge->Set(loss);
}

}  // namespace

TrainableGnn::TrainableGnn(const Config& config, Rng* rng)
    : config_(config) {
  for (size_t i = 0; i + 1 < config.widths.size(); ++i) {
    size_t din = config.widths[i];
    size_t dout = config.widths[i + 1];
    auto layer = std::make_unique<Layer>(Layer{
        Parameter(Matrix::RandomGaussian(din, dout, config.init_scale, rng)),
        Parameter(Matrix::RandomGaussian(din, dout, config.init_scale, rng)),
        Parameter(Matrix::RandomGaussian(1, dout, config.init_scale, rng))});
    layers_.push_back(std::move(layer));
  }
  size_t hidden = config.widths.back();
  head_w_ = std::make_unique<Parameter>(
      Matrix::RandomGaussian(hidden, config.num_outputs, config.init_scale,
                             rng));
  head_b_ = std::make_unique<Parameter>(
      Matrix::RandomGaussian(1, config.num_outputs, config.init_scale, rng));
  pair_head_w_ = std::make_unique<Parameter>(Matrix::RandomGaussian(
      3 * hidden, config.num_outputs, config.init_scale, rng));
  pair_head_b_ = std::make_unique<Parameter>(
      Matrix::RandomGaussian(1, config.num_outputs, config.init_scale, rng));
}

Result<std::unique_ptr<TrainableGnn>> TrainableGnn::Create(
    const Config& config) {
  if (config.widths.size() < 2) {
    return Status::InvalidArgument("need input and at least one hidden width");
  }
  if (config.num_outputs == 0) {
    return Status::InvalidArgument("num_outputs must be positive");
  }
  Rng rng(config.seed);
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into unique_ptr
  return std::unique_ptr<TrainableGnn>(new TrainableGnn(config, &rng));
}

ValueId TrainableGnn::VertexEmbeddings(Tape* tape, const Graph& g) const {
  // The graph's cached CSR handle is shared by every tape built over g
  // during training — no per-step adjacency materialization at all. The
  // epoch loops hoist this call and use the CSR overload directly so not
  // even the cache lookup repeats per epoch.
  return VertexEmbeddings(tape, g, g.Csr());
}

ValueId TrainableGnn::VertexEmbeddings(Tape* tape, const Graph& g,
                                       const CsrGraph& csr) const {
  GELC_CHECK(g.feature_dim() == config_.widths.front());
  GELC_CHECK(csr.num_vertices() == g.num_vertices());
  // Trainers hoist the CSR view across whole epochs; a concurrent
  // streaming mutation would silently train on stale structure, so pin
  // the snapshot's epoch against the graph's (debug builds).
  csr.CheckFreshFor(g);
  ValueId f = tape->Input(g.features());
  for (const auto& layer : layers_) {
    ValueId self = tape->MatMul(f, tape->Param(&layer->w1));
    ValueId agg = tape->SparseMatMul(&csr.adjacency(), &csr.transpose(), f);
    ValueId nbr = tape->MatMul(agg, tape->Param(&layer->w2));
    ValueId pre = tape->AddRowBroadcast(tape->Add(self, nbr),
                                        tape->Param(&layer->b));
    f = tape->Act(config_.act, pre);
  }
  return f;
}

ValueId TrainableGnn::VertexEmbeddings(Tape* tape,
                                       const GraphBatch& batch) const {
  GELC_CHECK(batch.feature_dim() == config_.widths.front());
  // Same layer structure as the single-graph path over the
  // block-diagonal operators. Message passing cannot cross a block
  // boundary, so each block of the result is bit-identical to the
  // standalone forward; the segmented tape ops make the *backward* pass
  // accumulate layer-parameter gradients one block at a time, matching
  // per-graph tapes bit-for-bit as well.
  const std::vector<size_t>& offsets = batch.vertex_offsets();
  ValueId f = tape->Input(batch.features());
  for (const auto& layer : layers_) {
    ValueId self = tape->MatMulSegments(f, tape->Param(&layer->w1), offsets);
    ValueId agg =
        tape->SparseMatMul(&batch.adjacency(), &batch.transpose(), f);
    ValueId nbr = tape->MatMulSegments(agg, tape->Param(&layer->w2), offsets);
    ValueId pre = tape->AddRowBroadcastSegments(
        tape->Add(self, nbr), tape->Param(&layer->b), offsets);
    f = tape->Act(config_.act, pre);
  }
  return f;
}

ValueId TrainableGnn::NodeLogits(Tape* tape, const Graph& g) const {
  return NodeLogits(tape, g, g.Csr());
}

ValueId TrainableGnn::NodeLogits(Tape* tape, const Graph& g,
                                 const CsrGraph& csr) const {
  ValueId z = VertexEmbeddings(tape, g, csr);
  return tape->AddRowBroadcast(tape->MatMul(z, tape->Param(head_w_.get())),
                               tape->Param(head_b_.get()));
}

ValueId TrainableGnn::GraphLogits(Tape* tape, const Graph& g) const {
  ValueId z = VertexEmbeddings(tape, g);
  ValueId pooled = tape->ColSums(z);
  return tape->AddRowBroadcast(
      tape->MatMul(pooled, tape->Param(head_w_.get())),
      tape->Param(head_b_.get()));
}

ValueId TrainableGnn::GraphLogits(Tape* tape, const GraphBatch& batch) const {
  GELC_TRACE_SPAN("gnn.batch", {{"graphs", batch.num_graphs()},
                                {"vertices", batch.num_vertices()},
                                {"arcs", batch.num_arcs()}});
  ValueId z = VertexEmbeddings(tape, batch);
  // Row s of pooled carries the same bits as ColSums over block s alone.
  // The head is row-local per pooled row (one row per graph), so the
  // plain ops already accumulate head gradients in per-graph order.
  ValueId pooled = tape->SegmentSum(z, batch.vertex_offsets());
  return tape->AddRowBroadcast(
      tape->MatMul(pooled, tape->Param(head_w_.get())),
      tape->Param(head_b_.get()));
}

ValueId TrainableGnn::PairLogits(
    Tape* tape, const Graph& g,
    const std::vector<std::pair<VertexId, VertexId>>& pairs) const {
  return PairLogits(tape, g, g.Csr(), pairs);
}

ValueId TrainableGnn::PairLogits(
    Tape* tape, const Graph& g, const CsrGraph& csr,
    const std::vector<std::pair<VertexId, VertexId>>& pairs) const {
  ValueId z = VertexEmbeddings(tape, g, csr);
  std::vector<size_t> us, vs;
  us.reserve(pairs.size());
  vs.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    us.push_back(u);
    vs.push_back(v);
  }
  ValueId zu = tape->GatherRows(z, us);
  ValueId zv = tape->GatherRows(z, vs);
  ValueId prod = tape->Hadamard(zu, zv);
  ValueId feats = tape->ConcatCols(tape->ConcatCols(zu, zv), prod);
  return tape->AddRowBroadcast(
      tape->MatMul(feats, tape->Param(pair_head_w_.get())),
      tape->Param(pair_head_b_.get()));
}

std::vector<Parameter*> TrainableGnn::Parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    out.push_back(&layer->w1);
    out.push_back(&layer->w2);
    out.push_back(&layer->b);
  }
  out.push_back(head_w_.get());
  out.push_back(head_b_.get());
  out.push_back(pair_head_w_.get());
  out.push_back(pair_head_b_.get());
  return out;
}

namespace {

std::vector<size_t> WidthsFor(size_t input_dim,
                              const std::vector<size_t>& hidden) {
  std::vector<size_t> widths = {input_dim};
  widths.insert(widths.end(), hidden.begin(), hidden.end());
  return widths;
}

double Accuracy(const std::vector<size_t>& pred,
                const std::vector<size_t>& truth) {
  GELC_CHECK(pred.size() == truth.size());
  if (pred.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == truth[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

}  // namespace

Result<TrainReport> TrainNodeClassifier(const NodeDataset& data,
                                        const TrainOptions& options) {
  TrainableGnn::Config cfg;
  cfg.widths = WidthsFor(data.graph.feature_dim(), options.hidden_widths);
  cfg.num_outputs = data.num_classes;
  cfg.seed = options.seed;
  GELC_ASSIGN_OR_RETURN(std::unique_ptr<TrainableGnn> model,
                        TrainableGnn::Create(cfg));
  Adam opt(options.learning_rate);
  for (Parameter* p : model->Parameters()) opt.Register(p);

  std::vector<size_t> train_labels;
  for (size_t v : data.train_nodes) train_labels.push_back(data.labels[v]);

  // One CSR lookup for the whole run: every epoch tape (and the eval
  // tape) reuses this view instead of re-querying Graph::Csr().
  const CsrGraph& csr = data.graph.Csr();

  TrainReport report;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    GELC_TRACE_SPAN("train.epoch", {{"epoch", epoch}});
    GELC_OBS_TIME("train.epoch");
    Tape tape;
    ValueId loss;
    {
      GELC_TRACE_SPAN("train.forward");
      GELC_OBS_TIME("train.forward");
      ValueId logits = model->NodeLogits(&tape, data.graph, csr);
      ValueId train_logits = tape.GatherRows(logits, data.train_nodes);
      loss = tape.SoftmaxCrossEntropy(train_logits, train_labels);
    }
    opt.ZeroGrad();
    {
      GELC_TRACE_SPAN("train.backward");
      GELC_OBS_TIME("train.backward");
      tape.Backward(loss);
    }
    {
      GELC_TRACE_SPAN("train.step");
      GELC_OBS_TIME("train.step");
      opt.Step();
    }
    double epoch_loss = tape.value(loss).At(0, 0);
    RecordEpoch(epoch_loss);
    report.loss_history.push_back(epoch_loss);
  }

  // Evaluation pass.
  Tape tape;
  ValueId logits = model->NodeLogits(&tape, data.graph, csr);
  std::vector<size_t> pred = RowArgmax(tape.value(logits));
  std::vector<size_t> train_pred, test_pred, test_labels;
  for (size_t v : data.train_nodes) train_pred.push_back(pred[v]);
  for (size_t v : data.test_nodes) {
    test_pred.push_back(pred[v]);
    test_labels.push_back(data.labels[v]);
  }
  report.train_accuracy = Accuracy(train_pred, train_labels);
  report.test_accuracy = Accuracy(test_pred, test_labels);
  return report;
}

Result<TrainReport> TrainGraphClassifier(const GraphDataset& data,
                                         const TrainOptions& options,
                                         double train_fraction) {
  if (data.graphs.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  TrainableGnn::Config cfg;
  cfg.widths = WidthsFor(data.graphs[0].feature_dim(), options.hidden_widths);
  cfg.num_outputs = data.num_classes;
  cfg.seed = options.seed;
  GELC_ASSIGN_OR_RETURN(std::unique_ptr<TrainableGnn> model,
                        TrainableGnn::Create(cfg));
  Adam opt(options.learning_rate);
  for (Parameter* p : model->Parameters()) opt.Register(p);

  size_t train_count = static_cast<size_t>(
      train_fraction * static_cast<double>(data.graphs.size()));
  train_count = std::max<size_t>(1, std::min(train_count, data.graphs.size()));

  // Pre-pack the training split into block-diagonal minibatches once —
  // the graphs are immutable across epochs, so every epoch reuses the
  // same packed CSR operators and builds one tape per minibatch instead
  // of one per graph.
  size_t batch_size = options.batch_size == 0
                          ? train_count
                          : std::min(options.batch_size, train_count);
  struct Minibatch {
    GraphBatch batch;
    std::vector<size_t> labels;
  };
  std::vector<Minibatch> minibatches;
  for (size_t lo = 0; lo < train_count; lo += batch_size) {
    size_t hi = std::min(lo + batch_size, train_count);
    std::vector<const Graph*> members;
    std::vector<size_t> labels;
    for (size_t i = lo; i < hi; ++i) {
      members.push_back(&data.graphs[i]);
      labels.push_back(data.labels[i]);
    }
    GELC_ASSIGN_OR_RETURN(GraphBatch batch, GraphBatch::Create(members));
    minibatches.push_back(Minibatch{std::move(batch), std::move(labels)});
  }

  TrainReport report;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    GELC_TRACE_SPAN("train.epoch", {{"epoch", epoch}});
    GELC_OBS_TIME("train.epoch");
    double epoch_loss_sum = 0.0;
    double last_batch_mean = 0.0;
    opt.ZeroGrad();
    for (const Minibatch& mb : minibatches) {
      size_t k = mb.batch.num_graphs();
      Tape tape;
      ValueId loss;
      {
        GELC_TRACE_SPAN("train.forward");
        GELC_OBS_TIME("train.forward");
        ValueId logits = model->GraphLogits(&tape, mb.batch);
        loss = tape.SoftmaxCrossEntropy(logits, mb.labels);
      }
      // SoftmaxCrossEntropy averages over the k batch rows; scaling the
      // root by k restores the sum-of-per-graph-gradients semantics the
      // per-graph loop had (one optimizer step per epoch, gradients
      // summed over the whole training split regardless of batch size).
      ValueId scaled = tape.Scale(loss, static_cast<double>(k));
      {
        GELC_TRACE_SPAN("train.backward");
        GELC_OBS_TIME("train.backward");
        tape.Backward(scaled);
      }
      last_batch_mean = tape.value(loss).At(0, 0);
      epoch_loss_sum += tape.value(scaled).At(0, 0);
    }
    {
      GELC_TRACE_SPAN("train.step");
      GELC_OBS_TIME("train.step");
      opt.Step();
    }
    // With a single minibatch its cross-entropy already is the mean over
    // the training split; reporting it directly keeps the loss history
    // bit-identical to the historical per-graph loop.
    double mean_loss = minibatches.size() == 1
                           ? last_batch_mean
                           : epoch_loss_sum /
                                 static_cast<double>(train_count);
    RecordEpoch(mean_loss);
    report.loss_history.push_back(mean_loss);
  }

  // Batched evaluation: one forward over the whole dataset; row i of the
  // logits is bit-identical to the per-graph forward of graph i.
  std::vector<const Graph*> all_graphs;
  all_graphs.reserve(data.graphs.size());
  for (const Graph& g : data.graphs) all_graphs.push_back(&g);
  GELC_ASSIGN_OR_RETURN(GraphBatch eval_batch,
                        GraphBatch::Create(all_graphs));
  Tape eval_tape;
  ValueId logits = model->GraphLogits(&eval_tape, eval_batch);
  std::vector<size_t> pred = RowArgmax(eval_tape.value(logits));
  std::vector<size_t> train_pred, train_truth, test_pred, test_truth;
  for (size_t i = 0; i < data.graphs.size(); ++i) {
    if (i < train_count) {
      train_pred.push_back(pred[i]);
      train_truth.push_back(data.labels[i]);
    } else {
      test_pred.push_back(pred[i]);
      test_truth.push_back(data.labels[i]);
    }
  }
  report.train_accuracy = Accuracy(train_pred, train_truth);
  report.test_accuracy = Accuracy(test_pred, test_truth);
  return report;
}

Result<TrainReport> TrainLinkPredictor(const LinkDataset& data,
                                       const TrainOptions& options) {
  if (data.train_pairs.empty()) {
    return Status::InvalidArgument("empty link dataset");
  }
  TrainableGnn::Config cfg;
  cfg.widths = WidthsFor(data.graph.feature_dim(), options.hidden_widths);
  cfg.num_outputs = 2;
  cfg.seed = options.seed;
  GELC_ASSIGN_OR_RETURN(std::unique_ptr<TrainableGnn> model,
                        TrainableGnn::Create(cfg));
  Adam opt(options.learning_rate);
  for (Parameter* p : model->Parameters()) opt.Register(p);

  // One CSR lookup for the whole run (see TrainNodeClassifier).
  const CsrGraph& csr = data.graph.Csr();

  TrainReport report;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    GELC_TRACE_SPAN("train.epoch", {{"epoch", epoch}});
    GELC_OBS_TIME("train.epoch");
    Tape tape;
    ValueId loss;
    {
      GELC_TRACE_SPAN("train.forward");
      GELC_OBS_TIME("train.forward");
      ValueId logits =
          model->PairLogits(&tape, data.graph, csr, data.train_pairs);
      loss = tape.SoftmaxCrossEntropy(logits, data.train_labels);
    }
    opt.ZeroGrad();
    {
      GELC_TRACE_SPAN("train.backward");
      GELC_OBS_TIME("train.backward");
      tape.Backward(loss);
    }
    {
      GELC_TRACE_SPAN("train.step");
      GELC_OBS_TIME("train.step");
      opt.Step();
    }
    double epoch_loss = tape.value(loss).At(0, 0);
    RecordEpoch(epoch_loss);
    report.loss_history.push_back(epoch_loss);
  }

  auto eval = [&](const std::vector<std::pair<VertexId, VertexId>>& pairs,
                  const std::vector<size_t>& labels) {
    Tape tape;
    ValueId logits = model->PairLogits(&tape, data.graph, csr, pairs);
    return Accuracy(RowArgmax(tape.value(logits)), labels);
  };
  report.train_accuracy = eval(data.train_pairs, data.train_labels);
  report.test_accuracy = eval(data.test_pairs, data.test_labels);
  return report;
}

}  // namespace gelc
