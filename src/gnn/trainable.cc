#include "gnn/trainable.h"

#include <algorithm>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gelc {

namespace {

// Shared per-epoch instrumentation for the three trainers: epoch count,
// a last-loss gauge, and (under tracing) one span per epoch.
void RecordEpoch(double loss) {
  static obs::Counter* epochs = obs::GetCounter("train.epochs");
  static obs::Gauge* loss_gauge = obs::GetGauge("train.loss");
  epochs->Increment();
  loss_gauge->Set(loss);
}

}  // namespace

TrainableGnn::TrainableGnn(const Config& config, Rng* rng)
    : config_(config) {
  for (size_t i = 0; i + 1 < config.widths.size(); ++i) {
    size_t din = config.widths[i];
    size_t dout = config.widths[i + 1];
    auto layer = std::make_unique<Layer>(Layer{
        Parameter(Matrix::RandomGaussian(din, dout, config.init_scale, rng)),
        Parameter(Matrix::RandomGaussian(din, dout, config.init_scale, rng)),
        Parameter(Matrix::RandomGaussian(1, dout, config.init_scale, rng))});
    layers_.push_back(std::move(layer));
  }
  size_t hidden = config.widths.back();
  head_w_ = std::make_unique<Parameter>(
      Matrix::RandomGaussian(hidden, config.num_outputs, config.init_scale,
                             rng));
  head_b_ = std::make_unique<Parameter>(
      Matrix::RandomGaussian(1, config.num_outputs, config.init_scale, rng));
  pair_head_w_ = std::make_unique<Parameter>(Matrix::RandomGaussian(
      3 * hidden, config.num_outputs, config.init_scale, rng));
  pair_head_b_ = std::make_unique<Parameter>(
      Matrix::RandomGaussian(1, config.num_outputs, config.init_scale, rng));
}

Result<std::unique_ptr<TrainableGnn>> TrainableGnn::Create(
    const Config& config) {
  if (config.widths.size() < 2) {
    return Status::InvalidArgument("need input and at least one hidden width");
  }
  if (config.num_outputs == 0) {
    return Status::InvalidArgument("num_outputs must be positive");
  }
  Rng rng(config.seed);
  // NOLINTNEXTLINE(banned-alloc): private ctor, goes into unique_ptr
  return std::unique_ptr<TrainableGnn>(new TrainableGnn(config, &rng));
}

ValueId TrainableGnn::VertexEmbeddings(Tape* tape, const Graph& g) const {
  GELC_CHECK(g.feature_dim() == config_.widths.front());
  ValueId f = tape->Input(g.features());
  // The graph's cached CSR handle is shared by every tape built over g
  // during training — no per-step adjacency materialization at all
  // (previously this rebuilt a dense n x n Input each forward call). The
  // graph must outlive the tape and stay unmutated while it is in use.
  const CsrGraph& csr = g.Csr();
  for (const auto& layer : layers_) {
    ValueId self = tape->MatMul(f, tape->Param(&layer->w1));
    ValueId agg = tape->SparseMatMul(&csr.adjacency(), &csr.transpose(), f);
    ValueId nbr = tape->MatMul(agg, tape->Param(&layer->w2));
    ValueId pre = tape->AddRowBroadcast(tape->Add(self, nbr),
                                        tape->Param(&layer->b));
    f = tape->Act(config_.act, pre);
  }
  return f;
}

ValueId TrainableGnn::NodeLogits(Tape* tape, const Graph& g) const {
  ValueId z = VertexEmbeddings(tape, g);
  return tape->AddRowBroadcast(tape->MatMul(z, tape->Param(head_w_.get())),
                               tape->Param(head_b_.get()));
}

ValueId TrainableGnn::GraphLogits(Tape* tape, const Graph& g) const {
  ValueId z = VertexEmbeddings(tape, g);
  ValueId pooled = tape->ColSums(z);
  return tape->AddRowBroadcast(
      tape->MatMul(pooled, tape->Param(head_w_.get())),
      tape->Param(head_b_.get()));
}

ValueId TrainableGnn::PairLogits(
    Tape* tape, const Graph& g,
    const std::vector<std::pair<VertexId, VertexId>>& pairs) const {
  ValueId z = VertexEmbeddings(tape, g);
  std::vector<size_t> us, vs;
  us.reserve(pairs.size());
  vs.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    us.push_back(u);
    vs.push_back(v);
  }
  ValueId zu = tape->GatherRows(z, us);
  ValueId zv = tape->GatherRows(z, vs);
  ValueId prod = tape->Hadamard(zu, zv);
  ValueId feats = tape->ConcatCols(tape->ConcatCols(zu, zv), prod);
  return tape->AddRowBroadcast(
      tape->MatMul(feats, tape->Param(pair_head_w_.get())),
      tape->Param(pair_head_b_.get()));
}

std::vector<Parameter*> TrainableGnn::Parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    out.push_back(&layer->w1);
    out.push_back(&layer->w2);
    out.push_back(&layer->b);
  }
  out.push_back(head_w_.get());
  out.push_back(head_b_.get());
  out.push_back(pair_head_w_.get());
  out.push_back(pair_head_b_.get());
  return out;
}

namespace {

std::vector<size_t> WidthsFor(size_t input_dim,
                              const std::vector<size_t>& hidden) {
  std::vector<size_t> widths = {input_dim};
  widths.insert(widths.end(), hidden.begin(), hidden.end());
  return widths;
}

double Accuracy(const std::vector<size_t>& pred,
                const std::vector<size_t>& truth) {
  GELC_CHECK(pred.size() == truth.size());
  if (pred.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == truth[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

}  // namespace

Result<TrainReport> TrainNodeClassifier(const NodeDataset& data,
                                        const TrainOptions& options) {
  TrainableGnn::Config cfg;
  cfg.widths = WidthsFor(data.graph.feature_dim(), options.hidden_widths);
  cfg.num_outputs = data.num_classes;
  cfg.seed = options.seed;
  GELC_ASSIGN_OR_RETURN(std::unique_ptr<TrainableGnn> model,
                        TrainableGnn::Create(cfg));
  Adam opt(options.learning_rate);
  for (Parameter* p : model->Parameters()) opt.Register(p);

  std::vector<size_t> train_labels;
  for (size_t v : data.train_nodes) train_labels.push_back(data.labels[v]);

  TrainReport report;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    GELC_TRACE_SPAN("train.epoch", {{"epoch", epoch}});
    Tape tape;
    ValueId loss;
    {
      GELC_TRACE_SPAN("train.forward");
      ValueId logits = model->NodeLogits(&tape, data.graph);
      ValueId train_logits = tape.GatherRows(logits, data.train_nodes);
      loss = tape.SoftmaxCrossEntropy(train_logits, train_labels);
    }
    opt.ZeroGrad();
    {
      GELC_TRACE_SPAN("train.backward");
      tape.Backward(loss);
    }
    {
      GELC_TRACE_SPAN("train.step");
      opt.Step();
    }
    double epoch_loss = tape.value(loss).At(0, 0);
    RecordEpoch(epoch_loss);
    report.loss_history.push_back(epoch_loss);
  }

  // Evaluation pass.
  Tape tape;
  ValueId logits = model->NodeLogits(&tape, data.graph);
  std::vector<size_t> pred = RowArgmax(tape.value(logits));
  std::vector<size_t> train_pred, test_pred, test_labels;
  for (size_t v : data.train_nodes) train_pred.push_back(pred[v]);
  for (size_t v : data.test_nodes) {
    test_pred.push_back(pred[v]);
    test_labels.push_back(data.labels[v]);
  }
  report.train_accuracy = Accuracy(train_pred, train_labels);
  report.test_accuracy = Accuracy(test_pred, test_labels);
  return report;
}

Result<TrainReport> TrainGraphClassifier(const GraphDataset& data,
                                         const TrainOptions& options,
                                         double train_fraction) {
  if (data.graphs.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  TrainableGnn::Config cfg;
  cfg.widths = WidthsFor(data.graphs[0].feature_dim(), options.hidden_widths);
  cfg.num_outputs = data.num_classes;
  cfg.seed = options.seed;
  GELC_ASSIGN_OR_RETURN(std::unique_ptr<TrainableGnn> model,
                        TrainableGnn::Create(cfg));
  Adam opt(options.learning_rate);
  for (Parameter* p : model->Parameters()) opt.Register(p);

  size_t train_count = static_cast<size_t>(
      train_fraction * static_cast<double>(data.graphs.size()));
  train_count = std::max<size_t>(1, std::min(train_count, data.graphs.size()));

  TrainReport report;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    GELC_TRACE_SPAN("train.epoch", {{"epoch", epoch}});
    double epoch_loss = 0.0;
    opt.ZeroGrad();
    for (size_t i = 0; i < train_count; ++i) {
      Tape tape;
      ValueId loss;
      {
        GELC_TRACE_SPAN("train.forward");
        ValueId logits = model->GraphLogits(&tape, data.graphs[i]);
        loss = tape.SoftmaxCrossEntropy(logits, {data.labels[i]});
      }
      {
        GELC_TRACE_SPAN("train.backward");
        tape.Backward(loss);
      }
      epoch_loss += tape.value(loss).At(0, 0);
    }
    {
      GELC_TRACE_SPAN("train.step");
      opt.Step();
    }
    double mean_loss = epoch_loss / static_cast<double>(train_count);
    RecordEpoch(mean_loss);
    report.loss_history.push_back(mean_loss);
  }

  std::vector<size_t> train_pred, train_truth, test_pred, test_truth;
  for (size_t i = 0; i < data.graphs.size(); ++i) {
    Tape tape;
    ValueId logits = model->GraphLogits(&tape, data.graphs[i]);
    size_t pred = RowArgmax(tape.value(logits))[0];
    if (i < train_count) {
      train_pred.push_back(pred);
      train_truth.push_back(data.labels[i]);
    } else {
      test_pred.push_back(pred);
      test_truth.push_back(data.labels[i]);
    }
  }
  report.train_accuracy = Accuracy(train_pred, train_truth);
  report.test_accuracy = Accuracy(test_pred, test_truth);
  return report;
}

Result<TrainReport> TrainLinkPredictor(const LinkDataset& data,
                                       const TrainOptions& options) {
  if (data.train_pairs.empty()) {
    return Status::InvalidArgument("empty link dataset");
  }
  TrainableGnn::Config cfg;
  cfg.widths = WidthsFor(data.graph.feature_dim(), options.hidden_widths);
  cfg.num_outputs = 2;
  cfg.seed = options.seed;
  GELC_ASSIGN_OR_RETURN(std::unique_ptr<TrainableGnn> model,
                        TrainableGnn::Create(cfg));
  Adam opt(options.learning_rate);
  for (Parameter* p : model->Parameters()) opt.Register(p);

  TrainReport report;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    GELC_TRACE_SPAN("train.epoch", {{"epoch", epoch}});
    Tape tape;
    ValueId loss;
    {
      GELC_TRACE_SPAN("train.forward");
      ValueId logits = model->PairLogits(&tape, data.graph, data.train_pairs);
      loss = tape.SoftmaxCrossEntropy(logits, data.train_labels);
    }
    opt.ZeroGrad();
    {
      GELC_TRACE_SPAN("train.backward");
      tape.Backward(loss);
    }
    {
      GELC_TRACE_SPAN("train.step");
      opt.Step();
    }
    double epoch_loss = tape.value(loss).At(0, 0);
    RecordEpoch(epoch_loss);
    report.loss_history.push_back(epoch_loss);
  }

  auto eval = [&](const std::vector<std::pair<VertexId, VertexId>>& pairs,
                  const std::vector<size_t>& labels) {
    Tape tape;
    ValueId logits = model->PairLogits(&tape, data.graph, pairs);
    return Accuracy(RowArgmax(tape.value(logits)), labels);
  };
  report.train_accuracy = eval(data.train_pairs, data.train_labels);
  report.test_accuracy = eval(data.test_pairs, data.test_labels);
  return report;
}

}  // namespace gelc
