// "GNN 101" exactly as on slide 13 of the paper:
//
//   F^(0)_v = L_G(v)
//   F^(t)_v = σ( F^(t-1)_v W1^(t) + Σ_{u ∈ N(v)} F^(t-1)_u W2^(t) + b^(t) )
//
// and the graph-level readout of slide 14:
//
//   F = σ( Σ_{v ∈ V} F^(L)_v W + b ).
//
// Theorem (slide 26): ρ(GNN 101) = ρ(color refinement).
#ifndef GELC_GNN_GNN101_H_
#define GELC_GNN_GNN101_H_

#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "graph/graph.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace gelc {

/// One GNN-101 layer: weights for self and neighbor-sum terms plus bias.
struct Gnn101Layer {
  Matrix w1;  // d_in x d_out (self)
  Matrix w2;  // d_in x d_out (neighbor sum)
  Matrix b;   // 1 x d_out
  Activation act = Activation::kReLU;
};

/// Optional graph-level readout of slide 14.
struct Gnn101Readout {
  Matrix w;  // d x d_out
  Matrix b;  // 1 x d_out
  Activation act = Activation::kIdentity;
};

/// An immutable GNN-101 model (fixed weights; inference only).
class Gnn101Model {
 public:
  explicit Gnn101Model(std::vector<Gnn101Layer> layers);
  Gnn101Model(std::vector<Gnn101Layer> layers, Gnn101Readout readout);

  /// Random Gaussian-weight model: widths[0] is the input feature
  /// dimension, widths[i] the output of layer i. Used for the
  /// separation-power probes ("by varying weights and biases, an infinite
  /// family of vertex embeddings is obtained", slide 13).
  static Result<Gnn101Model> Random(const std::vector<size_t>& widths,
                                    Activation act, double weight_scale,
                                    Rng* rng);

  /// Runs all layers; returns the n x d_L vertex embedding matrix F^(L).
  /// Errors if the graph's feature dimension does not match layer 0.
  Result<Matrix> VertexEmbeddings(const Graph& g) const;

  /// Applies the readout to F^(L); errors if no readout was configured.
  Result<Matrix> GraphEmbedding(const Graph& g) const;

  size_t num_layers() const { return layers_.size(); }
  size_t input_dim() const;
  size_t output_dim() const;
  bool has_readout() const { return has_readout_; }
  const std::vector<Gnn101Layer>& layers() const { return layers_; }
  const Gnn101Readout& readout() const { return readout_; }

 private:
  std::vector<Gnn101Layer> layers_;
  Gnn101Readout readout_;
  bool has_readout_ = false;
};

}  // namespace gelc

#endif  // GELC_GNN_GNN101_H_
