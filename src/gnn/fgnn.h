// 2-FGNN: folklore graph neural networks on vertex pairs (slide 63's
// "2-FGNNs" / slide 34's architecture zoo).
//
// State is a feature per ordered pair (u, v); one layer computes
//
//   h'(u,v) = MLP_0(h(u,v)) + Σ_w MLP_1(h(u,w)) ⊙ MLP_2(h(w,v)),
//
// mirroring the folklore 2-WL refinement (colors of (u,w) and (w,v)
// aggregated over all w). Matching the paper's hierarchy, 2-FGNNs have
// the separation power of folklore 2-WL: they separate C6 from C3+C3
// (which MPNNs cannot) but not Shrikhande from the 4x4 rook's graph.
#ifndef GELC_GNN_FGNN_H_
#define GELC_GNN_FGNN_H_

#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "gnn/mlp.h"
#include "graph/graph.h"

namespace gelc {

/// One folklore layer: the three MLPs above (equal output widths).
struct Fgnn2Layer {
  Mlp self;   // d_in -> d_out
  Mlp left;   // d_in -> d_out
  Mlp right;  // d_in -> d_out
};

/// A 2-FGNN with a sum-over-pairs readout.
class Fgnn2Model {
 public:
  Fgnn2Model(std::vector<Fgnn2Layer> layers, Mlp readout);

  /// Random model. widths[0] is the *graph* feature dimension; the pair
  /// input dimension is derived as 2*widths[0] + 3 (features of both
  /// endpoints plus the one-hot atomic type: equal / edge / non-edge).
  static Result<Fgnn2Model> Random(const std::vector<size_t>& widths,
                                   double weight_scale, Rng* rng);

  /// Pair embeddings after all layers: an n^2 x d matrix, row u*n+v.
  Result<Matrix> PairEmbeddings(const Graph& g) const;
  /// Sum-pooled pair embeddings through the readout MLP: 1 x d_out.
  Result<Matrix> GraphEmbedding(const Graph& g) const;

  size_t graph_feature_dim() const { return graph_feature_dim_; }
  size_t num_layers() const { return layers_.size(); }

 private:
  size_t graph_feature_dim_ = 0;
  std::vector<Fgnn2Layer> layers_;
  Mlp readout_;
};

}  // namespace gelc

#endif  // GELC_GNN_FGNN_H_
