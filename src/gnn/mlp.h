// Multilayer perceptrons over row-vector batches.
//
// MLPs are the "sufficiently rich" function family Ω the paper's
// approximation theorems quantify over (slide 53: Ω is rich enough when it
// is mlp-closed).
#ifndef GELC_GNN_MLP_H_
#define GELC_GNN_MLP_H_

#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace gelc {

/// One dense layer: x -> act(x W + b), applied row-wise.
struct MlpLayer {
  Matrix w;  // in x out
  Matrix b;  // 1 x out
  Activation act = Activation::kIdentity;
};

/// A stack of dense layers. An empty Mlp is the identity.
class Mlp {
 public:
  Mlp() = default;
  explicit Mlp(std::vector<MlpLayer> layers);

  /// Random Gaussian-initialized MLP with the given layer widths
  /// (dims.size() >= 2); hidden layers use `hidden_act`, the last layer
  /// `out_act`.
  static Result<Mlp> Random(const std::vector<size_t>& dims,
                            Activation hidden_act, Activation out_act,
                            double weight_scale, Rng* rng);

  /// Applies the stack to each row of x (n x in_dim -> n x out_dim).
  Matrix Forward(const Matrix& x) const;

  size_t in_dim() const;
  size_t out_dim() const;
  bool empty() const { return layers_.empty(); }
  const std::vector<MlpLayer>& layers() const { return layers_; }

 private:
  std::vector<MlpLayer> layers_;
};

}  // namespace gelc

#endif  // GELC_GNN_MLP_H_
