// Graph attention networks (GAT, Veličković et al.) — one of the
// architectures in the paper's zoo (slide 34) that still lands in
// MPNN(Ω,Θ): attention computes a weighted *mean* over the neighborhood,
// so ρ(GAT) is bounded by color refinement like every MPNN.
//
// Layer (single head):
//   e_uv   = LeakyReLU( [h_u W | h_v W] · a )
//   α_uv   = softmax_{u ∈ N(v)}(e_uv)
//   h'_v   = act( Σ_{u ∈ N(v)} α_uv (h_u W) )
// Vertices without neighbors get the zero vector.
#ifndef GELC_GNN_GAT_H_
#define GELC_GNN_GAT_H_

#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "graph/graph.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace gelc {

/// One single-head attention layer.
struct GatLayer {
  Matrix w;         // d_in x d_out
  Matrix attn_src;  // d_out x 1 (the first half of the attention vector a)
  Matrix attn_dst;  // d_out x 1 (the second half)
  double leaky_slope = 0.2;
  Activation act = Activation::kTanh;
};

class GatModel {
 public:
  explicit GatModel(std::vector<GatLayer> layers);

  static Result<GatModel> Random(const std::vector<size_t>& widths,
                                 double weight_scale, Rng* rng);

  Result<Matrix> VertexEmbeddings(const Graph& g) const;
  /// Mean-pooled vertex embeddings (GATs are weighted-mean aggregators;
  /// a mean readout keeps the class CR-bounded end to end).
  Result<Matrix> GraphEmbedding(const Graph& g) const;

  size_t input_dim() const { return layers_.front().w.rows(); }

 private:
  std::vector<GatLayer> layers_;
};

}  // namespace gelc

#endif  // GELC_GNN_GAT_H_
