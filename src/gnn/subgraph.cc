#include "gnn/subgraph.h"

#include "base/logging.h"

namespace gelc {

IdGnnModel::IdGnnModel(Gnn101Model base, size_t graph_feature_dim)
    : base_(std::move(base)), graph_feature_dim_(graph_feature_dim) {
  GELC_CHECK(base_.input_dim() == graph_feature_dim_ + 1);
}

Result<IdGnnModel> IdGnnModel::Random(const std::vector<size_t>& widths,
                                      Activation act, double weight_scale,
                                      Rng* rng) {
  if (widths.size() < 2) {
    return Status::InvalidArgument("need at least input and one layer width");
  }
  std::vector<size_t> base_widths = widths;
  base_widths[0] += 1;  // marker column
  GELC_ASSIGN_OR_RETURN(Gnn101Model base,
                        Gnn101Model::Random(base_widths, act, weight_scale,
                                            rng));
  return IdGnnModel(std::move(base), widths[0]);
}

Result<Matrix> IdGnnModel::VertexEmbeddings(const Graph& g) const {
  if (g.feature_dim() != graph_feature_dim_) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  size_t n = g.num_vertices();
  // Marked copy of g: same edges, features padded with a marker column.
  Graph marked(n, graph_feature_dim_ + 1, g.directed());
  for (size_t u = 0; u < n; ++u) {
    for (VertexId v : g.Neighbors(static_cast<VertexId>(u))) {
      if (!g.directed() && v < u) continue;
      GELC_RETURN_NOT_OK(marked.AddEdge(static_cast<VertexId>(u), v));
    }
    for (size_t j = 0; j < graph_feature_dim_; ++j)
      marked.mutable_features().At(u, j) = g.features().At(u, j);
  }
  size_t out_dim = 0;
  Matrix out;
  for (size_t v = 0; v < n; ++v) {
    marked.mutable_features().At(v, graph_feature_dim_) = 1.0;
    GELC_ASSIGN_OR_RETURN(Matrix f, base_.VertexEmbeddings(marked));
    marked.mutable_features().At(v, graph_feature_dim_) = 0.0;
    if (v == 0) {
      out_dim = f.cols();
      out = Matrix(n, out_dim);
    }
    for (size_t j = 0; j < out_dim; ++j) out.At(v, j) = f.At(v, j);
  }
  return out;
}

Result<Matrix> IdGnnModel::GraphEmbedding(const Graph& g) const {
  GELC_ASSIGN_OR_RETURN(Matrix f, VertexEmbeddings(g));
  return f.ColSums();
}

}  // namespace gelc
