#include "gnn/gat.h"

#include <cmath>

#include "base/logging.h"
#include "gnn/mpnn.h"

namespace gelc {

namespace {

double LeakyReLU(double x, double slope) { return x > 0 ? x : slope * x; }

}  // namespace

GatModel::GatModel(std::vector<GatLayer> layers)
    : layers_(std::move(layers)) {
  GELC_CHECK(!layers_.empty());
  for (const GatLayer& l : layers_) {
    GELC_CHECK(l.attn_src.rows() == l.w.cols() && l.attn_src.cols() == 1);
    GELC_CHECK(l.attn_dst.rows() == l.w.cols() && l.attn_dst.cols() == 1);
  }
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    GELC_CHECK(layers_[i].w.cols() == layers_[i + 1].w.rows());
  }
}

Result<GatModel> GatModel::Random(const std::vector<size_t>& widths,
                                  double weight_scale, Rng* rng) {
  if (widths.size() < 2) {
    return Status::InvalidArgument("need at least input and one layer width");
  }
  std::vector<GatLayer> layers;
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    GatLayer l;
    l.w = Matrix::RandomGaussian(widths[i], widths[i + 1], weight_scale, rng);
    l.attn_src = Matrix::RandomGaussian(widths[i + 1], 1, weight_scale, rng);
    l.attn_dst = Matrix::RandomGaussian(widths[i + 1], 1, weight_scale, rng);
    layers.push_back(std::move(l));
  }
  return GatModel(std::move(layers));
}

Result<Matrix> GatModel::VertexEmbeddings(const Graph& g) const {
  if (g.feature_dim() != input_dim()) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  size_t n = g.num_vertices();
  Matrix h = g.features();
  for (const GatLayer& l : layers_) {
    Matrix z = h.MatMul(l.w);  // n x d_out
    // Per-vertex attention logits' halves.
    Matrix src_score = z.MatMul(l.attn_src);  // n x 1
    Matrix dst_score = z.MatMul(l.attn_dst);  // n x 1
    size_t d = z.cols();
    Matrix next(n, d);
    for (size_t v = 0; v < n; ++v) {
      const auto& nbrs = g.Neighbors(static_cast<VertexId>(v));
      if (nbrs.empty()) continue;
      // Softmax over neighbors of LeakyReLU(src(u) + dst(v)).
      double mx = -1e300;
      std::vector<double> logits(nbrs.size());
      for (size_t i = 0; i < nbrs.size(); ++i) {
        logits[i] = LeakyReLU(src_score.At(nbrs[i], 0) + dst_score.At(v, 0),
                              l.leaky_slope);
        mx = std::max(mx, logits[i]);
      }
      double denom = 0;
      for (double& x : logits) {
        x = std::exp(x - mx);
        denom += x;
      }
      for (size_t i = 0; i < nbrs.size(); ++i) {
        double alpha = logits[i] / denom;
        for (size_t j = 0; j < d; ++j)
          next.At(v, j) += alpha * z.At(nbrs[i], j);
      }
      for (size_t j = 0; j < d; ++j)
        next.At(v, j) = ApplyActivation(l.act, next.At(v, j));
    }
    h = std::move(next);
  }
  return h;
}

Result<Matrix> GatModel::GraphEmbedding(const Graph& g) const {
  GELC_ASSIGN_OR_RETURN(Matrix h, VertexEmbeddings(g));
  return PoolVertices(h, Aggregation::kMean);
}

}  // namespace gelc
