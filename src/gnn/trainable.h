// Trainable GNNs and empirical-risk-minimization loops (slides 16-20).
//
// The paper's learning recipe: a training set T of (graph, tuple, value)
// triples, a hypothesis class F (here: GNN-101-style networks with
// learnable weights), a loss L (cross entropy), and an optimizer searching
//   argmin_{ξ ∈ F} (1/|T|) Σ L(ξ(G_i, v_i), Ψ(G_i, v_i)).
// Three task shapes are provided, matching slides 7-9: graph-level
// classification (p = 0), node classification (p = 1), link prediction
// (p = 2).
#ifndef GELC_GNN_TRAINABLE_H_
#define GELC_GNN_TRAINABLE_H_

#include <memory>
#include <vector>

#include "autodiff/optimizer.h"
#include "autodiff/tape.h"
#include "base/rng.h"
#include "base/status.h"
#include "gnn/mpnn.h"
#include "graph/batch.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace gelc {

/// A GNN-101 message-passing network with learnable weights:
///   F^(t) = act( F^(t-1) W1 + A F^(t-1) W2 + b ),
/// followed by a linear classifier head.
class TrainableGnn {
 public:
  struct Config {
    /// widths[0] = input feature dim; widths[1..] = hidden widths.
    std::vector<size_t> widths;
    size_t num_outputs = 2;
    Activation act = Activation::kReLU;
    double init_scale = 0.3;
    uint64_t seed = 1;
  };

  static Result<std::unique_ptr<TrainableGnn>> Create(const Config& config);

  /// Builds the message-passing forward pass on `tape`; returns the
  /// n x hidden vertex embedding node.
  ValueId VertexEmbeddings(Tape* tape, const Graph& g) const;
  /// Same forward pass over a caller-held CSR view of `g` — the epoch
  /// loops hoist `g.Csr()` once and pass it back in so no per-epoch
  /// cache lookup happens. `csr` must be (or match) g.Csr() and must
  /// outlive the tape.
  ValueId VertexEmbeddings(Tape* tape, const Graph& g,
                           const CsrGraph& csr) const;
  /// Batched forward over a block-diagonal GraphBatch: one set of kernel
  /// launches yields a num_vertices x hidden embedding matrix whose
  /// per-graph blocks are bit-identical to the single-graph path. Layer
  /// parameter gradients accumulate segment-grouped (Tape::
  /// MatMulSegments), so a batched backward pass also matches per-graph
  /// tapes bit-for-bit. `batch` must outlive the tape.
  ValueId VertexEmbeddings(Tape* tape, const GraphBatch& batch) const;
  /// Vertex embeddings followed by the linear head: n x num_outputs.
  ValueId NodeLogits(Tape* tape, const Graph& g) const;
  ValueId NodeLogits(Tape* tape, const Graph& g, const CsrGraph& csr) const;
  /// Sum-pooled embeddings followed by the head: 1 x num_outputs.
  ValueId GraphLogits(Tape* tape, const Graph& g) const;
  /// Batched graph logits: row i holds graph i's 1 x num_outputs logits
  /// (sum-pooled per segment), bit-identical to GraphLogits on graph i
  /// alone.
  ValueId GraphLogits(Tape* tape, const GraphBatch& batch) const;
  /// Pairwise head for link prediction: |pairs| x num_outputs logits from
  /// [z_u | z_v | z_u ⊙ z_v].
  ValueId PairLogits(Tape* tape, const Graph& g,
                     const std::vector<std::pair<VertexId, VertexId>>& pairs)
      const;
  ValueId PairLogits(Tape* tape, const Graph& g, const CsrGraph& csr,
                     const std::vector<std::pair<VertexId, VertexId>>& pairs)
      const;

  /// All trainable parameters (for optimizer registration).
  std::vector<Parameter*> Parameters();

 private:
  struct Layer {
    Parameter w1, w2, b;
  };
  TrainableGnn(const Config& config, Rng* rng);

  Config config_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::unique_ptr<Parameter> head_w_;       // hidden -> outputs
  std::unique_ptr<Parameter> head_b_;
  std::unique_ptr<Parameter> pair_head_w_;  // 3*hidden -> outputs
  std::unique_ptr<Parameter> pair_head_b_;
};

/// Outcome of one ERM run.
struct TrainReport {
  std::vector<double> loss_history;  // per epoch
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
};

struct TrainOptions {
  size_t epochs = 150;
  double learning_rate = 0.01;
  std::vector<size_t> hidden_widths = {16, 16};
  uint64_t seed = 7;
  /// Graph-classification minibatch size: each epoch builds one tape per
  /// GraphBatch of up to this many training graphs. 0 packs the whole
  /// training split into a single batch, which reproduces the historical
  /// per-graph epoch gradient bit-for-bit (sum-of-gradients semantics,
  /// one optimizer step per epoch — see DESIGN.md "Batched execution").
  size_t batch_size = 0;
};

/// Semi-supervised node classification (slide 8: paper subjects in a
/// citation network).
Result<TrainReport> TrainNodeClassifier(const NodeDataset& data,
                                        const TrainOptions& options);

/// Graph classification (slide 7: molecule property prediction). The
/// first `train_fraction` of the dataset is the training split.
Result<TrainReport> TrainGraphClassifier(const GraphDataset& data,
                                         const TrainOptions& options,
                                         double train_fraction = 0.7);

/// Link prediction (slide 9: "will connect", p = 2 vertex embeddings).
Result<TrainReport> TrainLinkPredictor(const LinkDataset& data,
                                       const TrainOptions& options);

}  // namespace gelc

#endif  // GELC_GNN_TRAINABLE_H_
