// ID-aware GNNs (slide 71: "Id-aware GNNs", "subgraph networks"): run a
// base MPNN once per vertex v on the graph with v individualized by an
// extra marker feature, and read off v's own embedding.
//
// Marking breaks the symmetry color refinement is stuck on: ID-GNNs can
// count cycles through a vertex and separate C6 from C3+C3 — strictly
// above ρ(CR) — yet are not comparable to the full 2-WL level (they are
// one instance of the finer-grained hierarchies of slide 71).
#ifndef GELC_GNN_SUBGRAPH_H_
#define GELC_GNN_SUBGRAPH_H_

#include "base/rng.h"
#include "base/status.h"
#include "gnn/gnn101.h"
#include "graph/graph.h"

namespace gelc {

/// An identity-aware GNN built on a GNN-101 base whose input dimension is
/// the graph feature dimension plus one marker column.
class IdGnnModel {
 public:
  /// `base` must have input dim = graph_feature_dim + 1.
  IdGnnModel(Gnn101Model base, size_t graph_feature_dim);

  /// Random base network: widths[0] is the *graph* feature dim (the base
  /// is created with widths[0] + 1 inputs).
  static Result<IdGnnModel> Random(const std::vector<size_t>& widths,
                                   Activation act, double weight_scale,
                                   Rng* rng);

  /// Vertex embeddings: row v comes from the run where v carries the
  /// marker.
  Result<Matrix> VertexEmbeddings(const Graph& g) const;
  /// Sum-pooled identity-aware vertex embeddings (no extra readout MLP).
  Result<Matrix> GraphEmbedding(const Graph& g) const;

  size_t graph_feature_dim() const { return graph_feature_dim_; }

 private:
  Gnn101Model base_;
  size_t graph_feature_dim_;
};

}  // namespace gelc

#endif  // GELC_GNN_SUBGRAPH_H_
