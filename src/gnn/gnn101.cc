#include "gnn/gnn101.h"

#include "base/logging.h"
#include "tensor/fused.h"
#include "tensor/sparse.h"

namespace gelc {

Gnn101Model::Gnn101Model(std::vector<Gnn101Layer> layers)
    : layers_(std::move(layers)) {
  GELC_CHECK(!layers_.empty());
  for (size_t i = 0; i < layers_.size(); ++i) {
    const Gnn101Layer& l = layers_[i];
    GELC_CHECK(l.w1.rows() == l.w2.rows() && l.w1.cols() == l.w2.cols());
    GELC_CHECK(l.b.rows() == 1 && l.b.cols() == l.w1.cols());
    if (i > 0) GELC_CHECK(layers_[i - 1].w1.cols() == l.w1.rows());
  }
}

Gnn101Model::Gnn101Model(std::vector<Gnn101Layer> layers,
                         Gnn101Readout readout)
    : Gnn101Model(std::move(layers)) {
  GELC_CHECK(readout.w.rows() == layers_.back().w1.cols());
  GELC_CHECK(readout.b.rows() == 1 && readout.b.cols() == readout.w.cols());
  readout_ = std::move(readout);
  has_readout_ = true;
}

Result<Gnn101Model> Gnn101Model::Random(const std::vector<size_t>& widths,
                                        Activation act, double weight_scale,
                                        Rng* rng) {
  if (widths.size() < 2) {
    return Status::InvalidArgument("need at least input and one layer width");
  }
  std::vector<Gnn101Layer> layers;
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    Gnn101Layer l;
    l.w1 = Matrix::RandomGaussian(widths[i], widths[i + 1], weight_scale, rng);
    l.w2 = Matrix::RandomGaussian(widths[i], widths[i + 1], weight_scale, rng);
    l.b = Matrix::RandomGaussian(1, widths[i + 1], weight_scale, rng);
    l.act = act;
    layers.push_back(std::move(l));
  }
  Gnn101Readout readout;
  size_t d = widths.back();
  readout.w = Matrix::RandomGaussian(d, d, weight_scale, rng);
  readout.b = Matrix::RandomGaussian(1, d, weight_scale, rng);
  readout.act = Activation::kIdentity;
  return Gnn101Model(std::move(layers), std::move(readout));
}

size_t Gnn101Model::input_dim() const { return layers_.front().w1.rows(); }

size_t Gnn101Model::output_dim() const {
  return has_readout_ ? readout_.w.cols() : layers_.back().w1.cols();
}

Result<Matrix> Gnn101Model::VertexEmbeddings(const Graph& g) const {
  if (g.feature_dim() != input_dim()) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  Matrix f = g.features();
  const CsrMatrix& a = g.Csr().adjacency();
  // One fused CSR-row pass per layer: neighbor sum, both weight products,
  // bias and activation with no aggregate or product temporaries. The
  // kernel's accumulation order matches the former
  // f.MatMul(w1) + SpMM(a, f).MatMul(w2) composition bit-for-bit.
  Matrix next;
  for (const Gnn101Layer& l : layers_) {
    FusedLayerArg self;
    self.values = &f;
    self.w = &l.w1;
    FusedLayerArg agg;
    agg.values = &f;
    agg.w = &l.w2;
    agg.csr = &a;
    agg.agg = FusedAgg::kSum;
    FusedLayerInto(g.num_vertices(), {self, agg}, &l.b, l.act, &next);
    f = std::move(next);
  }
  return f;
}

Result<Matrix> Gnn101Model::GraphEmbedding(const Graph& g) const {
  if (!has_readout_) {
    return Status::FailedPrecondition("model has no readout");
  }
  GELC_ASSIGN_OR_RETURN(Matrix f, VertexEmbeddings(g));
  // Pool + readout in the fused form (bit-identical to the former
  // ColSums / MatMul / AddRowBroadcast / ApplyActivation chain).
  Matrix pooled = PoolRows(f, FusedAgg::kSum, f.rows(), false);
  FusedLayerArg arg;
  arg.values = &pooled;
  arg.w = &readout_.w;
  Matrix out;
  FusedLayerInto(1, {arg}, &readout_.b, readout_.act, &out);
  return out;
}

}  // namespace gelc
