#include "gnn/fgnn.h"

#include "base/logging.h"

namespace gelc {

Fgnn2Model::Fgnn2Model(std::vector<Fgnn2Layer> layers, Mlp readout)
    : layers_(std::move(layers)), readout_(std::move(readout)) {
  GELC_CHECK(!layers_.empty());
  for (const Fgnn2Layer& l : layers_) {
    GELC_CHECK(l.self.in_dim() == l.left.in_dim());
    GELC_CHECK(l.self.in_dim() == l.right.in_dim());
    GELC_CHECK(l.self.out_dim() == l.left.out_dim());
    GELC_CHECK(l.self.out_dim() == l.right.out_dim());
  }
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    GELC_CHECK(layers_[i].self.out_dim() == layers_[i + 1].self.in_dim());
  }
  GELC_CHECK(readout_.in_dim() == layers_.back().self.out_dim());
  // Derived in Random(); reconstructed here for hand-built models.
  graph_feature_dim_ = (layers_.front().self.in_dim() - 3) / 2;
}

Result<Fgnn2Model> Fgnn2Model::Random(const std::vector<size_t>& widths,
                                      double weight_scale, Rng* rng) {
  if (widths.size() < 2) {
    return Status::InvalidArgument("need at least input and one layer width");
  }
  size_t pair_in = 2 * widths[0] + 3;
  std::vector<Fgnn2Layer> layers;
  size_t prev = pair_in;
  for (size_t i = 1; i < widths.size(); ++i) {
    Fgnn2Layer l;
    for (Mlp* m : {&l.self, &l.left, &l.right}) {
      GELC_ASSIGN_OR_RETURN(
          *m, Mlp::Random({prev, widths[i]}, Activation::kTanh,
                          Activation::kTanh, weight_scale, rng));
    }
    prev = widths[i];
    layers.push_back(std::move(l));
  }
  GELC_ASSIGN_OR_RETURN(
      Mlp readout, Mlp::Random({prev, prev}, Activation::kTanh,
                               Activation::kIdentity, weight_scale, rng));
  Fgnn2Model model(std::move(layers), std::move(readout));
  model.graph_feature_dim_ = widths[0];
  return model;
}

Result<Matrix> Fgnn2Model::PairEmbeddings(const Graph& g) const {
  if (g.feature_dim() != graph_feature_dim_) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  size_t n = g.num_vertices();
  size_t d0 = layers_.front().self.in_dim();
  // Initial pair features: [feat(u) | feat(v) | onehot(atomic type)].
  Matrix h(n * n, d0);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = 0; v < n; ++v) {
      size_t row = u * n + v;
      size_t off = 0;
      for (size_t j = 0; j < g.feature_dim(); ++j)
        h.At(row, off++) = g.features().At(u, j);
      for (size_t j = 0; j < g.feature_dim(); ++j)
        h.At(row, off++) = g.features().At(v, j);
      if (u == v) {
        h.At(row, off + 0) = 1.0;
      } else if (g.HasEdge(static_cast<VertexId>(u),
                           static_cast<VertexId>(v))) {
        h.At(row, off + 1) = 1.0;
      } else {
        h.At(row, off + 2) = 1.0;
      }
    }
  }
  for (const Fgnn2Layer& layer : layers_) {
    Matrix self = layer.self.Forward(h);
    Matrix left = layer.left.Forward(h);
    Matrix right = layer.right.Forward(h);
    size_t d = self.cols();
    Matrix next = self;
    // next(u,v) += Σ_w left(u,w) ⊙ right(w,v).
    for (size_t u = 0; u < n; ++u) {
      for (size_t v = 0; v < n; ++v) {
        double* out = &next.mutable_data()[(u * n + v) * d];
        for (size_t w = 0; w < n; ++w) {
          const double* lw = &left.data()[(u * n + w) * d];
          const double* rw = &right.data()[(w * n + v) * d];
          for (size_t j = 0; j < d; ++j) out[j] += lw[j] * rw[j];
        }
      }
    }
    h = std::move(next);
  }
  return h;
}

Result<Matrix> Fgnn2Model::GraphEmbedding(const Graph& g) const {
  GELC_ASSIGN_OR_RETURN(Matrix h, PairEmbeddings(g));
  return readout_.Forward(h.ColSums());
}

}  // namespace gelc
