#include "gnn/mpnn.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "base/parallel.h"
#include "tensor/fused.h"
#include "tensor/segment.h"
#include "tensor/simd.h"
#include "tensor/sparse.h"

namespace gelc {

const char* AggregationName(Aggregation agg) {
  switch (agg) {
    case Aggregation::kSum:
      return "sum";
    case Aggregation::kMean:
      return "mean";
    case Aggregation::kMax:
      return "max";
  }
  return "unknown";
}

namespace {

// Aggregation work (madds) below which AggregateNeighbors stays serial,
// mirroring the SpMM/MatMul thresholds in tensor/.
constexpr size_t kAggSerialWork = size_t{1} << 16;
constexpr size_t kAggShardWork = size_t{1} << 15;

}  // namespace

Matrix AggregateNeighbors(const Graph& g, const Matrix& f, Aggregation agg) {
  GELC_CHECK(f.rows() == g.num_vertices());
  return AggregateNeighbors(g.Csr().adjacency(), f, agg);
}

Matrix AggregateNeighbors(const CsrMatrix& a, const Matrix& f,
                          Aggregation agg) {
  GELC_CHECK(f.rows() == a.rows);
  size_t n = f.rows();
  size_t d = f.cols();
  // CSR rows are each vertex's ascending neighbor list; every output row
  // is owned by one shard and accumulated in that fixed order, so the
  // result is bit-identical for any thread count.
  Matrix out(n, d);
  const double* fdata = f.data().data();
  double* odata = out.mutable_data().data();
  auto row_range = [&a, fdata, odata, d, agg](size_t row_begin,
                                              size_t row_end) {
    for (size_t v = row_begin; v < row_end; ++v) {
      size_t begin = a.row_offsets[v];
      size_t end = a.row_offsets[v + 1];
      if (begin == end) continue;
      double* orow = odata + v * d;
      switch (agg) {
        case Aggregation::kSum:
        case Aggregation::kMean:
          for (size_t k = begin; k < end; ++k) {
            simd::AddRow(orow, fdata + size_t{a.col_indices[k]} * d, d);
          }
          if (agg == Aggregation::kMean) {
            simd::DivRow(orow, static_cast<double>(end - begin), d);
          }
          break;
        case Aggregation::kMax: {
          const double* first = fdata + size_t{a.col_indices[begin]} * d;
          for (size_t j = 0; j < d; ++j) orow[j] = first[j];
          for (size_t k = begin + 1; k < end; ++k) {
            simd::MaxRow(orow, fdata + size_t{a.col_indices[k]} * d, d);
          }
          break;
        }
      }
    }
  };
  size_t work = a.nnz() * std::max<size_t>(d, 1);
  if (work < kAggSerialWork || n == 0) {
    row_range(0, n);
    return out;
  }
  size_t row_work = std::max<size_t>(1, work / n);
  size_t grain = std::max<size_t>(1, kAggShardWork / row_work);
  ParallelFor(0, n, grain, row_range);
  return out;
}

Matrix PoolVertices(const Matrix& f, Aggregation pool) {
  switch (pool) {
    case Aggregation::kSum:
      return f.ColSums();
    case Aggregation::kMean:
      return f.ColMeans();
    case Aggregation::kMax:
      return f.rows() > 0 ? f.ColMax() : Matrix(1, f.cols());
  }
  return f.ColSums();
}

MpnnModel::MpnnModel(std::vector<MpnnLayer> layers)
    : layers_(std::move(layers)) {
  GELC_CHECK(!layers_.empty());
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    GELC_CHECK(layers_[i].update.out_dim() * 2 ==
               layers_[i + 1].update.in_dim());
  }
  for (const MpnnLayer& l : layers_) {
    GELC_CHECK(l.update.in_dim() % 2 == 0);
  }
}

MpnnModel::MpnnModel(std::vector<MpnnLayer> layers, MpnnReadout readout)
    : MpnnModel(std::move(layers)) {
  GELC_CHECK(readout.mlp.in_dim() == layers_.back().update.out_dim());
  readout_ = std::move(readout);
}

Result<MpnnModel> MpnnModel::Random(const std::vector<size_t>& widths,
                                    Aggregation agg, double weight_scale,
                                    Rng* rng) {
  if (widths.size() < 2) {
    return Status::InvalidArgument("need at least input and one layer width");
  }
  std::vector<MpnnLayer> layers;
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    MpnnLayer l;
    l.agg = agg;
    GELC_ASSIGN_OR_RETURN(
        l.update,
        Mlp::Random({2 * widths[i], widths[i + 1], widths[i + 1]},
                    Activation::kReLU, Activation::kReLU, weight_scale, rng));
    layers.push_back(std::move(l));
  }
  MpnnReadout readout;
  // The readout pools with the same aggregator as the layers so that
  // "mean-MPNN" / "max-MPNN" classes are pure (slide 69's comparison).
  readout.pool = agg;
  GELC_ASSIGN_OR_RETURN(
      readout.mlp, Mlp::Random({widths.back(), widths.back()},
                               Activation::kReLU, Activation::kIdentity,
                               weight_scale, rng));
  return MpnnModel(std::move(layers), std::move(readout));
}

Result<Matrix> MpnnModel::VertexEmbeddings(const Graph& g) const {
  if (g.feature_dim() != input_dim()) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  Matrix f = g.features();
  for (const MpnnLayer& l : layers_) {
    Matrix agg = AggregateNeighbors(g, f, l.agg);
    f = l.update.Forward(f.ConcatCols(agg));
  }
  return f;
}

Result<Matrix> MpnnModel::GraphEmbedding(const Graph& g) const {
  if (!readout_.has_value()) {
    return Status::FailedPrecondition("model has no readout");
  }
  GELC_ASSIGN_OR_RETURN(Matrix f, VertexEmbeddings(g));
  return readout_->mlp.Forward(PoolVertices(f, readout_->pool));
}

Result<Matrix> MpnnModel::VertexEmbeddings(const GraphBatch& batch) const {
  if (batch.feature_dim() != input_dim()) {
    return Status::InvalidArgument("batch feature dim does not match model");
  }
  // One aggregation pass over the block-diagonal adjacency per layer;
  // the update MLP is row-local, so every block matches the standalone
  // forward bit-for-bit.
  Matrix f = batch.features();
  for (const MpnnLayer& l : layers_) {
    Matrix agg = AggregateNeighbors(batch.adjacency(), f, l.agg);
    f = l.update.Forward(f.ConcatCols(agg));
  }
  return f;
}

Result<Matrix> MpnnModel::GraphEmbeddings(const GraphBatch& batch) const {
  if (!readout_.has_value()) {
    return Status::FailedPrecondition("model has no readout");
  }
  GELC_ASSIGN_OR_RETURN(Matrix f, VertexEmbeddings(batch));
  // Segment pooling reduces each block with the same accumulation chain
  // as PoolVertices over that block alone; the readout MLP is row-local.
  const std::vector<size_t>& offsets = batch.vertex_offsets();
  Matrix pooled;
  switch (readout_->pool) {
    case Aggregation::kSum:
      pooled = SegmentSum(f, offsets);
      break;
    case Aggregation::kMean:
      pooled = SegmentMean(f, offsets);
      break;
    case Aggregation::kMax:
      pooled = SegmentMax(f, offsets);
      break;
  }
  return readout_->mlp.Forward(pooled);
}

GinModel::GinModel(std::vector<GinLayer> layers, Mlp readout_mlp)
    : layers_(std::move(layers)), readout_mlp_(std::move(readout_mlp)) {
  GELC_CHECK(!layers_.empty());
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    GELC_CHECK(layers_[i].mlp.out_dim() == layers_[i + 1].mlp.in_dim());
  }
  GELC_CHECK(readout_mlp_.in_dim() == layers_.back().mlp.out_dim());
}

Result<GinModel> GinModel::Random(const std::vector<size_t>& widths,
                                  double weight_scale, Rng* rng) {
  if (widths.size() < 2) {
    return Status::InvalidArgument("need at least input and one layer width");
  }
  std::vector<GinLayer> layers;
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    GinLayer l;
    l.eps = rng->NextUniform(-0.1, 0.1);
    GELC_ASSIGN_OR_RETURN(
        l.mlp,
        Mlp::Random({widths[i], widths[i + 1], widths[i + 1]},
                    Activation::kReLU, Activation::kReLU, weight_scale, rng));
    layers.push_back(std::move(l));
  }
  GELC_ASSIGN_OR_RETURN(
      Mlp readout, Mlp::Random({widths.back(), widths.back()},
                               Activation::kReLU, Activation::kIdentity,
                               weight_scale, rng));
  return GinModel(std::move(layers), std::move(readout));
}

Result<Matrix> GinModel::VertexEmbeddings(const Graph& g) const {
  if (g.feature_dim() != input_dim()) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  Matrix f = g.features();
  // (1 + eps) * self + neighbor-sum in one fused CSR pass (bit-identical
  // to the former AggregateNeighbors + scale + add composition).
  Matrix combined;
  for (const GinLayer& l : layers_) {
    FusedGinCombineInto(g.Csr().adjacency(), f, 1.0 + l.eps, &combined);
    f = l.mlp.Forward(combined);
  }
  return f;
}

Result<Matrix> GinModel::GraphEmbedding(const Graph& g) const {
  GELC_ASSIGN_OR_RETURN(Matrix f, VertexEmbeddings(g));
  return readout_mlp_.Forward(f.ColSums());
}

GcnModel::GcnModel(std::vector<Layer> layers) : layers_(std::move(layers)) {
  GELC_CHECK(!layers_.empty());
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    GELC_CHECK(layers_[i].w.cols() == layers_[i + 1].w.rows());
  }
}

Result<GcnModel> GcnModel::Random(const std::vector<size_t>& widths,
                                  double weight_scale, Rng* rng) {
  if (widths.size() < 2) {
    return Status::InvalidArgument("need at least input and one layer width");
  }
  std::vector<Layer> layers;
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    Layer l;
    l.w = Matrix::RandomGaussian(widths[i], widths[i + 1], weight_scale, rng);
    layers.push_back(std::move(l));
  }
  return GcnModel(std::move(layers));
}

Result<Matrix> GcnModel::VertexEmbeddings(const Graph& g) const {
  if (g.feature_dim() != layers_.front().w.rows()) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  // Normalized adjacency with self-loops, D̃^{-1/2} (A + I) D̃^{-1/2},
  // prebuilt in CSR form so the propagation never densifies.
  const CsrMatrix& a = g.Csr().normalized();
  Matrix f = g.features();
  for (const Layer& l : layers_) {
    f = ApplyActivation(l.act, SpMM(a, f).MatMul(l.w));
  }
  return f;
}

GraphSageModel::GraphSageModel(std::vector<Layer> layers)
    : layers_(std::move(layers)) {
  GELC_CHECK(!layers_.empty());
  for (const Layer& l : layers_) {
    GELC_CHECK(l.w.rows() % 2 == 0);
    GELC_CHECK(l.b.rows() == 1 && l.b.cols() == l.w.cols());
  }
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    GELC_CHECK(layers_[i].w.cols() * 2 == layers_[i + 1].w.rows());
  }
}

Result<GraphSageModel> GraphSageModel::Random(
    const std::vector<size_t>& widths, double weight_scale, Rng* rng) {
  if (widths.size() < 2) {
    return Status::InvalidArgument("need at least input and one layer width");
  }
  std::vector<Layer> layers;
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    Layer l;
    l.w = Matrix::RandomGaussian(2 * widths[i], widths[i + 1], weight_scale,
                                 rng);
    l.b = Matrix::RandomGaussian(1, widths[i + 1], weight_scale, rng);
    layers.push_back(std::move(l));
  }
  return GraphSageModel(std::move(layers));
}

Result<Matrix> GraphSageModel::VertexEmbeddings(const Graph& g) const {
  if (g.feature_dim() * 2 != layers_.front().w.rows()) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  Matrix f = g.features();
  for (const Layer& l : layers_) {
    Matrix agg = AggregateNeighbors(g, f, Aggregation::kMean);
    f = ApplyActivation(l.act,
                        f.ConcatCols(agg).MatMul(l.w).AddRowBroadcast(l.b));
  }
  return f;
}

}  // namespace gelc
