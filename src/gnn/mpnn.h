// Message Passing Neural Networks in the "classical" layered normal form
// (slides 37-41 and 47):
//
//   ϕ^(t)(x) := F^(t)( ϕ^(t-1)(x), agg_θ{ ϕ^(t-1)(u) : u ∈ N(x) } )
//
// with the update F^(t) an MLP over the concatenation [self | aggregate],
// the aggregation θ ∈ {sum, mean, max} (slide 69's fine-grained analysis),
// and an optional readout pool + MLP for graph embeddings (slide 40).
//
// Popular architectures are provided as constructors on top of this form:
// GIN (Xu et al.), GCN (Kipf & Welling) and GraphSAGE (mean variant).
#ifndef GELC_GNN_MPNN_H_
#define GELC_GNN_MPNN_H_

#include <optional>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "gnn/mlp.h"
#include "graph/batch.h"
#include "graph/graph.h"
#include "tensor/sparse.h"

namespace gelc {

/// The aggregation function θ applied to the bag of neighbor embeddings.
enum class Aggregation { kSum, kMean, kMax };

const char* AggregationName(Aggregation agg);

/// agg_θ over each vertex's out-neighborhood: row v of the result
/// aggregates the rows {f_u : u ∈ N(v)}. Vertices without neighbors
/// aggregate to the zero row (for kMax as well, by convention).
Matrix AggregateNeighbors(const Graph& g, const Matrix& f, Aggregation agg);

/// The same aggregation over an explicit CSR adjacency operator (row v =
/// v's neighbor list, ascending). This is the batched entry point: a
/// GraphBatch's block-diagonal adjacency() aggregates every member graph
/// in one pass, bit-identical per block to the per-graph call.
Matrix AggregateNeighbors(const CsrMatrix& adjacency, const Matrix& f,
                          Aggregation agg);

/// Pools all vertex rows into one row (the readout aggregate, slide 40).
Matrix PoolVertices(const Matrix& f, Aggregation pool);

/// One MPNN layer: aggregation choice plus update MLP applied to
/// [self | aggregate] rows (input width = 2 * d_in).
struct MpnnLayer {
  Aggregation agg = Aggregation::kSum;
  Mlp update;
};

/// Graph-level readout: pool then MLP.
struct MpnnReadout {
  Aggregation pool = Aggregation::kSum;
  Mlp mlp;
};

/// A fixed-weight message passing network (inference only).
class MpnnModel {
 public:
  explicit MpnnModel(std::vector<MpnnLayer> layers);
  MpnnModel(std::vector<MpnnLayer> layers, MpnnReadout readout);

  /// Random model: `widths[0]` is the input dim; layer i maps widths[i] ->
  /// widths[i+1] with a 1-hidden-layer ReLU update MLP. A sum-pool readout
  /// MLP to `widths.back()` is attached.
  static Result<MpnnModel> Random(const std::vector<size_t>& widths,
                                  Aggregation agg, double weight_scale,
                                  Rng* rng);

  Result<Matrix> VertexEmbeddings(const Graph& g) const;
  Result<Matrix> GraphEmbedding(const Graph& g) const;
  /// Batched forward over a block-diagonal GraphBatch; block i of the
  /// result is bit-identical to VertexEmbeddings on member graph i.
  Result<Matrix> VertexEmbeddings(const GraphBatch& batch) const;
  /// Batched readout: row i is bit-identical to GraphEmbedding on member
  /// graph i (segment-pooled per block, then the readout MLP row-wise).
  Result<Matrix> GraphEmbeddings(const GraphBatch& batch) const;

  size_t num_layers() const { return layers_.size(); }
  size_t input_dim() const { return layers_.front().update.in_dim() / 2; }
  bool has_readout() const { return readout_.has_value(); }
  const std::vector<MpnnLayer>& layers() const { return layers_; }
  const std::optional<MpnnReadout>& readout() const { return readout_; }

 private:
  std::vector<MpnnLayer> layers_;
  std::optional<MpnnReadout> readout_;
};

/// Graph Isomorphism Network layer: h' = MLP((1 + eps) * h + Σ_u h_u).
/// With injective MLPs, GIN matches color refinement in separation power
/// (the "explicit construction", slide 52).
struct GinLayer {
  double eps = 0.0;
  Mlp mlp;  // d_in -> d_out
};

class GinModel {
 public:
  GinModel(std::vector<GinLayer> layers, Mlp readout_mlp);

  static Result<GinModel> Random(const std::vector<size_t>& widths,
                                 double weight_scale, Rng* rng);

  Result<Matrix> VertexEmbeddings(const Graph& g) const;
  /// Sum-pools final vertex embeddings, then applies the readout MLP.
  Result<Matrix> GraphEmbedding(const Graph& g) const;

  size_t input_dim() const { return layers_.front().mlp.in_dim(); }
  const std::vector<GinLayer>& layers() const { return layers_; }
  const Mlp& readout_mlp() const { return readout_mlp_; }

 private:
  std::vector<GinLayer> layers_;
  Mlp readout_mlp_;
};

/// Kipf-Welling GCN: H' = act( D̃^{-1/2} Ã D̃^{-1/2} H W ), Ã = A + I.
class GcnModel {
 public:
  struct Layer {
    Matrix w;
    Activation act = Activation::kReLU;
  };

  explicit GcnModel(std::vector<Layer> layers);

  static Result<GcnModel> Random(const std::vector<size_t>& widths,
                                 double weight_scale, Rng* rng);

  Result<Matrix> VertexEmbeddings(const Graph& g) const;

  const std::vector<Layer>& layers() const { return layers_; }

 private:
  std::vector<Layer> layers_;
};

/// GraphSAGE (mean aggregator): h' = act([h | mean_u h_u] W + b).
class GraphSageModel {
 public:
  struct Layer {
    Matrix w;  // 2*d_in x d_out
    Matrix b;  // 1 x d_out
    Activation act = Activation::kReLU;
  };

  explicit GraphSageModel(std::vector<Layer> layers);

  static Result<GraphSageModel> Random(const std::vector<size_t>& widths,
                                       double weight_scale, Rng* rng);

  Result<Matrix> VertexEmbeddings(const Graph& g) const;

  const std::vector<Layer>& layers() const { return layers_; }

 private:
  std::vector<Layer> layers_;
};

}  // namespace gelc

#endif  // GELC_GNN_MPNN_H_
