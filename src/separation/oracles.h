// Separation-power oracles: executable versions of the equivalence
// relations ρ(F) of slide 24:
//
//   (G, H) ∈ ρ(F)  iff  no embedding in F separates G from H.
//
// Each oracle decides (or samples) ρ-membership for a pair of graphs; the
// comparison harness tabulates the verdicts, letting the refinement order
// of slide 25/65 (iso ⊆ ... ⊆ k-WL ⊆ ... ⊆ CR) be observed empirically.
#ifndef GELC_SEPARATION_ORACLES_H_
#define GELC_SEPARATION_ORACLES_H_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "core/expr.h"
#include "graph/graph.h"

namespace gelc {

/// Decides whether a pair of graphs is ρ-equivalent for some class F.
class EquivalenceOracle {
 public:
  virtual ~EquivalenceOracle() = default;
  virtual std::string name() const = 0;
  /// True iff (a, b) ∈ ρ(F): the class cannot separate the pair.
  virtual Result<bool> Equivalent(const Graph& a, const Graph& b) = 0;
};

using OraclePtr = std::unique_ptr<EquivalenceOracle>;

/// ρ(graph isomorphism): the finest invariant relation (slide 25).
OraclePtr MakeIsomorphismOracle(size_t max_steps = 20'000'000);

/// ρ(color refinement), graph level (slide 50).
OraclePtr MakeCrOracle();

/// ρ(k-WL), folklore variant (slide 65).
OraclePtr MakeKwlOracle(size_t k);

/// Equality of hom(T, ·) profiles over all trees with at most
/// `max_tree_vertices` vertices (slide 27; a finite slice of the
/// Dell-Grohe-Rattan characterization).
OraclePtr MakeTreeHomOracle(size_t max_tree_vertices);

/// Sampled ρ(GNN 101): `num_models` random models with the given hidden
/// widths; equivalent iff no sampled model's graph embedding differs by
/// more than `tolerance` in max norm. One-sided: "equivalent" verdicts are
/// up to sampling, "separated" verdicts are certain.
OraclePtr MakeGnn101ProbeOracle(size_t num_models,
                                std::vector<size_t> hidden_widths,
                                double tolerance, uint64_t seed);

/// Sampled ρ(MPNN) with a selectable aggregation (slide 69's sum vs mean
/// vs max comparison). Same sampling caveat as the GNN-101 probe.
OraclePtr MakeMpnnProbeOracle(size_t num_models,
                              std::vector<size_t> hidden_widths,
                              int aggregation,  // 0 sum, 1 mean, 2 max
                              double tolerance, uint64_t seed);

/// Sampled ρ(2-FGNN): folklore pair-based networks with the separation
/// power of folklore 2-WL (slide 63's higher-order architectures).
OraclePtr MakeFgnn2ProbeOracle(size_t num_models,
                               std::vector<size_t> hidden_widths,
                               double tolerance, uint64_t seed);

/// Sampled ρ(ID-GNN): identity-aware subgraph networks (slide 71),
/// strictly above color refinement (they see cycles through the marked
/// vertex) yet incomparable to full 2-WL.
OraclePtr MakeIdGnnProbeOracle(size_t num_models,
                               std::vector<size_t> hidden_widths,
                               double tolerance, uint64_t seed);

/// ρ of a fixed finite set of closed GEL expressions: equivalent iff all
/// expressions agree on both graphs within `tolerance`.
OraclePtr MakeGelSuiteOracle(std::vector<ExprPtr> expressions,
                             double tolerance, std::string name);

/// One row of a pairwise comparison: the verdict of every oracle.
struct PairVerdicts {
  std::string pair_name;
  std::vector<std::string> oracle_names;
  /// "equiv", "separated", or "error: ...".
  std::vector<std::string> verdicts;
};

/// Runs every oracle on the pair and collects verdicts (errors are
/// reported inline, not propagated).
PairVerdicts ComparePair(const std::string& pair_name, const Graph& a,
                         const Graph& b,
                         const std::vector<EquivalenceOracle*>& oracles);

/// Formats verdict rows as an aligned text table.
std::string FormatVerdictTable(const std::vector<PairVerdicts>& rows);

}  // namespace gelc

#endif  // GELC_SEPARATION_ORACLES_H_
