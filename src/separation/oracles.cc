#include "separation/oracles.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/eval.h"
#include "gnn/fgnn.h"
#include "gnn/gnn101.h"
#include "gnn/mpnn.h"
#include "gnn/subgraph.h"
#include "graph/isomorphism.h"
#include "hom/hom_count.h"
#include "hom/trees.h"
#include "wl/color_refinement.h"
#include "wl/kwl.h"

namespace gelc {

namespace {

class IsoOracle : public EquivalenceOracle {
 public:
  explicit IsoOracle(size_t max_steps) : max_steps_(max_steps) {}
  std::string name() const override { return "iso"; }
  Result<bool> Equivalent(const Graph& a, const Graph& b) override {
    return AreIsomorphic(a, b, max_steps_);
  }

 private:
  size_t max_steps_;
};

class CrOracle : public EquivalenceOracle {
 public:
  std::string name() const override { return "CR"; }
  Result<bool> Equivalent(const Graph& a, const Graph& b) override {
    return CrEquivalentGraphs(a, b);
  }
};

class KwlOracle : public EquivalenceOracle {
 public:
  explicit KwlOracle(size_t k) : k_(k) {}
  std::string name() const override {
    return std::to_string(k_) + "-WL";
  }
  Result<bool> Equivalent(const Graph& a, const Graph& b) override {
    return KwlEquivalentGraphs(a, b, k_);
  }

 private:
  size_t k_;
};

class TreeHomOracle : public EquivalenceOracle {
 public:
  explicit TreeHomOracle(size_t max_tree_vertices)
      : max_tree_vertices_(max_tree_vertices) {}
  std::string name() const override {
    return "hom(trees<=" + std::to_string(max_tree_vertices_) + ")";
  }
  Result<bool> Equivalent(const Graph& a, const Graph& b) override {
    if (trees_.empty()) {
      GELC_ASSIGN_OR_RETURN(trees_, AllTreesUpTo(max_tree_vertices_));
    }
    GELC_ASSIGN_OR_RETURN(std::vector<int64_t> pa, TreeHomProfile(a, trees_));
    GELC_ASSIGN_OR_RETURN(std::vector<int64_t> pb, TreeHomProfile(b, trees_));
    return pa == pb;
  }

 private:
  size_t max_tree_vertices_;
  std::vector<Graph> trees_;
};

class Gnn101ProbeOracle : public EquivalenceOracle {
 public:
  Gnn101ProbeOracle(size_t num_models, std::vector<size_t> hidden_widths,
                    double tolerance, uint64_t seed)
      : num_models_(num_models),
        hidden_widths_(std::move(hidden_widths)),
        tolerance_(tolerance),
        seed_(seed) {}
  std::string name() const override { return "GNN101-probe"; }
  Result<bool> Equivalent(const Graph& a, const Graph& b) override {
    if (a.feature_dim() != b.feature_dim()) return false;
    Rng rng(seed_);
    std::vector<size_t> widths = {a.feature_dim()};
    widths.insert(widths.end(), hidden_widths_.begin(),
                  hidden_widths_.end());
    for (size_t i = 0; i < num_models_; ++i) {
      GELC_ASSIGN_OR_RETURN(
          Gnn101Model model,
          Gnn101Model::Random(widths, Activation::kTanh, 0.8, &rng));
      GELC_ASSIGN_OR_RETURN(Matrix ea, model.GraphEmbedding(a));
      GELC_ASSIGN_OR_RETURN(Matrix eb, model.GraphEmbedding(b));
      if (ea.rows() != eb.rows() || ea.cols() != eb.cols()) return false;
      if (ea.MaxAbsDiff(eb) > tolerance_) return false;
    }
    return true;
  }

 private:
  size_t num_models_;
  std::vector<size_t> hidden_widths_;
  double tolerance_;
  uint64_t seed_;
};

class MpnnProbeOracle : public EquivalenceOracle {
 public:
  MpnnProbeOracle(size_t num_models, std::vector<size_t> hidden_widths,
                  Aggregation agg, double tolerance, uint64_t seed)
      : num_models_(num_models),
        hidden_widths_(std::move(hidden_widths)),
        agg_(agg),
        tolerance_(tolerance),
        seed_(seed) {}
  std::string name() const override {
    return std::string("MPNN[") + AggregationName(agg_) + "]-probe";
  }
  Result<bool> Equivalent(const Graph& a, const Graph& b) override {
    if (a.feature_dim() != b.feature_dim()) return false;
    Rng rng(seed_);
    std::vector<size_t> widths = {a.feature_dim()};
    widths.insert(widths.end(), hidden_widths_.begin(),
                  hidden_widths_.end());
    for (size_t i = 0; i < num_models_; ++i) {
      GELC_ASSIGN_OR_RETURN(MpnnModel model,
                            MpnnModel::Random(widths, agg_, 0.8, &rng));
      GELC_ASSIGN_OR_RETURN(Matrix ea, model.GraphEmbedding(a));
      GELC_ASSIGN_OR_RETURN(Matrix eb, model.GraphEmbedding(b));
      if (ea.MaxAbsDiff(eb) > tolerance_) return false;
    }
    return true;
  }

 private:
  size_t num_models_;
  std::vector<size_t> hidden_widths_;
  Aggregation agg_;
  double tolerance_;
  uint64_t seed_;
};

// Shared skeleton for sampled model-class probes over graph embeddings.
template <typename Model>
class ModelProbeOracle : public EquivalenceOracle {
 public:
  ModelProbeOracle(std::string name, size_t num_models,
                   std::vector<size_t> hidden_widths, double tolerance,
                   uint64_t seed)
      : name_(std::move(name)),
        num_models_(num_models),
        hidden_widths_(std::move(hidden_widths)),
        tolerance_(tolerance),
        seed_(seed) {}
  std::string name() const override { return name_; }
  Result<bool> Equivalent(const Graph& a, const Graph& b) override {
    if (a.feature_dim() != b.feature_dim()) return false;
    Rng rng(seed_);
    std::vector<size_t> widths = {a.feature_dim()};
    widths.insert(widths.end(), hidden_widths_.begin(),
                  hidden_widths_.end());
    for (size_t i = 0; i < num_models_; ++i) {
      GELC_ASSIGN_OR_RETURN(Model model, Model::Random(widths, 0.8, &rng));
      GELC_ASSIGN_OR_RETURN(Matrix ea, model.GraphEmbedding(a));
      GELC_ASSIGN_OR_RETURN(Matrix eb, model.GraphEmbedding(b));
      if (ea.rows() != eb.rows() || ea.cols() != eb.cols()) return false;
      if (ea.MaxAbsDiff(eb) > tolerance_) return false;
    }
    return true;
  }

 private:
  std::string name_;
  size_t num_models_;
  std::vector<size_t> hidden_widths_;
  double tolerance_;
  uint64_t seed_;
};

// IdGnnModel::Random takes an activation argument; adapt its signature to
// the probe skeleton.
struct IdGnnForProbe {
  IdGnnModel model;
  static Result<IdGnnForProbe> Random(const std::vector<size_t>& widths,
                                      double scale, Rng* rng) {
    GELC_ASSIGN_OR_RETURN(
        IdGnnModel m,
        IdGnnModel::Random(widths, Activation::kTanh, scale, rng));
    return IdGnnForProbe{std::move(m)};
  }
  Result<Matrix> GraphEmbedding(const Graph& g) const {
    return model.GraphEmbedding(g);
  }
};

class GelSuiteOracle : public EquivalenceOracle {
 public:
  GelSuiteOracle(std::vector<ExprPtr> expressions, double tolerance,
                 std::string name)
      : expressions_(std::move(expressions)),
        tolerance_(tolerance),
        name_(std::move(name)) {}
  std::string name() const override { return name_; }
  Result<bool> Equivalent(const Graph& a, const Graph& b) override {
    Evaluator ea(a);
    Evaluator eb(b);
    for (const ExprPtr& e : expressions_) {
      GELC_ASSIGN_OR_RETURN(std::vector<double> va, ea.EvalClosed(e));
      GELC_ASSIGN_OR_RETURN(std::vector<double> vb, eb.EvalClosed(e));
      if (va.size() != vb.size()) return false;
      for (size_t i = 0; i < va.size(); ++i) {
        if (std::abs(va[i] - vb[i]) > tolerance_) return false;
      }
    }
    return true;
  }

 private:
  std::vector<ExprPtr> expressions_;
  double tolerance_;
  std::string name_;
};

}  // namespace

OraclePtr MakeIsomorphismOracle(size_t max_steps) {
  return std::make_unique<IsoOracle>(max_steps);
}

OraclePtr MakeCrOracle() { return std::make_unique<CrOracle>(); }

OraclePtr MakeKwlOracle(size_t k) { return std::make_unique<KwlOracle>(k); }

OraclePtr MakeTreeHomOracle(size_t max_tree_vertices) {
  return std::make_unique<TreeHomOracle>(max_tree_vertices);
}

OraclePtr MakeGnn101ProbeOracle(size_t num_models,
                                std::vector<size_t> hidden_widths,
                                double tolerance, uint64_t seed) {
  return std::make_unique<Gnn101ProbeOracle>(num_models,
                                             std::move(hidden_widths),
                                             tolerance, seed);
}

OraclePtr MakeMpnnProbeOracle(size_t num_models,
                              std::vector<size_t> hidden_widths,
                              int aggregation, double tolerance,
                              uint64_t seed) {
  Aggregation agg = aggregation == 0   ? Aggregation::kSum
                    : aggregation == 1 ? Aggregation::kMean
                                       : Aggregation::kMax;
  return std::make_unique<MpnnProbeOracle>(num_models,
                                           std::move(hidden_widths), agg,
                                           tolerance, seed);
}

OraclePtr MakeFgnn2ProbeOracle(size_t num_models,
                               std::vector<size_t> hidden_widths,
                               double tolerance, uint64_t seed) {
  return std::make_unique<ModelProbeOracle<Fgnn2Model>>(
      "2FGNN-probe", num_models, std::move(hidden_widths), tolerance, seed);
}

OraclePtr MakeIdGnnProbeOracle(size_t num_models,
                               std::vector<size_t> hidden_widths,
                               double tolerance, uint64_t seed) {
  return std::make_unique<ModelProbeOracle<IdGnnForProbe>>(
      "IdGNN-probe", num_models, std::move(hidden_widths), tolerance, seed);
}

OraclePtr MakeGelSuiteOracle(std::vector<ExprPtr> expressions,
                             double tolerance, std::string name) {
  return std::make_unique<GelSuiteOracle>(std::move(expressions), tolerance,
                                          std::move(name));
}

PairVerdicts ComparePair(const std::string& pair_name, const Graph& a,
                         const Graph& b,
                         const std::vector<EquivalenceOracle*>& oracles) {
  PairVerdicts out;
  out.pair_name = pair_name;
  for (EquivalenceOracle* oracle : oracles) {
    out.oracle_names.push_back(oracle->name());
    Result<bool> r = oracle->Equivalent(a, b);
    if (!r.ok()) {
      out.verdicts.push_back("error: " + r.status().ToString());
    } else {
      out.verdicts.push_back(*r ? "equiv" : "separated");
    }
  }
  return out;
}

std::string FormatVerdictTable(const std::vector<PairVerdicts>& rows) {
  if (rows.empty()) return "";
  // Column widths.
  size_t name_width = 4;
  for (const auto& row : rows)
    name_width = std::max(name_width, row.pair_name.size());
  std::vector<size_t> col_width;
  for (const auto& n : rows[0].oracle_names)
    col_width.push_back(std::max<size_t>(n.size(), 9));
  for (const auto& row : rows)
    for (size_t i = 0; i < row.verdicts.size() && i < col_width.size(); ++i)
      col_width[i] = std::max(col_width[i], row.verdicts[i].size());

  std::ostringstream os;
  os << std::string(name_width, ' ');
  for (size_t i = 0; i < rows[0].oracle_names.size(); ++i) {
    os << "  " << rows[0].oracle_names[i]
       << std::string(col_width[i] - rows[0].oracle_names[i].size(), ' ');
  }
  os << "\n";
  for (const auto& row : rows) {
    os << row.pair_name
       << std::string(name_width - row.pair_name.size(), ' ');
    for (size_t i = 0; i < row.verdicts.size(); ++i) {
      os << "  " << row.verdicts[i]
         << std::string(col_width[i] - row.verdicts[i].size(), ' ');
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace gelc
