// Color refinement (a.k.a. 1-WL / naive vertex classification), slide 50:
//
//   1. Initialization: all vertices have their original colors (labels).
//   2. Refinement: v and w get different colors if there is a color c such
//      that v and w have a different number of neighbors of color c.
//
// Colors are canonical ids from a shared Interner, so several graphs can be
// refined jointly in lockstep and their colorings compared by id equality.
// ρ(color refinement) — pairs with identical color histograms — is the
// separation-power yardstick for MPNNs (slides 26, 51-52).
#ifndef GELC_WL_COLOR_REFINEMENT_H_
#define GELC_WL_COLOR_REFINEMENT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gelc {

/// Result of refining a set of graphs jointly until stability.
struct CrColoring {
  /// stable[g][v] = canonical stable color of vertex v in graph g.
  std::vector<std::vector<uint64_t>> stable;
  /// history[r][g][v] = color after round r (round 0 = initial labels).
  std::vector<std::vector<std::vector<uint64_t>>> history;
  /// Number of refinement rounds run until stability.
  size_t rounds = 0;

  /// Sorted multiset of stable colors of graph g (the graph's CR
  /// signature, slide 50: "a graph gets a color based on the multiset of
  /// colors of all its vertices").
  std::vector<uint64_t> GraphSignature(size_t g) const;
};

/// Runs color refinement jointly on `graphs` until the joint partition is
/// stable (or `max_rounds` if non-negative). Colors are comparable across
/// the supplied graphs only.
CrColoring RunColorRefinement(const std::vector<const Graph*>& graphs,
                              int max_rounds = -1);

/// True iff a and b have identical stable color histograms, i.e.
/// (a, b) ∈ ρ(color refinement) at the graph level.
bool CrEquivalentGraphs(const Graph& a, const Graph& b);

/// True iff vertex u of a and vertex v of b receive the same stable color
/// under joint refinement (vertex-level ρ).
bool CrEquivalentVertices(const Graph& a, VertexId u, const Graph& b,
                          VertexId v);

/// Number of distinct stable colors of a single graph (its CR partition
/// size); equals n iff CR discretizes the graph.
size_t CrPartitionSize(const Graph& g);

}  // namespace gelc

#endif  // GELC_WL_COLOR_REFINEMENT_H_
