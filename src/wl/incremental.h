// Incremental color refinement over a mutating graph (DESIGN.md §12).
//
// Color refinement is a fixpoint computation whose round-r color of v
// depends only on round r-1 colors of v and its out-neighbors — so an
// edge batch can only change colors inside the batch endpoints'
// expanding neighborhood. IncrementalColorRefiner keeps the full
// per-round color history of its graph and, on an update batch, patches
// just that frontier:
//
//   candidates_r = touched ∪ dirty_{r-1} ∪ InNeighbors(dirty_{r-1})
//
// where `touched` (the batch endpoints) stays in every round — their
// adjacency changed permanently, so their signature at *every* round
// must be recomputed — and dirty_{r-1} is the set of vertices whose
// round r-1 color actually changed. Rounds where the partition keeps
// refining past the previously stored fixpoint are computed in full
// (exactly the from-scratch round), and a batch whose candidate set
// exceeds `fallback_dirty_fraction` of the graph falls back to a full
// Refresh — past that point patching costs more than recomputing.
//
// Contract (pinned by tests/stream_test.cc at threads 1 and 4): after
// any Refresh/Update sequence, colors() induces the same partition of
// the vertex set, with the same stable-round count, as a from-scratch
// RunColorRefinement({&g}) on the current graph. Ids themselves may
// differ (the persistent interner assigns them in patch order); the
// partition and the round count are the invariants. All signature
// passes are parallel with a serial ascending-order intern pass, so
// results are bit-identical at any thread count.
#ifndef GELC_WL_INCREMENTAL_H_
#define GELC_WL_INCREMENTAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "graph/graph.h"

namespace gelc {

class IncrementalColorRefiner {
 public:
  struct Options {
    /// Fall back to a full Refresh when a round's candidate set exceeds
    /// this fraction of the vertex set.
    double fallback_dirty_fraction = 0.25;
  };

  explicit IncrementalColorRefiner(const Graph* g);
  IncrementalColorRefiner(const Graph* g, const Options& options);

  /// Recomputes the full color history from scratch (also resets the
  /// interner). Called by the constructor and by Update's fallback path.
  void Refresh();

  /// Patches the color history after a mutation batch. `touched` must
  /// contain every endpoint of every edge inserted or removed since the
  /// previous Update/Refresh (the replayer's ReplayBatch::touched is
  /// exactly this set); order and duplicates are fine.
  void Update(const std::vector<VertexId>& touched);

  /// Stable colors of the current graph (the last round's coloring).
  const std::vector<uint64_t>& colors() const { return history_.back(); }
  /// Rounds until stability, matching RunColorRefinement's count.
  size_t rounds() const { return history_.size() - 1; }
  /// Number of distinct stable colors (the CR partition size).
  size_t partition_size() const { return distinct_.back(); }

  /// Vertices recolored by the most recent Update (0 after Refresh).
  size_t last_recolored() const { return last_recolored_; }
  /// True when the most recent Update took the full-Refresh fallback.
  bool last_was_fallback() const { return last_was_fallback_; }

 private:
  // Computes round colors[r] for every vertex from colors[r-1] (the
  // from-scratch round body; used by Refresh and by fixpoint extension).
  std::vector<uint64_t> FullRound(const std::vector<uint64_t>& prev);
  // Rebuilds class_counts_[r]/distinct_[r] from history_[r].
  void RecountRound(size_t r);

  const Graph* g_;
  Options options_;
  Interner interner_;
  // history_[r][v] = color of v after round r; round 0 = feature colors.
  std::vector<std::vector<uint64_t>> history_;
  // class_counts_[r][color] = how many vertices carry `color` at round r
  // (maintained incrementally; its size is the round's distinct count).
  std::vector<std::unordered_map<uint64_t, uint32_t>> class_counts_;
  std::vector<size_t> distinct_;
  size_t last_recolored_ = 0;
  bool last_was_fallback_ = false;
};

}  // namespace gelc

#endif  // GELC_WL_INCREMENTAL_H_
