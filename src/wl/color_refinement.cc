#include "wl/color_refinement.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "base/hash.h"
#include "base/logging.h"
#include "base/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gelc {

namespace {

// Bitwise hash of a vertex's feature row (exact equality semantics).
std::string FeatureSignature(const Graph& g, size_t v) {
  std::string buf(g.feature_dim() * sizeof(double), '\0');
  for (size_t j = 0; j < g.feature_dim(); ++j) {
    double x = g.features().At(v, j);
    std::memcpy(buf.data() + j * sizeof(double), &x, sizeof(double));
  }
  return buf;
}

size_t CountDistinct(const std::vector<std::vector<uint64_t>>& colorings) {
  std::vector<uint64_t> all;
  for (const auto& c : colorings) all.insert(all.end(), c.begin(), c.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all.size();
}

}  // namespace

std::vector<uint64_t> CrColoring::GraphSignature(size_t g) const {
  GELC_CHECK(g < stable.size());
  std::vector<uint64_t> sig = stable[g];
  std::sort(sig.begin(), sig.end());
  return sig;
}

CrColoring RunColorRefinement(const std::vector<const Graph*>& graphs,
                              int max_rounds) {
  static obs::Counter* runs = obs::GetCounter("wl.cr.runs");
  static obs::Counter* rounds_total = obs::GetCounter("wl.cr.rounds");
  static obs::Histogram* rounds_hist = obs::GetHistogram(
      "wl.cr.rounds_to_stable", {1, 2, 4, 8, 16, 32, 64});
  runs->Increment();
  GELC_TRACE_SPAN("wl.cr", {{"graphs", graphs.size()}});
  Interner interner;
  CrColoring out;
  out.stable.resize(graphs.size());

  // Round 0: original labels. Signature bytes are built per shard, then
  // interned in a serial pass over the fixed (g, v) order so color ids are
  // assigned in the same first-seen order as a fully serial run.
  for (size_t g = 0; g < graphs.size(); ++g) {
    size_t n = graphs[g]->num_vertices();
    out.stable[g].resize(n);
    std::vector<std::string> sigs = ParallelMap(
        n, 64, [&](size_t v) { return FeatureSignature(*graphs[g], v); });
    for (size_t v = 0; v < n; ++v)
      out.stable[g][v] = interner.Intern(sigs[v]);
  }
  out.history.push_back(out.stable);

  size_t prev_distinct = CountDistinct(out.stable);
  for (size_t round = 1;; ++round) {
    if (max_rounds >= 0 && round > static_cast<size_t>(max_rounds)) break;
    obs::ScopedSpan round_span("wl.round", {{"round", round}});
    std::vector<std::vector<uint64_t>> next(graphs.size());
    for (size_t g = 0; g < graphs.size(); ++g) {
      const Graph& graph = *graphs[g];
      size_t n = graph.num_vertices();
      next[g].resize(n);
      // Pass 1 (parallel): per-vertex signature bytes, which depend only
      // on the previous round's colors — shards are independent.
      std::vector<std::string> sigs(n);
      ParallelFor(0, n, 32, [&](size_t vb, size_t ve) {
        std::vector<uint64_t> sig;
        for (size_t v = vb; v < ve; ++v) {
          sig.clear();
          sig.push_back(out.stable[g][v]);
          for (VertexId u : graph.Neighbors(static_cast<VertexId>(v)))
            sig.push_back(out.stable[g][u]);
          std::sort(sig.begin() + 1, sig.end());
          sigs[v] = EncodeWords(sig);
        }
      });
      // Pass 2 (serial, fixed order): deterministic id assignment.
      for (size_t v = 0; v < n; ++v) next[g][v] = interner.Intern(sigs[v]);
    }
    size_t distinct = CountDistinct(next);
    round_span.SetArg("colors", static_cast<int64_t>(distinct));
    rounds_total->Increment();
    out.stable = std::move(next);
    out.history.push_back(out.stable);
    out.rounds = round;
    if (distinct == prev_distinct) break;  // partition stable
    prev_distinct = distinct;
  }
  rounds_hist->Observe(static_cast<int64_t>(out.rounds));
  if (obs::MetricsEnabled()) {  // CountDistinct is not free; skip when off
    obs::GetGauge("wl.cr.colors")->Set(
        static_cast<double>(CountDistinct(out.stable)));
    obs::GetGauge("wl.cr.interner_size")->Set(
        static_cast<double>(interner.size()));
  }
  return out;
}

bool CrEquivalentGraphs(const Graph& a, const Graph& b) {
  CrColoring c = RunColorRefinement({&a, &b});
  return c.GraphSignature(0) == c.GraphSignature(1);
}

bool CrEquivalentVertices(const Graph& a, VertexId u, const Graph& b,
                          VertexId v) {
  CrColoring c = RunColorRefinement({&a, &b});
  return c.stable[0][u] == c.stable[1][v];
}

size_t CrPartitionSize(const Graph& g) {
  CrColoring c = RunColorRefinement({&g});
  std::vector<uint64_t> colors = c.stable[0];
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  return colors.size();
}

}  // namespace gelc
