// The k-dimensional Weisfeiler-Leman algorithm (folklore variant), slide 65.
//
// k-WL colors k-tuples of vertices. Initialization assigns every tuple its
// atomic type (the ordered isomorphism type of the induced labelled
// subgraph); refinement replaces each tuple color by
//
//   ( old color, {{ (c(t[1->w]), ..., c(t[k->w])) : w in V }} )
//
// where t[j->w] substitutes w at position j. This is the *folklore* k-WL
// whose k=1 instance is conventionally identified with color refinement and
// for which the hierarchy ρ(1-WL) ⊋ ρ(2-WL) ⊋ ... ⊋ ρ(graph iso) is strict.
//
// The paper (Theorem, slide 66): ρ(k-WL) = ρ(GEL^{k+1}(Ω,Θ)) for rich Ω, Θ.
#ifndef GELC_WL_KWL_H_
#define GELC_WL_KWL_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "graph/graph.h"

namespace gelc {

/// Result of refining k-tuple colorings of several graphs jointly.
struct KwlColoring {
  size_t k = 0;
  /// stable[g][t] = color of the t-th k-tuple of graph g, where tuples are
  /// indexed in mixed radix: t = v_1 * n^{k-1} + ... + v_k.
  std::vector<std::vector<uint64_t>> stable;
  /// Number of refinement rounds until stability.
  size_t rounds = 0;

  /// Sorted multiset of stable tuple colors of graph g.
  std::vector<uint64_t> GraphSignature(size_t g) const;
  /// Color of a specific tuple (size must equal k; entries < n_g).
  uint64_t TupleColor(size_t g, const std::vector<VertexId>& tuple,
                      size_t n) const;
};

/// Runs folklore k-WL jointly on `graphs`. k = 1 dispatches to color
/// refinement (the conventional identification). k must be in [1, 4] —
/// the n^k tables grow quickly.
Result<KwlColoring> RunKwl(const std::vector<const Graph*>& graphs, size_t k,
                           int max_rounds = -1);

/// True iff a and b have identical stable k-tuple color histograms,
/// i.e. (a, b) ∈ ρ(k-WL) at the graph level.
Result<bool> KwlEquivalentGraphs(const Graph& a, const Graph& b, size_t k);

/// The smallest k in [1, k_max] whose k-WL separates a from b, or 0 if
/// none does.
Result<size_t> MinimalSeparatingK(const Graph& a, const Graph& b,
                                  size_t k_max);

/// The *oblivious* k-WL variant (the numbering used in e.g. Morris et
/// al.): the refinement signature of a k-tuple is, per position j, the
/// multiset over w of the single color c(t[j->w]) — positions are not
/// synchronized over w as in the folklore variant. Known relationships
/// (exercised by tests): oblivious 1-WL degenerates on vertex-transitive
/// inputs, oblivious 2-WL ≡ color refinement, and oblivious (k+1)-WL ≡
/// folklore k-WL.
Result<KwlColoring> RunObliviousKwl(const std::vector<const Graph*>& graphs,
                                    size_t k, int max_rounds = -1);

/// Graph-level ρ(oblivious k-WL) for a pair.
Result<bool> ObliviousKwlEquivalentGraphs(const Graph& a, const Graph& b,
                                          size_t k);

}  // namespace gelc

#endif  // GELC_WL_KWL_H_
