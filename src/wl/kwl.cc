#include "wl/kwl.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "base/hash.h"
#include "base/logging.h"
#include "base/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wl/color_refinement.h"

namespace gelc {

namespace {

// Tuples per block when recoloring the n^k tuple space: signature bytes
// for one block are built in parallel shards, then interned serially in
// tuple order. Blocking bounds the materialized signatures regardless of
// table size; the fixed block size keeps the schedule deterministic.
constexpr size_t kTupleBlock = size_t{1} << 15;

// Decodes tuple index t (mixed radix base n) into vertex ids, most
// significant position first.
void DecodeTuple(size_t t, size_t n, size_t k, std::vector<size_t>* tuple) {
  tuple->resize(k);
  for (size_t i = k; i-- > 0;) {
    (*tuple)[i] = t % n;
    t /= n;
  }
}

std::string FeatureSignature(const Graph& g, size_t v) {
  std::string buf(g.feature_dim() * sizeof(double), '\0');
  for (size_t j = 0; j < g.feature_dim(); ++j) {
    double x = g.features().At(v, j);
    std::memcpy(buf.data() + j * sizeof(double), &x, sizeof(double));
  }
  return buf;
}

// Atomic type of an ordered k-tuple: per-position feature colors plus the
// full equality and adjacency patterns.
void AtomicTypeWords(const Graph& g, const std::vector<size_t>& tuple,
                     const std::vector<uint64_t>& feature_colors,
                     std::vector<uint64_t>* words) {
  words->clear();
  size_t k = tuple.size();
  for (size_t i = 0; i < k; ++i) words->push_back(feature_colors[tuple[i]]);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      uint64_t bits = 0;
      if (tuple[i] == tuple[j]) bits |= 1;
      if (i != j && g.HasEdge(static_cast<VertexId>(tuple[i]),
                              static_cast<VertexId>(tuple[j])))
        bits |= 2;
      words->push_back(bits);
    }
  }
}

// Initializes stable[g] with interned atomic types: signature bytes per
// block in parallel, ids assigned serially in tuple order (first-seen
// order identical to a serial run).
void InitAtomicTypes(const Graph& graph, size_t k, Interner* interner,
                     std::vector<uint64_t>* stable) {
  size_t n = graph.num_vertices();
  std::vector<uint64_t> feature_colors(n);
  {
    std::vector<std::string> fsigs = ParallelMap(
        n, 64, [&](size_t v) { return FeatureSignature(graph, v); });
    for (size_t v = 0; v < n; ++v)
      feature_colors[v] = interner->Intern(fsigs[v]);
  }
  size_t tuples = stable->size();
  std::vector<std::string> sigs;
  for (size_t block = 0; block < tuples; block += kTupleBlock) {
    size_t block_end = std::min(tuples, block + kTupleBlock);
    sigs.resize(block_end - block);
    ParallelFor(block, block_end, 128, [&](size_t tb, size_t te) {
      std::vector<size_t> tuple;
      std::vector<uint64_t> words;
      for (size_t t = tb; t < te; ++t) {
        DecodeTuple(t, n, k, &tuple);
        AtomicTypeWords(graph, tuple, feature_colors, &words);
        sigs[t - block] = EncodeWords(words);
      }
    });
    for (size_t t = block; t < block_end; ++t)
      (*stable)[t] = interner->Intern(sigs[t - block]);
  }
}

size_t CountDistinct(const std::vector<std::vector<uint64_t>>& colorings) {
  std::vector<uint64_t> all;
  for (const auto& c : colorings) all.insert(all.end(), c.begin(), c.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all.size();
}

size_t PowN(size_t n, size_t k) {
  size_t r = 1;
  for (size_t i = 0; i < k; ++i) r *= n;
  return r;
}

}  // namespace

std::vector<uint64_t> KwlColoring::GraphSignature(size_t g) const {
  GELC_CHECK(g < stable.size());
  std::vector<uint64_t> sig = stable[g];
  std::sort(sig.begin(), sig.end());
  return sig;
}

uint64_t KwlColoring::TupleColor(size_t g, const std::vector<VertexId>& tuple,
                                 size_t n) const {
  GELC_CHECK(tuple.size() == k);
  size_t idx = 0;
  for (VertexId v : tuple) {
    GELC_CHECK(v < n);
    idx = idx * n + v;
  }
  return stable[g][idx];
}

Result<KwlColoring> RunKwl(const std::vector<const Graph*>& graphs, size_t k,
                           int max_rounds) {
  if (k == 0 || k > 4) {
    return Status::InvalidArgument("k-WL supports k in [1, 4]");
  }
  if (k == 1) {
    // Conventional identification: 1-WL == color refinement.
    CrColoring cr = RunColorRefinement(graphs, max_rounds);
    KwlColoring out;
    out.k = 1;
    out.stable = std::move(cr.stable);
    out.rounds = cr.rounds;
    return out;
  }
  // Guard against runaway table sizes (n^k tuples per graph).
  for (const Graph* g : graphs) {
    size_t tuples = PowN(g->num_vertices(), k);
    if (tuples > 2'000'000) {
      return Status::OutOfRange("k-WL tuple table too large (n^k > 2e6)");
    }
  }

  static obs::Counter* runs = obs::GetCounter("wl.kwl.runs");
  static obs::Counter* rounds_total = obs::GetCounter("wl.kwl.rounds");
  static obs::Histogram* rounds_hist = obs::GetHistogram(
      "wl.kwl.rounds_to_stable", {1, 2, 4, 8, 16, 32, 64});
  runs->Increment();
  GELC_TRACE_SPAN("wl.kwl", {{"k", k}, {"graphs", graphs.size()}});
  Interner interner;
  KwlColoring out;
  out.k = k;
  out.stable.resize(graphs.size());

  // Initialization: atomic types.
  for (size_t g = 0; g < graphs.size(); ++g) {
    out.stable[g].resize(PowN(graphs[g]->num_vertices(), k));
    InitAtomicTypes(*graphs[g], k, &interner, &out.stable[g]);
  }

  size_t prev_distinct = CountDistinct(out.stable);
  for (size_t round = 1;; ++round) {
    if (max_rounds >= 0 && round > static_cast<size_t>(max_rounds)) break;
    obs::ScopedSpan round_span("wl.round", {{"round", round}});
    std::vector<std::vector<uint64_t>> next(graphs.size());
    for (size_t g = 0; g < graphs.size(); ++g) {
      size_t n = graphs[g]->num_vertices();
      size_t tuples = out.stable[g].size();
      next[g].resize(tuples);
      // Precomputed strides for substituting position j: replacing v_j by w
      // changes the index by (w - v_j) * n^{k-1-j}.
      std::vector<size_t> stride(k, 1);
      for (size_t j = k; j-- > 1;) stride[j - 1] = stride[j] * n;
      // Pass 1 over each block (parallel): the raw refinement signature
      // [old color | sorted list of the n substituted k-vectors]. Sorting
      // the raw k-vectors — rather than interning each to an id first, as
      // the serial-era code did — keeps the bytes independent of interner
      // state, so every shard schedule and thread count produces the same
      // signature; ids are then assigned serially in tuple order.
      std::vector<std::string> sigs;
      for (size_t block = 0; block < tuples; block += kTupleBlock) {
        size_t block_end = std::min(tuples, block + kTupleBlock);
        sigs.resize(block_end - block);
        ParallelFor(block, block_end, 64, [&](size_t tb, size_t te) {
          std::vector<size_t> tuple;
          std::vector<std::vector<uint64_t>> wvecs(
              n, std::vector<uint64_t>(k));
          std::vector<uint64_t> sig;
          for (size_t t = tb; t < te; ++t) {
            DecodeTuple(t, n, k, &tuple);
            for (size_t w = 0; w < n; ++w)
              for (size_t j = 0; j < k; ++j)
                wvecs[w][j] = out.stable[g][t + (w - tuple[j]) * stride[j]];
            std::sort(wvecs.begin(), wvecs.end());
            sig.clear();
            sig.reserve(1 + n * k);
            sig.push_back(out.stable[g][t]);
            for (const auto& wv : wvecs)
              sig.insert(sig.end(), wv.begin(), wv.end());
            sigs[t - block] = EncodeWords(sig);
          }
        });
        for (size_t t = block; t < block_end; ++t)
          next[g][t] = interner.Intern(sigs[t - block]);
      }
    }
    size_t distinct = CountDistinct(next);
    round_span.SetArg("colors", static_cast<int64_t>(distinct));
    rounds_total->Increment();
    out.stable = std::move(next);
    out.rounds = round;
    if (distinct == prev_distinct) break;
    prev_distinct = distinct;
  }
  rounds_hist->Observe(static_cast<int64_t>(out.rounds));
  if (obs::MetricsEnabled()) {  // CountDistinct is not free; skip when off
    obs::GetGauge("wl.kwl.colors")->Set(
        static_cast<double>(CountDistinct(out.stable)));
    obs::GetGauge("wl.kwl.interner_size")->Set(
        static_cast<double>(interner.size()));
  }
  return out;
}

Result<KwlColoring> RunObliviousKwl(const std::vector<const Graph*>& graphs,
                                    size_t k, int max_rounds) {
  if (k == 0 || k > 4) {
    return Status::InvalidArgument("oblivious k-WL supports k in [1, 4]");
  }
  for (const Graph* g : graphs) {
    size_t tuples = PowN(g->num_vertices(), k);
    if (tuples > 2'000'000) {
      return Status::OutOfRange("k-WL tuple table too large (n^k > 2e6)");
    }
  }

  static obs::Counter* runs = obs::GetCounter("wl.oblivious_kwl.runs");
  static obs::Counter* rounds_total = obs::GetCounter("wl.oblivious_kwl.rounds");
  static obs::Histogram* rounds_hist = obs::GetHistogram(
      "wl.oblivious_kwl.rounds_to_stable", {1, 2, 4, 8, 16, 32, 64});
  runs->Increment();
  GELC_TRACE_SPAN("wl.oblivious_kwl", {{"k", k}, {"graphs", graphs.size()}});
  Interner interner;
  KwlColoring out;
  out.k = k;
  out.stable.resize(graphs.size());

  for (size_t g = 0; g < graphs.size(); ++g) {
    out.stable[g].resize(PowN(graphs[g]->num_vertices(), k));
    InitAtomicTypes(*graphs[g], k, &interner, &out.stable[g]);
  }

  size_t prev_distinct = CountDistinct(out.stable);
  for (size_t round = 1;; ++round) {
    if (max_rounds >= 0 && round > static_cast<size_t>(max_rounds)) break;
    obs::ScopedSpan round_span("wl.round", {{"round", round}});
    std::vector<std::vector<uint64_t>> next(graphs.size());
    for (size_t g = 0; g < graphs.size(); ++g) {
      size_t n = graphs[g]->num_vertices();
      size_t tuples = out.stable[g].size();
      next[g].resize(tuples);
      std::vector<size_t> stride(k, 1);
      for (size_t j = k; j-- > 1;) stride[j - 1] = stride[j] * n;
      // Same two-pass scheme as folklore k-WL: per position, the SORTED
      // multiset over w of the single substituted color is embedded raw
      // into the signature (no intermediate interning), so the bytes are
      // interner-independent and identical for every thread count.
      std::vector<std::string> sigs;
      for (size_t block = 0; block < tuples; block += kTupleBlock) {
        size_t block_end = std::min(tuples, block + kTupleBlock);
        sigs.resize(block_end - block);
        ParallelFor(block, block_end, 64, [&](size_t tb, size_t te) {
          std::vector<size_t> tuple;
          std::vector<uint64_t> sig;
          for (size_t t = tb; t < te; ++t) {
            DecodeTuple(t, n, k, &tuple);
            sig.clear();
            sig.reserve(1 + k * n);
            sig.push_back(out.stable[g][t]);
            for (size_t j = 0; j < k; ++j) {
              size_t head = sig.size();
              for (size_t w = 0; w < n; ++w)
                sig.push_back(
                    out.stable[g][t + (w - tuple[j]) * stride[j]]);
              std::sort(sig.begin() + head, sig.end());
            }
            sigs[t - block] = EncodeWords(sig);
          }
        });
        for (size_t t = block; t < block_end; ++t)
          next[g][t] = interner.Intern(sigs[t - block]);
      }
    }
    size_t distinct = CountDistinct(next);
    round_span.SetArg("colors", static_cast<int64_t>(distinct));
    rounds_total->Increment();
    out.stable = std::move(next);
    out.rounds = round;
    if (distinct == prev_distinct) break;
    prev_distinct = distinct;
  }
  rounds_hist->Observe(static_cast<int64_t>(out.rounds));
  return out;
}

Result<bool> ObliviousKwlEquivalentGraphs(const Graph& a, const Graph& b,
                                          size_t k) {
  GELC_ASSIGN_OR_RETURN(KwlColoring c, RunObliviousKwl({&a, &b}, k));
  return c.GraphSignature(0) == c.GraphSignature(1);
}

Result<bool> KwlEquivalentGraphs(const Graph& a, const Graph& b, size_t k) {
  GELC_ASSIGN_OR_RETURN(KwlColoring c, RunKwl({&a, &b}, k));
  return c.GraphSignature(0) == c.GraphSignature(1);
}

Result<size_t> MinimalSeparatingK(const Graph& a, const Graph& b,
                                  size_t k_max) {
  for (size_t k = 1; k <= k_max; ++k) {
    GELC_ASSIGN_OR_RETURN(bool equivalent, KwlEquivalentGraphs(a, b, k));
    if (!equivalent) return k;
  }
  return size_t{0};
}

}  // namespace gelc
