// The Weisfeiler-Leman subtree kernel — the classical "graph kernel
// method" hypothesis class of slide 17, built directly on the color
// refinement of wl/color_refinement.h:
//
//   K_h(G, H) = Σ_{r=0..h} Σ_{colors c} count_G,r(c) * count_H,r(c),
//
// i.e. the inner product of per-round color histograms. Two graphs are
// CR-equivalent iff their feature maps agree for every h — so the
// kernel's separation power coincides with ρ(color refinement), placing
// kernel methods at exactly the MPNN rung of the paper's ladder.
#ifndef GELC_WL_KERNEL_H_
#define GELC_WL_KERNEL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "base/status.h"
#include "graph/graph.h"
#include "tensor/matrix.h"

namespace gelc {

/// Sparse WL feature map of one graph: per-round color counts.
using WlFeatureMap = std::map<std::pair<size_t, uint64_t>, double>;

/// Computes the h-round WL subtree kernel matrix K[i][j] for a set of
/// graphs (colors are shared across the set, so entries are comparable).
/// h < 0 runs to joint stability.
Result<Matrix> WlSubtreeKernelMatrix(const std::vector<const Graph*>& graphs,
                                     int rounds);

/// Cosine-normalizes a kernel matrix: K̂(i,j) = K(i,j)/√(K(i,i)K(j,j)).
/// Standard practice for WL kernels, whose deep-round features are nearly
/// orthogonal across graphs (diagonal dominance) without it. Zero
/// diagonal entries normalize to zero rows.
Matrix NormalizeKernel(const Matrix& kernel);

/// Kernel ridge classification on a precomputed kernel: fits
/// alpha = (K + lambda I)^{-1} Y on the training block and predicts
/// sign-based labels for all graphs. Returns predicted class (0/1) per
/// graph. `labels` are 0/1; only the first `train_count` entries are
/// used for fitting.
Result<std::vector<size_t>> KernelRidgePredict(const Matrix& kernel,
                                               const std::vector<size_t>& labels,
                                               size_t train_count,
                                               double lambda);

}  // namespace gelc

#endif  // GELC_WL_KERNEL_H_
