#include "wl/kernel.h"
#include <cmath>

#include "tensor/linalg.h"
#include "wl/color_refinement.h"

namespace gelc {

Result<Matrix> WlSubtreeKernelMatrix(const std::vector<const Graph*>& graphs,
                                     int rounds) {
  CrColoring coloring = RunColorRefinement(graphs, rounds);
  size_t m = graphs.size();
  // Per-graph sparse feature maps over (round, color).
  std::vector<WlFeatureMap> features(m);
  for (size_t r = 0; r < coloring.history.size(); ++r) {
    for (size_t g = 0; g < m; ++g) {
      for (uint64_t c : coloring.history[r][g]) {
        features[g][{r, c}] += 1.0;
      }
    }
  }
  Matrix k(m, m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i; j < m; ++j) {
      double dot = 0.0;
      // Iterate over the smaller map.
      const WlFeatureMap& a = features[i].size() <= features[j].size()
                                  ? features[i]
                                  : features[j];
      const WlFeatureMap& b = features[i].size() <= features[j].size()
                                  ? features[j]
                                  : features[i];
      for (const auto& [key, value] : a) {
        auto it = b.find(key);
        if (it != b.end()) dot += value * it->second;
      }
      k.At(i, j) = dot;
      k.At(j, i) = dot;
    }
  }
  return k;
}

Matrix NormalizeKernel(const Matrix& kernel) {
  size_t m = kernel.rows();
  Matrix out(m, kernel.cols());
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < kernel.cols(); ++j) {
      double denom = kernel.At(i, i) * kernel.At(j, j);
      out.At(i, j) = denom > 0 ? kernel.At(i, j) / std::sqrt(denom) : 0.0;
    }
  }
  return out;
}

Result<std::vector<size_t>> KernelRidgePredict(
    const Matrix& kernel, const std::vector<size_t>& labels,
    size_t train_count, double lambda) {
  size_t m = kernel.rows();
  if (kernel.cols() != m) {
    return Status::InvalidArgument("kernel matrix must be square");
  }
  if (labels.size() != m || train_count == 0 || train_count > m) {
    return Status::InvalidArgument("bad labels / train_count");
  }
  // Train block.
  Matrix k_train(train_count, train_count);
  Matrix y(train_count, 1);
  for (size_t i = 0; i < train_count; ++i) {
    y.At(i, 0) = labels[i] == 1 ? 1.0 : -1.0;
    for (size_t j = 0; j < train_count; ++j)
      k_train.At(i, j) = kernel.At(i, j);
  }
  for (size_t i = 0; i < train_count; ++i) k_train.At(i, i) += lambda;
  GELC_ASSIGN_OR_RETURN(Matrix alpha, SolveLinearSystem(k_train, y));
  // Predict: f(x) = Σ_i alpha_i K(x_i, x).
  std::vector<size_t> pred(m);
  for (size_t x = 0; x < m; ++x) {
    double score = 0.0;
    for (size_t i = 0; i < train_count; ++i)
      score += alpha.At(i, 0) * kernel.At(i, x);
    pred[x] = score >= 0.0 ? 1 : 0;
  }
  return pred;
}

}  // namespace gelc
