#include "wl/kernel.h"

#include <algorithm>
#include <cmath>

#include "base/parallel.h"
#include "tensor/linalg.h"
#include "wl/color_refinement.h"

namespace gelc {

Result<Matrix> WlSubtreeKernelMatrix(const std::vector<const Graph*>& graphs,
                                     int rounds) {
  CrColoring coloring = RunColorRefinement(graphs, rounds);
  size_t m = graphs.size();
  // Per-graph sparse feature maps over (round, color); graphs are
  // independent, so the maps are built one graph per shard slot.
  std::vector<WlFeatureMap> features(m);
  ParallelFor(0, m, 1, [&](size_t gb, size_t ge) {
    for (size_t g = gb; g < ge; ++g) {
      for (size_t r = 0; r < coloring.history.size(); ++r) {
        for (uint64_t c : coloring.history[r][g]) {
          features[g][{r, c}] += 1.0;
        }
      }
    }
  });
  Matrix k(m, m);
  // Gram entries partitioned over the flattened upper triangle; entry
  // (i, j) writes only k(i,j) / k(j,i), so shards never overlap and the
  // matrix is bit-identical for any thread count (std::map iteration is
  // key-ordered, so even summation order is schedule-independent).
  // row_offset[i] = flat index of (i, i); row i holds m - i entries.
  std::vector<size_t> row_offset(m + 1, 0);
  for (size_t i = 0; i < m; ++i) row_offset[i + 1] = row_offset[i] + (m - i);
  ParallelFor(0, row_offset[m], 8, [&](size_t begin, size_t end) {
    size_t i = static_cast<size_t>(
        std::upper_bound(row_offset.begin(), row_offset.end(), begin) -
        row_offset.begin() - 1);
    for (size_t idx = begin; idx < end; ++idx) {
      while (idx >= row_offset[i + 1]) ++i;
      size_t j = i + (idx - row_offset[i]);
      double dot = 0.0;
      // Iterate over the smaller map.
      const WlFeatureMap& a = features[i].size() <= features[j].size()
                                  ? features[i]
                                  : features[j];
      const WlFeatureMap& b = features[i].size() <= features[j].size()
                                  ? features[j]
                                  : features[i];
      for (const auto& [key, value] : a) {
        auto it = b.find(key);
        if (it != b.end()) dot += value * it->second;
      }
      k.At(i, j) = dot;
      k.At(j, i) = dot;
    }
  });
  return k;
}

Matrix NormalizeKernel(const Matrix& kernel) {
  size_t m = kernel.rows();
  Matrix out(m, kernel.cols());
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < kernel.cols(); ++j) {
      double denom = kernel.At(i, i) * kernel.At(j, j);
      out.At(i, j) = denom > 0 ? kernel.At(i, j) / std::sqrt(denom) : 0.0;
    }
  }
  return out;
}

Result<std::vector<size_t>> KernelRidgePredict(
    const Matrix& kernel, const std::vector<size_t>& labels,
    size_t train_count, double lambda) {
  size_t m = kernel.rows();
  if (kernel.cols() != m) {
    return Status::InvalidArgument("kernel matrix must be square");
  }
  if (labels.size() != m || train_count == 0 || train_count > m) {
    return Status::InvalidArgument("bad labels / train_count");
  }
  // Train block.
  Matrix k_train(train_count, train_count);
  Matrix y(train_count, 1);
  for (size_t i = 0; i < train_count; ++i) {
    y.At(i, 0) = labels[i] == 1 ? 1.0 : -1.0;
    for (size_t j = 0; j < train_count; ++j)
      k_train.At(i, j) = kernel.At(i, j);
  }
  for (size_t i = 0; i < train_count; ++i) k_train.At(i, i) += lambda;
  GELC_ASSIGN_OR_RETURN(Matrix alpha, SolveLinearSystem(k_train, y));
  // Predict: f(x) = Σ_i alpha_i K(x_i, x).
  std::vector<size_t> pred(m);
  for (size_t x = 0; x < m; ++x) {
    double score = 0.0;
    for (size_t i = 0; i < train_count; ++i)
      score += alpha.At(i, 0) * kernel.At(i, x);
    pred[x] = score >= 0.0 ? 1 : 0;
  }
  return pred;
}

}  // namespace gelc
