#include "wl/incremental.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "base/logging.h"
#include "base/parallel.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "obs/trace.h"

namespace gelc {

namespace {

// Bitwise hash of a vertex's feature row — byte-identical to the
// round-0 signature in color_refinement.cc (exact equality semantics).
std::string FeatureSignature(const Graph& g, size_t v) {
  std::string buf(g.feature_dim() * sizeof(double), '\0');
  for (size_t j = 0; j < g.feature_dim(); ++j) {
    double x = g.features().At(v, j);
    std::memcpy(buf.data() + j * sizeof(double), &x, sizeof(double));
  }
  return buf;
}

// Round-r signature bytes of v from the previous round's colors: own
// color first, then the out-neighbors' colors sorted — the same word
// layout RunColorRefinement interns.
std::string RoundSignature(const Graph& g, const std::vector<uint64_t>& prev,
                           size_t v) {
  std::vector<uint64_t> sig;
  sig.reserve(1 + g.OutDegree(static_cast<VertexId>(v)));
  sig.push_back(prev[v]);
  for (VertexId u : g.Neighbors(static_cast<VertexId>(v)))
    sig.push_back(prev[u]);
  std::sort(sig.begin() + 1, sig.end());
  return EncodeWords(sig);
}

}  // namespace

IncrementalColorRefiner::IncrementalColorRefiner(const Graph* g)
    : IncrementalColorRefiner(g, Options()) {}

IncrementalColorRefiner::IncrementalColorRefiner(const Graph* g,
                                                 const Options& options)
    : g_(g), options_(options) {
  GELC_CHECK(g_ != nullptr);
  Refresh();
}

std::vector<uint64_t> IncrementalColorRefiner::FullRound(
    const std::vector<uint64_t>& prev) {
  const size_t n = g_->num_vertices();
  std::vector<std::string> sigs(n);
  ParallelFor(0, n, 32, [&](size_t vb, size_t ve) {
    for (size_t v = vb; v < ve; ++v) sigs[v] = RoundSignature(*g_, prev, v);
  });
  std::vector<uint64_t> next(n);
  for (size_t v = 0; v < n; ++v) next[v] = interner_.Intern(sigs[v]);
  return next;
}

void IncrementalColorRefiner::RecountRound(size_t r) {
  if (class_counts_.size() <= r) class_counts_.resize(r + 1);
  if (distinct_.size() <= r) distinct_.resize(r + 1);
  class_counts_[r].clear();
  for (uint64_t c : history_[r]) ++class_counts_[r][c];
  distinct_[r] = class_counts_[r].size();
}

void IncrementalColorRefiner::Refresh() {
  static obs::Counter* refreshes = obs::GetCounter("wl.cr.inc.refreshes");
  refreshes->Increment();
  GELC_OBS_TIME("stream.refine_full");
  GELC_TRACE_SPAN("wl.cr.inc.refresh", {{"n", g_->num_vertices()}});
  interner_ = Interner();
  history_.clear();
  class_counts_.clear();
  distinct_.clear();
  last_recolored_ = 0;

  const size_t n = g_->num_vertices();
  std::vector<std::string> sigs =
      ParallelMap(n, 64, [&](size_t v) { return FeatureSignature(*g_, v); });
  std::vector<uint64_t> colors(n);
  for (size_t v = 0; v < n; ++v) colors[v] = interner_.Intern(sigs[v]);
  history_.push_back(std::move(colors));
  RecountRound(0);

  // Same loop shape and stop rule as RunColorRefinement: compute the
  // round, record it, stop once the distinct count stops growing.
  for (size_t r = 1;; ++r) {
    history_.push_back(FullRound(history_[r - 1]));
    RecountRound(r);
    if (distinct_[r] == distinct_[r - 1]) break;
  }
}

void IncrementalColorRefiner::Update(const std::vector<VertexId>& touched) {
  static obs::Counter* updates = obs::GetCounter("wl.cr.inc.updates");
  static obs::Counter* fallbacks = obs::GetCounter("wl.cr.inc.fallbacks");
  static obs::Counter* recolored_ctr = obs::GetCounter("wl.cr.inc.recolored");
  static obs::Counter* saved = obs::GetCounter("wl.cr.inc.saved");
  static obs::Histogram* dirty_hist = obs::GetHistogram(
      "stream.dirty_set_size", {1, 4, 16, 64, 256, 1024, 4096});
  updates->Increment();
  last_was_fallback_ = false;
  const size_t n = g_->num_vertices();
  if (touched.empty() || n == 0) {
    last_recolored_ = 0;
    return;
  }
  GELC_OBS_TIME("stream.refine_update");
  GELC_TRACE_SPAN("wl.cr.inc.update", {{"touched", touched.size()}});

  // Round 0 depends only on features, so edge batches never dirty it;
  // the batch endpoints seed round 1's candidate set.
  std::vector<VertexId> endpoints(touched);
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());
  for (VertexId v : endpoints) GELC_CHECK(v < n);

  const auto fallback_cap = static_cast<size_t>(
      options_.fallback_dirty_fraction * static_cast<double>(n));
  size_t recolored = 0;
  std::vector<VertexId> dirty_prev;  // dirty set of round r-1
  std::vector<uint8_t> marked(n, 0);
  std::vector<VertexId> candidates;
  std::vector<std::string> sigs;

  for (size_t r = 1;; ++r) {
    if (r >= history_.size()) {
      // The partition keeps refining past the old fixpoint: compute the
      // whole round exactly as a from-scratch run would.
      history_.push_back(FullRound(history_[r - 1]));
      RecountRound(r);
    } else {
      // candidates_r = endpoints ∪ dirty_{r-1} ∪ InNeighbors(dirty_{r-1}):
      // everything whose round-r signature can differ from the stored one.
      candidates.clear();
      auto mark = [&](VertexId v) {
        if (!marked[v]) {
          marked[v] = 1;
          candidates.push_back(v);
        }
      };
      for (VertexId v : endpoints) mark(v);
      for (VertexId u : dirty_prev) {
        mark(u);
        for (VertexId w : g_->InNeighbors(u)) mark(w);
      }
      std::sort(candidates.begin(), candidates.end());
      for (VertexId v : candidates) marked[v] = 0;
      if (candidates.size() > fallback_cap) {
        fallbacks->Increment();
        last_was_fallback_ = true;
        Refresh();
        return;
      }
      dirty_hist->Observe(static_cast<int64_t>(candidates.size()));
      saved->Add(n - candidates.size());

      // Pass 1 (parallel): signature bytes from the already-patched
      // round r-1 colors. Pass 2 (serial, ascending vertex order):
      // deterministic intern + in-place patch of round r.
      sigs.resize(candidates.size());
      ParallelFor(0, candidates.size(), 32, [&](size_t cb, size_t ce) {
        for (size_t i = cb; i < ce; ++i)
          sigs[i] = RoundSignature(*g_, history_[r - 1], candidates[i]);
      });
      std::vector<VertexId> dirty_next;
      for (size_t i = 0; i < candidates.size(); ++i) {
        const VertexId v = candidates[i];
        const uint64_t id = interner_.Intern(sigs[i]);
        uint64_t& slot = history_[r][v];
        if (id == slot) continue;
        auto it = class_counts_[r].find(slot);
        if (--it->second == 0) class_counts_[r].erase(it);
        ++class_counts_[r][id];
        slot = id;
        dirty_next.push_back(v);
        ++recolored;
      }
      distinct_[r] = class_counts_[r].size();
      dirty_prev = std::move(dirty_next);
    }
    if (distinct_[r] == distinct_[r - 1]) {
      // The partition is stable at round r — exactly the from-scratch
      // stop rule. Later stored rounds (if any) are now meaningless.
      history_.resize(r + 1);
      class_counts_.resize(r + 1);
      distinct_.resize(r + 1);
      break;
    }
  }
  last_recolored_ = recolored;
  recolored_ctr->Add(recolored);
}

}  // namespace gelc
