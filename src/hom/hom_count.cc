#include "hom/hom_count.h"

#include <limits>

#include "base/logging.h"

namespace gelc {

namespace {

constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

// a + b with overflow detection.
bool CheckedAdd(int64_t a, int64_t b, int64_t* out) {
  if (a > kMax - b) return false;
  *out = a + b;
  return true;
}

// a * b with overflow detection (non-negative inputs).
bool CheckedMul(int64_t a, int64_t b, int64_t* out) {
  if (a != 0 && b > kMax / a) return false;
  *out = a * b;
  return true;
}

Status ValidateTree(const Graph& pattern) {
  size_t n = pattern.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty pattern");
  if (pattern.directed()) {
    return Status::InvalidArgument("pattern must be undirected");
  }
  if (pattern.num_edges() != n - 1 ||
      pattern.ConnectedComponents().size() != 1) {
    return Status::InvalidArgument("pattern is not a tree");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<int64_t>> CountRootedTreeHomomorphisms(
    const Graph& pattern, VertexId root, const Graph& g) {
  GELC_RETURN_NOT_OK(ValidateTree(pattern));
  size_t pn = pattern.num_vertices();
  if (root >= pn) return Status::OutOfRange("root out of range");
  size_t n = g.num_vertices();

  // Post-order over the pattern rooted at `root`.
  std::vector<VertexId> order;
  std::vector<VertexId> parent(pn, root);
  {
    std::vector<VertexId> stack = {root};
    std::vector<bool> visited(pn, false);
    visited[root] = true;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      order.push_back(v);
      for (VertexId u : pattern.Neighbors(v)) {
        if (visited[u]) continue;
        visited[u] = true;
        parent[u] = v;
        stack.push_back(u);
      }
    }
  }

  // dp[u][v] = #homs of the subtree rooted at pattern vertex u mapping
  // u -> graph vertex v. Processed in reverse BFS order (leaves first).
  std::vector<std::vector<int64_t>> dp(pn, std::vector<int64_t>(n, 1));
  for (size_t i = order.size(); i-- > 0;) {
    VertexId u = order[i];
    for (VertexId c : pattern.Neighbors(u)) {
      if (c == root || parent[c] != u) continue;  // only true children of u
      // Fold the child's counts over g-neighbors into dp[u].
      for (size_t v = 0; v < n; ++v) {
        int64_t sum = 0;
        for (VertexId w : g.Neighbors(static_cast<VertexId>(v))) {
          if (!CheckedAdd(sum, dp[c][w], &sum)) {
            return Status::ArithmeticOverflow("hom count exceeds int64");
          }
        }
        if (!CheckedMul(dp[u][v], sum, &dp[u][v])) {
          return Status::ArithmeticOverflow("hom count exceeds int64");
        }
      }
    }
  }
  return dp[root];
}

Result<int64_t> CountTreeHomomorphisms(const Graph& pattern, const Graph& g) {
  GELC_ASSIGN_OR_RETURN(std::vector<int64_t> rooted,
                        CountRootedTreeHomomorphisms(pattern, 0, g));
  int64_t total = 0;
  for (int64_t x : rooted) {
    if (!CheckedAdd(total, x, &total)) {
      return Status::ArithmeticOverflow("hom count exceeds int64");
    }
  }
  return total;
}

Result<int64_t> CountCycleHomomorphisms(size_t k, const Graph& g) {
  if (k < 3) return Status::InvalidArgument("cycle length must be >= 3");
  size_t n = g.num_vertices();
  // Integer matrix power with overflow-checked arithmetic.
  std::vector<std::vector<int64_t>> adj(n, std::vector<int64_t>(n, 0));
  for (size_t u = 0; u < n; ++u)
    for (VertexId v : g.Neighbors(static_cast<VertexId>(u)))
      adj[u][v] = 1;
  std::vector<std::vector<int64_t>> power = adj;
  for (size_t step = 1; step < k; ++step) {
    std::vector<std::vector<int64_t>> next(n, std::vector<int64_t>(n, 0));
    for (size_t i = 0; i < n; ++i) {
      for (size_t l = 0; l < n; ++l) {
        if (power[i][l] == 0) continue;
        for (size_t j = 0; j < n; ++j) {
          if (adj[l][j] == 0) continue;
          int64_t term;
          if (!CheckedMul(power[i][l], adj[l][j], &term) ||
              !CheckedAdd(next[i][j], term, &next[i][j])) {
            return Status::ArithmeticOverflow("cycle hom count overflow");
          }
        }
      }
    }
    power = std::move(next);
  }
  int64_t trace = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!CheckedAdd(trace, power[i][i], &trace)) {
      return Status::ArithmeticOverflow("cycle hom count overflow");
    }
  }
  return trace;
}

Result<std::vector<int64_t>> CycleHomProfile(const Graph& g,
                                             size_t max_length) {
  if (max_length < 3) {
    return Status::InvalidArgument("max cycle length must be >= 3");
  }
  std::vector<int64_t> profile;
  for (size_t k = 3; k <= max_length; ++k) {
    GELC_ASSIGN_OR_RETURN(int64_t c, CountCycleHomomorphisms(k, g));
    profile.push_back(c);
  }
  return profile;
}

Result<std::vector<int64_t>> TreeHomProfile(const Graph& g,
                                            const std::vector<Graph>& trees) {
  std::vector<int64_t> profile;
  profile.reserve(trees.size());
  for (const Graph& t : trees) {
    GELC_ASSIGN_OR_RETURN(int64_t c, CountTreeHomomorphisms(t, g));
    profile.push_back(c);
  }
  return profile;
}

}  // namespace gelc
