#include "hom/trees.h"

#include <algorithm>
#include <functional>
#include <set>

#include "base/logging.h"

namespace gelc {

namespace {

// Canonical encoding of the tree rooted at `root`: children encodings are
// sorted and concatenated inside parentheses.
std::string RootedEncoding(const Graph& g, VertexId root) {
  std::function<std::string(VertexId, VertexId)> enc =
      [&](VertexId v, VertexId parent) {
        std::vector<std::string> kids;
        for (VertexId u : g.Neighbors(v)) {
          if (u == parent) continue;
          kids.push_back(enc(u, v));
        }
        std::sort(kids.begin(), kids.end());
        std::string out = "(";
        for (const std::string& k : kids) out += k;
        out += ")";
        return out;
      };
  return enc(root, root);
}

// The 1 or 2 center vertices of a tree (iterative leaf stripping).
std::vector<VertexId> TreeCenters(const Graph& g) {
  size_t n = g.num_vertices();
  if (n == 1) return {0};
  std::vector<size_t> degree(n);
  std::vector<VertexId> frontier;
  for (size_t v = 0; v < n; ++v) {
    degree[v] = g.OutDegree(static_cast<VertexId>(v));
    if (degree[v] <= 1) frontier.push_back(static_cast<VertexId>(v));
  }
  size_t remaining = n;
  std::vector<bool> removed(n, false);
  while (remaining > 2) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      removed[v] = true;
      --remaining;
      for (VertexId u : g.Neighbors(v)) {
        if (removed[u]) continue;
        if (--degree[u] == 1) next.push_back(u);
      }
    }
    frontier = std::move(next);
  }
  std::vector<VertexId> centers;
  for (size_t v = 0; v < n; ++v)
    if (!removed[v]) centers.push_back(static_cast<VertexId>(v));
  return centers;
}

}  // namespace

Result<std::string> TreeCanonicalForm(const Graph& g) {
  size_t n = g.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph is not a tree");
  if (g.num_edges() != n - 1 || g.ConnectedComponents().size() != 1) {
    return Status::InvalidArgument("graph is not a tree");
  }
  std::vector<VertexId> centers = TreeCenters(g);
  std::string best;
  for (VertexId c : centers) {
    std::string e = RootedEncoding(g, c);
    if (best.empty() || e < best) best = e;
  }
  return best;
}

Result<Graph> TreeFromPrufer(const std::vector<size_t>& prufer, size_t n) {
  if (n < 2) return Status::InvalidArgument("Prüfer decoding needs n >= 2");
  if (prufer.size() != n - 2) {
    return Status::InvalidArgument("Prüfer sequence must have length n - 2");
  }
  for (size_t x : prufer) {
    if (x >= n) return Status::InvalidArgument("Prüfer entry out of range");
  }
  Graph g = Graph::Unlabeled(n);
  std::vector<size_t> degree(n, 1);
  for (size_t x : prufer) ++degree[x];
  std::set<size_t> leaves;
  for (size_t v = 0; v < n; ++v)
    if (degree[v] == 1) leaves.insert(v);
  for (size_t x : prufer) {
    size_t leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    GELC_RETURN_NOT_OK(g.AddEdge(static_cast<VertexId>(leaf),
                                 static_cast<VertexId>(x)));
    if (--degree[x] == 1) leaves.insert(x);
  }
  GELC_CHECK(leaves.size() == 2);
  size_t a = *leaves.begin();
  size_t b = *std::next(leaves.begin());
  GELC_RETURN_NOT_OK(
      g.AddEdge(static_cast<VertexId>(a), static_cast<VertexId>(b)));
  return g;
}

Result<std::vector<Graph>> AllTreesUpTo(size_t max_vertices) {
  if (max_vertices == 0 || max_vertices > 9) {
    return Status::InvalidArgument("AllTreesUpTo supports 1..9 vertices");
  }
  std::vector<Graph> out;
  std::set<std::string> seen;
  // n = 1 and n = 2 are special (no Prüfer sequence).
  out.push_back(Graph::Unlabeled(1));
  if (max_vertices >= 2) {
    Graph p2 = Graph::Unlabeled(2);
    Status s = p2.AddEdge(0, 1);
    GELC_CHECK(s.ok());
    out.push_back(std::move(p2));
  }
  for (size_t n = 3; n <= max_vertices; ++n) {
    // Iterate over all n^{n-2} Prüfer sequences.
    size_t len = n - 2;
    std::vector<size_t> seq(len, 0);
    for (;;) {
      GELC_ASSIGN_OR_RETURN(Graph t, TreeFromPrufer(seq, n));
      GELC_ASSIGN_OR_RETURN(std::string canon, TreeCanonicalForm(t));
      if (seen.insert(std::to_string(n) + ":" + canon).second) {
        out.push_back(std::move(t));
      }
      // Odometer increment.
      size_t i = 0;
      while (i < len && ++seq[i] == n) seq[i++] = 0;
      if (i == len) break;
    }
  }
  return out;
}

}  // namespace gelc
