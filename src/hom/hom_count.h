// Exact homomorphism counting hom(T, G) for tree patterns T, by dynamic
// programming over T. This powers the Dell-Grohe-Rattan characterization
// (slide 27): G ≡_CR H iff hom(T, G) = hom(T, H) for all trees T — i.e.
// "GNNs 101 can only leverage tree-based information present in graphs".
#ifndef GELC_HOM_HOM_COUNT_H_
#define GELC_HOM_HOM_COUNT_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "graph/graph.h"

namespace gelc {

/// Counts graph homomorphisms from the tree `pattern` into `g` (arbitrary
/// graph). Edges of the pattern must map to edges of g; vertex features are
/// ignored (the classical unlabeled setting).
///
/// Errors: InvalidArgument if `pattern` is not a tree;
/// ArithmeticOverflow if the count exceeds int64 range.
Result<int64_t> CountTreeHomomorphisms(const Graph& pattern, const Graph& g);

/// Per-vertex rooted counts: result[v] = number of homomorphisms of
/// `pattern` rooted at `root` that map the root to v. Summing over v gives
/// CountTreeHomomorphisms.
Result<std::vector<int64_t>> CountRootedTreeHomomorphisms(
    const Graph& pattern, VertexId root, const Graph& g);

/// The hom-count profile of g over a tree catalogue: profile[i] =
/// hom(trees[i], g). Equal profiles over all trees (up to any size)
/// characterize CR equivalence.
Result<std::vector<int64_t>> TreeHomProfile(const Graph& g,
                                            const std::vector<Graph>& trees);

/// hom(C_k, g) = trace(A^k), the number of closed walks of length k
/// (k >= 3). Cycles have treewidth 2: together with trees they populate
/// the treewidth-<=2 pattern class whose hom counts characterize 2-WL
/// equivalence (the slide-27 theorem's higher rung).
Result<int64_t> CountCycleHomomorphisms(size_t k, const Graph& g);

/// profile[i] = hom(C_{i+3}, g) for cycle lengths 3..max_length.
Result<std::vector<int64_t>> CycleHomProfile(const Graph& g,
                                             size_t max_length);

}  // namespace gelc

#endif  // GELC_HOM_HOM_COUNT_H_
