// Enumeration of all non-isomorphic (free, unlabeled) trees up to a given
// size, and AHU canonical encodings.
//
// Slide 27 (Dell-Grohe-Rattan): G and H are color-refinement equivalent iff
// hom(T, G) = hom(T, H) for all trees T. The tree catalogue produced here
// is the index set of that characterization.
#ifndef GELC_HOM_TREES_H_
#define GELC_HOM_TREES_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "graph/graph.h"

namespace gelc {

/// AHU canonical encoding of a free tree (invariant under isomorphism).
/// Returns an error if g is not a tree (connected, m = n - 1).
Result<std::string> TreeCanonicalForm(const Graph& g);

/// All non-isomorphic trees with 1..max_vertices vertices, enumerated via
/// Prüfer sequences and deduplicated by canonical form. max_vertices must
/// be in [1, 9] (the labelled-tree pool grows as n^{n-2}).
///
/// Sizes: 1, 2, 3, 5, 8, 14, 25, 48, 95 cumulative trees for n = 1..9.
Result<std::vector<Graph>> AllTreesUpTo(size_t max_vertices);

/// Decodes a Prüfer sequence over [0, n) into the corresponding labelled
/// tree on n >= 2 vertices (sequence length must be n - 2).
Result<Graph> TreeFromPrufer(const std::vector<size_t>& prufer, size_t n);

}  // namespace gelc

#endif  // GELC_HOM_TREES_H_
