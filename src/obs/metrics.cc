#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "base/logging.h"

namespace gelc {
namespace obs {

namespace internal {

size_t ThisThreadShard() {
  // Shards are dealt round-robin in thread-creation order, so the main
  // thread and the first kShards-1 pool workers each own a distinct
  // cache line (the pool never shrinks, so ids are stable).
  static std::atomic<size_t> next_id{0};
  thread_local size_t shard =
      next_id.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

Histogram::Histogram(std::string name, std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      name_(std::move(name)) {
  GELC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  GELC_CHECK(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
             bounds_.end());
}

void Histogram::Observe(int64_t value) {
  if (!MetricsEnabled()) return;
  // Bucket i holds values <= bounds_[i]; lower_bound lands exactly there
  // (values past the last bound fall into the overflow bucket).
  size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::Counts() const {
  std::vector<uint64_t> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

// All three metric kinds keyed by name in sorted maps, so snapshot
// iteration order is deterministic. Handles are unique_ptrs that live
// until process exit; the registry mutex guards registration only —
// record paths never take it.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;

  // Construction only — see TouchMetricsRegistry for why this exists
  // separately from Global().
  static Registry& Instance() {
    static Registry registry;
    return registry;
  }

  static Registry& Global() {
    Registry& registry = Instance();
    internal::EnsureExitExporter();
    return registry;
  }
};

}  // namespace

Counter* GetCounter(const std::string& name) {
  Registry& r = Registry::Global();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(name, std::make_unique<Counter>(name)).first;
  }
  return it->second.get();
}

Gauge* GetGauge(const std::string& name) {
  Registry& r = Registry::Global();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) {
    it = r.gauges.emplace(name, std::make_unique<Gauge>(name)).first;
  }
  return it->second.get();
}

Histogram* GetHistogram(const std::string& name,
                        const std::vector<int64_t>& bounds) {
  Registry& r = Registry::Global();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms
             .emplace(name, std::make_unique<Histogram>(name, bounds))
             .first;
  }
  return it->second.get();
}

uint64_t ReadCounter(const std::string& name) {
  Registry& r = Registry::Global();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second->Read();
}

void ResetMetricsForTest() {
  Registry& r = Registry::Global();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->Reset();
  for (auto& [name, g] : r.gauges) g->Reset();
  for (auto& [name, h] : r.histograms) h->Reset();
}

namespace internal {

void TouchMetricsRegistry() { Registry::Instance(); }

void VisitMetrics(const std::function<void(const Counter&)>& on_counter,
                  const std::function<void(const Gauge&)>& on_gauge,
                  const std::function<void(const Histogram&)>& on_histogram) {
  Registry& r = Registry::Global();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& [name, c] : r.counters) on_counter(*c);
  for (const auto& [name, g] : r.gauges) on_gauge(*g);
  for (const auto& [name, h] : r.histograms) on_histogram(*h);
}

}  // namespace internal

}  // namespace obs
}  // namespace gelc
