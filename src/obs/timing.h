// The timing plane: wall-clock latency histograms, kept strictly apart
// from the deterministic metrics registry (see DESIGN.md "Observability"
// — two-plane doctrine).
//
//   void Exec() {
//     GELC_OBS_TIME("plan_exec");
//     ...
//   }
//
// `GELC_OBS_TIME(name)` opens a scoped timer that, on destruction,
// records the elapsed nanoseconds into the process-wide
// `LatencyHistogram` registered under `name`. Timer names reuse the
// trace-span names ("matmul", "spmm", "plan_exec", "parallel.for",
// "train.epoch", ...) so the latency rollups line up with the Chrome
// traces and the per-phase grouping (the prefix before the first '.')
// is shared across both exporters.
//
// Design contract:
//  - Off by default (`GELC_TIMINGS=1` enables); a disabled timer costs
//    one relaxed atomic load and no clock read, exactly like a disabled
//    counter or span.
//  - Buckets are log-spaced (powers of two, four linear steps per
//    octave) from 1ns to ~68s, so p50/p90/p99 extraction is within 25%
//    of the true quantile everywhere with linear interpolation tighter
//    in practice.
//  - Observes are thread-sharded like Counter: each of the kShards
//    shards owns its own bucket array and a thread picks its shard by
//    the same thread-local id, so pool workers never bounce a cache
//    line. Reads merge the shards.
//  - Latency values NEVER enter the deterministic registry or its
//    byte-equality goldens: snapshots carry them in a separate
//    `timings` section that is omitted when empty and explicitly
//    excluded from the deterministic-plane comparisons
//    (`gelc_stats --deterministic`, scripts/check.sh).
//
// Timing policy: obs/timing.cc and obs/trace.cc are the only TUs
// outside bench/ allowed to read a chrono clock — the `adhoc-timing`
// lint rule enforces the allowlist file by file.
#ifndef GELC_OBS_TIMING_H_
#define GELC_OBS_TIMING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/config.h"
#include "obs/metrics.h"  // internal::ThisThreadShard / kShards

namespace gelc {
namespace obs {

namespace internal {
/// Monotonic nanoseconds (steady_clock, read in timing.cc); only
/// meaningful as differences.
int64_t TimingNowNs();

/// Constructs the timing registry singleton without registering the exit
/// exporter (mirrors TouchMetricsRegistry / TouchTraceCollector).
void TouchTimingRegistry();
}  // namespace internal

/// A log-spaced-bucket histogram over nanosecond latencies, sharded per
/// thread. Unlike obs::Histogram the bounds are fixed by the class (one
/// shared log-spaced table), because every latency series needs the same
/// dynamic range and snapshots only carry the derived percentiles.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::string name);
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one latency (values < 1 land in the underflow bucket,
  /// values past the last bound in the overflow bucket). No-op when
  /// TimingsEnabled() is false.
  void Observe(int64_t ns);

  const std::string& name() const { return name_; }

  /// Per-bucket counts merged across shards; NumBuckets() entries.
  std::vector<uint64_t> Counts() const;
  /// Merged total observation count.
  uint64_t TotalCount() const;
  /// Merged sum of observed nanoseconds.
  int64_t SumNs() const;

  /// Zeroes every shard (tests / ResetTimingsForTest only).
  void Reset();

  // --- shared bucket geometry (static; one table for every series) ---

  /// Bucket count including the underflow (index 0) and overflow (last)
  /// buckets: BucketBounds().size() + 1.
  static size_t NumBuckets();
  /// The strictly ascending inclusive upper bounds, in ns. Bucket i
  /// counts v <= bounds[i] (and > bounds[i-1]); the overflow bucket past
  /// the last bound has no upper bound.
  static const std::vector<int64_t>& BucketBounds();
  /// Index of the bucket an observation of `ns` lands in.
  static size_t BucketIndex(int64_t ns);

  /// Quantile q in [0, 1] extracted from merged bucket counts by linear
  /// interpolation inside the landing bucket, in ns. Returns 0 when the
  /// histogram is empty. Deterministic given the counts.
  static double QuantileNs(const std::vector<uint64_t>& counts, double q);

 private:
  // One bucket array per shard; a thread writes only its own shard's
  // array (same thread-local shard id as Counter), so the alignas keeps
  // two shards' hot heads off a shared cache line. Constructed in place
  // (atomics are immovable); vector(count) default-inserts without moves.
  struct alignas(64) Shard {
    Shard() : counts(LatencyHistogram::NumBuckets()) {}
    std::vector<std::atomic<uint64_t>> counts;
    std::atomic<int64_t> sum_ns{0};
  };
  std::vector<Shard> shards_;
  std::string name_;
};

/// Derived percentile view of one latency series (what snapshots carry).
struct LatencySample {
  std::string name;
  uint64_t count = 0;
  int64_t sum_ns = 0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
};

/// Returns the process-wide latency histogram with this name,
/// registering it on first use. Handles are never invalidated; call
/// sites cache them in a function-local static (GELC_OBS_TIME does).
LatencyHistogram* GetLatencyHistogram(const std::string& name);

/// Every latency series with at least one observation, sorted by name,
/// with p50/p90/p99 extracted from the merged buckets.
std::vector<LatencySample> TimingSnapshot();

/// Total observations across every registered series (cheap "anything
/// recorded?" check for the exit exporter).
uint64_t TimingObservationCount();

/// Human-readable table: one line per series (count, p50/p90/p99 ms,
/// total ms) followed by a per-phase rollup, where a series' phase is
/// its name up to the first '.' ("train.epoch" -> "train"). The exit
/// exporter prints this to stderr when GELC_TIMINGS was on.
std::string TimingSummaryText();

/// Zeroes every registered series (registrations and handles survive).
void ResetTimingsForTest();

/// RAII latency timer: records [construction, destruction) into `hist`
/// when timings are enabled at construction time. Use via GELC_OBS_TIME.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist)
      : hist_(TimingsEnabled() ? hist : nullptr),
        start_ns_(hist_ != nullptr ? internal::TimingNowNs() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    // Re-check enablement so a timer straddling SetTimingsEnabled(false)
    // (tests toggle it between runs) cannot record a stray observation.
    if (hist_ != nullptr && TimingsEnabled()) {
      hist_->Observe(internal::TimingNowNs() - start_ns_);
    }
  }

 private:
  LatencyHistogram* hist_;
  int64_t start_ns_;
};

}  // namespace obs
}  // namespace gelc

#define GELC_OBS_TIME_CONCAT_INNER_(a, b) a##b
#define GELC_OBS_TIME_CONCAT_(a, b) GELC_OBS_TIME_CONCAT_INNER_(a, b)

/// GELC_OBS_TIME("name"): times the rest of the enclosing block into the
/// latency histogram registered under `name` (registered once, cached in
/// a function-local static; one relaxed load when GELC_TIMINGS is off).
#define GELC_OBS_TIME(name)                                              \
  static ::gelc::obs::LatencyHistogram* GELC_OBS_TIME_CONCAT_(           \
      gelc_obs_lat_, __LINE__) = ::gelc::obs::GetLatencyHistogram(name); \
  ::gelc::obs::ScopedTimer GELC_OBS_TIME_CONCAT_(gelc_obs_timer_,        \
                                                 __LINE__)(              \
      GELC_OBS_TIME_CONCAT_(gelc_obs_lat_, __LINE__))

#endif  // GELC_OBS_TIMING_H_
