// Snapshot comparison: parse two metrics-snapshot JSON files (bare
// SnapshotJson output or a BENCH_p*.json wrapper with a top-level
// "gelc_metrics" key), align their counters/gauges/histograms/timings
// by name, and report deltas — flagging deterministic-counter
// regressions past a threshold so scripts/check.sh and run_benches.sh
// can gate on them (see DESIGN.md "Observability").
//
// Only counters gate: they are the deterministic plane's invariant
// quantities (calls, flops, rows), so "new > old" is a real behavioral
// regression, not noise. Gauges, histograms, and the timing plane are
// printed for the reader but never affect the exit status.
#ifndef GELC_OBS_STATS_DIFF_H_
#define GELC_OBS_STATS_DIFF_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"

namespace gelc {
namespace obs {

/// A minimal JSON value (what the snapshot grammar needs — objects keep
/// insertion order is NOT required, so a sorted map suffices). Numbers
/// remember whether they were written as integers so counter values
/// round-trip exactly.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  bool is_int = false;
  int64_t int_value = 0;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parses `text` as one JSON value (trailing whitespace allowed,
/// trailing garbage is an error). Returns InvalidArgument on malformed
/// input with a character offset in the message.
Status ParseJson(const std::string& text, JsonValue* out);

/// One snapshot's worth of metrics, keyed by name. Histograms and
/// timings keep their raw JSON objects (the diff only reads a few
/// fields from each).
struct ParsedSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, JsonValue> histograms;
  std::map<std::string, JsonValue> timings;
};

/// Parses a snapshot JSON document. Accepts either SnapshotJson output
/// directly or a benchmark JSON wrapper, in which case the top-level
/// "gelc_metrics" object is the snapshot. Unknown keys are ignored.
Status ParseSnapshotJson(const std::string& text, ParsedSnapshot* out);

/// Reads and parses `path`.
Status LoadSnapshotFile(const std::string& path, ParsedSnapshot* out);

struct DiffOptions {
  /// A counter regresses when new > old * (1 + threshold) and old > 0.
  /// 0.0 means any increase regresses.
  double threshold = 0.0;
  /// Metric-name prefixes excluded from both the report and the
  /// regression gate (e.g. "parallel." whose counts track the thread
  /// schedule, not the workload).
  std::vector<std::string> ignore;
};

struct DiffReport {
  /// Human-readable aligned diff (counters, gauges, histogram totals,
  /// timing percentiles; one line per metric present in either side).
  std::string text;
  /// Names of deterministic counters that regressed past the threshold.
  std::vector<std::string> regressions;
};

/// Aligns two parsed snapshots and builds the report. Deterministic —
/// same inputs, same bytes out.
DiffReport DiffSnapshots(const ParsedSnapshot& old_snap,
                         const ParsedSnapshot& new_snap,
                         const DiffOptions& options);

}  // namespace obs
}  // namespace gelc

#endif  // GELC_OBS_STATS_DIFF_H_
