#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace gelc {
namespace obs {

namespace {

// Events per thread ring buffer (power of two). When a thread records
// more, the oldest events are overwritten; TraceJson keeps the newest
// window. ~80 bytes/event, allocated lazily on the thread's first span.
constexpr size_t kRingCapacity = size_t{1} << 15;

struct TraceEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  uint32_t depth = 0;
  uint32_t nargs = 0;
  SpanArg args[internal::kMaxSpanArgs];
};

// One ring per thread. Only the owning thread writes; the collector
// reads during export, which callers run while no spans are in flight
// (ParallelFor has joined), so reads never race live writes.
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t tid_in) : tid(tid_in) {
    slots.resize(kRingCapacity);
  }
  uint32_t tid;
  std::atomic<uint64_t> head{0};  // total events ever recorded
  std::vector<TraceEvent> slots;
};

class TraceCollector {
 public:
  // Construction only — see TouchTraceCollector for why this exists
  // separately from Global().
  static TraceCollector& Instance() {
    static TraceCollector collector;
    return collector;
  }

  static TraceCollector& Global() {
    TraceCollector& collector = Instance();
    internal::EnsureExitExporter();
    return collector;
  }

  ThreadBuffer* BufferForThisThread() {
    thread_local ThreadBuffer* buffer = nullptr;
    if (buffer == nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      buffers_.push_back(std::make_unique<ThreadBuffer>(
          static_cast<uint32_t>(buffers_.size())));
      buffer = buffers_.back().get();
    }
    return buffer;
  }

  /// Snapshot of every buffered event, tagged with its thread id and
  /// sorted by (tid, start, depth) — parents precede children even
  /// though rings record in end order.
  std::vector<std::pair<uint32_t, TraceEvent>> Collect() {
    std::vector<std::pair<uint32_t, TraceEvent>> out;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      uint64_t head = buf->head.load(std::memory_order_acquire);
      uint64_t n = std::min<uint64_t>(head, kRingCapacity);
      for (uint64_t i = head - n; i < head; ++i) {
        out.emplace_back(buf->tid, buf->slots[i % kRingCapacity]);
      }
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      if (a.second.start_ns != b.second.start_ns)
        return a.second.start_ns < b.second.start_ns;
      return a.second.depth < b.second.depth;
    });
    return out;
  }

  size_t EventCount() {
    size_t n = 0;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_)
      n += static_cast<size_t>(std::min<uint64_t>(
          buf->head.load(std::memory_order_acquire), kRingCapacity));
    return n;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buf : buffers_)
      buf->head.store(0, std::memory_order_release);
  }

 private:
  TraceCollector() = default;
  std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

std::string FormatMicros(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

std::string FormatMillis(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000000),
                static_cast<long long>((ns / 1000) % 1000));
  return buf;
}

}  // namespace

namespace internal {

void TouchTraceCollector() { TraceCollector::Instance(); }

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint32_t& ThreadSpanDepth() {
  thread_local uint32_t depth = 0;
  return depth;
}

void RecordSpan(const char* name, int64_t start_ns, int64_t end_ns,
                uint32_t depth, const SpanArg* args, uint32_t nargs) {
  ThreadBuffer* buf = TraceCollector::Global().BufferForThisThread();
  uint64_t head = buf->head.load(std::memory_order_relaxed);
  TraceEvent& e = buf->slots[head % kRingCapacity];
  e.name = name;
  e.start_ns = start_ns;
  e.dur_ns = end_ns - start_ns;
  e.depth = depth;
  e.nargs = std::min<uint32_t>(nargs, kMaxSpanArgs);
  for (uint32_t i = 0; i < e.nargs; ++i) e.args[i] = args[i];
  buf->head.store(head + 1, std::memory_order_release);
}

}  // namespace internal

ScopedSpan::ScopedSpan(const char* name, std::initializer_list<SpanArg> args)
    : active_(TraceEnabled()) {
  if (!active_) return;
  name_ = name;
  for (const SpanArg& a : args) {
    if (nargs_ < internal::kMaxSpanArgs) args_[nargs_++] = a;
  }
  depth_ = internal::ThreadSpanDepth()++;
  start_ns_ = internal::NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  int64_t end_ns = internal::NowNs();
  --internal::ThreadSpanDepth();
  internal::RecordSpan(name_, start_ns_, end_ns, depth_, args_, nargs_);
}

void ScopedSpan::SetArg(const char* key, int64_t value) {
  if (!active_) return;
  for (uint32_t i = 0; i < nargs_; ++i) {
    if (args_[i].key == key) {
      args_[i].value = value;
      return;
    }
  }
  if (nargs_ < internal::kMaxSpanArgs) args_[nargs_++] = SpanArg(key, value);
}

std::string TraceJson() {
  auto events = TraceCollector::Global().Collect();
  // Timestamps relative to the earliest buffered span keep the JSON
  // small and make fresh traces start at ts=0.
  int64_t epoch = 0;
  bool first = true;
  for (const auto& [tid, e] : events) {
    if (first || e.start_ns < epoch) epoch = e.start_ns;
    first = false;
  }
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool sep = false;
  for (const auto& [tid, e] : events) {
    if (sep) out << ",";
    sep = true;
    out << "\n{\"name\": \"" << e.name << "\", \"cat\": \"gelc\", "
        << "\"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
        << ", \"ts\": " << FormatMicros(e.start_ns - epoch)
        << ", \"dur\": " << FormatMicros(e.dur_ns);
    if (e.nargs > 0) {
      out << ", \"args\": {";
      for (uint32_t i = 0; i < e.nargs; ++i) {
        if (i) out << ", ";
        out << "\"" << e.args[i].key << "\": " << e.args[i].value;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

Status WriteTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open trace output " + path);
  out << TraceJson();
  out.flush();
  if (!out) return Status::IOError("trace write failed on " + path);
  return Status::OK();
}

std::string TraceSummaryText() {
  auto events = TraceCollector::Global().Collect();
  struct Node {
    uint64_t calls = 0;
    int64_t incl_ns = 0;
    int64_t child_ns = 0;
  };
  // Paths like "wl.kwl/wl.round" merge the same call chain across
  // threads; std::map keeps printing order deterministic.
  std::map<std::string, Node> nodes;
  std::vector<std::string> stack;  // stack[d] = path of the open span at d
  uint32_t current_tid = 0;
  bool have_tid = false;
  for (const auto& [tid, e] : events) {
    if (!have_tid || tid != current_tid) {
      stack.clear();
      current_tid = tid;
      have_tid = true;
    }
    stack.resize(e.depth + 1);
    std::string parent = e.depth > 0 ? stack[e.depth - 1] : std::string();
    std::string path = parent.empty() ? e.name : parent + "/" + e.name;
    stack[e.depth] = path;
    Node& node = nodes[path];
    node.calls += 1;
    node.incl_ns += e.dur_ns;
    if (!parent.empty()) nodes[parent].child_ns += e.dur_ns;
  }
  std::ostringstream out;
  out << "span                                      calls     incl_ms"
         "     excl_ms\n";
  for (const auto& [path, node] : nodes) {
    size_t depth = static_cast<size_t>(
        std::count(path.begin(), path.end(), '/'));
    std::string name = path.substr(path.rfind('/') + 1);
    std::string label(2 * depth, ' ');
    label += name;
    if (label.size() < 40) label.resize(40, ' ');
    int64_t excl = std::max<int64_t>(0, node.incl_ns - node.child_ns);
    char line[128];
    std::snprintf(line, sizeof(line), "%s %6llu %11s %11s\n", label.c_str(),
                  static_cast<unsigned long long>(node.calls),
                  FormatMillis(node.incl_ns).c_str(),
                  FormatMillis(excl).c_str());
    out << line;
  }
  if (nodes.empty()) out << "(no spans recorded)\n";
  return out.str();
}

size_t TraceEventCount() { return TraceCollector::Global().EventCount(); }

void ResetTraceForTest() { TraceCollector::Global().Reset(); }

}  // namespace obs
}  // namespace gelc
