// Observability configuration: one struct, four env vars, runtime
// toggles (see DESIGN.md "Observability").
//
//   GELC_METRICS      "0" disables the metrics registry (default: on).
//                     Disabled counters/gauges/histograms are no-ops; the
//                     instrumented hot paths pay one relaxed atomic load.
//   GELC_TIMINGS      "1" enables the timing plane (default: off): scoped
//                     GELC_OBS_TIME timers record into latency histograms
//                     (obs/timing.h), snapshots gain a `timings` section,
//                     and the exit exporter prints the latency rollup to
//                     stderr. Never affects the deterministic plane.
//   GELC_TRACE        "1" enables scoped trace spans (default: off). At
//                     process exit the buffered spans are written to
//                     GELC_TRACE_OUT as Chrome/Perfetto JSON.
//   GELC_TRACE_OUT    Trace output path (default "gelc_trace.json").
//   GELC_METRICS_OUT  Optional path; when set, the metrics snapshot JSON
//                     is written there at process exit (run_benches.sh
//                     uses this to embed metrics into BENCH_p*.json).
//
// The enabled flags can also be flipped at runtime (tests and gelc_stats
// do) via SetMetricsEnabled / SetTimingsEnabled / SetTraceEnabled;
// passing the env-derived default back is done with ResetEnabledFromEnv.
#ifndef GELC_OBS_CONFIG_H_
#define GELC_OBS_CONFIG_H_

#include <string>

namespace gelc {
namespace obs {

/// The parsed environment, read once at first use.
struct Config {
  bool metrics_enabled = true;
  bool timings_enabled = false;
  bool trace_enabled = false;
  std::string trace_out = "gelc_trace.json";
  std::string metrics_out;  // empty: no exit-time snapshot dump
};

/// The process-wide configuration (env parsed on first call).
const Config& GlobalConfig();

/// True when counters/gauges/histograms record (hot-path check: one
/// relaxed atomic load).
bool MetricsEnabled();
/// True when scoped GELC_OBS_TIME timers read the clock and record into
/// latency histograms (hot-path check: one relaxed atomic load).
bool TimingsEnabled();
/// True when scoped spans record into the trace ring buffers.
bool TraceEnabled();

/// Runtime overrides of the env-derived flags (benchmark sweeps and
/// tests flip these; they affect subsequent records only).
void SetMetricsEnabled(bool enabled);
void SetTimingsEnabled(bool enabled);
void SetTraceEnabled(bool enabled);
/// Restores the flags to the GELC_METRICS / GELC_TIMINGS / GELC_TRACE
/// values.
void ResetEnabledFromEnv();

namespace internal {
/// Registers the process-exit exporter (trace file + optional metrics
/// snapshot dump) exactly once. Called by the registry and the trace
/// collector on construction so the exporter is destroyed — and thus
/// runs — before either of them goes away.
void EnsureExitExporter();
}  // namespace internal

}  // namespace obs
}  // namespace gelc

#endif  // GELC_OBS_CONFIG_H_
