#include "obs/stats_diff.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "base/strings.h"

namespace gelc {
namespace obs {

namespace {

// Recursive-descent JSON parser over the snapshot grammar. Strict where
// it matters (no trailing garbage, proper escapes) and tolerant of
// whitespace. Depth-limited so fuzzer-shaped input cannot blow the
// stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Status Parse(JsonValue* out) {
    Status s = ParseValue(out, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (ConsumeLiteral("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    if (ConsumeLiteral("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (ConsumeLiteral("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->object[key] = std::move(value);
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      Status s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (JsonEscape only ever emits
          // \u00xx control escapes, but accept the full plane).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool saw_digit = false;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        saw_digit = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (!saw_digit) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = std::strtod(token.c_str(), nullptr);
    if (integral) {
      errno = 0;
      const long long v = std::strtoll(token.c_str(), nullptr, 10);
      if (errno == 0) {
        out->is_int = true;
        out->int_value = static_cast<int64_t>(v);
      }
    }
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool HasIgnoredPrefix(const std::string& name,
                      const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (name.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

// Union of the keys on both sides, sorted (both inputs are sorted maps).
template <typename M>
std::vector<std::string> UnionKeys(const M& a, const M& b) {
  std::set<std::string> keys;
  for (const auto& [k, v] : a) keys.insert(k);
  for (const auto& [k, v] : b) keys.insert(k);
  return std::vector<std::string>(keys.begin(), keys.end());
}

std::string DeltaPct(double old_v, double new_v) {
  if (old_v == 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%",
                100.0 * (new_v - old_v) / old_v);
  return buf;
}

int64_t ReadInt(const JsonValue* v) {
  if (v == nullptr) return 0;
  return v->is_int ? v->int_value : static_cast<int64_t>(v->number_value);
}

double ReadNum(const JsonValue* v) {
  if (v == nullptr) return 0.0;
  return v->is_int ? static_cast<double>(v->int_value) : v->number_value;
}

}  // namespace

Status ParseJson(const std::string& text, JsonValue* out) {
  *out = JsonValue();
  return JsonParser(text).Parse(out);
}

Status ParseSnapshotJson(const std::string& text, ParsedSnapshot* out) {
  *out = ParsedSnapshot();
  JsonValue root;
  Status s = ParseJson(text, &root);
  if (!s.ok()) return s;
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("snapshot is not a JSON object");
  }
  const JsonValue* snap = &root;
  // A BENCH_p*.json file wraps the snapshot under "gelc_metrics".
  if (const JsonValue* wrapped = root.Find("gelc_metrics")) {
    if (wrapped->kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("gelc_metrics is not a JSON object");
    }
    snap = wrapped;
  }
  if (const JsonValue* counters = snap->Find("counters")) {
    for (const auto& [name, v] : counters->object) {
      out->counters[name] = ReadInt(&v);
    }
  }
  if (const JsonValue* gauges = snap->Find("gauges")) {
    for (const auto& [name, v] : gauges->object) {
      out->gauges[name] = ReadNum(&v);
    }
  }
  if (const JsonValue* histograms = snap->Find("histograms")) {
    out->histograms = histograms->object;
  }
  if (const JsonValue* timings = snap->Find("timings")) {
    out->timings = timings->object;
  }
  return Status::OK();
}

Status LoadSnapshotFile(const std::string& path, ParsedSnapshot* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open snapshot " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  Status s = ParseSnapshotJson(buf.str(), out);
  if (!s.ok()) {
    return Status::InvalidArgument(path + ": " + s.message());
  }
  return Status::OK();
}

DiffReport DiffSnapshots(const ParsedSnapshot& old_snap,
                         const ParsedSnapshot& new_snap,
                         const DiffOptions& options) {
  DiffReport report;
  std::ostringstream out;

  out << "counters:\n";
  for (const std::string& name :
       UnionKeys(old_snap.counters, new_snap.counters)) {
    if (HasIgnoredPrefix(name, options.ignore)) continue;
    auto oit = old_snap.counters.find(name);
    auto nit = new_snap.counters.find(name);
    if (oit == old_snap.counters.end()) {
      out << "  + " << name << " = " << nit->second << " (new)\n";
      continue;
    }
    if (nit == new_snap.counters.end()) {
      out << "  - " << name << " (was " << oit->second << ")\n";
      continue;
    }
    const int64_t old_v = oit->second;
    const int64_t new_v = nit->second;
    const bool regressed =
        old_v > 0 && static_cast<double>(new_v) >
                         static_cast<double>(old_v) * (1.0 + options.threshold);
    out << "  " << (regressed ? "! " : "  ") << name << ": " << old_v
        << " -> " << new_v << " ("
        << DeltaPct(static_cast<double>(old_v), static_cast<double>(new_v))
        << ")" << (regressed ? "  REGRESSION" : "") << "\n";
    if (regressed) report.regressions.push_back(name);
  }

  out << "gauges:\n";
  for (const std::string& name :
       UnionKeys(old_snap.gauges, new_snap.gauges)) {
    if (HasIgnoredPrefix(name, options.ignore)) continue;
    auto oit = old_snap.gauges.find(name);
    auto nit = new_snap.gauges.find(name);
    if (oit == old_snap.gauges.end()) {
      out << "  + " << name << " = " << FormatDouble(nit->second)
          << " (new)\n";
    } else if (nit == new_snap.gauges.end()) {
      out << "  - " << name << " (was " << FormatDouble(oit->second)
          << ")\n";
    } else {
      out << "    " << name << ": " << FormatDouble(oit->second) << " -> "
          << FormatDouble(nit->second) << " ("
          << DeltaPct(oit->second, nit->second) << ")\n";
    }
  }

  out << "histograms:\n";
  for (const std::string& name :
       UnionKeys(old_snap.histograms, new_snap.histograms)) {
    if (HasIgnoredPrefix(name, options.ignore)) continue;
    auto oit = old_snap.histograms.find(name);
    auto nit = new_snap.histograms.find(name);
    const int64_t old_total =
        oit == old_snap.histograms.end() ? 0 : ReadInt(oit->second.Find("total"));
    const int64_t new_total =
        nit == new_snap.histograms.end() ? 0 : ReadInt(nit->second.Find("total"));
    const int64_t old_sum =
        oit == old_snap.histograms.end() ? 0 : ReadInt(oit->second.Find("sum"));
    const int64_t new_sum =
        nit == new_snap.histograms.end() ? 0 : ReadInt(nit->second.Find("sum"));
    out << "    " << name << ": total " << old_total << " -> " << new_total
        << ", sum " << old_sum << " -> " << new_sum << "\n";
  }

  out << "timings (informational, never gated):\n";
  for (const std::string& name :
       UnionKeys(old_snap.timings, new_snap.timings)) {
    if (HasIgnoredPrefix(name, options.ignore)) continue;
    auto oit = old_snap.timings.find(name);
    auto nit = new_snap.timings.find(name);
    const double old_p50 =
        oit == old_snap.timings.end() ? 0.0 : ReadNum(oit->second.Find("p50_ns"));
    const double new_p50 =
        nit == new_snap.timings.end() ? 0.0 : ReadNum(nit->second.Find("p50_ns"));
    const double old_p99 =
        oit == old_snap.timings.end() ? 0.0 : ReadNum(oit->second.Find("p99_ns"));
    const double new_p99 =
        nit == new_snap.timings.end() ? 0.0 : ReadNum(nit->second.Find("p99_ns"));
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    %s: p50 %.3fms -> %.3fms (%s), p99 %.3fms -> %.3fms "
                  "(%s)\n",
                  name.c_str(), old_p50 / 1e6, new_p50 / 1e6,
                  DeltaPct(old_p50, new_p50).c_str(), old_p99 / 1e6,
                  new_p99 / 1e6, DeltaPct(old_p99, new_p99).c_str());
    out << line;
  }

  if (!report.regressions.empty()) {
    out << "REGRESSED: " << report.regressions.size()
        << " counter(s) past threshold "
        << FormatDouble(options.threshold) << "\n";
  }
  report.text = out.str();
  return report;
}

}  // namespace obs
}  // namespace gelc
