#include "obs/timing.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace gelc {
namespace obs {

namespace internal {

int64_t TimingNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace internal

namespace {

// The shared log-spaced bound table: exact small values 1..4, then four
// linear steps per power-of-two octave up to 2^36 ns (~68.7s). Relative
// bucket width is <= 25% everywhere past the exact range, which keeps
// interpolated percentiles honest without hundreds of buckets.
std::vector<int64_t> BuildBounds() {
  std::vector<int64_t> bounds = {1, 2, 3, 4};
  for (int64_t octave = 4; octave < (int64_t{1} << 36); octave *= 2) {
    const int64_t step = octave / 4;
    for (int i = 1; i <= 4; ++i) bounds.push_back(octave + i * step);
  }
  return bounds;
}

// Latency histograms keyed by name in a sorted map (snapshot iteration
// order is deterministic), mirroring the metrics Registry. The mutex
// guards registration only; Observe never takes it.
struct TimingRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms;

  static TimingRegistry& Instance() {
    static TimingRegistry registry;
    return registry;
  }

  static TimingRegistry& Global() {
    TimingRegistry& registry = Instance();
    internal::EnsureExitExporter();
    return registry;
  }
};

std::string FormatMsFixed(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ns / 1e6);
  return buf;
}

}  // namespace

namespace internal {

void TouchTimingRegistry() { TimingRegistry::Instance(); }

}  // namespace internal

LatencyHistogram::LatencyHistogram(std::string name)
    : shards_(internal::kShards), name_(std::move(name)) {}

void LatencyHistogram::Observe(int64_t ns) {
  if (!TimingsEnabled()) return;
  Shard& shard = shards_[internal::ThisThreadShard()];
  shard.counts[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
  shard.sum_ns.fetch_add(ns < 0 ? 0 : ns, std::memory_order_relaxed);
}

std::vector<uint64_t> LatencyHistogram::Counts() const {
  std::vector<uint64_t> out(NumBuckets(), 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < out.size(); ++b) {
      out[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    for (const auto& c : shard.counts) {
      total += c.load(std::memory_order_relaxed);
    }
  }
  return total;
}

int64_t LatencyHistogram::SumNs() const {
  int64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.sum_ns.load(std::memory_order_relaxed);
  }
  return sum;
}

void LatencyHistogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.sum_ns.store(0, std::memory_order_relaxed);
  }
}

size_t LatencyHistogram::NumBuckets() { return BucketBounds().size() + 1; }

const std::vector<int64_t>& LatencyHistogram::BucketBounds() {
  static const std::vector<int64_t> bounds = BuildBounds();
  return bounds;
}

size_t LatencyHistogram::BucketIndex(int64_t ns) {
  const std::vector<int64_t>& bounds = BucketBounds();
  // Same inclusive-upper-bound convention as obs::Histogram: bucket i
  // holds values <= bounds[i]; anything past the last bound overflows.
  return static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), ns) - bounds.begin());
}

double LatencyHistogram::QuantileNs(const std::vector<uint64_t>& counts,
                                    double q) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // 0-based continuous rank; interpolate at the midpoint convention so
  // a single-observation histogram reports that bucket's interior.
  const double rank = q * (static_cast<double>(total) - 1.0);
  const std::vector<int64_t>& bounds = BucketBounds();
  double cum = 0.0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double in_bucket = static_cast<double>(counts[b]);
    if (rank < cum + in_bucket) {
      const double lo =
          b == 0 ? 0.0 : static_cast<double>(bounds[b - 1]);
      // The overflow bucket has no upper edge; report its lower edge.
      if (b >= bounds.size()) return static_cast<double>(bounds.back());
      const double hi = static_cast<double>(bounds[b]);
      const double frac = (rank - cum + 0.5) / in_bucket;
      return lo + frac * (hi - lo);
    }
    cum += in_bucket;
  }
  return static_cast<double>(bounds.back());
}

LatencyHistogram* GetLatencyHistogram(const std::string& name) {
  TimingRegistry& r = TimingRegistry::Global();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms
             .emplace(name, std::make_unique<LatencyHistogram>(name))
             .first;
  }
  return it->second.get();
}

std::vector<LatencySample> TimingSnapshot() {
  TimingRegistry& r = TimingRegistry::Global();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<LatencySample> out;
  for (const auto& [name, hist] : r.histograms) {
    std::vector<uint64_t> counts = hist->Counts();
    uint64_t total = 0;
    for (uint64_t c : counts) total += c;
    if (total == 0) continue;
    LatencySample sample;
    sample.name = name;
    sample.count = total;
    sample.sum_ns = hist->SumNs();
    sample.p50_ns = LatencyHistogram::QuantileNs(counts, 0.50);
    sample.p90_ns = LatencyHistogram::QuantileNs(counts, 0.90);
    sample.p99_ns = LatencyHistogram::QuantileNs(counts, 0.99);
    out.push_back(std::move(sample));
  }
  return out;
}

uint64_t TimingObservationCount() {
  TimingRegistry& r = TimingRegistry::Global();
  std::lock_guard<std::mutex> lock(r.mu);
  uint64_t total = 0;
  for (const auto& [name, hist] : r.histograms) total += hist->TotalCount();
  return total;
}

std::string TimingSummaryText() {
  std::vector<LatencySample> samples = TimingSnapshot();
  std::ostringstream out;
  out << "timer                                     count      p50_ms"
         "      p90_ms      p99_ms    total_ms\n";
  // Phase = the series name up to the first '.' (the same convention
  // the trace-span names follow), so "train.epoch" and "train.step"
  // roll up under "train". std::map keeps rollup order deterministic.
  std::map<std::string, std::pair<uint64_t, int64_t>> phases;
  for (const LatencySample& s : samples) {
    std::string label = s.name;
    if (label.size() < 40) label.resize(40, ' ');
    char line[160];
    std::snprintf(line, sizeof(line), "%s %6llu %11s %11s %11s %11s\n",
                  label.c_str(), static_cast<unsigned long long>(s.count),
                  FormatMsFixed(s.p50_ns).c_str(),
                  FormatMsFixed(s.p90_ns).c_str(),
                  FormatMsFixed(s.p99_ns).c_str(),
                  FormatMsFixed(static_cast<double>(s.sum_ns)).c_str());
    out << line;
    std::string phase = s.name.substr(0, s.name.find('.'));
    auto& [calls, sum] = phases[phase];
    calls += s.count;
    sum += s.sum_ns;
  }
  if (samples.empty()) {
    out << "(no timings recorded)\n";
    return out.str();
  }
  out << "phase rollup:\n";
  for (const auto& [phase, tally] : phases) {
    std::string label = "  " + phase;
    if (label.size() < 40) label.resize(40, ' ');
    char line[160];
    std::snprintf(line, sizeof(line), "%s %6llu %47s\n", label.c_str(),
                  static_cast<unsigned long long>(tally.first),
                  FormatMsFixed(static_cast<double>(tally.second)).c_str());
    out << line;
  }
  return out.str();
}

void ResetTimingsForTest() {
  TimingRegistry& r = TimingRegistry::Global();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, hist] : r.histograms) hist->Reset();
}

}  // namespace obs
}  // namespace gelc
