// The metrics registry: named counters, gauges, and fixed-bucket
// histograms (see DESIGN.md "Observability").
//
// Design contract:
//  - Hot-path increments are uncontended: each Counter is split into
//    cache-line-sized shards and a thread picks its shard by a
//    thread-local id, so two pool workers never bounce the same line.
//    Reads merge the shards.
//  - Handles returned by GetCounter/GetGauge/GetHistogram are stable for
//    the life of the process — call sites cache them in a function-local
//    static and pay one pointer load per record.
//  - When MetricsEnabled() is false every record call is a no-op (one
//    relaxed atomic load), and the instrumented algorithms are
//    bit-identical either way: metrics never feed back into computation.
//  - Values are deterministic by construction: the registry holds counts,
//    sizes, and losses — never wall-clock durations (timing belongs to
//    the trace layer, obs/trace.h). Two identical runs therefore produce
//    byte-identical snapshots (obs/snapshot.h).
#ifndef GELC_OBS_METRICS_H_
#define GELC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/config.h"

namespace gelc {
namespace obs {

namespace internal {
/// Shard index of the calling thread (stable per thread, < kShards).
size_t ThisThreadShard();
constexpr size_t kShards = 16;
}  // namespace internal

/// A monotonically increasing sum, sharded per thread.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    if (!MetricsEnabled()) return;
    shards_[internal::ThisThreadShard()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Merged total across all shards.
  uint64_t Read() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  const std::string& name() const { return name_; }

  /// Zeroes every shard (tests / ResetMetricsForTest only).
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, internal::kShards> shards_;
  std::string name_;
};

/// A last-write-wins instantaneous value (e.g. current loss, partition
/// size). Set is rare, so a single atomic slot suffices.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
    sets_.fetch_add(1, std::memory_order_release);
  }

  double Read() const { return value_.load(std::memory_order_relaxed); }
  /// False until the first Set; unset gauges are omitted from snapshots.
  bool ever_set() const { return sets_.load(std::memory_order_acquire) > 0; }
  const std::string& name() const { return name_; }

  void Reset() {
    sets_.store(0, std::memory_order_relaxed);
    value_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<uint64_t> sets_{0};
  std::string name_;
};

/// A fixed-bucket histogram over int64 observations. Bucket i counts
/// observations v with v <= bounds[i] (and > bounds[i-1]); one overflow
/// bucket past the last bound. Bounds are fixed at registration.
class Histogram {
 public:
  Histogram(std::string name, std::vector<int64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(int64_t value);

  const std::string& name() const { return name_; }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<uint64_t> Counts() const;
  uint64_t TotalCount() const {
    return total_.load(std::memory_order_relaxed);
  }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  std::vector<int64_t> bounds_;  // strictly ascending
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> total_{0};
  std::atomic<int64_t> sum_{0};
  std::string name_;
};

/// Returns the process-wide metric with this name, registering it on
/// first use. Handles are never invalidated; cache them in a static.
Counter* GetCounter(const std::string& name);
Gauge* GetGauge(const std::string& name);
/// `bounds` must be strictly ascending; a later call with the same name
/// returns the existing histogram (its original bounds win).
Histogram* GetHistogram(const std::string& name,
                        const std::vector<int64_t>& bounds);

/// Current value of a counter by name, 0 when it was never registered.
/// Benches read deltas around their timed loops with this.
uint64_t ReadCounter(const std::string& name);

/// Zeroes every registered metric (registrations and handles survive, so
/// cached call-site pointers stay valid). Tests and gelc_stats use this
/// to start from a clean slate.
void ResetMetricsForTest();

namespace internal {
/// Snapshot support: visits metrics in name order under the registry
/// lock. Declared here so snapshot.cc does not reach into the registry.
void VisitMetrics(const std::function<void(const Counter&)>& on_counter,
                  const std::function<void(const Gauge&)>& on_gauge,
                  const std::function<void(const Histogram&)>& on_histogram);

/// Constructs the registry singleton without registering the exit
/// exporter. Called from the exporter's constructor so the registry is
/// always constructed first — and thus destroyed after the export runs.
void TouchMetricsRegistry();
}  // namespace internal

}  // namespace obs
}  // namespace gelc

#endif  // GELC_OBS_METRICS_H_
