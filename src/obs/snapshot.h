// Point-in-time view of every touched metric, as a struct and as JSON
// (see DESIGN.md "Observability").
//
// The deterministic sections (counters/gauges/histograms) contain only
// deterministic quantities (the registry never holds wall-clock values),
// are sorted by metric name, and omit metrics that were registered but
// never recorded — so two identical runs serialize byte-for-byte
// identically, which tools/gelc_stats and the golden tests in
// tests/obs_test.cc rely on. The timing plane rides along in a separate
// `timings` section (obs/timing.h) that is omitted when empty and is
// explicitly NOT covered by byte-equality: wall-clock percentiles vary
// run to run by design. Deterministic-plane comparisons strip it
// (`gelc_stats --deterministic`).
#ifndef GELC_OBS_SNAPSHOT_H_
#define GELC_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "obs/timing.h"

namespace gelc {
namespace obs {

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<int64_t> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1, last = overflow
  uint64_t total = 0;
  int64_t sum = 0;
};

/// Every touched metric, each kind sorted by name. Counters that are
/// still zero, gauges never Set, and empty histograms are omitted.
/// `timings` holds the (non-deterministic) timing plane and is empty
/// unless GELC_TIMINGS recorded something.
struct StatsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<LatencySample> timings;
};

/// Captures the current registry state (plus the timing plane, which is
/// empty unless timers recorded).
StatsSnapshot Snapshot();

/// Serializes a snapshot as a single line of JSON (no trailing newline):
///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
/// with a trailing `, "timings": {...}` key appended ONLY when the
/// timing plane is non-empty, so the deterministic-plane goldens are
/// unchanged byte for byte when timings are off.
/// Gauges use round-trip shortest formatting (FormatDouble), so the
/// output is byte-stable for equal values.
std::string SnapshotJson(const StatsSnapshot& snapshot);
/// SnapshotJson(Snapshot()).
std::string SnapshotJson();

/// Writes SnapshotJson() plus a trailing newline to `path`.
Status WriteSnapshotJson(const std::string& path);

}  // namespace obs
}  // namespace gelc

#endif  // GELC_OBS_SNAPSHOT_H_
