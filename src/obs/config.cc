#include "obs/config.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/timing.h"
#include "obs/trace.h"

namespace gelc {
namespace obs {

namespace {

bool EnvFlag(const char* name, bool default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return default_value;
  // "0", "false", "off" (any case on the first letter) disable; anything
  // else enables — mirrors GELC_NUM_THREADS's forgiving parsing.
  if (v[0] == '0' || v[0] == 'f' || v[0] == 'F') return false;
  if (v[0] == 'o' || v[0] == 'O') return v[1] == 'n' || v[1] == 'N';
  return true;
}

std::string EnvString(const char* name, const char* default_value) {
  const char* v = std::getenv(name);
  return (v == nullptr) ? default_value : v;
}

std::atomic<bool>& MetricsFlag() {
  static std::atomic<bool> flag{GlobalConfig().metrics_enabled};
  return flag;
}

std::atomic<bool>& TimingsFlag() {
  static std::atomic<bool> flag{GlobalConfig().timings_enabled};
  return flag;
}

std::atomic<bool>& TraceFlag() {
  static std::atomic<bool> flag{GlobalConfig().trace_enabled};
  return flag;
}

// Writes the trace file and the optional metrics snapshot when the
// process exits. Constructed lazily by EnsureExitExporter, which the
// registry and trace collector call from their own initialization.
struct ExitExporter {
  // Whichever singleton triggered EnsureExitExporter, materialize the
  // other one too: static destruction runs in reverse construction
  // order, so this guarantees the destructor below fires while the
  // registry and the collector are both still alive. (Without this, a
  // counter-first program whose collector is constructed later would
  // have the collector torn down before the export runs.) The config is
  // copied, not referenced: GlobalConfig()'s static may be constructed
  // after this object — e.g. when the first obs touch is a GetCounter,
  // whose MetricsEnabled check runs only after registration — and would
  // then be destroyed first, leaving its strings dangling here.
  ExitExporter() : config(GlobalConfig()) {
    internal::TouchMetricsRegistry();
    internal::TouchTraceCollector();
    internal::TouchTimingRegistry();
  }

  Config config;

  ~ExitExporter() {
    if (config.trace_enabled && TraceEventCount() > 0) {
      // Status::ToString lives in gelc_base (which links *us*); print the
      // message directly so gelc_obs stays link-standalone.
      Status s = WriteTrace(config.trace_out);
      if (!s.ok()) {
        std::fprintf(stderr, "gelc: %s\n", s.message().c_str());
      } else {
        std::fprintf(stderr, "gelc: trace written to %s (%zu spans)\n",
                     config.trace_out.c_str(), TraceEventCount());
        std::fputs(TraceSummaryText().c_str(), stderr);
      }
    }
    if (config.timings_enabled && TimingObservationCount() > 0) {
      // The timing plane's rollup goes to stderr like the trace summary;
      // it never touches the deterministic snapshot goldens.
      std::fputs(TimingSummaryText().c_str(), stderr);
    }
    if (!config.metrics_out.empty()) {
      Status s = WriteSnapshotJson(config.metrics_out);
      if (!s.ok()) std::fprintf(stderr, "gelc: %s\n", s.message().c_str());
    }
  }
};

}  // namespace

const Config& GlobalConfig() {
  static const Config config = [] {
    Config c;
    c.metrics_enabled = EnvFlag("GELC_METRICS", true);
    c.timings_enabled = EnvFlag("GELC_TIMINGS", false);
    c.trace_enabled = EnvFlag("GELC_TRACE", false);
    c.trace_out = EnvString("GELC_TRACE_OUT", "gelc_trace.json");
    c.metrics_out = EnvString("GELC_METRICS_OUT", "");
    return c;
  }();
  return config;
}

bool MetricsEnabled() {
  return MetricsFlag().load(std::memory_order_relaxed);
}

bool TimingsEnabled() {
  return TimingsFlag().load(std::memory_order_relaxed);
}

bool TraceEnabled() { return TraceFlag().load(std::memory_order_relaxed); }

void SetMetricsEnabled(bool enabled) {
  MetricsFlag().store(enabled, std::memory_order_relaxed);
}

void SetTimingsEnabled(bool enabled) {
  TimingsFlag().store(enabled, std::memory_order_relaxed);
}

void SetTraceEnabled(bool enabled) {
  TraceFlag().store(enabled, std::memory_order_relaxed);
}

void ResetEnabledFromEnv() {
  SetMetricsEnabled(GlobalConfig().metrics_enabled);
  SetTimingsEnabled(GlobalConfig().timings_enabled);
  SetTraceEnabled(GlobalConfig().trace_enabled);
}

namespace internal {

void EnsureExitExporter() {
  static ExitExporter exporter;
  (void)exporter;
}

}  // namespace internal

}  // namespace obs
}  // namespace gelc
