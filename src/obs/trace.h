// Scoped trace spans recorded into per-thread ring buffers (see
// DESIGN.md "Observability").
//
//   void RunRound(size_t r) {
//     GELC_TRACE_SPAN("wl.round", {{"round", r}});
//     ...
//   }
//
// Each span records (name, start, duration, nesting depth, small integer
// args) on destruction into a lock-free ring buffer owned by the calling
// thread; the collector drains every buffer on export. Two exporters:
//   TraceJson()        — Chrome chrome://tracing / Perfetto "traceEvents"
//                        JSON (complete "X" events, microsecond ts/dur)
//   TraceSummaryText() — a merged call tree with call counts and
//                        inclusive/exclusive milliseconds per path
// When TraceEnabled() is false a span costs one relaxed atomic load and
// no clock read. Span names and arg keys must be string literals (the
// ring buffer stores the pointers, not copies).
//
// Timing policy: this file is the only sanctioned home of steady_clock
// reads outside bench/ — the adhoc-timing lint rule enforces it. Wall
// times never enter the metrics registry, which stays deterministic.
#ifndef GELC_OBS_TRACE_H_
#define GELC_OBS_TRACE_H_

#include <cstdint>
#include <initializer_list>
#include <string>

#include "base/status.h"
#include "obs/config.h"

namespace gelc {
namespace obs {

/// One span argument: a string-literal key and an integer value. The
/// constructor is templated so brace-init from any integer type (size_t
/// loop counters included) works without narrowing diagnostics.
struct SpanArg {
  const char* key = nullptr;
  int64_t value = 0;

  SpanArg() = default;
  template <typename T>
  SpanArg(const char* k, T v) : key(k), value(static_cast<int64_t>(v)) {}
};

namespace internal {

constexpr size_t kMaxSpanArgs = 3;

/// Monotonic nanoseconds (steady_clock); only meaningful as differences.
int64_t NowNs();

/// Records a completed span into the calling thread's ring buffer.
void RecordSpan(const char* name, int64_t start_ns, int64_t end_ns,
                uint32_t depth, const SpanArg* args, uint32_t nargs);

/// Current span nesting depth of the calling thread (incremented by live
/// ScopedSpans).
uint32_t& ThreadSpanDepth();

/// Constructs the trace collector singleton without registering the exit
/// exporter. Called from the exporter's constructor so the collector is
/// always constructed first — and thus destroyed after the export runs.
void TouchTraceCollector();

}  // namespace internal

/// RAII span: records [construction, destruction) when tracing is
/// enabled at construction time. Use via GELC_TRACE_SPAN.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, {}) {}
  ScopedSpan(const char* name, std::initializer_list<SpanArg> args);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  /// Attaches/overwrites an argument before the span closes (for values
  /// only known at the end of the scope, e.g. colors after a WL round).
  /// Silently drops args past the kMaxSpanArgs fixed capacity.
  void SetArg(const char* key, int64_t value);

 private:
  bool active_;
  uint32_t depth_ = 0;
  uint32_t nargs_ = 0;
  int64_t start_ns_ = 0;
  const char* name_ = nullptr;
  SpanArg args_[internal::kMaxSpanArgs];
};

/// All buffered spans as Chrome tracing JSON ({"traceEvents": [...]}).
/// Call when no spans are in flight on other threads (after ParallelFor
/// joins); timestamps are relative to the first buffered span.
std::string TraceJson();

/// Writes TraceJson() to `path`.
Status WriteTrace(const std::string& path);

/// Merged call tree across threads: one line per distinct span path with
/// call count, inclusive ms, exclusive ms (inclusive minus direct
/// children). Paths print in lexicographic order, children indented.
std::string TraceSummaryText();

/// Number of spans currently buffered across all threads (drops from
/// ring-buffer wraparound excluded).
size_t TraceEventCount();

/// Clears every thread's ring buffer (tests; spans must not be in
/// flight elsewhere).
void ResetTraceForTest();

}  // namespace obs
}  // namespace gelc

#define GELC_OBS_CONCAT_INNER_(a, b) a##b
#define GELC_OBS_CONCAT_(a, b) GELC_OBS_CONCAT_INNER_(a, b)

/// GELC_TRACE_SPAN("name") or GELC_TRACE_SPAN("name", {{"key", v}, ...}):
/// a scoped span covering the rest of the enclosing block.
#define GELC_TRACE_SPAN(...)                                        \
  ::gelc::obs::ScopedSpan GELC_OBS_CONCAT_(gelc_trace_span_,        \
                                           __LINE__)(__VA_ARGS__)

#endif  // GELC_OBS_TRACE_H_
