#include "obs/snapshot.h"

#include <fstream>
#include <sstream>

#include "base/strings.h"
#include "obs/metrics.h"

namespace gelc {
namespace obs {

StatsSnapshot Snapshot() {
  StatsSnapshot snap;
  internal::VisitMetrics(
      [&](const Counter& c) {
        uint64_t v = c.Read();
        if (v > 0) snap.counters.push_back({c.name(), v});
      },
      [&](const Gauge& g) {
        if (g.ever_set()) snap.gauges.push_back({g.name(), g.Read()});
      },
      [&](const Histogram& h) {
        if (h.TotalCount() > 0) {
          snap.histograms.push_back(
              {h.name(), h.bounds(), h.Counts(), h.TotalCount(), h.Sum()});
        }
      });
  snap.timings = TimingSnapshot();
  return snap;
}

namespace {

template <typename T>
void AppendArray(std::ostringstream& out, const std::vector<T>& values) {
  out << "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out << ", ";
    out << values[i];
  }
  out << "]";
}

}  // namespace

std::string SnapshotJson(const StatsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    if (i) out << ", ";
    out << "\"" << JsonEscape(c.name) << "\": " << c.value;
  }
  out << "}, \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    if (i) out << ", ";
    out << "\"" << JsonEscape(g.name) << "\": " << FormatDouble(g.value);
  }
  out << "}, \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    if (i) out << ", ";
    out << "\"" << JsonEscape(h.name) << "\": {\"bounds\": ";
    AppendArray(out, h.bounds);
    out << ", \"counts\": ";
    AppendArray(out, h.counts);
    out << ", \"total\": " << h.total << ", \"sum\": " << h.sum << "}";
  }
  out << "}";
  // The timings key appears only when the timing plane recorded
  // something, so the deterministic goldens keep their exact bytes.
  if (!snapshot.timings.empty()) {
    out << ", \"timings\": {";
    for (size_t i = 0; i < snapshot.timings.size(); ++i) {
      const LatencySample& t = snapshot.timings[i];
      if (i) out << ", ";
      out << "\"" << JsonEscape(t.name) << "\": {\"count\": " << t.count
          << ", \"sum_ns\": " << t.sum_ns
          << ", \"p50_ns\": " << FormatDouble(t.p50_ns)
          << ", \"p90_ns\": " << FormatDouble(t.p90_ns)
          << ", \"p99_ns\": " << FormatDouble(t.p99_ns) << "}";
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

std::string SnapshotJson() { return SnapshotJson(Snapshot()); }

Status WriteSnapshotJson(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open snapshot output " + path);
  out << SnapshotJson() << "\n";
  out.flush();
  if (!out) return Status::IOError("snapshot write failed on " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace gelc
