#include "autodiff/tape.h"

#include <algorithm>
#include <cmath>

#include "base/alloc_tune.h"
#include "base/logging.h"
#include "tensor/segment.h"

namespace gelc {

// Tapes are the allocator churn the tuning exists for: one tape per
// (mini)batch per epoch, each full of node-sized matrices.
Tape::Tape() { TuneAllocForTensorChurn(); }

namespace {

// Segment offsets contract shared by the five segment-aware ops: k+1
// non-decreasing entries covering [0, rows).
void CheckSegmentOffsets(size_t rows, const std::vector<size_t>& offsets) {
  GELC_CHECK(!offsets.empty());
  GELC_CHECK(offsets.front() == 0);
  GELC_CHECK(offsets.back() == rows);
  for (size_t s = 0; s + 1 < offsets.size(); ++s) {
    GELC_DCHECK_LE(offsets[s], offsets[s + 1]);
  }
}

}  // namespace

ValueId Tape::Push(Node n) {
  n.grad = Matrix(n.value.rows(), n.value.cols());
  nodes_.push_back(std::move(n));
  return static_cast<ValueId>(nodes_.size() - 1);
}

ValueId Tape::Input(Matrix m) {
  Node n;
  n.op = Op::kInput;
  n.value = std::move(m);
  return Push(std::move(n));
}

ValueId Tape::Param(Parameter* p) {
  GELC_CHECK(p != nullptr);
  Node n;
  n.op = Op::kParam;
  n.param = p;
  n.value = p->value;
  return Push(std::move(n));
}

ValueId Tape::Add(ValueId a, ValueId b) {
  Node n;
  n.op = Op::kAdd;
  n.a = a;
  n.b = b;
  n.value = nodes_[a].value + nodes_[b].value;
  return Push(std::move(n));
}

ValueId Tape::Sub(ValueId a, ValueId b) {
  Node n;
  n.op = Op::kSub;
  n.a = a;
  n.b = b;
  n.value = nodes_[a].value - nodes_[b].value;
  return Push(std::move(n));
}

ValueId Tape::MatMul(ValueId a, ValueId b) {
  Node n;
  n.op = Op::kMatMul;
  n.a = a;
  n.b = b;
  n.value = nodes_[a].value.MatMul(nodes_[b].value);
  return Push(std::move(n));
}

ValueId Tape::SparseMatMul(const CsrMatrix* csr, const CsrMatrix* csr_t,
                           ValueId b) {
  GELC_CHECK(csr != nullptr && csr_t != nullptr);
  GELC_CHECK(csr->rows == csr_t->cols && csr->cols == csr_t->rows);
  Node n;
  n.op = Op::kSparseMatMul;
  n.b = b;
  n.csr = csr;
  n.csr_t = csr_t;
  n.value = SpMM(*csr, nodes_[b].value);
  return Push(std::move(n));
}

ValueId Tape::Hadamard(ValueId a, ValueId b) {
  Node n;
  n.op = Op::kHadamard;
  n.a = a;
  n.b = b;
  n.value = nodes_[a].value.Hadamard(nodes_[b].value);
  return Push(std::move(n));
}

ValueId Tape::Scale(ValueId a, double s) {
  Node n;
  n.op = Op::kScale;
  n.a = a;
  n.scalar = s;
  n.value = nodes_[a].value * s;
  return Push(std::move(n));
}

ValueId Tape::Act(Activation act, ValueId a) {
  Node n;
  n.op = Op::kAct;
  n.a = a;
  n.act = act;
  n.value = ApplyActivation(act, nodes_[a].value);
  return Push(std::move(n));
}

ValueId Tape::AddRowBroadcast(ValueId a, ValueId bias) {
  Node n;
  n.op = Op::kAddRowBroadcast;
  n.a = a;
  n.b = bias;
  n.value = nodes_[a].value.AddRowBroadcast(nodes_[bias].value);
  return Push(std::move(n));
}

ValueId Tape::ConcatCols(ValueId a, ValueId b) {
  Node n;
  n.op = Op::kConcatCols;
  n.a = a;
  n.b = b;
  n.value = nodes_[a].value.ConcatCols(nodes_[b].value);
  return Push(std::move(n));
}

ValueId Tape::ColSums(ValueId a) {
  Node n;
  n.op = Op::kColSums;
  n.a = a;
  n.value = nodes_[a].value.ColSums();
  return Push(std::move(n));
}

ValueId Tape::ColMax(ValueId a) {
  GELC_CHECK(nodes_[a].value.rows() > 0);
  Node n;
  n.op = Op::kColMax;
  n.a = a;
  n.value = nodes_[a].value.ColMax();
  // Record argmax row per column for the backward pass.
  const Matrix& in = nodes_[a].value;
  n.indices.resize(in.cols(), 0);
  for (size_t j = 0; j < in.cols(); ++j) {
    for (size_t i = 1; i < in.rows(); ++i)
      if (in.At(i, j) > in.At(n.indices[j], j)) n.indices[j] = i;
  }
  return Push(std::move(n));
}

ValueId Tape::SegmentSum(ValueId a, std::vector<size_t> offsets) {
  Node n;
  n.op = Op::kSegmentSum;
  n.a = a;
  n.value = gelc::SegmentSum(nodes_[a].value, offsets);
  n.indices = std::move(offsets);
  return Push(std::move(n));
}

ValueId Tape::SegmentMean(ValueId a, std::vector<size_t> offsets) {
  Node n;
  n.op = Op::kSegmentMean;
  n.a = a;
  n.value = gelc::SegmentMean(nodes_[a].value, offsets);
  n.indices = std::move(offsets);
  return Push(std::move(n));
}

ValueId Tape::SegmentMax(ValueId a, std::vector<size_t> offsets) {
  Node n;
  n.op = Op::kSegmentMax;
  n.a = a;
  // The kernel records the first-argmax row per (segment, column) —
  // f.rows() sentinel for empty segments — which Backward routes by.
  n.value = gelc::SegmentMax(nodes_[a].value, offsets, &n.indices2);
  n.indices = std::move(offsets);
  return Push(std::move(n));
}

ValueId Tape::MatMulSegments(ValueId a, ValueId b,
                             std::vector<size_t> offsets) {
  CheckSegmentOffsets(nodes_[a].value.rows(), offsets);
  Node n;
  n.op = Op::kMatMulSegments;
  n.a = a;
  n.b = b;
  n.value = nodes_[a].value.MatMul(nodes_[b].value);
  n.indices = std::move(offsets);
  return Push(std::move(n));
}

ValueId Tape::AddRowBroadcastSegments(ValueId a, ValueId bias,
                                      std::vector<size_t> offsets) {
  CheckSegmentOffsets(nodes_[a].value.rows(), offsets);
  Node n;
  n.op = Op::kAddRowBroadcastSegments;
  n.a = a;
  n.b = bias;
  n.value = nodes_[a].value.AddRowBroadcast(nodes_[bias].value);
  n.indices = std::move(offsets);
  return Push(std::move(n));
}

ValueId Tape::GatherRows(ValueId a, std::vector<size_t> rows) {
  const Matrix& in = nodes_[a].value;
  Node n;
  n.op = Op::kGatherRows;
  n.a = a;
  n.value = Matrix(rows.size(), in.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    GELC_CHECK(rows[i] < in.rows());
    for (size_t j = 0; j < in.cols(); ++j)
      n.value.At(i, j) = in.At(rows[i], j);
  }
  n.indices = std::move(rows);
  return Push(std::move(n));
}

ValueId Tape::SoftmaxCrossEntropy(ValueId logits, std::vector<size_t> labels) {
  const Matrix& lg = nodes_[logits].value;
  GELC_CHECK(labels.size() == lg.rows());
  Matrix probs = RowSoftmax(lg);
  double loss = 0.0;
  for (size_t i = 0; i < lg.rows(); ++i) {
    GELC_CHECK(labels[i] < lg.cols());
    loss -= std::log(std::max(probs.At(i, labels[i]), 1e-300));
  }
  loss /= static_cast<double>(lg.rows());
  Node n;
  n.op = Op::kSoftmaxXent;
  n.a = logits;
  n.value = Matrix(1, 1, loss);
  n.aux = std::move(probs);
  n.indices = std::move(labels);
  return Push(std::move(n));
}

ValueId Tape::Mse(ValueId pred, Matrix target) {
  const Matrix& p = nodes_[pred].value;
  GELC_CHECK(p.rows() == target.rows() && p.cols() == target.cols());
  double loss = 0.0;
  for (size_t i = 0; i < p.rows(); ++i)
    for (size_t j = 0; j < p.cols(); ++j) {
      double d = p.At(i, j) - target.At(i, j);
      loss += d * d;
    }
  loss /= static_cast<double>(p.size());
  Node n;
  n.op = Op::kMse;
  n.a = pred;
  n.value = Matrix(1, 1, loss);
  n.aux = std::move(target);
  return Push(std::move(n));
}

void Tape::Backward(ValueId root) {
  GELC_CHECK(root < nodes_.size());
  GELC_CHECK(nodes_[root].value.rows() == 1 && nodes_[root].value.cols() == 1);
  nodes_[root].grad = Matrix(1, 1, 1.0);
  // Dead-branch skip, two layers deep. (1) Reachability: a node feeds
  // the loss iff a consumer visited earlier in the reverse sweep marked
  // it — an O(1) flag per node, independent of the data. (2) Value: a
  // reached node whose accumulated gradient is exactly zero contributes
  // exactly nothing to its operands, so its backward products are
  // skipped and its operands stay unmarked unless a live consumer marks
  // them. The value check earns its keep: ReLU masks routinely zero
  // whole per-graph gradient matrices mid-training, which on the
  // molecule workloads kills most backward matmuls. IsZero early-exits
  // at the first nonzero entry, so live nodes pay O(1); full scans only
  // happen on matrices that really are zero, where the skipped products
  // repay the scan many times over (its predecessor, an unconditional
  // FrobeniusNorm, scanned every gradient on every pass and reached 24%
  // of batched training time). Both skips are bit-exact: node grads
  // never hold -0.0 (they start at +0.0, +0.0 + -0.0 == +0.0, and exact
  // cancellation rounds to +0.0), so propagating an exactly-zero
  // gradient is x += ±0.0 everywhere, which changes no bit.
  live_.assign(static_cast<size_t>(root) + 1, 0);
  live_[root] = 1;
  for (size_t idx = root + 1; idx-- > 0;) {
    Node& n = nodes_[idx];
    const Matrix& g = n.grad;
    // Params flush their (possibly zero) accumulated grad regardless,
    // matching the historical contract.
    if (n.op != Op::kParam && (!live_[idx] || g.IsZero())) continue;
    switch (n.op) {
      case Op::kInput:
      case Op::kParam:
        break;  // leaves
      case Op::kSparseMatMul:
        live_[n.b] = 1;  // the sparse operand is a constant
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMatMul:
      case Op::kHadamard:
      case Op::kAddRowBroadcast:
      case Op::kConcatCols:
      case Op::kMatMulSegments:
      case Op::kAddRowBroadcastSegments:
        live_[n.a] = 1;
        live_[n.b] = 1;
        break;
      default:  // unary ops: kScale, kAct, the reductions, the losses
        live_[n.a] = 1;
        break;
    }
    switch (n.op) {
      case Op::kInput:
        break;
      case Op::kParam:
        n.param->grad += g;
        break;
      case Op::kAdd:
        nodes_[n.a].grad += g;
        nodes_[n.b].grad += g;
        break;
      case Op::kSub:
        nodes_[n.a].grad += g;
        nodes_[n.b].grad -= g;
        break;
      case Op::kMatMul:
        // The two gradient products go through a scratch buffer reused
        // across the whole backward pass (and across training steps),
        // instead of allocating a fresh matrix per product.
        g.MatMulInto(nodes_[n.b].value.Transposed(), &matmul_scratch_);
        nodes_[n.a].grad += matmul_scratch_;
        nodes_[n.a].value.Transposed().MatMulInto(g, &matmul_scratch_);
        nodes_[n.b].grad += matmul_scratch_;
        break;
      case Op::kSparseMatMul:
        // d/dB (A·B) pulled back through the cached transpose CSR; the
        // sparse operand is constant, so no second product is needed.
        SpMMInto(*n.csr_t, g, &matmul_scratch_);
        nodes_[n.b].grad += matmul_scratch_;
        break;
      case Op::kHadamard:
        nodes_[n.a].grad += g.Hadamard(nodes_[n.b].value);
        nodes_[n.b].grad += g.Hadamard(nodes_[n.a].value);
        break;
      case Op::kScale:
        nodes_[n.a].grad += g * n.scalar;
        break;
      case Op::kAct: {
        // Fused g ⊙ act'(in) accumulate: one pass, no temporary. Each
        // entry still computes t = g·f then ga += t, so the bits match
        // the copy-multiply-add formulation exactly.
        const auto& in = nodes_[n.a].value.data();
        const auto& gd = g.data();
        auto& ga = nodes_[n.a].grad.mutable_data();
        for (size_t i = 0; i < ga.size(); ++i)
          ga[i] += gd[i] * ActivationGrad(n.act, in[i]);
        break;
      }
      case Op::kAddRowBroadcast:
        nodes_[n.a].grad += g;
        nodes_[n.b].grad += g.ColSums();
        break;
      case Op::kConcatCols: {
        Matrix& ga = nodes_[n.a].grad;
        Matrix& gb = nodes_[n.b].grad;
        size_t da = ga.cols();
        for (size_t i = 0; i < g.rows(); ++i) {
          for (size_t j = 0; j < da; ++j) ga.At(i, j) += g.At(i, j);
          for (size_t j = 0; j < gb.cols(); ++j)
            gb.At(i, j) += g.At(i, da + j);
        }
        break;
      }
      case Op::kColSums: {
        Matrix& ga = nodes_[n.a].grad;
        for (size_t i = 0; i < ga.rows(); ++i)
          for (size_t j = 0; j < ga.cols(); ++j) ga.At(i, j) += g.At(0, j);
        break;
      }
      case Op::kColMax: {
        Matrix& ga = nodes_[n.a].grad;
        for (size_t j = 0; j < ga.cols(); ++j)
          ga.At(n.indices[j], j) += g.At(0, j);
        break;
      }
      case Op::kSegmentSum: {
        Matrix& ga = nodes_[n.a].grad;
        for (size_t s = 0; s + 1 < n.indices.size(); ++s)
          for (size_t i = n.indices[s]; i < n.indices[s + 1]; ++i)
            for (size_t j = 0; j < ga.cols(); ++j)
              ga.At(i, j) += g.At(s, j);
        break;
      }
      case Op::kSegmentMean: {
        Matrix& ga = nodes_[n.a].grad;
        for (size_t s = 0; s + 1 < n.indices.size(); ++s) {
          size_t count = n.indices[s + 1] - n.indices[s];
          if (count == 0) continue;
          double inv = 1.0 / static_cast<double>(count);
          for (size_t i = n.indices[s]; i < n.indices[s + 1]; ++i)
            for (size_t j = 0; j < ga.cols(); ++j)
              ga.At(i, j) += g.At(s, j) * inv;
        }
        break;
      }
      case Op::kSegmentMax: {
        Matrix& ga = nodes_[n.a].grad;
        size_t cols = ga.cols();
        for (size_t s = 0; s + 1 < n.indices.size(); ++s) {
          for (size_t j = 0; j < cols; ++j) {
            size_t row = n.indices2[s * cols + j];
            if (row < ga.rows()) ga.At(row, j) += g.At(s, j);
          }
        }
        break;
      }
      case Op::kMatMulSegments: {
        // da = g · bᵀ touches each row independently — same as kMatMul.
        g.MatMulInto(nodes_[n.b].value.Transposed(), &matmul_scratch_);
        nodes_[n.a].grad += matmul_scratch_;
        // db = aᵀ · g accumulated one segment at a time: the partial
        // product aᵀ_s · g_s is formed from zero (rows ascending, the
        // MatMulImpl i-k-j chain) and added whole, reproducing the
        // association of per-segment tapes run back to back bit-for-bit.
        const Matrix& av = nodes_[n.a].value;
        Matrix& gb = nodes_[n.b].grad;
        size_t din = av.cols();
        size_t dout = g.cols();
        for (size_t s = 0; s + 1 < n.indices.size(); ++s) {
          size_t begin = n.indices[s];
          size_t end = n.indices[s + 1];
          if (begin == end) continue;
          if (segment_scratch_.rows() == din &&
              segment_scratch_.cols() == dout) {
            std::fill(segment_scratch_.mutable_data().begin(),
                      segment_scratch_.mutable_data().end(), 0.0);
          } else {
            segment_scratch_ = Matrix(din, dout);
          }
          // v-outer order streams each row of `a` and `g` exactly once
          // (the h-outer alternative re-reads both matrices din times,
          // with strided column access into `a`), and v is unrolled by 4
          // so each scratch cell is read and written once per four rows
          // instead of once per row. Per scratch cell (h, j) the
          // additions still happen one at a time in ascending-v order
          // (sequential rounding steps through a register), so the
          // partial product's bits are unchanged.
          const double* av_data = av.data().data();
          const double* g_data = g.data().data();
          double* scratch = segment_scratch_.mutable_data().data();
          size_t v = begin;
          for (; v + 4 <= end; v += 4) {
            const double* a0 = &av_data[v * din];
            const double* a1 = a0 + din;
            const double* a2 = a1 + din;
            const double* a3 = a2 + din;
            const double* g0 = &g_data[v * dout];
            const double* g1 = g0 + dout;
            const double* g2 = g1 + dout;
            const double* g3 = g2 + dout;
            for (size_t h = 0; h < din; ++h) {
              double* orow = &scratch[h * dout];
              for (size_t j = 0; j < dout; ++j) {
                double t = orow[j];
                t += a0[h] * g0[j];
                t += a1[h] * g1[j];
                t += a2[h] * g2[j];
                t += a3[h] * g3[j];
                orow[j] = t;
              }
            }
          }
          for (; v < end; ++v) {
            const double* arow = &av_data[v * din];
            const double* grow = &g_data[v * dout];
            for (size_t h = 0; h < din; ++h) {
              double a_vh = arow[h];
              double* orow = &scratch[h * dout];
              for (size_t j = 0; j < dout; ++j) orow[j] += a_vh * grow[j];
            }
          }
          gb += segment_scratch_;
        }
        break;
      }
      case Op::kAddRowBroadcastSegments: {
        nodes_[n.a].grad += g;
        // Bias gradient: per-segment column sums (rows ascending from
        // zero, the ColSums chain), each added whole — see
        // kMatMulSegments for why the association matters.
        Matrix& gb = nodes_[n.b].grad;
        size_t cols = gb.cols();
        std::vector<double> partial(cols);
        for (size_t s = 0; s + 1 < n.indices.size(); ++s) {
          size_t begin = n.indices[s];
          size_t end = n.indices[s + 1];
          if (begin == end) continue;
          std::fill(partial.begin(), partial.end(), 0.0);
          for (size_t i = begin; i < end; ++i)
            for (size_t j = 0; j < cols; ++j) partial[j] += g.At(i, j);
          for (size_t j = 0; j < cols; ++j) gb.At(0, j) += partial[j];
        }
        break;
      }
      case Op::kGatherRows: {
        Matrix& ga = nodes_[n.a].grad;
        for (size_t i = 0; i < n.indices.size(); ++i)
          for (size_t j = 0; j < ga.cols(); ++j)
            ga.At(n.indices[i], j) += g.At(i, j);
        break;
      }
      case Op::kSoftmaxXent: {
        double scale = g.At(0, 0) / static_cast<double>(n.aux.rows());
        Matrix& ga = nodes_[n.a].grad;
        for (size_t i = 0; i < n.aux.rows(); ++i) {
          for (size_t j = 0; j < n.aux.cols(); ++j) {
            double ind = (j == n.indices[i]) ? 1.0 : 0.0;
            ga.At(i, j) += scale * (n.aux.At(i, j) - ind);
          }
        }
        break;
      }
      case Op::kMse: {
        double scale =
            2.0 * g.At(0, 0) / static_cast<double>(n.aux.size());
        Matrix& ga = nodes_[n.a].grad;
        const Matrix& pred = nodes_[n.a].value;
        for (size_t i = 0; i < pred.rows(); ++i)
          for (size_t j = 0; j < pred.cols(); ++j)
            ga.At(i, j) += scale * (pred.At(i, j) - n.aux.At(i, j));
        break;
      }
    }
  }
}

}  // namespace gelc
