#include "autodiff/tape.h"

#include <cmath>

#include "base/logging.h"

namespace gelc {

ValueId Tape::Push(Node n) {
  n.grad = Matrix(n.value.rows(), n.value.cols());
  nodes_.push_back(std::move(n));
  return static_cast<ValueId>(nodes_.size() - 1);
}

ValueId Tape::Input(Matrix m) {
  Node n;
  n.op = Op::kInput;
  n.value = std::move(m);
  return Push(std::move(n));
}

ValueId Tape::Param(Parameter* p) {
  GELC_CHECK(p != nullptr);
  Node n;
  n.op = Op::kParam;
  n.param = p;
  n.value = p->value;
  return Push(std::move(n));
}

ValueId Tape::Add(ValueId a, ValueId b) {
  Node n;
  n.op = Op::kAdd;
  n.a = a;
  n.b = b;
  n.value = nodes_[a].value + nodes_[b].value;
  return Push(std::move(n));
}

ValueId Tape::Sub(ValueId a, ValueId b) {
  Node n;
  n.op = Op::kSub;
  n.a = a;
  n.b = b;
  n.value = nodes_[a].value - nodes_[b].value;
  return Push(std::move(n));
}

ValueId Tape::MatMul(ValueId a, ValueId b) {
  Node n;
  n.op = Op::kMatMul;
  n.a = a;
  n.b = b;
  n.value = nodes_[a].value.MatMul(nodes_[b].value);
  return Push(std::move(n));
}

ValueId Tape::SparseMatMul(const CsrMatrix* csr, const CsrMatrix* csr_t,
                           ValueId b) {
  GELC_CHECK(csr != nullptr && csr_t != nullptr);
  GELC_CHECK(csr->rows == csr_t->cols && csr->cols == csr_t->rows);
  Node n;
  n.op = Op::kSparseMatMul;
  n.b = b;
  n.csr = csr;
  n.csr_t = csr_t;
  n.value = SpMM(*csr, nodes_[b].value);
  return Push(std::move(n));
}

ValueId Tape::Hadamard(ValueId a, ValueId b) {
  Node n;
  n.op = Op::kHadamard;
  n.a = a;
  n.b = b;
  n.value = nodes_[a].value.Hadamard(nodes_[b].value);
  return Push(std::move(n));
}

ValueId Tape::Scale(ValueId a, double s) {
  Node n;
  n.op = Op::kScale;
  n.a = a;
  n.scalar = s;
  n.value = nodes_[a].value * s;
  return Push(std::move(n));
}

ValueId Tape::Act(Activation act, ValueId a) {
  Node n;
  n.op = Op::kAct;
  n.a = a;
  n.act = act;
  n.value = ApplyActivation(act, nodes_[a].value);
  return Push(std::move(n));
}

ValueId Tape::AddRowBroadcast(ValueId a, ValueId bias) {
  Node n;
  n.op = Op::kAddRowBroadcast;
  n.a = a;
  n.b = bias;
  n.value = nodes_[a].value.AddRowBroadcast(nodes_[bias].value);
  return Push(std::move(n));
}

ValueId Tape::ConcatCols(ValueId a, ValueId b) {
  Node n;
  n.op = Op::kConcatCols;
  n.a = a;
  n.b = b;
  n.value = nodes_[a].value.ConcatCols(nodes_[b].value);
  return Push(std::move(n));
}

ValueId Tape::ColSums(ValueId a) {
  Node n;
  n.op = Op::kColSums;
  n.a = a;
  n.value = nodes_[a].value.ColSums();
  return Push(std::move(n));
}

ValueId Tape::ColMax(ValueId a) {
  GELC_CHECK(nodes_[a].value.rows() > 0);
  Node n;
  n.op = Op::kColMax;
  n.a = a;
  n.value = nodes_[a].value.ColMax();
  // Record argmax row per column for the backward pass.
  const Matrix& in = nodes_[a].value;
  n.indices.resize(in.cols(), 0);
  for (size_t j = 0; j < in.cols(); ++j) {
    for (size_t i = 1; i < in.rows(); ++i)
      if (in.At(i, j) > in.At(n.indices[j], j)) n.indices[j] = i;
  }
  return Push(std::move(n));
}

ValueId Tape::GatherRows(ValueId a, std::vector<size_t> rows) {
  const Matrix& in = nodes_[a].value;
  Node n;
  n.op = Op::kGatherRows;
  n.a = a;
  n.value = Matrix(rows.size(), in.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    GELC_CHECK(rows[i] < in.rows());
    for (size_t j = 0; j < in.cols(); ++j)
      n.value.At(i, j) = in.At(rows[i], j);
  }
  n.indices = std::move(rows);
  return Push(std::move(n));
}

ValueId Tape::SoftmaxCrossEntropy(ValueId logits, std::vector<size_t> labels) {
  const Matrix& lg = nodes_[logits].value;
  GELC_CHECK(labels.size() == lg.rows());
  Matrix probs = RowSoftmax(lg);
  double loss = 0.0;
  for (size_t i = 0; i < lg.rows(); ++i) {
    GELC_CHECK(labels[i] < lg.cols());
    loss -= std::log(std::max(probs.At(i, labels[i]), 1e-300));
  }
  loss /= static_cast<double>(lg.rows());
  Node n;
  n.op = Op::kSoftmaxXent;
  n.a = logits;
  n.value = Matrix(1, 1, loss);
  n.aux = std::move(probs);
  n.indices = std::move(labels);
  return Push(std::move(n));
}

ValueId Tape::Mse(ValueId pred, Matrix target) {
  const Matrix& p = nodes_[pred].value;
  GELC_CHECK(p.rows() == target.rows() && p.cols() == target.cols());
  double loss = 0.0;
  for (size_t i = 0; i < p.rows(); ++i)
    for (size_t j = 0; j < p.cols(); ++j) {
      double d = p.At(i, j) - target.At(i, j);
      loss += d * d;
    }
  loss /= static_cast<double>(p.size());
  Node n;
  n.op = Op::kMse;
  n.a = pred;
  n.value = Matrix(1, 1, loss);
  n.aux = std::move(target);
  return Push(std::move(n));
}

void Tape::Backward(ValueId root) {
  GELC_CHECK(root < nodes_.size());
  GELC_CHECK(nodes_[root].value.rows() == 1 && nodes_[root].value.cols() == 1);
  nodes_[root].grad = Matrix(1, 1, 1.0);
  for (size_t idx = root + 1; idx-- > 0;) {
    Node& n = nodes_[idx];
    const Matrix& g = n.grad;
    if (g.FrobeniusNorm() == 0.0 && n.op != Op::kParam) continue;
    switch (n.op) {
      case Op::kInput:
        break;
      case Op::kParam:
        n.param->grad += g;
        break;
      case Op::kAdd:
        nodes_[n.a].grad += g;
        nodes_[n.b].grad += g;
        break;
      case Op::kSub:
        nodes_[n.a].grad += g;
        nodes_[n.b].grad -= g;
        break;
      case Op::kMatMul:
        // The two gradient products go through a scratch buffer reused
        // across the whole backward pass (and across training steps),
        // instead of allocating a fresh matrix per product.
        g.MatMulInto(nodes_[n.b].value.Transposed(), &matmul_scratch_);
        nodes_[n.a].grad += matmul_scratch_;
        nodes_[n.a].value.Transposed().MatMulInto(g, &matmul_scratch_);
        nodes_[n.b].grad += matmul_scratch_;
        break;
      case Op::kSparseMatMul:
        // d/dB (A·B) pulled back through the cached transpose CSR; the
        // sparse operand is constant, so no second product is needed.
        SpMMInto(*n.csr_t, g, &matmul_scratch_);
        nodes_[n.b].grad += matmul_scratch_;
        break;
      case Op::kHadamard:
        nodes_[n.a].grad += g.Hadamard(nodes_[n.b].value);
        nodes_[n.b].grad += g.Hadamard(nodes_[n.a].value);
        break;
      case Op::kScale:
        nodes_[n.a].grad += g * n.scalar;
        break;
      case Op::kAct: {
        const Matrix& in = nodes_[n.a].value;
        Matrix dg = g;
        for (size_t i = 0; i < dg.rows(); ++i)
          for (size_t j = 0; j < dg.cols(); ++j)
            dg.At(i, j) *= ActivationGrad(n.act, in.At(i, j));
        nodes_[n.a].grad += dg;
        break;
      }
      case Op::kAddRowBroadcast:
        nodes_[n.a].grad += g;
        nodes_[n.b].grad += g.ColSums();
        break;
      case Op::kConcatCols: {
        Matrix& ga = nodes_[n.a].grad;
        Matrix& gb = nodes_[n.b].grad;
        size_t da = ga.cols();
        for (size_t i = 0; i < g.rows(); ++i) {
          for (size_t j = 0; j < da; ++j) ga.At(i, j) += g.At(i, j);
          for (size_t j = 0; j < gb.cols(); ++j)
            gb.At(i, j) += g.At(i, da + j);
        }
        break;
      }
      case Op::kColSums: {
        Matrix& ga = nodes_[n.a].grad;
        for (size_t i = 0; i < ga.rows(); ++i)
          for (size_t j = 0; j < ga.cols(); ++j) ga.At(i, j) += g.At(0, j);
        break;
      }
      case Op::kColMax: {
        Matrix& ga = nodes_[n.a].grad;
        for (size_t j = 0; j < ga.cols(); ++j)
          ga.At(n.indices[j], j) += g.At(0, j);
        break;
      }
      case Op::kGatherRows: {
        Matrix& ga = nodes_[n.a].grad;
        for (size_t i = 0; i < n.indices.size(); ++i)
          for (size_t j = 0; j < ga.cols(); ++j)
            ga.At(n.indices[i], j) += g.At(i, j);
        break;
      }
      case Op::kSoftmaxXent: {
        double scale = g.At(0, 0) / static_cast<double>(n.aux.rows());
        Matrix& ga = nodes_[n.a].grad;
        for (size_t i = 0; i < n.aux.rows(); ++i) {
          for (size_t j = 0; j < n.aux.cols(); ++j) {
            double ind = (j == n.indices[i]) ? 1.0 : 0.0;
            ga.At(i, j) += scale * (n.aux.At(i, j) - ind);
          }
        }
        break;
      }
      case Op::kMse: {
        double scale =
            2.0 * g.At(0, 0) / static_cast<double>(n.aux.size());
        Matrix& ga = nodes_[n.a].grad;
        const Matrix& pred = nodes_[n.a].value;
        for (size_t i = 0; i < pred.rows(); ++i)
          for (size_t j = 0; j < pred.cols(); ++j)
            ga.At(i, j) += scale * (pred.At(i, j) - n.aux.At(i, j));
        break;
      }
    }
  }
}

}  // namespace gelc
