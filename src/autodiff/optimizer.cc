#include "autodiff/optimizer.h"

#include <cmath>

namespace gelc {

void Sgd::Register(Parameter* p) {
  params_.push_back(p);
  velocity_.emplace_back(p->value.rows(), p->value.cols());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    if (momentum_ != 0.0) {
      velocity_[i] = velocity_[i] * momentum_ + p->grad;
      p->value -= velocity_[i] * lr_;
    } else {
      p->value -= p->grad * lr_;
    }
  }
}

void Adam::Register(Parameter* p) {
  params_.push_back(p);
  m_.emplace_back(p->value.rows(), p->value.cols());
  v_.emplace_back(p->value.rows(), p->value.cols());
}

void Adam::Step() {
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, t_);
  double bc2 = 1.0 - std::pow(beta2_, t_);
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        double g = p->grad.At(r, c);
        double& m = m_[i].At(r, c);
        double& v = v_[i].At(r, c);
        m = beta1_ * m + (1.0 - beta1_) * g;
        v = beta2_ * v + (1.0 - beta2_) * g * g;
        double mhat = m / bc1;
        double vhat = v / bc2;
        p->value.At(r, c) -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      }
    }
  }
}

}  // namespace gelc
