// Reverse-mode automatic differentiation over dense matrices.
//
// The paper's learning setting (slides 16-20) selects a hypothesis by
// empirical risk minimization, "typically based on back propagation and
// gradient descent like methods". This module provides exactly that: a
// tape of matrix operations built during a forward pass, which Backward()
// traverses in reverse to accumulate gradients into leaf Parameters.
//
// Usage:
//   Parameter w(Matrix::RandomGaussian(4, 2, 0.1, &rng));
//   Tape tape;
//   ValueId x = tape.Input(features);
//   ValueId h = tape.Act(Activation::kReLU, tape.MatMul(x, tape.Param(&w)));
//   ValueId loss = tape.SoftmaxCrossEntropy(h, labels);
//   tape.Backward(loss);           // accumulates into w.grad
#ifndef GELC_AUTODIFF_TAPE_H_
#define GELC_AUTODIFF_TAPE_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"

namespace gelc {

/// A trainable leaf: value plus accumulated gradient of equal shape.
struct Parameter {
  explicit Parameter(Matrix v)
      : value(std::move(v)), grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad = Matrix(value.rows(), value.cols()); }

  Matrix value;
  Matrix grad;
};

/// Handle to a node on a Tape.
using ValueId = uint32_t;

/// A single-use computation tape. Build the forward graph, call Backward
/// once, read gradients. Reuse by constructing a fresh Tape per step.
class Tape {
 public:
  Tape();
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// A constant (no gradient flows into it).
  ValueId Input(Matrix m);
  /// A trainable leaf; Backward accumulates into p->grad. `p` must outlive
  /// the tape.
  ValueId Param(Parameter* p);

  ValueId Add(ValueId a, ValueId b);
  ValueId Sub(ValueId a, ValueId b);
  ValueId MatMul(ValueId a, ValueId b);
  /// Sparse-times-dense product csr * b via SpMM; the sparse operand is a
  /// constant (no gradient flows into it), so message passing never
  /// densifies the adjacency. Backward is csrᵀ * grad through `csr_t`,
  /// which must be the transpose of `csr` (Graph::Csr() caches both).
  /// Both pointers must outlive the tape.
  ValueId SparseMatMul(const CsrMatrix* csr, const CsrMatrix* csr_t,
                       ValueId b);
  ValueId Hadamard(ValueId a, ValueId b);
  ValueId Scale(ValueId a, double s);
  /// Entrywise activation.
  ValueId Act(Activation act, ValueId a);
  /// Adds a 1 x d bias row to every row of `a`.
  ValueId AddRowBroadcast(ValueId a, ValueId bias);
  /// [a | b] column concatenation.
  ValueId ConcatCols(ValueId a, ValueId b);
  /// Column sums: n x d -> 1 x d.
  ValueId ColSums(ValueId a);
  /// Column-wise max with subgradient routed to (first) argmax rows.
  ValueId ColMax(ValueId a);
  /// Per-segment column sums (batched readout): rows
  /// [offsets[s], offsets[s+1]) of `a` reduce to output row s. `offsets`
  /// must be non-decreasing with offsets.front() == 0 and offsets.back()
  /// == a's row count; empty segments yield zero rows. Row s of the
  /// result carries the same bits as ColSums of that block alone.
  ValueId SegmentSum(ValueId a, std::vector<size_t> offsets);
  /// Per-segment column means; empty segments yield zero rows.
  ValueId SegmentMean(ValueId a, std::vector<size_t> offsets);
  /// Per-segment column max with subgradient routed to the (first)
  /// argmax row of each segment; empty segments yield zero rows and
  /// receive no gradient.
  ValueId SegmentMax(ValueId a, std::vector<size_t> offsets);
  /// Matrix product whose forward value is exactly MatMul(a, b), but
  /// whose backward pass accumulates b's gradient one row segment of `a`
  /// at a time: each segment's partial product aᵀ_s · g_s is formed from
  /// zero and added whole. Building a batch forward with this op makes
  /// the accumulated parameter gradient bit-identical to running the
  /// per-segment (per-graph) tapes one after another — the floating-point
  /// association matches, not just the real-number sum (DESIGN.md
  /// "Batched execution").
  ValueId MatMulSegments(ValueId a, ValueId b, std::vector<size_t> offsets);
  /// AddRowBroadcast whose backward accumulates the bias gradient one
  /// row segment at a time (per-segment column sums added whole), the
  /// bias-row analogue of MatMulSegments.
  ValueId AddRowBroadcastSegments(ValueId a, ValueId bias,
                                  std::vector<size_t> offsets);
  /// Keeps only the given rows (gather): n x d -> |rows| x d.
  ValueId GatherRows(ValueId a, std::vector<size_t> rows);

  /// Mean softmax cross-entropy of row logits against integer labels;
  /// result is 1x1.
  ValueId SoftmaxCrossEntropy(ValueId logits, std::vector<size_t> labels);
  /// Mean squared error against a constant target; result is 1x1.
  ValueId Mse(ValueId pred, Matrix target);

  /// Runs reverse accumulation from `root` (must be 1x1).
  void Backward(ValueId root);

  const Matrix& value(ValueId id) const { return nodes_[id].value; }
  const Matrix& grad(ValueId id) const { return nodes_[id].grad; }
  size_t num_nodes() const { return nodes_.size(); }

 private:
  enum class Op {
    kInput,
    kParam,
    kAdd,
    kSub,
    kMatMul,
    kSparseMatMul,
    kHadamard,
    kScale,
    kAct,
    kAddRowBroadcast,
    kConcatCols,
    kColSums,
    kColMax,
    kSegmentSum,
    kSegmentMean,
    kSegmentMax,
    kMatMulSegments,
    kAddRowBroadcastSegments,
    kGatherRows,
    kSoftmaxXent,
    kMse,
  };

  struct Node {
    Op op;
    ValueId a = 0;
    ValueId b = 0;
    Matrix value;
    Matrix grad;
    // Op-specific payloads.
    double scalar = 0.0;
    Activation act = Activation::kIdentity;
    std::vector<size_t> indices;   // labels / gather rows / segment offsets
    std::vector<size_t> indices2;  // kSegmentMax per-(segment,col) argmax
    Matrix aux;                    // cached softmax / target
    Parameter* param = nullptr;
    const CsrMatrix* csr = nullptr;    // kSparseMatMul forward operand
    const CsrMatrix* csr_t = nullptr;  // its transpose (backward operand)
  };

  ValueId Push(Node n);

  std::vector<Node> nodes_;
  // Reused by Backward's MatMul gradient products (MatMulInto) so the
  // backward pass does not allocate a fresh matrix per product.
  Matrix matmul_scratch_;
  // Reused by kMatMulSegments' per-segment partial products.
  Matrix segment_scratch_;
  // Reused by Backward's reachability marks (one byte per node).
  std::vector<unsigned char> live_;
};

}  // namespace gelc

#endif  // GELC_AUTODIFF_TAPE_H_
