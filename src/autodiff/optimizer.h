// First-order optimizers for Parameters: SGD (with momentum) and Adam.
//
// These implement the "gradient descent like methods" the paper's ERM
// formulation relies on (slide 20).
#ifndef GELC_AUTODIFF_OPTIMIZER_H_
#define GELC_AUTODIFF_OPTIMIZER_H_

#include <vector>

#include "autodiff/tape.h"

namespace gelc {

/// Abstract interface: owns no parameters, updates those registered.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registers a parameter; must be called before Step touches it.
  virtual void Register(Parameter* p) = 0;
  /// Applies one update using each parameter's accumulated gradient.
  virtual void Step() = 0;

  /// Zeroes every registered parameter's gradient.
  void ZeroGrad() {
    for (Parameter* p : params_) p->ZeroGrad();
  }

 protected:
  std::vector<Parameter*> params_;
};

/// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0)
      : lr_(lr), momentum_(momentum) {}

  void Register(Parameter* p) override;
  void Step() override;

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba, 2015).
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Register(Parameter* p) override;
  void Step() override;

 private:
  double lr_, beta1_, beta2_, eps_;
  int t_ = 0;
  std::vector<Matrix> m_, v_;
};

}  // namespace gelc

#endif  // GELC_AUTODIFF_OPTIMIZER_H_
