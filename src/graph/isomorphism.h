// Exact graph isomorphism testing by color-refinement-pruned backtracking
// (VF2-flavoured). Used as the ground-truth oracle ρ(graph iso) against
// which the separation power of WL / GNN / GEL classes is compared
// (slide 25: "strongest power").
//
// Isomorphism here respects vertex features: π must satisfy
// L_H(π(v)) = L_G(v) exactly (the paper's invariance definition, slide 11).
#ifndef GELC_GRAPH_ISOMORPHISM_H_
#define GELC_GRAPH_ISOMORPHISM_H_

#include <optional>
#include <vector>

#include "base/status.h"
#include "graph/graph.h"

namespace gelc {

/// Searches for a feature-preserving isomorphism from a onto b.
///
/// Returns the vertex mapping (perm[v in a] = image in b) if isomorphic,
/// std::nullopt if provably non-isomorphic, or an error Status if the
/// backtracking step budget is exhausted before a decision (highly
/// symmetric inputs such as large CFI pairs can require exponential
/// search).
Result<std::optional<std::vector<size_t>>> FindIsomorphism(
    const Graph& a, const Graph& b, size_t max_steps = 20'000'000);

/// Convenience wrapper: true/false, or error on budget exhaustion.
Result<bool> AreIsomorphic(const Graph& a, const Graph& b,
                           size_t max_steps = 20'000'000);

}  // namespace gelc

#endif  // GELC_GRAPH_ISOMORPHISM_H_
