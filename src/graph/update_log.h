// The streaming update log: a deterministic sequence of edge
// insert/delete operations against a base graph, with text
// serialization, buffered streaming I/O, and a batching replayer
// (DESIGN.md §12). Modeled on the log-of-operations format of graph
// streaming benchmarks (graphlog-style): a header naming the vertex
// universe, then one operation per line.
//
// Format (whitespace-separated; op count is implicit so writers can
// stream without knowing it up front):
//   uplog <num_vertices> <directed 0|1>
//   i <u> <v>        edge insert
//   d <u> <v>        edge delete
//
// Generation is seeded (base/rng.h), so a (base graph, seed, num_ops)
// triple reproduces the identical op sequence bit-for-bit — the property
// the differential stream tests and the fuzz round-trip lean on.
//
// The replayer applies ops in batches and reports each batch's touched
// endpoints (sorted, deduplicated) to a callback — exactly the dirty
// seed set incremental color refinement wants. It never calls the full
// Graph::Csr() rebuild API (the csr-rebuild-in-stream-path lint rule
// pins that): readers downstream use the delta views instead.
#ifndef GELC_GRAPH_UPDATE_LOG_H_
#define GELC_GRAPH_UPDATE_LOG_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "graph/graph.h"

namespace gelc {

enum class EdgeOpKind : uint8_t { kInsert, kDelete };

/// One edge operation. Endpoints are unordered for undirected logs (the
/// generator emits u < v canonically; the replayer accepts either order).
struct EdgeOp {
  EdgeOpKind kind = EdgeOpKind::kInsert;
  VertexId u = 0;
  VertexId v = 0;

  bool operator==(const EdgeOp& o) const {
    return kind == o.kind && u == o.u && v == o.v;
  }
};

/// A complete update log: the vertex universe it addresses plus the
/// operation sequence. Replay requires a base graph with matching
/// num_vertices and directedness.
struct UpdateLog {
  size_t num_vertices = 0;
  bool directed = false;
  std::vector<EdgeOp> ops;
};

/// Generates a deterministic log of `num_ops` operations applicable to
/// `base` in order: each op is a delete of a currently-present edge with
/// probability `delete_fraction`, else an insert of a currently-absent
/// pair. Every emitted op succeeds when replayed (no duplicate inserts,
/// no deletes of absent edges). Degenerate states degrade gracefully: an
/// empty graph forces inserts, a complete graph forces deletes, and a
/// graph that is both (n < 2) yields an empty log.
UpdateLog GenerateUpdateLog(const Graph& base, size_t num_ops,
                            double delete_fraction, Rng* rng);

/// The text form described in the header comment.
std::string SerializeUpdateLog(const UpdateLog& log);
Result<UpdateLog> ParseUpdateLog(const std::string& text);

/// Buffered streaming writer: header first, then ops appended one at a
/// time; Flush() drains the internal buffer to the stream (also invoked
/// by the destructor). The byte stream equals SerializeUpdateLog of the
/// same log.
class UpdateLogWriter {
 public:
  UpdateLogWriter(std::ostream* out, size_t num_vertices, bool directed);
  ~UpdateLogWriter();
  UpdateLogWriter(const UpdateLogWriter&) = delete;
  UpdateLogWriter& operator=(const UpdateLogWriter&) = delete;

  void Append(const EdgeOp& op);
  void Flush();
  size_t ops_written() const { return ops_written_; }

 private:
  std::ostream* out_;
  std::string buffer_;
  size_t ops_written_ = 0;
};

/// Buffered streaming reader over the same format; ops are pulled one at
/// a time so a log never needs to be resident in memory.
class UpdateLogReader {
 public:
  /// Reads and validates the header; `status()` reports a malformed one.
  explicit UpdateLogReader(std::istream* in);

  /// Fetches the next op into *op; false at end-of-log or on error.
  bool Next(EdgeOp* op);

  size_t num_vertices() const { return num_vertices_; }
  bool directed() const { return directed_; }
  size_t ops_read() const { return ops_read_; }
  const Status& status() const { return status_; }

 private:
  std::istream* in_;
  size_t num_vertices_ = 0;
  bool directed_ = false;
  size_t ops_read_ = 0;
  Status status_ = Status::OK();
};

/// One replayed batch: the ops applied and the endpoints they touched
/// (sorted, deduplicated) — the dirty seed set for incremental readers.
struct ReplayBatch {
  size_t index = 0;
  std::vector<EdgeOp> ops;
  std::vector<VertexId> touched;
};

struct ReplayOptions {
  size_t batch_size = 64;
};

using ReplayBatchCallback = std::function<Status(const ReplayBatch&)>;

/// Applies `log` to *g in batches; after each batch the callback (when
/// set) runs with the batch summary and may abort the replay by
/// returning non-OK. Fails if the log does not fit the graph or an op
/// does not apply (duplicate insert / missing delete) — generated logs
/// never trip this.
Status ReplayUpdateLog(const UpdateLog& log, Graph* g,
                       const ReplayOptions& options = ReplayOptions(),
                       const ReplayBatchCallback& callback = nullptr);

}  // namespace gelc

#endif  // GELC_GRAPH_UPDATE_LOG_H_
