// Graph generators: deterministic families, random models, classic
// WL-hard pairs, Cai-Fürer-Immerman constructions, and the synthetic
// datasets substituting for the paper's motivating data (molecules /
// citation network / social network, slides 7-9).
#ifndef GELC_GRAPH_GENERATORS_H_
#define GELC_GRAPH_GENERATORS_H_

#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "graph/graph.h"

namespace gelc {

// ---------------------------------------------------------------------------
// Deterministic families (unlabeled; all-ones 1-dim features).
// ---------------------------------------------------------------------------

/// Path P_n on n vertices.
Graph PathGraph(size_t n);
/// Cycle C_n (n >= 3).
Graph CycleGraph(size_t n);
/// Complete graph K_n.
Graph CompleteGraph(size_t n);
/// Complete bipartite K_{a,b}.
Graph CompleteBipartite(size_t a, size_t b);
/// Star S_n: one hub and n leaves.
Graph StarGraph(size_t n);
/// rows x cols grid graph.
Graph GridGraph(size_t rows, size_t cols);
/// Circulant graph C_n(offsets): i ~ i +- s (mod n) for each s in offsets.
Result<Graph> CirculantGraph(size_t n, const std::vector<size_t>& offsets);
/// The Petersen graph (3-regular, 10 vertices).
Graph PetersenGraph();
/// d-dimensional hypercube Q_d (2^d vertices, d-regular). d must be in
/// [1, 16].
Result<Graph> HypercubeGraph(size_t d);
/// Kneser graph K(n, k): vertices are k-subsets of [n], adjacent iff
/// disjoint. Requires n >= 2k and modest sizes (C(n, k) <= 10000).
/// K(5, 2) is the Petersen graph.
Result<Graph> KneserGraph(size_t n, size_t k);

// ---------------------------------------------------------------------------
// Classic WL-hard pairs (slide 65: strictness of the k-WL hierarchy).
// ---------------------------------------------------------------------------

/// {C6, C3 + C3}: same degree sequence, color refinement cannot separate
/// them, folklore 2-WL can.
std::pair<Graph, Graph> Cr_HardPair();

/// {Shrikhande, 4x4 rook's graph}: both srg(16,6,2,2); folklore 2-WL cannot
/// separate them, folklore 3-WL can.
std::pair<Graph, Graph> Srg16Pair();

/// Cai-Fürer-Immerman pair over a connected base graph: the untwisted and
/// twisted CFI companions. The graphs are never isomorphic, but require
/// roughly treewidth(base)-dimensional WL to separate. Feature dim is 2:
/// gadget vertices [1,0], edge vertices [0,1].
Result<std::pair<Graph, Graph>> CfiPair(const Graph& base);

// ---------------------------------------------------------------------------
// Random models.
// ---------------------------------------------------------------------------

/// Erdős–Rényi G(n, p).
Graph RandomGnp(size_t n, double p, Rng* rng);
/// Uniform random labelled tree on n vertices via Prüfer sequences.
Graph RandomTree(size_t n, Rng* rng);
/// Random d-regular graph (pairing model with retries). Requires n*d even.
Result<Graph> RandomRegular(size_t n, size_t d, Rng* rng);
/// Stochastic block model: n vertices, k equal blocks, edge prob p_in
/// within blocks and p_out across. Returns graph + block assignment.
struct SbmGraph {
  Graph graph;
  std::vector<size_t> blocks;
};
SbmGraph RandomSbm(size_t n, size_t k, double p_in, double p_out, Rng* rng);

// ---------------------------------------------------------------------------
// Synthetic datasets (substitutes for the paper's motivating figures).
// ---------------------------------------------------------------------------

/// A labelled-graph classification dataset in the style of slide 7
/// (molecule property prediction). Each "molecule" has 4 atom types
/// (one-hot features). Positive molecules contain a planted labelled ring
/// motif; negatives are acyclic with matched size distribution.
struct GraphDataset {
  std::vector<Graph> graphs;
  std::vector<size_t> labels;  // class per graph
  size_t num_classes = 2;
};
GraphDataset SyntheticMolecules(size_t num_graphs, Rng* rng);

/// A node-classification dataset in the style of slide 8 (citation
/// network). SBM communities; features are noisy one-hot community
/// indicators; label = community.
struct NodeDataset {
  Graph graph;
  std::vector<size_t> labels;       // class per vertex
  std::vector<size_t> train_nodes;  // indices with revealed labels
  std::vector<size_t> test_nodes;
  size_t num_classes;
};
NodeDataset SyntheticCitations(size_t n, size_t num_classes,
                               double feature_noise, Rng* rng);

/// A link-prediction dataset in the style of slide 9 (social network):
/// an SBM graph with a fraction of within-community edges held out as
/// positive pairs, plus sampled non-edges as negatives.
struct LinkDataset {
  Graph graph;  // observed graph (held-out edges removed)
  std::vector<std::pair<VertexId, VertexId>> train_pairs;
  std::vector<size_t> train_labels;  // 1 = will connect
  std::vector<std::pair<VertexId, VertexId>> test_pairs;
  std::vector<size_t> test_labels;
};
LinkDataset SyntheticSocialLinks(size_t n, Rng* rng);

}  // namespace gelc

#endif  // GELC_GRAPH_GENERATORS_H_
