// The CSR view of a Graph: the sparse operators every message-passing
// path needs, built once and cached on the Graph (graph.h's Csr()).
//
// Three operators per graph, all in sorted-CSR form (tensor/sparse.h):
//   adjacency()   — A, binary out-adjacency (row v = out-neighbors of v)
//   transpose()   — Aᵀ, binary in-adjacency (the backward operator for
//                   the SparseMatMul tape op)
//   normalized()  — D̃^{-1/2} (A + I) D̃^{-1/2} with D̃ = out-degree + 1,
//                   the GCN propagation operator, weighted
// For undirected graphs A is symmetric, so transpose() shares storage
// with adjacency().
#ifndef GELC_GRAPH_CSR_H_
#define GELC_GRAPH_CSR_H_

#include "tensor/sparse.h"

namespace gelc {

class Graph;

/// Immutable CSR snapshot of a Graph's structure. Obtain via Graph::Csr()
/// (cached, invalidated on mutation) rather than constructing directly.
class CsrGraph {
 public:
  explicit CsrGraph(const Graph& g);

  /// Binary adjacency A: row v lists v's out-neighbors ascending.
  const CsrMatrix& adjacency() const { return adjacency_; }
  /// Binary transpose Aᵀ: row v lists v's in-neighbors ascending.
  const CsrMatrix& transpose() const {
    return symmetric_ ? adjacency_ : transpose_;
  }
  /// GCN operator D̃^{-1/2} (A + I) D̃^{-1/2} (self-loops included, so no
  /// row is zero; isolated vertices get the 1x1 identity block).
  const CsrMatrix& normalized() const { return normalized_; }

  size_t num_vertices() const { return adjacency_.rows; }

 private:
  bool symmetric_;
  CsrMatrix adjacency_;
  CsrMatrix transpose_;  // empty when symmetric_ (adjacency_ serves both)
  CsrMatrix normalized_;
};

}  // namespace gelc

#endif  // GELC_GRAPH_CSR_H_
