// The CSR view of a Graph: the sparse operators every message-passing
// path needs, built once and cached on the Graph (graph.h's Csr()).
//
// Three operators per graph, all in sorted-CSR form (tensor/sparse.h):
//   adjacency()   — A, binary out-adjacency (row v = out-neighbors of v)
//   transpose()   — Aᵀ, binary in-adjacency (the backward operator for
//                   the SparseMatMul tape op)
//   normalized()  — D̃^{-1/2} (A + I) D̃^{-1/2} with D̃ = out-degree + 1,
//                   the GCN propagation operator, weighted
// For undirected graphs A is symmetric, so transpose() shares storage
// with adjacency().
//
// Every snapshot carries the mutation epoch of the Graph it was built
// from; CheckFreshFor lets holders of a hoisted view assert (DCHECK, so
// debug builds only) that the graph has not been mutated underneath them
// — the staleness hazard of the streaming delta-CSR path (DESIGN.md §12).
#ifndef GELC_GRAPH_CSR_H_
#define GELC_GRAPH_CSR_H_

#include <cstdint>

#include "tensor/sparse.h"

namespace gelc {

class Graph;

/// Immutable CSR snapshot of a Graph's structure. Obtain via Graph::Csr()
/// (cached, compacted on mutation) rather than constructing directly.
class CsrGraph {
 public:
  explicit CsrGraph(const Graph& g);

  /// Compaction constructor: `base` plus the pending per-row deltas
  /// (adjacency and, for directed graphs, transpose; `in_delta` is null
  /// for the symmetric case). Produces exactly the bytes CsrGraph(g)
  /// would: the merged adjacency/transpose and a normalized operator
  /// rebuilt from the merged adjacency — degree renormalization touches
  /// every incident entry, so that operator cannot be delta-merged.
  CsrGraph(const CsrGraph& base, const CsrDeltaRows& adj_delta,
           const CsrDeltaRows* in_delta, const Graph& g);

  /// Binary adjacency A: row v lists v's out-neighbors ascending.
  const CsrMatrix& adjacency() const { return adjacency_; }
  /// Binary transpose Aᵀ: row v lists v's in-neighbors ascending.
  const CsrMatrix& transpose() const {
    return symmetric_ ? adjacency_ : transpose_;
  }
  /// GCN operator D̃^{-1/2} (A + I) D̃^{-1/2} (self-loops included, so no
  /// row is zero; isolated vertices get the 1x1 identity block).
  const CsrMatrix& normalized() const { return normalized_; }

  size_t num_vertices() const { return adjacency_.rows; }

  /// The Graph::mutation_epoch() this snapshot was built at.
  uint64_t epoch() const { return epoch_; }
  /// DCHECKs that `g` has not been mutated since this snapshot was built.
  /// Call at the top of any scope that hoists a Csr() reference across
  /// work that could interleave with graph mutations (trainers do).
  void CheckFreshFor(const Graph& g) const;

 private:
  bool symmetric_;
  uint64_t epoch_ = 0;
  CsrMatrix adjacency_;
  CsrMatrix transpose_;  // empty when symmetric_ (adjacency_ serves both)
  CsrMatrix normalized_;
};

}  // namespace gelc

#endif  // GELC_GRAPH_CSR_H_
