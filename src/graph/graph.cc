#include "graph/graph.h"

#include <algorithm>
#include <cstddef>
#include <sstream>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/timing.h"

namespace gelc {

Graph::Graph(size_t n, size_t feature_dim, bool directed)
    : directed_(directed),
      out_(n),
      in_(n),
      features_(n, feature_dim) {}

Graph Graph::Unlabeled(size_t n, bool directed) {
  Graph g(n, 1, directed);
  for (size_t v = 0; v < n; ++v) g.features_.At(v, 0) = 1.0;
  return g;
}

namespace {

// Inserts x into a sorted vector, returning false if already present.
bool SortedInsert(std::vector<VertexId>* v, VertexId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it != v->end() && *it == x) return false;
  v->insert(it, x);
  return true;
}

// Erases x from a sorted vector, returning false if absent.
bool SortedErase(std::vector<VertexId>* v, VertexId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it == v->end() || *it != x) return false;
  v->erase(it);
  return true;
}

// True if the CSR base stores entry (row, col).
bool BaseHasEntry(const CsrMatrix& base, VertexId row, VertexId col) {
  return std::binary_search(
      base.col_indices.begin() +
          static_cast<ptrdiff_t>(base.row_offsets[row]),
      base.col_indices.begin() +
          static_cast<ptrdiff_t>(base.row_offsets[row + 1]),
      col);
}

// Applies one edit to a delta: an insert of an entry the base already has
// cancels a pending remove (and vice versa), so the delta stays the exact
// row-wise symmetric difference against the base.
void RecordEdit(CsrDeltaRows* delta, const CsrMatrix& base, VertexId row,
                VertexId col, bool insert) {
  if (insert) {
    if (BaseHasEntry(base, row, col)) {
      GELC_CHECK(SortedErase(&delta->remove[row], col));
      --delta->remove_nnz;
    } else {
      GELC_CHECK(SortedInsert(&delta->add[row], col));
      ++delta->add_nnz;
    }
  } else {
    if (BaseHasEntry(base, row, col)) {
      GELC_CHECK(SortedInsert(&delta->remove[row], col));
      ++delta->remove_nnz;
    } else {
      GELC_CHECK(SortedErase(&delta->add[row], col));
      --delta->add_nnz;
    }
  }
}

}  // namespace

void Graph::RecordDeltaArc(VertexId u, VertexId v, bool insert) {
  if (adj_delta_.rows != num_vertices()) {
    adj_delta_.Resize(num_vertices());
    if (directed_) in_delta_.Resize(num_vertices());
  }
  RecordEdit(&adj_delta_, csr_->adjacency(), u, v, insert);
  if (directed_) {
    RecordEdit(&in_delta_, csr_->transpose(), v, u, insert);
  } else {
    RecordEdit(&adj_delta_, csr_->adjacency(), v, u, insert);
  }
}

size_t Graph::ResolvedCompactionThreshold() const {
  if (compaction_threshold_ != 0) return compaction_threshold_;
  size_t base_nnz = csr_ != nullptr ? csr_->adjacency().nnz() : 0;
  return std::max<size_t>(256, base_nnz / 4);
}

void Graph::CompactCsr() const {
  static obs::Counter* compactions =
      obs::GetCounter("graph.delta.compactions");
  static obs::Histogram* size_hist = obs::GetHistogram(
      "graph.delta.size_at_compaction", {16, 64, 256, 1024, 4096, 16384});
  compactions->Increment();
  size_hist->Observe(static_cast<int64_t>(adj_delta_.pending()));
  GELC_OBS_TIME("stream.compaction");
  csr_ = std::make_shared<const CsrGraph>(
      *csr_, adj_delta_, directed_ ? &in_delta_ : nullptr, *this);
  adj_delta_.Clear();
  if (directed_) in_delta_.Clear();
}

Status Graph::AddEdge(VertexId u, VertexId v) {
  size_t n = num_vertices();
  if (u >= n || v >= n) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loops are not supported");
  }
  if (HasEdge(u, v)) {
    return Status::AlreadyExists("duplicate edge");
  }
  SortedInsert(&out_[u], v);
  SortedInsert(&in_[v], u);
  ++num_arcs_;
  if (!directed_) {
    SortedInsert(&out_[v], u);
    SortedInsert(&in_[u], v);
    ++num_arcs_;
  }
  ++mutation_epoch_;
  if (csr_ != nullptr) {
    RecordDeltaArc(u, v, /*insert=*/true);
    if (adj_delta_.pending() > ResolvedCompactionThreshold()) CompactCsr();
  }
  return Status::OK();
}

Status Graph::RemoveEdge(VertexId u, VertexId v) {
  size_t n = num_vertices();
  if (u >= n || v >= n) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loops are not supported");
  }
  if (!HasEdge(u, v)) {
    return Status::NotFound("no such edge");
  }
  SortedErase(&out_[u], v);
  SortedErase(&in_[v], u);
  --num_arcs_;
  if (!directed_) {
    SortedErase(&out_[v], u);
    SortedErase(&in_[u], v);
    --num_arcs_;
  }
  ++mutation_epoch_;
  if (csr_ != nullptr) {
    RecordDeltaArc(u, v, /*insert=*/false);
    if (adj_delta_.pending() > ResolvedCompactionThreshold()) CompactCsr();
  }
  return Status::OK();
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  GELC_DCHECK(u < num_vertices() && v < num_vertices());
  return std::binary_search(out_[u].begin(), out_[u].end(), v);
}

void Graph::SetFeature(VertexId v, const Matrix& row) {
  features_.SetRow(v, row);
}

void Graph::SetOneHotFeature(VertexId v, size_t k) {
  GELC_CHECK(k < feature_dim());
  for (size_t j = 0; j < feature_dim(); ++j) features_.At(v, j) = 0.0;
  features_.At(v, k) = 1.0;
}

Matrix Graph::AdjacencyMatrix() const {
  static obs::Counter* builds =
      obs::GetCounter("graph.dense_adjacency_builds");
  builds->Increment();
  size_t n = num_vertices();
  Matrix a(n, n);
  for (size_t u = 0; u < n; ++u)
    for (VertexId v : out_[u]) a.At(u, v) = 1.0;
  return a;
}

void Graph::EnsureCsrBase() const {
  if (csr_ != nullptr) return;
  static obs::Counter* misses = obs::GetCounter("graph.csr_cache.misses");
  misses->Increment();
  GELC_OBS_TIME("graph.csr_build");
  csr_ = std::make_shared<const CsrGraph>(*this);
}

const CsrGraph& Graph::Csr() const {
  if (csr_ == nullptr) {
    EnsureCsrBase();
  } else if (!adj_delta_.empty()) {
    CompactCsr();  // fold the pending delta so the snapshot is exact
  } else {
    static obs::Counter* hits = obs::GetCounter("graph.csr_cache.hits");
    hits->Increment();
  }
  return *csr_;
}

DeltaCsrView Graph::AdjacencyDeltaView() const {
  EnsureCsrBase();
  DeltaCsrView view;
  view.base = &csr_->adjacency();
  view.delta = adj_delta_.empty() ? nullptr : &adj_delta_;
  return view;
}

DeltaCsrView Graph::TransposeDeltaView() const {
  if (!directed_) return AdjacencyDeltaView();
  EnsureCsrBase();
  DeltaCsrView view;
  view.base = &csr_->transpose();
  view.delta = in_delta_.empty() ? nullptr : &in_delta_;
  return view;
}

size_t Graph::dense_adjacency_builds() {
  return static_cast<size_t>(obs::ReadCounter("graph.dense_adjacency_builds"));
}

Matrix Graph::MeanAdjacencyMatrix() const {
  Matrix a = AdjacencyMatrix();
  for (size_t u = 0; u < num_vertices(); ++u) {
    size_t d = out_[u].size();
    if (d == 0) continue;
    for (size_t v = 0; v < num_vertices(); ++v)
      a.At(u, v) /= static_cast<double>(d);
  }
  return a;
}

Result<Graph> Graph::Permuted(const std::vector<size_t>& perm) const {
  size_t n = num_vertices();
  if (perm.size() != n) {
    return Status::InvalidArgument("permutation size mismatch");
  }
  std::vector<bool> seen(n, false);
  for (size_t p : perm) {
    if (p >= n || seen[p]) {
      return Status::InvalidArgument("not a permutation");
    }
    seen[p] = true;
  }
  Graph g(n, feature_dim(), directed_);
  for (size_t u = 0; u < n; ++u) {
    for (VertexId v : out_[u]) {
      // For undirected graphs each unordered edge appears twice; add once.
      if (!directed_ && v < u) continue;
      GELC_RETURN_NOT_OK(g.AddEdge(static_cast<VertexId>(perm[u]),
                                   static_cast<VertexId>(perm[v])));
    }
    g.features_.SetRow(perm[u], features_.Row(u));
  }
  return g;
}

Result<Graph> Graph::DisjointUnion(const Graph& a, const Graph& b) {
  if (a.feature_dim() != b.feature_dim()) {
    return Status::InvalidArgument("feature dimension mismatch in union");
  }
  if (a.directed() != b.directed()) {
    return Status::InvalidArgument("directedness mismatch in union");
  }
  size_t na = a.num_vertices();
  Graph g(na + b.num_vertices(), a.feature_dim(), a.directed());
  for (size_t u = 0; u < na; ++u) {
    for (VertexId v : a.out_[u]) {
      if (!a.directed_ && v < u) continue;
      GELC_RETURN_NOT_OK(g.AddEdge(u, v));
    }
    g.features_.SetRow(u, a.features_.Row(u));
  }
  for (size_t u = 0; u < b.num_vertices(); ++u) {
    for (VertexId v : b.out_[u]) {
      if (!b.directed_ && v < u) continue;
      GELC_RETURN_NOT_OK(g.AddEdge(static_cast<VertexId>(na + u),
                                   static_cast<VertexId>(na + v)));
    }
    g.features_.SetRow(na + u, b.features_.Row(u));
  }
  return g;
}

std::vector<std::vector<VertexId>> Graph::ConnectedComponents() const {
  size_t n = num_vertices();
  std::vector<int> comp(n, -1);
  std::vector<std::vector<VertexId>> out;
  for (size_t s = 0; s < n; ++s) {
    if (comp[s] >= 0) continue;
    int c = static_cast<int>(out.size());
    out.emplace_back();
    std::vector<VertexId> stack = {static_cast<VertexId>(s)};
    comp[s] = c;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      out[c].push_back(v);
      for (VertexId w : out_[v]) {
        if (comp[w] < 0) {
          comp[w] = c;
          stack.push_back(w);
        }
      }
      for (VertexId w : in_[v]) {
        if (comp[w] < 0) {
          comp[w] = c;
          stack.push_back(w);
        }
      }
    }
    std::sort(out[c].begin(), out[c].end());
  }
  return out;
}

std::vector<size_t> Graph::DegreeSequence() const {
  std::vector<size_t> deg(num_vertices());
  for (size_t v = 0; v < num_vertices(); ++v) deg[v] = out_[v].size();
  std::sort(deg.begin(), deg.end());
  return deg;
}

std::string Graph::ToString() const {
  std::ostringstream os;
  os << (directed_ ? "digraph" : "graph") << " n=" << num_vertices()
     << " m=" << num_edges() << " d=" << feature_dim() << "\n";
  for (size_t u = 0; u < num_vertices(); ++u) {
    os << "  " << u << " ->";
    for (VertexId v : out_[u]) os << " " << v;
    os << "  feat=" << features_.Row(u).ToString() << "\n";
  }
  return os.str();
}

std::string Graph::ToDot(const std::string& name) const {
  std::ostringstream os;
  os << (directed_ ? "digraph " : "graph ") << name << " {\n";
  const char* arrow = directed_ ? " -> " : " -- ";
  for (size_t u = 0; u < num_vertices(); ++u) {
    os << "  " << u << ";\n";
  }
  for (size_t u = 0; u < num_vertices(); ++u) {
    for (VertexId v : out_[u]) {
      if (!directed_ && v < u) continue;
      os << "  " << u << arrow << v << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace gelc
