#include "graph/generators.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/logging.h"

namespace gelc {

namespace {

void MustAddEdge(Graph* g, VertexId u, VertexId v) {
  Status s = g->AddEdge(u, v);
  GELC_CHECK(s.ok());
}

}  // namespace

Graph PathGraph(size_t n) {
  Graph g = Graph::Unlabeled(n);
  for (size_t i = 0; i + 1 < n; ++i)
    MustAddEdge(&g, static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  return g;
}

Graph CycleGraph(size_t n) {
  GELC_CHECK(n >= 3);
  Graph g = PathGraph(n);
  MustAddEdge(&g, static_cast<VertexId>(n - 1), 0);
  return g;
}

Graph CompleteGraph(size_t n) {
  Graph g = Graph::Unlabeled(n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = i + 1; j < n; ++j)
      MustAddEdge(&g, static_cast<VertexId>(i), static_cast<VertexId>(j));
  return g;
}

Graph CompleteBipartite(size_t a, size_t b) {
  Graph g = Graph::Unlabeled(a + b);
  for (size_t i = 0; i < a; ++i)
    for (size_t j = 0; j < b; ++j)
      MustAddEdge(&g, static_cast<VertexId>(i),
                  static_cast<VertexId>(a + j));
  return g;
}

Graph StarGraph(size_t n) {
  Graph g = Graph::Unlabeled(n + 1);
  for (size_t i = 1; i <= n; ++i)
    MustAddEdge(&g, 0, static_cast<VertexId>(i));
  return g;
}

Graph GridGraph(size_t rows, size_t cols) {
  Graph g = Graph::Unlabeled(rows * cols);
  auto id = [cols](size_t r, size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) MustAddEdge(&g, id(r, c), id(r, c + 1));
      if (r + 1 < rows) MustAddEdge(&g, id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Result<Graph> CirculantGraph(size_t n, const std::vector<size_t>& offsets) {
  if (n < 3) return Status::InvalidArgument("circulant needs n >= 3");
  Graph g = Graph::Unlabeled(n);
  for (size_t s : offsets) {
    if (s == 0 || s >= n) {
      return Status::InvalidArgument("circulant offset out of range");
    }
    for (size_t i = 0; i < n; ++i) {
      VertexId u = static_cast<VertexId>(i);
      VertexId v = static_cast<VertexId>((i + s) % n);
      if (u == v) continue;
      Status st = g.AddEdge(u, v);
      // Offsets s and n-s generate the same edges; tolerate duplicates.
      if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
    }
  }
  return g;
}

Graph PetersenGraph() {
  Graph g = Graph::Unlabeled(10);
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  for (size_t i = 0; i < 5; ++i) {
    MustAddEdge(&g, static_cast<VertexId>(i),
                static_cast<VertexId>((i + 1) % 5));
    MustAddEdge(&g, static_cast<VertexId>(5 + i),
                static_cast<VertexId>(5 + (i + 2) % 5));
    MustAddEdge(&g, static_cast<VertexId>(i), static_cast<VertexId>(5 + i));
  }
  return g;
}

Result<Graph> HypercubeGraph(size_t d) {
  if (d < 1 || d > 16) {
    return Status::InvalidArgument("hypercube dimension must be in [1, 16]");
  }
  size_t n = size_t{1} << d;
  Graph g = Graph::Unlabeled(n);
  for (size_t v = 0; v < n; ++v) {
    for (size_t bit = 0; bit < d; ++bit) {
      size_t u = v ^ (size_t{1} << bit);
      if (u > v) MustAddEdge(&g, static_cast<VertexId>(v),
                             static_cast<VertexId>(u));
    }
  }
  return g;
}

Result<Graph> KneserGraph(size_t n, size_t k) {
  if (k == 0 || n < 2 * k) {
    return Status::InvalidArgument("Kneser graph needs n >= 2k, k >= 1");
  }
  if (n > 20) return Status::OutOfRange("Kneser ground set limited to 20");
  // Enumerate k-subsets of [n] as bitmasks.
  std::vector<uint32_t> subsets;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) == k)
      subsets.push_back(mask);
  }
  if (subsets.size() > 10000) {
    return Status::OutOfRange("Kneser graph too large");
  }
  Graph g = Graph::Unlabeled(subsets.size());
  for (size_t i = 0; i < subsets.size(); ++i) {
    for (size_t j = i + 1; j < subsets.size(); ++j) {
      if ((subsets[i] & subsets[j]) == 0) {
        MustAddEdge(&g, static_cast<VertexId>(i), static_cast<VertexId>(j));
      }
    }
  }
  return g;
}

std::pair<Graph, Graph> Cr_HardPair() {
  Graph c6 = CycleGraph(6);
  Graph c3a = CycleGraph(3);
  Graph c3b = CycleGraph(3);
  Result<Graph> two_c3 = Graph::DisjointUnion(c3a, c3b);
  GELC_CHECK(two_c3.ok());
  return {std::move(c6), std::move(two_c3).value()};
}

std::pair<Graph, Graph> Srg16Pair() {
  // Vertices are (i, j) in Z4 x Z4, id = 4*i + j.
  auto id = [](size_t i, size_t j) {
    return static_cast<VertexId>(4 * (i % 4) + (j % 4));
  };
  // Shrikhande: (i,j) ~ (i,j) + {(0,±1), (±1,0), (±1,±1 same sign)}.
  Graph shrikhande = Graph::Unlabeled(16);
  const int dirs[3][2] = {{0, 1}, {1, 0}, {1, 1}};
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      for (const auto& d : dirs) {
        VertexId u = id(i, j);
        VertexId v = id(i + d[0], j + d[1]);
        if (!shrikhande.HasEdge(u, v)) MustAddEdge(&shrikhande, u, v);
      }
    }
  }
  // 4x4 rook's graph: (i,j) ~ (i',j') iff same row or same column.
  Graph rook = Graph::Unlabeled(16);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      for (size_t jj = j + 1; jj < 4; ++jj)
        MustAddEdge(&rook, id(i, j), id(i, jj));
      for (size_t ii = i + 1; ii < 4; ++ii)
        MustAddEdge(&rook, id(i, j), id(ii, j));
    }
  }
  return {std::move(shrikhande), std::move(rook)};
}

Result<std::pair<Graph, Graph>> CfiPair(const Graph& base) {
  if (base.directed()) {
    return Status::InvalidArgument("CFI base must be undirected");
  }
  if (base.ConnectedComponents().size() != 1) {
    return Status::InvalidArgument("CFI base must be connected");
  }
  size_t n = base.num_vertices();
  // Collect undirected edges, assign ids.
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::map<std::pair<VertexId, VertexId>, size_t> edge_id;
  for (size_t u = 0; u < n; ++u) {
    for (VertexId v : base.Neighbors(static_cast<VertexId>(u))) {
      if (v < u) continue;
      edge_id[{static_cast<VertexId>(u), v}] = edges.size();
      edges.push_back({static_cast<VertexId>(u), v});
    }
  }
  size_t m = edges.size();
  if (m == 0) return Status::InvalidArgument("CFI base must have edges");

  // Incident edge ids per base vertex.
  std::vector<std::vector<size_t>> inc(n);
  for (size_t e = 0; e < m; ++e) {
    inc[edges[e].first].push_back(e);
    inc[edges[e].second].push_back(e);
  }

  // Builds one CFI companion. `twist_vertex` < n selects the base vertex
  // whose gadget uses odd-parity subsets (the "twist"); pass n for none.
  auto build = [&](size_t twist_vertex) -> Graph {
    // Vertex layout: first 2m edge vertices (e0 at 2e, e1 at 2e+1), then
    // gadget vertices.
    size_t total = 2 * m;
    std::vector<std::vector<std::pair<size_t, uint64_t>>> gadget(n);
    for (size_t v = 0; v < n; ++v) {
      size_t deg = inc[v].size();
      uint64_t want_parity = (v == twist_vertex) ? 1u : 0u;
      for (uint64_t mask = 0; mask < (1ULL << deg); ++mask) {
        if (static_cast<uint64_t>(__builtin_popcountll(mask)) % 2 !=
            want_parity) {
          continue;
        }
        gadget[v].push_back({total++, mask});
      }
    }
    Graph g(total, 2, /*directed=*/false);
    for (size_t e = 0; e < m; ++e) {
      g.SetOneHotFeature(static_cast<VertexId>(2 * e), 1);
      g.SetOneHotFeature(static_cast<VertexId>(2 * e + 1), 1);
    }
    for (size_t v = 0; v < n; ++v) {
      for (const auto& [gid, mask] : gadget[v]) {
        g.SetOneHotFeature(static_cast<VertexId>(gid), 0);
        for (size_t pos = 0; pos < inc[v].size(); ++pos) {
          size_t e = inc[v][pos];
          bool in_set = (mask >> pos) & 1u;
          size_t edge_vertex = 2 * e + (in_set ? 1 : 0);
          MustAddEdge(&g, static_cast<VertexId>(gid),
                      static_cast<VertexId>(edge_vertex));
        }
      }
    }
    return g;
  };

  // Degree cap so gadgets (2^{deg-1} vertices) stay small.
  for (size_t v = 0; v < n; ++v) {
    if (inc[v].size() > 12) {
      return Status::InvalidArgument("CFI base max degree is 12");
    }
  }
  return std::make_pair(build(n), build(0));
}

Graph RandomGnp(size_t n, double p, Rng* rng) {
  Graph g = Graph::Unlabeled(n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = i + 1; j < n; ++j)
      if (rng->NextBernoulli(p))
        MustAddEdge(&g, static_cast<VertexId>(i), static_cast<VertexId>(j));
  return g;
}

Graph RandomTree(size_t n, Rng* rng) {
  Graph g = Graph::Unlabeled(n);
  if (n <= 1) return g;
  if (n == 2) {
    MustAddEdge(&g, 0, 1);
    return g;
  }
  // Prüfer decoding.
  std::vector<size_t> prufer(n - 2);
  for (size_t& x : prufer) x = rng->NextBounded(n);
  std::vector<size_t> degree(n, 1);
  for (size_t x : prufer) ++degree[x];
  std::set<size_t> leaves;
  for (size_t v = 0; v < n; ++v)
    if (degree[v] == 1) leaves.insert(v);
  for (size_t x : prufer) {
    size_t leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    MustAddEdge(&g, static_cast<VertexId>(leaf), static_cast<VertexId>(x));
    if (--degree[x] == 1) leaves.insert(x);
  }
  size_t a = *leaves.begin();
  size_t b = *std::next(leaves.begin());
  MustAddEdge(&g, static_cast<VertexId>(a), static_cast<VertexId>(b));
  return g;
}

Result<Graph> RandomRegular(size_t n, size_t d, Rng* rng) {
  if (n * d % 2 != 0) {
    return Status::InvalidArgument("n*d must be even for a d-regular graph");
  }
  if (d >= n) {
    return Status::InvalidArgument("need d < n");
  }
  // Pairing (configuration) model with rejection of loops/multi-edges.
  for (int attempt = 0; attempt < 500; ++attempt) {
    std::vector<size_t> stubs;
    stubs.reserve(n * d);
    for (size_t v = 0; v < n; ++v)
      for (size_t i = 0; i < d; ++i) stubs.push_back(v);
    rng->Shuffle(&stubs);
    Graph g = Graph::Unlabeled(n);
    bool ok = true;
    for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
      VertexId u = static_cast<VertexId>(stubs[i]);
      VertexId v = static_cast<VertexId>(stubs[i + 1]);
      if (u == v || g.HasEdge(u, v)) {
        ok = false;
        break;
      }
      MustAddEdge(&g, u, v);
    }
    if (ok) return g;
  }
  return Status::Internal("random regular graph sampling did not converge");
}

SbmGraph RandomSbm(size_t n, size_t k, double p_in, double p_out, Rng* rng) {
  SbmGraph out{Graph::Unlabeled(n), std::vector<size_t>(n)};
  for (size_t v = 0; v < n; ++v) out.blocks[v] = v % k;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double p = out.blocks[i] == out.blocks[j] ? p_in : p_out;
      if (rng->NextBernoulli(p))
        MustAddEdge(&out.graph, static_cast<VertexId>(i),
                    static_cast<VertexId>(j));
    }
  }
  return out;
}

GraphDataset SyntheticMolecules(size_t num_graphs, Rng* rng) {
  constexpr size_t kAtomTypes = 4;
  GraphDataset ds;
  ds.num_classes = 2;
  for (size_t g = 0; g < num_graphs; ++g) {
    size_t label = g % 2;
    size_t n = 8 + rng->NextBounded(8);
    Graph tree = RandomTree(n, rng);
    Graph mol(n, kAtomTypes);
    for (size_t u = 0; u < n; ++u) {
      for (VertexId v : tree.Neighbors(static_cast<VertexId>(u))) {
        if (v < u) continue;
        Status s = mol.AddEdge(static_cast<VertexId>(u), v);
        GELC_CHECK(s.ok());
      }
      mol.SetOneHotFeature(static_cast<VertexId>(u),
                           rng->NextBounded(kAtomTypes));
    }
    if (label == 1) {
      // Plant a labelled ring: close a path of length 4 into a 5-cycle with
      // a fixed atom pattern (the "functional group").
      std::vector<size_t> perm_v = rng->Permutation(n);
      // Find 5 vertices forming a path in the tree via BFS from a random
      // root; fall back to closing a triangle among any 3 vertices.
      VertexId a = static_cast<VertexId>(perm_v[0]);
      VertexId b = static_cast<VertexId>(perm_v[1]);
      VertexId c = static_cast<VertexId>(perm_v[2]);
      if (!mol.HasEdge(a, b)) GELC_CHECK_OK(mol.AddEdge(a, b));
      if (!mol.HasEdge(b, c)) GELC_CHECK_OK(mol.AddEdge(b, c));
      if (!mol.HasEdge(a, c)) GELC_CHECK_OK(mol.AddEdge(a, c));
      mol.SetOneHotFeature(a, 0);
      mol.SetOneHotFeature(b, 1);
      mol.SetOneHotFeature(c, 2);
    }
    ds.graphs.push_back(std::move(mol));
    ds.labels.push_back(label);
  }
  return ds;
}

NodeDataset SyntheticCitations(size_t n, size_t num_classes,
                               double feature_noise, Rng* rng) {
  SbmGraph sbm = RandomSbm(n, num_classes, /*p_in=*/0.15, /*p_out=*/0.01, rng);
  NodeDataset ds;
  ds.num_classes = num_classes;
  ds.labels = sbm.blocks;
  Graph g(n, num_classes);
  for (size_t u = 0; u < n; ++u) {
    for (VertexId v : sbm.graph.Neighbors(static_cast<VertexId>(u))) {
      if (v < u) continue;
      Status s = g.AddEdge(static_cast<VertexId>(u), v);
      GELC_CHECK(s.ok());
    }
    // Noisy one-hot community indicator.
    size_t observed = rng->NextBernoulli(feature_noise)
                          ? rng->NextBounded(num_classes)
                          : sbm.blocks[u];
    g.SetOneHotFeature(static_cast<VertexId>(u), observed);
  }
  ds.graph = std::move(g);
  std::vector<size_t> order = rng->Permutation(n);
  size_t train_count = n / 2;
  ds.train_nodes.assign(order.begin(), order.begin() + train_count);
  ds.test_nodes.assign(order.begin() + train_count, order.end());
  return ds;
}

LinkDataset SyntheticSocialLinks(size_t n, Rng* rng) {
  SbmGraph sbm = RandomSbm(n, /*k=*/4, /*p_in=*/0.25, /*p_out=*/0.02, rng);
  LinkDataset ds;
  // Hold out 20% of edges as positives; keep the rest observed.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (size_t u = 0; u < n; ++u)
    for (VertexId v : sbm.graph.Neighbors(static_cast<VertexId>(u)))
      if (u < v) edges.push_back({static_cast<VertexId>(u), v});
  rng->Shuffle(&edges);
  size_t held = edges.size() / 5;
  // Profile features: a noisy one-hot community indicator (as real social
  // networks expose user attributes correlated with their community).
  Graph observed(n, 4);
  for (size_t v = 0; v < n; ++v) {
    size_t shown = rng->NextBernoulli(0.3) ? rng->NextBounded(4)
                                           : sbm.blocks[v];
    observed.SetOneHotFeature(static_cast<VertexId>(v), shown);
  }
  for (size_t i = held; i < edges.size(); ++i) {
    Status s = observed.AddEdge(edges[i].first, edges[i].second);
    GELC_CHECK(s.ok());
  }
  // Negatives: uniformly sampled vertex pairs that are non-edges in the
  // full graph.
  std::vector<std::pair<VertexId, VertexId>> negatives;
  while (negatives.size() < held) {
    VertexId u = static_cast<VertexId>(rng->NextBounded(n));
    VertexId v = static_cast<VertexId>(rng->NextBounded(n));
    if (u == v || sbm.graph.HasEdge(u, v)) continue;
    negatives.push_back({u, v});
  }
  // Interleave positives and negatives; split train/test 50/50.
  std::vector<std::pair<VertexId, VertexId>> pairs;
  std::vector<size_t> labels;
  for (size_t i = 0; i < held; ++i) {
    pairs.push_back(edges[i]);
    labels.push_back(1);
    pairs.push_back(negatives[i]);
    labels.push_back(0);
  }
  size_t half = pairs.size() / 2;
  ds.graph = std::move(observed);
  ds.train_pairs.assign(pairs.begin(), pairs.begin() + half);
  ds.train_labels.assign(labels.begin(), labels.begin() + half);
  ds.test_pairs.assign(pairs.begin() + half, pairs.end());
  ds.test_labels.assign(labels.begin() + half, labels.end());
  return ds;
}

}  // namespace gelc
