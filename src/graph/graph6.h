// graph6 codec: the compact ASCII format used by nauty / geng and most
// graph-theory datasets. Supports undirected simple graphs up to 62
// vertices in the short form and up to 258047 in the long form.
//
// Lets the library exchange benchmark graphs with the wider ecosystem
// (e.g. checking WL verdicts against published hard instances).
#ifndef GELC_GRAPH_GRAPH6_H_
#define GELC_GRAPH_GRAPH6_H_

#include <string>

#include "base/status.h"
#include "graph/graph.h"

namespace gelc {

/// Decodes one graph6 line (without trailing newline) into an unlabeled
/// undirected graph (all-ones 1-dim features).
Result<Graph> ParseGraph6(const std::string& line);

/// Encodes an undirected graph as graph6. Vertex features are dropped
/// (the format stores structure only). Errors on directed graphs.
Result<std::string> ToGraph6(const Graph& g);

}  // namespace gelc

#endif  // GELC_GRAPH_GRAPH6_H_
