#include "graph/io.h"

#include <optional>
#include <sstream>

namespace gelc {

Result<Graph> ParseGraphText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::optional<Graph> g;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    auto err = [&](const std::string& msg) {
      return Status::IOError("line " + std::to_string(line_no) + ": " + msg);
    };
    if (kind == "graph") {
      if (g.has_value()) return err("duplicate graph header");
      size_t n, d;
      int directed;
      if (!(ls >> n >> d >> directed)) return err("malformed graph header");
      g.emplace(n, d, directed != 0);
    } else if (kind == "v") {
      if (!g.has_value()) return err("vertex before graph header");
      size_t id;
      if (!(ls >> id)) return err("malformed vertex line");
      if (id >= g->num_vertices()) return err("vertex id out of range");
      for (size_t j = 0; j < g->feature_dim(); ++j) {
        double x;
        if (!(ls >> x)) return err("missing feature value");
        g->mutable_features().At(id, j) = x;
      }
    } else if (kind == "e") {
      if (!g.has_value()) return err("edge before graph header");
      size_t u, v;
      if (!(ls >> u >> v)) return err("malformed edge line");
      if (u >= g->num_vertices() || v >= g->num_vertices())
        return err("edge endpoint out of range");
      Status s = g->AddEdge(static_cast<VertexId>(u),
                            static_cast<VertexId>(v));
      if (!s.ok()) return err(s.ToString());
    } else {
      return err("unknown record kind '" + kind + "'");
    }
  }
  if (!g.has_value()) return Status::IOError("missing graph header");
  return std::move(*g);
}

std::string SerializeGraphText(const Graph& g) {
  std::ostringstream os;
  os.precision(17);
  os << "graph " << g.num_vertices() << " " << g.feature_dim() << " "
     << (g.directed() ? 1 : 0) << "\n";
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    os << "v " << v;
    for (size_t j = 0; j < g.feature_dim(); ++j)
      os << " " << g.features().At(v, j);
    os << "\n";
  }
  for (size_t u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.Neighbors(static_cast<VertexId>(u))) {
      if (!g.directed() && v < u) continue;
      os << "e " << u << " " << v << "\n";
    }
  }
  return os.str();
}

}  // namespace gelc
