#include "graph/batch.h"

#include <cstdint>
#include <limits>

#include "base/alloc_tune.h"
#include "graph/csr.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "obs/trace.h"

namespace gelc {

namespace {

// Appends `block` (a member graph's CSR operator) to `out` with its
// column indices shifted by the block's vertex offset. Blocks are
// appended in batch order, so rows stay sorted and each row's column
// indices stay strictly ascending — the SpMM determinism contract is
// inherited from the members.
void AppendBlock(const CsrMatrix& block, size_t offset, CsrMatrix* out) {
  for (size_t v = 0; v < block.rows; ++v) {
    for (size_t e = block.row_offsets[v]; e < block.row_offsets[v + 1]; ++e) {
      out->col_indices.push_back(
          static_cast<uint32_t>(block.col_indices[e] + offset));
    }
    out->row_offsets.push_back(out->col_indices.size());
  }
}

}  // namespace

Result<GraphBatch> GraphBatch::Create(
    const std::vector<const Graph*>& graphs) {
  if (graphs.empty()) {
    return Status::InvalidArgument("GraphBatch needs at least one graph");
  }
  TuneAllocForTensorChurn();
  for (const Graph* g : graphs) {
    if (g == nullptr) {
      return Status::InvalidArgument("null graph in batch");
    }
    if (g->feature_dim() != graphs[0]->feature_dim()) {
      return Status::InvalidArgument("feature dimension mismatch in batch");
    }
    if (g->directed() != graphs[0]->directed()) {
      return Status::InvalidArgument("directedness mismatch in batch");
    }
  }

  size_t total_vertices = 0;
  size_t total_arcs = 0;
  size_t total_edges = 0;
  for (const Graph* g : graphs) {
    total_vertices += g->num_vertices();
    total_arcs += g->num_arcs();
    total_edges += g->num_edges();
  }
  GELC_CHECK(total_vertices <= std::numeric_limits<uint32_t>::max());
  GELC_TRACE_SPAN("batch.pack", {{"graphs", graphs.size()},
                                 {"vertices", total_vertices},
                                 {"arcs", total_arcs}});
  GELC_OBS_TIME("batch.pack");

  GraphBatch batch;
  batch.symmetric_ = !graphs[0]->directed();
  batch.features_ = Matrix(total_vertices, graphs[0]->feature_dim());
  batch.vertex_offsets_.reserve(graphs.size() + 1);
  batch.vertex_offsets_.push_back(0);
  batch.segment_ids_.reserve(total_vertices);

  batch.adjacency_.rows = total_vertices;
  batch.adjacency_.cols = total_vertices;
  batch.adjacency_.row_offsets.reserve(total_vertices + 1);
  batch.adjacency_.row_offsets.push_back(0);
  batch.adjacency_.col_indices.reserve(total_arcs);
  if (!batch.symmetric_) {
    batch.transpose_.rows = total_vertices;
    batch.transpose_.cols = total_vertices;
    batch.transpose_.row_offsets.reserve(total_vertices + 1);
    batch.transpose_.row_offsets.push_back(0);
    batch.transpose_.col_indices.reserve(total_arcs);
  }

  for (size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = *graphs[i];
    size_t offset = batch.vertex_offsets_.back();
    const CsrGraph& csr = g.Csr();
    AppendBlock(csr.adjacency(), offset, &batch.adjacency_);
    if (!batch.symmetric_) {
      AppendBlock(csr.transpose(), offset, &batch.transpose_);
    }
    for (size_t v = 0; v < g.num_vertices(); ++v) {
      batch.segment_ids_.push_back(i);
      for (size_t j = 0; j < g.feature_dim(); ++j) {
        batch.features_.At(offset + v, j) = g.features().At(v, j);
      }
    }
    batch.vertex_offsets_.push_back(offset + g.num_vertices());
  }

  static obs::Counter* batches = obs::GetCounter("batch.packs");
  static obs::Counter* graphs_packed = obs::GetCounter("batch.graphs");
  static obs::Counter* vertices_packed = obs::GetCounter("batch.vertices");
  static obs::Counter* edges_packed = obs::GetCounter("batch.edges");
  batches->Increment();
  graphs_packed->Add(graphs.size());
  vertices_packed->Add(total_vertices);
  edges_packed->Add(total_edges);
  return batch;
}

Matrix GraphBatch::Slice(const Matrix& batch_rows, size_t i) const {
  GELC_CHECK(batch_rows.rows() == num_vertices());
  GELC_CHECK(i < num_graphs());
  size_t offset = graph_offset(i);
  Matrix out(graph_size(i), batch_rows.cols());
  for (size_t v = 0; v < out.rows(); ++v) {
    for (size_t j = 0; j < out.cols(); ++j) {
      out.At(v, j) = batch_rows.At(offset + v, j);
    }
  }
  return out;
}

}  // namespace gelc
