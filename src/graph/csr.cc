#include "graph/csr.h"

#include <cmath>
#include <functional>
#include <vector>

#include "base/logging.h"
#include "graph/graph.h"

namespace gelc {

namespace {

// Packs adjacency lists (already ascending per row) into binary CSR.
CsrMatrix PackLists(size_t n,
                    const std::function<const std::vector<VertexId>&(VertexId)>&
                        row) {
  CsrMatrix out;
  out.rows = n;
  out.cols = n;
  out.row_offsets.reserve(n + 1);
  out.row_offsets.push_back(0);
  for (size_t v = 0; v < n; ++v) {
    const std::vector<VertexId>& nbrs = row(static_cast<VertexId>(v));
    out.col_indices.insert(out.col_indices.end(), nbrs.begin(), nbrs.end());
    out.row_offsets.push_back(out.col_indices.size());
  }
  return out;
}

}  // namespace

CsrGraph::CsrGraph(const Graph& g) : symmetric_(!g.directed()) {
  size_t n = g.num_vertices();
  adjacency_ =
      PackLists(n, [&g](VertexId v) -> const std::vector<VertexId>& {
        return g.Neighbors(v);
      });
  if (!symmetric_) {
    transpose_ =
        PackLists(n, [&g](VertexId v) -> const std::vector<VertexId>& {
          return g.InNeighbors(v);
        });
  }

  // GCN normalization, matching the dense formula entry for entry:
  // Ã = A + I, D̃_vv = Σ_u Ã_vu (out-degree + 1), entry (v,u) of the
  // operator is Ã_vu / sqrt(D̃_vv · D̃_uu).
  std::vector<double> dinv(n);
  for (size_t v = 0; v < n; ++v) {
    size_t deg = g.OutDegree(static_cast<VertexId>(v)) + 1;
    dinv[v] = 1.0 / std::sqrt(static_cast<double>(deg));
  }
  normalized_.rows = n;
  normalized_.cols = n;
  normalized_.row_offsets.reserve(n + 1);
  normalized_.row_offsets.push_back(0);
  normalized_.col_indices.reserve(adjacency_.nnz() + n);
  normalized_.values.reserve(adjacency_.nnz() + n);
  for (size_t v = 0; v < n; ++v) {
    bool self_done = false;
    auto push = [this, &dinv, v](size_t u) {
      normalized_.col_indices.push_back(static_cast<uint32_t>(u));
      normalized_.values.push_back(dinv[v] * dinv[u]);
    };
    for (VertexId u : g.Neighbors(static_cast<VertexId>(v))) {
      if (!self_done && u > v) {
        push(v);
        self_done = true;
      }
      push(u);  // Graph rejects self-loops, so u != v and order stays sorted.
    }
    if (!self_done) push(v);
    normalized_.row_offsets.push_back(normalized_.col_indices.size());
  }
}

}  // namespace gelc
