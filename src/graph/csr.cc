#include "graph/csr.h"

#include <cmath>
#include <functional>
#include <vector>

#include "base/logging.h"
#include "graph/graph.h"

namespace gelc {

namespace {

// Packs adjacency lists (already ascending per row) into binary CSR.
CsrMatrix PackLists(size_t n,
                    const std::function<const std::vector<VertexId>&(VertexId)>&
                        row) {
  CsrMatrix out;
  out.rows = n;
  out.cols = n;
  out.row_offsets.reserve(n + 1);
  out.row_offsets.push_back(0);
  for (size_t v = 0; v < n; ++v) {
    const std::vector<VertexId>& nbrs = row(static_cast<VertexId>(v));
    out.col_indices.insert(out.col_indices.end(), nbrs.begin(), nbrs.end());
    out.row_offsets.push_back(out.col_indices.size());
  }
  return out;
}

// GCN normalization from a binary adjacency, matching the dense formula
// entry for entry: Ã = A + I, D̃_vv = Σ_u Ã_vu (out-degree + 1), entry
// (v,u) of the operator is Ã_vu / sqrt(D̃_vv · D̃_uu). Shared by the
// from-Graph and compaction constructors so both produce identical bytes
// — this loop is the byte-exactness anchor for the normalized view.
CsrMatrix BuildNormalized(const CsrMatrix& adj) {
  const size_t n = adj.rows;
  std::vector<double> dinv(n);
  for (size_t v = 0; v < n; ++v) {
    size_t deg = adj.row_offsets[v + 1] - adj.row_offsets[v] + 1;
    dinv[v] = 1.0 / std::sqrt(static_cast<double>(deg));
  }
  CsrMatrix out;
  out.rows = n;
  out.cols = n;
  out.row_offsets.reserve(n + 1);
  out.row_offsets.push_back(0);
  out.col_indices.reserve(adj.nnz() + n);
  out.values.reserve(adj.nnz() + n);
  for (size_t v = 0; v < n; ++v) {
    bool self_done = false;
    auto push = [&out, &dinv, v](size_t u) {
      out.col_indices.push_back(static_cast<uint32_t>(u));
      out.values.push_back(dinv[v] * dinv[u]);
    };
    for (size_t k = adj.row_offsets[v]; k < adj.row_offsets[v + 1]; ++k) {
      uint32_t u = adj.col_indices[k];
      if (!self_done && u > v) {
        push(v);
        self_done = true;
      }
      push(u);  // Graph rejects self-loops, so u != v and order stays sorted.
    }
    if (!self_done) push(v);
    out.row_offsets.push_back(out.col_indices.size());
  }
  return out;
}

}  // namespace

CsrGraph::CsrGraph(const Graph& g)
    : symmetric_(!g.directed()), epoch_(g.mutation_epoch()) {
  size_t n = g.num_vertices();
  adjacency_ =
      PackLists(n, [&g](VertexId v) -> const std::vector<VertexId>& {
        return g.Neighbors(v);
      });
  if (!symmetric_) {
    transpose_ =
        PackLists(n, [&g](VertexId v) -> const std::vector<VertexId>& {
          return g.InNeighbors(v);
        });
  }
  normalized_ = BuildNormalized(adjacency_);
}

CsrGraph::CsrGraph(const CsrGraph& base, const CsrDeltaRows& adj_delta,
                   const CsrDeltaRows* in_delta, const Graph& g)
    : symmetric_(!g.directed()), epoch_(g.mutation_epoch()) {
  GELC_DCHECK_EQ(base.adjacency_.rows, g.num_vertices());
  adjacency_ = MergeDeltaRows(base.adjacency_, adj_delta);
  if (!symmetric_) {
    GELC_CHECK(in_delta != nullptr);
    transpose_ = MergeDeltaRows(base.transpose_, *in_delta);
  }
  normalized_ = BuildNormalized(adjacency_);
}

void CsrGraph::CheckFreshFor(const Graph& g) const {
  (void)g;  // only read in debug builds
  GELC_DCHECK_EQ(epoch_, g.mutation_epoch());
}

}  // namespace gelc
