// Multi-relational graphs (slide 74: "Relational embeddings... initial
// work by considering multi-relation graphs and analyzing power",
// Barceló-Galkin-Morris-Orth, "Weisfeiler and Leman Go Relational").
//
// A relational graph has R edge relations E_1, ..., E_R over one vertex
// set. Relational color refinement refines by the PER-RELATION neighbor
// color multisets; a relational GNN-101 has one weight matrix per
// relation. The key phenomenon (exercised by tests and bench_e19):
// collapsing the relations into one edge set loses separation power —
// relational CR is strictly finer than CR on the union graph.
#ifndef GELC_GRAPH_RELATIONAL_H_
#define GELC_GRAPH_RELATIONAL_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "graph/graph.h"
#include "tensor/ops.h"

namespace gelc {

/// A vertex-labelled graph with R undirected edge relations.
class RelationalGraph {
 public:
  /// n vertices, `num_relations` empty relations, feature dim d.
  RelationalGraph(size_t n, size_t num_relations, size_t feature_dim);

  size_t num_vertices() const { return n_; }
  size_t num_relations() const { return relations_.size(); }
  size_t feature_dim() const { return features_.cols(); }

  /// Adds an undirected edge to relation r.
  Status AddEdge(size_t relation, VertexId u, VertexId v);
  bool HasEdge(size_t relation, VertexId u, VertexId v) const;
  /// Neighbors of v under relation r, ascending.
  const std::vector<VertexId>& Neighbors(size_t relation, VertexId v) const;

  const Matrix& features() const { return features_; }
  void SetOneHotFeature(VertexId v, size_t k);

  /// Forgets the relation types: the union single-relation Graph.
  Graph CollapseRelations() const;
  /// The subgraph of one relation as a plain Graph.
  Result<Graph> RelationGraph(size_t relation) const;

  /// Image under a vertex permutation.
  Result<RelationalGraph> Permuted(const std::vector<size_t>& perm) const;

 private:
  size_t n_;
  // relations_[r] = per-vertex sorted adjacency.
  std::vector<std::vector<std::vector<VertexId>>> relations_;
  Matrix features_;
};

/// Relational color refinement: vertex signatures include one neighbor
/// color multiset PER relation. Returns stable colors per graph (jointly
/// interned across the supplied graphs) — the relational 1-WL of
/// slide 74's reference.
struct RelationalCrColoring {
  std::vector<std::vector<uint64_t>> stable;
  size_t rounds = 0;
  std::vector<uint64_t> GraphSignature(size_t g) const;
};
RelationalCrColoring RunRelationalColorRefinement(
    const std::vector<const RelationalGraph*>& graphs, int max_rounds = -1);

/// Graph-level relational-CR equivalence.
bool RelationalCrEquivalent(const RelationalGraph& a,
                            const RelationalGraph& b);

/// A relational GNN-101: F' = act(F W_0 + Σ_r A_r F W_r + b), one
/// message matrix per relation (R-GCN flavoured, slide 74).
class RelationalGnn {
 public:
  struct Layer {
    Matrix w_self;
    std::vector<Matrix> w_rel;  // one per relation
    Matrix b;
    Activation act = Activation::kTanh;
  };

  RelationalGnn(std::vector<Layer> layers, size_t num_relations);

  static Result<RelationalGnn> Random(const std::vector<size_t>& widths,
                                      size_t num_relations, Activation act,
                                      double weight_scale, Rng* rng);

  Result<Matrix> VertexEmbeddings(const RelationalGraph& g) const;
  /// Sum-pooled vertex embeddings.
  Result<Matrix> GraphEmbedding(const RelationalGraph& g) const;

  size_t input_dim() const { return layers_.front().w_self.rows(); }

 private:
  std::vector<Layer> layers_;
  size_t num_relations_;
};

}  // namespace gelc

#endif  // GELC_GRAPH_RELATIONAL_H_
