// Plain-text graph serialization.
//
// Format (line-oriented, '#' comments allowed):
//   graph <n> <feature_dim> <directed:0|1>
//   v <id> <f_0> ... <f_{d-1}>          (optional; default zero features)
//   e <u> <v>
#ifndef GELC_GRAPH_IO_H_
#define GELC_GRAPH_IO_H_

#include <string>

#include "base/status.h"
#include "graph/graph.h"

namespace gelc {

/// Parses a graph from the text format above.
Result<Graph> ParseGraphText(const std::string& text);

/// Serializes a graph to the text format above; ParseGraphText round-trips.
std::string SerializeGraphText(const Graph& g);

}  // namespace gelc

#endif  // GELC_GRAPH_IO_H_
