// The graph substrate: vertex-labelled graphs G = (V_G, E_G, L_G) with
// L_G : V_G -> R^d, exactly as in the paper's preliminaries (slide 6).
//
// Graphs are stored with explicit out- and in-adjacency lists. Undirected
// graphs are represented by symmetric arc sets; the `directed()` flag only
// records intent (it affects nothing semantically once arcs are symmetric).
//
// Streaming (DESIGN.md §12): AddEdge/RemoveEdge no longer throw away the
// cached CSR snapshot. While a snapshot exists, mutations are recorded as
// sorted per-row deltas (tensor/sparse.h CsrDeltaRows) against it; readers
// either merge on the fly (AdjacencyDeltaView + SpMMDelta) or trigger a
// threshold/at-read compaction that folds the delta into a fresh snapshot.
// Every successful mutation bumps mutation_epoch(), which CsrGraph
// snapshots carry so hoisted views can DCHECK their own freshness.
#ifndef GELC_GRAPH_GRAPH_H_
#define GELC_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.h"
#include "base/status.h"
#include "graph/csr.h"
#include "tensor/matrix.h"

namespace gelc {

using VertexId = uint32_t;

/// A borrowed view of the logical adjacency (or transpose) as an
/// immutable CSR base plus the pending, not-yet-compacted edit lists.
/// `delta` is null when the base is exact. Both pointers are owned by the
/// Graph and are invalidated by the next mutation or compaction — re-fetch
/// per batch, don't hoist across mutations.
struct DeltaCsrView {
  const CsrMatrix* base = nullptr;
  const CsrDeltaRows* delta = nullptr;
};

/// A finite vertex-labelled graph. Vertex labels are feature vectors in
/// R^d (discrete label alphabets are one-hot encoded, slide 6).
class Graph {
 public:
  /// An empty graph: zero vertices, feature dimension zero.
  Graph() : Graph(0, 0) {}

  /// An empty graph with n vertices, feature dimension d (features zero).
  Graph(size_t n, size_t feature_dim, bool directed = false);

  /// A graph with all-ones 1-dimensional features (the unlabeled case).
  static Graph Unlabeled(size_t n, bool directed = false);

  size_t num_vertices() const { return out_.size(); }
  size_t num_arcs() const { return num_arcs_; }
  /// For undirected graphs: number of (unordered) edges.
  size_t num_edges() const {
    return directed_ ? num_arcs_ : num_arcs_ / 2;
  }
  bool directed() const { return directed_; }
  size_t feature_dim() const { return features_.cols(); }

  /// Adds an arc u->v (and v->u when undirected). Parallel arcs and
  /// self-loops are rejected.
  Status AddEdge(VertexId u, VertexId v);
  /// Removes the arc u->v (and v->u when undirected); NotFound if absent.
  Status RemoveEdge(VertexId u, VertexId v);
  /// True if the arc u->v exists.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Out-neighbors of v in ascending order.
  const std::vector<VertexId>& Neighbors(VertexId v) const {
    GELC_DCHECK_LT(v, out_.size());
    return out_[v];
  }
  /// In-neighbors of v in ascending order.
  const std::vector<VertexId>& InNeighbors(VertexId v) const {
    GELC_DCHECK_LT(v, in_.size());
    return in_[v];
  }
  size_t OutDegree(VertexId v) const {
    GELC_DCHECK_LT(v, out_.size());
    return out_[v].size();
  }
  size_t InDegree(VertexId v) const {
    GELC_DCHECK_LT(v, in_.size());
    return in_[v].size();
  }

  /// The n x d feature (label) matrix L_G.
  const Matrix& features() const { return features_; }
  Matrix& mutable_features() { return features_; }
  /// Sets v's feature row; row must be 1 x feature_dim.
  void SetFeature(VertexId v, const Matrix& row);
  /// Sets v's feature to the one-hot vector e_k (k < feature_dim).
  void SetOneHotFeature(VertexId v, size_t k);
  /// Returns v's feature row as a 1 x d matrix.
  Matrix Feature(VertexId v) const { return features_.Row(v); }

  /// Dense n x n 0/1 adjacency matrix. Costs O(n²) memory — the GNN hot
  /// paths use Csr() instead; this stays for the linear-algebra
  /// experiments (spectra, hom-count algebra) that need a dense operator.
  Matrix AdjacencyMatrix() const;
  /// Row-normalized adjacency D^{-1} A (isolated vertices give zero rows).
  Matrix MeanAdjacencyMatrix() const;

  /// The CSR view (adjacency, transpose, GCN-normalized operators), built
  /// on first call and cached. A mutation no longer discards the
  /// snapshot: it appends to the delta buffers, and Csr() compacts any
  /// pending delta into a fresh snapshot before returning — so the
  /// returned reference always reflects the current structure but lives
  /// only until the next mutation-then-compaction. Holders hoisting the
  /// reference across other work should CheckFreshFor() it (trainers do).
  /// Like all mutating-on-first-use paths, the first Csr() call is not
  /// thread-safe; call it once before sharing the graph across shards.
  const CsrGraph& Csr() const;

  /// The logical adjacency as base CSR + pending delta, without
  /// compacting. Builds the base snapshot on first call; the cheap path
  /// for streaming readers (SpMMDelta merges rows on the fly).
  DeltaCsrView AdjacencyDeltaView() const;
  /// Same for the transpose Aᵀ (shares the adjacency when undirected).
  DeltaCsrView TransposeDeltaView() const;

  /// Number of successful AddEdge/RemoveEdge mutations so far; CsrGraph
  /// snapshots record the epoch they were built at (staleness checks).
  uint64_t mutation_epoch() const { return mutation_epoch_; }
  /// Pending delta edits (arcs) not yet compacted into the CSR base.
  size_t csr_pending_delta() const { return adj_delta_.pending(); }
  /// Overrides the compaction threshold (pending arcs that trigger an
  /// in-mutation compaction). 0 restores the default
  /// max(256, base_nnz / 4). Benchmarks sweep this.
  void set_csr_compaction_threshold(size_t t) { compaction_threshold_ = t; }

  /// How many times a dense adjacency matrix has been materialized by
  /// *any* graph in this process (AdjacencyMatrix / MeanAdjacencyMatrix) —
  /// reads the process-wide "graph.dense_adjacency_builds" metric, so
  /// tests pin sparse hot paths as delta-free via obs::Snapshot(). Only
  /// meaningful while metrics are enabled (the default).
  static size_t dense_adjacency_builds();

  /// The image graph pi(G): vertex v is renamed perm[v]. perm must be a
  /// permutation of {0..n-1}. Used by invariance checks (slide 11).
  Result<Graph> Permuted(const std::vector<size_t>& perm) const;

  /// Disjoint union; feature dimensions must match.
  static Result<Graph> DisjointUnion(const Graph& a, const Graph& b);

  /// Vertices of each connected component (ignoring arc direction).
  std::vector<std::vector<VertexId>> ConnectedComponents() const;

  /// Sorted degree sequence (out-degrees).
  std::vector<size_t> DegreeSequence() const;

  /// Multi-line textual dump for diagnostics.
  std::string ToString() const;
  /// Graphviz DOT serialization.
  std::string ToDot(const std::string& name = "G") const;

 private:
  // Builds the CSR base snapshot if absent (never compacts).
  void EnsureCsrBase() const;
  // Records one arc edit against the current CSR base.
  void RecordDeltaArc(VertexId u, VertexId v, bool insert);
  // Folds the pending delta into a fresh CSR snapshot and clears it.
  void CompactCsr() const;
  // Threshold actually in force (resolves the 0 = auto default).
  size_t ResolvedCompactionThreshold() const;

  bool directed_;
  size_t num_arcs_ = 0;
  uint64_t mutation_epoch_ = 0;
  size_t compaction_threshold_ = 0;  // 0 = auto
  std::vector<std::vector<VertexId>> out_;
  std::vector<std::vector<VertexId>> in_;
  Matrix features_;
  // Lazily-built CSR snapshot; shared so copies of an unmutated graph
  // reuse it, replaced (not mutated) on compaction. Never exposed
  // mutably. The delta buffers record mutations made since the snapshot;
  // they are value members, so graph copies carry their pending edits.
  mutable std::shared_ptr<const CsrGraph> csr_;
  mutable CsrDeltaRows adj_delta_;
  mutable CsrDeltaRows in_delta_;  // directed only; adj covers symmetric
};

}  // namespace gelc

#endif  // GELC_GRAPH_GRAPH_H_
