// The graph substrate: vertex-labelled graphs G = (V_G, E_G, L_G) with
// L_G : V_G -> R^d, exactly as in the paper's preliminaries (slide 6).
//
// Graphs are stored with explicit out- and in-adjacency lists. Undirected
// graphs are represented by symmetric arc sets; the `directed()` flag only
// records intent (it affects nothing semantically once arcs are symmetric).
#ifndef GELC_GRAPH_GRAPH_H_
#define GELC_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.h"
#include "base/status.h"
#include "graph/csr.h"
#include "tensor/matrix.h"

namespace gelc {

using VertexId = uint32_t;

/// A finite vertex-labelled graph. Vertex labels are feature vectors in
/// R^d (discrete label alphabets are one-hot encoded, slide 6).
class Graph {
 public:
  /// An empty graph: zero vertices, feature dimension zero.
  Graph() : Graph(0, 0) {}

  /// An empty graph with n vertices, feature dimension d (features zero).
  Graph(size_t n, size_t feature_dim, bool directed = false);

  /// A graph with all-ones 1-dimensional features (the unlabeled case).
  static Graph Unlabeled(size_t n, bool directed = false);

  size_t num_vertices() const { return out_.size(); }
  size_t num_arcs() const { return num_arcs_; }
  /// For undirected graphs: number of (unordered) edges.
  size_t num_edges() const {
    return directed_ ? num_arcs_ : num_arcs_ / 2;
  }
  bool directed() const { return directed_; }
  size_t feature_dim() const { return features_.cols(); }

  /// Adds an arc u->v (and v->u when undirected). Parallel arcs and
  /// self-loops are rejected.
  Status AddEdge(VertexId u, VertexId v);
  /// True if the arc u->v exists.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Out-neighbors of v in ascending order.
  const std::vector<VertexId>& Neighbors(VertexId v) const {
    GELC_DCHECK_LT(v, out_.size());
    return out_[v];
  }
  /// In-neighbors of v in ascending order.
  const std::vector<VertexId>& InNeighbors(VertexId v) const {
    GELC_DCHECK_LT(v, in_.size());
    return in_[v];
  }
  size_t OutDegree(VertexId v) const {
    GELC_DCHECK_LT(v, out_.size());
    return out_[v].size();
  }
  size_t InDegree(VertexId v) const {
    GELC_DCHECK_LT(v, in_.size());
    return in_[v].size();
  }

  /// The n x d feature (label) matrix L_G.
  const Matrix& features() const { return features_; }
  Matrix& mutable_features() { return features_; }
  /// Sets v's feature row; row must be 1 x feature_dim.
  void SetFeature(VertexId v, const Matrix& row);
  /// Sets v's feature to the one-hot vector e_k (k < feature_dim).
  void SetOneHotFeature(VertexId v, size_t k);
  /// Returns v's feature row as a 1 x d matrix.
  Matrix Feature(VertexId v) const { return features_.Row(v); }

  /// Dense n x n 0/1 adjacency matrix. Costs O(n²) memory — the GNN hot
  /// paths use Csr() instead; this stays for the linear-algebra
  /// experiments (spectra, hom-count algebra) that need a dense operator.
  Matrix AdjacencyMatrix() const;
  /// Row-normalized adjacency D^{-1} A (isolated vertices give zero rows).
  Matrix MeanAdjacencyMatrix() const;

  /// The CSR view (adjacency, transpose, GCN-normalized operators), built
  /// on first call and cached; AddEdge invalidates the cache. The
  /// returned reference lives until the next mutation (trainers hold it
  /// across a whole Tape, so don't mutate the graph mid-training). Like
  /// all mutating-on-first-use paths, the first Csr() call is not
  /// thread-safe; call it once before sharing the graph across shards.
  const CsrGraph& Csr() const;

  /// How many times a dense adjacency matrix has been materialized by
  /// *any* graph in this process (AdjacencyMatrix / MeanAdjacencyMatrix) —
  /// reads the process-wide "graph.dense_adjacency_builds" metric, so
  /// tests pin sparse hot paths as delta-free via obs::Snapshot(). Only
  /// meaningful while metrics are enabled (the default).
  static size_t dense_adjacency_builds();

  /// The image graph pi(G): vertex v is renamed perm[v]. perm must be a
  /// permutation of {0..n-1}. Used by invariance checks (slide 11).
  Result<Graph> Permuted(const std::vector<size_t>& perm) const;

  /// Disjoint union; feature dimensions must match.
  static Result<Graph> DisjointUnion(const Graph& a, const Graph& b);

  /// Vertices of each connected component (ignoring arc direction).
  std::vector<std::vector<VertexId>> ConnectedComponents() const;

  /// Sorted degree sequence (out-degrees).
  std::vector<size_t> DegreeSequence() const;

  /// Multi-line textual dump for diagnostics.
  std::string ToString() const;
  /// Graphviz DOT serialization.
  std::string ToDot(const std::string& name = "G") const;

 private:
  bool directed_;
  size_t num_arcs_ = 0;
  std::vector<std::vector<VertexId>> out_;
  std::vector<std::vector<VertexId>> in_;
  Matrix features_;
  // Lazily-built CSR snapshot; shared so copies of an unmutated graph
  // reuse it, reset on mutation. Never exposed mutably.
  mutable std::shared_ptr<const CsrGraph> csr_;
};

}  // namespace gelc

#endif  // GELC_GRAPH_GRAPH_H_
