#include "graph/isomorphism.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "base/hash.h"
#include "base/logging.h"

namespace gelc {

namespace {

// Joint color refinement over the disjoint union of a and b, so colors are
// directly comparable between the two graphs. Returns stable colors for
// each graph, or nullopt if the color histograms differ (non-isomorphic).
struct JointColors {
  std::vector<uint64_t> a;
  std::vector<uint64_t> b;
};

std::optional<JointColors> RefineJointly(const Graph& ga, const Graph& gb) {
  size_t na = ga.num_vertices();
  size_t nb = gb.num_vertices();
  Interner interner;
  JointColors colors;
  colors.a.resize(na);
  colors.b.resize(nb);

  // Initial invariants: bitwise feature hash plus the size of the
  // vertex's connected component (cheap and decisive for disjoint-union
  // versus connected look-alikes such as CFI cycle pairs).
  auto component_sizes = [](const Graph& g) {
    std::vector<size_t> size(g.num_vertices(), 0);
    for (const auto& comp : g.ConnectedComponents())
      for (VertexId v : comp) size[v] = comp.size();
    return size;
  };
  std::vector<size_t> comp_a = component_sizes(ga);
  std::vector<size_t> comp_b = component_sizes(gb);
  auto feature_sig = [](const Graph& g, size_t v, size_t comp_size) {
    // Bitwise feature hashing: exact equality semantics.
    const Matrix& f = g.features();
    std::string buf((g.feature_dim() + 1) * sizeof(double), '\0');
    for (size_t j = 0; j < g.feature_dim(); ++j) {
      double x = f.At(v, j);
      std::memcpy(buf.data() + j * sizeof(double), &x, sizeof(double));
    }
    double cs = static_cast<double>(comp_size);
    std::memcpy(buf.data() + g.feature_dim() * sizeof(double), &cs,
                sizeof(double));
    return buf;
  };
  for (size_t v = 0; v < na; ++v)
    colors.a[v] = interner.Intern(feature_sig(ga, v, comp_a[v]));
  for (size_t v = 0; v < nb; ++v)
    colors.b[v] = interner.Intern(feature_sig(gb, v, comp_b[v]));

  auto histogram = [](const std::vector<uint64_t>& c) {
    std::map<uint64_t, size_t> h;
    for (uint64_t x : c) ++h[x];
    return h;
  };

  for (size_t round = 0; round < na + nb + 1; ++round) {
    if (histogram(colors.a) != histogram(colors.b)) return std::nullopt;
    auto refine_one = [&interner](const Graph& g,
                                  const std::vector<uint64_t>& old) {
      std::vector<uint64_t> next(old.size());
      for (size_t v = 0; v < old.size(); ++v) {
        std::vector<uint64_t> sig;
        sig.push_back(old[v]);
        std::vector<uint64_t> out_colors;
        for (VertexId u : g.Neighbors(static_cast<VertexId>(v)))
          out_colors.push_back(old[u]);
        std::sort(out_colors.begin(), out_colors.end());
        sig.insert(sig.end(), out_colors.begin(), out_colors.end());
        sig.push_back(~uint64_t{0});  // separator
        std::vector<uint64_t> in_colors;
        for (VertexId u : g.InNeighbors(static_cast<VertexId>(v)))
          in_colors.push_back(old[u]);
        std::sort(in_colors.begin(), in_colors.end());
        sig.insert(sig.end(), in_colors.begin(), in_colors.end());
        next[v] = interner.InternWords(sig);
      }
      return next;
    };
    std::vector<uint64_t> next_a = refine_one(ga, colors.a);
    std::vector<uint64_t> next_b = refine_one(gb, colors.b);
    colors.a = std::move(next_a);
    colors.b = std::move(next_b);
    if (histogram(colors.a) != histogram(colors.b)) return std::nullopt;
    // n_a + n_b rounds always suffice for stability; the graphs in this
    // library are small enough that we simply run them all.
  }
  if (histogram(colors.a) != histogram(colors.b)) return std::nullopt;
  return colors;
}

// Backtracking matcher.
class Matcher {
 public:
  Matcher(const Graph& a, const Graph& b, const JointColors& colors,
          size_t max_steps)
      : a_(a), b_(b), colors_(colors), max_steps_(max_steps) {
    size_t n = a.num_vertices();
    map_.assign(n, kUnset);
    used_.assign(n, false);
    preimage_.assign(b.num_vertices(), kUnset);
    // Order vertices of a by ascending color-class size (most constrained
    // first), breaking ties by descending degree.
    std::map<uint64_t, size_t> class_size;
    for (uint64_t c : colors_.a) ++class_size[c];
    order_.resize(n);
    for (size_t i = 0; i < n; ++i) order_[i] = i;
    std::sort(order_.begin(), order_.end(), [&](size_t x, size_t y) {
      size_t sx = class_size[colors_.a[x]];
      size_t sy = class_size[colors_.a[y]];
      if (sx != sy) return sx < sy;
      return a_.OutDegree(static_cast<VertexId>(x)) >
             a_.OutDegree(static_cast<VertexId>(y));
    });
    // Candidate lists per color.
    for (size_t v = 0; v < n; ++v)
      candidates_[colors_.b[v]].push_back(v);
  }

  // Returns found mapping, nullopt, or error on budget exhaustion.
  Result<std::optional<std::vector<size_t>>> Run() {
    bool found = Search(0);
    if (steps_ > max_steps_) {
      return Status::Internal("isomorphism search budget exhausted");
    }
    if (!found) return std::optional<std::vector<size_t>>{};
    return std::optional<std::vector<size_t>>{map_};
  }

 private:
  static constexpr size_t kUnset = static_cast<size_t>(-1);

  bool Feasible(size_t v, size_t w) {
    // Colors must match; adjacency to already-mapped vertices must match
    // in both directions.
    if (colors_.a[v] != colors_.b[w]) return false;
    for (VertexId u : a_.Neighbors(static_cast<VertexId>(v))) {
      if (map_[u] != kUnset &&
          !b_.HasEdge(static_cast<VertexId>(w),
                      static_cast<VertexId>(map_[u])))
        return false;
    }
    for (VertexId u : a_.InNeighbors(static_cast<VertexId>(v))) {
      if (map_[u] != kUnset &&
          !b_.HasEdge(static_cast<VertexId>(map_[u]),
                      static_cast<VertexId>(w)))
        return false;
    }
    // Mapped neighbors of w must all be images of neighbors of v: degree
    // equality plus the check above implies it for complete mappings; for
    // partial mappings check the reverse direction explicitly.
    for (VertexId u : b_.Neighbors(static_cast<VertexId>(w))) {
      size_t pre = preimage_[u];
      if (pre != kUnset && !a_.HasEdge(static_cast<VertexId>(v),
                                       static_cast<VertexId>(pre)))
        return false;
    }
    for (VertexId u : b_.InNeighbors(static_cast<VertexId>(w))) {
      size_t pre = preimage_[u];
      if (pre != kUnset && !a_.HasEdge(static_cast<VertexId>(pre),
                                       static_cast<VertexId>(v)))
        return false;
    }
    return true;
  }

  bool Search(size_t depth) {
    if (steps_ > max_steps_) return false;
    if (depth == order_.size()) return true;
    size_t v = order_[depth];
    for (size_t w : candidates_[colors_.a[v]]) {
      if (used_[w]) continue;
      ++steps_;
      if (!Feasible(v, w)) continue;
      map_[v] = w;
      used_[w] = true;
      preimage_[static_cast<VertexId>(w)] = v;
      if (Search(depth + 1)) return true;
      map_[v] = kUnset;
      used_[w] = false;
      preimage_[static_cast<VertexId>(w)] = kUnset;
      if (steps_ > max_steps_) return false;
    }
    return false;
  }

  const Graph& a_;
  const Graph& b_;
  const JointColors& colors_;
  size_t max_steps_;
  size_t steps_ = 0;
  std::vector<size_t> map_;
  std::vector<bool> used_;
  std::vector<size_t> order_;
  std::map<uint64_t, std::vector<size_t>> candidates_;
  // preimage_[w] = vertex of `a` currently mapped to w, or kUnset.
  std::vector<size_t> preimage_;
};

}  // namespace

Result<std::optional<std::vector<size_t>>> FindIsomorphism(
    const Graph& a, const Graph& b, size_t max_steps) {
  if (a.num_vertices() != b.num_vertices() ||
      a.num_arcs() != b.num_arcs() ||
      a.feature_dim() != b.feature_dim() ||
      a.DegreeSequence() != b.DegreeSequence()) {
    return std::optional<std::vector<size_t>>{};
  }
  std::optional<JointColors> colors = RefineJointly(a, b);
  if (!colors.has_value()) return std::optional<std::vector<size_t>>{};
  Matcher matcher(a, b, *colors, max_steps);
  return matcher.Run();
}

Result<bool> AreIsomorphic(const Graph& a, const Graph& b,
                           size_t max_steps) {
  GELC_ASSIGN_OR_RETURN(std::optional<std::vector<size_t>> iso,
                        FindIsomorphism(a, b, max_steps));
  return iso.has_value();
}

}  // namespace gelc
