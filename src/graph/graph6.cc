#include "graph/graph6.h"

#include <vector>

namespace gelc {

namespace {

constexpr int kBias = 63;  // printable offset

// Reads N(n): either one byte (n <= 62) or '~' + 3 bytes (n <= 258047).
Result<std::pair<size_t, size_t>> DecodeSize(const std::string& s) {
  if (s.empty()) return Status::IOError("empty graph6 string");
  unsigned char c0 = s[0];
  if (c0 == '~') {
    if (s.size() < 4) return Status::IOError("truncated graph6 size");
    if (s[1] == '~') {
      return Status::IOError("graph6 8-byte sizes not supported");
    }
    size_t n = 0;
    for (int i = 1; i <= 3; ++i) {
      unsigned char c = s[i];
      if (c < kBias || c > 126) return Status::IOError("bad graph6 byte");
      n = (n << 6) | (c - kBias);
    }
    return std::make_pair(n, size_t{4});
  }
  if (c0 < kBias || c0 > 126) return Status::IOError("bad graph6 byte");
  return std::make_pair(static_cast<size_t>(c0 - kBias), size_t{1});
}

}  // namespace

Result<Graph> ParseGraph6(const std::string& line) {
  GELC_ASSIGN_OR_RETURN(auto size_info, DecodeSize(line));
  auto [n, offset] = size_info;
  size_t bits_needed = n * (n - 1) / 2;
  size_t bytes_needed = (bits_needed + 5) / 6;
  if (line.size() != offset + bytes_needed) {
    return Status::IOError("graph6 length mismatch: expected " +
                           std::to_string(offset + bytes_needed) +
                           " characters, got " +
                           std::to_string(line.size()));
  }
  Graph g = Graph::Unlabeled(n);
  size_t bit = 0;
  for (size_t v = 1; v < n; ++v) {
    for (size_t u = 0; u < v; ++u, ++bit) {
      unsigned char c = line[offset + bit / 6];
      if (c < kBias || c > 126) return Status::IOError("bad graph6 byte");
      int value = (c - kBias) >> (5 - bit % 6) & 1;
      if (value) {
        GELC_RETURN_NOT_OK(g.AddEdge(static_cast<VertexId>(u),
                                     static_cast<VertexId>(v)));
      }
    }
  }
  return g;
}

Result<std::string> ToGraph6(const Graph& g) {
  if (g.directed()) {
    return Status::InvalidArgument("graph6 encodes undirected graphs only");
  }
  size_t n = g.num_vertices();
  if (n > 258047) return Status::OutOfRange("graph too large for graph6");
  std::string out;
  if (n <= 62) {
    out.push_back(static_cast<char>(n + kBias));
  } else {
    out.push_back('~');
    out.push_back(static_cast<char>(((n >> 12) & 63) + kBias));
    out.push_back(static_cast<char>(((n >> 6) & 63) + kBias));
    out.push_back(static_cast<char>((n & 63) + kBias));
  }
  size_t bits = n * (n - 1) / 2;
  std::vector<int> bit_values(bits, 0);
  size_t bit = 0;
  for (size_t v = 1; v < n; ++v) {
    for (size_t u = 0; u < v; ++u, ++bit) {
      bit_values[bit] = g.HasEdge(static_cast<VertexId>(u),
                                  static_cast<VertexId>(v))
                            ? 1
                            : 0;
    }
  }
  for (size_t i = 0; i < bits; i += 6) {
    int value = 0;
    for (size_t j = 0; j < 6; ++j) {
      value <<= 1;
      if (i + j < bits) value |= bit_values[i + j];
    }
    out.push_back(static_cast<char>(value + kBias));
  }
  return out;
}

}  // namespace gelc
