#include "graph/relational.h"

#include <algorithm>
#include <cstring>

#include "base/hash.h"
#include "base/logging.h"
#include "tensor/ops.h"

namespace gelc {

RelationalGraph::RelationalGraph(size_t n, size_t num_relations,
                                 size_t feature_dim)
    : n_(n),
      relations_(num_relations,
                 std::vector<std::vector<VertexId>>(n)),
      features_(n, feature_dim) {}

Status RelationalGraph::AddEdge(size_t relation, VertexId u, VertexId v) {
  if (relation >= relations_.size()) {
    return Status::OutOfRange("relation index out of range");
  }
  if (u >= n_ || v >= n_) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loops not supported");
  if (HasEdge(relation, u, v)) {
    return Status::AlreadyExists("duplicate edge in relation");
  }
  auto insert = [](std::vector<VertexId>* vec, VertexId x) {
    vec->insert(std::lower_bound(vec->begin(), vec->end(), x), x);
  };
  insert(&relations_[relation][u], v);
  insert(&relations_[relation][v], u);
  return Status::OK();
}

bool RelationalGraph::HasEdge(size_t relation, VertexId u, VertexId v) const {
  GELC_DCHECK(relation < relations_.size() && u < n_ && v < n_);
  const auto& nbrs = relations_[relation][u];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

const std::vector<VertexId>& RelationalGraph::Neighbors(size_t relation,
                                                        VertexId v) const {
  GELC_DCHECK(relation < relations_.size() && v < n_);
  return relations_[relation][v];
}

void RelationalGraph::SetOneHotFeature(VertexId v, size_t k) {
  GELC_CHECK(k < feature_dim());
  for (size_t j = 0; j < feature_dim(); ++j) features_.At(v, j) = 0.0;
  features_.At(v, k) = 1.0;
}

Graph RelationalGraph::CollapseRelations() const {
  Graph g(n_, feature_dim());
  for (size_t r = 0; r < relations_.size(); ++r) {
    for (size_t u = 0; u < n_; ++u) {
      for (VertexId v : relations_[r][u]) {
        if (v < u) continue;
        // Parallel edges across relations collapse silently
        // (kAlreadyExists is the expected outcome, not an error).
        g.AddEdge(static_cast<VertexId>(u), v).IgnoreError();
      }
    }
  }
  g.mutable_features() = features_;
  return g;
}

Result<Graph> RelationalGraph::RelationGraph(size_t relation) const {
  if (relation >= relations_.size()) {
    return Status::OutOfRange("relation index out of range");
  }
  Graph g(n_, feature_dim());
  for (size_t u = 0; u < n_; ++u) {
    for (VertexId v : relations_[relation][u]) {
      if (v < u) continue;
      GELC_RETURN_NOT_OK(g.AddEdge(static_cast<VertexId>(u), v));
    }
  }
  g.mutable_features() = features_;
  return g;
}

Result<RelationalGraph> RelationalGraph::Permuted(
    const std::vector<size_t>& perm) const {
  if (perm.size() != n_) {
    return Status::InvalidArgument("permutation size mismatch");
  }
  RelationalGraph out(n_, relations_.size(), feature_dim());
  for (size_t r = 0; r < relations_.size(); ++r) {
    for (size_t u = 0; u < n_; ++u) {
      for (VertexId v : relations_[r][u]) {
        if (v < u) continue;
        GELC_RETURN_NOT_OK(
            out.AddEdge(r, static_cast<VertexId>(perm[u]),
                        static_cast<VertexId>(perm[v])));
      }
    }
  }
  for (size_t u = 0; u < n_; ++u)
    out.features_.SetRow(perm[u], features_.Row(u));
  return out;
}

std::vector<uint64_t> RelationalCrColoring::GraphSignature(size_t g) const {
  std::vector<uint64_t> sig = stable[g];
  std::sort(sig.begin(), sig.end());
  return sig;
}

RelationalCrColoring RunRelationalColorRefinement(
    const std::vector<const RelationalGraph*>& graphs, int max_rounds) {
  Interner interner;
  RelationalCrColoring out;
  out.stable.resize(graphs.size());

  auto feature_sig = [](const RelationalGraph& g, size_t v) {
    std::string buf(g.feature_dim() * sizeof(double), '\0');
    for (size_t j = 0; j < g.feature_dim(); ++j) {
      double x = g.features().At(v, j);
      std::memcpy(buf.data() + j * sizeof(double), &x, sizeof(double));
    }
    return buf;
  };
  for (size_t g = 0; g < graphs.size(); ++g) {
    out.stable[g].resize(graphs[g]->num_vertices());
    for (size_t v = 0; v < graphs[g]->num_vertices(); ++v)
      out.stable[g][v] = interner.Intern(feature_sig(*graphs[g], v));
  }

  auto count_distinct = [](const std::vector<std::vector<uint64_t>>& cs) {
    std::vector<uint64_t> all;
    for (const auto& c : cs) all.insert(all.end(), c.begin(), c.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all.size();
  };

  size_t prev_distinct = count_distinct(out.stable);
  for (size_t round = 1;; ++round) {
    if (max_rounds >= 0 && round > static_cast<size_t>(max_rounds)) break;
    std::vector<std::vector<uint64_t>> next(graphs.size());
    for (size_t g = 0; g < graphs.size(); ++g) {
      const RelationalGraph& graph = *graphs[g];
      next[g].resize(graph.num_vertices());
      for (size_t v = 0; v < graph.num_vertices(); ++v) {
        std::vector<uint64_t> sig;
        sig.push_back(out.stable[g][v]);
        for (size_t r = 0; r < graph.num_relations(); ++r) {
          std::vector<uint64_t> nb;
          for (VertexId u : graph.Neighbors(r, static_cast<VertexId>(v)))
            nb.push_back(out.stable[g][u]);
          std::sort(nb.begin(), nb.end());
          sig.push_back(~uint64_t{0});  // relation separator
          sig.insert(sig.end(), nb.begin(), nb.end());
        }
        next[g][v] = interner.InternWords(sig);
      }
    }
    size_t distinct = count_distinct(next);
    out.stable = std::move(next);
    out.rounds = round;
    if (distinct == prev_distinct) break;
    prev_distinct = distinct;
  }
  return out;
}

bool RelationalCrEquivalent(const RelationalGraph& a,
                            const RelationalGraph& b) {
  RelationalCrColoring c = RunRelationalColorRefinement({&a, &b});
  return c.GraphSignature(0) == c.GraphSignature(1);
}

RelationalGnn::RelationalGnn(std::vector<Layer> layers, size_t num_relations)
    : layers_(std::move(layers)), num_relations_(num_relations) {
  GELC_CHECK(!layers_.empty());
  for (const Layer& l : layers_) {
    GELC_CHECK(l.w_rel.size() == num_relations_);
    for (const Matrix& w : l.w_rel) {
      GELC_CHECK(w.rows() == l.w_self.rows() && w.cols() == l.w_self.cols());
    }
    GELC_CHECK(l.b.rows() == 1 && l.b.cols() == l.w_self.cols());
  }
}

Result<RelationalGnn> RelationalGnn::Random(const std::vector<size_t>& widths,
                                            size_t num_relations,
                                            Activation act,
                                            double weight_scale, Rng* rng) {
  if (widths.size() < 2) {
    return Status::InvalidArgument("need at least input and one layer width");
  }
  if (num_relations == 0) {
    return Status::InvalidArgument("need at least one relation");
  }
  std::vector<Layer> layers;
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    Layer l;
    l.w_self =
        Matrix::RandomGaussian(widths[i], widths[i + 1], weight_scale, rng);
    for (size_t r = 0; r < num_relations; ++r) {
      l.w_rel.push_back(
          Matrix::RandomGaussian(widths[i], widths[i + 1], weight_scale,
                                 rng));
    }
    l.b = Matrix::RandomGaussian(1, widths[i + 1], weight_scale, rng);
    l.act = act;
    layers.push_back(std::move(l));
  }
  return RelationalGnn(std::move(layers), num_relations);
}

Result<Matrix> RelationalGnn::VertexEmbeddings(
    const RelationalGraph& g) const {
  if (g.feature_dim() != input_dim()) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  if (g.num_relations() != num_relations_) {
    return Status::InvalidArgument("relation count does not match model");
  }
  size_t n = g.num_vertices();
  Matrix f = g.features();
  for (const Layer& l : layers_) {
    Matrix next = f.MatMul(l.w_self);
    for (size_t r = 0; r < num_relations_; ++r) {
      // Σ_{u ∈ N_r(v)} f_u, then times W_r.
      Matrix agg(n, f.cols());
      for (size_t v = 0; v < n; ++v) {
        for (VertexId u : g.Neighbors(r, static_cast<VertexId>(v))) {
          for (size_t j = 0; j < f.cols(); ++j)
            agg.At(v, j) += f.At(u, j);
        }
      }
      next += agg.MatMul(l.w_rel[r]);
    }
    f = ApplyActivation(l.act, next.AddRowBroadcast(l.b));
  }
  return f;
}

Result<Matrix> RelationalGnn::GraphEmbedding(const RelationalGraph& g) const {
  GELC_ASSIGN_OR_RETURN(Matrix f, VertexEmbeddings(g));
  return f.ColSums();
}

}  // namespace gelc
